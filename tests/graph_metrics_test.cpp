#include <gtest/gtest.h>

#include "common/check.h"
#include "graph/generators.h"
#include "graph/metrics.h"

namespace rit::graph {
namespace {

TEST(DegreeStats, StarGraph) {
  const Graph g = star(101);  // hub 0 -> 100 leaves
  const DegreeStats out = out_degree_stats(g);
  EXPECT_DOUBLE_EQ(out.max, 100.0);
  EXPECT_NEAR(out.mean, 100.0 / 101.0, 1e-12);
  EXPECT_DOUBLE_EQ(out.p50, 0.0);
  EXPECT_GT(out.max_over_mean, 100.0);
  // The top-1% (the hub) carries every edge.
  EXPECT_DOUBLE_EQ(out.top1pct_share, 1.0);
  const DegreeStats in = in_degree_stats(g);
  EXPECT_DOUBLE_EQ(in.max, 1.0);
}

TEST(DegreeStats, PathGraphIsFlat) {
  const Graph g = path(50);
  const DegreeStats out = out_degree_stats(g);
  EXPECT_DOUBLE_EQ(out.max, 1.0);
  EXPECT_LE(out.max_over_mean, 1.1);
}

TEST(DegreeStats, BaIsHeavierTailedThanEr) {
  rng::Rng rng1(1);
  rng::Rng rng2(2);
  const Graph ba = barabasi_albert(5000, 3, rng1);
  const double p = 6.0 / 4999.0;  // matched mean degree
  const Graph er = erdos_renyi(5000, p, rng2);
  const DegreeStats ba_stats = out_degree_stats(ba);
  const DegreeStats er_stats = out_degree_stats(er);
  // This is the substitution argument from DESIGN.md in numbers.
  EXPECT_GT(ba_stats.max_over_mean, 3.0 * er_stats.max_over_mean);
  EXPECT_GT(ba_stats.top1pct_share, 2.0 * er_stats.top1pct_share);
}

TEST(Reachability, FullCoverageOnConnectedGraph) {
  const Graph g = path(10);
  const ReachabilityStats r = reachability(g, {0});
  EXPECT_DOUBLE_EQ(r.reachable_fraction, 1.0);
  EXPECT_EQ(r.bfs_depth, 9u);
}

TEST(Reachability, DisconnectedComponentInvisible) {
  Graph g(5, {{0, 1}, {1, 2}});
  const ReachabilityStats r = reachability(g, {0});
  EXPECT_DOUBLE_EQ(r.reachable_fraction, 3.0 / 5.0);
  EXPECT_EQ(r.bfs_depth, 2u);
}

TEST(Reachability, MultipleSourcesDeduplicated) {
  const Graph g = star(4);
  const ReachabilityStats r = reachability(g, {0, 0, 1});
  EXPECT_DOUBLE_EQ(r.reachable_fraction, 1.0);
  EXPECT_EQ(r.bfs_depth, 1u);
}

TEST(Reachability, BaGraphIsShallowFromSeedClique) {
  rng::Rng rng(3);
  const Graph g = barabasi_albert(20000, 3, rng);
  const ReachabilityStats r = reachability(g, {0, 1, 2, 3});
  EXPECT_GT(r.reachable_fraction, 0.99);
  EXPECT_LT(r.bfs_depth, 20u);  // hubs keep follower graphs shallow
}

TEST(Clustering, CompleteGraphCloses) {
  rng::Rng rng(4);
  const Graph g = complete(12);
  EXPECT_NEAR(estimate_clustering(g, 5000, rng), 1.0, 0.02);
}

TEST(Clustering, PathNeverCloses) {
  rng::Rng rng(5);
  const Graph g = path(50);
  EXPECT_DOUBLE_EQ(estimate_clustering(g, 2000, rng), 0.0);
}

TEST(Clustering, WsBeatsErAtEqualDensity) {
  // The small-world property: an unrewired ring lattice has high
  // clustering; a random graph of the same density has ~zero.
  rng::Rng rng1(6);
  rng::Rng rng2(7);
  const Graph ws = watts_strogatz(2000, 6, 0.0, rng1);
  const Graph er = erdos_renyi(2000, 6.0 / 1999.0, rng2);
  rng::Rng s1(8);
  rng::Rng s2(9);
  EXPECT_GT(estimate_clustering(ws, 20000, s1),
            estimate_clustering(er, 20000, s2) + 0.2);
}

TEST(Metrics, RejectBadInputs) {
  const Graph g = path(3);
  EXPECT_THROW(reachability(g, {7}), CheckFailure);
  rng::Rng rng(1);
  EXPECT_THROW(estimate_clustering(g, 0, rng), CheckFailure);
}

}  // namespace
}  // namespace rit::graph
