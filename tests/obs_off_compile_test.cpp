// Compile-and-run check for the disabled observability configuration: this
// translation unit is built with RIT_OBS_ENABLED=0 (see tests/CMakeLists.txt)
// so RIT_TRACE_SPAN / RIT_COUNTER_* must expand to no-ops that still parse in
// every position instrumented code uses them — including as the body of an
// unbraced if. The binary links the normally-built rit_obs, mirroring a
// mixed build where only some TUs disable instrumentation.
#include <cstdio>

#include "obs/obs.h"

#if RIT_OBS_ENABLED
#error "this test must be compiled with RIT_OBS_ENABLED=0"
#endif

namespace {

int instrumented_work(int n) {
  RIT_TRACE_SPAN("off.work");
  RIT_COUNTER_INC("off.calls");
  int acc = 0;
  for (int i = 0; i < n; ++i) {
    RIT_TRACE_SPAN("off.iter");
    acc += i;
  }
  if (n > 0) RIT_COUNTER_ADD("off.items", static_cast<std::uint64_t>(n));
  return acc;
}

}  // namespace

int main() {
  rit::obs::start_tracing();
  const int got = instrumented_work(10);
  rit::obs::stop_tracing();
  if (got != 45) {
    std::fprintf(stderr, "instrumented_work miscomputed: %d\n", got);
    return 1;
  }
  // Macros compiled away: nothing may have been recorded even while the
  // tracer was active, and the macro counters never reached the registry.
  if (!rit::obs::collect_trace().empty()) {
    std::fprintf(stderr, "spans recorded despite RIT_OBS_ENABLED=0\n");
    return 1;
  }
  if (rit::obs::Registry::global().counter("off.calls").value() != 0) {
    std::fprintf(stderr, "counter bumped despite RIT_OBS_ENABLED=0\n");
    return 1;
  }
  std::puts("ok: observability macros compile away under RIT_OBS_ENABLED=0");
  return 0;
}
