#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "common/check.h"
#include "core/audit.h"
#include "core/result_io.h"
#include "core/rit.h"
#include "rng/rng.h"
#include "tree/builders.h"

namespace rit::core {
namespace {

ExperimentRecord make_record(std::uint64_t seed) {
  rng::Rng rng(seed);
  const std::uint32_t n = 80;
  ExperimentRecord rec;
  rec.job = Job(std::vector<std::uint32_t>{15, 10});
  for (std::uint32_t j = 0; j < n; ++j) {
    rec.asks.push_back(Ask{
        TaskType{static_cast<std::uint32_t>(rng.uniform_index(2))},
        static_cast<std::uint32_t>(rng.uniform_int(1, 3)),
        rng.uniform_real_left_open(0.0, 10.0)});
  }
  const auto tree = tree::random_recursive_tree(n, 0.2, rng);
  rec.tree_parents = tree.parents();
  RitConfig cfg;
  cfg.round_budget_policy = RoundBudgetPolicy::kRunToCompletion;
  rec.discount_base = cfg.discount_base;
  rng::Rng mech(seed ^ 0xbeef);
  rec.result = run_rit(rec.job, rec.asks, tree, cfg, mech);
  return rec;
}

TEST(ResultIo, RoundTripsBitExactly) {
  const ExperimentRecord rec = make_record(1);
  std::ostringstream out;
  write_record(rec, out);
  std::istringstream in(out.str());
  const ExperimentRecord back = read_record(in);

  EXPECT_EQ(back.job.demand_vector(), rec.job.demand_vector());
  ASSERT_EQ(back.asks.size(), rec.asks.size());
  for (std::size_t j = 0; j < rec.asks.size(); ++j) {
    EXPECT_EQ(back.asks[j], rec.asks[j]);  // exact, incl. the double value
  }
  EXPECT_EQ(back.tree_parents, rec.tree_parents);
  EXPECT_EQ(back.discount_base, rec.discount_base);
  EXPECT_EQ(back.result.success, rec.result.success);
  EXPECT_EQ(back.result.allocation, rec.result.allocation);
  EXPECT_EQ(back.result.auction_payment, rec.result.auction_payment);  // bit-exact
  EXPECT_EQ(back.result.payment, rec.result.payment);
  EXPECT_EQ(back.result.eta, rec.result.eta);
  EXPECT_EQ(back.result.k_max, rec.result.k_max);
  EXPECT_EQ(back.result.achieved_probability, rec.result.achieved_probability);
}

TEST(ResultIo, WriteIsDeterministic) {
  const ExperimentRecord rec = make_record(2);
  std::ostringstream a;
  std::ostringstream b;
  write_record(rec, a);
  write_record(rec, b);
  EXPECT_EQ(a.str(), b.str());
}

TEST(ResultIo, LoadedRecordPassesAudit) {
  const ExperimentRecord rec = make_record(3);
  std::ostringstream out;
  write_record(rec, out);
  std::istringstream in(out.str());
  const ExperimentRecord back = read_record(in);
  const AuditReport report = audit_payments(back.tree(), back.asks,
                                            back.result, back.discount_base);
  EXPECT_TRUE(report.ok) << (report.violations.empty()
                                 ? ""
                                 : report.violations.front());
}

TEST(ResultIo, AuditCatchesTamperedFile) {
  const ExperimentRecord rec = make_record(4);
  std::ostringstream out;
  write_record(rec, out);
  // Skim money in the serialized payments line: bump one hex digit.
  std::string text = out.str();
  const auto pos = text.find("\npayment ");
  ASSERT_NE(pos, std::string::npos);
  // Replace the payment line with all-doubled payments.
  std::string doubled = "\npayment";
  for (double p : rec.result.payment) {
    char buf[64];
    // Deliberately the legacy printf-%a writer: this test forges a record
    // in the historical on-disk form to prove read_record still takes it.
    // rit-lint: allow(no-locale-numeric)
    std::snprintf(buf, sizeof(buf), " %a", p * 2 + 1.0);
    doubled += buf;
  }
  doubled += "\n";
  text = text.substr(0, pos) + doubled;
  std::istringstream in(text);
  const ExperimentRecord back = read_record(in);
  const AuditReport report = audit_payments(back.tree(), back.asks,
                                            back.result, back.discount_base);
  EXPECT_FALSE(report.ok);
}

TEST(ResultIo, RejectsBadHeaderAndTruncation) {
  std::istringstream bad("not-a-record\n");
  EXPECT_THROW(read_record(bad), CheckFailure);

  const ExperimentRecord rec = make_record(5);
  std::ostringstream out;
  write_record(rec, out);
  const std::string full = out.str();
  std::istringstream truncated(full.substr(0, full.size() / 2));
  EXPECT_THROW(read_record(truncated), CheckFailure);
}

TEST(ResultIo, RejectsInconsistentSizes) {
  std::istringstream in(
      "ritcs-record v1\n"
      "discount 0x1p-1\n"
      "job 1\n"
      "users 2\n"
      "ask 0 1 0x1p+0\n"
      "ask 0 1 0x1p+0\n"
      "tree 0 0\n"  // should be 3 entries for 2 users
      "success 0\n");
  EXPECT_THROW(read_record(in), CheckFailure);
}

TEST(ResultIo, ZeroUserRecordRoundTrips) {
  ExperimentRecord rec;
  rec.job = Job(std::vector<std::uint32_t>{1});
  rec.tree_parents = {0};  // platform only
  rec.result.success = false;
  std::ostringstream out;
  write_record(rec, out);
  std::istringstream in(out.str());
  const ExperimentRecord back = read_record(in);
  EXPECT_TRUE(back.asks.empty());
  EXPECT_FALSE(back.result.success);
  EXPECT_EQ(back.tree().num_participants(), 0u);
}

TEST(ResultIo, GoldenFormatV1IsStable) {
  // Freeze the v1 wire format: a hand-written record must keep parsing
  // exactly like this forever (bump the header version for any change).
  const std::string golden =
      "ritcs-record v1\n"
      "discount 0x1p-1\n"
      "job 2 1\n"
      "users 2\n"
      "ask 0 2 0x1.8p+1\n"
      "ask 1 1 0x1p+2\n"
      "tree 0 0 1\n"
      "success 1\n"
      "eta 0x1.999999999999ap-1\n"
      "kmax 2\n"
      "degraded 0\n"
      "achieved 0x1.8p-1\n"
      "allocation 2 1\n"
      "auction_payment 0x1.cp+2 0x1.2p+2\n"
      "payment 0x1.cp+2 0x1.cap+2\n";
  std::istringstream in(golden);
  const ExperimentRecord rec = read_record(in);
  EXPECT_EQ(rec.discount_base, 0.5);
  EXPECT_EQ(rec.job.demand_vector(), (std::vector<std::uint32_t>{2, 1}));
  EXPECT_EQ(rec.asks[0].value, 3.0);
  EXPECT_EQ(rec.asks[1].type, rit::TaskType{1});
  EXPECT_EQ(rec.tree_parents, (std::vector<std::uint32_t>{0, 0, 1}));
  EXPECT_TRUE(rec.result.success);
  EXPECT_EQ(rec.result.allocation, (std::vector<std::uint32_t>{2, 1}));
  EXPECT_EQ(rec.result.auction_payment[0], 7.0);
  EXPECT_EQ(rec.result.k_max, 2u);
  // And writing it back reproduces the same bytes.
  std::ostringstream out;
  write_record(rec, out);
  EXPECT_EQ(out.str(), golden);
}

TEST(ResultIo, FileRoundTrip) {
  const ExperimentRecord rec = make_record(6);
  const std::string path = ::testing::TempDir() + "/ritcs_record_test.rec";
  write_record_file(rec, path);
  const ExperimentRecord back = read_record_file(path);
  EXPECT_EQ(back.result.payment, rec.result.payment);
  std::remove(path.c_str());
  EXPECT_THROW(read_record_file("/no/such/record.rec"), CheckFailure);
}

}  // namespace
}  // namespace rit::core
