#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "obs/history.h"
#include "sim/chaos.h"
#include "sim/guarded.h"
#include "stats/timer.h"

namespace rit::obs {
namespace {

namespace fs = std::filesystem;

std::string fresh_path(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / "ritcs_history";
  fs::create_directories(dir);
  const fs::path p = dir / name;
  fs::remove(p);
  return p.string();
}

// Two doubles are "the same field" only if their bit patterns match — the
// ledger's %.17g contract is stronger than value equality.
bool bit_equal(double a, double b) {
  std::uint64_t ua = 0;
  std::uint64_t ub = 0;
  std::memcpy(&ua, &a, sizeof(a));
  std::memcpy(&ub, &b, sizeof(b));
  return ua == ub;
}

HistoryRecord sample_record(double wall_ms) {
  HistoryRecord rec;
  rec.bench = "fig6a_utility_vs_users";
  rec.env = {"Test CPU @ 2.0GHz", 8, "performance", "testc++ 1.0",
             "Release:-O2", "abc123def456"};
  rec.threads = 4;
  rec.trials = 32;
  rec.scale = 10.0;
  rec.points = 6;
  rec.wall_ms = wall_ms;
  rec.phases.push_back({"sim.trial", 32, wall_ms * 0.75, wall_ms * 0.5,
                        {{"cycles", 123456789u}, {"instructions", 987654321u}}});
  rec.phases.push_back({"tree.build", 6, wall_ms * 0.2, wall_ms * 0.2, {}});
  rec.run_counters = {{"instructions", 2000000000u}, {"alloc_count", 4242u}};
  // Deliberately awkward doubles: repeating binary fractions, denormal-ish
  // magnitudes, negative zero — the round-trip must preserve all of them.
  rec.stats["sim.trial_ms"] =
      HistoryStat{32, 0.1 + 0.2, 1.0 / 3.0, 4.9406564584124654e-312, -0.0};
  rec.stats["rit.payment"] = HistoryStat{32, 3.141592653589793, 2.5e-17,
                                         -17.25, 1.0e300};
  return rec;
}

TEST(HistoryRecordIo, RoundTripIsBitExact) {
  const HistoryRecord rec = sample_record(125.375);
  const std::string line = history_record_json(rec);
  EXPECT_EQ(line.find('\n'), std::string::npos) << "must be a single line";

  HistoryRecord back;
  std::string error;
  ASSERT_TRUE(parse_history_record(line, back, error)) << error;
  EXPECT_EQ(back, rec);

  // operator== on doubles is value equality (-0.0 == 0.0 would pass it);
  // check the raw bits of every double field explicitly.
  EXPECT_TRUE(bit_equal(back.wall_ms, rec.wall_ms));
  EXPECT_TRUE(bit_equal(back.scale, rec.scale));
  ASSERT_EQ(back.phases.size(), rec.phases.size());
  for (std::size_t i = 0; i < rec.phases.size(); ++i) {
    EXPECT_TRUE(bit_equal(back.phases[i].total_ms, rec.phases[i].total_ms));
    EXPECT_TRUE(bit_equal(back.phases[i].self_ms, rec.phases[i].self_ms));
    EXPECT_EQ(back.phases[i].counters, rec.phases[i].counters);
  }
  for (const auto& [name, st] : rec.stats) {
    const HistoryStat& got = back.stats.at(name);
    EXPECT_TRUE(bit_equal(got.mean, st.mean)) << name;
    EXPECT_TRUE(bit_equal(got.m2, st.m2)) << name;
    EXPECT_TRUE(bit_equal(got.min, st.min)) << name;
    EXPECT_TRUE(bit_equal(got.max, st.max)) << name;
    EXPECT_EQ(got.count, st.count) << name;
    // And the restored accumulator must continue from the exact state.
    EXPECT_EQ(got.to_online_stats().count(), st.count) << name;
  }
}

TEST(HistoryRecordIo, StringEscapesSurviveRoundTrip) {
  HistoryRecord rec = sample_record(1.0);
  rec.env.cpu_model = "weird \"quoted\"\\model\twith\ncontrol";
  rec.bench = "bench/with\"specials";
  const std::string line = history_record_json(rec);
  HistoryRecord back;
  std::string error;
  ASSERT_TRUE(parse_history_record(line, back, error)) << error;
  EXPECT_EQ(back.env.cpu_model, rec.env.cpu_model);
  EXPECT_EQ(back.bench, rec.bench);
}

TEST(HistoryRecordIo, RejectsMalformedAndFutureSchema) {
  HistoryRecord out;
  std::string error;
  EXPECT_FALSE(parse_history_record("not json at all", out, error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(parse_history_record("{\"schema_version\": 1}", out, error));
  EXPECT_FALSE(
      parse_history_record("{\"schema_version\": 99, \"bench\": \"x\"}", out,
                           error));
  EXPECT_NE(error.find("schema"), std::string::npos) << error;

  // A truncated copy of a valid line — the classic torn-write shape.
  const std::string line = history_record_json(sample_record(2.0));
  EXPECT_FALSE(
      parse_history_record(line.substr(0, line.size() / 2), out, error));
}

TEST(HistoryFileIo, MissingFileReadsAsEmptyLedger) {
  const HistoryFile f = read_history(fresh_path("never_written.jsonl"));
  EXPECT_TRUE(f.records.empty());
  EXPECT_TRUE(f.rejected.empty());
}

TEST(HistoryFileIo, AppendAccumulatesWithoutRewritingHistory) {
  const std::string path = fresh_path("append.jsonl");
  append_history(path, sample_record(100.0));
  append_history(path, sample_record(101.5));

  const HistoryFile f = read_history(path);
  ASSERT_EQ(f.records.size(), 2u);
  EXPECT_TRUE(f.rejected.empty());
  EXPECT_TRUE(bit_equal(f.records[0].wall_ms, 100.0));
  EXPECT_TRUE(bit_equal(f.records[1].wall_ms, 101.5));
}

TEST(HistoryFileIo, CorruptLinesAreSkippedReportedAndPreserved) {
  const std::string path = fresh_path("corrupt.jsonl");
  append_history(path, sample_record(50.0));
  {
    std::ofstream out(path, std::ios::app);
    out << "{\"schema_version\": 1, truncated garbage\n";
  }
  append_history(path, sample_record(51.0));

  const HistoryFile f = read_history(path);
  ASSERT_EQ(f.records.size(), 2u);
  ASSERT_EQ(f.rejected.size(), 1u);
  EXPECT_EQ(f.rejected[0].line_no, 2u);
  EXPECT_FALSE(f.rejected[0].reason.empty());

  // Append-only means the corrupt line is still physically in the file.
  std::ifstream in(path);
  std::string file_line;
  std::size_t garbage_lines = 0;
  while (std::getline(in, file_line)) {
    if (file_line.find("truncated garbage") != std::string::npos) {
      ++garbage_lines;
    }
  }
  EXPECT_EQ(garbage_lines, 1u);
}

TEST(HistoryDiff, IdenticalLedgersAreClean) {
  const std::vector<HistoryRecord> ledger = {sample_record(100.0),
                                             sample_record(102.0)};
  const DiffResult d = diff_history(ledger, ledger);
  EXPECT_FALSE(d.any_regression);
  EXPECT_FALSE(d.env_mismatch);
  ASSERT_FALSE(d.rows.empty());
  for (const DiffRow& row : d.rows) {
    EXPECT_FALSE(row.regression) << row.phase << "/" << row.metric;
    EXPECT_FALSE(row.improvement) << row.phase << "/" << row.metric;
    EXPECT_DOUBLE_EQ(row.ratio, 1.0);
  }
}

TEST(HistoryDiff, MinOfNCollapsesRepeatNoise) {
  // Baseline has one noisy outlier run; min-of-N must use the 100ms floor,
  // so a 105ms current run is within the 10% threshold — not a regression.
  const std::vector<HistoryRecord> baseline = {sample_record(100.0),
                                               sample_record(180.0)};
  const std::vector<HistoryRecord> current = {sample_record(105.0)};
  const DiffResult d = diff_history(baseline, current);
  EXPECT_FALSE(d.any_regression);
}

TEST(HistoryDiff, TwoXSlowdownFlagsRegression) {
  const std::vector<HistoryRecord> baseline = {sample_record(100.0)};
  const std::vector<HistoryRecord> current = {sample_record(200.0)};
  const DiffResult d = diff_history(baseline, current);
  EXPECT_TRUE(d.any_regression);

  bool wall_flagged = false;
  for (const DiffRow& row : d.rows) {
    if (row.phase == "(run)" && row.metric == "wall_ms") {
      wall_flagged = row.regression;
      EXPECT_NEAR(row.ratio, 2.0, 1e-12);
    }
  }
  EXPECT_TRUE(wall_flagged);
}

TEST(HistoryDiff, SpeedupReportsImprovementNotRegression) {
  const std::vector<HistoryRecord> baseline = {sample_record(200.0)};
  const std::vector<HistoryRecord> current = {sample_record(100.0)};
  const DiffResult d = diff_history(baseline, current);
  EXPECT_FALSE(d.any_regression);
  bool improved = false;
  for (const DiffRow& row : d.rows) improved = improved || row.improvement;
  EXPECT_TRUE(improved);
}

TEST(HistoryDiff, TinyAbsoluteDeltasNeverFlag) {
  // +50% relative but only 0.15ms absolute: under the 0.5ms floor.
  HistoryRecord base = sample_record(0.3);
  HistoryRecord cur = sample_record(0.45);
  const DiffResult d = diff_history({base}, {cur});
  EXPECT_FALSE(d.any_regression);
}

TEST(HistoryDiff, GatedCountersFlagButNoisyCountersOnlyReport) {
  HistoryRecord base = sample_record(100.0);
  HistoryRecord cur = sample_record(100.0);
  // instructions (gated) and cache_misses (reported-only) both triple, far
  // past the 25% + 1e7 floors.
  base.run_counters = {{"instructions", 100000000u},
                       {"cache_misses", 100000000u}};
  cur.run_counters = {{"instructions", 300000000u},
                      {"cache_misses", 300000000u}};
  const DiffResult d = diff_history({base}, {cur});
  bool instr_flag = false;
  bool cache_flag = false;
  bool cache_seen = false;
  for (const DiffRow& row : d.rows) {
    if (row.phase != "(run)") continue;
    if (row.metric == "instructions") instr_flag = row.regression;
    if (row.metric == "cache_misses") {
      cache_seen = true;
      cache_flag = row.regression;
    }
  }
  EXPECT_TRUE(instr_flag);
  EXPECT_TRUE(cache_seen);
  EXPECT_FALSE(cache_flag);
  EXPECT_TRUE(d.any_regression);
}

TEST(HistoryDiff, EnvMismatchIsSurfacedAdvisory) {
  HistoryRecord base = sample_record(100.0);
  HistoryRecord cur = sample_record(100.0);
  cur.env.compiler = "otherc++ 2.0";
  const DiffResult d = diff_history({base}, {cur});
  EXPECT_TRUE(d.env_mismatch);
  EXPECT_FALSE(d.any_regression);
}

TEST(HistoryDiff, NewBenchInCurrentDoesNotCrashOrFlag) {
  HistoryRecord cur = sample_record(100.0);
  cur.bench = "brand_new_bench";
  const DiffResult d = diff_history({sample_record(100.0)}, {cur});
  EXPECT_FALSE(d.any_regression);
}

TEST(HistoryEnv, FingerprintFieldsAreAlwaysPopulated) {
  const EnvFingerprint env = collect_env_fingerprint();
  EXPECT_FALSE(env.cpu_model.empty());
  EXPECT_FALSE(env.compiler.empty());
  EXPECT_FALSE(env.build_flags.empty());
  EXPECT_FALSE(env.git_sha.empty());
  EXPECT_GT(env.cores, 0u);
  // Stable within a process: two collections must agree, or the diff
  // tool's comparability warning becomes noise.
  EXPECT_EQ(collect_env_fingerprint(), env);
}

// The acceptance scenario end-to-end: a chaos-injected delay (the same
// injector the watchdog tests use) makes the measured run ~2x slower; the
// ledger diff must call that a regression, and the clean pair must not.
TEST(HistoryChaos, InjectedDelayShowsUpAsLedgerRegression) {
  const auto timed_run = [](double delay_ms) {
    sim::GuardPolicy policy;
    if (delay_ms > 0.0) {
      policy.chaos.delay_on_trial = 0;  // busy-wait inside trial 0
      policy.chaos.delay_ms = delay_ms;
    }
    stats::Timer wall;
    const sim::GuardedResult res = sim::run_trials_guarded(
        4, 2, policy,
        [](std::uint64_t, core::RitWorkspace&, std::string*) {
          sim::TrialMetrics m;
          m.success = true;
          m.avg_utility_rit = 1.0;
          return m;
        });
    EXPECT_EQ(res.metrics.trials, 4u);
    HistoryRecord rec = sample_record(wall.elapsed_ms());
    rec.bench = "chaos_delay_bench";
    return rec;
  };

  // The injected busy-wait dominates the baseline cost by construction:
  // baseline is four trivial trials, current adds a 40ms stall.
  const HistoryRecord fast_a = timed_run(0.0);
  const HistoryRecord fast_b = timed_run(0.0);
  const HistoryRecord slow = timed_run(40.0);
  ASSERT_GE(slow.wall_ms, 40.0);

  const DiffResult regressed = diff_history({fast_a}, {slow});
  bool wall_regressed = false;
  for (const DiffRow& row : regressed.rows) {
    if (row.bench == "chaos_delay_bench" && row.metric == "wall_ms") {
      wall_regressed = row.regression;
    }
  }
  EXPECT_TRUE(wall_regressed);
  EXPECT_TRUE(regressed.any_regression);

  // Two clean runs of the same trivial workload stay within the generous
  // default thresholds' absolute floor.
  const DiffResult clean = diff_history({fast_a}, {fast_b});
  for (const DiffRow& row : clean.rows) {
    if (row.metric != "wall_ms") continue;
    EXPECT_FALSE(row.regression && std::abs(row.current - row.baseline) < 0.5);
  }
}

}  // namespace
}  // namespace rit::obs
