#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/check.h"
#include "rng/rng.h"
#include "stats/chi_square.h"
#include "stats/histogram.h"
#include "stats/online_stats.h"
#include "stats/percentile.h"
#include "stats/timer.h"

namespace rit::stats {
namespace {

TEST(OnlineStats, EmptyIsZero) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.sum(), 0.0);
}

TEST(OnlineStats, MeanAndVarianceMatchClosedForm) {
  OnlineStats s;
  const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  for (double x : xs) s.add(x);
  EXPECT_EQ(s.count(), xs.size());
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance of this classic data set is 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(OnlineStats, SingleSampleHasZeroVariance) {
  OnlineStats s;
  s.add(3.5);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.ci95_half_width(), 0.0);
}

TEST(OnlineStats, MergeEqualsSequential) {
  OnlineStats all;
  OnlineStats left;
  OnlineStats right;
  for (int i = 0; i < 100; ++i) {
    const double x = std::sin(i) * 10.0 + i * 0.1;
    all.add(x);
    (i < 37 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(OnlineStats, MergeWithEmptySides) {
  OnlineStats a;
  OnlineStats b;
  b.add(1.0);
  b.add(3.0);
  a.merge(b);  // empty.merge(nonempty)
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  OnlineStats c;
  a.merge(c);  // nonempty.merge(empty)
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  EXPECT_EQ(a.count(), 2u);
}

TEST(OnlineStats, Ci95ShrinksWithSamples) {
  OnlineStats small;
  OnlineStats large;
  for (int i = 0; i < 10; ++i) small.add(i % 2 == 0 ? 1.0 : -1.0);
  for (int i = 0; i < 1000; ++i) large.add(i % 2 == 0 ? 1.0 : -1.0);
  EXPECT_GT(small.ci95_half_width(), large.ci95_half_width());
}

TEST(Percentile, MedianOfOddAndEven) {
  const std::vector<double> odd{5.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(median(odd), 3.0);
  const std::vector<double> even{4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(median(even), 2.5);
}

TEST(Percentile, ExtremesAreMinMax) {
  const std::vector<double> xs{9.0, 2.0, 7.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 2.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 9.0);
}

TEST(Percentile, LinearInterpolation) {
  const std::vector<double> xs{0.0, 10.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.25), 2.5);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.75), 7.5);
}

TEST(Percentile, SingleElement) {
  const std::vector<double> xs{42.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.3), 42.0);
}

TEST(Percentile, EmptyInputRejected) {
  const std::vector<double> empty;
  EXPECT_THROW(quantile(empty, 0.5), CheckFailure);
}

TEST(Percentile, BatchQuantilesMatchSingles) {
  const std::vector<double> xs{3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0};
  const std::vector<double> qs{0.1, 0.5, 0.9};
  auto batch = quantiles(xs, qs);
  ASSERT_EQ(batch.size(), 3u);
  for (const auto& [q, v] : batch) {
    EXPECT_DOUBLE_EQ(v, quantile(xs, q));
  }
}

TEST(Histogram, BucketsCountsAndEdges) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.0);   // bucket 0
  h.add(1.99);  // bucket 0
  h.add(2.0);   // bucket 1
  h.add(9.99);  // bucket 4
  h.add(-1.0);  // underflow
  h.add(10.0);  // overflow (hi edge is exclusive)
  EXPECT_EQ(h.count(), 6u);
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(4), 1u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_DOUBLE_EQ(h.bucket_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bucket_lo(4), 8.0);
}

TEST(Histogram, RenderMentionsCounts) {
  Histogram h(0.0, 1.0, 2);
  h.add(0.25);
  h.add(0.75);
  h.add(0.8);
  const std::string r = h.render(10);
  EXPECT_NE(r.find("#"), std::string::npos);
  EXPECT_NE(r.find("2"), std::string::npos);
}

TEST(Histogram, InvalidConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), CheckFailure);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), CheckFailure);
}

TEST(ChiSquare, StatisticMatchesHandComputation) {
  const std::vector<std::uint64_t> observed{10, 20, 30};
  const std::vector<double> expected{20.0, 20.0, 20.0};
  // (10-20)^2/20 + 0 + (30-20)^2/20 = 5 + 0 + 5.
  EXPECT_DOUBLE_EQ(chi_square_statistic(observed, expected), 10.0);
}

TEST(ChiSquare, UniformHelperAgrees) {
  const std::vector<std::uint64_t> observed{10, 20, 30};
  const std::vector<double> expected{20.0, 20.0, 20.0};
  EXPECT_DOUBLE_EQ(chi_square_uniform(observed),
                   chi_square_statistic(observed, expected));
}

TEST(ChiSquare, PerfectFitIsZero) {
  const std::vector<std::uint64_t> observed{25, 25, 25, 25};
  EXPECT_DOUBLE_EQ(chi_square_uniform(observed), 0.0);
}

TEST(ChiSquare, CriticalValuesNearTables) {
  // Table values: X^2_(10, 0.01) = 23.21, X^2_(100, 0.01) = 135.81.
  EXPECT_NEAR(chi_square_critical(10, 0.01), 23.21, 0.5);
  EXPECT_NEAR(chi_square_critical(100, 0.01), 135.81, 1.0);
  EXPECT_GT(chi_square_critical(10, 0.001), chi_square_critical(10, 0.01));
}

TEST(ChiSquare, UniformRngPassesAtAlpha001) {
  // End-to-end use: 64-cell uniformity of Rng::uniform_index at alpha 0.001
  // (a fixed seed, so this never flakes: it is a regression pin, not a
  // hypothesis test).
  rit::rng::Rng rng(12345);
  std::vector<std::uint64_t> cells(64, 0);
  for (int i = 0; i < 64000; ++i) ++cells[rng.uniform_index(64)];
  EXPECT_LT(chi_square_uniform(cells), chi_square_critical(63, 0.001));
}

TEST(ChiSquare, DetectsABiasedDie) {
  std::vector<std::uint64_t> cells{100, 100, 100, 100, 100, 220};
  EXPECT_GT(chi_square_uniform(cells), chi_square_critical(5, 0.001));
}

TEST(ChiSquare, RejectsBadInputs) {
  const std::vector<std::uint64_t> observed{1, 2};
  const std::vector<double> bad_expected{1.0, 0.0};
  EXPECT_THROW(chi_square_statistic(observed, bad_expected), CheckFailure);
  EXPECT_THROW(chi_square_critical(5, 0.05), CheckFailure);
  const std::vector<std::uint64_t> zero{0, 0};
  EXPECT_THROW(chi_square_uniform(zero), CheckFailure);
}

TEST(Timer, MeasuresElapsedTimeMonotonically) {
  Timer t;
  const double a = t.elapsed_ms();
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + i * 1e-9;
  const double b = t.elapsed_ms();
  EXPECT_GE(a, 0.0);
  EXPECT_GE(b, a);
  t.reset();
  EXPECT_LE(t.elapsed_ms(), b + 1000.0);  // sanity: reset went backwards
}

TEST(Timer, ElapsedNsAgreesWithElapsedMs) {
  Timer t;
  double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + i * 1e-9;
  const std::uint64_t ns = t.elapsed_ns();
  const double ms = t.elapsed_ms();
  EXPECT_GT(ms, 0.0) << sink;
  // ns was read first, so it must not exceed the later ms reading.
  EXPECT_LE(static_cast<double>(ns) / 1e6, ms);
  // ...but the two readings bracket the same interval: within 100ms slack.
  EXPECT_GE(static_cast<double>(ns) / 1e6, ms - 100.0);
}

TEST(ScopedTimer, ReportsIntoOnlineStatsOnDestruction) {
  OnlineStats sink;
  {
    ScopedTimer timed(sink);
    EXPECT_EQ(sink.count(), 0u);  // nothing reported until scope exit
    double burn = 0.0;
    for (int i = 0; i < 10000; ++i) burn += i * 1e-9;
    EXPECT_GE(burn, 0.0);
  }
  EXPECT_EQ(sink.count(), 1u);
  EXPECT_GE(sink.mean(), 0.0);
  {
    ScopedTimer timed(sink);
  }
  EXPECT_EQ(sink.count(), 2u);
}

TEST(Histogram, MergeAddsBucketwise) {
  Histogram a(0.0, 10.0, 5);
  Histogram b(0.0, 10.0, 5);
  a.add(1.0);
  a.add(-1.0);  // underflow
  b.add(1.5);
  b.add(9.9);
  b.add(25.0);  // overflow
  a.merge(b);
  EXPECT_EQ(a.count(), 5u);
  EXPECT_EQ(a.bucket(0), 2u);  // 1.0 and 1.5
  EXPECT_EQ(a.bucket(4), 1u);  // 9.9
  EXPECT_EQ(a.underflow(), 1u);
  EXPECT_EQ(a.overflow(), 1u);
}

TEST(Histogram, MergeRejectsShapeMismatch) {
  Histogram a(0.0, 10.0, 5);
  Histogram b(0.0, 10.0, 6);
  EXPECT_THROW(a.merge(b), CheckFailure);
}

}  // namespace
}  // namespace rit::stats
