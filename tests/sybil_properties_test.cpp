// Sybil-proofness tests (Lemma 6.4 / Theorem 2).
//
// Two layers:
//  * deterministic: with auction payments held fixed, rewiring the tree by
//    any same-ask sybil plan never increases the attacker's total payment —
//    this isolates the payment-determination phase, where Lemma 6.4's
//    structural argument is exact per instance;
//  * statistical: over many mechanism seeds, the attacker's expected total
//    utility from full RIT runs does not exceed the truthful expectation
//    (within confidence slack), for chain, star, and random plans.
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "attack/sybil_apply.h"
#include "attack/sybil_plan.h"
#include "core/payment.h"
#include "core/rit.h"
#include "rng/rng.h"
#include "stats/online_stats.h"
#include "tree/builders.h"

namespace rit {
namespace {

using attack::AttackedInstance;
using attack::SybilPlan;
using core::Ask;
using core::Job;

struct Instance {
  Job job;
  std::vector<Ask> asks;
  tree::IncentiveTree tree;
  std::uint32_t victim;
};

// A healthy instance (m_i comfortably above 2*K_max) with a designated
// victim that has capability >= 6 and a subtree below it.
Instance make_instance(std::uint64_t seed) {
  rng::Rng rng(seed);
  const std::uint32_t n = 400;
  const std::uint32_t num_types = 3;
  std::vector<Ask> asks;
  for (std::uint32_t j = 0; j < n; ++j) {
    asks.push_back(Ask{
        TaskType{static_cast<std::uint32_t>(rng.uniform_index(num_types))},
        static_cast<std::uint32_t>(rng.uniform_int(1, 3)),
        rng.uniform_real_left_open(0.0, 10.0)});
  }
  auto t = tree::random_recursive_tree(n, 0.1, rng);
  // Victim: the participant with the largest subtree (most to lose/gain
  // through the tree), upgraded to capability 6 and a mid-range cost.
  std::uint32_t victim = 0;
  for (std::uint32_t i = 1; i < n; ++i) {
    if (t.subtree_size(tree::node_of_participant(i)) >
        t.subtree_size(tree::node_of_participant(victim))) {
      victim = i;
    }
  }
  asks[victim].quantity = 6;
  asks[victim].value = 4.0;
  return Instance{Job::uniform(num_types, 40), std::move(asks), std::move(t),
                  victim};
}

// ---------- deterministic payment-phase layer ----------

// Splits the victim's (fixed) auction payment across identities
// proportionally to their claimed quantities and checks the attacker's
// total tree payment never rises.
void check_payment_phase_sybil(const Instance& inst, const SybilPlan& plan,
                               const char* label) {
  const auto n = static_cast<std::uint32_t>(inst.asks.size());
  rng::Rng pay_rng(0x5eed ^ plan.delta());
  std::vector<double> pa(n);
  std::vector<TaskType> types(n);
  for (std::uint32_t j = 0; j < n; ++j) {
    pa[j] = pay_rng.uniform01() * 8.0;
    types[j] = inst.asks[j].type;
  }
  const auto before = core::tree_payments(inst.tree, types, pa, 0.5);
  const double attacker_before = before[plan.victim];

  const AttackedInstance attacked = attack::apply_sybil(inst.tree, inst.asks, plan);
  const auto n2 = static_cast<std::uint32_t>(attacked.asks.size());
  std::vector<double> pa2(n2, 0.0);
  std::vector<TaskType> types2(n2);
  for (std::uint32_t j = 0; j < n2; ++j) types2[j] = attacked.asks[j].type;
  for (std::uint32_t j = 0; j < n; ++j) {
    if (j != plan.victim) pa2[j] = pa[j];
  }
  // Same total auction payment, split proportionally to quantity (the
  // auction pays per unit, so a same-ask split keeps the per-unit price).
  const double per_unit =
      pa[plan.victim] / static_cast<double>(inst.asks[plan.victim].quantity);
  for (std::size_t l = 0; l < attacked.identity_participants.size(); ++l) {
    pa2[attacked.identity_participants[l]] =
        per_unit * plan.identities[l].quantity;
  }
  const auto after = core::tree_payments(attacked.tree, types2, pa2, 0.5);
  double attacker_after = 0.0;
  for (std::uint32_t p : attacked.identity_participants) {
    attacker_after += after[p];
  }
  EXPECT_LE(attacker_after, attacker_before + 1e-9)
      << label << " delta=" << plan.delta();

  // Lemma 6.4's flip side: honest users unrelated to the victim (neither
  // ancestors, who get diluted Alice-style, nor members of the victim's
  // subtree, whose depths may shift) are entirely untouched by the rewrite.
  const std::uint32_t victim_node = tree::node_of_participant(plan.victim);
  for (std::uint32_t j = 0; j < n; ++j) {
    if (j == plan.victim) continue;
    const std::uint32_t node = tree::node_of_participant(j);
    if (!inst.tree.is_ancestor(node, victim_node) &&
        !inst.tree.is_ancestor(victim_node, node)) {
      EXPECT_NEAR(after[j], before[j], 1e-9) << label << " bystander " << j;
    }
  }
}

class SybilPaymentPhase
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::uint32_t>> {};

INSTANTIATE_TEST_SUITE_P(
    Plans, SybilPaymentPhase,
    ::testing::Combine(::testing::Values<std::uint64_t>(1, 2, 3, 4, 5),
                       ::testing::Values<std::uint32_t>(2, 3, 6)));

TEST_P(SybilPaymentPhase, ChainNeverIncreasesAttackerTreePayment) {
  const auto [seed, delta] = GetParam();
  const Instance inst = make_instance(seed);
  check_payment_phase_sybil(
      inst, attack::chain_plan(inst.tree, inst.asks, inst.victim, delta, 4.0),
      "chain");
}

TEST_P(SybilPaymentPhase, StarNeverIncreasesAttackerTreePayment) {
  const auto [seed, delta] = GetParam();
  const Instance inst = make_instance(seed);
  check_payment_phase_sybil(
      inst, attack::star_plan(inst.tree, inst.asks, inst.victim, delta, 4.0),
      "star");
}

TEST_P(SybilPaymentPhase, RandomPlansNeverIncreaseAttackerTreePayment) {
  const auto [seed, delta] = GetParam();
  const Instance inst = make_instance(seed);
  rng::Rng rng(seed * 31 + delta);
  for (int rep = 0; rep < 5; ++rep) {
    check_payment_phase_sybil(
        inst,
        attack::random_plan(inst.tree, inst.asks, inst.victim, delta, 4.0, rng),
        "random");
  }
}

// Same-type identities can never feed tree rewards to each other: an
// identity chain where everything below is the victim's own type yields
// exactly zero solicitation reward for the attacker.
TEST(SybilPaymentPhase, OwnTypeContributionsAreAlwaysExcluded) {
  // Tree: root -> P0 -> P1 -> P2, all the same type.
  const auto t = tree::chain_tree(3);
  const std::vector<TaskType> types(3, TaskType{0});
  const std::vector<double> pa{3.0, 5.0, 7.0};
  const auto p = core::tree_payments(t, types, pa, 0.5);
  EXPECT_EQ(p, pa);
}

// ---------- statistical full-mechanism layer ----------

struct MeanComparison {
  double truthful_mean{0.0};
  double attacked_mean{0.0};
  double slack{0.0};
};

MeanComparison compare_means(const Instance& inst, const SybilPlan& plan,
                             int trials) {
  const AttackedInstance attacked = attack::apply_sybil(inst.tree, inst.asks, plan);
  const double cost = inst.asks[inst.victim].value;  // truthful: value == cost
  // Completion mode so the allocations (and hence utilities) are
  // non-trivial; the same-ask sybil analysis of Lemma 6.4 is round-count
  // independent.
  core::RitConfig cfg;
  cfg.round_budget_policy = core::RoundBudgetPolicy::kRunToCompletion;
  stats::OnlineStats truthful;
  stats::OnlineStats attacked_stats;
  for (int t = 0; t < trials; ++t) {
    const std::uint64_t seed = 0xace0 + static_cast<std::uint64_t>(t);
    {
      rng::Rng rng(seed);
      const core::RitResult r =
          core::run_rit(inst.job, inst.asks, inst.tree, cfg, rng);
      truthful.add(r.utility_of(inst.victim, cost));
    }
    {
      rng::Rng rng(seed);
      const core::RitResult r =
          core::run_rit(inst.job, attacked.asks, attacked.tree, cfg, rng);
      attacked_stats.add(attacked.attacker_utility(r, cost));
    }
  }
  MeanComparison cmp;
  cmp.truthful_mean = truthful.mean();
  cmp.attacked_mean = attacked_stats.mean();
  cmp.slack = truthful.ci95_half_width() + attacked_stats.ci95_half_width();
  return cmp;
}

TEST(SybilFullMechanism, SameAskChainDoesNotProfitInExpectation) {
  const Instance inst = make_instance(11);
  const auto plan =
      attack::chain_plan(inst.tree, inst.asks, inst.victim, 3,
                         inst.asks[inst.victim].value);
  const MeanComparison cmp = compare_means(inst, plan, 250);
  EXPECT_LE(cmp.attacked_mean, cmp.truthful_mean + cmp.slack + 0.05)
      << "truthful=" << cmp.truthful_mean << " attacked=" << cmp.attacked_mean;
}

TEST(SybilFullMechanism, SameAskStarDoesNotProfitInExpectation) {
  const Instance inst = make_instance(12);
  const auto plan = attack::star_plan(inst.tree, inst.asks, inst.victim, 6,
                                      inst.asks[inst.victim].value);
  const MeanComparison cmp = compare_means(inst, plan, 250);
  EXPECT_LE(cmp.attacked_mean, cmp.truthful_mean + cmp.slack + 0.05);
}

TEST(SybilFullMechanism, OverbiddingSybilDoesNotProfitInExpectation) {
  const Instance inst = make_instance(13);
  const auto plan = attack::chain_plan(inst.tree, inst.asks, inst.victim, 2,
                                       inst.asks[inst.victim].value * 1.4);
  const MeanComparison cmp = compare_means(inst, plan, 250);
  EXPECT_LE(cmp.attacked_mean, cmp.truthful_mean + cmp.slack + 0.05);
}

TEST(SybilFullMechanism, RandomPlansDoNotProfitInExpectation) {
  const Instance inst = make_instance(14);
  rng::Rng plan_rng(99);
  for (std::uint32_t delta : {2u, 4u, 6u}) {
    const auto plan = attack::random_plan(inst.tree, inst.asks, inst.victim,
                                          delta, inst.asks[inst.victim].value,
                                          plan_rng);
    const MeanComparison cmp = compare_means(inst, plan, 200);
    EXPECT_LE(cmp.attacked_mean, cmp.truthful_mean + cmp.slack + 0.05)
        << "delta=" << delta;
  }
}

}  // namespace
}  // namespace rit
