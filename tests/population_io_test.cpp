#include <gtest/gtest.h>

#include <sstream>

#include "common/check.h"
#include "sim/population_io.h"
#include "sim/runner.h"

namespace rit::sim {
namespace {

TEST(PopulationIo, ParsesCsvWithHeaderAndComments) {
  std::istringstream in(
      "type,quantity,cost\n"
      "# a comment\n"
      "0,2,1.5\n"
      "1,1,3.25\n"
      "\n"
      "0 3 0.5  # whitespace form works too\n");
  const Population pop = read_population(in);
  ASSERT_EQ(pop.size(), 3u);
  EXPECT_EQ(pop.truthful_asks[0].type, TaskType{0});
  EXPECT_EQ(pop.truthful_asks[0].quantity, 2u);
  EXPECT_DOUBLE_EQ(pop.truthful_asks[0].value, 1.5);
  EXPECT_DOUBLE_EQ(pop.costs[1], 3.25);
  EXPECT_EQ(pop.truthful_asks[2].quantity, 3u);
}

TEST(PopulationIo, RoundTripsBitExactly) {
  Scenario s;
  s.num_users = 120;
  s.num_types = 4;
  rng::Rng rng(1);
  const Population pop = generate_population(s, rng);
  std::ostringstream out;
  write_population(pop, out);
  std::istringstream in(out.str());
  const Population back = read_population(in);
  ASSERT_EQ(back.size(), pop.size());
  for (std::size_t j = 0; j < pop.size(); ++j) {
    EXPECT_EQ(back.truthful_asks[j], pop.truthful_asks[j]);
    EXPECT_EQ(back.costs[j], pop.costs[j]);  // exact via hex-floats
  }
}

TEST(PopulationIo, RejectsMalformedRows) {
  std::istringstream missing("0,2\n");
  EXPECT_THROW(read_population(missing), CheckFailure);
  std::istringstream trailing("0,2,1.5,extra\n");
  EXPECT_THROW(read_population(trailing), CheckFailure);
  std::istringstream bad_cost("0,2,free\n");
  EXPECT_THROW(read_population(bad_cost), CheckFailure);
  std::istringstream zero_qty("0,0,1.5\n");
  EXPECT_THROW(read_population(zero_qty), CheckFailure);
  std::istringstream empty("# nothing\n");
  EXPECT_THROW(read_population(empty), CheckFailure);
  EXPECT_THROW(read_population_file("/no/such/pop.csv"), CheckFailure);
}

TEST(RunUntilPrecision, StopsWhenTight) {
  Scenario s;
  s.num_users = 300;
  s.num_types = 2;
  s.tasks_per_type = 15;
  s.k_max = 4;
  s.seed = 3;
  // A loose target should stop early; a tight one runs to the cap.
  const AggregateMetrics loose = run_until_precision(s, 10.0, 3, 50);
  EXPECT_GE(loose.trials, 3u);
  EXPECT_LE(loose.trials, 50u);
  EXPECT_LE(loose.avg_utility_rit.ci95_half_width(), 10.0);
  const AggregateMetrics tight = run_until_precision(s, 1e-9, 3, 8);
  EXPECT_EQ(tight.trials, 8u);  // cap reached
  EXPECT_GE(tight.trials, loose.trials);
}

TEST(RunUntilPrecision, RejectsBadBounds) {
  Scenario s;
  EXPECT_THROW(run_until_precision(s, 0.0), CheckFailure);
  EXPECT_THROW(run_until_precision(s, 1.0, 1, 10), CheckFailure);
  EXPECT_THROW(run_until_precision(s, 1.0, 10, 5), CheckFailure);
}

}  // namespace
}  // namespace rit::sim
