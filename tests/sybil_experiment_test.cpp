#include <gtest/gtest.h>

#include "common/check.h"
#include "attack/sybil_experiment.h"

namespace rit::attack {
namespace {

sim::Scenario tiny_scenario() {
  sim::Scenario s;
  s.num_users = 400;
  s.num_types = 4;
  s.demand_lo = 10;
  s.demand_hi = 40;
  s.k_max = 10;
  s.initial_joiners = 4;
  s.seed = 5;
  return s;
}

TEST(SybilExperiment, ProducesOnePointPerDelta) {
  SybilExperimentConfig cfg;
  cfg.victim_capability = 8;
  cfg.delta_lo = 2;
  cfg.delta_hi = 5;
  cfg.trials = 3;
  const auto series = run_sybil_experiment(tiny_scenario(), cfg);
  ASSERT_EQ(series.size(), 4u);
  for (std::size_t i = 0; i < series.size(); ++i) {
    EXPECT_EQ(series[i].identities, 2 + i);
    EXPECT_EQ(series[i].utility.size(), cfg.ask_values.size());
    for (const auto& st : series[i].utility) {
      EXPECT_EQ(st.count(), cfg.trials);
    }
    EXPECT_EQ(series[i].honest.count(), cfg.trials);
  }
}

TEST(SybilExperiment, HonestReferenceIsDeltaIndependent) {
  // The honest run does not involve the plan, so the reference must be
  // identical at every identity count.
  SybilExperimentConfig cfg;
  cfg.victim_capability = 6;
  cfg.delta_lo = 2;
  cfg.delta_hi = 4;
  cfg.trials = 4;
  const auto series = run_sybil_experiment(tiny_scenario(), cfg);
  ASSERT_GE(series.size(), 2u);
  for (std::size_t i = 1; i < series.size(); ++i) {
    EXPECT_DOUBLE_EQ(series[i].honest.mean(), series[0].honest.mean());
  }
}

TEST(SybilExperiment, DeterministicAcrossRuns) {
  SybilExperimentConfig cfg;
  cfg.victim_capability = 6;
  cfg.delta_lo = 3;
  cfg.delta_hi = 3;
  cfg.trials = 3;
  const auto a = run_sybil_experiment(tiny_scenario(), cfg);
  const auto b = run_sybil_experiment(tiny_scenario(), cfg);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    for (std::size_t v = 0; v < a[i].utility.size(); ++v) {
      EXPECT_DOUBLE_EQ(a[i].utility[v].mean(), b[i].utility[v].mean());
    }
  }
}

TEST(SybilExperiment, AttackNeverBeatsHonestByMuch) {
  // The core sybil-proofness read-out at test scale: expected attacker
  // utility stays within statistical slack of the honest reference.
  SybilExperimentConfig cfg;
  cfg.victim_capability = 10;
  cfg.delta_lo = 2;
  cfg.delta_hi = 10;
  cfg.trials = 15;
  const auto series = run_sybil_experiment(tiny_scenario(), cfg);
  for (const auto& point : series) {
    for (std::size_t v = 0; v < point.utility.size(); ++v) {
      const double slack = point.utility[v].ci95_half_width() +
                           point.honest.ci95_half_width() + 0.05;
      EXPECT_LE(point.utility[v].mean(), point.honest.mean() + slack)
          << "delta=" << point.identities << " ask index " << v;
    }
  }
}

TEST(SybilExperiment, RejectsInvalidConfig) {
  SybilExperimentConfig cfg;
  cfg.delta_lo = 1;  // must be >= 2
  EXPECT_THROW(run_sybil_experiment(tiny_scenario(), cfg), CheckFailure);
  cfg.delta_lo = 2;
  cfg.delta_hi = 30;  // above capability
  cfg.victim_capability = 17;
  EXPECT_THROW(run_sybil_experiment(tiny_scenario(), cfg), CheckFailure);
  cfg.delta_hi = 10;
  cfg.ask_values.clear();
  EXPECT_THROW(run_sybil_experiment(tiny_scenario(), cfg), CheckFailure);
}

}  // namespace
}  // namespace rit::attack
