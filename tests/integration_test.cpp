// End-to-end integration tests: the full pipeline (graph -> tree ->
// population -> job -> RIT -> metrics) at small scale, plus the Fig. 9
// experiment flow on a reduced instance.
#include <gtest/gtest.h>

#include <vector>

#include "attack/sybil_apply.h"
#include "attack/sybil_plan.h"
#include "core/rit.h"
#include "sim/runner.h"
#include "stats/online_stats.h"

namespace rit {
namespace {

sim::Scenario base_scenario() {
  sim::Scenario s;
  s.num_users = 800;
  s.num_types = 5;
  s.tasks_per_type = 40;
  s.k_max = 6;
  s.initial_joiners = 5;
  s.seed = 2024;
  return s;
}

TEST(Integration, PaperScaledScenarioMostlySucceeds) {
  const sim::Scenario s = base_scenario();
  const sim::AggregateMetrics agg = sim::run_many(s, 8);
  // With supply ~ 800 * 3.5 / 5 = 560 asks per type against demand 40, the
  // allocation should essentially always complete.
  EXPECT_GE(agg.success_rate(), 0.75);
  EXPECT_GT(agg.total_payment_rit.mean(), 0.0);
}

TEST(Integration, PaymentPhaseAddsBoundedPremium) {
  const sim::Scenario s = base_scenario();
  for (std::uint64_t t = 0; t < 5; ++t) {
    const sim::TrialMetrics m = sim::run_trial(s, t);
    if (!m.success) continue;
    EXPECT_GE(m.total_payment_rit, m.total_payment_auction);
    EXPECT_LE(m.total_payment_rit, 2.0 * m.total_payment_auction + 1e-6);
    EXPECT_GE(m.avg_utility_rit, m.avg_utility_auction);
  }
}

TEST(Integration, WholePipelineIsReproducible) {
  const sim::Scenario s = base_scenario();
  const sim::TrialMetrics a = sim::run_trial(s, 3);
  const sim::TrialMetrics b = sim::run_trial(s, 3);
  EXPECT_EQ(a.success, b.success);
  EXPECT_DOUBLE_EQ(a.avg_utility_rit, b.avg_utility_rit);
  EXPECT_DOUBLE_EQ(a.total_payment_rit, b.total_payment_rit);
  EXPECT_DOUBLE_EQ(a.solicitation_premium, b.solicitation_premium);
}

TEST(Integration, MoreUsersDepressAverageUtility) {
  // The Fig. 6(a) trend at test scale: doubling the user pool increases
  // competition and decreases average utility. Averaged over trials with a
  // generous margin (the trend is statistical, not per-run).
  sim::Scenario small = base_scenario();
  small.num_users = 600;
  sim::Scenario large = base_scenario();
  large.num_users = 2400;
  const auto agg_small = sim::run_many(small, 6);
  const auto agg_large = sim::run_many(large, 6);
  EXPECT_GT(agg_small.avg_utility_rit.mean(),
            agg_large.avg_utility_rit.mean());
}

TEST(Integration, BiggerJobsRaiseTotalPayment) {
  // The Fig. 7(b) trend at test scale.
  sim::Scenario small_job = base_scenario();
  small_job.tasks_per_type = 20;
  sim::Scenario large_job = base_scenario();
  large_job.tasks_per_type = 80;
  const auto agg_small = sim::run_many(small_job, 6);
  const auto agg_large = sim::run_many(large_job, 6);
  EXPECT_GT(agg_large.total_payment_rit.mean(),
            agg_small.total_payment_rit.mean());
}

TEST(Integration, Fig9FlowSybilUtilityDoesNotGrowWithIdentities) {
  // Reduced Fig. 9: a victim with capability 8, identities 2 vs 8, same
  // truthful ask value. Expected attacker utility must not increase with
  // the identity count (sybil-proofness; utility typically shrinks).
  const sim::Scenario s = base_scenario();
  sim::TrialInstance inst = sim::make_instance(s, 1);
  // Upgrade a mid-tree user into the designated attacker.
  const std::uint32_t victim = 17;
  inst.population.truthful_asks[victim].quantity = 8;
  inst.population.truthful_asks[victim].value = 5.5;
  inst.population.costs[victim] = 5.5;

  auto mean_attacker_utility = [&](std::uint32_t delta) {
    stats::OnlineStats st;
    for (int trial = 0; trial < 120; ++trial) {
      rng::Rng plan_rng(1000 + trial);
      const auto plan =
          attack::random_plan(inst.tree, inst.population.truthful_asks, victim,
                              delta, 5.5, plan_rng);
      const auto attacked =
          attack::apply_sybil(inst.tree, inst.population.truthful_asks, plan);
      rng::Rng rng(0xf19 + static_cast<std::uint64_t>(trial));
      const auto r = core::run_rit(inst.job, attacked.asks, attacked.tree,
                                   s.mechanism, rng);
      st.add(attacked.attacker_utility(r, 5.5));
    }
    return st;
  };

  const auto few = mean_attacker_utility(2);
  const auto many = mean_attacker_utility(8);
  EXPECT_LE(many.mean(),
            few.mean() + few.ci95_half_width() + many.ci95_half_width() + 0.05);
}

TEST(Integration, DegradedFlagSurfacesOnAggressiveParameters) {
  // Fig. 9's own parameter regime (m_i small vs K_max) must raise the
  // probability_degraded diagnostic rather than silently claiming H.
  sim::Scenario s = base_scenario();
  s.tasks_per_type = 10;  // 2*K_max = 12 > m_i = 10
  const sim::TrialMetrics m = sim::run_trial(s, 0);
  EXPECT_TRUE(m.probability_degraded);
}

}  // namespace
}  // namespace rit
