#include <gtest/gtest.h>

#include <vector>

#include "baselines/kth_price_auction.h"
#include "common/check.h"
#include "core/efficiency.h"
#include "core/rit.h"
#include "rng/rng.h"

namespace rit::core {
namespace {

TEST(Efficiency, AllocationCostSumsUnitCosts) {
  const std::vector<Ask> asks{{TaskType{0}, 3, 2.0}, {TaskType{0}, 2, 5.0}};
  const std::vector<std::uint32_t> x{2, 1};
  EXPECT_DOUBLE_EQ(allocation_cost(asks, x), 2 * 2.0 + 5.0);
  const std::vector<std::uint32_t> over{4, 0};
  EXPECT_THROW(allocation_cost(asks, over), CheckFailure);
}

TEST(Efficiency, OptimalCostPicksCheapestUnits) {
  // Type 0 demand 3: cheapest units are 1.0, 1.0 (user 0) and 2.0 (user 2).
  const Job job(std::vector<std::uint32_t>{3});
  const std::vector<Ask> asks{{TaskType{0}, 2, 1.0},
                              {TaskType{0}, 5, 9.0},
                              {TaskType{0}, 1, 2.0}};
  EXPECT_DOUBLE_EQ(optimal_cost(job, asks), 4.0);
}

TEST(Efficiency, OptimalCostInfeasibleIsNegative) {
  const Job job(std::vector<std::uint32_t>{10});
  const std::vector<Ask> asks{{TaskType{0}, 2, 1.0}};
  EXPECT_LT(optimal_cost(job, asks), 0.0);
}

TEST(Efficiency, RatioIsOneForCheapestAssignment) {
  const Job job(std::vector<std::uint32_t>{2});
  const std::vector<Ask> asks{{TaskType{0}, 1, 1.0},
                              {TaskType{0}, 1, 2.0},
                              {TaskType{0}, 1, 8.0}};
  const std::vector<std::uint32_t> cheapest{1, 1, 0};
  EXPECT_DOUBLE_EQ(cost_efficiency(job, asks, cheapest), 1.0);
  const std::vector<std::uint32_t> wasteful{1, 0, 1};
  EXPECT_NEAR(cost_efficiency(job, asks, wasteful), 3.0 / 9.0, 1e-12);
}

TEST(Efficiency, KthPriceIsCostOptimal) {
  // The deterministic baseline allocates exactly the cheapest units.
  rng::Rng rng(1);
  std::vector<Ask> asks;
  for (int j = 0; j < 120; ++j) {
    asks.push_back(Ask{TaskType{0},
                       static_cast<std::uint32_t>(rng.uniform_int(1, 3)),
                       rng.uniform_real_left_open(0.0, 10.0)});
  }
  const Job job(std::vector<std::uint32_t>{40});
  const auto out = baselines::multi_unit_kth_price(job, asks);
  ASSERT_TRUE(out.success);
  EXPECT_NEAR(cost_efficiency(job, asks, out.allocation), 1.0, 1e-9);
}

TEST(Efficiency, RitPaysAnAllocativePriceForRandomization) {
  // CRA's lottery deliberately spreads wins above the cheapest units: the
  // efficiency sits strictly below 1 but should stay in a sane band.
  rng::Rng setup(2);
  std::vector<Ask> asks;
  for (int j = 0; j < 300; ++j) {
    asks.push_back(Ask{TaskType{0},
                       static_cast<std::uint32_t>(setup.uniform_int(1, 3)),
                       setup.uniform_real_left_open(0.0, 10.0)});
  }
  const Job job(std::vector<std::uint32_t>{80});
  RitConfig cfg;
  cfg.round_budget_policy = RoundBudgetPolicy::kRunToCompletion;
  double total_eff = 0.0;
  int successes = 0;
  for (int t = 0; t < 30; ++t) {
    rng::Rng rng(100 + t);
    const RitResult r = run_auction_phase(job, asks, cfg, rng);
    if (!r.success) continue;
    ++successes;
    const double eff = cost_efficiency(job, asks, r.allocation);
    EXPECT_GT(eff, 0.2);
    EXPECT_LE(eff, 1.0 + 1e-12);
    total_eff += eff;
  }
  ASSERT_GT(successes, 10);
  EXPECT_LT(total_eff / successes, 0.999);  // strictly sub-optimal on average
}

TEST(Efficiency, ZeroAllocationGivesZero) {
  const Job job(std::vector<std::uint32_t>{1});
  const std::vector<Ask> asks{{TaskType{0}, 1, 1.0}, {TaskType{0}, 1, 2.0}};
  const std::vector<std::uint32_t> none{0, 0};
  EXPECT_DOUBLE_EQ(cost_efficiency(job, asks, none), 0.0);
}

}  // namespace
}  // namespace rit::core
