#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "common/check.h"
#include "graph/edge_list_io.h"
#include "graph/generators.h"
#include "graph/graph.h"

namespace rit::graph {
namespace {

TEST(Graph, EmptyGraph) {
  Graph g(0, {});
  EXPECT_EQ(g.num_nodes(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(Graph, AdjacencyAndDegrees) {
  Graph g(4, {{0, 1}, {0, 2}, {2, 1}, {3, 0}});
  EXPECT_EQ(g.num_edges(), 4u);
  auto n0 = g.out_neighbors(0);
  ASSERT_EQ(n0.size(), 2u);
  EXPECT_EQ(n0[0], 1u);
  EXPECT_EQ(n0[1], 2u);
  EXPECT_EQ(g.out_degree(1), 0u);
  EXPECT_EQ(g.in_degree(1), 2u);
  EXPECT_EQ(g.in_degree(3), 0u);
  EXPECT_TRUE(g.has_edge(0, 2));
  EXPECT_FALSE(g.has_edge(2, 0));
}

TEST(Graph, DeduplicatesParallelEdges) {
  Graph g(3, {{0, 1}, {0, 1}, {1, 2}});
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.in_degree(1), 1u);
}

TEST(Graph, RejectsSelfLoopsAndOutOfRange) {
  EXPECT_THROW(Graph(2, {{0, 0}}), CheckFailure);
  EXPECT_THROW(Graph(2, {{0, 2}}), CheckFailure);
}

TEST(Graph, SourcesAreInDegreeZeroNodes) {
  Graph g(4, {{0, 1}, {1, 2}});
  const auto s = g.sources();
  EXPECT_EQ(s, (std::vector<std::uint32_t>{0, 3}));
}

TEST(Graph, EdgesRoundTrip) {
  std::vector<Edge> in{{0, 1}, {1, 2}, {2, 0}};
  Graph g(3, in);
  EXPECT_EQ(g.edges(), in);
}

TEST(Generators, BarabasiAlbertShape) {
  rng::Rng rng(1);
  const Graph g = barabasi_albert(500, 3, rng);
  EXPECT_EQ(g.num_nodes(), 500u);
  // Seed clique has 4*3 edges; each later node adds exactly 3 in-edges.
  EXPECT_EQ(g.num_edges(), 12u + (500u - 4u) * 3u);
  for (std::uint32_t v = 4; v < 500; ++v) {
    EXPECT_GE(g.in_degree(v), 3u);
  }
}

TEST(Generators, BarabasiAlbertIsHeavyTailed) {
  rng::Rng rng(2);
  const Graph g = barabasi_albert(2000, 2, rng);
  std::size_t max_deg = 0;
  for (std::uint32_t v = 0; v < g.num_nodes(); ++v) {
    max_deg = std::max(max_deg, g.out_degree(v));
  }
  // Preferential attachment produces hubs far above the mean degree (~2).
  EXPECT_GT(max_deg, 20u);
}

TEST(Generators, BarabasiAlbertDeterministicGivenSeed) {
  rng::Rng a(7);
  rng::Rng b(7);
  EXPECT_EQ(barabasi_albert(200, 3, a).edges(),
            barabasi_albert(200, 3, b).edges());
}

TEST(Generators, ErdosRenyiDensityMatchesP) {
  rng::Rng rng(3);
  const std::uint32_t n = 300;
  const double p = 0.02;
  const Graph g = erdos_renyi(n, p, rng);
  const double expected = p * n * (n - 1);
  EXPECT_NEAR(static_cast<double>(g.num_edges()), expected, 0.25 * expected);
}

TEST(Generators, ErdosRenyiExtremes) {
  rng::Rng rng(4);
  EXPECT_EQ(erdos_renyi(50, 0.0, rng).num_edges(), 0u);
  EXPECT_EQ(erdos_renyi(20, 1.0, rng).num_edges(), 20u * 19u);
}

TEST(Generators, WattsStrogatzUnrewiredIsRegularRing) {
  rng::Rng rng(5);
  const Graph g = watts_strogatz(20, 4, 0.0, rng);
  // Each node gets k/2 forward edges, mirrored: out-degree k.
  for (std::uint32_t v = 0; v < 20; ++v) {
    EXPECT_EQ(g.out_degree(v), 4u);
  }
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(0, 2));
  EXPECT_TRUE(g.has_edge(1, 0));
}

TEST(Generators, WattsStrogatzRewiredStaysSimple) {
  rng::Rng rng(6);
  const Graph g = watts_strogatz(100, 6, 0.5, rng);
  for (const Edge& e : g.edges()) {
    EXPECT_NE(e.from, e.to);
    EXPECT_LT(e.from, 100u);
    EXPECT_LT(e.to, 100u);
  }
}

TEST(Generators, ConfigurationModelDegreesWithinBounds) {
  rng::Rng rng(10);
  const Graph g = configuration_model(1000, 2.0, 50, rng);
  EXPECT_EQ(g.num_nodes(), 1000u);
  for (std::uint32_t u = 0; u < 1000; ++u) {
    EXPECT_GE(g.out_degree(u), 1u);
    EXPECT_LE(g.out_degree(u), 50u);
  }
}

TEST(Generators, ConfigurationModelIsSimple) {
  rng::Rng rng(11);
  const Graph g = configuration_model(300, 1.8, 40, rng);
  // Graph's constructor dedups; equality of edge count and stub count means
  // no duplicates were produced (or were cleanly rejected).
  for (const Edge& e : g.edges()) EXPECT_NE(e.from, e.to);
}

TEST(Generators, ConfigurationModelZipfTail) {
  // With exponent 2, P(degree = 1) ~ 1/zeta-ish dominates and the max is
  // far above the mean: heavy-tailed like a follower graph.
  rng::Rng rng(12);
  const Graph g = configuration_model(5000, 2.0, 200, rng);
  std::size_t ones = 0;
  std::size_t max_deg = 0;
  double sum = 0.0;
  for (std::uint32_t u = 0; u < g.num_nodes(); ++u) {
    const std::size_t d = g.out_degree(u);
    ones += d == 1 ? 1 : 0;
    max_deg = std::max(max_deg, d);
    sum += static_cast<double>(d);
  }
  EXPECT_GT(static_cast<double>(ones) / g.num_nodes(), 0.45);
  EXPECT_GT(static_cast<double>(max_deg), 10.0 * sum / g.num_nodes());
}

TEST(Generators, ConfigurationModelDeterministicAndValidating) {
  rng::Rng a(13);
  rng::Rng b(13);
  EXPECT_EQ(configuration_model(200, 2.2, 30, a).edges(),
            configuration_model(200, 2.2, 30, b).edges());
  rng::Rng rng(14);
  EXPECT_THROW(configuration_model(1, 2.0, 1, rng), CheckFailure);
  EXPECT_THROW(configuration_model(10, 1.0, 3, rng), CheckFailure);
  EXPECT_THROW(configuration_model(10, 2.0, 10, rng), CheckFailure);
}

TEST(Generators, ConfigurationModelDegenerateMaxDegree) {
  // max_degree = n-1 forces the rejection fallback into action sometimes;
  // the result must still be simple and complete.
  rng::Rng rng(15);
  const Graph g = configuration_model(12, 1.2, 11, rng);
  for (const Edge& e : g.edges()) EXPECT_NE(e.from, e.to);
  for (std::uint32_t u = 0; u < 12; ++u) EXPECT_GE(g.out_degree(u), 1u);
}

TEST(Generators, StarAndPathAndComplete) {
  const Graph s = star(5);
  EXPECT_EQ(s.num_edges(), 4u);
  EXPECT_EQ(s.out_degree(0), 4u);
  const Graph p = path(4);
  EXPECT_TRUE(p.has_edge(0, 1));
  EXPECT_TRUE(p.has_edge(2, 3));
  EXPECT_EQ(p.num_edges(), 3u);
  const Graph c = complete(4);
  EXPECT_EQ(c.num_edges(), 12u);
}

TEST(EdgeListIo, ParsesCommentsAndRemapsIds) {
  std::istringstream in(
      "# a comment\n"
      "10 20\n"
      "20 30  # trailing comment\n"
      "\n"
      "10 30\n");
  const Graph g = read_edge_list(in);
  EXPECT_EQ(g.num_nodes(), 3u);  // {10,20,30} -> {0,1,2}
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 2));
  EXPECT_TRUE(g.has_edge(0, 2));
}

TEST(EdgeListIo, DropsSelfLoops) {
  std::istringstream in("1 1\n1 2\n");
  const Graph g = read_edge_list(in);
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(EdgeListIo, RejectsMalformedLines) {
  std::istringstream in("1\n");
  EXPECT_THROW(read_edge_list(in), CheckFailure);
  std::istringstream in2("1 2 3\n");
  EXPECT_THROW(read_edge_list(in2), CheckFailure);
}

TEST(EdgeListIo, WriteReadRoundTrip) {
  rng::Rng rng(8);
  const Graph g = barabasi_albert(50, 2, rng);
  std::stringstream buf;
  write_edge_list(g, buf);
  const Graph g2 = read_edge_list(buf);
  EXPECT_EQ(g2.num_nodes(), g.num_nodes());
  EXPECT_EQ(g2.edges(), g.edges());
}

TEST(EdgeListIo, MissingFileThrows) {
  EXPECT_THROW(read_edge_list_file("/nonexistent/path/to/graph.txt"),
               CheckFailure);
}

}  // namespace
}  // namespace rit::graph
