#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "common/check.h"
#include "platform/campaign.h"
#include "platform/ledger.h"

namespace rit::platform {
namespace {

CampaignConfig small_config(std::uint64_t seed = 21) {
  CampaignConfig cfg;
  cfg.scenario.num_users = 600;
  cfg.scenario.num_types = 3;
  cfg.scenario.tasks_per_type = 25;
  cfg.scenario.k_max = 5;
  cfg.scenario.initial_joiners = 4;
  cfg.scenario.seed = seed;
  return cfg;
}

TEST(Ledger, SettleSplitsSensingAndSolicitation) {
  core::RitResult r;
  r.success = true;
  r.allocation = {2, 0, 1};
  r.auction_payment = {10.0, 0.0, 4.0};
  r.payment = {12.5, 3.0, 4.0};
  const std::vector<AccountId> accounts{100, 200, 300};
  Ledger ledger;
  const std::size_t posted = ledger.settle(r, accounts, "camp-1");
  // Account 100: sensing + solicitation; 200: solicitation only; 300:
  // sensing only -> 4 transactions.
  EXPECT_EQ(posted, 4u);
  EXPECT_DOUBLE_EQ(ledger.balance_of(100), 12.5);
  EXPECT_DOUBLE_EQ(ledger.balance_of(200), 3.0);
  EXPECT_DOUBLE_EQ(ledger.balance_of(300), 4.0);
  EXPECT_DOUBLE_EQ(ledger.platform_outflow(), 19.5);
  EXPECT_TRUE(ledger.balanced());
  bool saw_solicitation_memo = false;
  for (const Transaction& t : ledger.campaign_transactions("camp-1")) {
    saw_solicitation_memo |= t.memo == "solicitation";
  }
  EXPECT_TRUE(saw_solicitation_memo);
}

TEST(Ledger, FailedRunSettlesNothing) {
  core::RitResult r;
  r.success = false;
  r.allocation = {0};
  r.auction_payment = {0.0};
  r.payment = {0.0};
  Ledger ledger;
  EXPECT_EQ(ledger.settle(r, std::vector<AccountId>{1}, "bad"), 0u);
  EXPECT_EQ(ledger.num_transactions(), 0u);
}

TEST(Ledger, AccumulatesAcrossCampaigns) {
  core::RitResult r;
  r.success = true;
  r.allocation = {1};
  r.auction_payment = {5.0};
  r.payment = {5.0};
  const std::vector<AccountId> accounts{7};
  Ledger ledger;
  ledger.settle(r, accounts, "jan");
  ledger.settle(r, accounts, "feb");
  EXPECT_DOUBLE_EQ(ledger.balance_of(7), 10.0);
  EXPECT_EQ(ledger.campaign_transactions("jan").size(), 1u);
  EXPECT_EQ(ledger.campaign_transactions("feb").size(), 1u);
  // Transaction ids are unique and increasing.
  EXPECT_LT(ledger.transactions()[0].id, ledger.transactions()[1].id);
}

TEST(Ledger, SizeMismatchRejected) {
  core::RitResult r;
  r.success = true;
  r.allocation = {1, 1};
  r.auction_payment = {1.0, 1.0};
  r.payment = {1.0, 1.0};
  Ledger ledger;
  EXPECT_THROW(ledger.settle(r, std::vector<AccountId>{1}, "x"),
               CheckFailure);
}

TEST(Ledger, StatementMentionsEverything) {
  core::RitResult r;
  r.success = true;
  r.allocation = {1};
  r.auction_payment = {2.5};
  r.payment = {2.5};
  Ledger ledger;
  ledger.settle(r, std::vector<AccountId>{42}, "camp");
  std::ostringstream os;
  ledger.write_statement(os);
  EXPECT_NE(os.str().find("account 42"), std::string::npos);
  EXPECT_NE(os.str().find("sensing"), std::string::npos);
}

TEST(Campaign, LifecycleStateMachine) {
  Campaign c(small_config(), "lifecycle");
  EXPECT_FALSE(c.recruited());
  EXPECT_THROW(c.clear(), CheckFailure);       // not recruited
  Ledger ledger;
  EXPECT_THROW(c.settle(ledger), CheckFailure);  // not cleared
  c.recruit();
  EXPECT_TRUE(c.recruited());
  EXPECT_THROW(c.recruit(), CheckFailure);     // double recruit
  c.clear();
  EXPECT_TRUE(c.cleared());
  EXPECT_THROW(c.clear(), CheckFailure);       // double clear
  EXPECT_GT(c.settle(ledger), 0u);
  EXPECT_TRUE(ledger.balanced());
  // Settling twice would double-pay: must throw, ledger untouched.
  const double outflow = ledger.platform_outflow();
  EXPECT_THROW(c.settle(ledger), CheckFailure);
  EXPECT_DOUBLE_EQ(ledger.platform_outflow(), outflow);
}

TEST(Campaign, InstantModeUsesWholePopulation) {
  Campaign c(small_config(), "instant");
  c.recruit();
  EXPECT_EQ(c.num_participants(), 600u);
  EXPECT_EQ(c.tree().num_participants(), 600u);
}

TEST(Campaign, GrowthModeRecruitsFewer) {
  CampaignConfig cfg = small_config();
  cfg.mode = SolicitationMode::kGrowth;
  cfg.supply_multiple = 2.0;
  Campaign c(cfg, "growth");
  c.recruit();
  EXPECT_LT(c.num_participants(), 600u);
  EXPECT_GT(c.num_participants(), 0u);
  const auto& r = c.clear();
  EXPECT_TRUE(r.success);
}

TEST(Campaign, DynamicsModeStripsChurnedUsers) {
  CampaignConfig cfg = small_config(5);
  cfg.mode = SolicitationMode::kDynamics;
  cfg.supply_multiple = 3.0;
  cfg.dynamics.acceptance_prob = 0.95;
  cfg.dynamics.lifetime_mean = 30.0;
  Campaign c(cfg, "dynamics");
  c.recruit();
  EXPECT_GT(c.num_participants(), 0u);
  const auto& r = c.clear();
  // Supply was targeted at 3x before churn, so clearing usually succeeds;
  // either way the lifecycle and audit must hold.
  Ledger ledger;
  const std::size_t posted = c.settle(ledger);
  if (r.success) {
    EXPECT_GT(posted, 0u);
  } else {
    EXPECT_EQ(posted, 0u);
  }
}

TEST(Campaign, SettlementMatchesResultTotals) {
  Campaign c(small_config(9), "totals");
  c.recruit();
  const auto& r = c.clear();
  ASSERT_TRUE(r.success);
  Ledger ledger;
  c.settle(ledger);
  EXPECT_NEAR(ledger.platform_outflow(), r.total_payment(), 1e-9);
  // Spot-check one participant's balance against its payment.
  for (std::uint32_t j = 0; j < c.num_participants(); ++j) {
    if (r.payment[j] > 0.0) {
      EXPECT_NEAR(ledger.balance_of(c.account_of(j)), r.payment[j], 1e-9);
      break;
    }
  }
}

TEST(Campaign, RecordRoundTripsAndAudits) {
  Campaign c(small_config(11), "record");
  c.recruit();
  c.clear();
  const core::ExperimentRecord rec = c.record();
  const core::AuditReport audit =
      core::audit_payments(rec.tree(), rec.asks, rec.result, rec.discount_base);
  EXPECT_TRUE(audit.ok);
}

TEST(Campaign, DeterministicAcrossInstances) {
  Campaign a(small_config(13), "a");
  Campaign b(small_config(13), "b");
  a.recruit();
  b.recruit();
  a.clear();
  b.clear();
  EXPECT_EQ(a.result().payment, b.result().payment);
  EXPECT_EQ(a.result().allocation, b.result().allocation);
}

TEST(Campaign, MultipleCampaignsShareOneLedger) {
  Ledger ledger;
  double expected = 0.0;
  for (int month = 0; month < 3; ++month) {
    Campaign c(small_config(100 + month), "month-" + std::to_string(month));
    c.recruit();
    const auto& r = c.clear();
    if (!r.success) continue;
    c.settle(ledger);
    expected += r.total_payment();
  }
  EXPECT_NEAR(ledger.platform_outflow(), expected, 1e-6);
  EXPECT_TRUE(ledger.balanced());
}

TEST(Campaign, GrowthModeSurvivesUnreachableSupply) {
  // Demand far above what the whole graph can supply: recruit() exhausts
  // the graph, clear() fails closed, settle() posts nothing — no throws.
  CampaignConfig cfg = small_config(17);
  cfg.mode = SolicitationMode::kGrowth;
  cfg.scenario.tasks_per_type = 100000;
  Campaign c(cfg, "impossible");
  c.recruit();
  EXPECT_EQ(c.num_participants(), cfg.scenario.num_users);  // all recruited
  const auto& r = c.clear();
  EXPECT_FALSE(r.success);
  Ledger ledger;
  EXPECT_EQ(c.settle(ledger), 0u);
  EXPECT_EQ(ledger.num_transactions(), 0u);
}

TEST(Campaign, EmptyTagRejected) {
  EXPECT_THROW(Campaign(small_config(), ""), CheckFailure);
}

}  // namespace
}  // namespace rit::platform
