// Locale independence and strict-integer parsing for every format that
// crosses a file boundary.
//
// The first half runs the round-trip suites under a comma-decimal locale
// (de_DE-style): results, configs, populations and ledger lines must
// serialize and parse byte-identically whether the host locale writes
// "0.5" or "0,5". Containers frequently ship only the C locale, so these
// skip (rather than fail) when no comma-decimal locale is installed — the
// strictness tests in the second half run everywhere.
//
// The second half pins the strtoull bugfix: "-1" historically wrapped to
// 2^64-1 and leading whitespace / '+' / trailing junk parsed silently.
// Every integer that reaches a checkpoint, config or CLI flag now goes
// through rit::parse_u64/parse_u32, which reject all of those.
#include <gtest/gtest.h>

#include <clocale>
#include <cstdint>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "cli/args.h"
#include "common/check.h"
#include "common/format_util.h"
#include "common/num_io.h"
#include "core/result_io.h"
#include "core/rit.h"
#include "obs/history.h"
#include "rng/rng.h"
#include "sim/config_io.h"
#include "sim/population_io.h"
#include "tree/builders.h"

namespace rit {
namespace {

// --- Comma-decimal locale matrix -------------------------------------------

/// Switches the global C locale to a comma-decimal one for the test body;
/// restores the original locale afterwards. Skips when none is installed.
class CommaLocaleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const char* old = std::setlocale(LC_ALL, nullptr);
    old_locale_ = old == nullptr ? "C" : old;
    for (const char* name :
         {"de_DE.UTF-8", "de_DE.utf8", "fr_FR.UTF-8", "fr_FR.utf8",
          "es_ES.UTF-8", "it_IT.UTF-8", "pt_BR.UTF-8", "ru_RU.UTF-8"}) {
      if (std::setlocale(LC_ALL, name) != nullptr) {
        active_ = name;
        // Only trust the locale if it really uses a comma radix; otherwise
        // the round-trips below would not exercise anything.
        if (std::localeconv()->decimal_point[0] == ',') return;
      }
    }
    std::setlocale(LC_ALL, old_locale_.c_str());
    GTEST_SKIP() << "no comma-decimal locale installed";
  }

  void TearDown() override {
    std::setlocale(LC_ALL, old_locale_.c_str());
  }

  std::string old_locale_;
  std::string active_;
};

TEST_F(CommaLocaleTest, NumIoFormatsWithDotRadix) {
  EXPECT_EQ(format_double_fixed(1.5, 2), "1.50");
  EXPECT_EQ(format_double_shortest(0.1), "0.1");
  EXPECT_EQ(format_double_g17(2.5).substr(0, 3), "2.5");
  const double v = 0.1 + 0.2;
  EXPECT_EQ(parse_double(format_hex_double(v)), std::optional<double>(v));
  EXPECT_EQ(parse_double(format_double_g17(v)), std::optional<double>(v));
  EXPECT_EQ(parse_double(format_double_shortest(v)), std::optional<double>(v));
}

TEST_F(CommaLocaleTest, ParseDoubleStillWantsDotNotComma) {
  EXPECT_EQ(parse_double("0.5"), std::optional<double>(0.5));
  EXPECT_FALSE(parse_double("0,5").has_value());
}

TEST_F(CommaLocaleTest, ExperimentRecordRoundTripsBitExactly) {
  rng::Rng rng(11);
  const std::uint32_t n = 60;
  core::ExperimentRecord rec;
  rec.job = core::Job(std::vector<std::uint32_t>{12, 8});
  for (std::uint32_t j = 0; j < n; ++j) {
    rec.asks.push_back(core::Ask{
        TaskType{static_cast<std::uint32_t>(rng.uniform_index(2))},
        static_cast<std::uint32_t>(rng.uniform_int(1, 3)),
        rng.uniform_real_left_open(0.0, 10.0)});
  }
  const auto tree = tree::random_recursive_tree(n, 0.2, rng);
  rec.tree_parents = tree.parents();
  core::RitConfig cfg;
  cfg.round_budget_policy = core::RoundBudgetPolicy::kRunToCompletion;
  rec.discount_base = cfg.discount_base;
  rng::Rng mech(0xbeef);
  rec.result = core::run_rit(rec.job, rec.asks, tree, cfg, mech);

  std::ostringstream out;
  core::write_record(rec, out);
  EXPECT_EQ(out.str().find(','), std::string::npos)
      << "record leaked a locale radix under " << active_;
  std::istringstream in(out.str());
  const core::ExperimentRecord back = core::read_record(in);
  ASSERT_EQ(back.asks.size(), rec.asks.size());
  for (std::size_t j = 0; j < rec.asks.size(); ++j) {
    EXPECT_EQ(back.asks[j], rec.asks[j]);
  }
  EXPECT_EQ(back.result.payment, rec.result.payment);
  EXPECT_EQ(back.discount_base, rec.discount_base);
}

TEST_F(CommaLocaleTest, ScenarioRoundTripsDoubles) {
  sim::Scenario s;
  s.cost_max = 7.25;
  s.mechanism.h = 0.85;
  s.mechanism.discount_base = 0.375;
  s.er_degree = 6.5;
  s.ws_beta = 0.1;
  s.cm_exponent = 2.2;
  std::ostringstream out;
  sim::write_scenario(s, out);
  std::istringstream in(out.str());
  const sim::Scenario back = sim::read_scenario(in);
  EXPECT_EQ(back.cost_max, s.cost_max);
  EXPECT_EQ(back.mechanism.h, s.mechanism.h);
  EXPECT_EQ(back.mechanism.discount_base, s.mechanism.discount_base);
  EXPECT_EQ(back.er_degree, s.er_degree);
  EXPECT_EQ(back.ws_beta, s.ws_beta);
  EXPECT_EQ(back.cm_exponent, s.cm_exponent);
}

TEST_F(CommaLocaleTest, PopulationRoundTripsBitExactly) {
  rng::Rng rng(13);
  sim::Population pop;
  for (std::uint32_t j = 0; j < 50; ++j) {
    const double cost = rng.uniform_real_left_open(0.0, 10.0);
    pop.truthful_asks.push_back(core::Ask{
        TaskType{static_cast<std::uint32_t>(rng.uniform_index(3))},
        static_cast<std::uint32_t>(rng.uniform_int(1, 5)), cost});
    pop.costs.push_back(cost);
  }
  std::ostringstream out;
  sim::write_population(pop, out);
  std::istringstream in(out.str());
  const sim::Population back = sim::read_population(in);
  ASSERT_EQ(back.truthful_asks.size(), pop.truthful_asks.size());
  for (std::size_t j = 0; j < pop.truthful_asks.size(); ++j) {
    EXPECT_EQ(back.truthful_asks[j], pop.truthful_asks[j]);
  }
}

TEST_F(CommaLocaleTest, HistoryRecordRoundTripsBitExactly) {
  obs::HistoryRecord rec;
  rec.bench = "locale";
  rec.trials = 3;
  rec.scale = 12.5;
  rec.points = 2;
  rec.wall_ms = 0.1 + 0.2;
  obs::HistoryPhase ph;
  ph.name = "phase";
  ph.count = 1;
  ph.total_ms = 1.0 / 3.0;
  ph.self_ms = 2.0 / 7.0;
  rec.phases.push_back(ph);

  const std::string line = obs::history_record_json(rec);
  obs::HistoryRecord back;
  std::string error;
  ASSERT_TRUE(obs::parse_history_record(line, back, error)) << error;
  EXPECT_EQ(back.wall_ms, rec.wall_ms);
  ASSERT_EQ(back.phases.size(), 1u);
  EXPECT_EQ(back.phases[0].total_ms, rec.phases[0].total_ms);
  EXPECT_EQ(back.phases[0].self_ms, rec.phases[0].self_ms);
}

TEST_F(CommaLocaleTest, FormatUtilUsesDotRadix) {
  EXPECT_EQ(format_double(3.25, 2), "3.25");
  EXPECT_EQ(format_double(-0.5, 1), "-0.5");
}

// --- Strict integer / double parsing (locale-free) -------------------------

TEST(StrictIntParse, RejectsSignWhitespaceJunkAndOverflow) {
  // The strtoull wraparound bug: "-1" parsed as 18446744073709551615.
  EXPECT_FALSE(parse_u64("-1").has_value());
  EXPECT_FALSE(parse_u64("+1").has_value());
  EXPECT_FALSE(parse_u64(" 1").has_value());
  EXPECT_FALSE(parse_u64("1 ").has_value());
  EXPECT_FALSE(parse_u64("\t7").has_value());
  EXPECT_FALSE(parse_u64("12abc").has_value());
  EXPECT_FALSE(parse_u64("0x10").has_value());
  EXPECT_FALSE(parse_u64("").has_value());
  // Overflow must be an error, not a saturation.
  EXPECT_FALSE(parse_u64("18446744073709551616").has_value());
  EXPECT_FALSE(parse_u64("99999999999999999999999").has_value());
  EXPECT_EQ(parse_u64("18446744073709551615"),
            std::optional<std::uint64_t>(18446744073709551615ULL));
  EXPECT_EQ(parse_u64("0"), std::optional<std::uint64_t>(0));
}

TEST(StrictIntParse, U32RangeChecked) {
  EXPECT_EQ(parse_u32("4294967295"),
            std::optional<std::uint32_t>(4294967295u));
  EXPECT_FALSE(parse_u32("4294967296").has_value());
  EXPECT_FALSE(parse_u32("-1").has_value());
}

TEST(StrictDoubleParse, RejectsWhitespacePlusAndJunk) {
  EXPECT_FALSE(parse_double(" 1.5").has_value());
  EXPECT_FALSE(parse_double("+1.5").has_value());
  EXPECT_FALSE(parse_double("1.5abc").has_value());
  EXPECT_FALSE(parse_double("").has_value());
  EXPECT_FALSE(parse_double("-").has_value());
  EXPECT_EQ(parse_double("-1.5"), std::optional<double>(-1.5));
  EXPECT_EQ(parse_double("1e3"), std::optional<double>(1000.0));
  // Hex floats, with the printf-%a prefix and the bare to_chars form.
  EXPECT_EQ(parse_double("0x1.8p+1"), std::optional<double>(3.0));
  EXPECT_EQ(parse_double("-0x1.8p+1"), std::optional<double>(-3.0));
}

TEST(StrictIntParse, CliArgsRejectNegativeUnsigned) {
  const char* argv[] = {"bench", "--trials=-1"};
  cli::Args args(2, argv);
  EXPECT_THROW(args.get_u64("trials", 3), CheckFailure);
}

TEST(StrictIntParse, CliArgsRejectOverflowUnsigned) {
  const char* argv[] = {"bench", "--seed=18446744073709551616"};
  cli::Args args(2, argv);
  EXPECT_THROW(args.get_u64("seed", 42), CheckFailure);
}

TEST(StrictIntParse, ScenarioConfigRejectsNegativeCount) {
  std::istringstream in("users = -1\n");
  EXPECT_THROW(sim::read_scenario(in), CheckFailure);
}

TEST(StrictIntParse, ScenarioConfigRejectsTrailingJunk) {
  std::istringstream in("seed = 12q\n");
  EXPECT_THROW(sim::read_scenario(in), CheckFailure);
}

}  // namespace
}  // namespace rit
