#include <gtest/gtest.h>

#include <vector>

#include "baselines/contribution_tree.h"
#include "baselines/geometric_referral.h"
#include "baselines/kth_price_auction.h"
#include "baselines/naive_combo.h"
#include "common/check.h"
#include "tree/builders.h"

namespace rit::baselines {
namespace {

using core::Ask;
using core::Job;
using rit::TaskType;

TEST(KthPrice, BasicWinnersAndPrice) {
  const std::vector<double> asks{5.0, 2.0, 8.0, 3.0, 7.0};
  const auto o = kth_lowest_price_auction(asks, 2);
  EXPECT_TRUE(o.priced);
  EXPECT_EQ(o.num_winners, 2u);
  EXPECT_TRUE(o.won[1]);  // 2.0
  EXPECT_TRUE(o.won[3]);  // 3.0
  EXPECT_FALSE(o.won[0]);
  EXPECT_DOUBLE_EQ(o.clearing_price, 5.0);  // 3rd lowest
}

TEST(KthPrice, PaperSection4Example) {
  // Fig. 2 truthful case: asks expanded as (2, 2, 3, 5); two tasks; the
  // third-price auction pays 3 to each of P1's two winning unit asks.
  const std::vector<double> asks{2.0, 2.0, 3.0, 5.0};
  const auto o = kth_lowest_price_auction(asks, 2);
  EXPECT_TRUE(o.won[0]);
  EXPECT_TRUE(o.won[1]);
  EXPECT_DOUBLE_EQ(o.clearing_price, 3.0);
}

TEST(KthPrice, TieBreakTowardLowerIndex) {
  const std::vector<double> asks{4.0, 4.0, 4.0};
  const auto o = kth_lowest_price_auction(asks, 2);
  EXPECT_TRUE(o.won[0]);
  EXPECT_TRUE(o.won[1]);
  EXPECT_FALSE(o.won[2]);
  EXPECT_DOUBLE_EQ(o.clearing_price, 4.0);
}

TEST(KthPrice, UnpricedWhenTooFewAsks) {
  const std::vector<double> asks{1.0, 2.0};
  const auto o = kth_lowest_price_auction(asks, 2);
  EXPECT_FALSE(o.priced);
  EXPECT_EQ(o.num_winners, 0u);
}

TEST(KthPrice, ZeroItems) {
  const std::vector<double> asks{1.0};
  const auto o = kth_lowest_price_auction(asks, 0);
  EXPECT_TRUE(o.priced);
  EXPECT_EQ(o.num_winners, 0u);
}

TEST(KthPrice, TruthfulnessSpotCheck) {
  // A losing bidder cannot profit by underbidding below the price it would
  // pay its cost for; a winning bidder cannot change its price.
  const std::vector<double> truthful{2.0, 3.0, 5.0};
  const auto base = kth_lowest_price_auction(truthful, 1);
  EXPECT_DOUBLE_EQ(base.clearing_price, 3.0);
  // Bidder 2 (cost 5) underbids to 1.0: wins but is paid 2.0 < cost.
  const std::vector<double> shaded{2.0, 3.0, 1.0};
  const auto dev = kth_lowest_price_auction(shaded, 1);
  EXPECT_TRUE(dev.won[2]);
  EXPECT_LT(dev.clearing_price, 5.0);
}

TEST(MultiUnit, AllocatesPerTypeAndPaysUniformPrice) {
  const Job job(std::vector<std::uint32_t>{2, 1});
  const std::vector<Ask> asks{
      {TaskType{0}, 2, 2.0},  // wins both type-0 tasks
      {TaskType{0}, 1, 3.0},  // the price-setter
      {TaskType{1}, 1, 1.0},
      {TaskType{1}, 1, 4.0},
  };
  const auto o = multi_unit_kth_price(job, asks);
  EXPECT_TRUE(o.success);
  EXPECT_EQ(o.allocation[0], 2u);
  EXPECT_EQ(o.allocation[1], 0u);
  EXPECT_EQ(o.allocation[2], 1u);
  EXPECT_DOUBLE_EQ(o.auction_payment[0], 6.0);
  EXPECT_DOUBLE_EQ(o.auction_payment[2], 4.0);
  EXPECT_DOUBLE_EQ(o.clearing_price_by_type[0], 3.0);
  EXPECT_DOUBLE_EQ(o.clearing_price_by_type[1], 4.0);
}

TEST(MultiUnit, FailsClosedWhenAnyTypeUnpriceable) {
  const Job job(std::vector<std::uint32_t>{1, 1});
  const std::vector<Ask> asks{
      {TaskType{0}, 1, 2.0},
      {TaskType{0}, 1, 3.0},
      {TaskType{1}, 1, 1.0},  // only one type-1 ask: no 2nd price
  };
  const auto o = multi_unit_kth_price(job, asks);
  EXPECT_FALSE(o.success);
  for (auto a : o.allocation) EXPECT_EQ(a, 0u);
  for (auto p : o.auction_payment) EXPECT_EQ(p, 0.0);
}

TEST(ContributionTree, RelativeWeighting) {
  // chain: P0 <- P1 <- P2, contributions 0, 0, 8; own_weight 2, beta 1/2.
  const auto t = tree::chain_tree(3);
  const std::vector<double> c{0.0, 0.0, 8.0};
  ContributionTreeParams params;  // defaults: own 2, beta .5, relative
  const auto r = contribution_tree_rewards(t, c, params);
  EXPECT_DOUBLE_EQ(r[2], 16.0);  // 2 * own
  EXPECT_DOUBLE_EQ(r[1], 4.0);   // dist 1
  EXPECT_DOUBLE_EQ(r[0], 2.0);   // dist 2
}

TEST(ContributionTree, AbsoluteWeighting) {
  // Same chain but absolute depth: P2 is at depth 3, so both ancestors get
  // (1/2)^3 * 8 = 1.
  const auto t = tree::chain_tree(3);
  const std::vector<double> c{0.0, 0.0, 8.0};
  ContributionTreeParams params;
  params.weighting = DepthWeighting::kAbsolute;
  const auto r = contribution_tree_rewards(t, c, params);
  EXPECT_DOUBLE_EQ(r[1], 1.0);
  EXPECT_DOUBLE_EQ(r[0], 1.0);
}

TEST(ContributionTree, OwnWeightScalesOwnContribution) {
  const auto t = tree::flat_tree(1);
  ContributionTreeParams params;
  params.own_weight = 3.0;
  const auto r = contribution_tree_rewards(t, std::vector<double>{2.0}, params);
  EXPECT_DOUBLE_EQ(r[0], 6.0);
}

TEST(ContributionTree, DepthCutoffGivesDirectReferralBonus) {
  // chain P0 <- P1 <- P2, contribution only at the leaf. With max_depth 1
  // (query-incentive direct referral) only the immediate recruiter earns.
  const auto t = tree::chain_tree(3);
  const std::vector<double> c{0.0, 0.0, 8.0};
  ContributionTreeParams params;
  params.max_depth = 1;
  const auto r = contribution_tree_rewards(t, c, params);
  EXPECT_DOUBLE_EQ(r[1], 4.0);  // direct recruiter
  EXPECT_DOUBLE_EQ(r[0], 0.0);  // grandparent cut off
}

TEST(ContributionTree, NoCutoffMatchesDefault) {
  const auto t = tree::chain_tree(4);
  const std::vector<double> c{1.0, 2.0, 3.0, 4.0};
  ContributionTreeParams capped;
  capped.max_depth = 1000;
  EXPECT_EQ(contribution_tree_rewards(t, c, capped),
            contribution_tree_rewards(t, c, {}));
}

TEST(ContributionTree, RejectsNegativeContribution) {
  const auto t = tree::flat_tree(1);
  EXPECT_THROW(
      contribution_tree_rewards(t, std::vector<double>{-1.0}, {}),
      CheckFailure);
}

TEST(GeometricReferral, DarpaIntroNumbersHonestCase) {
  // Alice invites Bob; Bob finds the balloon worth $2000.
  // platform -> Alice (P0) -> Bob (P1).
  const auto t = tree::chain_tree(2);
  const std::vector<double> contributions{0.0, 2000.0};
  const auto r = geometric_referral_rewards(t, contributions);
  EXPECT_DOUBLE_EQ(r[1], 2000.0);  // Bob
  EXPECT_DOUBLE_EQ(r[0], 1000.0);  // Alice
}

TEST(GeometricReferral, DarpaIntroNumbersSybilCase) {
  // Bob splits into Bob2 (inviter) and Bob1 (finder):
  // platform -> Alice (P0) -> Bob2 (P1) -> Bob1 (P2).
  const auto t = tree::chain_tree(3);
  const std::vector<double> contributions{0.0, 0.0, 2000.0};
  const auto r = geometric_referral_rewards(t, contributions);
  EXPECT_DOUBLE_EQ(r[2], 2000.0);          // Bob1
  EXPECT_DOUBLE_EQ(r[1], 1000.0);          // Bob2
  EXPECT_DOUBLE_EQ(r[1] + r[2], 3000.0);   // Bob pockets $3000 > $2000
  EXPECT_DOUBLE_EQ(r[0], 500.0);           // Alice diluted from $1000
}

TEST(NaiveCombo, ComposesAuctionAndTree) {
  // platform -> P0 -> P1; P1 wins one type-1 task at price 4. With
  // own_weight 2 and relative beta 1/2, P1 gets 8 and P0 gets 2 despite no
  // contribution of its own.
  const Job job(std::vector<std::uint32_t>{1});
  const std::vector<Ask> asks{
      {TaskType{0}, 1, 9.0},
      {TaskType{0}, 1, 1.0},
  };
  // Need a third ask to price m+1 = 2nd lowest... adjust: use 3 users.
  const std::vector<Ask> asks3{
      {TaskType{0}, 1, 9.0},
      {TaskType{0}, 1, 1.0},
      {TaskType{0}, 1, 4.0},
  };
  const auto t = tree::chain_tree(3);
  const auto r = run_naive_combo(job, asks3, t);
  EXPECT_TRUE(r.success);
  EXPECT_EQ(r.allocation[1], 1u);
  EXPECT_DOUBLE_EQ(r.auction_payment[1], 4.0);
  EXPECT_DOUBLE_EQ(r.payment[1], 8.0);          // 2 * own
  EXPECT_DOUBLE_EQ(r.payment[0], 2.0);          // (1/2)^1 * 4
  (void)asks;
}

TEST(NaiveCombo, FailClosedPropagates) {
  const Job job(std::vector<std::uint32_t>{5});
  const std::vector<Ask> asks{{TaskType{0}, 1, 1.0}};
  const auto t = tree::flat_tree(1);
  const auto r = run_naive_combo(job, asks, t);
  EXPECT_FALSE(r.success);
  EXPECT_EQ(r.payment[0], 0.0);
}

TEST(NaiveCombo, UtilityAccessor) {
  NaiveComboResult r;
  r.allocation = {1};
  r.payment = {6.0};
  r.auction_payment = {3.0};
  EXPECT_DOUBLE_EQ(r.utility_of(0, 2.0), 4.0);
}

}  // namespace
}  // namespace rit::baselines
