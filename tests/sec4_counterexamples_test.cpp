// Section 4 of the paper: why a truthful auction and a sybil-proof incentive
// tree cannot simply be composed. These tests reconstruct both
// counterexamples against the naive combination (baselines/naive_combo.h)
// and verify RIT resists the same manipulations.
#include <gtest/gtest.h>

#include <vector>

#include "attack/sybil_apply.h"
#include "attack/sybil_plan.h"
#include "baselines/naive_combo.h"
#include "core/rit.h"
#include "rng/rng.h"
#include "stats/online_stats.h"
#include "tree/builders.h"
#include "tree/incentive_tree.h"

namespace rit {
namespace {

using baselines::run_naive_combo;
using core::Ask;
using core::Job;

// ----- Fig. 2 flavor: auctions break the tree's sybil-proofness -----
//
// Instance: chain platform -> P1 -> P2 -> P3 with truthful asks
// (tau1,2,2), (tau1,1,3), (tau1,1,5); the job needs two tau1 tasks.
// Under the 3rd-price auction P1 wins both tasks at price 3 (pA = 6).
// After P1 splits into P11 (1 task, ask 2) above P12 (1 task, ask 6), the
// clearing price inflates to 5 and P2's winning payment flows into the
// attacker's identities through the tree.

struct Fig2Instance {
  Job job{std::vector<std::uint32_t>{2}};
  std::vector<Ask> truthful{
      {TaskType{0}, 2, 2.0},  // P1 (participant 0)
      {TaskType{0}, 1, 3.0},  // P2 (participant 1)
      {TaskType{0}, 1, 5.0},  // P3 (participant 2)
  };
  tree::IncentiveTree tree = tree::chain_tree(3);
  double attacker_cost = 2.0;
};

TEST(Sec4Fig2, NaiveComboTruthfulBaseline) {
  Fig2Instance f;
  const auto r = run_naive_combo(f.job, f.truthful, f.tree);
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.allocation[0], 2u);
  EXPECT_DOUBLE_EQ(r.auction_payment[0], 6.0);  // two tasks at 3rd price 3
  // No descendants won anything, so the tree only doubles the own share.
  EXPECT_DOUBLE_EQ(r.payment[0], 12.0);
}

TEST(Sec4Fig2, NaiveComboSybilAttackProfits) {
  Fig2Instance f;
  // P1 -> {P11 (ask 2, 1 task), P12 child of P11 (ask 6, 1 task)}; P1's
  // child P2 is adopted by the deepest identity.
  attack::SybilPlan plan;
  plan.victim = 0;
  plan.identities = {{1, 2.0, attack::kOriginalParent}, {1, 6.0, 1}};
  plan.child_assignment = {2};
  const auto attacked = attack::apply_sybil(f.tree, f.truthful, plan);

  const auto honest = run_naive_combo(f.job, f.truthful, f.tree);
  const auto after = run_naive_combo(f.job, attacked.asks, attacked.tree);
  ASSERT_TRUE(after.success);
  // The clearing price was manipulated from 3 to 5.
  EXPECT_DOUBLE_EQ(after.auction_payment[0], 5.0);  // P11 wins one task
  EXPECT_DOUBLE_EQ(after.auction_payment[1], 5.0);  // P2 wins the other

  const double honest_utility = honest.utility_of(0, f.attacker_cost);
  double attacked_utility = 0.0;
  for (std::uint32_t p : attacked.identity_participants) {
    attacked_utility += after.utility_of(p, f.attacker_cost);
  }
  // The Sec. 4-A conclusion: the sybil attack strictly profits.
  EXPECT_GT(attacked_utility, honest_utility + 0.5)
      << "honest " << honest_utility << " vs attacked " << attacked_utility;
}

// ----- Fig. 3 flavor: trees break the auction's truthfulness -----
//
// Four sellers of one type with costs 5, 4, 5, 4; the job needs two tasks.
// Truthfully, P1 loses (winners are the two cost-4 users at price 5) and
// earns 0. If P1 shades its bid to 3.9 it wins at price 4 — an auction
// loss of 1 — but the tree's own-contribution amplification (2 * pA) turns
// the deviation into a strict profit.

struct Fig3Instance {
  Job job{std::vector<std::uint32_t>{2}};
  std::vector<Ask> truthful{
      {TaskType{0}, 1, 5.0},  // P1, a leaf in the tree
      {TaskType{0}, 1, 4.0},
      {TaskType{0}, 1, 5.0},
      {TaskType{0}, 1, 4.0},
  };
  tree::IncentiveTree tree = tree::flat_tree(4);
};

TEST(Sec4Fig3, NaiveComboTruthfulGivesZeroToLoser) {
  Fig3Instance f;
  const auto r = run_naive_combo(f.job, f.truthful, f.tree);
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.allocation[0], 0u);
  EXPECT_DOUBLE_EQ(r.payment[0], 0.0);
  EXPECT_DOUBLE_EQ(r.utility_of(0, 5.0), 0.0);
}

TEST(Sec4Fig3, NaiveComboOverbidToWinProfits) {
  Fig3Instance f;
  auto shaded = f.truthful;
  shaded[0].value = 3.9;
  const auto r = run_naive_combo(f.job, shaded, f.tree);
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.allocation[0], 1u);
  EXPECT_DOUBLE_EQ(r.auction_payment[0], 4.0);
  // Auction utility alone is 4 - 5 = -1 < 0...
  EXPECT_LT(r.auction_payment[0] - 5.0, 0.0);
  // ...but the naive tree pays 2*pA = 8, netting +3: untruthful.
  EXPECT_DOUBLE_EQ(r.payment[0], 8.0);
  EXPECT_GT(r.utility_of(0, 5.0), 0.0);
}

// ----- RIT resists both manipulations (statistically) -----

TEST(Sec4RitContrast, RitPaysTreeRewardWithoutOwnAmplification) {
  // The structural reason Fig. 3 cannot happen under RIT: the final payment
  // adds descendants' contributions but never multiplies one's own auction
  // payment. Winning at a price below cost is therefore a pure loss.
  Fig3Instance f;
  // Under RIT, with any tree, payment[j] - auction_payment[j] depends only
  // on descendants; for a leaf it is exactly zero.
  rng::Rng rng(5);
  const auto r = core::run_rit(f.job, f.truthful, f.tree, core::RitConfig{}, rng);
  if (!r.success) GTEST_SKIP() << "small-instance allocation failed";
  for (int j = 0; j < 4; ++j) {
    EXPECT_DOUBLE_EQ(r.payment[j], r.auction_payment[j]);  // all leaves
  }
}

TEST(Sec4RitContrast, PriceManipulationBySybilDoesNotPayUnderRit) {
  // A scaled-up Fig. 2: one type, healthy m_i, attacker with capability 6
  // near the top of a chain of winners. Compare expected attacker utility
  // honest-vs-attack (identities overbid to inflate the price) under RIT.
  rng::Rng setup(17);
  const std::uint32_t n = 300;
  std::vector<Ask> asks;
  for (std::uint32_t j = 0; j < n; ++j) {
    asks.push_back(Ask{TaskType{0},
                       static_cast<std::uint32_t>(setup.uniform_int(1, 3)),
                       setup.uniform_real_left_open(0.0, 10.0)});
  }
  const std::uint32_t attacker = 7;
  asks[attacker] = Ask{TaskType{0}, 6, 2.0};
  const Job job(std::vector<std::uint32_t>{100});
  const auto t = tree::random_recursive_tree(n, 0.1, setup);

  attack::SybilPlan plan;
  plan.victim = attacker;
  // Identity 1 keeps a competitive ask; identity 2 overbids to push the
  // clearing price, mirroring the Fig. 2 manipulation.
  plan.identities = {{3, 2.0, attack::kOriginalParent}, {3, 9.5, 1}};
  const auto kids = t.children(tree::node_of_participant(attacker));
  plan.child_assignment.assign(kids.size(), 2);
  const auto attacked = attack::apply_sybil(t, asks, plan);

  core::RitConfig cfg;
  cfg.round_budget_policy = core::RoundBudgetPolicy::kRunToCompletion;
  stats::OnlineStats honest;
  stats::OnlineStats dishonest;
  for (int trial = 0; trial < 300; ++trial) {
    const std::uint64_t seed = 0x600d + static_cast<std::uint64_t>(trial);
    {
      rng::Rng rng(seed);
      const auto r = core::run_rit(job, asks, t, cfg, rng);
      honest.add(r.utility_of(attacker, 2.0));
    }
    {
      rng::Rng rng(seed);
      const auto r =
          core::run_rit(job, attacked.asks, attacked.tree, cfg, rng);
      dishonest.add(attacked.attacker_utility(r, 2.0));
    }
  }
  const double slack =
      honest.ci95_half_width() + dishonest.ci95_half_width() + 0.1;
  EXPECT_LE(dishonest.mean(), honest.mean() + slack)
      << "honest " << honest.mean() << " vs attack " << dishonest.mean();
}

}  // namespace
}  // namespace rit
