#include <gtest/gtest.h>

#include <sstream>

#include "common/check.h"
#include "tree/builders.h"
#include "tree/dot_export.h"

namespace rit::tree {
namespace {

TEST(DotExport, BasicStructure) {
  const IncentiveTree t({0, 0, 0, 1});
  const std::string dot = to_dot(t);
  EXPECT_NE(dot.find("digraph \"incentive_tree\""), std::string::npos);
  EXPECT_NE(dot.find("n0 [label=\"platform\""), std::string::npos);
  EXPECT_NE(dot.find("n0 -> n1;"), std::string::npos);
  EXPECT_NE(dot.find("n0 -> n2;"), std::string::npos);
  EXPECT_NE(dot.find("n1 -> n3;"), std::string::npos);
  EXPECT_EQ(dot.find("n2 -> "), std::string::npos);  // leaf
  EXPECT_EQ(dot.back(), '\n');
}

TEST(DotExport, CustomLabelsAreEscaped) {
  const IncentiveTree t({0, 0});
  DotOptions opts;
  opts.label = [](std::uint32_t node) {
    return node == 0 ? std::string("root") : std::string("say \"hi\"");
  };
  const std::string dot = to_dot(t, opts);
  EXPECT_NE(dot.find("say \\\"hi\\\""), std::string::npos);
}

TEST(DotExport, ColorGroupsCycleThroughPalette) {
  const IncentiveTree t({0, 0, 0, 0});
  DotOptions opts;
  opts.color_group = [](std::uint32_t node) {
    return static_cast<int>(node % 2);
  };
  const std::string dot = to_dot(t, opts);
  EXPECT_NE(dot.find("fillcolor=\"#a6cee3\""), std::string::npos);
  EXPECT_NE(dot.find("fillcolor=\"#b2df8a\""), std::string::npos);
}

TEST(DotExport, NegativeGroupMeansNoColor) {
  const IncentiveTree t({0, 0});
  DotOptions opts;
  opts.color_group = [](std::uint32_t) { return -1; };
  const std::string dot = to_dot(t, opts);
  // Only the root box carries an explicit fill.
  EXPECT_EQ(dot.find("fillcolor=\"#a6cee3\""), std::string::npos);
}

TEST(DotExport, RefusesOversizeTrees) {
  const auto t = flat_tree(50);
  DotOptions opts;
  opts.max_nodes = 10;
  std::ostringstream os;
  EXPECT_THROW(write_dot(t, os, opts), CheckFailure);
}

TEST(DotExport, EveryNodeAndEdgeAppearsExactlyOnce) {
  rng::Rng rng(3);
  const auto t = random_recursive_tree(40, 0.2, rng);
  const std::string dot = to_dot(t);
  for (std::uint32_t v = 1; v < t.num_nodes(); ++v) {
    const std::string edge = "n" + std::to_string(t.parent(v)) + " -> n" +
                             std::to_string(v) + ";";
    const auto first = dot.find(edge);
    EXPECT_NE(first, std::string::npos) << edge;
    EXPECT_EQ(dot.find(edge, first + 1), std::string::npos) << edge;
  }
}

}  // namespace
}  // namespace rit::tree
