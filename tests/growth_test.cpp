#include <gtest/gtest.h>

#include "common/check.h"
#include "core/rit.h"
#include "graph/generators.h"
#include "sim/growth.h"
#include "sim/runner.h"

namespace rit::sim {
namespace {

Population uniform_population(std::uint32_t n, std::uint32_t num_types,
                              std::uint32_t quantity, std::uint64_t seed) {
  Scenario s;
  s.num_users = n;
  s.num_types = num_types;
  s.k_max = quantity;
  rng::Rng rng(seed);
  Population pop = generate_population(s, rng);
  for (auto& ask : pop.truthful_asks) ask.quantity = quantity;
  return pop;
}

TEST(Growth, StopsAtExactlyEnoughSupplySingleType) {
  // A path graph: users join strictly one per wave, each contributing 2
  // units of the single type. Demand 10, multiple 2 -> target 20 units ->
  // exactly 10 users.
  const graph::Graph g = graph::path(50);
  Population pop = uniform_population(50, 1, 2, 1);
  const core::Job job(std::vector<std::uint32_t>{10});
  GrowthOptions opts;
  const GrowthResult res = grow_until_supply(g, pop, job, opts);
  EXPECT_TRUE(res.supply_met);
  EXPECT_EQ(res.joined.size(), 10u);
  EXPECT_EQ(res.supply_by_type[0], 20u);
  EXPECT_EQ(res.tree.num_participants(), 10u);
  // Path graph -> chain tree.
  EXPECT_EQ(res.tree.max_depth(), 10u);
}

TEST(Growth, MultiTypeWaitsForTheScarcestType) {
  // Users alternate types along a path; type-1 demand dominates.
  const graph::Graph g = graph::path(100);
  Population pop = uniform_population(100, 2, 1, 2);
  for (std::uint32_t u = 0; u < 100; ++u) {
    pop.truthful_asks[u].type = TaskType{u % 2};
  }
  const core::Job job(std::vector<std::uint32_t>{2, 10});
  GrowthOptions opts;
  const GrowthResult res = grow_until_supply(g, pop, job, opts);
  EXPECT_TRUE(res.supply_met);
  EXPECT_GE(res.supply_by_type[0], 4u);
  EXPECT_GE(res.supply_by_type[1], 20u);
  // Needs 20 odd-indexed users -> 40 joiners.
  EXPECT_EQ(res.joined.size(), 40u);
}

TEST(Growth, ReportsFailureWhenGraphTooSmall) {
  const graph::Graph g = graph::path(5);
  Population pop = uniform_population(5, 1, 1, 3);
  const core::Job job(std::vector<std::uint32_t>{10});
  GrowthOptions opts;
  const GrowthResult res = grow_until_supply(g, pop, job, opts);
  EXPECT_FALSE(res.supply_met);
  EXPECT_EQ(res.joined.size(), 5u);
}

TEST(Growth, RespectsMaxUsers) {
  const graph::Graph g = graph::path(50);
  Population pop = uniform_population(50, 1, 1, 4);
  const core::Job job(std::vector<std::uint32_t>{10});
  GrowthOptions opts;
  opts.max_users = 7;
  const GrowthResult res = grow_until_supply(g, pop, job, opts);
  EXPECT_FALSE(res.supply_met);
  EXPECT_EQ(res.joined.size(), 7u);
}

TEST(Growth, SupplyMultipleScalesTheTarget) {
  const graph::Graph g = graph::path(60);
  Population pop = uniform_population(60, 1, 1, 5);
  const core::Job job(std::vector<std::uint32_t>{10});
  GrowthOptions two;
  two.supply_multiple = 2.0;
  GrowthOptions four;
  four.supply_multiple = 4.0;
  EXPECT_EQ(grow_until_supply(g, pop, job, two).joined.size(), 20u);
  EXPECT_EQ(grow_until_supply(g, pop, job, four).joined.size(), 40u);
}

TEST(Growth, GrownTreeRunsThroughRit) {
  rng::Rng graph_rng(6);
  const graph::Graph g = graph::barabasi_albert(2000, 3, graph_rng);
  Scenario s;
  s.num_users = 2000;
  s.num_types = 3;
  s.k_max = 4;
  rng::Rng pop_rng(7);
  const Population pop = generate_population(s, pop_rng);
  const core::Job job = core::Job::uniform(3, 50);
  GrowthOptions opts;
  opts.seeds = {0, 1, 2};
  const GrowthResult grown = grow_until_supply(g, pop, job, opts);
  ASSERT_TRUE(grown.supply_met);
  EXPECT_LT(grown.joined.size(), 2000u);  // stopped early

  // Asks of the joined users, in join order (participant i = joined[i]).
  std::vector<core::Ask> asks;
  std::vector<double> costs;
  for (std::uint32_t u : grown.joined) {
    asks.push_back(pop.truthful_asks[u]);
    costs.push_back(pop.costs[u]);
  }
  core::RitConfig cfg;
  cfg.round_budget_policy = core::RoundBudgetPolicy::kRunToCompletion;
  rng::Rng rng(8);
  const core::RitResult r = core::run_rit(job, asks, grown.tree, cfg, rng);
  EXPECT_TRUE(r.success);
  for (std::size_t j = 0; j < asks.size(); ++j) {
    EXPECT_GE(r.utility_of(static_cast<std::uint32_t>(j), costs[j]), -1e-9);
  }
}

TEST(Growth, RejectsBadOptions) {
  const graph::Graph g = graph::path(5);
  Population pop = uniform_population(5, 1, 1, 9);
  const core::Job job(std::vector<std::uint32_t>{2});
  GrowthOptions opts;
  opts.supply_multiple = 0.0;
  EXPECT_THROW(grow_until_supply(g, pop, job, opts), CheckFailure);
  opts.supply_multiple = 2.0;
  opts.seeds.clear();
  EXPECT_THROW(grow_until_supply(g, pop, job, opts), CheckFailure);
  opts.seeds = {99};
  EXPECT_THROW(grow_until_supply(g, pop, job, opts), CheckFailure);
}

}  // namespace
}  // namespace rit::sim
