#include <gtest/gtest.h>

#include <set>

#include "common/check.h"
#include "sim/metrics.h"
#include "sim/progress.h"
#include "sim/runner.h"
#include "sim/scenario.h"
#include "sim/workload.h"

namespace rit::sim {
namespace {

Scenario small_scenario() {
  Scenario s;
  s.num_users = 400;
  s.num_types = 3;
  s.tasks_per_type = 20;
  s.k_max = 5;
  s.initial_joiners = 4;
  s.seed = 7;
  return s;
}

TEST(Scenario, GraphKindRoundTrip) {
  for (GraphKind k :
       {GraphKind::kBarabasiAlbert, GraphKind::kErdosRenyi,
        GraphKind::kWattsStrogatz, GraphKind::kConfigurationModel,
        GraphKind::kStar, GraphKind::kPath}) {
    EXPECT_EQ(parse_graph_kind(to_string(k)), k);
  }
  EXPECT_THROW(parse_graph_kind("nope"), CheckFailure);
}

TEST(Scenario, TrialSeedsAreDistinctAcrossTrialsAndComponents) {
  Scenario s;
  std::set<std::uint64_t> seen;
  for (std::uint64_t t = 0; t < 20; ++t) {
    for (std::uint64_t c = 0; c < 4; ++c) {
      seen.insert(s.trial_seed(t, c));
    }
  }
  EXPECT_EQ(seen.size(), 80u);
}

TEST(Scenario, TrialSeedDeterministic) {
  Scenario a;
  Scenario b;
  EXPECT_EQ(a.trial_seed(3, 1), b.trial_seed(3, 1));
  b.seed = 43;
  EXPECT_NE(a.trial_seed(3, 1), b.trial_seed(3, 1));
}

TEST(Workload, PopulationMatchesDistributionSupports) {
  const Scenario s = small_scenario();
  rng::Rng rng(1);
  const Population pop = generate_population(s, rng);
  ASSERT_EQ(pop.size(), s.num_users);
  for (std::uint32_t j = 0; j < pop.size(); ++j) {
    const auto& a = pop.truthful_asks[j];
    EXPECT_LT(a.type.value, s.num_types);
    EXPECT_GE(a.quantity, 1u);
    EXPECT_LE(a.quantity, s.k_max);
    EXPECT_GT(a.value, 0.0);
    EXPECT_LE(a.value, s.cost_max);
    EXPECT_EQ(a.value, pop.costs[j]);  // truthful asks reveal the cost
  }
}

TEST(Workload, PopulationUsesAllTypes) {
  const Scenario s = small_scenario();
  rng::Rng rng(2);
  const Population pop = generate_population(s, rng);
  std::set<std::uint32_t> types;
  for (const auto& a : pop.truthful_asks) types.insert(a.type.value);
  EXPECT_EQ(types.size(), s.num_types);
}

TEST(Workload, FixedDemandJob) {
  const Scenario s = small_scenario();
  rng::Rng rng(3);
  const core::Job job = generate_job(s, rng);
  EXPECT_EQ(job.num_types(), 3u);
  EXPECT_EQ(job.total_tasks(), 60u);
}

TEST(Workload, RangedDemandJob) {
  Scenario s = small_scenario();
  s.demand_lo = 10;
  s.demand_hi = 50;
  rng::Rng rng(4);
  const core::Job job = generate_job(s, rng);
  for (std::uint32_t t = 0; t < job.num_types(); ++t) {
    EXPECT_GT(job.demand(TaskType{t}), 10u);
    EXPECT_LE(job.demand(TaskType{t}), 50u);
  }
}

TEST(Workload, GraphGenerationEachKind) {
  Scenario s = small_scenario();
  for (GraphKind k :
       {GraphKind::kBarabasiAlbert, GraphKind::kErdosRenyi,
        GraphKind::kWattsStrogatz, GraphKind::kConfigurationModel,
        GraphKind::kStar, GraphKind::kPath}) {
    s.graph = k;
    rng::Rng rng(5);
    const graph::Graph g = generate_graph(s, rng);
    EXPECT_EQ(g.num_nodes(), s.num_users) << to_string(k);
  }
}

TEST(Workload, TreeCoversEveryUser) {
  const Scenario s = small_scenario();
  rng::Rng rng(6);
  const graph::Graph g = generate_graph(s, rng);
  const TreeResult tr = generate_tree(s, g);
  EXPECT_EQ(tr.tree.num_participants(), s.num_users);
  // The participant->graph-node map is a permutation.
  std::set<std::uint32_t> nodes(tr.graph_node_of_participant.begin(),
                                tr.graph_node_of_participant.end());
  EXPECT_EQ(nodes.size(), s.num_users);
}

TEST(Runner, InstanceIsDeterministic) {
  const Scenario s = small_scenario();
  const TrialInstance a = make_instance(s, 0);
  const TrialInstance b = make_instance(s, 0);
  EXPECT_EQ(a.population.truthful_asks.size(),
            b.population.truthful_asks.size());
  for (std::size_t j = 0; j < a.population.truthful_asks.size(); ++j) {
    EXPECT_EQ(a.population.truthful_asks[j], b.population.truthful_asks[j]);
  }
  EXPECT_EQ(a.tree.parents(), b.tree.parents());
  EXPECT_EQ(a.mechanism_seed, b.mechanism_seed);
  EXPECT_EQ(a.job.demand_vector(), b.job.demand_vector());
}

TEST(Runner, DifferentTrialsDiffer) {
  const Scenario s = small_scenario();
  const TrialInstance a = make_instance(s, 0);
  const TrialInstance b = make_instance(s, 1);
  EXPECT_NE(a.mechanism_seed, b.mechanism_seed);
  bool any_ask_differs = false;
  for (std::size_t j = 0; j < a.population.truthful_asks.size(); ++j) {
    if (!(a.population.truthful_asks[j] == b.population.truthful_asks[j])) {
      any_ask_differs = true;
      break;
    }
  }
  EXPECT_TRUE(any_ask_differs);
}

TEST(Runner, TrialMetricsInternallyConsistent) {
  const Scenario s = small_scenario();
  const TrialMetrics m = run_trial(s, 0);
  EXPECT_GE(m.runtime_rit_ms, 0.0);
  EXPECT_GE(m.runtime_auction_ms, 0.0);
  if (m.success) {
    EXPECT_EQ(m.tasks_allocated, 60u);
    // The payment phase can only add money.
    EXPECT_GE(m.total_payment_rit, m.total_payment_auction - 1e-9);
    EXPECT_GE(m.avg_utility_rit, m.avg_utility_auction - 1e-12);
    // Budget bound: premium <= total auction payment.
    EXPECT_LE(m.solicitation_premium, m.total_payment_auction + 1e-9);
  } else {
    EXPECT_EQ(m.total_payment_rit, 0.0);
  }
}

TEST(Runner, PairedSeriesShareTheAuctionOutcome) {
  // total_payment_auction is derived from the same phase-1 results the full
  // run used, so premium == total_rit - total_auction exactly.
  const Scenario s = small_scenario();
  for (std::uint64_t t = 0; t < 3; ++t) {
    const TrialMetrics m = run_trial(s, t);
    if (!m.success) continue;
    EXPECT_NEAR(m.solicitation_premium,
                m.total_payment_rit - m.total_payment_auction, 1e-6);
  }
}

TEST(Runner, RunManyAggregates) {
  const Scenario s = small_scenario();
  std::uint64_t calls = 0;
  std::uint64_t last_done = 0;
  const AggregateMetrics agg = run_many(
      s, 4, [&](std::uint64_t done, std::uint64_t total) {
        ++calls;
        last_done = done;
        EXPECT_LE(done, total);
      });
  EXPECT_EQ(agg.trials, 4u);
  // Progress is rate-limited (sim/progress.h): anywhere from one callback
  // (fast trials, all but the final throttled) to one per trial, and the
  // final "4/4" always gets through.
  EXPECT_GE(calls, 1u);
  EXPECT_LE(calls, 4u);
  EXPECT_EQ(last_done, 4u);
  EXPECT_EQ(agg.avg_utility_rit.count(), 4u);
  EXPECT_GE(agg.success_rate(), 0.0);
  EXPECT_LE(agg.success_rate(), 1.0);
}

TEST(Runner, ParallelMatchesSerial) {
  const Scenario s = small_scenario();
  const AggregateMetrics serial = run_many(s, 6);
  const AggregateMetrics parallel = run_many_parallel(s, 6, 3);
  EXPECT_EQ(parallel.trials, serial.trials);
  EXPECT_EQ(parallel.successes, serial.successes);
  // Means agree up to merge-order rounding; the sample sets are identical.
  EXPECT_NEAR(parallel.avg_utility_rit.mean(), serial.avg_utility_rit.mean(),
              1e-9);
  EXPECT_NEAR(parallel.total_payment_rit.mean(),
              serial.total_payment_rit.mean(), 1e-6);
  EXPECT_DOUBLE_EQ(parallel.total_payment_rit.min(),
                   serial.total_payment_rit.min());
  EXPECT_DOUBLE_EQ(parallel.total_payment_rit.max(),
                   serial.total_payment_rit.max());
}

TEST(Runner, ParallelIsDeterministicAcrossRuns) {
  const Scenario s = small_scenario();
  const AggregateMetrics a = run_many_parallel(s, 5, 2);
  const AggregateMetrics b = run_many_parallel(s, 5, 2);
  EXPECT_DOUBLE_EQ(a.avg_utility_rit.mean(), b.avg_utility_rit.mean());
  EXPECT_DOUBLE_EQ(a.solicitation_premium.mean(),
                   b.solicitation_premium.mean());
}

TEST(Runner, ParallelHandlesEdgeThreadCounts) {
  const Scenario s = small_scenario();
  const AggregateMetrics one = run_many_parallel(s, 3, 1);
  EXPECT_EQ(one.trials, 3u);
  const AggregateMetrics more_threads_than_trials = run_many_parallel(s, 2, 8);
  EXPECT_EQ(more_threads_than_trials.trials, 2u);
  const AggregateMetrics zero = run_many_parallel(s, 0, 4);
  EXPECT_EQ(zero.trials, 0u);
}

TEST(ProgressThrottle, FakeClockDrivesAcceptance) {
  std::uint64_t now = 0;
  ProgressThrottle throttle(100'000'000, [&now] { return now; });

  EXPECT_TRUE(throttle.should_fire());  // first call always fires
  now += 50'000'000;
  EXPECT_FALSE(throttle.should_fire());  // only 50 ms since last accepted
  now += 49'999'999;
  EXPECT_FALSE(throttle.should_fire());  // 99.999999 ms: still under
  now += 1;
  EXPECT_TRUE(throttle.should_fire());  // exactly 100 ms: fires
  EXPECT_FALSE(throttle.should_fire());  // same instant again: throttled
}

TEST(ProgressThrottle, FinalAlwaysFires) {
  std::uint64_t now = 0;
  ProgressThrottle throttle(100'000'000, [&now] { return now; });
  EXPECT_TRUE(throttle.should_fire());
  EXPECT_TRUE(throttle.should_fire(/*is_final=*/true));  // zero gap, but final
}

TEST(ProgressThrottle, AcceptanceResetsTheWindow) {
  std::uint64_t now = 0;
  ProgressThrottle throttle(100'000'000, [&now] { return now; });
  EXPECT_TRUE(throttle.should_fire());
  now += 250'000'000;
  EXPECT_TRUE(throttle.should_fire());  // long gap fires...
  now += 99'999'999;
  // ...and the window restarts at the accepted firing, not at the last ask.
  EXPECT_FALSE(throttle.should_fire());
}

TEST(Metrics, AggregateCountsSuccesses) {
  AggregateMetrics agg;
  TrialMetrics ok;
  ok.success = true;
  TrialMetrics bad;
  bad.success = false;
  agg.add(ok);
  agg.add(ok);
  agg.add(bad);
  EXPECT_EQ(agg.trials, 3u);
  EXPECT_EQ(agg.successes, 2u);
  EXPECT_NEAR(agg.success_rate(), 2.0 / 3.0, 1e-12);
}

}  // namespace
}  // namespace rit::sim
