#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "common/check.h"
#include "sim/metrics.h"
#include "sim/progress.h"
#include "sim/runner.h"
#include "sim/scenario.h"
#include "sim/workload.h"

namespace rit::sim {
namespace {

Scenario small_scenario() {
  Scenario s;
  s.num_users = 400;
  s.num_types = 3;
  s.tasks_per_type = 20;
  s.k_max = 5;
  s.initial_joiners = 4;
  s.seed = 7;
  return s;
}

TEST(Scenario, GraphKindRoundTrip) {
  for (GraphKind k :
       {GraphKind::kBarabasiAlbert, GraphKind::kErdosRenyi,
        GraphKind::kWattsStrogatz, GraphKind::kConfigurationModel,
        GraphKind::kStar, GraphKind::kPath}) {
    EXPECT_EQ(parse_graph_kind(to_string(k)), k);
  }
  EXPECT_THROW(parse_graph_kind("nope"), CheckFailure);
}

TEST(Scenario, TrialSeedsAreDistinctAcrossTrialsAndComponents) {
  Scenario s;
  std::set<std::uint64_t> seen;
  for (std::uint64_t t = 0; t < 20; ++t) {
    for (std::uint64_t c = 0; c < 4; ++c) {
      seen.insert(s.trial_seed(t, c));
    }
  }
  EXPECT_EQ(seen.size(), 80u);
}

TEST(Scenario, TrialSeedDeterministic) {
  Scenario a;
  Scenario b;
  EXPECT_EQ(a.trial_seed(3, 1), b.trial_seed(3, 1));
  b.seed = 43;
  EXPECT_NE(a.trial_seed(3, 1), b.trial_seed(3, 1));
}

TEST(Workload, PopulationMatchesDistributionSupports) {
  const Scenario s = small_scenario();
  rng::Rng rng(1);
  const Population pop = generate_population(s, rng);
  ASSERT_EQ(pop.size(), s.num_users);
  for (std::uint32_t j = 0; j < pop.size(); ++j) {
    const auto& a = pop.truthful_asks[j];
    EXPECT_LT(a.type.value, s.num_types);
    EXPECT_GE(a.quantity, 1u);
    EXPECT_LE(a.quantity, s.k_max);
    EXPECT_GT(a.value, 0.0);
    EXPECT_LE(a.value, s.cost_max);
    EXPECT_EQ(a.value, pop.costs[j]);  // truthful asks reveal the cost
  }
}

TEST(Workload, PopulationUsesAllTypes) {
  const Scenario s = small_scenario();
  rng::Rng rng(2);
  const Population pop = generate_population(s, rng);
  std::set<std::uint32_t> types;
  for (const auto& a : pop.truthful_asks) types.insert(a.type.value);
  EXPECT_EQ(types.size(), s.num_types);
}

TEST(Workload, FixedDemandJob) {
  const Scenario s = small_scenario();
  rng::Rng rng(3);
  const core::Job job = generate_job(s, rng);
  EXPECT_EQ(job.num_types(), 3u);
  EXPECT_EQ(job.total_tasks(), 60u);
}

TEST(Workload, RangedDemandJob) {
  Scenario s = small_scenario();
  s.demand_lo = 10;
  s.demand_hi = 50;
  rng::Rng rng(4);
  const core::Job job = generate_job(s, rng);
  for (std::uint32_t t = 0; t < job.num_types(); ++t) {
    EXPECT_GT(job.demand(TaskType{t}), 10u);
    EXPECT_LE(job.demand(TaskType{t}), 50u);
  }
}

TEST(Workload, GraphGenerationEachKind) {
  Scenario s = small_scenario();
  for (GraphKind k :
       {GraphKind::kBarabasiAlbert, GraphKind::kErdosRenyi,
        GraphKind::kWattsStrogatz, GraphKind::kConfigurationModel,
        GraphKind::kStar, GraphKind::kPath}) {
    s.graph = k;
    rng::Rng rng(5);
    const graph::Graph g = generate_graph(s, rng);
    EXPECT_EQ(g.num_nodes(), s.num_users) << to_string(k);
  }
}

TEST(Workload, TreeCoversEveryUser) {
  const Scenario s = small_scenario();
  rng::Rng rng(6);
  const graph::Graph g = generate_graph(s, rng);
  const TreeResult tr = generate_tree(s, g);
  EXPECT_EQ(tr.tree.num_participants(), s.num_users);
  // The participant->graph-node map is a permutation.
  std::set<std::uint32_t> nodes(tr.graph_node_of_participant.begin(),
                                tr.graph_node_of_participant.end());
  EXPECT_EQ(nodes.size(), s.num_users);
}

TEST(Runner, InstanceIsDeterministic) {
  const Scenario s = small_scenario();
  const TrialInstance a = make_instance(s, 0);
  const TrialInstance b = make_instance(s, 0);
  EXPECT_EQ(a.population.truthful_asks.size(),
            b.population.truthful_asks.size());
  for (std::size_t j = 0; j < a.population.truthful_asks.size(); ++j) {
    EXPECT_EQ(a.population.truthful_asks[j], b.population.truthful_asks[j]);
  }
  EXPECT_EQ(a.tree.parents(), b.tree.parents());
  EXPECT_EQ(a.mechanism_seed, b.mechanism_seed);
  EXPECT_EQ(a.job.demand_vector(), b.job.demand_vector());
}

TEST(Runner, DifferentTrialsDiffer) {
  const Scenario s = small_scenario();
  const TrialInstance a = make_instance(s, 0);
  const TrialInstance b = make_instance(s, 1);
  EXPECT_NE(a.mechanism_seed, b.mechanism_seed);
  bool any_ask_differs = false;
  for (std::size_t j = 0; j < a.population.truthful_asks.size(); ++j) {
    if (!(a.population.truthful_asks[j] == b.population.truthful_asks[j])) {
      any_ask_differs = true;
      break;
    }
  }
  EXPECT_TRUE(any_ask_differs);
}

TEST(Runner, TrialMetricsInternallyConsistent) {
  const Scenario s = small_scenario();
  const TrialMetrics m = run_trial(s, 0);
  EXPECT_GE(m.runtime_rit_ms, 0.0);
  EXPECT_GE(m.runtime_auction_ms, 0.0);
  if (m.success) {
    EXPECT_EQ(m.tasks_allocated, 60u);
    // The payment phase can only add money.
    EXPECT_GE(m.total_payment_rit, m.total_payment_auction - 1e-9);
    EXPECT_GE(m.avg_utility_rit, m.avg_utility_auction - 1e-12);
    // Budget bound: premium <= total auction payment.
    EXPECT_LE(m.solicitation_premium, m.total_payment_auction + 1e-9);
  } else {
    EXPECT_EQ(m.total_payment_rit, 0.0);
  }
}

TEST(Runner, PairedSeriesShareTheAuctionOutcome) {
  // total_payment_auction is derived from the same phase-1 results the full
  // run used, so premium == total_rit - total_auction exactly.
  const Scenario s = small_scenario();
  for (std::uint64_t t = 0; t < 3; ++t) {
    const TrialMetrics m = run_trial(s, t);
    if (!m.success) continue;
    EXPECT_NEAR(m.solicitation_premium,
                m.total_payment_rit - m.total_payment_auction, 1e-6);
  }
}

TEST(Runner, RunManyAggregates) {
  const Scenario s = small_scenario();
  std::uint64_t calls = 0;
  std::uint64_t last_done = 0;
  const AggregateMetrics agg = run_many(
      s, 4, [&](std::uint64_t done, std::uint64_t total) {
        ++calls;
        last_done = done;
        EXPECT_LE(done, total);
      });
  EXPECT_EQ(agg.trials, 4u);
  // Progress is rate-limited (sim/progress.h): anywhere from one callback
  // (fast trials, all but the final throttled) to one per trial, and the
  // final "4/4" always gets through.
  EXPECT_GE(calls, 1u);
  EXPECT_LE(calls, 4u);
  EXPECT_EQ(last_done, 4u);
  EXPECT_EQ(agg.avg_utility_rit.count(), 4u);
  EXPECT_GE(agg.success_rate(), 0.0);
  EXPECT_LE(agg.success_rate(), 1.0);
}

// The parallel runner sees the exact same per-trial samples as the serial
// one; only the Welford merge order differs. So counts, minima, maxima and
// the integer tallies must be bit-identical, and means agree to rounding.
void expect_stat_equivalent(const stats::OnlineStats& parallel,
                            const stats::OnlineStats& serial,
                            const char* label) {
  EXPECT_EQ(parallel.count(), serial.count()) << label;
  if (serial.count() == 0) return;
  EXPECT_DOUBLE_EQ(parallel.min(), serial.min()) << label;
  EXPECT_DOUBLE_EQ(parallel.max(), serial.max()) << label;
  EXPECT_NEAR(parallel.mean(), serial.mean(),
              1e-9 * (1.0 + std::abs(serial.mean())))
      << label;
}

void expect_aggregate_equivalent(const AggregateMetrics& parallel,
                                 const AggregateMetrics& serial) {
  EXPECT_EQ(parallel.trials, serial.trials);
  EXPECT_EQ(parallel.successes, serial.successes);
  EXPECT_EQ(parallel.degraded_trials, serial.degraded_trials);
  expect_stat_equivalent(parallel.avg_utility_auction,
                         serial.avg_utility_auction, "avg_utility_auction");
  expect_stat_equivalent(parallel.avg_utility_rit, serial.avg_utility_rit,
                         "avg_utility_rit");
  expect_stat_equivalent(parallel.total_payment_auction,
                         serial.total_payment_auction,
                         "total_payment_auction");
  expect_stat_equivalent(parallel.total_payment_rit, serial.total_payment_rit,
                         "total_payment_rit");
  expect_stat_equivalent(parallel.solicitation_premium,
                         serial.solicitation_premium, "solicitation_premium");
  expect_stat_equivalent(parallel.tasks_allocated, serial.tasks_allocated,
                         "tasks_allocated");
  // Runtimes are wall-clock measurements, not derived from the seeds —
  // sample counts must still line up even though the values differ.
  EXPECT_EQ(parallel.runtime_auction_ms.count(),
            serial.runtime_auction_ms.count());
  EXPECT_EQ(parallel.runtime_rit_ms.count(), serial.runtime_rit_ms.count());
}

TEST(Runner, ParallelMatchesSerialOnEveryFieldForManyThreadCounts) {
  const Scenario s = small_scenario();
  const AggregateMetrics serial = run_many(s, 9);
  for (const unsigned threads : {2u, 3u, 8u}) {
    SCOPED_TRACE(threads);
    expect_aggregate_equivalent(run_many_parallel(s, 9, threads), serial);
  }
}

TEST(Runner, ParallelProgressIsMonotoneAndReachesTotal) {
  const Scenario s = small_scenario();
  std::vector<std::uint64_t> reported;
  run_many_parallel(s, 7, 3,
                    [&](std::uint64_t done, std::uint64_t total) {
                      EXPECT_EQ(total, 7u);
                      reported.push_back(done);
                    });
  ASSERT_FALSE(reported.empty());
  for (std::size_t i = 1; i < reported.size(); ++i) {
    EXPECT_LT(reported[i - 1], reported[i]);
  }
  EXPECT_EQ(reported.back(), 7u);
}

TEST(Runner, WorkspaceTrialMatchesConvenienceOverload) {
  const Scenario s = small_scenario();
  core::RitWorkspace ws;
  for (std::uint64_t t = 0; t < 3; ++t) {  // reuse ws across trials
    const TrialInstance inst = make_instance(s, t);
    const TrialMetrics fresh = run_trial(s, inst);
    const TrialMetrics reused = run_trial(s, inst, ws);
    EXPECT_EQ(reused.success, fresh.success);
    EXPECT_EQ(reused.tasks_allocated, fresh.tasks_allocated);
    EXPECT_EQ(reused.probability_degraded, fresh.probability_degraded);
    EXPECT_DOUBLE_EQ(reused.avg_utility_rit, fresh.avg_utility_rit);
    EXPECT_DOUBLE_EQ(reused.total_payment_rit, fresh.total_payment_rit);
    EXPECT_DOUBLE_EQ(reused.total_payment_auction,
                     fresh.total_payment_auction);
    EXPECT_DOUBLE_EQ(reused.solicitation_premium, fresh.solicitation_premium);
  }
}

TEST(Runner, ParallelMatchesSerial) {
  const Scenario s = small_scenario();
  const AggregateMetrics serial = run_many(s, 6);
  const AggregateMetrics parallel = run_many_parallel(s, 6, 3);
  EXPECT_EQ(parallel.trials, serial.trials);
  EXPECT_EQ(parallel.successes, serial.successes);
  // Means agree up to merge-order rounding; the sample sets are identical.
  EXPECT_NEAR(parallel.avg_utility_rit.mean(), serial.avg_utility_rit.mean(),
              1e-9);
  EXPECT_NEAR(parallel.total_payment_rit.mean(),
              serial.total_payment_rit.mean(), 1e-6);
  EXPECT_DOUBLE_EQ(parallel.total_payment_rit.min(),
                   serial.total_payment_rit.min());
  EXPECT_DOUBLE_EQ(parallel.total_payment_rit.max(),
                   serial.total_payment_rit.max());
}

TEST(Runner, ParallelIsDeterministicAcrossRuns) {
  const Scenario s = small_scenario();
  const AggregateMetrics a = run_many_parallel(s, 5, 2);
  const AggregateMetrics b = run_many_parallel(s, 5, 2);
  EXPECT_DOUBLE_EQ(a.avg_utility_rit.mean(), b.avg_utility_rit.mean());
  EXPECT_DOUBLE_EQ(a.solicitation_premium.mean(),
                   b.solicitation_premium.mean());
}

TEST(Runner, ParallelHandlesEdgeThreadCounts) {
  const Scenario s = small_scenario();
  const AggregateMetrics one = run_many_parallel(s, 3, 1);
  EXPECT_EQ(one.trials, 3u);
  const AggregateMetrics more_threads_than_trials = run_many_parallel(s, 2, 8);
  EXPECT_EQ(more_threads_than_trials.trials, 2u);
  const AggregateMetrics zero = run_many_parallel(s, 0, 4);
  EXPECT_EQ(zero.trials, 0u);
}

TEST(ProgressThrottle, FakeClockDrivesAcceptance) {
  std::uint64_t now = 0;
  ProgressThrottle throttle(100'000'000, [&now] { return now; });

  EXPECT_TRUE(throttle.should_fire());  // first call always fires
  now += 50'000'000;
  EXPECT_FALSE(throttle.should_fire());  // only 50 ms since last accepted
  now += 49'999'999;
  EXPECT_FALSE(throttle.should_fire());  // 99.999999 ms: still under
  now += 1;
  EXPECT_TRUE(throttle.should_fire());  // exactly 100 ms: fires
  EXPECT_FALSE(throttle.should_fire());  // same instant again: throttled
}

TEST(ProgressThrottle, FinalAlwaysFires) {
  std::uint64_t now = 0;
  ProgressThrottle throttle(100'000'000, [&now] { return now; });
  EXPECT_TRUE(throttle.should_fire());
  EXPECT_TRUE(throttle.should_fire(/*is_final=*/true));  // zero gap, but final
}

TEST(ProgressThrottle, AcceptanceResetsTheWindow) {
  std::uint64_t now = 0;
  ProgressThrottle throttle(100'000'000, [&now] { return now; });
  EXPECT_TRUE(throttle.should_fire());
  now += 250'000'000;
  EXPECT_TRUE(throttle.should_fire());  // long gap fires...
  now += 99'999'999;
  // ...and the window restarts at the accepted firing, not at the last ask.
  EXPECT_FALSE(throttle.should_fire());
}

TEST(Metrics, AggregateCountsSuccesses) {
  AggregateMetrics agg;
  TrialMetrics ok;
  ok.success = true;
  TrialMetrics bad;
  bad.success = false;
  agg.add(ok);
  agg.add(ok);
  agg.add(bad);
  EXPECT_EQ(agg.trials, 3u);
  EXPECT_EQ(agg.successes, 2u);
  EXPECT_NEAR(agg.success_rate(), 2.0 / 3.0, 1e-12);
}

TEST(Metrics, AddFoldsTasksAllocatedAndDegradedTrials) {
  // The two fields add() used to drop silently.
  AggregateMetrics agg;
  TrialMetrics a;
  a.tasks_allocated = 40;
  a.probability_degraded = true;
  TrialMetrics b;
  b.tasks_allocated = 60;
  b.probability_degraded = false;
  agg.add(a);
  agg.add(b);
  EXPECT_EQ(agg.tasks_allocated.count(), 2u);
  EXPECT_DOUBLE_EQ(agg.tasks_allocated.mean(), 50.0);
  EXPECT_DOUBLE_EQ(agg.tasks_allocated.min(), 40.0);
  EXPECT_DOUBLE_EQ(agg.tasks_allocated.max(), 60.0);
  EXPECT_EQ(agg.degraded_trials, 1u);
  EXPECT_NEAR(agg.degraded_rate(), 0.5, 1e-12);
}

TEST(Metrics, MergeCoversEveryField) {
  // Split a trial set between two aggregates, merge, and require the result
  // to match folding them all into one — field by field. Together with the
  // sizeof static_assert in metrics.cpp this keeps merge() from silently
  // ignoring a newly added member.
  std::vector<TrialMetrics> trials(6);
  for (std::size_t i = 0; i < trials.size(); ++i) {
    TrialMetrics& t = trials[i];
    const auto x = static_cast<double>(i + 1);
    t.success = (i % 2) == 0;
    t.avg_utility_auction = 0.5 * x;
    t.avg_utility_rit = 0.75 * x;
    t.total_payment_auction = 10.0 * x;
    t.total_payment_rit = 12.0 * x;
    t.runtime_auction_ms = 0.1 * x;
    t.runtime_rit_ms = 0.2 * x;
    t.solicitation_premium = 2.0 * x;
    t.tasks_allocated = 10 * (i + 1);
    t.probability_degraded = (i % 3) == 0;
  }
  AggregateMetrics whole;
  AggregateMetrics left;
  AggregateMetrics right;
  for (std::size_t i = 0; i < trials.size(); ++i) {
    whole.add(trials[i]);
    (i < 4 ? left : right).add(trials[i]);
  }
  left.merge(right);
  expect_aggregate_equivalent(left, whole);
  expect_stat_equivalent(left.runtime_rit_ms, whole.runtime_rit_ms,
                         "runtime_rit_ms");
  expect_stat_equivalent(left.runtime_auction_ms, whole.runtime_auction_ms,
                         "runtime_auction_ms");
  // ci95 needs the merged M2, not just mean/min/max.
  EXPECT_NEAR(left.avg_utility_rit.ci95_half_width(),
              whole.avg_utility_rit.ci95_half_width(), 1e-9);
}

TEST(Metrics, MergeWithEmptySidesIsIdentity) {
  TrialMetrics t;
  t.tasks_allocated = 3;
  t.probability_degraded = true;
  AggregateMetrics filled;
  filled.add(t);

  AggregateMetrics left;
  left.merge(filled);  // empty.merge(filled)
  EXPECT_EQ(left.trials, 1u);
  EXPECT_EQ(left.degraded_trials, 1u);
  EXPECT_EQ(left.tasks_allocated.count(), 1u);

  AggregateMetrics empty;
  filled.merge(empty);  // filled.merge(empty)
  EXPECT_EQ(filled.trials, 1u);
  EXPECT_EQ(filled.tasks_allocated.count(), 1u);
}

}  // namespace
}  // namespace rit::sim
