#include <gtest/gtest.h>

#include <vector>

#include "baselines/lottery_tree.h"
#include "common/check.h"
#include "rng/rng.h"
#include "tree/builders.h"

namespace rit::baselines {
namespace {

// chain: platform -> P0 -> P1 -> P2.
TEST(LotteryTree, TicketsCombineOwnAndSubtree) {
  const auto t = tree::chain_tree(3);
  const std::vector<double> c{2.0, 4.0, 8.0};
  LotteryTreeParams params;
  params.beta = 0.5;
  const auto tickets = lottery_tickets(t, c, params);
  EXPECT_DOUBLE_EQ(tickets[2], 8.0);
  EXPECT_DOUBLE_EQ(tickets[1], 4.0 + 0.5 * 8.0);
  EXPECT_DOUBLE_EQ(tickets[0], 2.0 + 0.5 * 12.0);
}

TEST(LotteryTree, BetaZeroIsPlainRaffle) {
  const auto t = tree::chain_tree(3);
  const std::vector<double> c{2.0, 4.0, 8.0};
  LotteryTreeParams params;
  params.beta = 0.0;
  EXPECT_EQ(lottery_tickets(t, c, params), c);
}

TEST(LotteryTree, ExpectedRewardsSumToPrize) {
  rng::Rng rng(1);
  const auto t = tree::random_recursive_tree(50, 0.2, rng);
  std::vector<double> c;
  for (int i = 0; i < 50; ++i) c.push_back(rng.uniform01() * 5.0);
  LotteryTreeParams params;
  params.prize = 777.0;
  const auto rewards = lottery_expected_rewards(t, c, params);
  double sum = 0.0;
  for (double r : rewards) sum += r;
  EXPECT_NEAR(sum, 777.0, 1e-9);
}

TEST(LotteryTree, ZeroContributionsNoWinner) {
  const auto t = tree::flat_tree(3);
  const std::vector<double> c(3, 0.0);
  const auto rewards = lottery_expected_rewards(t, c, {});
  for (double r : rewards) EXPECT_EQ(r, 0.0);
  rng::Rng rng(2);
  EXPECT_EQ(lottery_draw(t, c, {}, rng), kNoWinner);
}

TEST(LotteryTree, DrawFrequenciesMatchTickets) {
  const auto t = tree::chain_tree(2);
  const std::vector<double> c{1.0, 3.0};  // tickets: 1 + .5*3 = 2.5, 3
  LotteryTreeParams params;
  rng::Rng rng(3);
  int wins0 = 0;
  const int draws = 40000;
  for (int i = 0; i < draws; ++i) {
    if (lottery_draw(t, c, params, rng) == 0u) ++wins0;
  }
  EXPECT_NEAR(static_cast<double>(wins0) / draws, 2.5 / 5.5, 0.01);
}

TEST(LotteryTree, SolicitationIncentiveInExpectation) {
  // Recruiting a contributor strictly raises your expected reward share
  // relative to not recruiting them... for the recruiter; but it also
  // dilutes — the classic lottery-tree tension. Verify the recruiter
  // prefers the newcomer in ITS OWN subtree over a stranger's.
  const std::vector<double> c{5.0, 5.0, 4.0};
  LotteryTreeParams params;
  // Newcomer (P2) under P0:
  const tree::IncentiveTree under_p0({0, 0, 0, 1});
  // Newcomer under P1:
  const tree::IncentiveTree under_p1({0, 0, 0, 2});
  const auto r_mine = lottery_expected_rewards(under_p0, c, params);
  const auto r_theirs = lottery_expected_rewards(under_p1, c, params);
  EXPECT_GT(r_mine[0], r_theirs[0]);
}

TEST(LotteryTree, NaiveLotteryWeightingIsSybilVulnerable) {
  // THE point of carrying this baseline: the obvious ticket rule
  // (own + beta * subtree) is NOT sybil-proof. A chain split keeps every
  // identity's own contribution at full ticket value while ALSO collecting
  // the beta-discounted share from the identities below — the attacker's
  // combined expected reward strictly rises. Exact counterexample:
  //   honest  chain P0 -> P1,          c = {3, 8}:
  //     tickets {3 + 4, 8} -> P1 expects 1000 * 8/15  = 533.3
  //   attack  chain P0 -> P1 -> P2,    c = {3, 5, 3}:
  //     tickets {3 + 4, 5 + 1.5, 3} -> P1+P2 expect 1000 * 9.5/16.5 = 575.8
  // This is why Pachira's real construction is intricate, and it is the
  // lottery-flavoured cousin of the paper's Sec. 4 warning.
  const auto honest_tree = tree::chain_tree(2);
  const std::vector<double> honest_c{3.0, 8.0};
  LotteryTreeParams params;
  const auto honest = lottery_expected_rewards(honest_tree, honest_c, params);
  EXPECT_NEAR(honest[1], 1000.0 * 8.0 / 15.0, 1e-9);

  const auto sybil_tree = tree::chain_tree(3);
  const std::vector<double> sybil_c{3.0, 5.0, 3.0};
  const auto attacked = lottery_expected_rewards(sybil_tree, sybil_c, params);
  EXPECT_NEAR(attacked[1] + attacked[2], 1000.0 * 9.5 / 16.5, 1e-9);
  EXPECT_GT(attacked[1] + attacked[2], honest[1]);
}

TEST(LotteryTree, RejectsBadInputs) {
  const auto t = tree::flat_tree(2);
  const std::vector<double> c{1.0, -1.0};
  EXPECT_THROW(lottery_tickets(t, c, {}), CheckFailure);
  const std::vector<double> ok{1.0, 1.0};
  LotteryTreeParams params;
  params.beta = 1.0;
  EXPECT_THROW(lottery_tickets(t, ok, params), CheckFailure);
  const std::vector<double> wrong_size{1.0};
  EXPECT_THROW(lottery_tickets(t, wrong_size, {}), CheckFailure);
}

}  // namespace
}  // namespace rit::baselines
