#include <gtest/gtest.h>

#include "common/check.h"
#include "core/rit.h"
#include "sim/report.h"
#include "sim/runner.h"

namespace rit::sim {
namespace {

struct ReportFixture {
  Scenario scenario;
  TrialInstance instance;
  core::RitResult result;

  ReportFixture() : scenario(make_scenario()), instance(make_instance(scenario, 0)) {
    rng::Rng rng(instance.mechanism_seed);
    result = core::run_rit(instance.job, instance.population.truthful_asks,
                           instance.tree, scenario.mechanism, rng);
  }

  static Scenario make_scenario() {
    Scenario s;
    s.num_users = 500;
    s.num_types = 3;
    s.tasks_per_type = 25;
    s.k_max = 5;
    s.seed = 31;
    return s;
  }
};

TEST(Report, SuccessfulRunHasAllSections) {
  const ReportFixture f;
  ASSERT_TRUE(f.result.success);
  const std::string md = markdown_report(f.scenario, f.instance, f.result);
  EXPECT_NE(md.find("# Crowdsensing campaign report"), std::string::npos);
  EXPECT_NE(md.find("## Scenario"), std::string::npos);
  EXPECT_NE(md.find("## Outcome"), std::string::npos);
  EXPECT_NE(md.find("## Per-type auction"), std::string::npos);
  EXPECT_NE(md.find("## Utility distribution"), std::string::npos);
  EXPECT_NE(md.find("## Top recruiters"), std::string::npos);
  EXPECT_NE(md.find("achieved truthfulness bound"), std::string::npos);
  // One row per type in the auction table.
  EXPECT_NE(md.find("| 0 | 25 |"), std::string::npos);
  EXPECT_NE(md.find("| 2 | 25 |"), std::string::npos);
}

TEST(Report, FailureRunReportsWhatIsMissing) {
  ReportFixture f;
  // Re-run against an impossible job.
  const core::Job impossible = core::Job::uniform(3, 100000);
  rng::Rng rng(1);
  core::RitConfig cfg;  // theoretical: fails quickly
  const core::RitResult failed = core::run_rit(
      impossible, f.instance.population.truthful_asks, f.instance.tree, cfg,
      rng);
  ASSERT_FALSE(failed.success);
  TrialInstance inst2{std::move(f.instance.population), impossible,
                      std::move(f.instance.tree), 0};
  const std::string md = markdown_report(f.scenario, inst2, failed);
  EXPECT_NE(md.find("ALLOCATION FAILED"), std::string::npos);
  EXPECT_NE(md.find("100000"), std::string::npos);
}

TEST(Report, OptionsControlTableSizes) {
  const ReportFixture f;
  ReportOptions opts;
  opts.top_recruiters = 2;
  const std::string md = markdown_report(f.scenario, f.instance, f.result, opts);
  // Exactly 2 recruiter rows after the header+separator of the last table.
  const auto section = md.find("## Top recruiters");
  ASSERT_NE(section, std::string::npos);
  int rows = 0;
  for (auto pos = md.find("| P", section); pos != std::string::npos;
       pos = md.find("| P", pos + 1)) {
    ++rows;
  }
  EXPECT_EQ(rows, 2);
}

TEST(Report, SizeMismatchRejected) {
  const ReportFixture f;
  core::RitResult wrong;
  wrong.payment.assign(3, 0.0);
  EXPECT_THROW(markdown_report(f.scenario, f.instance, wrong), CheckFailure);
}

TEST(Report, AggregateMarkdownCoversEveryStatistic) {
  AggregateMetrics agg;
  TrialMetrics ok;
  ok.success = true;
  ok.avg_utility_rit = 1.5;
  ok.total_payment_rit = 120.0;
  ok.tasks_allocated = 60;
  TrialMetrics degraded;
  degraded.success = false;
  degraded.probability_degraded = true;
  agg.add(ok);
  agg.add(degraded);

  const std::string md = aggregate_markdown(agg);
  EXPECT_NE(md.find("## Aggregate over 2 trial(s)"), std::string::npos) << md;
  EXPECT_NE(md.find("success rate"), std::string::npos) << md;
  EXPECT_NE(md.find("degraded-guarantee rate"), std::string::npos) << md;
  // One table row per tracked statistic, the two recovered fields included.
  for (const char* row :
       {"avg utility (auction)", "avg utility (RIT)", "total payment (auction)",
        "total payment (RIT)", "runtime auction (ms)", "runtime RIT (ms)",
        "solicitation premium", "tasks allocated"}) {
    EXPECT_NE(md.find(row), std::string::npos) << "missing row: " << row;
  }
}

TEST(Report, AggregateMarkdownHandlesZeroTrials) {
  const AggregateMetrics empty;
  const std::string md = aggregate_markdown(empty);
  EXPECT_NE(md.find("## Aggregate over 0 trial(s)"), std::string::npos) << md;
}

}  // namespace
}  // namespace rit::sim
