#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "obs/obs.h"
#include "obs/perf_counters.h"
#include "obs/trace_export.h"
#include "sim/chaos.h"
#include "sim/guarded.h"

namespace rit::obs {
namespace {

// Both the tracer and the perf-counter collector are process-global; every
// test restores the idle defaults so tests stay order-independent.
class PerfFixture : public testing::Test {
 protected:
  void TearDown() override {
    stop_perf_counters();
    stop_tracing();
    clear_trace();
    set_trace_capacity(std::size_t{1} << 20);
  }
};

TEST_F(PerfFixture, CounterNamesAreStable) {
  // The history schema and the diff tool key on these strings; renaming one
  // silently orphans every ledger recorded so far.
  EXPECT_STREQ(perf_counter_name(kPerfCycles), "cycles");
  EXPECT_STREQ(perf_counter_name(kPerfInstructions), "instructions");
  EXPECT_STREQ(perf_counter_name(kPerfCacheRefs), "cache_refs");
  EXPECT_STREQ(perf_counter_name(kPerfCacheMisses), "cache_misses");
  EXPECT_STREQ(perf_counter_name(kPerfBranchMisses), "branch_misses");
  EXPECT_STREQ(perf_counter_name(kPerfTaskClockNs), "task_clock_ns");
}

TEST_F(PerfFixture, StartStopNeverThrowsEvenWhenUnsupported) {
  // Graceful degradation is the acceptance criterion: on kernels that refuse
  // perf_event_open the collector must still arm, collect, and disarm.
  EXPECT_NO_THROW(start_perf_counters());
  EXPECT_TRUE(perf_counters_active());
  EXPECT_NO_THROW(collect_perf_phase_stats());
  EXPECT_NO_THROW(perf_run_totals());
  EXPECT_NO_THROW(stop_perf_counters());
  EXPECT_FALSE(perf_counters_active());
}

TEST_F(PerfFixture, AvailabilityIsConsistentWithSupportProbe) {
  start_perf_counters();
  const PerfAvailability avail = perf_availability();
  stop_perf_counters();
  if (!perf_events_supported()) {
    for (std::size_t i = 0; i < kPerfNumCounters; ++i) {
      EXPECT_FALSE(avail.counter[i]) << perf_counter_name(i);
    }
    EXPECT_FALSE(avail.any_hw());
  }
  // When the kernel does grant events, run totals for granted counters must
  // move under real work; when it does not, they must read as absent (zero).
  start_perf_counters();
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + static_cast<double>(i) * 0.5;
  stop_perf_counters();
  const PerfRunTotals totals = perf_run_totals();
  for (std::size_t i = 0; i < kPerfNumCounters; ++i) {
    // Busy counters (cycles/instructions/task-clock) must tick under real
    // work; sparse ones (cache/branch misses) may legitimately read zero
    // for a tight loop, so only absence is asserted for them.
    const bool busy = i == kPerfCycles || i == kPerfInstructions ||
                      i == kPerfTaskClockNs;
    if (avail.counter[i] && busy) {
      EXPECT_GT(totals.totals[i], 0u) << perf_counter_name(i);
    } else if (!avail.counter[i]) {
      EXPECT_EQ(totals.totals[i], 0u) << perf_counter_name(i);
    }
  }
}

TEST_F(PerfFixture, AllocHookCountsHeapTrafficOnlyWhileArmed) {
  // The bench binaries (and this test) link rit_obs_alloc_hook, so the
  // availability flag must report the hook as linked.
  ASSERT_TRUE(perf_availability().alloc_hook);

  const PerfRunTotals before = perf_run_totals();
  start_perf_counters();
  {
    std::vector<std::string> bulk;
    for (int i = 0; i < 64; ++i) {
      bulk.emplace_back(256, static_cast<char>('a' + (i % 26)));
    }
  }
  stop_perf_counters();
  const PerfRunTotals during = perf_run_totals();
  EXPECT_GT(during.alloc_count, 0u);
  EXPECT_GE(during.alloc_bytes, 64u * 256u);

  // Disarmed allocations must not leak into the frozen totals.
  { std::vector<std::string> idle(32, std::string(128, 'x')); }
  EXPECT_EQ(perf_run_totals().alloc_count, during.alloc_count);
  (void)before;
}

void spin_span(const char* name, int laps) {
  RIT_TRACE_SPAN(name);
  volatile double sink = 0.0;
  for (int i = 0; i < laps; ++i) sink = sink + static_cast<double>(i);
}

// S3: multithreaded span collection. The container may expose a single core,
// so the worker counts are explicit std::thread spawns, not hardware-derived.
class PerfThreadsTest : public PerfFixture,
                        public testing::WithParamInterface<std::size_t> {};

TEST_P(PerfThreadsTest, CollectTraceSeesEverySpanAcrossThreads) {
  const std::size_t threads = GetParam();
  constexpr std::size_t kSpansPerThread = 5;
  start_tracing();
  std::vector<std::thread> pool;
  for (std::size_t w = 0; w < threads; ++w) {
    pool.emplace_back([] {
      for (std::size_t s = 0; s < kSpansPerThread; ++s) {
        spin_span("perf.outer", 200);
        { RIT_TRACE_SPAN("perf.inner"); }
      }
    });
  }
  for (std::thread& th : pool) th.join();
  stop_tracing();

  const std::vector<TraceEvent> events = collect_trace();
  ASSERT_EQ(events.size(), threads * kSpansPerThread * 2);

  // Phase-summary aggregation must fold the per-thread buffers into one
  // entry per phase with exact span counts, independent of thread count.
  const std::vector<PhaseStat> phases = phase_breakdown(events);
  std::map<std::string, std::uint64_t> counts;
  for (const PhaseStat& ph : phases) counts[ph.name] = ph.count;
  ASSERT_EQ(counts.size(), 2u);
  EXPECT_EQ(counts.at("perf.outer"), threads * kSpansPerThread);
  EXPECT_EQ(counts.at("perf.inner"), threads * kSpansPerThread);
}

TEST_P(PerfThreadsTest, PhaseCountersAggregateAcrossThreads) {
  const std::size_t threads = GetParam();
  constexpr std::size_t kSpansPerThread = 4;
  // Phase attribution rides the tracer's ScopedSpan, so both recorders
  // must be armed — exactly what bench_support does under --perf-counters.
  start_tracing();
  start_perf_counters();
  std::vector<std::thread> pool;
  for (std::size_t w = 0; w < threads; ++w) {
    pool.emplace_back([] {
      for (std::size_t s = 0; s < kSpansPerThread; ++s) {
        spin_span("perf.phase_counted", 500);
      }
    });
  }
  for (std::thread& th : pool) th.join();
  stop_perf_counters();
  // Which counters the kernel granted is only known after arming — read
  // the availability the armed run actually had.
  const PerfAvailability avail = perf_availability();

  const std::vector<PerfPhaseStat> phases = collect_perf_phase_stats();
  const PerfPhaseStat* counted = nullptr;
  for (const PerfPhaseStat& ph : phases) {
    if (ph.name == "perf.phase_counted") counted = &ph;
  }
  ASSERT_NE(counted, nullptr);
  EXPECT_EQ(counted->count, threads * kSpansPerThread);
  for (std::size_t i = 0; i < kPerfNumCounters; ++i) {
    const bool busy = i == kPerfCycles || i == kPerfInstructions ||
                      i == kPerfTaskClockNs;
    if (avail.counter[i] && busy) {
      EXPECT_GT(counted->totals[i], 0u) << perf_counter_name(i);
    } else if (!avail.counter[i]) {
      EXPECT_EQ(counted->totals[i], 0u) << perf_counter_name(i);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, PerfThreadsTest,
                         testing::Values(std::size_t{2}, std::size_t{8}));

// S1: injected faults must surface as per-kind counters in the global
// metrics registry so --metrics-out JSON carries the fault ledger.
TEST_F(PerfFixture, FaultKindsSurfaceAsGlobalCounters) {
  const std::uint64_t exc_before =
      Registry::global().counter("sim.faults_exception").value();
  const std::uint64_t nan_before =
      Registry::global().counter("sim.faults_nonfinite").value();

  sim::GuardPolicy policy;
  policy.max_trial_failures = 8;
  policy.chaos.throw_on_trial = 1;
  policy.chaos.nan_on_trial = 3;
  const sim::GuardedResult res = sim::run_trials_guarded(
      6, 2, policy,
      [](std::uint64_t, core::RitWorkspace&, std::string*) {
        sim::TrialMetrics m;
        m.success = true;
        m.avg_utility_rit = 1.0;
        return m;
      });
  EXPECT_EQ(res.faults.size(), 2u);
  EXPECT_EQ(res.metrics.failed_trials, 1u);
  EXPECT_EQ(res.metrics.quarantined_trials, 1u);

  EXPECT_EQ(Registry::global().counter("sim.faults_exception").value(),
            exc_before + 1);
  EXPECT_EQ(Registry::global().counter("sim.faults_nonfinite").value(),
            nan_before + 1);
}

}  // namespace
}  // namespace rit::obs
