#include <gtest/gtest.h>

#include "common/check.h"
#include "common/format_util.h"
#include "common/ids.h"
#include "common/log.h"

namespace rit {
namespace {

TEST(Check, PassingPredicateDoesNothing) {
  EXPECT_NO_THROW(RIT_CHECK(1 + 1 == 2));
  EXPECT_NO_THROW(RIT_CHECK_MSG(true, "never rendered"));
}

TEST(Check, FailingPredicateThrowsCheckFailure) {
  EXPECT_THROW(RIT_CHECK(false), CheckFailure);
}

TEST(Check, FailureMessageCarriesExpressionAndContext) {
  try {
    RIT_CHECK_MSG(2 > 3, "context " << 42);
    FAIL() << "expected CheckFailure";
  } catch (const CheckFailure& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("2 > 3"), std::string::npos) << what;
    EXPECT_NE(what.find("context 42"), std::string::npos) << what;
  }
}

TEST(Check, DcheckActiveInDebugOnly) {
#ifdef NDEBUG
  EXPECT_NO_THROW(RIT_DCHECK(false));
#else
  EXPECT_THROW(RIT_DCHECK(false), CheckFailure);
#endif
}

TEST(Ids, DistinctTypesCompareWithinTheirOwnSpace) {
  EXPECT_EQ(UserId{3}, UserId{3});
  EXPECT_NE(UserId{3}, UserId{4});
  EXPECT_LT(TaskType{1}, TaskType{2});
  EXPECT_EQ(kRootNode, NodeId{0});
}

TEST(Ids, HashableInUnorderedContainers) {
  std::hash<UserId> h;
  EXPECT_EQ(h(UserId{7}), h(UserId{7}));
}

TEST(FormatUtil, FormatDoublePrecision) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(-1.0, 0), "-1");
  EXPECT_EQ(format_double(0.5, 3), "0.500");
}

TEST(FormatUtil, FormatWithCommas) {
  EXPECT_EQ(format_with_commas(0), "0");
  EXPECT_EQ(format_with_commas(999), "999");
  EXPECT_EQ(format_with_commas(1000), "1,000");
  EXPECT_EQ(format_with_commas(1234567), "1,234,567");
  EXPECT_EQ(format_with_commas(-1234567), "-1,234,567");
}

TEST(FormatUtil, Join) {
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"a"}, ","), "a");
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
}

TEST(FormatUtil, Padding) {
  EXPECT_EQ(pad_left("x", 3), "  x");
  EXPECT_EQ(pad_right("x", 3), "x  ");
  EXPECT_EQ(pad_left("long", 2), "long");
}

TEST(Log, LevelGate) {
  const auto prev = log::level();
  log::set_level(log::Level::kError);
  EXPECT_EQ(log::level(), log::Level::kError);
  // Below-threshold emission is a no-op; nothing observable to assert
  // beyond "does not crash", which is still worth pinning.
  RIT_LOG_DEBUG << "suppressed";
  RIT_LOG_INFO << "suppressed";
  log::set_level(prev);
}

}  // namespace
}  // namespace rit
