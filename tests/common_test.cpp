#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/check.h"
#include "common/format_util.h"
#include "common/ids.h"
#include "common/log.h"
#include "common/parallel.h"

namespace rit {
namespace {

TEST(Check, PassingPredicateDoesNothing) {
  EXPECT_NO_THROW(RIT_CHECK(1 + 1 == 2));
  EXPECT_NO_THROW(RIT_CHECK_MSG(true, "never rendered"));
}

TEST(Check, FailingPredicateThrowsCheckFailure) {
  EXPECT_THROW(RIT_CHECK(false), CheckFailure);
}

TEST(Check, FailureMessageCarriesExpressionAndContext) {
  try {
    RIT_CHECK_MSG(2 > 3, "context " << 42);
    FAIL() << "expected CheckFailure";
  } catch (const CheckFailure& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("2 > 3"), std::string::npos) << what;
    EXPECT_NE(what.find("context 42"), std::string::npos) << what;
  }
}

TEST(Check, DcheckActiveInDebugOnly) {
#ifdef NDEBUG
  EXPECT_NO_THROW(RIT_DCHECK(false));
#else
  EXPECT_THROW(RIT_DCHECK(false), CheckFailure);
#endif
}

TEST(Ids, DistinctTypesCompareWithinTheirOwnSpace) {
  EXPECT_EQ(UserId{3}, UserId{3});
  EXPECT_NE(UserId{3}, UserId{4});
  EXPECT_LT(TaskType{1}, TaskType{2});
  EXPECT_EQ(kRootNode, NodeId{0});
}

TEST(Ids, HashableInUnorderedContainers) {
  std::hash<UserId> h;
  EXPECT_EQ(h(UserId{7}), h(UserId{7}));
}

TEST(FormatUtil, FormatDoublePrecision) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(-1.0, 0), "-1");
  EXPECT_EQ(format_double(0.5, 3), "0.500");
}

TEST(FormatUtil, FormatWithCommas) {
  EXPECT_EQ(format_with_commas(0), "0");
  EXPECT_EQ(format_with_commas(999), "999");
  EXPECT_EQ(format_with_commas(1000), "1,000");
  EXPECT_EQ(format_with_commas(1234567), "1,234,567");
  EXPECT_EQ(format_with_commas(-1234567), "-1,234,567");
}

TEST(FormatUtil, Join) {
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"a"}, ","), "a");
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
}

TEST(FormatUtil, Padding) {
  EXPECT_EQ(pad_left("x", 3), "  x");
  EXPECT_EQ(pad_right("x", 3), "x  ");
  EXPECT_EQ(pad_left("long", 2), "long");
}

TEST(Log, LevelGate) {
  const auto prev = log::level();
  log::set_level(log::Level::kError);
  EXPECT_EQ(log::level(), log::Level::kError);
  // Below-threshold emission is a no-op; nothing observable to assert
  // beyond "does not crash", which is still worth pinning.
  RIT_LOG_DEBUG << "suppressed";
  RIT_LOG_INFO << "suppressed";
  log::set_level(prev);
}

// Compile test for the dangling-else hazard: the macro must be usable as the
// body of an unbraced if inside an outer if/else without capturing the else.
// With the old `if (...) ; else stream` expansion this refused to compile
// (-Werror=dangling-else) and, worse, would have bound the else to the
// macro's hidden if.
TEST(Log, MacroIsDanglingElseSafe) {
  const auto prev = log::level();
  log::set_level(log::Level::kOff);
  bool else_branch_taken = false;
  if (false)
    RIT_LOG_INFO << "then-branch";
  else
    else_branch_taken = true;
  EXPECT_TRUE(else_branch_taken);

  // Also valid as the sole statement of an unbraced loop/if.
  for (int i = 0; i < 2; ++i) RIT_LOG_DEBUG << "loop body " << i;
  log::set_level(prev);
}

TEST(Log, JsonFormatEmitsStructuredLines) {
  const auto prev_level = log::level();
  const auto prev_format = log::format();
  log::set_level(log::Level::kInfo);
  log::set_format(log::Format::kJson);
  testing::internal::CaptureStderr();
  const log::Field fields[] = {{"bench", "fig8a"}, {"trials", "3"}};
  log::emit(log::Level::kWarn, "sweep \"done\"", fields);
  const std::string line = testing::internal::GetCapturedStderr();
  log::set_format(prev_format);
  log::set_level(prev_level);

  EXPECT_NE(line.find("\"level\":\"warn\""), std::string::npos) << line;
  EXPECT_NE(line.find("\"msg\":\"sweep \\\"done\\\"\""), std::string::npos)
      << line;
  EXPECT_NE(line.find("\"bench\":\"fig8a\""), std::string::npos) << line;
  EXPECT_NE(line.find("\"trials\":\"3\""), std::string::npos) << line;
  EXPECT_NE(line.find("\"ts_ms\":"), std::string::npos) << line;
}

TEST(Log, TextFormatKeepsHistoricalShapeAndAppendsFields) {
  const auto prev_level = log::level();
  log::set_level(log::Level::kInfo);
  testing::internal::CaptureStderr();
  const log::Field fields[] = {{"k", "v"}};
  log::emit(log::Level::kInfo, "hello", fields);
  const std::string line = testing::internal::GetCapturedStderr();
  log::set_level(prev_level);
  EXPECT_EQ(line, "[INFO ] hello k=v\n");
}

TEST(Parallel, ResolveThreadsClampsToItemsAndFloorsAtOne) {
  EXPECT_EQ(resolve_threads(4, 100), 4u);
  EXPECT_EQ(resolve_threads(8, 3), 3u);   // never more workers than items
  EXPECT_EQ(resolve_threads(5, 0), 1u);   // zero items still resolves to 1
  EXPECT_EQ(resolve_threads(1, 1000), 1u);
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw > 0) {
    EXPECT_EQ(resolve_threads(0, 1u << 20), hw);  // 0 = hardware concurrency
  } else {
    EXPECT_GE(resolve_threads(0, 1u << 20), 1u);
  }
}

TEST(Parallel, StridedCoversEveryIndexExactlyOnce) {
  for (const unsigned threads : {1u, 2u, 3u, 8u}) {
    SCOPED_TRACE(threads);
    std::vector<std::atomic<std::uint32_t>> hits(97);
    parallel_for_strided(hits.size(), threads,
                         [&](std::uint64_t i, unsigned /*worker*/) {
                           hits[i].fetch_add(1, std::memory_order_relaxed);
                         });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1u);
  }
}

TEST(Parallel, WorkerAssignmentIsTheStaticStride) {
  // Worker identity is a pure function of (index, threads): worker == i % T.
  // Deterministic merges downstream rely on exactly this partition.
  const unsigned threads = 3;
  std::vector<std::atomic<std::uint32_t>> owner(10);
  parallel_for_strided(owner.size(), threads,
                       [&](std::uint64_t i, unsigned worker) {
                         owner[i].store(worker, std::memory_order_relaxed);
                       });
  for (std::size_t i = 0; i < owner.size(); ++i) {
    EXPECT_EQ(owner[i].load(), i % threads);
  }
}

TEST(Parallel, SingleThreadRunsInlineOnTheCallingThread) {
  const std::thread::id caller = std::this_thread::get_id();
  bool all_inline = true;
  parallel_for_strided(5, 1, [&](std::uint64_t, unsigned worker) {
    EXPECT_EQ(worker, 0u);
    all_inline = all_inline && (std::this_thread::get_id() == caller);
  });
  EXPECT_TRUE(all_inline);
}

TEST(Parallel, ZeroItemsNeverInvokesBody) {
  parallel_for_strided(0, 4, [](std::uint64_t, unsigned) {
    FAIL() << "body must not run for zero items";
  });
}

TEST(FormatUtil, JsonEscape) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("back\\slash"), "back\\\\slash");
  EXPECT_EQ(json_escape("line\nbreak\ttab"), "line\\nbreak\\ttab");
  EXPECT_EQ(json_escape(std::string_view("\x01", 1)), "\\u0001");
}

}  // namespace
}  // namespace rit
