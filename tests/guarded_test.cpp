// The fault-tolerant trial engine: containment, failure budget, watchdog,
// and the kill/resume matrix proving checkpointed sweeps are bit-identical
// to uninterrupted ones at every checkpoint boundary × thread count.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "aggregate_bits.h"
#include "common/check.h"
#include "sim/chaos.h"
#include "sim/checkpoint.h"
#include "sim/fault.h"
#include "sim/guarded.h"
#include "sim/metrics.h"
#include "sim/report.h"
#include "sim/runner.h"
#include "sim/scenario.h"

namespace rit::sim {
namespace {

namespace fs = std::filesystem;
using testbits::expect_aggregate_identical;
using testbits::expect_results_identical;

fs::path scratch(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / "ritcs_guarded" / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

// A trial body that is a pure function of the trial index — including the
// "runtime" fields, which a real trial would time nondeterministically.
// That purity is what lets the kill/resume matrix demand bit-identity on
// every AggregateMetrics field, runtimes included.
TrialMetrics synthetic_trial(std::uint64_t t) {
  const double x = static_cast<double>(t);
  TrialMetrics m;
  m.success = (t % 3) != 0;
  m.avg_utility_auction = 0.25 * x - 1.0;
  m.avg_utility_rit = 1.0 / (x + 3.0);
  m.total_payment_auction = 10.0 + x;
  m.total_payment_rit = 20.0 + 2.0 * x;
  m.runtime_auction_ms = 0.125 * x;
  m.runtime_rit_ms = 0.5 + x / 7.0;
  m.solicitation_premium = 0.75 * x;
  m.tasks_allocated = t % 7;
  m.probability_degraded = (t % 5) == 0;
  return m;
}

TrialBody synthetic_body(std::atomic<std::uint64_t>* executed = nullptr) {
  return [executed](std::uint64_t t, core::RitWorkspace&, std::string*) {
    if (executed != nullptr) {
      executed->fetch_add(1, std::memory_order_relaxed);
    }
    return synthetic_trial(t);
  };
}

std::uint64_t seed_of(std::uint64_t t) { return t * 1000 + 7; }

Scenario small_scenario() {
  Scenario s;
  s.num_users = 120;
  s.num_types = 3;
  s.tasks_per_type = 10;
  s.k_max = 4;
  s.initial_joiners = 4;
  s.seed = 11;
  return s;
}

TEST(Guarded, SingleThreadMatchesSerialFoldBitExactly) {
  const std::uint64_t trials = 9;
  const GuardedResult r =
      run_trials_guarded(trials, 1, GuardPolicy{}, synthetic_body());
  AggregateMetrics expected;
  for (std::uint64_t t = 0; t < trials; ++t) {
    expected.add(synthetic_trial(t));
  }
  expect_aggregate_identical(r.metrics, expected);
  EXPECT_TRUE(r.faults.empty());
}

TEST(Guarded, SameThreadCountIsReproducible) {
  for (const unsigned threads : {1u, 2u, 8u}) {
    const GuardedResult a =
        run_trials_guarded(13, threads, GuardPolicy{}, synthetic_body());
    const GuardedResult b =
        run_trials_guarded(13, threads, GuardPolicy{}, synthetic_body());
    expect_results_identical(a, b);
  }
}

TEST(Guarded, InjectedThrowIsContainedAndLedgered) {
  GuardPolicy policy;
  policy.max_trial_failures = 2;
  policy.chaos.throw_on_trial = 3;
  const GuardedResult r =
      run_trials_guarded(8, 2, policy, synthetic_body(), seed_of);

  EXPECT_EQ(r.metrics.trials, 7u);
  EXPECT_EQ(r.metrics.failed_trials, 1u);
  EXPECT_EQ(r.metrics.quarantined_trials, 0u);
  EXPECT_EQ(r.metrics.attempted(), 8u);
  ASSERT_EQ(r.faults.size(), 1u);
  const TrialFault& f = r.faults.entries[0];
  EXPECT_EQ(f.trial, 3u);
  EXPECT_EQ(f.seed, seed_of(3));
  EXPECT_EQ(f.kind, FaultKind::kException);
  EXPECT_EQ(f.phase, "trial");
  EXPECT_NE(f.reason.find("chaos: injected throw"), std::string::npos);
}

TEST(Guarded, DefaultBudgetAbortsOnFirstFaultWithClearError) {
  GuardPolicy policy;  // max_trial_failures = 0: strict
  policy.chaos.throw_on_trial = 2;
  try {
    run_trials_guarded(6, 1, policy, synthetic_body(), seed_of);
    FAIL() << "expected CheckFailure";
  } catch (const CheckFailure& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("failure budget exhausted"), std::string::npos)
        << what;
    EXPECT_NE(what.find("trial 2"), std::string::npos) << what;
    EXPECT_NE(what.find("--max-trial-failures=0"), std::string::npos) << what;
  }
}

TEST(Guarded, FaultsOverBudgetAbort) {
  GuardPolicy policy;
  policy.max_trial_failures = 1;
  policy.chaos.fault_rate = 1.0;  // every trial throws
  EXPECT_THROW(run_trials_guarded(5, 2, policy, synthetic_body()),
               CheckFailure);
}

TEST(Guarded, AbortFlushesForensicsToAbortedArtifact) {
  // Budget exhaustion with a session must not lose the evidence: the
  // partial aggregate and the full fault ledger land in `.aborted` before
  // the CheckFailure surfaces.
  const fs::path dir = scratch("aborted_flush");
  CheckpointSession::Params p;
  p.path = (dir / "run.ckpt").string();
  p.config_hash = 5;
  p.threads = 2;
  p.trials = 8;
  CheckpointSession session(p);

  GuardPolicy policy;
  policy.max_trial_failures = 1;
  policy.chaos.fault_rate = 1.0;  // every trial throws; budget blows fast
  EXPECT_THROW(
      run_trials_guarded(8, 2, policy, synthetic_body(), seed_of, &session),
      CheckFailure);

  std::ifstream in(session.aborted_path(), std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing " << session.aborted_path();
  std::ostringstream content;
  content << in.rdbuf();
  const AbortedRecord rec =
      parse_aborted(content.str(), session.aborted_path());
  EXPECT_EQ(rec.point, 0u);
  EXPECT_NE(rec.reason.find("failure budget exhausted"), std::string::npos)
      << rec.reason;
  EXPECT_FALSE(rec.partial.faults.empty());
  EXPECT_GE(rec.partial.metrics.failed_trials, 2u);
}

TEST(Guarded, NonFiniteMetricsAreQuarantined) {
  GuardPolicy policy;
  policy.max_trial_failures = 1;
  policy.chaos.nan_on_trial = 4;
  const GuardedResult r =
      run_trials_guarded(6, 2, policy, synthetic_body(), seed_of);

  EXPECT_EQ(r.metrics.trials, 5u);
  EXPECT_EQ(r.metrics.failed_trials, 0u);
  EXPECT_EQ(r.metrics.quarantined_trials, 1u);
  ASSERT_EQ(r.faults.size(), 1u);
  EXPECT_EQ(r.faults.entries[0].trial, 4u);
  EXPECT_EQ(r.faults.entries[0].kind, FaultKind::kNonFinite);
  EXPECT_EQ(r.faults.entries[0].reason, "non-finite metric value");
  // The NaN never reached the accumulators.
  EXPECT_TRUE(std::isfinite(r.metrics.avg_utility_rit.mean()));
  EXPECT_TRUE(std::isfinite(r.metrics.avg_utility_rit.variance()));
}

TEST(Guarded, WatchdogFlagsSlowTrialPostHoc) {
  GuardPolicy policy;
  policy.max_trial_failures = 1;
  policy.trial_timeout_ms = 5.0;
  policy.chaos.delay_on_trial = 1;
  policy.chaos.delay_ms = 25.0;  // busy-wait well past the deadline
  const GuardedResult r =
      run_trials_guarded(3, 1, policy, synthetic_body(), seed_of);

  EXPECT_EQ(r.metrics.trials, 2u);
  EXPECT_EQ(r.metrics.failed_trials, 1u);
  ASSERT_EQ(r.faults.size(), 1u);
  EXPECT_EQ(r.faults.entries[0].trial, 1u);
  EXPECT_EQ(r.faults.entries[0].kind, FaultKind::kTimeout);
  EXPECT_NE(r.faults.entries[0].reason.find("--trial-timeout-ms"),
            std::string::npos);
}

TEST(Guarded, FaultRateDrawsAreIndependentOfThreadCount) {
  GuardPolicy policy;
  policy.max_trial_failures = 64;
  policy.chaos.fault_rate = 0.4;
  policy.chaos.seed = 9;
  auto faulted_trials = [&](unsigned threads) {
    const GuardedResult r =
        run_trials_guarded(32, threads, policy, synthetic_body());
    std::vector<std::uint64_t> trials;
    for (const TrialFault& f : r.faults.sorted_by_trial()) {
      trials.push_back(f.trial);
    }
    return trials;
  };
  const std::vector<std::uint64_t> serial = faulted_trials(1);
  EXPECT_FALSE(serial.empty());
  EXPECT_LT(serial.size(), 32u);
  EXPECT_EQ(faulted_trials(4), serial);
  EXPECT_EQ(faulted_trials(8), serial);
}

TEST(Guarded, ZeroSuccessfulTrialsYieldsNanFreeReporting) {
  GuardPolicy policy;
  policy.max_trial_failures = 8;
  policy.chaos.fault_rate = 1.0;  // every trial faults, all contained
  const GuardedResult r =
      run_trials_guarded(4, 2, policy, synthetic_body(), seed_of);

  EXPECT_EQ(r.metrics.trials, 0u);
  EXPECT_EQ(r.metrics.failed_trials, 4u);
  EXPECT_EQ(r.metrics.success_rate(), 0.0);
  EXPECT_EQ(r.metrics.degraded_rate(), 0.0);
  // Every value a writer would render is a real number, and the rendered
  // markdown (the bench/CLI table) carries no NaN/inf tokens.
  EXPECT_TRUE(std::isfinite(r.metrics.avg_utility_rit.mean()));
  EXPECT_TRUE(std::isfinite(r.metrics.avg_utility_rit.min()));
  EXPECT_TRUE(std::isfinite(r.metrics.avg_utility_rit.max()));
  EXPECT_TRUE(std::isfinite(r.metrics.avg_utility_rit.ci95_half_width()));
  std::string md = aggregate_markdown(r.metrics);
  std::transform(md.begin(), md.end(), md.begin(),
                 [](unsigned char c) { return static_cast<char>(
                     std::tolower(c)); });
  EXPECT_EQ(md.find("nan"), std::string::npos) << md;
  EXPECT_EQ(md.find("inf"), std::string::npos) << md;
  EXPECT_NE(md.find("4 failed"), std::string::npos) << md;
}

// ---------------------------------------------------------------------------
// The kill/resume matrix. trials=11, every=3 gives checkpoint writes after
// trials 3, 6 and 9 (the final complete_point is not a kill site), so
// kill_after ∈ {1,2,3} exercises a death at every checkpoint boundary.
// ---------------------------------------------------------------------------

CheckpointSession::Params matrix_params(const std::string& path,
                                        unsigned threads, bool resume) {
  CheckpointSession::Params p;
  p.path = path;
  p.config_hash = 0x12340000ull + threads;
  p.seed = 77;
  p.threads = threads;
  p.trials = 11;
  p.every = 3;
  p.resume = resume;
  return p;
}

TEST(GuardedResume, KillAtEveryBoundaryResumesBitIdentically) {
  constexpr std::uint64_t kTrials = 11;
  constexpr std::uint64_t kEvery = 3;
  for (const unsigned threads : {1u, 2u, 8u}) {
    // Uninterrupted, checkpoint-free reference at the same thread count.
    const GuardedResult reference =
        run_trials_guarded(kTrials, threads, GuardPolicy{}, synthetic_body(),
                           seed_of);
    for (std::uint64_t kill_after = 1; kill_after <= 3; ++kill_after) {
      const fs::path dir =
          scratch("matrix_t" + std::to_string(threads) + "_k" +
                  std::to_string(kill_after));
      const std::string path = (dir / "sweep.ckpt").string();

      GuardPolicy killer;
      killer.chaos.kill_after_checkpoints = kill_after;
      auto doomed = std::make_unique<CheckpointSession>(
          matrix_params(path, threads, false));
      EXPECT_THROW(run_trials_guarded(kTrials, threads, killer,
                                      synthetic_body(), seed_of,
                                      doomed.get()),
                   chaos::ChaosKill);
      doomed.reset();  // the "dead process" releases the file

      std::atomic<std::uint64_t> executed{0};
      CheckpointSession revived(matrix_params(path, threads, true));
      const GuardedResult resumed =
          run_trials_guarded(kTrials, threads, GuardPolicy{},
                             synthetic_body(&executed), seed_of, &revived);

      expect_results_identical(resumed, reference);
      // Resume picked up at the checkpoint cursor instead of starting over.
      EXPECT_EQ(executed.load(), kTrials - kEvery * kill_after)
          << "threads=" << threads << " kill_after=" << kill_after;
    }
  }
}

TEST(GuardedResume, KillAndResumeWithContainedFaultsMatches) {
  constexpr std::uint64_t kTrials = 10;
  GuardPolicy chaotic;
  chaotic.max_trial_failures = 5;
  chaotic.chaos.throw_on_trial = 7;
  chaotic.chaos.nan_on_trial = 2;

  for (const unsigned threads : {2u, 8u}) {
    const GuardedResult reference = run_trials_guarded(
        kTrials, threads, chaotic, synthetic_body(), seed_of);
    EXPECT_EQ(reference.faults.size(), 2u);

    const fs::path dir = scratch("faulty_t" + std::to_string(threads));
    const std::string path = (dir / "sweep.ckpt").string();
    CheckpointSession::Params p;
    p.path = path;
    p.config_hash = 0x777;
    p.seed = 77;
    p.threads = threads;
    p.trials = kTrials;
    p.every = 4;
    GuardPolicy killer = chaotic;
    killer.chaos.kill_after_checkpoints = 1;
    {
      CheckpointSession doomed(p);
      EXPECT_THROW(run_trials_guarded(kTrials, threads, killer,
                                      synthetic_body(), seed_of, &doomed),
                   chaos::ChaosKill);
    }
    p.resume = true;
    CheckpointSession revived(p);
    const GuardedResult resumed = run_trials_guarded(
        kTrials, threads, chaotic, synthetic_body(), seed_of, &revived);
    expect_results_identical(resumed, reference);
  }
}

TEST(GuardedResume, CompletedPointIsServedWithoutRerunning) {
  const fs::path dir = scratch("memo");
  const std::string path = (dir / "sweep.ckpt").string();
  CheckpointSession::Params p;
  p.path = path;
  p.config_hash = 0xc0ffee;
  p.seed = 5;
  p.threads = 2;
  p.trials = 6;
  p.every = 0;
  GuardedResult first;
  {
    CheckpointSession s(p);
    first = run_trials_guarded(6, 2, GuardPolicy{}, synthetic_body(), seed_of,
                               &s);
  }
  p.resume = true;
  CheckpointSession again(p);
  std::atomic<std::uint64_t> executed{0};
  const GuardedResult served = run_trials_guarded(
      6, 2, GuardPolicy{}, synthetic_body(&executed), seed_of, &again);
  EXPECT_EQ(executed.load(), 0u);
  expect_results_identical(served, first);
}

TEST(GuardedResume, SessionBoundToDifferentRunShapeIsRejected) {
  const fs::path dir = scratch("shape");
  CheckpointSession::Params p;
  p.path = (dir / "sweep.ckpt").string();
  p.config_hash = 1;
  p.seed = 1;
  p.threads = 4;
  p.trials = 8;
  CheckpointSession s(p);
  // Runner resolves 2 threads, session says 4 — and vice versa for trials.
  EXPECT_THROW(
      run_trials_guarded(8, 2, GuardPolicy{}, synthetic_body(), {}, &s),
      CheckFailure);
  EXPECT_THROW(
      run_trials_guarded(9, 4, GuardPolicy{}, synthetic_body(), {}, &s),
      CheckFailure);
}

// Real trials time themselves with wall-clock timers, so two runs only
// agree bit-for-bit on the mechanism outputs; runtime stats match in shape
// (count) but not value. Mirrors sim_test's serial/parallel equivalence.
void expect_deterministic_fields_identical(const AggregateMetrics& a,
                                           const AggregateMetrics& b) {
  testbits::expect_stats_identical(a.avg_utility_auction,
                                   b.avg_utility_auction,
                                   "avg_utility_auction");
  testbits::expect_stats_identical(a.avg_utility_rit, b.avg_utility_rit,
                                   "avg_utility_rit");
  testbits::expect_stats_identical(a.total_payment_auction,
                                   b.total_payment_auction,
                                   "total_payment_auction");
  testbits::expect_stats_identical(a.total_payment_rit, b.total_payment_rit,
                                   "total_payment_rit");
  testbits::expect_stats_identical(a.solicitation_premium,
                                   b.solicitation_premium,
                                   "solicitation_premium");
  testbits::expect_stats_identical(a.tasks_allocated, b.tasks_allocated,
                                   "tasks_allocated");
  EXPECT_EQ(a.runtime_auction_ms.count(), b.runtime_auction_ms.count());
  EXPECT_EQ(a.runtime_rit_ms.count(), b.runtime_rit_ms.count());
  EXPECT_EQ(a.trials, b.trials);
  EXPECT_EQ(a.successes, b.successes);
  EXPECT_EQ(a.degraded_trials, b.degraded_trials);
  EXPECT_EQ(a.failed_trials, b.failed_trials);
  EXPECT_EQ(a.quarantined_trials, b.quarantined_trials);
}

TEST(GuardedScenario, MatchesRunManyParallel) {
  const Scenario s = small_scenario();
  for (const unsigned threads : {1u, 3u}) {
    const AggregateMetrics plain = run_many_parallel(s, 6, threads);
    const GuardedResult guarded =
        run_many_guarded(s, 6, threads, GuardPolicy{});
    expect_deterministic_fields_identical(guarded.metrics, plain);
    EXPECT_TRUE(guarded.faults.empty());
  }
}

TEST(GuardedScenario, KillAndResumeMatchesOnDeterministicFields) {
  // Real trials time themselves, so runtime stats differ run to run; the
  // mechanism outputs must still be bit-identical after a kill/resume.
  const Scenario s = small_scenario();
  const unsigned threads = 2;
  const std::uint64_t trials = 6;
  const GuardedResult reference =
      run_many_guarded(s, trials, threads, GuardPolicy{});

  const fs::path dir = scratch("scenario");
  CheckpointSession::Params p;
  p.path = (dir / "sweep.ckpt").string();
  p.config_hash = 0xabc;
  p.seed = s.seed;
  p.threads = threads;
  p.trials = trials;
  p.every = 2;
  GuardPolicy killer;
  killer.chaos.kill_after_checkpoints = 1;
  {
    CheckpointSession doomed(p);
    EXPECT_THROW(
        run_many_guarded(s, trials, threads, killer, &doomed),
        chaos::ChaosKill);
  }
  p.resume = true;
  CheckpointSession revived(p);
  const GuardedResult resumed =
      run_many_guarded(s, trials, threads, GuardPolicy{}, &revived);

  expect_deterministic_fields_identical(resumed.metrics, reference.metrics);
}

TEST(Guarded, ProgressReachesTheFinalTrial) {
  std::uint64_t last_done = 0;
  std::uint64_t last_total = 0;
  const ProgressFn progress = [&](std::uint64_t done, std::uint64_t total) {
    last_done = done;
    last_total = total;
  };
  run_trials_guarded(7, 2, GuardPolicy{}, synthetic_body(), {}, nullptr, 0,
                     progress);
  EXPECT_EQ(last_done, 7u);
  EXPECT_EQ(last_total, 7u);
}

}  // namespace
}  // namespace rit::sim
