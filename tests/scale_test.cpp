// Bit-identity of the intra-trial parallel passes (ctest -L scale).
//
// Every knob behind --intra-threads — the graph CSR edge sort, the
// spanning-forest wave scan, and the flat payment pass — promises
// bit-identical output at any thread count (fixed blocked partition,
// disjoint writes, worker-order merges). These tests pin that promise at
// threads {1, 2, 8} on instances big enough to actually engage the
// parallel paths (the edge sort needs >= 64k edges, the wave scan >= 2k
// frontier nodes), and end-to-end on a full simulated trial.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <vector>

#include "core/payment.h"
#include "core/rit.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "rng/rng.h"
#include "sim/runner.h"
#include "sim/scenario.h"
#include "tree/builders.h"

namespace rit {
namespace {

const unsigned kThreadMatrix[] = {1, 2, 8};

void expect_doubles_identical(const std::vector<double>& a,
                              const std::vector<double>& b,
                              const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(std::bit_cast<std::uint64_t>(a[i]),
              std::bit_cast<std::uint64_t>(b[i]))
        << what << "[" << i << "]: " << a[i] << " vs " << b[i];
  }
}

TEST(ScaleIdentity, GraphCsrIdenticalAcrossThreads) {
  // ~90k edges: the parallel block-sort + ordered-merge path engages.
  const std::uint32_t n = 30000;
  rng::Rng rng(21);
  const graph::Graph serial = graph::barabasi_albert(n, 3, rng, 1);
  ASSERT_GE(serial.num_edges(), 1u << 16);
  for (unsigned t : kThreadMatrix) {
    rng::Rng rng_t(21);
    const graph::Graph g = graph::barabasi_albert(n, 3, rng_t, t);
    ASSERT_EQ(g.num_edges(), serial.num_edges()) << "threads=" << t;
    for (std::uint32_t u = 0; u < n; ++u) {
      const auto a = serial.out_neighbors(u);
      const auto b = g.out_neighbors(u);
      ASSERT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end()))
          << "threads=" << t << " node " << u;
    }
  }
}

TEST(ScaleIdentity, SpanningForestIdenticalAcrossThreads) {
  const std::uint32_t n = 50000;
  rng::Rng rng(22);
  const graph::Graph g = graph::barabasi_albert(n, 3, rng);
  tree::SpanningForestOptions opts;
  opts.seeds = {0, 1, 2, 3, 4};
  opts.threads = 1;
  const tree::SpanningForestResult serial = tree::build_spanning_forest(g, opts);
  for (unsigned t : kThreadMatrix) {
    opts.threads = t;
    const tree::SpanningForestResult forest =
        tree::build_spanning_forest(g, opts);
    EXPECT_EQ(forest.tree.parents(), serial.tree.parents())
        << "threads=" << t;
    EXPECT_EQ(forest.graph_of, serial.graph_of) << "threads=" << t;
    EXPECT_EQ(forest.joined, serial.joined) << "threads=" << t;
  }
}

TEST(ScaleIdentity, CappedForestIdenticalAcrossThreads) {
  // max_users cuts a wave mid-append: the un-marking of cut-off candidates
  // must also replay identically under the parallel scan.
  const std::uint32_t n = 40000;
  rng::Rng rng(23);
  const graph::Graph g = graph::barabasi_albert(n, 3, rng);
  tree::SpanningForestOptions opts;
  opts.seeds = {0, 1, 2};
  opts.max_users = n / 2;
  opts.attach_unreached_to_root = false;
  opts.threads = 1;
  const tree::SpanningForestResult serial = tree::build_spanning_forest(g, opts);
  for (unsigned t : kThreadMatrix) {
    opts.threads = t;
    const tree::SpanningForestResult forest =
        tree::build_spanning_forest(g, opts);
    EXPECT_EQ(forest.tree.parents(), serial.tree.parents())
        << "threads=" << t;
    EXPECT_EQ(forest.graph_of, serial.graph_of) << "threads=" << t;
  }
}

TEST(ScaleIdentity, PaymentPassIdenticalAcrossThreads) {
  const std::uint32_t n = 100000;
  rng::Rng rng(24);
  const auto tree = tree::random_recursive_tree(n, 0.05, rng);
  std::vector<TaskType> types(n);
  std::vector<double> auction(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    types[i] = TaskType{static_cast<std::uint32_t>(rng.uniform_index(10))};
    auction[i] = rng.bernoulli(0.3) ? rng.uniform01() * 10.0 : 0.0;
  }
  const std::vector<double> serial =
      core::tree_payments(tree, types, auction, 0.5);
  for (unsigned t : kThreadMatrix) {
    core::PaymentWorkspace ws;
    std::vector<double> out;
    core::tree_payments_into(tree, types, auction, 0.5, t, ws, out);
    expect_doubles_identical(out, serial, "payment");
  }
}

TEST(ScaleIdentity, FullTrialIdenticalAcrossThreads) {
  // End-to-end: workload generation (graph sort + wave scan) and the
  // mechanism (payment pass) both honor intra_threads; allocation and
  // payments must come out bit-identical.
  sim::Scenario base;
  base.num_users = 30000;
  base.tasks_per_type = 150;
  base.seed = 7;
  base.mechanism.round_budget_policy =
      core::RoundBudgetPolicy::kRunToCompletion;

  base.intra_threads = 1;
  base.mechanism.intra_threads = 1;
  const sim::TrialInstance ref_inst = sim::make_instance(base, 0);
  rng::Rng ref_rng(ref_inst.mechanism_seed);
  const core::RitResult ref =
      core::run_rit(ref_inst.job, ref_inst.population.truthful_asks,
                    ref_inst.tree, base.mechanism, ref_rng);

  for (unsigned t : kThreadMatrix) {
    sim::Scenario s = base;
    s.intra_threads = t;
    s.mechanism.intra_threads = t;
    const sim::TrialInstance inst = sim::make_instance(s, 0);
    EXPECT_EQ(inst.tree.parents(), ref_inst.tree.parents())
        << "threads=" << t;
    EXPECT_EQ(inst.mechanism_seed, ref_inst.mechanism_seed);
    rng::Rng mech_rng(inst.mechanism_seed);
    const core::RitResult got =
        core::run_rit(inst.job, inst.population.truthful_asks, inst.tree,
                      s.mechanism, mech_rng);
    EXPECT_EQ(got.success, ref.success) << "threads=" << t;
    EXPECT_EQ(got.allocation, ref.allocation) << "threads=" << t;
    expect_doubles_identical(got.auction_payment, ref.auction_payment,
                             "auction_payment");
    expect_doubles_identical(got.payment, ref.payment, "payment");
  }
}

}  // namespace
}  // namespace rit
