// Self-tests for the rit_lint engine (ctest -L lint).
//
// Every rule is exercised twice from fixtures under tests/lint_fixtures/:
// a *_bad file that must produce findings for exactly that rule, and a
// *_allowed file — the same violation plus a `// rit-lint: allow(...)`
// directive — that must scan clean. On top of the fixtures, the engine's
// lexical machinery (comment/string stripping, word boundaries, cross-file
// pairing) is pinned down directly so a refactor cannot quietly widen or
// narrow a rule.
#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "baseline.h"
#include "include_graph.h"
#include "linter.h"
#include "output.h"

namespace {

using rit::lint::Finding;
using rit::lint::Severity;
using rit::lint::SourceFile;

std::string read_fixture(const std::string& name) {
  const std::string path =
      std::string(RITCS_SOURCE_DIR) + "/tests/lint_fixtures/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture: " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

struct FixtureCase {
  const char* rule;
  const char* bad;
  const char* allowed;
  const char* as_path;  // path the fixture pretends to live at
  // Optional second file scanned alongside (cross-file rules: the
  // unused-include heuristic needs the included header in the scan set).
  const char* companion{nullptr};
  const char* companion_path{nullptr};
};

// Scans a fixture under a repo-plausible path (some rules are scoped to
// src/-relative locations or result-path files), with the case's
// companion file, if any, in the same scan set.
std::vector<Finding> scan_fixture(const std::string& name,
                                  const FixtureCase& fc) {
  std::vector<SourceFile> files;
  if (fc.companion != nullptr) {
    files.push_back(SourceFile{fc.companion_path, read_fixture(fc.companion)});
  }
  files.push_back(SourceFile{fc.as_path, read_fixture(name)});
  return rit::lint::scan(files);
}

const FixtureCase kFixtures[] = {
    {"no-std-rand", "no_std_rand_bad.cpp", "no_std_rand_allowed.cpp",
     "src/sim/scratch.cpp"},
    {"no-random-device", "no_random_device_bad.cpp",
     "no_random_device_allowed.cpp", "src/sim/scratch.cpp"},
    {"no-std-distribution", "no_std_distribution_bad.cpp",
     "no_std_distribution_allowed.cpp", "src/sim/scratch.cpp"},
    {"no-std-engine", "no_std_engine_bad.cpp", "no_std_engine_allowed.cpp",
     "src/sim/scratch.cpp"},
    {"no-std-shuffle", "no_std_shuffle_bad.cpp",
     "no_std_shuffle_allowed.cpp", "src/sim/scratch.cpp"},
    {"no-wallclock-in-results", "no_wallclock_in_results_bad.cpp",
     "no_wallclock_in_results_allowed.cpp", "src/sim/scratch.cpp"},
    {"no-wallclock-in-history", "no_wallclock_in_history_bad.cpp",
     "no_wallclock_in_history_allowed.cpp", "src/obs/history_scratch.cpp"},
    {"no-locale-numeric", "no_locale_numeric_bad.cpp",
     "no_locale_numeric_allowed.cpp", "src/core/result_io_scratch.cpp"},
    {"no-fast-math", "no_fast_math_bad.cmake", "no_fast_math_allowed.cmake",
     "src/CMakeLists.txt"},
    {"no-long-double", "no_long_double_bad.cpp",
     "no_long_double_allowed.cpp", "src/sim/scratch.cpp"},
    {"no-raw-process-api", "no_raw_process_api_bad.cpp",
     "no_raw_process_api_allowed.cpp", "src/sim/scratch.cpp"},
    {"no-unordered-iteration-in-results",
     "no_unordered_iteration_in_results_bad.cpp",
     "no_unordered_iteration_in_results_allowed.cpp",
     "src/sim/scratch.cpp"},
    {"merge-coverage-guard", "merge_coverage_guard_bad.cpp",
     "merge_coverage_guard_allowed.cpp", "src/sim/scratch.cpp"},
    {"no-bare-catch-all", "no_bare_catch_all_bad.cpp",
     "no_bare_catch_all_allowed.cpp", "src/sim/scratch.cpp"},
    {"no-rng-in-parallel-region", "no_rng_in_parallel_region_bad.cpp",
     "no_rng_in_parallel_region_allowed.cpp", "src/sim/scratch.cpp"},
    {"boundary-io-num-io", "boundary_io_num_io_bad.cpp",
     "boundary_io_num_io_allowed.cpp", "src/core/result_io_scratch.cpp"},
    {"layer-violation", "layer_violation_bad.cpp",
     "layer_violation_allowed.cpp", "src/core/scratch.cpp"},
    {"include-cycle", "include_cycle_bad.h", "include_cycle_allowed.h",
     "src/core/cycle_scratch.h"},
    {"unused-include", "unused_include_bad.cpp",
     "unused_include_allowed.cpp", "src/sim/scratch_unused.cpp",
     "unused_include_helper.h", "src/common/scratch_helper.h"},
    {"testkit-only-injection", "testkit_only_injection_bad.cpp",
     "testkit_only_injection_allowed.cpp", "src/sim/scratch.cpp"},
};

TEST(LintFixtures, EveryRuleHasABadFixtureThatFires) {
  for (const FixtureCase& fc : kFixtures) {
    SCOPED_TRACE(fc.bad);
    const std::vector<Finding> findings = scan_fixture(fc.bad, fc);
    ASSERT_FALSE(findings.empty())
        << "bad fixture produced no findings for rule " << fc.rule;
    for (const Finding& f : findings) {
      EXPECT_EQ(f.rule, fc.rule);
      EXPECT_GT(f.line, 0u);
    }
  }
}

TEST(LintFixtures, EveryRuleHasAnAllowlistedFixtureThatIsClean) {
  for (const FixtureCase& fc : kFixtures) {
    SCOPED_TRACE(fc.allowed);
    const std::vector<Finding> findings = scan_fixture(fc.allowed, fc);
    EXPECT_TRUE(findings.empty())
        << "allowlisted fixture still fires: " << findings[0].rule << " at "
        << findings[0].file << ":" << findings[0].line;
  }
}

TEST(LintFixtures, RuleListCoversEveryFixture) {
  std::set<std::string> ids;
  for (const rit::lint::RuleInfo& info : rit::lint::rule_infos()) {
    ids.insert(info.id);
  }
  EXPECT_EQ(ids.size(), std::size(kFixtures));
  for (const FixtureCase& fc : kFixtures) {
    EXPECT_EQ(ids.count(fc.rule), 1u) << fc.rule;
  }
}

// --- Lexical machinery -----------------------------------------------------

TEST(LintStrip, RemovesCommentsAndStringsButKeepsLineStructure) {
  const std::string src =
      "int a; // std::rand() in a comment\n"
      "const char* s = \"std::rand()\";\n"
      "/* block std::rand()\n"
      "   more */ int b;\n";
  const std::string stripped = rit::lint::strip_comments_and_strings(src);
  EXPECT_EQ(std::count(stripped.begin(), stripped.end(), '\n'),
            std::count(src.begin(), src.end(), '\n'));
  EXPECT_EQ(stripped.find("rand"), std::string::npos);
  EXPECT_NE(stripped.find("int a;"), std::string::npos);
  EXPECT_NE(stripped.find("int b;"), std::string::npos);
}

TEST(LintStrip, RawStringsAndCharLiterals) {
  const std::string src =
      "auto re = R\"(std::rand\\b)\";\n"
      "char c = 'r';\n"
      "int keep = 1;\n";
  const std::string stripped = rit::lint::strip_comments_and_strings(src);
  EXPECT_EQ(stripped.find("rand"), std::string::npos);
  EXPECT_NE(stripped.find("int keep = 1;"), std::string::npos);
}

TEST(LintScan, TokensInCommentsAndStringsDoNotFire) {
  const SourceFile f{"src/sim/scratch.cpp",
                     "// mentions std::rand and mt19937 in prose\n"
                     "const char* kDoc = \"never call srand()\";\n"};
  EXPECT_TRUE(rit::lint::scan_file(f).empty());
}

TEST(LintScan, WordBoundariesHold) {
  // "grand(", "operand(", "steady_clock" must not trip rand/wallclock
  // rules; std::ostream marks the file as a result path on purpose.
  const SourceFile f{"src/sim/scratch.cpp",
                     "#include <ostream>\n"
                     "void grand(std::ostream& out);\n"
                     "int operand(int x);\n"
                     "void t() { auto n = std::chrono::steady_clock::now(); "
                     "(void)n; }\n"};
  EXPECT_TRUE(rit::lint::scan_file(f).empty());
}

TEST(LintScan, RandomDeviceAllowedInsideRngDir) {
  const std::string body =
      "#include <random>\nstd::random_device entropy_probe;\n";
  EXPECT_TRUE(
      rit::lint::scan_file(SourceFile{"src/rng/entropy.cpp", body}).empty());
  EXPECT_FALSE(
      rit::lint::scan_file(SourceFile{"src/sim/entropy.cpp", body}).empty());
}

TEST(LintScan, HistoryRuleIsPathScoped) {
  // The same wall-clock read is fine outside the history ledger path (a
  // plain src/ file that is not a result path) and flagged inside it.
  const std::string body =
      "#include <ctime>\n"
      "long stamp() { return static_cast<long>(std::time(nullptr)); }\n";
  EXPECT_TRUE(
      rit::lint::scan_file(SourceFile{"src/sim/scratch.cpp", body}).empty());
  const std::vector<Finding> findings =
      rit::lint::scan_file(SourceFile{"src/obs/history_scratch.cpp", body});
  ASSERT_FALSE(findings.empty());
  EXPECT_EQ(findings[0].rule, "no-wallclock-in-history");
}

// --- Structural rules ------------------------------------------------------

TEST(LintUnordered, LookupOnlyUseIsClean) {
  // edge_list_io-style: unordered_map as a remap table, never iterated.
  const SourceFile f{
      "src/graph/scratch_io.cpp",
      "#include <ostream>\n"
      "#include <unordered_map>\n"
      "void remap_write(std::ostream& out) {\n"
      "  std::unordered_map<int, int> remap;\n"
      "  remap[1] = 2;\n"
      "  out << remap[1];\n"
      "}\n"};
  EXPECT_TRUE(rit::lint::scan_file(f).empty());
}

TEST(LintUnordered, IterationOutsideResultPathIsClean) {
  // No ostream marker, no result-ish path component: hash-order iteration
  // is only banned where it can leak into emitted results.
  const SourceFile f{
      "src/core/scratch.cpp",
      "#include <unordered_map>\n"
      "int sum_keys() {\n"
      "  std::unordered_map<int, int> m;\n"
      "  int s = 0;\n"
      "  for (const auto& [k, v] : m) s += k;\n"
      "  return s;\n"
      "}\n"};
  EXPECT_TRUE(rit::lint::scan_file(f).empty());
}

TEST(LintUnordered, CppSeesDeclarationsFromSameStemHeader) {
  // The Ledger shape: member declared in the header, hash-order float
  // accumulation in the .cpp.
  const SourceFile hdr{"src/platform/scratch.h",
                       "#include <unordered_map>\n"
                       "class Book {\n"
                       "  std::unordered_map<int, double> balances_;\n"
                       "  double total() const;\n"
                       "};\n"};
  const SourceFile cpp{
      "src/platform/scratch.cpp",
      "#include <ostream>\n"
      "void Book::statement(std::ostream& out) const { out << total(); }\n"
      "double Book::total() const {\n"
      "  double t = 0.0;\n"
      "  for (const auto& [a, b] : balances_) t += b;\n"
      "  return t;\n"
      "}\n"};
  const std::vector<Finding> findings = rit::lint::scan({hdr, cpp});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "no-unordered-iteration-in-results");
  EXPECT_EQ(findings[0].file, "src/platform/scratch.cpp");
  EXPECT_EQ(findings[0].line, 5u);
}

TEST(LintMergeGuard, GuardInSiblingFileSatisfiesHeaderDefinition) {
  const SourceFile hdr{"src/stats/scratch.h",
                       "struct Acc {\n"
                       "  double sum{0.0};\n"
                       "  void merge(const Acc& other);\n"
                       "};\n"};
  const SourceFile cpp{"src/stats/scratch.cpp",
                       "static_assert(sizeof(Acc) == sizeof(double),\n"
                       "              \"update merge()\");\n"
                       "void Acc::merge(const Acc& other) { sum += "
                       "other.sum; }\n"};
  EXPECT_TRUE(rit::lint::scan({hdr, cpp}).empty());
  // Without the guard file, both the declaration and the out-of-line
  // definition are reported.
  EXPECT_FALSE(rit::lint::scan({hdr}).empty());
}

TEST(LintMergeGuard, CrossTypeFoldsCarryNoObligation) {
  // Stat::merge_in(const OnlineStats&) and friends: not a self-merge.
  const SourceFile f{"src/obs/scratch.h",
                     "struct Stat {\n"
                     "  void merge_in(const OnlineStats& other);\n"
                     "};\n"};
  EXPECT_TRUE(rit::lint::scan_file(f).empty());
}

// --- Directives ------------------------------------------------------------

TEST(LintAllow, DirectiveCoversItsLineAndTheNext) {
  const std::string line_after =
      "// rit-lint: allow(no-std-rand)\n"
      "int x = std::rand();\n";
  EXPECT_TRUE(
      rit::lint::scan_file(SourceFile{"src/a.cpp", line_after}).empty());
  const std::string two_below =
      "// rit-lint: allow(no-std-rand)\n"
      "int y = 0;\n"
      "int x = std::rand();\n";
  EXPECT_FALSE(
      rit::lint::scan_file(SourceFile{"src/a.cpp", two_below}).empty());
}

TEST(LintAllow, CommaSeparatedRulesAndWildcard) {
  const std::string multi =
      "int x = std::rand();  // rit-lint: allow(no-std-rand, no-std-engine)\n"
      "std::mt19937 eng;  // rit-lint: allow(*)\n";
  EXPECT_TRUE(rit::lint::scan_file(SourceFile{"src/a.cpp", multi}).empty());
}

// --- Tree walk -------------------------------------------------------------

TEST(LintTree, CollectsRepoSourcesDeterministically) {
  const std::vector<SourceFile> files =
      rit::lint::collect_tree(RITCS_SOURCE_DIR);
  ASSERT_GT(files.size(), 100u);
  for (std::size_t i = 1; i < files.size(); ++i) {
    EXPECT_LT(files[i - 1].path, files[i].path);
  }
  for (const SourceFile& f : files) {
    EXPECT_EQ(f.path.find("lint_fixtures"), std::string::npos) << f.path;
    EXPECT_EQ(f.path.find("tests/golden"), std::string::npos) << f.path;
  }
}

TEST(LintTree, LiveTreeIsClean) {
  // Errors gate; report-only notes (unused-include) are listed but do not
  // fail the build — the CLI exit status follows the same split.
  const std::vector<Finding> findings =
      rit::lint::scan(rit::lint::collect_tree(RITCS_SOURCE_DIR));
  for (const Finding& f : findings) {
    if (f.severity != Severity::kError) continue;
    ADD_FAILURE() << f.file << ":" << f.line << ": [" << f.rule << "] "
                  << f.message;
  }
}

TEST(LintTree, SeededViolationIsCaught) {
  // The acceptance smoke: drop a scratch file with std::rand into the scan
  // set and the tree goes red.
  std::vector<SourceFile> files = rit::lint::collect_tree(RITCS_SOURCE_DIR);
  files.push_back(SourceFile{"src/sim/scratch_seeded.cpp",
                             "#include <cstdlib>\n"
                             "int noise() { return std::rand(); }\n"});
  const std::vector<Finding> findings = rit::lint::scan(files);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "no-std-rand");
  EXPECT_EQ(findings[0].file, "src/sim/scratch_seeded.cpp");
}

// --- Include graph / layering ----------------------------------------------

TEST(LintLayering, ModuleAndTierMapping) {
  using rit::lint::internal::layer_of;
  using rit::lint::internal::module_of;
  EXPECT_EQ(module_of("src/core/rit.h"), "core");
  EXPECT_EQ(module_of("src/common/num_io.cpp"), "common");
  EXPECT_EQ(module_of("bench/bench_scale.cpp"), "bench");
  EXPECT_EQ(module_of("tests/lint_test.cpp"), "tests");
  EXPECT_EQ(module_of("configs/paper.cfg"), "");
  EXPECT_LT(layer_of("common"), layer_of("graph"));
  EXPECT_LT(layer_of("tree"), layer_of("core"));
  EXPECT_LT(layer_of("core"), layer_of("sim"));
  EXPECT_LT(layer_of("sim"), layer_of("attack"));
  EXPECT_LT(layer_of("attack"), layer_of("cli"));
  EXPECT_EQ(layer_of("core"), layer_of("stats"));
  EXPECT_EQ(layer_of("nonexistent"), -1);
}

TEST(LintLayering, DownwardAndSameTierIncludesAreClean) {
  const SourceFile f{"src/sim/scratch.cpp",
                     "#include \"common/check.h\"\n"
                     "#include \"core/rit.h\"\n"
                     "#include \"obs/obs.h\"\n"};
  EXPECT_TRUE(rit::lint::scan_file(f).empty());
}

TEST(LintLayering, InstrumentationExceptionsAreDeclaredEdges) {
  // tree -> obs and core -> obs cut across the tiers by declaration (the
  // obs macros compile away under RIT_OBS_ENABLED=OFF); sim -> attack has
  // no such exception and must fire.
  using rit::lint::internal::layering_exception;
  EXPECT_TRUE(layering_exception("tree", "obs"));
  EXPECT_TRUE(layering_exception("core", "obs"));
  EXPECT_FALSE(layering_exception("sim", "attack"));
  EXPECT_TRUE(
      rit::lint::scan_file(
              SourceFile{"src/core/scratch.cpp", "#include \"obs/obs.h\"\n"})
          .empty());
  const std::vector<Finding> findings = rit::lint::scan_file(
      SourceFile{"src/sim/scratch.cpp", "#include \"attack/sybil_plan.h\"\n"});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "layer-violation");
  EXPECT_EQ(findings[0].line, 1u);
}

TEST(LintCycles, TwoFileCycleIsDetectedOnce) {
  const SourceFile a{"src/core/a_scratch.h",
                     "#pragma once\n#include \"core/b_scratch.h\"\n"};
  const SourceFile b{"src/core/b_scratch.h",
                     "#pragma once\n#include \"core/a_scratch.h\"\n"};
  const std::vector<Finding> findings = rit::lint::scan({a, b});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "include-cycle");
  // Anchored at the lexicographically first member's offending include.
  EXPECT_EQ(findings[0].file, "src/core/a_scratch.h");
  EXPECT_NE(findings[0].message.find("b_scratch"), std::string::npos);
}

TEST(LintCycles, DiamondIsNotACycle) {
  const SourceFile top{"src/core/top_scratch.h",
                       "#pragma once\n"
                       "#include \"core/left_scratch.h\"\n"
                       "#include \"core/right_scratch.h\"\n"};
  const SourceFile left{"src/core/left_scratch.h",
                        "#pragma once\n#include \"core/base_scratch.h\"\n"};
  const SourceFile right{"src/core/right_scratch.h",
                         "#pragma once\n#include \"core/base_scratch.h\"\n"};
  const SourceFile base{"src/core/base_scratch.h", "#pragma once\n"};
  EXPECT_TRUE(rit::lint::scan({top, left, right, base}).empty());
}

TEST(LintGraph, ResolvesQuotedIncludesDeterministically) {
  using rit::lint::internal::build_include_graph;
  using rit::lint::internal::IncludeGraph;
  using rit::lint::internal::prep;
  const std::vector<SourceFile> files{
      {"src/common/low_scratch.h", "#pragma once\n"},
      {"src/core/user_scratch.cpp",
       "#include \"common/low_scratch.h\"\n"
       "#include \"gtest/gtest.h\"\n"},  // external: no edge
  };
  std::vector<rit::lint::internal::Prepped> prepped;
  for (const SourceFile& f : files) prepped.push_back(prep(f));
  const IncludeGraph graph = build_include_graph(prepped);
  ASSERT_EQ(graph.files.size(), 2u);
  EXPECT_TRUE(graph.edges[0].empty());
  ASSERT_EQ(graph.edges[1].size(), 1u);
  EXPECT_EQ(graph.edges[1][0].second, 0);  // resolved to low_scratch.h
  EXPECT_EQ(graph.edges[1][0].first, 1u);  // at line 1
}

TEST(LintUnusedInclude, UseOfAnyExportedNameSilencesTheNote) {
  const SourceFile hdr{"src/common/scratch_helper2.h",
                       "#pragma once\n"
                       "struct HelperThing { int v{0}; };\n"};
  const SourceFile user{"src/sim/scratch_user.cpp",
                        "#include \"common/scratch_helper2.h\"\n"
                        "int probe() { HelperThing t; return t.v; }\n"};
  EXPECT_TRUE(rit::lint::scan({hdr, user}).empty());
}

TEST(LintUnusedInclude, NotesAreReportOnlySeverity) {
  const SourceFile hdr{"src/common/scratch_helper3.h",
                       "#pragma once\nstruct OtherThing {};\n"};
  const SourceFile user{"src/sim/scratch_user.cpp",
                        "#include \"common/scratch_helper3.h\"\n"
                        "int probe() { return 7; }\n"};
  const std::vector<Finding> findings = rit::lint::scan({hdr, user});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "unused-include");
  EXPECT_EQ(findings[0].severity, Severity::kNote);
}

// --- Output formats ---------------------------------------------------------

std::vector<Finding> sample_findings() {
  return {
      Finding{"src/sim/a.cpp", 3, "no-std-rand", "msg with \"quotes\"",
              Severity::kError},
      Finding{"src/sim/b.cpp", 9, "unused-include", "note msg",
              Severity::kNote},
  };
}

TEST(LintOutput, TextFormatMarksNotes) {
  const std::string text = rit::lint::render_text(sample_findings());
  EXPECT_NE(text.find("src/sim/a.cpp:3: [no-std-rand]"), std::string::npos);
  EXPECT_NE(text.find("src/sim/b.cpp:9: note: [unused-include]"),
            std::string::npos);
}

TEST(LintOutput, JsonShapeAndEscaping) {
  const std::string json = rit::lint::render_json(sample_findings());
  EXPECT_NE(json.find("\"errors\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"notes\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"severity\": \"error\""), std::string::npos);
  EXPECT_NE(json.find("msg with \\\"quotes\\\""), std::string::npos);
  EXPECT_EQ(json.find("\n\""), std::string::npos);  // no raw newlines leak
}

TEST(LintOutput, SarifSchemaShape) {
  // The smoke-level SARIF 2.1.0 contract GitHub code scanning needs:
  // version, tool.driver.name, a rules array carrying every known rule
  // with descriptions, and results with ruleId/ruleIndex/level/location.
  const std::string sarif = rit::lint::render_sarif(sample_findings());
  EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("sarif-schema-2.1.0.json"), std::string::npos);
  EXPECT_NE(sarif.find("\"name\": \"rit_lint\""), std::string::npos);
  for (const rit::lint::RuleInfo& info : rit::lint::rule_infos()) {
    EXPECT_NE(sarif.find("\"id\": \"" + info.id + "\""), std::string::npos)
        << info.id;
  }
  EXPECT_NE(sarif.find("\"shortDescription\""), std::string::npos);
  EXPECT_NE(sarif.find("\"fullDescription\""), std::string::npos);
  EXPECT_NE(sarif.find("\"ruleId\": \"no-std-rand\""), std::string::npos);
  EXPECT_NE(sarif.find("\"ruleIndex\": "), std::string::npos);
  EXPECT_NE(sarif.find("\"level\": \"error\""), std::string::npos);
  EXPECT_NE(sarif.find("\"level\": \"note\""), std::string::npos);
  EXPECT_NE(sarif.find("\"uri\": \"src/sim/a.cpp\""), std::string::npos);
  EXPECT_NE(sarif.find("\"startLine\": 3"), std::string::npos);
}

TEST(LintOutput, FormatNameParsing) {
  rit::lint::OutputFormat fmt{};
  EXPECT_TRUE(rit::lint::parse_output_format("sarif", &fmt));
  EXPECT_EQ(fmt, rit::lint::OutputFormat::kSarif);
  EXPECT_FALSE(rit::lint::parse_output_format("xml", &fmt));
}

// --- Baselines --------------------------------------------------------------

TEST(LintBaseline, RoundTripsThroughSerializeAndLoad) {
  const std::string path =
      testing::TempDir() + "/rit_lint_baseline_roundtrip.txt";
  {
    std::ofstream out(path, std::ios::binary);
    out << rit::lint::serialize_baseline(sample_findings());
  }
  const auto baseline = rit::lint::load_baseline(path);
  ASSERT_TRUE(baseline.has_value());
  // Only the error entry is recorded; the note is never baselined.
  ASSERT_EQ(baseline->entries.size(), 1u);
  EXPECT_EQ(baseline->entries.count({"no-std-rand", "src/sim/a.cpp"}), 1u);
}

TEST(LintBaseline, SuppressesExactlyTheListedErrors) {
  rit::lint::Baseline baseline;
  baseline.entries.emplace("no-std-rand", "src/sim/a.cpp");
  baseline.entries.emplace("unused-include", "src/sim/b.cpp");  // ignored
  std::size_t suppressed = 0;
  const std::vector<Finding> kept =
      rit::lint::apply_baseline(baseline, sample_findings(), &suppressed);
  EXPECT_EQ(suppressed, 1u);
  ASSERT_EQ(kept.size(), 1u);
  EXPECT_EQ(kept[0].rule, "unused-include");  // notes pass through
}

TEST(LintBaseline, MalformedFileIsAnError) {
  const std::string path = testing::TempDir() + "/rit_lint_baseline_bad.txt";
  {
    std::ofstream out(path, std::ios::binary);
    out << "# comment ok\n"
           "no-std-rand src/a.cpp trailing-junk\n";
  }
  EXPECT_FALSE(rit::lint::load_baseline(path).has_value());
  EXPECT_FALSE(rit::lint::load_baseline(path + ".missing").has_value());
}

TEST(LintBaseline, CheckedInBaselineIsEmpty) {
  // The acceptance bar for the architecture rules: zero baseline entries —
  // live-tree violations were fixed, not baselined.
  const auto baseline = rit::lint::load_baseline(
      std::string(RITCS_SOURCE_DIR) + "/tools/lint/lint_baseline.txt");
  ASSERT_TRUE(baseline.has_value());
  EXPECT_TRUE(baseline->entries.empty());
}

// --- Escape budget ----------------------------------------------------------

TEST(LintEscapes, LiveTreeMatchesCheckedInBudget) {
  // Every `// rit-lint: allow(...)` in the tree must be accounted for in
  // tests/lint_escapes_expected.txt: a new suppression anywhere requires
  // an explicit, reviewable edit to that list. Directives inside string
  // literals (this suite's own test data) do not count.
  std::vector<std::string> actual;
  for (const rit::lint::EscapeRecord& rec : rit::lint::collect_escapes(
           rit::lint::collect_tree(RITCS_SOURCE_DIR))) {
    actual.push_back(rec.file + " " + rec.rule +
                     (rec.file_scope ? " file-scope" : ""));
  }
  std::vector<std::string> expected;
  std::ifstream in(std::string(RITCS_SOURCE_DIR) +
                   "/tests/lint_escapes_expected.txt");
  ASSERT_TRUE(in.good());
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    expected.push_back(line);
  }
  std::sort(actual.begin(), actual.end());
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(actual, expected)
      << "escape inventory drifted from tests/lint_escapes_expected.txt";
}

TEST(LintEscapes, StringLiteralDirectivesDoNotCount) {
  const SourceFile f{
      "src/sim/scratch.cpp",
      "const char* kData = \"// rit-lint: allow(no-std-rand)\";\n"
      "int x = 0;  // rit-lint: allow(no-long-double)\n"};
  const std::vector<rit::lint::EscapeRecord> records =
      rit::lint::collect_escapes({f});
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].rule, "no-long-double");
  EXPECT_EQ(records[0].line, 2u);
}

// --- Docs drift -------------------------------------------------------------

TEST(LintDocs, EveryRuleIsDocumented) {
  // docs/static_analysis.md is the contract contributors read; a rule the
  // engine enforces but the doc does not mention is drift.
  std::ifstream in(std::string(RITCS_SOURCE_DIR) +
                   "/docs/static_analysis.md");
  ASSERT_TRUE(in.good());
  std::ostringstream ss;
  ss << in.rdbuf();
  const std::string doc = ss.str();
  for (const rit::lint::RuleInfo& info : rit::lint::rule_infos()) {
    EXPECT_NE(doc.find(info.id), std::string::npos)
        << "rule '" << info.id
        << "' is not mentioned in docs/static_analysis.md";
  }
}

}  // namespace
