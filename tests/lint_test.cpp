// Self-tests for the rit_lint engine (ctest -L lint).
//
// Every rule is exercised twice from fixtures under tests/lint_fixtures/:
// a *_bad file that must produce findings for exactly that rule, and a
// *_allowed file — the same violation plus a `// rit-lint: allow(...)`
// directive — that must scan clean. On top of the fixtures, the engine's
// lexical machinery (comment/string stripping, word boundaries, cross-file
// pairing) is pinned down directly so a refactor cannot quietly widen or
// narrow a rule.
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "linter.h"

namespace {

using rit::lint::Finding;
using rit::lint::SourceFile;

std::string read_fixture(const std::string& name) {
  const std::string path =
      std::string(RITCS_SOURCE_DIR) + "/tests/lint_fixtures/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture: " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// Scans a fixture under a repo-plausible path (some rules are scoped to
// src/-relative locations or result-path files).
std::vector<Finding> scan_fixture(const std::string& name,
                                  const std::string& as_path) {
  return rit::lint::scan_file(SourceFile{as_path, read_fixture(name)});
}

struct FixtureCase {
  const char* rule;
  const char* bad;
  const char* allowed;
  const char* as_path;  // path the fixture pretends to live at
};

const FixtureCase kFixtures[] = {
    {"no-std-rand", "no_std_rand_bad.cpp", "no_std_rand_allowed.cpp",
     "src/sim/scratch.cpp"},
    {"no-random-device", "no_random_device_bad.cpp",
     "no_random_device_allowed.cpp", "src/sim/scratch.cpp"},
    {"no-std-distribution", "no_std_distribution_bad.cpp",
     "no_std_distribution_allowed.cpp", "src/sim/scratch.cpp"},
    {"no-std-engine", "no_std_engine_bad.cpp", "no_std_engine_allowed.cpp",
     "src/sim/scratch.cpp"},
    {"no-std-shuffle", "no_std_shuffle_bad.cpp",
     "no_std_shuffle_allowed.cpp", "src/sim/scratch.cpp"},
    {"no-wallclock-in-results", "no_wallclock_in_results_bad.cpp",
     "no_wallclock_in_results_allowed.cpp", "src/sim/scratch.cpp"},
    {"no-wallclock-in-history", "no_wallclock_in_history_bad.cpp",
     "no_wallclock_in_history_allowed.cpp", "src/obs/history_scratch.cpp"},
    {"no-locale-numeric", "no_locale_numeric_bad.cpp",
     "no_locale_numeric_allowed.cpp", "src/core/result_io_scratch.cpp"},
    {"no-fast-math", "no_fast_math_bad.cmake", "no_fast_math_allowed.cmake",
     "src/CMakeLists.txt"},
    {"no-long-double", "no_long_double_bad.cpp",
     "no_long_double_allowed.cpp", "src/sim/scratch.cpp"},
    {"no-unordered-iteration-in-results",
     "no_unordered_iteration_in_results_bad.cpp",
     "no_unordered_iteration_in_results_allowed.cpp",
     "src/sim/scratch.cpp"},
    {"merge-coverage-guard", "merge_coverage_guard_bad.cpp",
     "merge_coverage_guard_allowed.cpp", "src/sim/scratch.cpp"},
    {"no-bare-catch-all", "no_bare_catch_all_bad.cpp",
     "no_bare_catch_all_allowed.cpp", "src/sim/scratch.cpp"},
};

TEST(LintFixtures, EveryRuleHasABadFixtureThatFires) {
  for (const FixtureCase& fc : kFixtures) {
    SCOPED_TRACE(fc.bad);
    const std::vector<Finding> findings = scan_fixture(fc.bad, fc.as_path);
    ASSERT_FALSE(findings.empty())
        << "bad fixture produced no findings for rule " << fc.rule;
    for (const Finding& f : findings) {
      EXPECT_EQ(f.rule, fc.rule);
      EXPECT_GT(f.line, 0u);
    }
  }
}

TEST(LintFixtures, EveryRuleHasAnAllowlistedFixtureThatIsClean) {
  for (const FixtureCase& fc : kFixtures) {
    SCOPED_TRACE(fc.allowed);
    const std::vector<Finding> findings =
        scan_fixture(fc.allowed, fc.as_path);
    EXPECT_TRUE(findings.empty())
        << "allowlisted fixture still fires: " << findings[0].rule << " at "
        << findings[0].file << ":" << findings[0].line;
  }
}

TEST(LintFixtures, RuleListCoversEveryFixture) {
  std::set<std::string> ids;
  for (const rit::lint::RuleInfo& info : rit::lint::rule_infos()) {
    ids.insert(info.id);
  }
  EXPECT_EQ(ids.size(), std::size(kFixtures));
  for (const FixtureCase& fc : kFixtures) {
    EXPECT_EQ(ids.count(fc.rule), 1u) << fc.rule;
  }
}

// --- Lexical machinery -----------------------------------------------------

TEST(LintStrip, RemovesCommentsAndStringsButKeepsLineStructure) {
  const std::string src =
      "int a; // std::rand() in a comment\n"
      "const char* s = \"std::rand()\";\n"
      "/* block std::rand()\n"
      "   more */ int b;\n";
  const std::string stripped = rit::lint::strip_comments_and_strings(src);
  EXPECT_EQ(std::count(stripped.begin(), stripped.end(), '\n'),
            std::count(src.begin(), src.end(), '\n'));
  EXPECT_EQ(stripped.find("rand"), std::string::npos);
  EXPECT_NE(stripped.find("int a;"), std::string::npos);
  EXPECT_NE(stripped.find("int b;"), std::string::npos);
}

TEST(LintStrip, RawStringsAndCharLiterals) {
  const std::string src =
      "auto re = R\"(std::rand\\b)\";\n"
      "char c = 'r';\n"
      "int keep = 1;\n";
  const std::string stripped = rit::lint::strip_comments_and_strings(src);
  EXPECT_EQ(stripped.find("rand"), std::string::npos);
  EXPECT_NE(stripped.find("int keep = 1;"), std::string::npos);
}

TEST(LintScan, TokensInCommentsAndStringsDoNotFire) {
  const SourceFile f{"src/sim/scratch.cpp",
                     "// mentions std::rand and mt19937 in prose\n"
                     "const char* kDoc = \"never call srand()\";\n"};
  EXPECT_TRUE(rit::lint::scan_file(f).empty());
}

TEST(LintScan, WordBoundariesHold) {
  // "grand(", "operand(", "steady_clock" must not trip rand/wallclock
  // rules; std::ostream marks the file as a result path on purpose.
  const SourceFile f{"src/sim/scratch.cpp",
                     "#include <ostream>\n"
                     "void grand(std::ostream& out);\n"
                     "int operand(int x);\n"
                     "void t() { auto n = std::chrono::steady_clock::now(); "
                     "(void)n; }\n"};
  EXPECT_TRUE(rit::lint::scan_file(f).empty());
}

TEST(LintScan, RandomDeviceAllowedInsideRngDir) {
  const std::string body =
      "#include <random>\nstd::random_device entropy_probe;\n";
  EXPECT_TRUE(
      rit::lint::scan_file(SourceFile{"src/rng/entropy.cpp", body}).empty());
  EXPECT_FALSE(
      rit::lint::scan_file(SourceFile{"src/sim/entropy.cpp", body}).empty());
}

TEST(LintScan, HistoryRuleIsPathScoped) {
  // The same wall-clock read is fine outside the history ledger path (a
  // plain src/ file that is not a result path) and flagged inside it.
  const std::string body =
      "#include <ctime>\n"
      "long stamp() { return static_cast<long>(std::time(nullptr)); }\n";
  EXPECT_TRUE(
      rit::lint::scan_file(SourceFile{"src/sim/scratch.cpp", body}).empty());
  const std::vector<Finding> findings =
      rit::lint::scan_file(SourceFile{"src/obs/history_scratch.cpp", body});
  ASSERT_FALSE(findings.empty());
  EXPECT_EQ(findings[0].rule, "no-wallclock-in-history");
}

// --- Structural rules ------------------------------------------------------

TEST(LintUnordered, LookupOnlyUseIsClean) {
  // edge_list_io-style: unordered_map as a remap table, never iterated.
  const SourceFile f{
      "src/graph/scratch_io.cpp",
      "#include <ostream>\n"
      "#include <unordered_map>\n"
      "void remap_write(std::ostream& out) {\n"
      "  std::unordered_map<int, int> remap;\n"
      "  remap[1] = 2;\n"
      "  out << remap[1];\n"
      "}\n"};
  EXPECT_TRUE(rit::lint::scan_file(f).empty());
}

TEST(LintUnordered, IterationOutsideResultPathIsClean) {
  // No ostream marker, no result-ish path component: hash-order iteration
  // is only banned where it can leak into emitted results.
  const SourceFile f{
      "src/core/scratch.cpp",
      "#include <unordered_map>\n"
      "int sum_keys() {\n"
      "  std::unordered_map<int, int> m;\n"
      "  int s = 0;\n"
      "  for (const auto& [k, v] : m) s += k;\n"
      "  return s;\n"
      "}\n"};
  EXPECT_TRUE(rit::lint::scan_file(f).empty());
}

TEST(LintUnordered, CppSeesDeclarationsFromSameStemHeader) {
  // The Ledger shape: member declared in the header, hash-order float
  // accumulation in the .cpp.
  const SourceFile hdr{"src/platform/scratch.h",
                       "#include <unordered_map>\n"
                       "class Book {\n"
                       "  std::unordered_map<int, double> balances_;\n"
                       "  double total() const;\n"
                       "};\n"};
  const SourceFile cpp{
      "src/platform/scratch.cpp",
      "#include <ostream>\n"
      "void Book::statement(std::ostream& out) const { out << total(); }\n"
      "double Book::total() const {\n"
      "  double t = 0.0;\n"
      "  for (const auto& [a, b] : balances_) t += b;\n"
      "  return t;\n"
      "}\n"};
  const std::vector<Finding> findings = rit::lint::scan({hdr, cpp});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "no-unordered-iteration-in-results");
  EXPECT_EQ(findings[0].file, "src/platform/scratch.cpp");
  EXPECT_EQ(findings[0].line, 5u);
}

TEST(LintMergeGuard, GuardInSiblingFileSatisfiesHeaderDefinition) {
  const SourceFile hdr{"src/stats/scratch.h",
                       "struct Acc {\n"
                       "  double sum{0.0};\n"
                       "  void merge(const Acc& other);\n"
                       "};\n"};
  const SourceFile cpp{"src/stats/scratch.cpp",
                       "static_assert(sizeof(Acc) == sizeof(double),\n"
                       "              \"update merge()\");\n"
                       "void Acc::merge(const Acc& other) { sum += "
                       "other.sum; }\n"};
  EXPECT_TRUE(rit::lint::scan({hdr, cpp}).empty());
  // Without the guard file, both the declaration and the out-of-line
  // definition are reported.
  EXPECT_FALSE(rit::lint::scan({hdr}).empty());
}

TEST(LintMergeGuard, CrossTypeFoldsCarryNoObligation) {
  // Stat::merge_in(const OnlineStats&) and friends: not a self-merge.
  const SourceFile f{"src/obs/scratch.h",
                     "struct Stat {\n"
                     "  void merge_in(const OnlineStats& other);\n"
                     "};\n"};
  EXPECT_TRUE(rit::lint::scan_file(f).empty());
}

// --- Directives ------------------------------------------------------------

TEST(LintAllow, DirectiveCoversItsLineAndTheNext) {
  const std::string line_after =
      "// rit-lint: allow(no-std-rand)\n"
      "int x = std::rand();\n";
  EXPECT_TRUE(
      rit::lint::scan_file(SourceFile{"src/a.cpp", line_after}).empty());
  const std::string two_below =
      "// rit-lint: allow(no-std-rand)\n"
      "int y = 0;\n"
      "int x = std::rand();\n";
  EXPECT_FALSE(
      rit::lint::scan_file(SourceFile{"src/a.cpp", two_below}).empty());
}

TEST(LintAllow, CommaSeparatedRulesAndWildcard) {
  const std::string multi =
      "int x = std::rand();  // rit-lint: allow(no-std-rand, no-std-engine)\n"
      "std::mt19937 eng;  // rit-lint: allow(*)\n";
  EXPECT_TRUE(rit::lint::scan_file(SourceFile{"src/a.cpp", multi}).empty());
}

// --- Tree walk -------------------------------------------------------------

TEST(LintTree, CollectsRepoSourcesDeterministically) {
  const std::vector<SourceFile> files =
      rit::lint::collect_tree(RITCS_SOURCE_DIR);
  ASSERT_GT(files.size(), 100u);
  for (std::size_t i = 1; i < files.size(); ++i) {
    EXPECT_LT(files[i - 1].path, files[i].path);
  }
  for (const SourceFile& f : files) {
    EXPECT_EQ(f.path.find("lint_fixtures"), std::string::npos) << f.path;
    EXPECT_EQ(f.path.find("tests/golden"), std::string::npos) << f.path;
  }
}

TEST(LintTree, LiveTreeIsClean) {
  const std::vector<Finding> findings =
      rit::lint::scan(rit::lint::collect_tree(RITCS_SOURCE_DIR));
  for (const Finding& f : findings) {
    ADD_FAILURE() << f.file << ":" << f.line << ": [" << f.rule << "] "
                  << f.message;
  }
}

TEST(LintTree, SeededViolationIsCaught) {
  // The acceptance smoke: drop a scratch file with std::rand into the scan
  // set and the tree goes red.
  std::vector<SourceFile> files = rit::lint::collect_tree(RITCS_SOURCE_DIR);
  files.push_back(SourceFile{"src/sim/scratch_seeded.cpp",
                             "#include <cstdlib>\n"
                             "int noise() { return std::rand(); }\n"});
  const std::vector<Finding> findings = rit::lint::scan(files);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "no-std-rand");
  EXPECT_EQ(findings[0].file, "src/sim/scratch_seeded.cpp");
}

}  // namespace
