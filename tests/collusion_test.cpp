// Collusion resistance (the d-truthfulness of Sec. 3-C).
//
// CRA's consensus rounding is what makes coalitions of up to K_max asks
// unable to move the clearing count except with small probability
// (Lemma 6.2). These tests probe the full auction phase with *explicit
// coalitions* — several users jointly deviating — and assert the
// coalition's expected total utility does not beat joint truthfulness,
// using paired seeds. This covers the attack Sec. 4-A builds from (sybil
// identities forming a price-manipulating coalition) in its most general
// form.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/rit.h"
#include "rng/rng.h"
#include "stats/online_stats.h"

namespace rit::core {
namespace {

struct CoalitionInstance {
  Job job{std::vector<std::uint32_t>{120}};
  std::vector<Ask> asks;
  std::vector<std::uint32_t> coalition;  // user indices

  explicit CoalitionInstance(std::uint64_t seed, std::uint32_t coalition_size) {
    rng::Rng rng(seed);
    const std::uint32_t n = 250;
    for (std::uint32_t j = 0; j < n; ++j) {
      asks.push_back(Ask{TaskType{0},
                         static_cast<std::uint32_t>(rng.uniform_int(1, 2)),
                         rng.uniform_real_left_open(0.0, 10.0)});
    }
    // The coalition: users clustered around the competitive band.
    std::vector<std::uint32_t> order(n);
    for (std::uint32_t j = 0; j < n; ++j) order[j] = j;
    std::sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
      return asks[a].value < asks[b].value;
    });
    // Straddle the expected clearing region (demand 120 of ~375 units).
    for (std::uint32_t i = 0; i < coalition_size; ++i) {
      coalition.push_back(order[100 + i * 3]);
    }
  }

  double coalition_utility(const RitResult& r) const {
    double u = 0.0;
    for (std::uint32_t j : coalition) {
      u += r.utility_of(j, asks[j].value);  // asks hold the true costs
    }
    return u;
  }
};

// Expected total coalition gain of a joint deviation, paired seeds.
double mean_gain(const CoalitionInstance& inst,
                 const std::vector<Ask>& deviated, int trials,
                 double* slack_out) {
  stats::OnlineStats diff;
  for (int t = 0; t < trials; ++t) {
    const std::uint64_t seed = 0xc0a1 + static_cast<std::uint64_t>(t) * 13;
    double truthful_u;
    double deviated_u;
    {
      rng::Rng rng(seed);
      const RitResult r =
          run_auction_phase(inst.job, inst.asks, RitConfig{}, rng);
      truthful_u = inst.coalition_utility(r);
    }
    {
      rng::Rng rng(seed);
      const RitResult r =
          run_auction_phase(inst.job, deviated, RitConfig{}, rng);
      // Utilities still measured against true costs from inst.asks.
      double u = 0.0;
      for (std::uint32_t j : inst.coalition) {
        u += r.utility_of(j, inst.asks[j].value);
      }
      deviated_u = u;
    }
    diff.add(deviated_u - truthful_u);
  }
  if (slack_out != nullptr) *slack_out = diff.ci95_half_width();
  return diff.mean();
}

class CoalitionSize : public ::testing::TestWithParam<std::uint32_t> {};

INSTANTIATE_TEST_SUITE_P(Sizes, CoalitionSize,
                         ::testing::Values(2u, 3u, 5u, 8u));

TEST_P(CoalitionSize, JointOverbiddingDoesNotPay) {
  // Everyone in the coalition inflates its ask 40%: the classic attempt to
  // lift the clearing price for the members that still win.
  const CoalitionInstance inst(31, GetParam());
  std::vector<Ask> deviated = inst.asks;
  for (std::uint32_t j : inst.coalition) deviated[j].value *= 1.4;
  double slack = 0.0;
  const double gain = mean_gain(inst, deviated, 350, &slack);
  EXPECT_LE(gain, slack + 0.1) << "coalition size " << GetParam();
}

TEST_P(CoalitionSize, SplitRolesDoNotPay) {
  // Half the coalition underbids (to keep winning), the other half overbids
  // (to push the price) — the exact shape of the Fig. 2 manipulation.
  const CoalitionInstance inst(37, GetParam());
  std::vector<Ask> deviated = inst.asks;
  for (std::size_t i = 0; i < inst.coalition.size(); ++i) {
    const std::uint32_t j = inst.coalition[i];
    deviated[j].value *= (i % 2 == 0) ? 0.3 : 2.5;
  }
  double slack = 0.0;
  const double gain = mean_gain(inst, deviated, 350, &slack);
  EXPECT_LE(gain, slack + 0.1) << "coalition size " << GetParam();
}

TEST_P(CoalitionSize, JointShadingBelowCostDoesNotPay) {
  const CoalitionInstance inst(41, GetParam());
  std::vector<Ask> deviated = inst.asks;
  for (std::uint32_t j : inst.coalition) deviated[j].value *= 0.5;
  double slack = 0.0;
  const double gain = mean_gain(inst, deviated, 350, &slack);
  EXPECT_LE(gain, slack + 0.1) << "coalition size " << GetParam();
}

TEST(Collusion, DeterministicKthPriceContrast) {
  // Sanity of the test harness itself: the same split-role manipulation
  // DOES pay against a deterministic (m+1)-st price rule, which is exactly
  // why CRA randomizes. We emulate the deterministic rule by checking that
  // the coalition can always name a price: with asks a < b and demand 1,
  // the (m+1)-st price auction pays the loser's ask, so a partner raising
  // its losing ask raises the winner's payment one-for-one.
  const Job job(std::vector<std::uint32_t>{1});
  // (Demonstrated numerically in baselines_test / sec4 tests; here we pin
  // the structural fact that CRA's clearing price is never a function any
  // single losing ask controls: price comes from a random sample min or a
  // consensus-rounded order statistic.)
  std::vector<Ask> asks{{TaskType{0}, 1, 2.0}, {TaskType{0}, 1, 6.0}};
  rng::Rng rng(1);
  RitConfig cfg;
  cfg.zero_on_failure = false;
  const RitResult r = run_auction_phase(job, asks, cfg, rng);
  if (r.allocation[0] == 1) {
    // Winner's payment is bounded by the book, not set by the partner.
    EXPECT_LE(r.auction_payment[0], 6.0);
  }
}

}  // namespace
}  // namespace rit::core
