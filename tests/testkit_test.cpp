// The correctness tooling's own tests: case serialization round-trips,
// the differential oracle agreeing with production on a storm of random
// scenarios, the paper-invariant checker, the mutation grammar's
// well-formedness guarantee, the shrinker's determinism, and the
// committed golden repro file.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/check.h"
#include "core/payment.h"
#include "core/rit.h"
#include "rng/rng.h"
#include "testkit/fuzz_case.h"
#include "testkit/harness.h"
#include "testkit/invariants.h"
#include "testkit/mutate.h"
#include "testkit/oracle.h"
#include "testkit/shrink.h"
#include "tree/incentive_tree.h"

namespace rit::testkit {
namespace {

bool cases_equal(const FuzzCase& a, const FuzzCase& b) {
  return serialize_case(a) == serialize_case(b);
}

// --- Serialization ----------------------------------------------------------

TEST(FuzzCaseIo, RoundTripsBitIdentically) {
  rng::Rng rng(11);
  for (int i = 0; i < 50; ++i) {
    FuzzCase c = random_case(rng);
    if (i % 3 == 0) c.signature = "oracle-mismatch:payment";
    const std::string text = serialize_case(c);
    const auto back = parse_case(text);
    ASSERT_TRUE(back.has_value()) << text;
    EXPECT_EQ(serialize_case(*back), text);
    EXPECT_EQ(back->signature, c.signature);
    EXPECT_EQ(back->mech_seed, c.mech_seed);
    EXPECT_EQ(back->asks.size(), c.asks.size());
    EXPECT_EQ(back->parents, c.parents);
    EXPECT_EQ(back->costs, c.costs);
  }
}

TEST(FuzzCaseIo, HashIgnoresSignatureMetadata) {
  rng::Rng rng(13);
  FuzzCase c = random_case(rng);
  const std::uint64_t bare = case_hash(c);
  c.signature = "invariant:payment-floor";
  EXPECT_EQ(case_hash(c), bare);
}

TEST(FuzzCaseIo, RejectsCorruptInput) {
  rng::Rng rng(17);
  const FuzzCase c = random_case(rng);
  const std::string text = serialize_case(c);

  EXPECT_FALSE(parse_case("").has_value());
  EXPECT_FALSE(parse_case("not a case\n").has_value());

  // Flip one payload byte: the checksum must catch it.
  std::string mangled = text;
  const std::size_t pos = text.find("\nh ");
  ASSERT_NE(pos, std::string::npos);
  mangled[pos + 3] = mangled[pos + 3] == '0' ? '1' : '0';
  EXPECT_FALSE(parse_case(mangled).has_value());

  // Unknown keys are rejected, not skipped.
  EXPECT_FALSE(parse_case(text + "mystery 1\n").has_value());
}

TEST(FuzzCaseIo, FileRoundTripIsByteExact) {
  rng::Rng rng(19);
  FuzzCase c = random_case(rng);
  c.signature = "oracle-mismatch:allocation";
  const std::string path = testing::TempDir() + "/testkit_case_rt.ritcase";
  write_case_file(path, c);
  const auto back = load_case_file(path);
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(cases_equal(*back, c));
  EXPECT_FALSE(load_case_file(path + ".missing").has_value());
}

// --- Differential oracle ----------------------------------------------------

TEST(Oracle, AgreesWithProductionOnRandomCaseStorm) {
  // The heart of the harness: the naive pseudocode-faithful mechanism and
  // the optimized production path must agree field by field — including
  // the RNG draw sequence — on a storm of generated scenarios.
  rng::Rng rng(101);
  for (int i = 0; i < 120; ++i) {
    const FuzzCase c = random_case(rng);
    const CaseOutcome outcome = check_case(c);
    ASSERT_TRUE(outcome.ok) << "case " << i << " failed: "
                            << outcome.signature << " | " << outcome.details
                            << "\n" << serialize_case(c);
  }
}

TEST(Oracle, AgreesWithProductionAlongMutationChains) {
  // Mutants reach corners fresh generation rarely hits (manufactured
  // ties, grafted same-type chains, config flips).
  rng::Rng rng(103);
  FuzzCase c = random_case(rng);
  for (int i = 0; i < 150; ++i) {
    c = mutate(c, rng);
    const CaseOutcome outcome = check_case(c);
    ASSERT_TRUE(outcome.ok) << "mutant " << i << " failed: "
                            << outcome.signature << " | " << outcome.details
                            << "\n" << serialize_case(c);
  }
}

TEST(Oracle, DiffReportsFirstMismatchedField) {
  rng::Rng rng(107);
  const FuzzCase c = random_case(rng);
  core::RitResult prod = oracle_run_rit(c);
  core::RitResult mangled = prod;
  OracleDiff same = diff_results(prod, mangled);
  EXPECT_TRUE(same.match);

  if (!mangled.payment.empty()) {
    mangled.payment[0] += 0.5;
    const OracleDiff diff = diff_results(prod, mangled);
    EXPECT_FALSE(diff.match);
    EXPECT_EQ(diff.field, "payment");
  }
  core::RitResult flipped = prod;
  flipped.success = !flipped.success;
  EXPECT_EQ(diff_results(prod, flipped).field, "success");
}

TEST(Harness, ConsistentRejectionOfMalformedCasesPasses) {
  // Both implementations must throw on a malformed case; agreeing to
  // reject is a pass, diverging would be a finding.
  rng::Rng rng(109);
  FuzzCase c = random_case(rng);
  c.asks[0].type = TaskType{static_cast<std::uint32_t>(c.demand.size() + 7)};
  const CaseOutcome outcome = check_case(c);
  EXPECT_TRUE(outcome.ok) << outcome.signature;

  FuzzCase zero_quantity = random_case(rng);
  zero_quantity.asks[0].quantity = 0;
  EXPECT_TRUE(check_case(zero_quantity).ok);
}

// --- Invariants -------------------------------------------------------------

TEST(Invariants, CleanRunPassesAndPerturbationsAreCaught) {
  rng::Rng rng(211);
  FuzzCase c;
  core::RitResult result;
  // Find a successful run so payment perturbations are visible.
  for (int i = 0; i < 200; ++i) {
    c = random_case(rng);
    result = oracle_run_rit(c);
    if (result.success && result.total_payment() > 0.0) break;
  }
  ASSERT_TRUE(result.success);
  EXPECT_TRUE(check_invariants(c, result).ok());

  core::RitResult below_floor = result;
  std::size_t paid = 0;
  for (std::size_t j = 0; j < below_floor.payment.size(); ++j) {
    if (below_floor.auction_payment[j] > 0.0) paid = j;
  }
  below_floor.payment[paid] = below_floor.auction_payment[paid] * 0.5;
  const InvariantReport floor_report = check_invariants(c, below_floor);
  EXPECT_FALSE(floor_report.ok());

  core::RitResult non_finite = result;
  non_finite.payment[0] = std::nan("");
  const InvariantReport nan_report = check_invariants(c, non_finite);
  ASSERT_FALSE(nan_report.ok());
  EXPECT_EQ(nan_report.violations.front().name, "finiteness");

  core::RitResult over_allocated = result;
  over_allocated.allocation[0] = c.asks[0].quantity + 1;
  EXPECT_FALSE(check_invariants(c, over_allocated).ok());
}

// --- Mutation grammar -------------------------------------------------------

TEST(Mutate, EveryMutationPreservesWellFormedness) {
  rng::Rng rng(307);
  for (int round = 0; round < 40; ++round) {
    const FuzzCase base = random_case(rng);
    for (std::uint32_t m = 0; m < kNumMutations; ++m) {
      const FuzzCase c = apply_mutation(base, static_cast<Mutation>(m), rng);
      ASSERT_EQ(c.costs.size(), c.asks.size());
      ASSERT_EQ(c.parents.size(), c.asks.size());
      ASSERT_FALSE(c.asks.empty());
      EXPECT_TRUE(c.signature.empty());
      for (std::size_t j = 0; j < c.asks.size(); ++j) {
        // parents[j] < j+1: references an earlier node only (no cycles).
        EXPECT_LE(c.parents[j], j);
        EXPECT_GE(c.asks[j].quantity, 1u);
        EXPECT_LE(c.asks[j].quantity, core::kMaxAskQuantity);
        EXPECT_GT(c.asks[j].value, 0.0);
        EXPECT_LT(c.asks[j].type.value, c.demand.size());
      }
      // The parent vector must build a valid tree.
      std::vector<std::uint32_t> parents(c.parents.size() + 1, 0);
      for (std::size_t j = 0; j < c.parents.size(); ++j) {
        parents[j + 1] = c.parents[j];
      }
      EXPECT_NO_THROW(tree::IncentiveTree{parents});
    }
  }
}

TEST(Mutate, GeneratorIsDeterministicPerSeed) {
  rng::Rng a(401);
  rng::Rng b(401);
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(cases_equal(random_case(a), random_case(b)));
  }
}

// --- Shrinker ---------------------------------------------------------------

// Synthetic failure: "fails" iff some type-0 ask with quantity >= 5 sits
// at depth >= 2. Lets the shrinker be tested without a planted bug.
std::string synthetic_check(const FuzzCase& c) {
  for (std::size_t j = 0; j < c.asks.size(); ++j) {
    if (c.asks[j].type.value != 0 || c.asks[j].quantity < 5) continue;
    if (c.parents[j] != 0) return "synthetic";
  }
  return "";
}

FuzzCase synthetic_failing_case(rng::Rng& rng) {
  for (int i = 0; i < 500; ++i) {
    const FuzzCase c = random_case(rng);
    if (synthetic_check(c) == "synthetic") return c;
  }
  RIT_CHECK_MSG(false, "no synthetic failing case found");
}

TEST(Shrink, MinimizesWhilePreservingTheFailureClass) {
  rng::Rng rng(503);
  const FuzzCase failing = synthetic_failing_case(rng);
  const ShrinkResult r = shrink(failing, "synthetic", synthetic_check, 3000);
  EXPECT_EQ(synthetic_check(r.best), "synthetic");
  EXPECT_LE(r.best.asks.size(), failing.asks.size());
  EXPECT_LE(r.checks_used, 3000u);
  // The synthetic predicate needs exactly one deep heavy ask plus the
  // ancestor that keeps it at depth >= 2.
  EXPECT_LE(r.best.asks.size(), 3u);
  EXPECT_EQ(r.best.signature, "synthetic");
}

TEST(Shrink, IsDeterministic) {
  // Same input, signature and check -> byte-identical minimized case;
  // this is what lets a golden repro pin the shrinker's output.
  rng::Rng rng(509);
  const FuzzCase failing = synthetic_failing_case(rng);
  const ShrinkResult a = shrink(failing, "synthetic", synthetic_check, 3000);
  const ShrinkResult b = shrink(failing, "synthetic", synthetic_check, 3000);
  EXPECT_EQ(serialize_case(a.best), serialize_case(b.best));
  EXPECT_EQ(a.checks_used, b.checks_used);
}

TEST(Shrink, RespectsTheCheckBudget) {
  rng::Rng rng(521);
  const FuzzCase failing = synthetic_failing_case(rng);
  const ShrinkResult r = shrink(failing, "synthetic", synthetic_check, 10);
  EXPECT_LE(r.checks_used, 10u);
  EXPECT_EQ(synthetic_check(r.best), "synthetic");  // never loses the bug
}

TEST(Shrink, RemoveParticipantsReparentsToNearestSurvivingAncestor) {
  // Chain 0 <- 1 <- 2 <- 3 (nodes); drop the middle participant (node 2):
  // node 3's participant must re-parent to node 1, remapped to the new id.
  FuzzCase c;
  c.demand = {3};
  for (std::uint32_t j = 0; j < 3; ++j) {
    c.asks.push_back(core::Ask{TaskType{0}, 1, 1.0});
    c.costs.push_back(0.5);
    c.parents.push_back(j);  // chain
  }
  const FuzzCase out = remove_participants(c, {1, 0, 1});
  ASSERT_EQ(out.asks.size(), 2u);
  EXPECT_EQ(out.parents[0], 0u);  // first participant still under the root
  EXPECT_EQ(out.parents[1], 1u);  // hoisted past the removed node
}

// --- Geometric discount share algebra --------------------------------------

TEST(ShareAlgebra, DepthOneParticipantsEarnNoTreeShare) {
  // Flat tree: every participant at depth 1, no strict non-root
  // ancestors, so final payments equal auction payments exactly.
  const std::uint32_t n = 12;
  std::vector<std::uint32_t> parents(n + 1, 0);
  const tree::IncentiveTree tree{parents};
  std::vector<TaskType> types;
  std::vector<double> auction(n, 0.0);
  for (std::uint32_t j = 0; j < n; ++j) {
    types.push_back(TaskType{j % 3});
    auction[j] = 1.0 + j;
  }
  const std::vector<double> pay =
      core::tree_payments(tree, types, auction, 0.5);
  ASSERT_EQ(pay.size(), auction.size());
  for (std::uint32_t j = 0; j < n; ++j) EXPECT_EQ(pay[j], auction[j]);
}

TEST(ShareAlgebra, DepthTwoChainSharesExactGeometricTerm) {
  // Parent (depth 1) with one different-type child (depth 2): the parent
  // earns exactly base^2 * p^A_child; same-type children contribute zero
  // (sybil exclusion, Lemma 6.4).
  const std::vector<std::uint32_t> parents = {0, 0, 1};
  const tree::IncentiveTree tree{parents};
  const double base = 0.5;
  {
    const std::vector<TaskType> types = {TaskType{0}, TaskType{1}};
    const std::vector<double> auction = {2.0, 3.0};
    const auto pay = core::tree_payments(tree, types, auction, base);
    EXPECT_EQ(pay[0], 2.0 + base * base * 3.0);
    EXPECT_EQ(pay[1], 3.0);
  }
  {
    const std::vector<TaskType> types = {TaskType{0}, TaskType{0}};
    const std::vector<double> auction = {2.0, 3.0};
    const auto pay = core::tree_payments(tree, types, auction, base);
    EXPECT_EQ(pay[0], 2.0);  // same type: excluded
    EXPECT_EQ(pay[1], 3.0);
  }
}

TEST(ShareAlgebra, ChainPremiumApproachesClosedFormBound) {
  // All-distinct-type chain with unit auction payments: the contributor
  // at depth d feeds (d-1) ancestors base^d each, so the premium is
  // sum_{d=2}^{L} (d-1) base^d, which increases to the closed form
  // base^2 / (1-base)^2 as L -> infinity and never exceeds it.
  const double base = 0.5;
  const double closed_form = (base * base) / ((1.0 - base) * (1.0 - base));
  double previous = 0.0;
  for (std::uint32_t len : {2u, 5u, 20u, 60u}) {
    std::vector<std::uint32_t> parents(len + 1, 0);
    std::vector<TaskType> types;
    std::vector<double> auction(len, 1.0);
    for (std::uint32_t j = 0; j < len; ++j) {
      parents[j + 1] = j;  // chain
      types.push_back(TaskType{j});
    }
    const auto pay =
        core::tree_payments(tree::IncentiveTree{parents}, types, auction,
                            base);
    const double premium = core::solicitation_premium(pay, auction);
    EXPECT_GT(premium, previous);
    EXPECT_LT(premium, closed_form + 1e-12);
    previous = premium;
  }
  // At depth 60 the geometric tail is ~2^-54: the bound is achieved to
  // double precision.
  EXPECT_NEAR(previous, closed_form, 1e-9);
}

// --- Golden repro -----------------------------------------------------------

TEST(GoldenRepro, CommittedFileLoadsAndPassesOnCleanBuild) {
  // The committed repro reproduces a planted bug (ritcs-fuzz-bug2 — the
  // ctest fuzz legs replay it against that binary); against the unbugged
  // mechanism it must load bit-exactly and pass every check.
  const std::string path = std::string(RITCS_SOURCE_DIR) +
                           "/tests/golden/fuzz_repro_bug2.ritcase";
  const auto c = load_case_file(path);
  ASSERT_TRUE(c.has_value()) << path;
  EXPECT_EQ(c->signature, "oracle-mismatch:payment");

  // Byte round-trip: re-serializing the parsed case reproduces the file.
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  EXPECT_EQ(serialize_case(*c), ss.str());

  const CaseOutcome outcome = check_case(*c);
  EXPECT_TRUE(outcome.ok) << outcome.signature << " | " << outcome.details;
}

}  // namespace
}  // namespace rit::testkit
