// Configuration-matrix invariants: the paper's pathwise guarantees must
// hold under EVERY supported configuration, not just the defaults. This
// suite sweeps (empty-sample policy x discount base x round-budget policy x
// graph family) and asserts, per cell: individual rationality, the budget
// bound, payment monotonicity, exact job coverage on success, and a clean
// audit report.
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "core/audit.h"
#include "core/payment.h"
#include "core/rit.h"
#include "sim/runner.h"

namespace rit {
namespace {

using MatrixParam =
    std::tuple<core::EmptySamplePolicy, double, core::RoundBudgetPolicy,
               sim::GraphKind>;

class ConfigMatrix : public ::testing::TestWithParam<MatrixParam> {};

INSTANTIATE_TEST_SUITE_P(
    Cells, ConfigMatrix,
    ::testing::Combine(
        ::testing::Values(core::EmptySamplePolicy::kAllAsks,
                          core::EmptySamplePolicy::kNoWinners),
        ::testing::Values(0.25, 0.5),
        ::testing::Values(core::RoundBudgetPolicy::kTheoretical,
                          core::RoundBudgetPolicy::kRunToCompletion),
        ::testing::Values(sim::GraphKind::kBarabasiAlbert,
                          sim::GraphKind::kErdosRenyi,
                          sim::GraphKind::kStar)));

sim::Scenario matrix_scenario(const MatrixParam& p) {
  sim::Scenario s;
  s.num_users = 500;
  s.num_types = 3;
  s.tasks_per_type = 25;
  s.k_max = 5;
  s.initial_joiners = 4;
  s.seed = 97;
  s.mechanism.empty_sample = std::get<0>(p);
  s.mechanism.discount_base = std::get<1>(p);
  s.mechanism.round_budget_policy = std::get<2>(p);
  s.graph = std::get<3>(p);
  return s;
}

TEST_P(ConfigMatrix, PathwiseInvariantsHold) {
  const sim::Scenario s = matrix_scenario(GetParam());
  for (std::uint64_t trial = 0; trial < 3; ++trial) {
    const sim::TrialInstance inst = sim::make_instance(s, trial);
    rng::Rng rng(inst.mechanism_seed);
    const core::RitResult r =
        core::run_rit(inst.job, inst.population.truthful_asks, inst.tree,
                      s.mechanism, rng);

    std::uint64_t total_allocated = 0;
    for (std::uint32_t j = 0; j < inst.population.size(); ++j) {
      // Individual rationality under truthful asks.
      EXPECT_GE(r.utility_of(j, inst.population.costs[j]), -1e-9);
      // Payment monotonicity.
      EXPECT_GE(r.payment[j], r.auction_payment[j] - 1e-12);
      total_allocated += r.allocation[j];
    }
    if (r.success) {
      EXPECT_EQ(total_allocated, inst.job.total_tasks());
      EXPECT_LE(core::solicitation_premium(r.payment, r.auction_payment),
                r.total_auction_payment() + 1e-9);
    } else {
      EXPECT_EQ(total_allocated, 0u);
      EXPECT_EQ(r.total_payment(), 0.0);
    }
    const core::AuditReport audit =
        core::audit_payments(inst.tree, inst.population.truthful_asks, r,
                             s.mechanism.discount_base);
    EXPECT_TRUE(audit.ok) << (audit.violations.empty()
                                  ? ""
                                  : audit.violations.front());
  }
}

TEST_P(ConfigMatrix, ReplayIsBitIdentical) {
  const sim::Scenario s = matrix_scenario(GetParam());
  const sim::TrialInstance inst = sim::make_instance(s, 0);
  rng::Rng a(inst.mechanism_seed);
  rng::Rng b(inst.mechanism_seed);
  const core::RitResult ra = core::run_rit(
      inst.job, inst.population.truthful_asks, inst.tree, s.mechanism, a);
  const core::RitResult rb = core::run_rit(
      inst.job, inst.population.truthful_asks, inst.tree, s.mechanism, b);
  EXPECT_EQ(ra.allocation, rb.allocation);
  EXPECT_EQ(ra.payment, rb.payment);
  EXPECT_EQ(ra.achieved_probability, rb.achieved_probability);
}

}  // namespace
}  // namespace rit
