#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <vector>

#include "common/check.h"
#include "sim/config_io.h"

namespace rit::sim {
namespace {

TEST(ConfigIo, ParsesAllKeys) {
  std::istringstream in(
      "# comment line\n"
      "users = 1234\n"
      "types = 7\n"
      "tasks_per_type = 99\n"
      "demand_lo = 10\n"
      "demand_hi = 20\n"
      "k_max = 13\n"
      "cost_max = 5.5\n"
      "h = 0.9   # trailing comment\n"
      "discount_base = 0.4\n"
      "policy = theoretical\n"
      "graph = ws\n"
      "ba_edges = 4\n"
      "er_degree = 8.5\n"
      "ws_k = 10\n"
      "ws_beta = 0.25\n"
      "cm_exponent = 2.3\n"
      "cm_max_degree = 77\n"
      "initial_joiners = 3\n"
      "seed = 777\n");
  const Scenario s = read_scenario(in);
  EXPECT_EQ(s.num_users, 1234u);
  EXPECT_EQ(s.num_types, 7u);
  EXPECT_EQ(s.tasks_per_type, 99u);
  EXPECT_EQ(s.demand_lo, 10u);
  EXPECT_EQ(s.demand_hi, 20u);
  EXPECT_EQ(s.k_max, 13u);
  EXPECT_DOUBLE_EQ(s.cost_max, 5.5);
  EXPECT_DOUBLE_EQ(s.mechanism.h, 0.9);
  EXPECT_DOUBLE_EQ(s.mechanism.discount_base, 0.4);
  EXPECT_EQ(s.mechanism.round_budget_policy,
            core::RoundBudgetPolicy::kTheoretical);
  EXPECT_EQ(s.graph, GraphKind::kWattsStrogatz);
  EXPECT_EQ(s.ba_edges_per_node, 4u);
  EXPECT_DOUBLE_EQ(s.er_degree, 8.5);
  EXPECT_EQ(s.ws_k, 10u);
  EXPECT_DOUBLE_EQ(s.ws_beta, 0.25);
  EXPECT_DOUBLE_EQ(s.cm_exponent, 2.3);
  EXPECT_EQ(s.cm_max_degree, 77u);
  EXPECT_EQ(s.initial_joiners, 3u);
  EXPECT_EQ(s.seed, 777u);
}

TEST(ConfigIo, DefaultsSurviveEmptyConfig) {
  std::istringstream in("\n# nothing here\n\n");
  const Scenario s = read_scenario(in);
  const Scenario defaults;
  EXPECT_EQ(s.num_users, defaults.num_users);
  EXPECT_EQ(s.mechanism.round_budget_policy,
            defaults.mechanism.round_budget_policy);
}

TEST(ConfigIo, RoundTrips) {
  Scenario s;
  s.num_users = 4321;
  s.graph = GraphKind::kErdosRenyi;
  s.mechanism.h = 0.77;
  s.mechanism.round_budget_policy = core::RoundBudgetPolicy::kTheoretical;
  s.seed = 99;
  std::ostringstream out;
  write_scenario(s, out);
  std::istringstream in(out.str());
  const Scenario back = read_scenario(in);
  EXPECT_EQ(back.num_users, s.num_users);
  EXPECT_EQ(back.graph, s.graph);
  EXPECT_DOUBLE_EQ(back.mechanism.h, s.mechanism.h);
  EXPECT_EQ(back.mechanism.round_budget_policy,
            s.mechanism.round_budget_policy);
  EXPECT_EQ(back.seed, s.seed);
}

TEST(ConfigIo, RejectsUnknownKey) {
  std::istringstream in("userz = 10\n");
  EXPECT_THROW(read_scenario(in), CheckFailure);
}

TEST(ConfigIo, RejectsMalformedLine) {
  std::istringstream in("users 10\n");
  EXPECT_THROW(read_scenario(in), CheckFailure);
}

TEST(ConfigIo, RejectsBadValues) {
  std::istringstream a("users = ten\n");
  EXPECT_THROW(read_scenario(a), CheckFailure);
  std::istringstream b("h = high\n");
  EXPECT_THROW(read_scenario(b), CheckFailure);
  std::istringstream c("policy = maybe\n");
  EXPECT_THROW(read_scenario(c), CheckFailure);
  std::istringstream d("graph = tree\n");
  EXPECT_THROW(read_scenario(d), CheckFailure);
}

TEST(ConfigIo, ShippedConfigsAllParse) {
  // The configs/ directory is part of the public interface; every file in
  // it must parse against the current schema.
  const std::vector<std::string> shipped{
      "paper_fig6_8_users.conf", "paper_fig9.conf", "smoke.conf",
      "theoretical_budget.conf", "twitter_like.conf"};
  for (const auto& name : shipped) {
    const std::string path =
        std::string(RITCS_SOURCE_DIR) + "/configs/" + name;
    EXPECT_NO_THROW({
      const Scenario s = read_scenario_file(path);
      EXPECT_GE(s.num_users, 100u);
    }) << path;
  }
}

TEST(ConfigIo, MissingFileThrows) {
  EXPECT_THROW(read_scenario_file("/no/such/scenario.conf"), CheckFailure);
}

}  // namespace
}  // namespace rit::sim
