#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "cli/args.h"
#include "cli/csv.h"
#include "cli/table.h"
#include "common/check.h"

namespace rit::cli {
namespace {

Args make_args(std::vector<const char*> argv) {
  argv.insert(argv.begin(), "prog");
  return Args(static_cast<int>(argv.size()), argv.data());
}

TEST(Args, TypedGettersWithDefaults) {
  Args args = make_args({"--trials=7", "--h=0.9", "--graph=er", "--full"});
  EXPECT_EQ(args.get_u64("trials", 1), 7u);
  EXPECT_DOUBLE_EQ(args.get_double("h", 0.5), 0.9);
  EXPECT_EQ(args.get_string("graph", "ba"), "er");
  EXPECT_TRUE(args.get_bool("full", false));
  EXPECT_EQ(args.get_u64("missing", 42), 42u);
  EXPECT_NO_THROW(args.finish());
}

TEST(Args, BooleanSpellings) {
  Args args = make_args({"--a=true", "--b=0", "--c=yes", "--d=false"});
  EXPECT_TRUE(args.get_bool("a", false));
  EXPECT_FALSE(args.get_bool("b", true));
  EXPECT_TRUE(args.get_bool("c", false));
  EXPECT_FALSE(args.get_bool("d", true));
}

TEST(Args, MalformedValuesThrow) {
  Args a = make_args({"--n=abc"});
  EXPECT_THROW(a.get_u64("n", 0), CheckFailure);
  Args b = make_args({"--x=1.2.3"});
  EXPECT_THROW(b.get_double("x", 0.0), CheckFailure);
  Args c = make_args({"--flag=maybe"});
  EXPECT_THROW(c.get_bool("flag", false), CheckFailure);
}

TEST(Args, NonFlagArgumentRejected) {
  std::vector<const char*> argv{"prog", "positional"};
  EXPECT_THROW(Args(2, argv.data()), CheckFailure);
}

TEST(Args, FinishFlagsTypos) {
  Args args = make_args({"--trails=7"});  // typo for --trials
  args.get_u64("trials", 1);
  EXPECT_THROW(args.finish(), CheckFailure);
}

TEST(Table, AlignsColumnsAndUnderlinesHeader) {
  Table t({"n", "value"});
  t.add_row({"10", "1.5"});
  t.add_row({"10000", "2.25"});
  const std::string r = t.render();
  std::istringstream lines(r);
  std::string header;
  std::string rule;
  std::string row1;
  std::string row2;
  std::getline(lines, header);
  std::getline(lines, rule);
  std::getline(lines, row1);
  std::getline(lines, row2);
  EXPECT_NE(header.find("n"), std::string::npos);
  EXPECT_NE(header.find("value"), std::string::npos);
  EXPECT_EQ(rule.find_first_not_of('-'), std::string::npos);
  EXPECT_EQ(row1.size(), row2.size());  // aligned
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(Table, NumericRowFormatting) {
  Table t({"a", "b"});
  t.add_numeric_row({1.23456, 2.0}, 2);
  EXPECT_NE(t.render().find("1.23"), std::string::npos);
  EXPECT_NE(t.render().find("2.00"), std::string::npos);
}

TEST(Table, RowWidthMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), CheckFailure);
}

TEST(Csv, WritesHeaderRowsAndEscapes) {
  const std::string path = ::testing::TempDir() + "/ritcs_cli_test.csv";
  {
    CsvWriter w(path, {"x", "label"});
    w.add_row({"1", "plain"});
    w.add_row({"2", "has,comma"});
    w.add_row({"3", "has\"quote"});
    w.add_numeric_row({4.0, 0.5}, 1);
  }
  std::ifstream in(path);
  std::string all((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  EXPECT_NE(all.find("x,label\n"), std::string::npos);
  EXPECT_NE(all.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(all.find("\"has\"\"quote\""), std::string::npos);
  EXPECT_NE(all.find("4.0,0.5"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Csv, QuoteEscapesAllMetacharacters) {
  EXPECT_EQ(csv_quote("plain"), "plain");
  EXPECT_EQ(csv_quote(""), "");
  EXPECT_EQ(csv_quote("has,comma"), "\"has,comma\"");
  EXPECT_EQ(csv_quote("has\"quote"), "\"has\"\"quote\"");
  EXPECT_EQ(csv_quote("two\nlines"), "\"two\nlines\"");
  // A lone '\r' with no '\n' is the classic gap: RFC 4180 separates rows
  // with CRLF, so an unquoted bare carriage return splits the row.
  EXPECT_EQ(csv_quote("bare\rreturn"), "\"bare\rreturn\"");
  EXPECT_EQ(csv_quote("\r"), "\"\r\"");
}

TEST(Csv, RowWidthMismatchThrows) {
  const std::string path = ::testing::TempDir() + "/ritcs_cli_test2.csv";
  CsvWriter w(path, {"a", "b"});
  EXPECT_THROW(w.add_row({"1"}), CheckFailure);
  std::remove(path.c_str());
}

TEST(Csv, UnwritablePathThrowsOnClose) {
  // A path whose "directory" is a regular file can never be created, even
  // by root. Rows buffer fine; the atomic commit in close() must throw.
  const std::string blocker = ::testing::TempDir() + "/ritcs_cli_blocker";
  std::filesystem::remove_all(blocker);  // clear any stale leftover
  { std::ofstream out(blocker); }
  CsvWriter w(blocker + "/x.csv", {"a"});
  w.add_row({"1"});
  EXPECT_THROW(w.close(), CheckFailure);
  std::remove(blocker.c_str());
}

TEST(Csv, CloseIsIdempotentAndRejectsLateRows) {
  const std::string path = ::testing::TempDir() + "/ritcs_cli_test3.csv";
  CsvWriter w(path, {"a"});
  w.add_row({"1"});
  w.close();
  w.close();  // no-op
  EXPECT_THROW(w.add_row({"2"}), CheckFailure);
  std::ifstream in(path);
  std::string all((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  EXPECT_EQ(all, "a\n1\n");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace rit::cli
