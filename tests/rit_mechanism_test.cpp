#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/check.h"
#include "core/rit.h"
#include "rng/rng.h"
#include "tree/builders.h"

namespace rit::core {
namespace {

// A comfortable instance: plenty of supply relative to demand, so the
// consensus bound is healthy and allocation succeeds with high probability.
struct ComfortableInstance {
  Job job = Job::uniform(2, 50);
  std::vector<Ask> asks;
  tree::IncentiveTree tree = tree::IncentiveTree::root_only();

  explicit ComfortableInstance(std::uint64_t seed) {
    rng::Rng rng(seed);
    const std::uint32_t n = 200;
    for (std::uint32_t j = 0; j < n; ++j) {
      asks.push_back(Ask{
          TaskType{static_cast<std::uint32_t>(rng.uniform_index(2))},
          static_cast<std::uint32_t>(rng.uniform_int(1, 3)),
          rng.uniform_real_left_open(0.0, 10.0)});
    }
    tree = tree::random_recursive_tree(n, 0.2, rng);
  }
};

TEST(RoundBudget, HealthyParametersGiveMultipleRounds) {
  RitConfig cfg;
  const RoundBudget b = compute_round_budget(5000, 20, 0.978, cfg);
  EXPECT_FALSE(b.degraded);
  EXPECT_GT(b.per_round_bound, 0.9);
  EXPECT_LT(b.per_round_bound, 1.0);
  EXPECT_GE(b.max_rounds, 1u);
}

TEST(RoundBudget, PaperExampleRemark61) {
  // Remark 6.1: K_max = 10, m_i = 1000 — the bound should be high (the
  // paper rounds it to 0.98; the base-2 consensus analysis gives ~0.96).
  RitConfig cfg;
  const RoundBudget b = compute_round_budget(1000, 10, 0.9, cfg);
  EXPECT_GT(b.per_round_bound, 0.95);
}

TEST(RoundBudget, Remark61NumbersPinnedAgainstThePaper) {
  // Pin our exact value for the paper's worked example so any change to
  // the bound formula is loud. With base-2 consensus:
  //   (1 - 1/1000)^10 + log2(1 - 20/1000) - e^(-125) = 0.96089...
  // The paper prints "0.98"; the gap is the consensus-log-base ambiguity
  // documented in DESIGN.md #1 (base e gives 0.9698; no base gives 0.98).
  RitConfig cfg;  // consensus_log_base = 2
  const RoundBudget base2 = compute_round_budget(1000, 10, 0.9, cfg);
  EXPECT_NEAR(base2.per_round_bound, 0.96089, 5e-4);
  cfg.consensus_log_base = std::exp(1.0);
  const RoundBudget base_e = compute_round_budget(1000, 10, 0.9, cfg);
  EXPECT_NEAR(base_e.per_round_bound, 0.96984, 5e-4);
  EXPECT_GT(base_e.per_round_bound, base2.per_round_bound);
}

TEST(RoundBudget, DegradesWhenConsensusTermBlowsUp) {
  // 2*K_max >= m_i makes the log term -inf; the clamp keeps one round.
  RitConfig cfg;
  const RoundBudget b = compute_round_budget(30, 20, 0.978, cfg);
  EXPECT_TRUE(b.degraded);
  EXPECT_EQ(b.max_rounds, 1u);
}

TEST(RoundBudget, UnclampedAllowsZeroRounds) {
  RitConfig cfg;
  cfg.clamp_min_one_round = false;
  const RoundBudget b = compute_round_budget(30, 20, 0.978, cfg);
  EXPECT_TRUE(b.degraded);
  EXPECT_EQ(b.max_rounds, 0u);
}

TEST(RoundBudget, ZeroDemandNeedsNoRounds) {
  RitConfig cfg;
  const RoundBudget b = compute_round_budget(0, 20, 0.978, cfg);
  EXPECT_EQ(b.max_rounds, 0u);
  EXPECT_FALSE(b.degraded);
}

TEST(RoundBudget, MoreRoundsWhenBoundCloserToOne) {
  RitConfig cfg;
  const RoundBudget strong = compute_round_budget(100000, 5, 0.978, cfg);
  const RoundBudget weak = compute_round_budget(2000, 20, 0.978, cfg);
  EXPECT_GE(strong.max_rounds, weak.max_rounds);
}

TEST(AuctionPhase, AllocationNeverExceedsDemandOrClaims) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    ComfortableInstance inst(seed);
    rng::Rng rng(seed * 7 + 1);
    RitConfig cfg;
    cfg.zero_on_failure = false;  // observe partial allocations too
    const RitResult r = run_auction_phase(inst.job, inst.asks, cfg, rng);
    std::vector<std::uint64_t> per_type(inst.job.num_types(), 0);
    for (std::size_t j = 0; j < inst.asks.size(); ++j) {
      EXPECT_LE(r.allocation[j], inst.asks[j].quantity);
      per_type[inst.asks[j].type.value] += r.allocation[j];
    }
    for (std::uint32_t t = 0; t < inst.job.num_types(); ++t) {
      EXPECT_LE(per_type[t], inst.job.demand(TaskType{t}));
    }
  }
}

TEST(AuctionPhase, LosersGetNothingWinnersGetPaid) {
  ComfortableInstance inst(3);
  rng::Rng rng(33);
  RitConfig cfg;
  cfg.zero_on_failure = false;
  const RitResult r = run_auction_phase(inst.job, inst.asks, cfg, rng);
  for (std::size_t j = 0; j < inst.asks.size(); ++j) {
    if (r.allocation[j] == 0) {
      EXPECT_EQ(r.auction_payment[j], 0.0);
    } else {
      EXPECT_GT(r.auction_payment[j], 0.0);
    }
  }
}

TEST(AuctionPhase, IndividualRationalityPerWinner) {
  // Lemma 6.1: with truthful asks, auction payment >= allocation * cost.
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    ComfortableInstance inst(seed + 100);
    rng::Rng rng(seed + 200);
    RitConfig cfg;
    cfg.zero_on_failure = false;
    const RitResult r = run_auction_phase(inst.job, inst.asks, cfg, rng);
    for (std::size_t j = 0; j < inst.asks.size(); ++j) {
      EXPECT_GE(r.auction_payment[j],
                static_cast<double>(r.allocation[j]) * inst.asks[j].value -
                    1e-9);
    }
  }
}

TEST(AuctionPhase, RoundsNeverExceedBudget) {
  ComfortableInstance inst(5);
  rng::Rng rng(55);
  const RitResult r = run_auction_phase(inst.job, inst.asks, RitConfig{}, rng);
  for (const TypeAuctionInfo& info : r.type_info) {
    EXPECT_LE(info.rounds_used, info.budget.max_rounds);
    EXPECT_LE(info.allocated, info.demanded);
  }
}

TEST(AuctionPhase, EtaIsPerTypeRootOfH) {
  ComfortableInstance inst(6);
  rng::Rng rng(66);
  RitConfig cfg;
  cfg.h = 0.64;
  const RitResult r = run_auction_phase(inst.job, inst.asks, cfg, rng);
  EXPECT_NEAR(r.eta, 0.8, 1e-12);  // 2 demanded types: 0.64^(1/2)
}

TEST(AuctionPhase, FailureZeroesEverything) {
  // Demand far above total supply: must fail, and fail closed.
  const Job job = Job::uniform(1, 1000);
  std::vector<Ask> asks{{TaskType{0}, 2, 1.0}, {TaskType{0}, 3, 2.0}};
  rng::Rng rng(7);
  const RitResult r = run_auction_phase(job, asks, RitConfig{}, rng);
  EXPECT_FALSE(r.success);
  for (std::size_t j = 0; j < asks.size(); ++j) {
    EXPECT_EQ(r.allocation[j], 0u);
    EXPECT_EQ(r.auction_payment[j], 0.0);
    EXPECT_EQ(r.payment[j], 0.0);
  }
}

TEST(AuctionPhase, FailureKeepsDiagnostics) {
  const Job job = Job::uniform(1, 1000);
  std::vector<Ask> asks{{TaskType{0}, 2, 1.0}, {TaskType{0}, 3, 2.0}};
  rng::Rng rng(8);
  const RitResult r = run_auction_phase(job, asks, RitConfig{}, rng);
  ASSERT_EQ(r.type_info.size(), 1u);
  EXPECT_EQ(r.type_info[0].demanded, 1000u);
  EXPECT_LT(r.type_info[0].allocated, 1000u);
}

TEST(AuctionPhase, KMaxOverrideRespected) {
  ComfortableInstance inst(9);
  rng::Rng rng(99);
  RitConfig cfg;
  cfg.k_max_override = 17;
  const RitResult r = run_auction_phase(inst.job, inst.asks, cfg, rng);
  EXPECT_EQ(r.k_max, 17u);
}

TEST(AuctionPhase, RejectsBadH) {
  ComfortableInstance inst(10);
  rng::Rng rng(1);
  RitConfig cfg;
  cfg.h = 1.0;
  EXPECT_THROW(run_auction_phase(inst.job, inst.asks, cfg, rng), CheckFailure);
  cfg.h = 0.0;
  EXPECT_THROW(run_auction_phase(inst.job, inst.asks, cfg, rng), CheckFailure);
}

TEST(AuctionPhase, RejectsBadBases) {
  ComfortableInstance inst(10);
  rng::Rng rng(1);
  RitConfig cfg;
  cfg.consensus_log_base = 1.0;  // would flip the sign of the bound term
  EXPECT_THROW(run_auction_phase(inst.job, inst.asks, cfg, rng), CheckFailure);
  cfg = RitConfig{};
  cfg.discount_base = 1.0;
  EXPECT_THROW(run_auction_phase(inst.job, inst.asks, cfg, rng), CheckFailure);
}

TEST(Rit, SizeMismatchBetweenTreeAndAsksRejected) {
  ComfortableInstance inst(11);
  const auto small_tree = tree::flat_tree(3);
  rng::Rng rng(2);
  EXPECT_THROW(run_rit(inst.job, inst.asks, small_tree, RitConfig{}, rng),
               CheckFailure);
}

RitConfig completion_config() {
  RitConfig cfg;
  cfg.round_budget_policy = RoundBudgetPolicy::kRunToCompletion;
  return cfg;
}

TEST(Rit, PaymentsExtendAuctionPayments) {
  ComfortableInstance inst(12);
  rng::Rng rng(3);
  const RitResult r =
      run_rit(inst.job, inst.asks, inst.tree, completion_config(), rng);
  ASSERT_TRUE(r.success);
  for (std::size_t j = 0; j < inst.asks.size(); ++j) {
    EXPECT_GE(r.payment[j], r.auction_payment[j]);
  }
  EXPECT_GE(r.total_payment(), r.total_auction_payment());
}

TEST(Rit, BudgetBoundHolds) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    ComfortableInstance inst(seed + 40);
    rng::Rng rng(seed + 41);
    const RitResult r =
        run_rit(inst.job, inst.asks, inst.tree, RitConfig{}, rng);
    if (!r.success) continue;
    EXPECT_LE(r.total_payment(),
              2.0 * r.total_auction_payment() + 1e-9);
  }
}

TEST(Rit, SameSeedSameResult) {
  ComfortableInstance inst(13);
  rng::Rng a(77);
  rng::Rng b(77);
  const RitResult ra = run_rit(inst.job, inst.asks, inst.tree, RitConfig{}, a);
  const RitResult rb = run_rit(inst.job, inst.asks, inst.tree, RitConfig{}, b);
  EXPECT_EQ(ra.allocation, rb.allocation);
  EXPECT_EQ(ra.payment, rb.payment);
  EXPECT_EQ(ra.success, rb.success);
}

TEST(Rit, WorkspaceOverloadMatchesAllocatingOverload) {
  // The per-thread scratch reuse every sweep now relies on: same seed in,
  // bit-identical result out, with one workspace reused across instances.
  RitWorkspace ws;
  for (const std::uint64_t seed : {13u, 14u, 15u}) {
    ComfortableInstance inst(seed);
    rng::Rng a(seed * 31);
    rng::Rng b(seed * 31);
    const RitResult fresh =
        run_rit(inst.job, inst.asks, inst.tree, RitConfig{}, a);
    const RitResult reused =
        run_rit(inst.job, inst.asks, inst.tree, RitConfig{}, b, ws);
    EXPECT_EQ(reused.success, fresh.success);
    EXPECT_EQ(reused.allocation, fresh.allocation);
    EXPECT_EQ(reused.auction_payment, fresh.auction_payment);
    EXPECT_EQ(reused.payment, fresh.payment);
    EXPECT_EQ(reused.probability_degraded, fresh.probability_degraded);
    EXPECT_DOUBLE_EQ(reused.achieved_probability, fresh.achieved_probability);
  }
}

TEST(Rit, AuctionPhaseWorkspaceOverloadMatches) {
  ComfortableInstance inst(16);
  RitWorkspace ws;
  rng::Rng a(99);
  rng::Rng b(99);
  const RitResult fresh =
      run_auction_phase(inst.job, inst.asks, RitConfig{}, a);
  const RitResult reused =
      run_auction_phase(inst.job, inst.asks, RitConfig{}, b, ws);
  EXPECT_EQ(reused.success, fresh.success);
  EXPECT_EQ(reused.allocation, fresh.allocation);
  EXPECT_EQ(reused.payment, fresh.payment);
}

TEST(Rit, AuctionPhaseOfRunRitMatchesStandalone) {
  // run_rit must consume the random stream exactly like run_auction_phase,
  // so paired-seed experiments can split the two series.
  ComfortableInstance inst(14);
  rng::Rng a(88);
  rng::Rng b(88);
  const RitResult full = run_rit(inst.job, inst.asks, inst.tree, RitConfig{}, a);
  const RitResult phase1 = run_auction_phase(inst.job, inst.asks, RitConfig{}, b);
  EXPECT_EQ(full.allocation, phase1.allocation);
  EXPECT_EQ(full.auction_payment, phase1.auction_payment);
}

TEST(Rit, FlatTreePaysExactlyAuctionPayments) {
  ComfortableInstance inst(15);
  const auto flat = tree::flat_tree(static_cast<std::uint32_t>(inst.asks.size()));
  rng::Rng rng(4);
  const RitResult r =
      run_rit(inst.job, inst.asks, flat, completion_config(), rng);
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.payment, r.auction_payment);
}

TEST(Rit, UtilityAccessors) {
  RitResult r;
  r.allocation = {2};
  r.auction_payment = {5.0};
  r.payment = {7.0};
  EXPECT_DOUBLE_EQ(r.utility_of(0, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(r.auction_utility_of(0, 1.0), 3.0);
}

TEST(Rit, AchievedProbabilityIsProductOfTypeBounds) {
  ComfortableInstance inst(17);
  rng::Rng rng(6);
  const RitResult r =
      run_auction_phase(inst.job, inst.asks, completion_config(), rng);
  double product = 1.0;
  for (const TypeAuctionInfo& info : r.type_info) {
    EXPECT_GE(info.achieved_bound, 0.0);
    EXPECT_LE(info.achieved_bound, 1.0);
    product *= info.achieved_bound;
  }
  EXPECT_NEAR(r.achieved_probability, product, 1e-12);
}

TEST(Rit, TheoreticalBudgetKeepsAchievedProbabilityAboveH) {
  // In a consensus-friendly regime (K_max << m_i), running within the
  // theoretical budget must keep the achieved bound at or above H.
  rng::Rng setup(77);
  std::vector<Ask> asks;
  for (std::uint32_t j = 0; j < 3000; ++j) {
    asks.push_back(Ask{TaskType{0},
                       static_cast<std::uint32_t>(setup.uniform_int(1, 2)),
                       setup.uniform_real_left_open(0.0, 10.0)});
  }
  const Job job(std::vector<std::uint32_t>{1000});
  RitConfig cfg;  // theoretical budget
  cfg.h = 0.8;
  rng::Rng rng(78);
  const RitResult r = run_auction_phase(job, asks, cfg, rng);
  EXPECT_FALSE(r.probability_degraded);
  EXPECT_GE(r.achieved_probability, cfg.h - 1e-9);
}

TEST(Rit, StallLimitTerminatesHopelessTypes) {
  // One lone supplier for a type: its single ask can never clear the
  // consensus hurdle (see cra_test), so completion mode would spin forever
  // without the stall limit.
  const Job job(std::vector<std::uint32_t>{2});
  std::vector<Ask> asks{{TaskType{0}, 1, 1.0}};
  RitConfig cfg = completion_config();
  cfg.stall_round_limit = 25;
  rng::Rng rng(9);
  const RitResult r = run_auction_phase(job, asks, cfg, rng);
  EXPECT_FALSE(r.success);
  ASSERT_EQ(r.type_info.size(), 1u);
  EXPECT_LE(r.type_info[0].rounds_used, 25u + 2u);
}

TEST(Rit, OrderStatisticModeFlagsDegradedProbability) {
  ComfortableInstance inst(18);
  RitConfig cfg = completion_config();
  cfg.price_mode = PriceMode::kOrderStatistic;
  rng::Rng rng(10);
  const RitResult r = run_auction_phase(inst.job, inst.asks, cfg, rng);
  EXPECT_TRUE(r.probability_degraded);
}

TEST(Rit, ZeroDemandTypesAreSkippedEntirely) {
  std::vector<Ask> asks{{TaskType{0}, 2, 1.0},
                        {TaskType{0}, 2, 2.0},
                        {TaskType{0}, 2, 3.0},
                        {TaskType{1}, 2, 1.0}};
  const Job job(std::vector<std::uint32_t>{2, 0});
  rng::Rng rng(11);
  const RitResult r = run_auction_phase(job, asks, completion_config(), rng);
  ASSERT_EQ(r.type_info.size(), 2u);
  EXPECT_EQ(r.type_info[1].rounds_used, 0u);
  EXPECT_EQ(r.type_info[1].achieved_bound, 1.0);
  EXPECT_EQ(r.allocation[3], 0u);  // type-1 supplier untouched
  // eta uses the count of demanded types (1), not total types (2).
  EXPECT_NEAR(r.eta, 0.8, 1e-12);
}

TEST(Rit, SuccessfulRunAllocatesExactlyTheJob) {
  ComfortableInstance inst(16);
  rng::Rng rng(5);
  const RitResult r =
      run_rit(inst.job, inst.asks, inst.tree, completion_config(), rng);
  ASSERT_TRUE(r.success);
  std::uint64_t total = 0;
  for (std::uint32_t x : r.allocation) total += x;
  EXPECT_EQ(total, inst.job.total_tasks());
}

}  // namespace
}  // namespace rit::core
