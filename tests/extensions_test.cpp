#include <gtest/gtest.h>

#include <vector>

#include "common/check.h"
#include "core/payment.h"
#include "extensions/private_reporting.h"
#include "extensions/quality_aware.h"
#include "rng/rng.h"
#include "stats/online_stats.h"
#include "tree/builders.h"

namespace rit::ext {
namespace {

using core::Ask;
using rit::TaskType;

TEST(QualityTiers, TierOfMapsBands) {
  QualityTiers tiers;
  tiers.boundaries = {0.0, 0.5, 0.8};
  EXPECT_EQ(tiers.tier_of(0.0), 0u);
  EXPECT_EQ(tiers.tier_of(0.49), 0u);
  EXPECT_EQ(tiers.tier_of(0.5), 1u);
  EXPECT_EQ(tiers.tier_of(0.79), 1u);
  EXPECT_EQ(tiers.tier_of(0.8), 2u);
  EXPECT_EQ(tiers.tier_of(1.0), 2u);
  EXPECT_THROW(tiers.tier_of(-0.1), CheckFailure);
}

TEST(QualityAware, StratifyRefinesTypes) {
  QualityJob qjob;
  qjob.areas = 2;
  qjob.tiers = 2;
  qjob.demand = {3, 1, 2, 2};  // (a0,t0)=3 (a0,t1)=1 (a1,t0)=2 (a1,t1)=2
  QualityTiers tiers;
  tiers.boundaries = {0.0, 0.7};
  const std::vector<Ask> asks{
      {TaskType{0}, 2, 1.0},  // area 0, quality .9 -> tier 1 -> type 1
      {TaskType{1}, 1, 2.0},  // area 1, quality .3 -> tier 0 -> type 2
  };
  const std::vector<double> qualities{0.9, 0.3};
  const StratifiedInstance inst = stratify(qjob, asks, qualities, tiers);
  EXPECT_EQ(inst.job.num_types(), 4u);
  EXPECT_EQ(inst.job.demand(TaskType{0}), 3u);
  EXPECT_EQ(inst.asks[0].type, TaskType{1});
  EXPECT_EQ(inst.asks[1].type, TaskType{2});
  // Quantities and prices untouched by the reduction.
  EXPECT_EQ(inst.asks[0].quantity, 2u);
  EXPECT_EQ(inst.asks[1].value, 2.0);
  EXPECT_EQ(area_of(inst.asks[0].type, 2), 0u);
  EXPECT_EQ(tier_of_type(inst.asks[0].type, 2), 1u);
}

TEST(QualityAware, HighTierDemandOnlyServedByHighTierUsers) {
  // One area, two tiers; demand lives in the high tier only. Low-quality
  // users must win nothing no matter how cheap they are.
  QualityJob qjob;
  qjob.areas = 1;
  qjob.tiers = 2;
  qjob.demand = {0, 10};
  QualityTiers tiers;
  tiers.boundaries = {0.0, 0.7};
  rng::Rng setup(1);
  std::vector<Ask> asks;
  std::vector<double> qualities;
  for (int j = 0; j < 120; ++j) {
    const bool high = j % 2 == 0;
    asks.push_back(Ask{TaskType{0},
                       static_cast<std::uint32_t>(setup.uniform_int(1, 3)),
                       // low-quality users are much cheaper
                       setup.uniform_real_left_open(0.0, high ? 10.0 : 1.0)});
    qualities.push_back(high ? 0.9 : 0.2);
  }
  const auto t = tree::random_recursive_tree(120, 0.2, setup);
  core::RitConfig cfg;
  cfg.round_budget_policy = core::RoundBudgetPolicy::kRunToCompletion;
  rng::Rng rng(2);
  const core::RitResult r =
      run_quality_aware_rit(qjob, asks, qualities, tiers, t, cfg, rng);
  ASSERT_TRUE(r.success);
  for (int j = 0; j < 120; ++j) {
    if (qualities[j] < 0.7) {
      EXPECT_EQ(r.allocation[j], 0u) << "low-quality user " << j << " won";
    }
  }
}

TEST(QualityAware, GuaranteesInheritedIrAndBudget) {
  QualityJob qjob;
  qjob.areas = 2;
  qjob.tiers = 2;
  qjob.demand = {10, 5, 8, 4};
  QualityTiers tiers;
  tiers.boundaries = {0.0, 0.6};
  rng::Rng setup(3);
  std::vector<Ask> asks;
  std::vector<double> qualities;
  for (int j = 0; j < 300; ++j) {
    asks.push_back(Ask{
        TaskType{static_cast<std::uint32_t>(setup.uniform_index(2))},
        static_cast<std::uint32_t>(setup.uniform_int(1, 3)),
        setup.uniform_real_left_open(0.0, 10.0)});
    qualities.push_back(setup.uniform01());
  }
  const auto t = tree::random_recursive_tree(300, 0.2, setup);
  core::RitConfig cfg;
  cfg.round_budget_policy = core::RoundBudgetPolicy::kRunToCompletion;
  rng::Rng rng(4);
  const core::RitResult r =
      run_quality_aware_rit(qjob, asks, qualities, tiers, t, cfg, rng);
  for (int j = 0; j < 300; ++j) {
    EXPECT_GE(r.utility_of(j, asks[j].value), -1e-9);
    EXPECT_GE(r.payment[j], r.auction_payment[j] - 1e-12);
  }
  if (r.success) {
    EXPECT_LE(r.total_payment(), 2.0 * r.total_auction_payment() + 1e-9);
  }
}

TEST(QualityAware, SelfReportedTiersWouldBreakTheExclusion) {
  // Documentation-by-test of the certification assumption: if identities
  // could self-report a DIFFERENT tier, they would stop sharing the owner's
  // refined type and the payment phase would pay the owner for its own
  // identity's auction winnings. Demonstrated at the payment level.
  const auto t = tree::chain_tree(2);  // P0 -> P1 (P1 is P0's identity)
  const std::vector<double> pa{0.0, 10.0};
  // Same certified tier => same refined type => exclusion holds.
  const std::vector<TaskType> same{TaskType{1}, TaskType{1}};
  EXPECT_DOUBLE_EQ(core::tree_payments(t, same, pa, 0.5)[0], 0.0);
  // Forged different tier => different refined types => P0 collects.
  const std::vector<TaskType> forged{TaskType{1}, TaskType{0}};
  EXPECT_GT(core::tree_payments(t, forged, pa, 0.5)[0], 0.0);
}

TEST(QualityAware, StratifyRejectsBadInput) {
  QualityJob qjob;
  qjob.areas = 1;
  qjob.tiers = 2;
  qjob.demand = {1, 1};
  QualityTiers tiers;
  tiers.boundaries = {0.0, 0.5};
  const std::vector<Ask> asks{{TaskType{0}, 1, 1.0}};
  const std::vector<double> qualities{0.4};
  // Mismatched sizes.
  const std::vector<double> too_many{0.4, 0.5};
  EXPECT_THROW(stratify(qjob, asks, too_many, tiers), CheckFailure);
  // Tier count mismatch.
  QualityTiers three;
  three.boundaries = {0.0, 0.3, 0.6};
  EXPECT_THROW(stratify(qjob, asks, qualities, three), CheckFailure);
  // Unknown area.
  const std::vector<Ask> bad_area{{TaskType{5}, 1, 1.0}};
  EXPECT_THROW(stratify(qjob, bad_area, qualities, tiers), CheckFailure);
}

TEST(PrivateReporting, LaplaceNoiseShape) {
  rng::Rng rng(5);
  stats::OnlineStats st;
  for (int i = 0; i < 200000; ++i) st.add(laplace_noise(2.0, rng));
  EXPECT_NEAR(st.mean(), 0.0, 0.05);
  // Var of Laplace(b) is 2 b^2 = 8.
  EXPECT_NEAR(st.variance(), 8.0, 0.4);
  EXPECT_THROW(laplace_noise(0.0, rng), CheckFailure);
}

TEST(PrivateReporting, SummaryTracksTrueValuesAtLargeEpsilon) {
  core::RitResult r;
  r.success = true;
  r.allocation = {2, 0, 1};
  r.auction_payment = {10.0, 0.0, 5.0};
  r.payment = {12.0, 1.0, 5.0};
  PrivacyParams params;
  params.epsilon = 10000.0;  // essentially no noise
  params.payment_clip = 100.0;
  rng::Rng rng(6);
  const PrivateSummary s = publish_private_summary(r, params, rng);
  EXPECT_NEAR(s.noisy_participant_count, 3.0, 0.05);
  EXPECT_NEAR(s.noisy_winner_count, 2.0, 0.05);
  EXPECT_NEAR(s.noisy_total_payment, 18.0, 0.3);
  EXPECT_NEAR(s.noisy_total_premium, 3.0, 0.3);
  EXPECT_EQ(s.releases, 4u);
  EXPECT_DOUBLE_EQ(s.epsilon_spent, 10000.0);
}

TEST(PrivateReporting, ClippingBoundsASingleUsersInfluence) {
  // A whale's payment contributes at most the clip to the published sum:
  // two runs differing only in the whale's payment produce clipped sums
  // within the clip of each other (before noise; compare with huge eps).
  core::RitResult small;
  small.success = true;
  small.allocation = {1, 1};
  small.auction_payment = {5.0, 5.0};
  small.payment = {5.0, 5.0};
  core::RitResult whale = small;
  whale.payment[0] = 1e9;
  PrivacyParams params;
  params.epsilon = 1e7;
  params.payment_clip = 50.0;
  rng::Rng rng1(7);
  rng::Rng rng2(7);
  const double a = publish_private_summary(small, params, rng1).noisy_total_payment;
  const double b = publish_private_summary(whale, params, rng2).noisy_total_payment;
  EXPECT_LE(std::abs(b - a), params.payment_clip + 1.0);
}

TEST(PrivateReporting, NoiseScalesInverselyWithEpsilon) {
  core::RitResult r;
  r.success = true;
  r.allocation = {1};
  r.auction_payment = {5.0};
  r.payment = {5.0};
  auto spread = [&](double eps) {
    PrivacyParams params;
    params.epsilon = eps;
    stats::OnlineStats st;
    rng::Rng rng(8);
    for (int i = 0; i < 3000; ++i) {
      st.add(publish_private_summary(r, params, rng).noisy_total_payment);
    }
    return st.stddev();
  };
  EXPECT_GT(spread(0.1), 5.0 * spread(10.0));
}

TEST(PrivateReporting, RejectsBadParams) {
  core::RitResult r;
  r.allocation = {1};
  r.auction_payment = {1.0};
  r.payment = {1.0};
  rng::Rng rng(9);
  PrivacyParams params;
  params.epsilon = 0.0;
  EXPECT_THROW(publish_private_summary(r, params, rng), CheckFailure);
  params.epsilon = 1.0;
  params.payment_clip = 0.0;
  EXPECT_THROW(publish_private_summary(r, params, rng), CheckFailure);
}

}  // namespace
}  // namespace rit::ext
