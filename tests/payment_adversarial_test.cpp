// Differential payment coverage on adversarial tree shapes at scale: a
// 1e5-deep chain, a 1e5-wide star, and a 1e5-tooth comb. The production
// O(N log N) pass (serial and parallel) is pinned against a reference on
// each shape. For the star and comb the committed O(Σdepth) reference is
// affordable; for the deep chain Σdepth is ~5e9, so the test uses a local
// sparse reference instead — only a handful of contributors carry nonzero
// auction payments, and walking just their ancestor chains is exact.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/ids.h"
#include "core/payment.h"
#include "rng/rng.h"
#include "tree/incentive_tree.h"

namespace rit::core {
namespace {

constexpr std::uint32_t kScale = 100000;
constexpr double kBase = 0.5;

// Round-robin types so every chain/comb segment crosses type boundaries
// (same-type ancestors must be excluded — that path has to be exercised,
// not vacuous).
std::vector<TaskType> round_robin_types(std::uint32_t n,
                                        std::uint32_t num_types) {
  std::vector<TaskType> types;
  types.reserve(n);
  for (std::uint32_t j = 0; j < n; ++j) types.push_back(TaskType{j % num_types});
  return types;
}

// Exact payments computed from the nonzero contributors only: participant
// i at absolute depth d feeds base^d * pA_i to every different-type strict
// ancestor. O(nonzeros * depth), independent of total tree size... except
// through the ancestor walks, which is why callers keep nonzeros sparse.
std::vector<double> sparse_reference(const tree::IncentiveTree& tree,
                                     const std::vector<TaskType>& types,
                                     const std::vector<double>& auction) {
  std::vector<double> pay = auction;
  for (std::uint32_t i = 0; i < auction.size(); ++i) {
    if (auction[i] == 0.0) continue;
    const std::uint32_t node = tree::node_of_participant(i);
    const double weighted =
        std::pow(kBase, static_cast<double>(tree.depth(node))) * auction[i];
    for (std::uint32_t a = tree.parent(node); a != 0; a = tree.parent(a)) {
      if (types[a - 1] != types[i]) pay[a - 1] += weighted;
    }
  }
  return pay;
}

void expect_all_near(const std::vector<double>& actual,
                     const std::vector<double>& expected) {
  ASSERT_EQ(actual.size(), expected.size());
  for (std::size_t j = 0; j < actual.size(); ++j) {
    // The production prefix-sum pass accumulates in a different order than
    // the ancestor walk; 1e-9 relative covers the reassociation.
    const double tol = 1e-9 * (1.0 + std::abs(expected[j]));
    ASSERT_NEAR(actual[j], expected[j], tol) << "participant " << j;
  }
}

void expect_parallel_bit_identical(const tree::IncentiveTree& tree,
                                   const std::vector<TaskType>& types,
                                   const std::vector<double>& auction,
                                   const std::vector<double>& serial) {
  PaymentWorkspace ws;
  std::vector<double> out;
  for (unsigned threads : {1u, 2u, 4u}) {
    tree_payments_into(tree, types, auction, kBase, threads, ws, out);
    ASSERT_EQ(out.size(), serial.size()) << "threads=" << threads;
    for (std::size_t j = 0; j < out.size(); ++j) {
      // Bit-identical, not merely near: every parallel write is to a
      // disjoint index of the same serial computation.
      ASSERT_EQ(out[j], serial[j]) << "threads=" << threads << " j=" << j;
    }
  }
}

TEST(PaymentAdversarial, ChainDepth100k) {
  // One chain of 1e5 participants: node j+1 hangs under node j. Depths run
  // 1..1e5, so base^depth underflows to exactly 0.0 past depth ~1074 —
  // both implementations must agree through and past the underflow.
  std::vector<std::uint32_t> parents(kScale + 1, 0);
  for (std::uint32_t j = 1; j < kScale; ++j) parents[j + 1] = j;
  const tree::IncentiveTree tree{parents};
  ASSERT_EQ(tree.max_depth(), kScale);

  const auto types = round_robin_types(kScale, 3);
  std::vector<double> auction(kScale, 0.0);
  rng::Rng rng(20240801);
  for (int i = 0; i < 64; ++i) {
    // Bias contributors toward the shallow end, where discounts are live,
    // but keep some deep ones to cross the underflow boundary.
    const std::uint32_t j =
        i < 48 ? static_cast<std::uint32_t>(rng.uniform_u64(2000))
               : static_cast<std::uint32_t>(rng.uniform_u64(kScale));
    auction[j] = 1.0 + rng.uniform01();
  }

  const auto prod = tree_payments(tree, types, auction, kBase);
  expect_all_near(prod, sparse_reference(tree, types, auction));
  expect_parallel_bit_identical(tree, types, auction, prod);
}

TEST(PaymentAdversarial, StarFanOut100k) {
  // Every participant directly under the root: depth 1 everywhere, no
  // strict non-root ancestors, so payments must equal auction payments —
  // with every participant paid, not a sparse subset.
  std::vector<std::uint32_t> parents(kScale + 1, 0);
  const tree::IncentiveTree tree{parents};
  ASSERT_EQ(tree.max_depth(), 1u);

  const auto types = round_robin_types(kScale, 3);
  std::vector<double> auction(kScale, 0.0);
  rng::Rng rng(20240802);
  for (std::uint32_t j = 0; j < kScale; ++j) {
    auction[j] = rng.uniform01();
  }

  const auto prod = tree_payments(tree, types, auction, kBase);
  // Σdepth = 1e5 here: the committed full reference is affordable.
  expect_all_near(prod, tree_payments_reference(tree, types, auction, kBase));
  for (std::uint32_t j = 0; j < kScale; ++j) {
    ASSERT_EQ(prod[j], auction[j]) << "star node " << j;
  }
  expect_parallel_bit_identical(tree, types, auction, prod);
}

TEST(PaymentAdversarial, Comb100k) {
  // A spine of 5e4 nodes, each with one tooth: half the participants deep
  // on the spine, half hanging one level below it. Exercises the mix of
  // long ancestor chains and wide shallow structure in one tree.
  const std::uint32_t spine = kScale / 2;
  std::vector<std::uint32_t> parents(kScale + 1, 0);
  for (std::uint32_t s = 1; s < spine; ++s) parents[s + 1] = s;  // spine
  for (std::uint32_t t = 0; t < spine; ++t) {
    parents[spine + t + 1] = t + 1;  // tooth t under spine node t+1
  }
  const tree::IncentiveTree tree{parents};
  ASSERT_EQ(tree.max_depth(), spine + 1);

  const auto types = round_robin_types(kScale, 3);
  std::vector<double> auction(kScale, 0.0);
  rng::Rng rng(20240803);
  for (int i = 0; i < 64; ++i) {
    const std::uint32_t j = static_cast<std::uint32_t>(
        i % 2 == 0 ? rng.uniform_u64(2000)            // shallow spine
                   : spine + rng.uniform_u64(2000));  // teeth of that region
    auction[j] = 1.0 + rng.uniform01();
  }

  const auto prod = tree_payments(tree, types, auction, kBase);
  expect_all_near(prod, sparse_reference(tree, types, auction));
  expect_parallel_bit_identical(tree, types, auction, prod);

  // The premium bound of Sec. 7-C holds on this adversarial shape too.
  const double premium = solicitation_premium(prod, auction);
  double total_auction = 0.0;
  for (double p : auction) total_auction += p;
  EXPECT_GE(premium, 0.0);
  EXPECT_LE(premium, total_auction);
}

}  // namespace
}  // namespace rit::core
