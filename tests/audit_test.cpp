#include <gtest/gtest.h>

#include <vector>

#include "common/check.h"
#include "core/audit.h"
#include "core/payment.h"
#include "core/rit.h"
#include "rng/rng.h"
#include "tree/builders.h"

namespace rit::core {
namespace {

// platform -> {P1, P2}, P1 -> {P3, P4}, P4 -> {P5} (participants 0..4).
tree::IncentiveTree example_tree() {
  return tree::IncentiveTree({0, 0, 0, 1, 1, 4});
}

TEST(ExplainPayment, DecomposesIntoLines) {
  const auto t = example_tree();
  const std::vector<TaskType> types{TaskType{0}, TaskType{1}, TaskType{1},
                                    TaskType{1}, TaskType{0}};
  const std::vector<double> pa{10.0, 20.0, 8.0, 4.0, 16.0};
  const PaymentExplanation e = explain_payment(t, types, pa, 0.5, 0);
  EXPECT_EQ(e.participant, 0u);
  EXPECT_DOUBLE_EQ(e.auction_payment, 10.0);
  // Contributors: P3 (2.0) and P4 (1.0); P5 is same-type, excluded.
  ASSERT_EQ(e.contributions.size(), 2u);
  EXPECT_EQ(e.contributions[0].participant, 2u);
  EXPECT_DOUBLE_EQ(e.contributions[0].share, 2.0);
  EXPECT_EQ(e.contributions[0].depth, 2u);
  EXPECT_EQ(e.contributions[1].participant, 3u);
  EXPECT_DOUBLE_EQ(e.contributions[1].share, 1.0);
  EXPECT_EQ(e.same_type_excluded, 1u);
  EXPECT_DOUBLE_EQ(e.total(), 13.0);
}

TEST(ExplainPayment, MatchesTreePayments) {
  rng::Rng rng(5);
  const std::uint32_t n = 150;
  const auto t = tree::random_recursive_tree(n, 0.1, rng);
  std::vector<TaskType> types;
  std::vector<double> pa;
  for (std::uint32_t i = 0; i < n; ++i) {
    types.push_back(
        TaskType{static_cast<std::uint32_t>(rng.uniform_index(4))});
    pa.push_back(rng.bernoulli(0.4) ? rng.uniform01() * 10.0 : 0.0);
  }
  const auto payments = tree_payments(t, types, pa, 0.5);
  for (std::uint32_t j = 0; j < n; j += 13) {
    const PaymentExplanation e = explain_payment(t, types, pa, 0.5, j);
    EXPECT_NEAR(e.total(), payments[j], 1e-9 * (1.0 + payments[j]))
        << "participant " << j;
  }
}

TEST(ExplainPayment, LeafHasNoLines) {
  const auto t = example_tree();
  const std::vector<TaskType> types(5, TaskType{0});
  const std::vector<double> pa(5, 3.0);
  const PaymentExplanation e = explain_payment(t, types, pa, 0.5, 4);
  EXPECT_TRUE(e.contributions.empty());
  EXPECT_EQ(e.same_type_excluded, 0u);
}

TEST(ExplainPayment, ZeroPaymentDescendantsAreSkipped) {
  const auto t = example_tree();
  const std::vector<TaskType> types{TaskType{0}, TaskType{1}, TaskType{1},
                                    TaskType{1}, TaskType{0}};
  const std::vector<double> pa{10.0, 0.0, 0.0, 4.0, 0.0};
  const PaymentExplanation e = explain_payment(t, types, pa, 0.5, 0);
  ASSERT_EQ(e.contributions.size(), 1u);
  EXPECT_EQ(e.contributions[0].participant, 3u);
  EXPECT_EQ(e.same_type_excluded, 0u);  // P5's payment is zero
}

TEST(ExplainPayment, RenderMentionsKeyNumbers) {
  const auto t = example_tree();
  const std::vector<TaskType> types{TaskType{0}, TaskType{1}, TaskType{1},
                                    TaskType{1}, TaskType{0}};
  const std::vector<double> pa{10.0, 20.0, 8.0, 4.0, 16.0};
  const std::string text = explain_payment(t, types, pa, 0.5, 0).render();
  EXPECT_NE(text.find("P1"), std::string::npos);
  EXPECT_NE(text.find("13.0000"), std::string::npos);
  EXPECT_NE(text.find("same-type"), std::string::npos);
}

TEST(ExplainPayment, RejectsBadInputs) {
  const auto t = example_tree();
  const std::vector<TaskType> types(5, TaskType{0});
  const std::vector<double> pa(5, 1.0);
  EXPECT_THROW(explain_payment(t, types, pa, 0.5, 9), CheckFailure);
  EXPECT_THROW(explain_payment(t, types, pa, 1.5, 0), CheckFailure);
}

struct AuditFixtureInstance {
  Job job = Job::uniform(2, 30);
  std::vector<Ask> asks;
  tree::IncentiveTree tree = tree::IncentiveTree::root_only();

  explicit AuditFixtureInstance(std::uint64_t seed) {
    rng::Rng rng(seed);
    for (std::uint32_t j = 0; j < 150; ++j) {
      asks.push_back(Ask{
          TaskType{static_cast<std::uint32_t>(rng.uniform_index(2))},
          static_cast<std::uint32_t>(rng.uniform_int(1, 3)),
          rng.uniform_real_left_open(0.0, 10.0)});
    }
    tree = tree::random_recursive_tree(150, 0.2, rng);
  }
};

TEST(AuditPayments, CleanRunPasses) {
  const AuditFixtureInstance inst(1);
  RitConfig cfg;
  cfg.round_budget_policy = RoundBudgetPolicy::kRunToCompletion;
  rng::Rng rng(2);
  const RitResult r = run_rit(inst.job, inst.asks, inst.tree, cfg, rng);
  ASSERT_TRUE(r.success);
  const AuditReport report =
      audit_payments(inst.tree, inst.asks, r, cfg.discount_base);
  EXPECT_TRUE(report.ok) << (report.violations.empty()
                                 ? ""
                                 : report.violations.front());
  EXPECT_NEAR(report.total_payment, r.total_payment(), 1e-9);
  EXPECT_GE(report.solicitation_premium, 0.0);
}

TEST(AuditPayments, FailedRunMustBeAllZero) {
  const AuditFixtureInstance inst(3);
  RitConfig cfg;  // theoretical budget; engineered failure below
  const Job impossible = Job::uniform(2, 100000);
  rng::Rng rng(4);
  const RitResult r = run_rit(impossible, inst.asks, inst.tree, cfg, rng);
  ASSERT_FALSE(r.success);
  const AuditReport report =
      audit_payments(inst.tree, inst.asks, r, cfg.discount_base);
  EXPECT_TRUE(report.ok);
  EXPECT_EQ(report.total_payment, 0.0);
}

TEST(AuditPayments, DetectsTamperedPayment) {
  const AuditFixtureInstance inst(5);
  RitConfig cfg;
  cfg.round_budget_policy = RoundBudgetPolicy::kRunToCompletion;
  rng::Rng rng(6);
  RitResult r = run_rit(inst.job, inst.asks, inst.tree, cfg, rng);
  ASSERT_TRUE(r.success);
  r.payment[7] += 1.0;  // skim a unit into P8's pocket
  const AuditReport report =
      audit_payments(inst.tree, inst.asks, r, cfg.discount_base);
  EXPECT_FALSE(report.ok);
  ASSERT_FALSE(report.violations.empty());
  EXPECT_NE(report.violations.front().find("P8"), std::string::npos);
}

TEST(AuditPayments, DetectsTamperedAllocation) {
  const AuditFixtureInstance inst(7);
  RitConfig cfg;
  cfg.round_budget_policy = RoundBudgetPolicy::kRunToCompletion;
  rng::Rng rng(8);
  RitResult r = run_rit(inst.job, inst.asks, inst.tree, cfg, rng);
  ASSERT_TRUE(r.success);
  r.allocation[3] = inst.asks[3].quantity + 5;  // beyond the user's claim
  const AuditReport report =
      audit_payments(inst.tree, inst.asks, r, cfg.discount_base);
  EXPECT_FALSE(report.ok);
}

TEST(AuditPayments, DetectsPaymentWithoutAllocation) {
  const AuditFixtureInstance inst(9);
  RitConfig cfg;
  cfg.round_budget_policy = RoundBudgetPolicy::kRunToCompletion;
  rng::Rng rng(10);
  RitResult r = run_rit(inst.job, inst.asks, inst.tree, cfg, rng);
  ASSERT_TRUE(r.success);
  std::uint32_t loser = 0;
  while (r.allocation[loser] != 0) ++loser;
  r.auction_payment[loser] = 5.0;
  const AuditReport report =
      audit_payments(inst.tree, inst.asks, r, cfg.discount_base);
  EXPECT_FALSE(report.ok);
}

}  // namespace
}  // namespace rit::core
