// Bit-exact comparison helpers for AggregateMetrics / FaultLedger, shared
// by the checkpoint and guarded-runner tests. "Bit-identical" here means
// every double compares equal as a reinterpreted u64 — no epsilon anywhere.
#pragma once

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>

#include "sim/checkpoint.h"
#include "sim/fault.h"
#include "sim/metrics.h"
#include "stats/online_stats.h"

namespace rit::sim::testbits {

inline void expect_stats_identical(const stats::OnlineStats& a,
                                   const stats::OnlineStats& b,
                                   const char* name) {
  EXPECT_EQ(a.count(), b.count()) << name;
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a.raw_mean()),
            std::bit_cast<std::uint64_t>(b.raw_mean()))
      << name << ".mean " << a.raw_mean() << " vs " << b.raw_mean();
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a.raw_m2()),
            std::bit_cast<std::uint64_t>(b.raw_m2()))
      << name << ".m2 " << a.raw_m2() << " vs " << b.raw_m2();
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a.raw_min()),
            std::bit_cast<std::uint64_t>(b.raw_min()))
      << name << ".min";
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a.raw_max()),
            std::bit_cast<std::uint64_t>(b.raw_max()))
      << name << ".max";
}

// Coverage guard: if AggregateMetrics grows a field, this assert fails the
// build until expect_aggregate_identical() below learns about it.
static_assert(sizeof(AggregateMetrics) ==
                  8 * sizeof(stats::OnlineStats) + 5 * sizeof(std::uint64_t),
              "AggregateMetrics changed shape: extend the bit-exact "
              "comparison in tests/aggregate_bits.h");

inline void expect_aggregate_identical(const AggregateMetrics& a,
                                       const AggregateMetrics& b) {
  expect_stats_identical(a.avg_utility_auction, b.avg_utility_auction,
                         "avg_utility_auction");
  expect_stats_identical(a.avg_utility_rit, b.avg_utility_rit,
                         "avg_utility_rit");
  expect_stats_identical(a.total_payment_auction, b.total_payment_auction,
                         "total_payment_auction");
  expect_stats_identical(a.total_payment_rit, b.total_payment_rit,
                         "total_payment_rit");
  expect_stats_identical(a.runtime_auction_ms, b.runtime_auction_ms,
                         "runtime_auction_ms");
  expect_stats_identical(a.runtime_rit_ms, b.runtime_rit_ms,
                         "runtime_rit_ms");
  expect_stats_identical(a.solicitation_premium, b.solicitation_premium,
                         "solicitation_premium");
  expect_stats_identical(a.tasks_allocated, b.tasks_allocated,
                         "tasks_allocated");
  EXPECT_EQ(a.trials, b.trials);
  EXPECT_EQ(a.successes, b.successes);
  EXPECT_EQ(a.degraded_trials, b.degraded_trials);
  EXPECT_EQ(a.failed_trials, b.failed_trials);
  EXPECT_EQ(a.quarantined_trials, b.quarantined_trials);
}

inline void expect_ledgers_identical(const FaultLedger& a,
                                     const FaultLedger& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.entries.size(); ++i) {
    EXPECT_EQ(a.entries[i].trial, b.entries[i].trial) << "entry " << i;
    EXPECT_EQ(a.entries[i].seed, b.entries[i].seed) << "entry " << i;
    EXPECT_EQ(a.entries[i].kind, b.entries[i].kind) << "entry " << i;
    EXPECT_EQ(a.entries[i].phase, b.entries[i].phase) << "entry " << i;
    EXPECT_EQ(a.entries[i].reason, b.entries[i].reason) << "entry " << i;
  }
}

inline void expect_results_identical(const GuardedResult& a,
                                     const GuardedResult& b) {
  expect_aggregate_identical(a.metrics, b.metrics);
  expect_ledgers_identical(a.faults, b.faults);
}

}  // namespace rit::sim::testbits
