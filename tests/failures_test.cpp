#include <gtest/gtest.h>

#include <vector>

#include "common/check.h"
#include "core/rit.h"
#include "rng/rng.h"
#include "sim/failures.h"
#include "tree/builders.h"

namespace rit::sim {
namespace {

using core::Ask;
using rit::TaskType;

// platform -> {P0, P1}, P0 -> {P2, P3}, P3 -> {P4}.
struct Fixture {
  tree::IncentiveTree tree{std::vector<std::uint32_t>{0, 0, 0, 1, 1, 4}};
  std::vector<Ask> asks{
      {TaskType{0}, 1, 1.0}, {TaskType{0}, 1, 2.0}, {TaskType{1}, 1, 3.0},
      {TaskType{1}, 1, 4.0}, {TaskType{0}, 1, 5.0},
  };
};

TEST(Failures, RemovingLeafShrinksInstance) {
  Fixture f;
  const DropoutResult r = remove_participants(f.tree, f.asks, {{4u}});
  EXPECT_EQ(r.asks.size(), 4u);
  EXPECT_EQ(r.tree.num_participants(), 4u);
  EXPECT_EQ(r.new_of_original[4], DropoutResult::kDropped);
  EXPECT_EQ(r.original_of, (std::vector<std::uint32_t>{0, 1, 2, 3}));
  // Survivors keep asks and relative structure.
  EXPECT_EQ(r.asks[3], f.asks[3]);
  EXPECT_EQ(r.tree.parent(tree::node_of_participant(r.new_of_original[3])),
            tree::node_of_participant(r.new_of_original[0]));
}

TEST(Failures, ChildrenSpliceToClosestSurvivingAncestor) {
  Fixture f;
  // Drop P0: its children P2, P3 must re-attach to the platform; P4 stays
  // under P3.
  const DropoutResult r = remove_participants(f.tree, f.asks, {{0u}});
  EXPECT_EQ(r.asks.size(), 4u);
  const std::uint32_t p2 = r.new_of_original[2];
  const std::uint32_t p3 = r.new_of_original[3];
  const std::uint32_t p4 = r.new_of_original[4];
  EXPECT_EQ(r.tree.parent(tree::node_of_participant(p2)), 0u);
  EXPECT_EQ(r.tree.parent(tree::node_of_participant(p3)), 0u);
  EXPECT_EQ(r.tree.parent(tree::node_of_participant(p4)),
            tree::node_of_participant(p3));
}

TEST(Failures, CascadedDropoutsSpliceThroughMultipleLevels) {
  Fixture f;
  // Drop P0 and P3: P4's closest surviving ancestor is the platform.
  const DropoutResult r = remove_participants(f.tree, f.asks, {{0u, 3u}});
  EXPECT_EQ(r.asks.size(), 3u);
  const std::uint32_t p4 = r.new_of_original[4];
  EXPECT_EQ(r.tree.parent(tree::node_of_participant(p4)), 0u);
  EXPECT_EQ(r.tree.depth(tree::node_of_participant(p4)), 1u);
}

TEST(Failures, DuplicateDropoutsAreIdempotent) {
  Fixture f;
  const DropoutResult r = remove_participants(f.tree, f.asks, {{2u, 2u, 2u}});
  EXPECT_EQ(r.asks.size(), 4u);
}

TEST(Failures, DuplicateDropoutsEqualSingleDropExactly) {
  Fixture f;
  const DropoutResult once = remove_participants(f.tree, f.asks, {{2u}});
  const DropoutResult dup = remove_participants(f.tree, f.asks, {{2u, 2u, 2u}});
  EXPECT_EQ(dup.asks, once.asks);
  EXPECT_EQ(dup.original_of, once.original_of);
  EXPECT_EQ(dup.new_of_original, once.new_of_original);
  EXPECT_EQ(dup.tree.parents(), once.tree.parents());
}

TEST(Failures, DropEveryoneLeavesRootOnly) {
  Fixture f;
  const DropoutResult r =
      remove_participants(f.tree, f.asks, {{0u, 1u, 2u, 3u, 4u}});
  EXPECT_EQ(r.asks.size(), 0u);
  EXPECT_EQ(r.tree.num_participants(), 0u);
}

TEST(Failures, OutOfRangeDropoutRejected) {
  Fixture f;
  EXPECT_THROW(remove_participants(f.tree, f.asks, {{9u}}), CheckFailure);
}

TEST(Failures, RandomDropoutRateZeroAndOne) {
  Fixture f;
  rng::Rng rng(1);
  EXPECT_EQ(random_dropout(f.tree, f.asks, 0.0, rng).asks.size(), 5u);
  EXPECT_EQ(random_dropout(f.tree, f.asks, 1.0, rng).asks.size(), 0u);
  EXPECT_THROW(random_dropout(f.tree, f.asks, 1.5, rng), CheckFailure);
}

TEST(Failures, RandomDropoutRateZeroIsTheIdentity) {
  Fixture f;
  rng::Rng rng(7);
  const DropoutResult r = random_dropout(f.tree, f.asks, 0.0, rng);
  EXPECT_EQ(r.asks, f.asks);
  EXPECT_EQ(r.tree.parents(), f.tree.parents());
  for (std::uint32_t j = 0; j < 5; ++j) {
    EXPECT_EQ(r.original_of[j], j);
    EXPECT_EQ(r.new_of_original[j], j);
  }
}

TEST(Failures, RandomDropoutRateOneYieldsValidEmptySurvivorSet) {
  Fixture f;
  rng::Rng rng(7);
  const DropoutResult r = random_dropout(f.tree, f.asks, 1.0, rng);
  // Everyone dropped: the result must still be structurally valid — a
  // platform-only tree, empty ask/index vectors, every original mapped to
  // kDropped — not a malformed husk that downstream code trips over.
  EXPECT_TRUE(r.asks.empty());
  EXPECT_EQ(r.tree.num_participants(), 0u);
  EXPECT_EQ(r.tree.num_nodes(), 1u);
  EXPECT_EQ(r.tree.subtree_size(0), 1u);
  EXPECT_TRUE(r.original_of.empty());
  ASSERT_EQ(r.new_of_original.size(), 5u);
  for (std::uint32_t j = 0; j < 5; ++j) {
    EXPECT_EQ(r.new_of_original[j], DropoutResult::kDropped);
  }
}

TEST(Failures, RandomDropoutRateRoughlyBinomial) {
  rng::Rng setup(2);
  const auto t = tree::random_recursive_tree(2000, 0.2, setup);
  std::vector<Ask> asks(2000, Ask{TaskType{0}, 1, 1.0});
  rng::Rng rng(3);
  const DropoutResult r = random_dropout(t, asks, 0.3, rng);
  EXPECT_NEAR(static_cast<double>(r.asks.size()), 1400.0, 80.0);
}

TEST(Failures, MechanismSurvivesHeavyDropout) {
  // End-to-end: a healthy instance loses 40% of its users after the tree
  // formed; RIT still clears (supply permitting) and every pathwise
  // invariant holds on the spliced tree.
  rng::Rng setup(4);
  const std::uint32_t n = 600;
  std::vector<Ask> asks;
  std::vector<double> costs;
  for (std::uint32_t j = 0; j < n; ++j) {
    const double c = setup.uniform_real_left_open(0.0, 10.0);
    asks.push_back(Ask{TaskType{static_cast<std::uint32_t>(
                           setup.uniform_index(3))},
                       static_cast<std::uint32_t>(setup.uniform_int(1, 3)),
                       c});
    costs.push_back(c);
  }
  const auto t = tree::random_recursive_tree(n, 0.15, setup);
  rng::Rng drop_rng(5);
  const DropoutResult r = random_dropout(t, asks, 0.4, drop_rng);

  core::RitConfig cfg;
  cfg.round_budget_policy = core::RoundBudgetPolicy::kRunToCompletion;
  const core::Job job = core::Job::uniform(3, 25);
  rng::Rng mech(6);
  const core::RitResult result = core::run_rit(job, r.asks, r.tree, cfg, mech);
  ASSERT_TRUE(result.success);
  for (std::uint32_t i = 0; i < r.asks.size(); ++i) {
    EXPECT_GE(result.utility_of(i, costs[r.original_of[i]]), -1e-9);
    EXPECT_GE(result.payment[i], result.auction_payment[i] - 1e-12);
  }
}

TEST(Failures, DepthsNeverIncreaseAfterDropout) {
  // Splicing to an ancestor can only move survivors up; recruiters of the
  // dropped users lose those subtrees' rewards but nobody sinks deeper.
  rng::Rng setup(7);
  const auto t = tree::random_recursive_tree(400, 0.1, setup);
  std::vector<Ask> asks(400, Ask{TaskType{0}, 1, 1.0});
  rng::Rng drop_rng(8);
  const DropoutResult r = random_dropout(t, asks, 0.25, drop_rng);
  for (std::uint32_t i = 0; i < r.asks.size(); ++i) {
    const std::uint32_t old_node = tree::node_of_participant(r.original_of[i]);
    const std::uint32_t new_node = tree::node_of_participant(i);
    EXPECT_LE(r.tree.depth(new_node), t.depth(old_node));
  }
}

}  // namespace
}  // namespace rit::sim
