// Storm testing: hundreds of adversarially-shaped random instances through
// the full mechanism + audit, across wild configurations. The point is not
// any single expectation but that NOTHING crashes, every invariant holds,
// and every run audits clean — the catch-all net under all other tests.
#include <gtest/gtest.h>

#include <vector>

#include "core/audit.h"
#include "core/rit.h"
#include "rng/rng.h"
#include "tree/builders.h"

namespace rit::core {
namespace {

struct FuzzInstance {
  Job job{std::vector<std::uint32_t>{1}};
  std::vector<Ask> asks;
  std::vector<double> costs;
  tree::IncentiveTree tree = tree::IncentiveTree::root_only();
  RitConfig config;
};

FuzzInstance make_fuzz_instance(rng::Rng& rng) {
  FuzzInstance inst;
  // Wild job shapes: 1..8 types, demands from 0 to large, possibly zero for
  // some types (at least one positive).
  const auto num_types = static_cast<std::uint32_t>(1 + rng.uniform_index(8));
  std::vector<std::uint32_t> demand(num_types, 0);
  do {
    for (auto& d : demand) {
      d = rng.bernoulli(0.2)
              ? 0
              : static_cast<std::uint32_t>(rng.uniform_index(60));
    }
  } while (std::all_of(demand.begin(), demand.end(),
                       [](std::uint32_t d) { return d == 0; }));
  inst.job = Job(std::move(demand));

  // Wild populations: sometimes tiny (undersupplied), sometimes clustered
  // ask values (tie storms), sometimes huge quantities.
  const auto n = static_cast<std::uint32_t>(1 + rng.uniform_index(250));
  const bool clustered = rng.bernoulli(0.3);
  for (std::uint32_t j = 0; j < n; ++j) {
    const double cost = clustered
                            ? (1.0 + static_cast<double>(rng.uniform_index(4)))
                            : rng.uniform_real_left_open(0.0, 10.0);
    inst.asks.push_back(Ask{
        TaskType{static_cast<std::uint32_t>(
            rng.uniform_index(inst.job.num_types()))},
        static_cast<std::uint32_t>(1 + rng.uniform_index(
                                       rng.bernoulli(0.1) ? 200 : 6)),
        cost});
    inst.costs.push_back(cost);
  }

  // Wild trees: flat, chain, or random with varying branching.
  switch (rng.uniform_index(4)) {
    case 0:
      inst.tree = tree::flat_tree(n);
      break;
    case 1:
      inst.tree = tree::chain_tree(n);
      break;
    default:
      inst.tree = tree::random_recursive_tree(n, rng.uniform01(), rng);
      break;
  }

  // Wild configs.
  inst.config.h = rng.uniform_real(0.05, 0.95);
  inst.config.discount_base = rng.uniform_real(0.05, 0.95);
  inst.config.round_budget_policy = rng.bernoulli(0.5)
                                        ? RoundBudgetPolicy::kTheoretical
                                        : RoundBudgetPolicy::kRunToCompletion;
  inst.config.empty_sample = rng.bernoulli(0.5)
                                 ? EmptySamplePolicy::kAllAsks
                                 : EmptySamplePolicy::kNoWinners;
  inst.config.price_mode = rng.bernoulli(0.25) ? PriceMode::kOrderStatistic
                                               : PriceMode::kConsensus;
  inst.config.stall_round_limit =
      static_cast<std::uint32_t>(1 + rng.uniform_index(30));
  inst.config.record_round_trace = rng.bernoulli(0.3);
  return inst;
}

class FuzzShard : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Shards, FuzzShard,
                         ::testing::Range<std::uint64_t>(0, 8));

TEST_P(FuzzShard, StormOfRandomInstancesHoldsEveryInvariant) {
  rng::Rng rng(0xf022 + GetParam() * 7919);
  for (int iteration = 0; iteration < 60; ++iteration) {
    const FuzzInstance inst = make_fuzz_instance(rng);
    rng::Rng mech = rng.split();
    const RitResult r =
        run_rit(inst.job, inst.asks, inst.tree, inst.config, mech);

    // Invariants that must hold for EVERY configuration.
    std::uint64_t allocated = 0;
    for (std::size_t j = 0; j < inst.asks.size(); ++j) {
      ASSERT_LE(r.allocation[j], inst.asks[j].quantity);
      ASSERT_GE(r.utility_of(static_cast<std::uint32_t>(j), inst.costs[j]),
                -1e-9)
          << "IR violated at iteration " << iteration;
      ASSERT_GE(r.payment[j], r.auction_payment[j] - 1e-12);
      allocated += r.allocation[j];
    }
    if (r.success) {
      ASSERT_EQ(allocated, inst.job.total_tasks());
    } else {
      ASSERT_EQ(allocated, 0u);
      ASSERT_EQ(r.total_payment(), 0.0);
    }
    ASSERT_GE(r.achieved_probability, 0.0);
    ASSERT_LE(r.achieved_probability, 1.0);
    if (inst.config.record_round_trace) {
      for (const TypeAuctionInfo& info : r.type_info) {
        ASSERT_EQ(info.rounds.size(), info.rounds_used);
      }
    }
    const AuditReport audit =
        audit_payments(inst.tree, inst.asks, r, inst.config.discount_base);
    ASSERT_TRUE(audit.ok) << "iteration " << iteration << ": "
                          << (audit.violations.empty()
                                  ? ""
                                  : audit.violations.front());
  }
}

TEST(Fuzz, ReplayStability) {
  // Any fuzz instance replays bit-identically: catches hidden global state.
  rng::Rng rng(0xabad1dea);
  const FuzzInstance inst = make_fuzz_instance(rng);
  rng::Rng a(42);
  rng::Rng b(42);
  const RitResult ra = run_rit(inst.job, inst.asks, inst.tree, inst.config, a);
  const RitResult rb = run_rit(inst.job, inst.asks, inst.tree, inst.config, b);
  EXPECT_EQ(ra.payment, rb.payment);
  EXPECT_EQ(ra.allocation, rb.allocation);
}

}  // namespace
}  // namespace rit::core
