// The process-isolated sweep supervisor: undisturbed parity with the
// in-process engine, the signal death matrix (SIGKILL/SIGSEGV/SIGABRT ×
// shard counts) with bit-identical recovery, OOM-rlimit and hang-watchdog
// containment, quarantine-budget exhaustion, and the shard payload wire
// format. Everything here forks real processes and kills them for real.
#include <gtest/gtest.h>

#include <csignal>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "aggregate_bits.h"
#include "common/check.h"
#include "platform/shard_worker.h"
#include "platform/supervisor.h"
#include "sim/chaos.h"
#include "sim/checkpoint.h"
#include "sim/fault.h"
#include "sim/guarded.h"
#include "sim/metrics.h"
#include "sim/runner.h"
#include "sim/scenario.h"

// ASan changes two things the death matrix depends on: it installs its own
// SIGSEGV handler (a raise(SIGSEGV) becomes a plain exit, still a worker
// death but with different forensic text), and RLIMIT_AS is incompatible
// with the shadow-memory mapping. The affected assertions gate on this.
#if defined(__SANITIZE_ADDRESS__)
#define RITCS_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define RITCS_ASAN 1
#endif
#endif
#ifndef RITCS_ASAN
#define RITCS_ASAN 0
#endif

namespace rit::platform {
namespace {

namespace fs = std::filesystem;
using sim::AggregateMetrics;
using sim::FaultKind;
using sim::GuardedResult;
using sim::GuardPolicy;
using sim::TrialFault;
using sim::TrialMetrics;
using sim::testbits::expect_aggregate_identical;
using sim::testbits::expect_results_identical;
using sim::testbits::expect_stats_identical;

fs::path scratch(const std::string& name) {
  const fs::path dir =
      fs::path(::testing::TempDir()) / "ritcs_supervisor" / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

// Same pure-function body the guarded kill/resume matrix uses: every field
// (runtimes included) is a function of the trial index, which is what lets
// these tests demand bit-identity across process boundaries and retries.
TrialMetrics synthetic_trial(std::uint64_t t) {
  const double x = static_cast<double>(t);
  TrialMetrics m;
  m.success = (t % 3) != 0;
  m.avg_utility_auction = 0.25 * x - 1.0;
  m.avg_utility_rit = 1.0 / (x + 3.0);
  m.total_payment_auction = 10.0 + x;
  m.total_payment_rit = 20.0 + 2.0 * x;
  m.runtime_auction_ms = 0.125 * x;
  m.runtime_rit_ms = 0.5 + x / 7.0;
  m.solicitation_premium = 0.75 * x;
  m.tasks_allocated = t % 7;
  m.probability_degraded = (t % 5) == 0;
  return m;
}

sim::TrialBody synthetic_body() {
  return [](std::uint64_t t, core::RitWorkspace&, std::string*) {
    return synthetic_trial(t);
  };
}

std::uint64_t seed_of(std::uint64_t t) { return t * 1000 + 7; }

sim::Scenario small_scenario() {
  sim::Scenario s;
  s.num_users = 120;
  s.num_types = 3;
  s.tasks_per_type = 10;
  s.k_max = 4;
  s.initial_joiners = 4;
  s.seed = 11;
  return s;
}

/// Ledger entries the supervisor appended for recovered worker deaths.
std::vector<TrialFault> worker_deaths(const GuardedResult& r) {
  std::vector<TrialFault> out;
  for (const TrialFault& f : r.faults.entries) {
    if (f.kind == FaultKind::kWorkerDeath) out.push_back(f);
  }
  return out;
}

TEST(ShardWorker, TrialCountPartitionsExactly) {
  for (const std::uint64_t trials : {1u, 2u, 7u, 12u, 13u, 100u}) {
    for (const unsigned shards : {1u, 2u, 3u, 8u}) {
      if (shards > trials) continue;
      std::uint64_t sum = 0;
      for (unsigned s = 0; s < shards; ++s) {
        sum += shard_trial_count(trials, s, shards);
      }
      EXPECT_EQ(sum, trials) << trials << " trials over " << shards;
    }
  }
  EXPECT_EQ(shard_trial_count(10, 0, 3), 4u);  // 0, 3, 6, 9
  EXPECT_EQ(shard_trial_count(10, 1, 3), 3u);  // 1, 4, 7
  EXPECT_EQ(shard_trial_count(10, 2, 3), 3u);  // 2, 5, 8
}

TEST(ShardWorker, ResultPayloadRoundTripsBitExactly) {
  GuardedResult r;
  for (std::uint64_t t = 0; t < 9; ++t) r.metrics.add(synthetic_trial(t));
  r.metrics.note_failed();
  r.faults.record(4, seed_of(4), FaultKind::kException, "run_trial",
                  "synthetic: something threw");
  const ShardPayload back = parse_shard_payload(serialize_shard_result(r));
  ASSERT_TRUE(back.ok) << back.error;
  expect_results_identical(back.result, r);
}

TEST(ShardWorker, ErrorPayloadRoundTripsFlattened) {
  const ShardPayload back = parse_shard_payload(
      serialize_shard_error("budget exhausted\nsecond line"));
  EXPECT_FALSE(back.ok);
  EXPECT_EQ(back.error, "budget exhausted second line");
}

TEST(ShardWorker, MalformedPayloadIsRejected) {
  const ShardPayload back = parse_shard_payload("not a payload\n");
  EXPECT_FALSE(back.ok);
  EXPECT_NE(back.error.find("malformed"), std::string::npos);
}

TEST(Supervisor, UndisturbedMatchesInProcessBitExactly) {
  const std::uint64_t trials = 13;
  for (const unsigned shards : {1u, 2u, 8u}) {
    const GuardedResult reference = sim::run_trials_guarded(
        trials, shards, GuardPolicy{}, synthetic_body(), seed_of);
    SupervisorOptions opts;
    opts.shards = shards;
    const GuardedResult supervised = run_trials_supervised(
        trials, opts, GuardPolicy{}, synthetic_body(), seed_of);
    expect_results_identical(supervised, reference);
  }
}

TEST(Supervisor, SignalDeathMatrixRecoversBitIdentical) {
  const std::uint64_t trials = 12;
  const std::uint64_t kill_at = 7;
  for (const int sig : {SIGKILL, SIGSEGV, SIGABRT}) {
    for (const unsigned shards : {1u, 2u, 8u}) {
      const fs::path dir = scratch("sig" + std::to_string(sig) + "_k" +
                                   std::to_string(shards));
      const GuardedResult reference = sim::run_trials_guarded(
          trials, shards, GuardPolicy{}, synthetic_body(), seed_of);

      SupervisorOptions opts;
      opts.shards = shards;
      opts.backoff_ms = 10;
      opts.checkpoint_path = (dir / "sweep.ckpt").string();
      opts.checkpoint_every = 1;
      GuardPolicy policy;
      policy.chaos.signal_on_trial = kill_at;
      policy.chaos.signal_number = sig;
      const GuardedResult supervised = run_trials_supervised(
          trials, opts, policy, synthetic_body(), seed_of);

      expect_aggregate_identical(supervised.metrics, reference.metrics);
      const std::vector<TrialFault> deaths = worker_deaths(supervised);
      ASSERT_EQ(deaths.size(), 1u)
          << "signal " << sig << " shards " << shards;
      EXPECT_EQ(supervised.faults.size(),
                reference.faults.size() + deaths.size());
      EXPECT_EQ(deaths[0].trial, kill_at);
      EXPECT_EQ(deaths[0].seed, seed_of(kill_at));
#if !RITCS_ASAN
      const char* name = sig == SIGKILL   ? "SIGKILL"
                         : sig == SIGSEGV ? "SIGSEGV"
                                          : "SIGABRT";
      EXPECT_NE(deaths[0].reason.find(name), std::string::npos)
          << deaths[0].reason;
#endif
    }
  }
}

TEST(Supervisor, DeathAtFirstAndLastTrialRecovers) {
  const std::uint64_t trials = 12;
  for (const std::uint64_t kill_at : {std::uint64_t{0}, trials - 1}) {
    const fs::path dir = scratch("edge" + std::to_string(kill_at));
    const GuardedResult reference = sim::run_trials_guarded(
        trials, 2, GuardPolicy{}, synthetic_body(), seed_of);
    SupervisorOptions opts;
    opts.shards = 2;
    opts.backoff_ms = 10;
    opts.checkpoint_path = (dir / "sweep.ckpt").string();
    opts.checkpoint_every = 1;
    GuardPolicy policy;
    policy.chaos.signal_on_trial = kill_at;
    policy.chaos.signal_number = SIGKILL;
    const GuardedResult supervised = run_trials_supervised(
        trials, opts, policy, synthetic_body(), seed_of);
    expect_aggregate_identical(supervised.metrics, reference.metrics);
    EXPECT_EQ(worker_deaths(supervised).size(), 1u);
  }
}

TEST(Supervisor, RetryWorksWithoutDurableState) {
  // No checkpoint path: the relaunched shard replays its residue class from
  // trial 0 — still deterministic, so the recovered run stays bit-identical.
  const std::uint64_t trials = 10;
  const GuardedResult reference = sim::run_trials_guarded(
      trials, 2, GuardPolicy{}, synthetic_body(), seed_of);
  SupervisorOptions opts;
  opts.shards = 2;
  opts.backoff_ms = 10;
  GuardPolicy policy;
  policy.chaos.signal_on_trial = 5;
  policy.chaos.signal_number = SIGKILL;
  const GuardedResult supervised =
      run_trials_supervised(trials, opts, policy, synthetic_body(), seed_of);
  expect_aggregate_identical(supervised.metrics, reference.metrics);
  EXPECT_EQ(worker_deaths(supervised).size(), 1u);
}

TEST(Supervisor, OomUnderRlimitIsAttributedAndRecovered) {
#if RITCS_ASAN
  GTEST_SKIP() << "RLIMIT_AS is incompatible with ASan shadow memory";
#else
  const std::uint64_t trials = 6;
  const fs::path dir = scratch("oom");
  const GuardedResult reference = sim::run_trials_guarded(
      trials, 2, GuardPolicy{}, synthetic_body(), seed_of);
  SupervisorOptions opts;
  opts.shards = 2;
  opts.backoff_ms = 10;
  opts.shard_mem_mb = 512;
  opts.checkpoint_path = (dir / "sweep.ckpt").string();
  opts.checkpoint_every = 1;
  GuardPolicy policy;
  policy.chaos.oom_on_trial = 3;
  const GuardedResult supervised =
      run_trials_supervised(trials, opts, policy, synthetic_body(), seed_of);
  expect_aggregate_identical(supervised.metrics, reference.metrics);
  const std::vector<TrialFault> deaths = worker_deaths(supervised);
  ASSERT_EQ(deaths.size(), 1u);
  EXPECT_EQ(deaths[0].trial, 3u);
  EXPECT_NE(deaths[0].reason.find("OOM"), std::string::npos)
      << deaths[0].reason;
  EXPECT_NE(deaths[0].reason.find("address-space"), std::string::npos)
      << deaths[0].reason;
#endif
}

TEST(Supervisor, HangWatchdogKillsAndRecovers) {
  const std::uint64_t trials = 8;
  const fs::path dir = scratch("hang");
  const GuardedResult reference = sim::run_trials_guarded(
      trials, 2, GuardPolicy{}, synthetic_body(), seed_of);
  SupervisorOptions opts;
  opts.shards = 2;
  opts.backoff_ms = 10;
  opts.heartbeat_timeout_ms = 500;
  opts.checkpoint_path = (dir / "sweep.ckpt").string();
  opts.checkpoint_every = 1;
  GuardPolicy policy;
  policy.chaos.hang_on_trial = 3;
  const GuardedResult supervised =
      run_trials_supervised(trials, opts, policy, synthetic_body(), seed_of);
  expect_aggregate_identical(supervised.metrics, reference.metrics);
  const std::vector<TrialFault> deaths = worker_deaths(supervised);
  ASSERT_GE(deaths.size(), 1u);
  bool saw_hang = false;
  for (const TrialFault& d : deaths) {
    if (d.reason.find("hung") != std::string::npos) saw_hang = true;
  }
  EXPECT_TRUE(saw_hang);
}

TEST(Supervisor, QuarantineExhaustionAbortsAndFlushesForensics) {
  const std::uint64_t trials = 6;
  const fs::path dir = scratch("quarantine");
  const std::string ckpt = (dir / "sweep.ckpt").string();

  sim::CheckpointSession::Params p;
  p.path = ckpt;
  p.config_hash = 1234;
  p.threads = 2;  // == resolved shard count
  p.trials = trials;
  sim::CheckpointSession session(p);

  SupervisorOptions opts;
  opts.shards = 2;
  opts.backoff_ms = 10;
  opts.shard_retries = 1;
  opts.checkpoint_path = ckpt;
  opts.checkpoint_every = 1;
  opts.config_hash = 1234;
  GuardPolicy policy;
  policy.chaos.signal_on_trial = 1;  // shard 1's first trial
  policy.chaos.signal_number = SIGKILL;
  policy.chaos.process_chaos_every_attempt = true;  // never recovers

  try {
    run_trials_supervised(trials, opts, policy, synthetic_body(), seed_of,
                          &session);
    FAIL() << "quarantine exhaustion must abort with CheckFailure";
  } catch (const rit::CheckFailure& e) {
    EXPECT_NE(std::string(e.what()).find("quarantined"), std::string::npos)
        << e.what();
  }

  std::ifstream in(session.aborted_path(), std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing " << session.aborted_path();
  std::ostringstream content;
  content << in.rdbuf();
  const sim::AbortedRecord rec =
      sim::parse_aborted(content.str(), session.aborted_path());
  EXPECT_EQ(rec.point, 0u);
  EXPECT_NE(rec.reason.find("quarantined"), std::string::npos) << rec.reason;
  // Launch + one retry, both killed on the same trial: two death records.
  std::uint64_t death_count = 0;
  for (const TrialFault& f : rec.partial.faults.entries) {
    if (f.kind == FaultKind::kWorkerDeath) {
      ++death_count;
      EXPECT_EQ(f.trial, 1u);
    }
  }
  EXPECT_EQ(death_count, 2u);
}

TEST(Supervisor, InProcessCheckpointResumesSupervised) {
  // A sweep checkpointed by the in-process engine at --threads=K resumes
  // under the supervisor at --shards=K: the binding is the partition width,
  // which both engines share.
  const std::uint64_t trials = 10;
  const fs::path dir = scratch("interchange");
  const std::string ckpt = (dir / "sweep.ckpt").string();
  const GuardedResult reference = sim::run_trials_guarded(
      trials, 2, GuardPolicy{}, synthetic_body(), seed_of);

  {
    sim::CheckpointSession::Params p;
    p.path = ckpt;
    p.config_hash = 77;
    p.threads = 2;
    p.trials = trials;
    p.every = 2;
    sim::CheckpointSession session(p);
    GuardPolicy chaos_kill;
    chaos_kill.chaos.kill_after_checkpoints = 2;
    EXPECT_THROW(sim::run_trials_guarded(trials, 2, chaos_kill,
                                         synthetic_body(), seed_of, &session),
                 sim::chaos::ChaosKill);
  }

  sim::CheckpointSession::Params p;
  p.path = ckpt;
  p.config_hash = 77;
  p.threads = 2;
  p.trials = trials;
  p.every = 2;
  p.resume = true;
  sim::CheckpointSession session(p);
  SupervisorOptions opts;
  opts.shards = 2;
  opts.checkpoint_path = ckpt;
  opts.checkpoint_every = 2;
  opts.resume = true;
  opts.config_hash = 77;
  const GuardedResult supervised = run_trials_supervised(
      trials, opts, GuardPolicy{}, synthetic_body(), seed_of, &session);
  expect_results_identical(supervised, reference);

  // And the completed point round-trips through the parent session.
  sim::GuardedResult again;
  ASSERT_TRUE(session.completed_point(0, &again));
  expect_results_identical(again, supervised);
}

TEST(Supervisor, ScenarioDrivenParityOnDeterministicFields) {
  // Real scenario trials time themselves (runtime_* is wall clock), so the
  // cross-engine comparison pins every *deterministic* field bit-exactly
  // and leaves only the measured runtimes out.
  const sim::Scenario s = small_scenario();
  const std::uint64_t trials = 6;
  const GuardedResult reference =
      sim::run_many_guarded(s, trials, 2, GuardPolicy{});
  SupervisorOptions opts;
  opts.shards = 2;
  const GuardedResult supervised =
      run_many_supervised(s, trials, opts, GuardPolicy{});

  const AggregateMetrics& a = supervised.metrics;
  const AggregateMetrics& b = reference.metrics;
  expect_stats_identical(a.avg_utility_auction, b.avg_utility_auction,
                         "avg_utility_auction");
  expect_stats_identical(a.avg_utility_rit, b.avg_utility_rit,
                         "avg_utility_rit");
  expect_stats_identical(a.total_payment_auction, b.total_payment_auction,
                         "total_payment_auction");
  expect_stats_identical(a.total_payment_rit, b.total_payment_rit,
                         "total_payment_rit");
  expect_stats_identical(a.solicitation_premium, b.solicitation_premium,
                         "solicitation_premium");
  expect_stats_identical(a.tasks_allocated, b.tasks_allocated,
                         "tasks_allocated");
  EXPECT_EQ(a.trials, b.trials);
  EXPECT_EQ(a.successes, b.successes);
  EXPECT_EQ(a.degraded_trials, b.degraded_trials);
  EXPECT_EQ(a.failed_trials, b.failed_trials);
  EXPECT_EQ(a.quarantined_trials, b.quarantined_trials);
  EXPECT_TRUE(supervised.faults.empty());
}

}  // namespace
}  // namespace rit::platform
