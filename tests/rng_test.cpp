#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include "common/check.h"
#include "rng/rng.h"
#include "rng/splitmix64.h"
#include "rng/xoshiro256.h"

namespace rit::rng {
namespace {

TEST(SplitMix64, KnownVectors) {
  // Reference values from the public-domain splitmix64.c with seed 0.
  SplitMix64 sm(0);
  EXPECT_EQ(sm.next(), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(sm.next(), 0x6e789e6aa1b965f4ULL);
  EXPECT_EQ(sm.next(), 0x06c45d188009454fULL);
}

TEST(Xoshiro, DeterministicAcrossInstances) {
  Xoshiro256StarStar a(123);
  Xoshiro256StarStar b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro, DifferentSeedsDiverge) {
  Xoshiro256StarStar a(1);
  Xoshiro256StarStar b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LE(same, 1);
}

TEST(Xoshiro, JumpProducesDisjointLookingStreams) {
  Xoshiro256StarStar base(5);
  Xoshiro256StarStar jumped(5);
  jumped.jump();
  // The jumped stream must not collide with the base stream's prefix.
  std::set<std::uint64_t> prefix;
  Xoshiro256StarStar base_copy(5);
  for (int i = 0; i < 2000; ++i) prefix.insert(base_copy());
  for (int i = 0; i < 2000; ++i) {
    EXPECT_EQ(prefix.count(jumped()), 0u) << "collision at output " << i;
  }
  // And jumping is deterministic.
  Xoshiro256StarStar j2(5);
  j2.jump();
  Xoshiro256StarStar j3(5);
  j3.jump();
  for (int i = 0; i < 64; ++i) EXPECT_EQ(j2(), j3());
}

TEST(Xoshiro, JumpedStreamEventuallyMatchesLongRun) {
  // jump() is exactly 2^128 steps — far beyond direct verification, but a
  // double jump must differ from a single jump (the state really moved).
  Xoshiro256StarStar once(9);
  once.jump();
  Xoshiro256StarStar twice(9);
  twice.jump();
  twice.jump();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (once() == twice()) ++same;
  }
  EXPECT_LE(same, 1);
}

TEST(Rng, Uniform01InRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, Uniform01MeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform01();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformU64RespectsBound) {
  Rng rng(13);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.uniform_u64(17), 17u);
  }
}

TEST(Rng, UniformU64IsUnbiasedOverSmallBound) {
  Rng rng(17);
  std::array<int, 5> counts{};
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.uniform_u64(5)];
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 0.2, 0.01);
  }
}

TEST(Rng, UniformU64RejectsZeroBound) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform_u64(0), CheckFailure);
}

TEST(Rng, UniformIntCoversInclusiveRange) {
  Rng rng(19);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_int(-2, 2));
  EXPECT_EQ(seen, (std::set<std::int64_t>{-2, -1, 0, 1, 2}));
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(23);
  EXPECT_EQ(rng.uniform_int(5, 5), 5);
}

TEST(Rng, UniformRealLeftOpenExcludesLoIncludesHi) {
  Rng rng(29);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform_real_left_open(0.0, 10.0);
    EXPECT_GT(v, 0.0);
    EXPECT_LE(v, 10.0);
  }
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(31);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
    EXPECT_FALSE(rng.bernoulli(-0.5));
    EXPECT_TRUE(rng.bernoulli(1.5));
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(37);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ShufflePreservesMultiset) {
  Rng rng(41);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(std::span<int>(v));
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, ShuffleIsUniformOnPairs) {
  // Over many shuffles of {0,1,2}, each of the 6 permutations should appear
  // about 1/6 of the time.
  Rng rng(43);
  std::map<std::array<int, 3>, int> counts;
  const int n = 60000;
  for (int i = 0; i < n; ++i) {
    std::array<int, 3> v{0, 1, 2};
    rng.shuffle(std::span<int>(v.data(), v.size()));
    ++counts[v];
  }
  EXPECT_EQ(counts.size(), 6u);
  for (const auto& [perm, c] : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 1.0 / 6.0, 0.01);
  }
}

TEST(Rng, SampleWithoutReplacementDistinctAndInRange) {
  Rng rng(47);
  auto s = rng.sample_without_replacement(100, 30);
  EXPECT_EQ(s.size(), 30u);
  std::set<std::size_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 30u);
  for (std::size_t x : s) EXPECT_LT(x, 100u);
}

TEST(Rng, SampleWithoutReplacementFullSet) {
  Rng rng(53);
  auto s = rng.sample_without_replacement(10, 10);
  std::set<std::size_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 10u);
}

TEST(Rng, SampleWithoutReplacementRejectsOverdraw) {
  Rng rng(59);
  EXPECT_THROW(rng.sample_without_replacement(3, 4), CheckFailure);
}

TEST(Rng, SampleWithoutReplacementKZeroConsumesNoDraws) {
  // k == 0 must be a true no-op on the stream: mechanism paths branch on
  // "anything to sample?" and the branch must not desynchronize replay.
  Rng a(83);
  Rng b(83);
  std::vector<std::size_t> pool;
  std::vector<std::size_t> out{1, 2, 3};
  a.sample_without_replacement_into(17, 0, pool, out);
  EXPECT_TRUE(out.empty());  // cleared, not left over from the caller
  for (int i = 0; i < 8; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, SampleWithoutReplacementEmptyPool) {
  // n == 0, k == 0: legal, empty, and draw-free.
  Rng a(89);
  Rng b(89);
  auto s = a.sample_without_replacement(0, 0);
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, SampleWithoutReplacementFullSetIsAPermutation) {
  // k == n selects every index exactly once, in Fisher-Yates order; the
  // final step still draws (uniform_index(1)), which is part of the
  // stream contract the differential oracle mirrors.
  Rng rng(97);
  Rng untouched(97);
  const auto s = rng.sample_without_replacement(9, 9);
  std::vector<std::size_t> sorted(s.begin(), s.end());
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 0; i < sorted.size(); ++i) EXPECT_EQ(sorted[i], i);
  EXPECT_NE(rng.next_u64(), untouched.next_u64());  // draws were consumed
}

TEST(Rng, SampleWithoutReplacementIntoMatchesAllocatingForm) {
  // The buffer-reusing form consumes the same draws and produces the same
  // selection, including when the buffers are reused across differently
  // sized requests (capacity must never leak into the result).
  Rng a(67);
  Rng b(67);
  std::vector<std::size_t> pool;
  std::vector<std::size_t> out;
  const std::pair<std::size_t, std::size_t> requests[] = {
      {100, 30}, {10, 10}, {100, 1}, {5, 0}};
  for (const auto& [n, k] : requests) {
    const auto fresh = a.sample_without_replacement(n, k);
    b.sample_without_replacement_into(n, k, pool, out);
    EXPECT_EQ(out, fresh) << "n=" << n << " k=" << k;
  }
}

TEST(Rng, SampleWithoutReplacementIntoRejectsOverdraw) {
  Rng rng(71);
  std::vector<std::size_t> pool;
  std::vector<std::size_t> out;
  EXPECT_THROW(rng.sample_without_replacement_into(3, 4, pool, out),
               CheckFailure);
}

TEST(Rng, SampleWithoutReplacementIsUniform) {
  Rng rng(61);
  std::array<int, 5> counts{};
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    for (std::size_t x : rng.sample_without_replacement(5, 2)) ++counts[x];
  }
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 0.4, 0.02);
  }
}

TEST(Rng, SplitStreamsAreIndependent) {
  Rng parent(71);
  Rng child = parent.split();
  // The child stream should not be a shifted copy of the parent stream.
  Rng parent2(71);
  parent2.next_u64();  // advance past the split draw
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (child.next_u64() == parent2.next_u64()) ++same;
  }
  EXPECT_LE(same, 1);
}

TEST(Rng, SplitIsDeterministic) {
  Rng a(99);
  Rng b(99);
  Rng ca = a.split();
  Rng cb = b.split();
  for (int i = 0; i < 32; ++i) EXPECT_EQ(ca.next_u64(), cb.next_u64());
}

}  // namespace
}  // namespace rit::rng
