#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "attack/bid_strategies.h"
#include "attack/sybil_apply.h"
#include "attack/sybil_plan.h"
#include "common/check.h"
#include "tree/builders.h"
#include "tree/incentive_tree.h"

namespace rit::attack {
namespace {

using core::Ask;
using rit::TaskType;

// platform -> {P0, P1}, P0 -> {P2, P3}; victim P0 has children P2, P3.
struct Fixture {
  tree::IncentiveTree tree{std::vector<std::uint32_t>{0, 0, 0, 1, 1}};
  std::vector<Ask> asks{
      {TaskType{0}, 6, 5.0},
      {TaskType{1}, 2, 3.0},
      {TaskType{1}, 3, 4.0},
      {TaskType{0}, 1, 2.0},
  };
};

TEST(SybilPlan, ChainPlanShape) {
  Fixture f;
  const SybilPlan plan = chain_plan(f.tree, f.asks, 0, 3, 7.5);
  EXPECT_EQ(plan.delta(), 3u);
  EXPECT_EQ(plan.total_quantity(), 6u);
  EXPECT_EQ(plan.identities[0].parent, kOriginalParent);
  EXPECT_EQ(plan.identities[1].parent, 1u);
  EXPECT_EQ(plan.identities[2].parent, 2u);
  for (const auto& id : plan.identities) {
    EXPECT_EQ(id.value, 7.5);
    EXPECT_EQ(id.quantity, 2u);
  }
  // Children adopted by the deepest identity.
  EXPECT_EQ(plan.child_assignment, (std::vector<std::uint32_t>{3, 3}));
}

TEST(SybilPlan, StarPlanShape) {
  Fixture f;
  const SybilPlan plan = star_plan(f.tree, f.asks, 0, 2, 5.0);
  EXPECT_EQ(plan.identities[0].parent, kOriginalParent);
  EXPECT_EQ(plan.identities[1].parent, kOriginalParent);
  EXPECT_EQ(plan.identities[0].quantity, 3u);
  EXPECT_EQ(plan.identities[1].quantity, 3u);
  EXPECT_EQ(plan.child_assignment, (std::vector<std::uint32_t>{1, 2}));
}

TEST(SybilPlan, EvenSplitWithRemainder) {
  Fixture f;
  f.asks[0].quantity = 7;
  const SybilPlan plan = chain_plan(f.tree, f.asks, 0, 3, 5.0);
  EXPECT_EQ(plan.identities[0].quantity, 3u);
  EXPECT_EQ(plan.identities[1].quantity, 2u);
  EXPECT_EQ(plan.identities[2].quantity, 2u);
}

TEST(SybilPlan, RandomPlanIsValidAcrossSeeds) {
  Fixture f;
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    rng::Rng rng(seed);
    const SybilPlan plan = random_plan(f.tree, f.asks, 0, 4, 5.5, rng);
    EXPECT_EQ(plan.delta(), 4u);
    EXPECT_EQ(plan.total_quantity(), 6u);
    // validate_plan is called inside random_plan; re-validate explicitly.
    EXPECT_NO_THROW(validate_plan(f.tree, f.asks, plan, 6));
  }
}

TEST(SybilPlan, RandomPlanSplitsArePositive) {
  Fixture f;
  rng::Rng rng(7);
  const SybilPlan plan = random_plan(f.tree, f.asks, 0, 6, 5.5, rng);
  for (const auto& id : plan.identities) EXPECT_GE(id.quantity, 1u);
}

TEST(SybilPlan, TooManyIdentitiesRejected) {
  Fixture f;
  rng::Rng rng(1);
  EXPECT_THROW(random_plan(f.tree, f.asks, 3, 2, 5.0, rng), CheckFailure);
}

TEST(SybilPlan, ValidatorCatchesBadPlans) {
  Fixture f;
  SybilPlan plan;
  plan.victim = 0;
  plan.identities = {{3, 5.0, kOriginalParent}, {3, 5.0, 1}};
  plan.child_assignment = {1, 2};
  EXPECT_NO_THROW(validate_plan(f.tree, f.asks, plan, 6));
  // Over capability.
  EXPECT_THROW(validate_plan(f.tree, f.asks, plan, 5), CheckFailure);
  // Forward-referencing identity parent.
  plan.identities[0].parent = 2;
  EXPECT_THROW(validate_plan(f.tree, f.asks, plan, 6), CheckFailure);
  plan.identities[0].parent = kOriginalParent;
  // Child assigned to nonexistent identity.
  plan.child_assignment = {1, 3};
  EXPECT_THROW(validate_plan(f.tree, f.asks, plan, 6), CheckFailure);
  // Wrong number of child assignments.
  plan.child_assignment = {1};
  EXPECT_THROW(validate_plan(f.tree, f.asks, plan, 6), CheckFailure);
}

TEST(SybilApply, ChainRewiresTreeCorrectly) {
  Fixture f;
  const SybilPlan plan = chain_plan(f.tree, f.asks, 0, 2, 7.0);
  const AttackedInstance inst = apply_sybil(f.tree, f.asks, plan);
  // 4 original participants -> 5 after the split.
  EXPECT_EQ(inst.asks.size(), 5u);
  EXPECT_EQ(inst.tree.num_participants(), 5u);
  EXPECT_EQ(inst.identity_participants, (std::vector<std::uint32_t>{0, 4}));
  // Identity 1 sits where the victim was (child of the platform).
  EXPECT_EQ(inst.tree.parent(tree::node_of_participant(0)), 0u);
  // Identity 2 hangs below identity 1.
  EXPECT_EQ(inst.tree.parent(tree::node_of_participant(4)),
            tree::node_of_participant(0));
  // The victim's children were adopted by the deepest identity.
  EXPECT_EQ(inst.tree.parent(tree::node_of_participant(2)),
            tree::node_of_participant(4));
  EXPECT_EQ(inst.tree.parent(tree::node_of_participant(3)),
            tree::node_of_participant(4));
  // Other users untouched.
  EXPECT_EQ(inst.tree.parent(tree::node_of_participant(1)), 0u);
}

TEST(SybilApply, AsksCarryIdentityValuesAndType) {
  Fixture f;
  const SybilPlan plan = star_plan(f.tree, f.asks, 0, 2, 6.25);
  const AttackedInstance inst = apply_sybil(f.tree, f.asks, plan);
  for (std::uint32_t p : inst.identity_participants) {
    EXPECT_EQ(inst.asks[p].type, TaskType{0});
    EXPECT_EQ(inst.asks[p].value, 6.25);
    EXPECT_EQ(inst.asks[p].quantity, 3u);
  }
  // Non-victims keep their asks verbatim.
  EXPECT_EQ(inst.asks[1], f.asks[1]);
  EXPECT_EQ(inst.asks[2], f.asks[2]);
  EXPECT_EQ(inst.asks[3], f.asks[3]);
}

TEST(SybilApply, DepthsShiftOnlyUnderAdoptingIdentities) {
  Fixture f;
  const SybilPlan plan = chain_plan(f.tree, f.asks, 0, 3, 5.0);
  const AttackedInstance inst = apply_sybil(f.tree, f.asks, plan);
  // Victim's children dropped from depth 2 to depth 2 + (3-1) = 4.
  EXPECT_EQ(inst.tree.depth(tree::node_of_participant(2)), 4u);
  // The sibling P1 stays at depth 1.
  EXPECT_EQ(inst.tree.depth(tree::node_of_participant(1)), 1u);
}

TEST(SybilApply, SingleIdentityIsStructurallyIdentity) {
  Fixture f;
  SybilPlan plan;
  plan.victim = 0;
  plan.identities = {{6, 5.0, kOriginalParent}};
  plan.child_assignment = {1, 1};
  const AttackedInstance inst = apply_sybil(f.tree, f.asks, plan);
  EXPECT_EQ(inst.tree.parents(), f.tree.parents());
  EXPECT_EQ(inst.asks.size(), f.asks.size());
  for (std::size_t j = 0; j < f.asks.size(); ++j) {
    EXPECT_EQ(inst.asks[j], f.asks[j]);
  }
}

TEST(SybilApply, AttackerUtilityAggregatesIdentities) {
  Fixture f;
  const SybilPlan plan = star_plan(f.tree, f.asks, 0, 2, 5.0);
  const AttackedInstance inst = apply_sybil(f.tree, f.asks, plan);
  std::vector<double> payments(5, 0.0);
  std::vector<std::uint32_t> allocations(5, 0);
  payments[0] = 10.0;  // identity 1
  payments[4] = 4.0;   // identity 2
  allocations[0] = 2;
  payments[1] = 100.0;  // unrelated user, must not count
  EXPECT_DOUBLE_EQ(inst.attacker_utility(payments, allocations, 3.0),
                   10.0 + 4.0 - 2 * 3.0);
}

TEST(BidStrategies, WithAskValueAndQuantity) {
  Fixture f;
  const auto v = with_ask_value(f.asks, 1, 9.9);
  EXPECT_EQ(v[1].value, 9.9);
  EXPECT_EQ(v[1].quantity, f.asks[1].quantity);
  EXPECT_EQ(v[0], f.asks[0]);
  const auto q = with_quantity(f.asks, 2, 1);
  EXPECT_EQ(q[2].quantity, 1u);
  EXPECT_EQ(q[2].value, f.asks[2].value);
  EXPECT_THROW(with_ask_value(f.asks, 9, 1.0), CheckFailure);
  EXPECT_THROW(with_ask_value(f.asks, 0, 0.0), CheckFailure);
  EXPECT_THROW(with_quantity(f.asks, 0, 0), CheckFailure);
}

TEST(BidStrategies, DeviationGridBracketsTheCost) {
  const auto grid = deviation_grid(4.0);
  EXPECT_GE(grid.size(), 5u);
  bool below = false;
  bool above = false;
  for (double g : grid) {
    EXPECT_GT(g, 0.0);
    below |= g < 4.0;
    above |= g > 4.0;
  }
  EXPECT_TRUE(below);
  EXPECT_TRUE(above);
}

TEST(BidStrategies, RandomDeviationStaysInRange) {
  rng::Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double d = random_deviation(5.0, 10.0, rng);
    EXPECT_GT(d, 0.0);
    EXPECT_LE(d, 10.0);
  }
}

}  // namespace
}  // namespace rit::attack
