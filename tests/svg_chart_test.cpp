#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "cli/svg_chart.h"
#include "common/check.h"

namespace rit::cli {
namespace {

Series simple_series() {
  Series s;
  s.label = "RIT";
  s.points = {{0.0, 1.0}, {1.0, 2.0}, {2.0, 1.5}};
  return s;
}

TEST(NiceTickStep, PicksOneTwoFiveSteps) {
  EXPECT_DOUBLE_EQ(nice_tick_step(0.0, 10.0, 5), 2.0);
  EXPECT_DOUBLE_EQ(nice_tick_step(0.0, 100.0, 5), 20.0);
  EXPECT_DOUBLE_EQ(nice_tick_step(0.0, 1.0, 5), 0.2);
  EXPECT_DOUBLE_EQ(nice_tick_step(0.0, 7.0, 7), 1.0);
  EXPECT_DOUBLE_EQ(nice_tick_step(0.0, 45000.0, 6), 10000.0);
}

TEST(SvgChart, WellFormedDocument) {
  ChartOptions opts;
  opts.title = "Test chart";
  opts.x_label = "x";
  opts.y_label = "y";
  const std::string svg = render_line_chart({simple_series()}, opts);
  EXPECT_EQ(svg.rfind("<svg", 0), 0u);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  EXPECT_NE(svg.find("Test chart"), std::string::npos);
  EXPECT_NE(svg.find("<polyline"), std::string::npos);
  EXPECT_NE(svg.find("RIT"), std::string::npos);
  // One marker circle per point.
  int circles = 0;
  for (auto pos = svg.find("<circle"); pos != std::string::npos;
       pos = svg.find("<circle", pos + 1)) {
    ++circles;
  }
  EXPECT_EQ(circles, 3);
}

TEST(SvgChart, EscapesXmlInLabels) {
  ChartOptions opts;
  opts.title = "a < b & c";
  const std::string svg = render_line_chart({simple_series()}, opts);
  EXPECT_NE(svg.find("a &lt; b &amp; c"), std::string::npos);
  EXPECT_EQ(svg.find("a < b & c"), std::string::npos);
}

TEST(SvgChart, MultipleSeriesGetDistinctColors) {
  Series a = simple_series();
  a.label = "first";
  Series b = simple_series();
  b.label = "second";
  for (auto& [x, y] : b.points) y += 1.0;
  const std::string svg = render_line_chart({a, b}, {});
  EXPECT_NE(svg.find("#1f78b4"), std::string::npos);
  EXPECT_NE(svg.find("#e31a1c"), std::string::npos);
  EXPECT_NE(svg.find("first"), std::string::npos);
  EXPECT_NE(svg.find("second"), std::string::npos);
}

TEST(SvgChart, IncludeZeroYPutsZeroTickIn) {
  Series s;
  s.label = "high";
  // x values away from zero so the only possible "0" tick is on the y axis.
  s.points = {{10.0, 100.0}, {11.0, 110.0}};
  ChartOptions opts;
  opts.include_zero_y = true;
  const std::string with_zero = render_line_chart({s}, opts);
  EXPECT_NE(with_zero.find(">0<"), std::string::npos);
  opts.include_zero_y = false;
  const std::string without = render_line_chart({s}, opts);
  EXPECT_EQ(without.find(">0<"), std::string::npos);
}

TEST(SvgChart, DegenerateInputsHandled) {
  // Single point, flat series: still a valid document, no NaNs.
  Series s;
  s.label = "dot";
  s.points = {{5.0, 5.0}};
  const std::string svg = render_line_chart({s}, {});
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  EXPECT_EQ(svg.find("nan"), std::string::npos);
  EXPECT_EQ(svg.find("inf"), std::string::npos);
}

TEST(SvgChart, RejectsBadInput) {
  EXPECT_THROW(render_line_chart({}, {}), CheckFailure);
  Series empty;
  empty.label = "none";
  EXPECT_THROW(render_line_chart({empty}, {}), CheckFailure);
  Series nan_series;
  nan_series.label = "nan";
  nan_series.points = {{0.0, std::numeric_limits<double>::quiet_NaN()}};
  EXPECT_THROW(render_line_chart({nan_series}, {}), CheckFailure);
}

TEST(SvgChart, WritesFile) {
  const std::string path = ::testing::TempDir() + "/ritcs_chart_test.svg";
  write_line_chart(path, {simple_series()}, {});
  std::ifstream in(path);
  std::string all((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  EXPECT_NE(all.find("<svg"), std::string::npos);
  std::remove(path.c_str());
  // The atomic writer creates missing parent directories (and tests run as
  // root), so an unwritable destination needs a regular file standing where
  // a directory must go — ENOTDIR fails for root too.
  const std::string blocker = ::testing::TempDir() + "/ritcs_chart_blocker";
  std::filesystem::remove_all(blocker);  // clear any stale leftover
  write_line_chart(blocker, {simple_series()}, {});
  EXPECT_THROW(write_line_chart(blocker + "/x.svg", {simple_series()}, {}),
               CheckFailure);
  std::remove(blocker.c_str());
}

TEST(SvgChart, SortsPointsByX) {
  Series s;
  s.label = "unsorted";
  s.points = {{2.0, 1.0}, {0.0, 1.0}, {1.0, 1.0}};
  const std::string svg = render_line_chart({s}, {});
  // The polyline x coordinates must appear in increasing order.
  const auto poly = svg.find("points=\"");
  ASSERT_NE(poly, std::string::npos);
  const auto end = svg.find('"', poly + 8);
  const std::string pts = svg.substr(poly + 8, end - poly - 8);
  double prev = -1.0;
  std::istringstream is(pts);
  std::string pair;
  while (is >> pair) {
    const double x = std::stod(pair.substr(0, pair.find(',')));
    EXPECT_GE(x, prev);
    prev = x;
  }
}

}  // namespace
}  // namespace rit::cli
