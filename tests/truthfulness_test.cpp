// Statistical truthfulness tests (Lemma 6.3 / Theorem 2).
//
// RIT is (K_max, H)-truthful: with probability >= H no deviation from the
// true cost helps. We verify the consequence that matters to a bidder —
// deviating does not pay in expectation — with paired mechanism seeds
// (common random numbers), which cancels most of the run-to-run noise:
// in the >= H fraction of realizations where the consensus is stable, the
// truthful and deviating runs produce identical prices and the paired
// difference is dominated by allocation changes that truthfulness bounds.
#include <gtest/gtest.h>

#include <vector>

#include "attack/bid_strategies.h"
#include "core/rit.h"
#include "rng/rng.h"
#include "stats/online_stats.h"
#include "tree/builders.h"

namespace rit::core {
namespace {

// A single-type instance with healthy consensus parameters:
// m_i = 120, K_max = 3 (2*K/m = 0.05), supply ~2.5x demand.
struct HealthyInstance {
  Job job{std::vector<std::uint32_t>{120}};
  std::vector<Ask> asks;
  std::uint32_t probe;  // the user whose incentives we probe
  double probe_cost;

  explicit HealthyInstance(std::uint64_t seed) {
    rng::Rng rng(seed);
    const std::uint32_t n = 200;
    for (std::uint32_t j = 0; j < n; ++j) {
      asks.push_back(Ask{TaskType{0},
                         static_cast<std::uint32_t>(rng.uniform_int(1, 3)),
                         rng.uniform_real_left_open(0.0, 10.0)});
    }
    // Probe a user whose cost sits in the competitive band (likely winner).
    probe = 0;
    for (std::uint32_t j = 1; j < n; ++j) {
      const double target = 3.0;
      if (std::abs(asks[j].value - target) <
          std::abs(asks[probe].value - target)) {
        probe = j;
      }
    }
    probe_cost = asks[probe].value;
  }
};

// Paired-mean utility gain of bidding `deviation` instead of the cost.
struct GainEstimate {
  double mean;
  double slack;  // 95% CI half-width of the paired differences
  double truthful_mean;
};

GainEstimate estimate_gain(const HealthyInstance& inst, double deviation,
                           int trials) {
  stats::OnlineStats diff;
  stats::OnlineStats truthful_stats;
  const auto deviated =
      attack::with_ask_value(inst.asks, inst.probe, deviation);
  for (int t = 0; t < trials; ++t) {
    const std::uint64_t seed = 0xbead + static_cast<std::uint64_t>(t) * 7;
    double truthful_u;
    double deviated_u;
    {
      rng::Rng rng(seed);
      const RitResult r = run_auction_phase(inst.job, inst.asks, RitConfig{}, rng);
      truthful_u = r.utility_of(inst.probe, inst.probe_cost);
    }
    {
      rng::Rng rng(seed);
      const RitResult r = run_auction_phase(inst.job, deviated, RitConfig{}, rng);
      deviated_u = r.utility_of(inst.probe, inst.probe_cost);
    }
    diff.add(deviated_u - truthful_u);
    truthful_stats.add(truthful_u);
  }
  return GainEstimate{diff.mean(), diff.ci95_half_width(),
                      truthful_stats.mean()};
}

class DeviationSweep : public ::testing::TestWithParam<double> {};

INSTANTIATE_TEST_SUITE_P(Factors, DeviationSweep,
                         ::testing::Values(0.25, 0.5, 0.8, 0.95, 1.05, 1.25,
                                           1.5, 2.0, 4.0));

TEST_P(DeviationSweep, DeviatingFromCostDoesNotPayInExpectation) {
  const HealthyInstance inst(21);
  const double deviation = inst.probe_cost * GetParam();
  const GainEstimate g = estimate_gain(inst, deviation, 400);
  // Tolerate CI slack plus a small absolute epsilon for the <= (1-H)
  // failure probability mass.
  EXPECT_LE(g.mean, g.slack + 0.08)
      << "deviation factor " << GetParam() << ": mean gain " << g.mean
      << " (truthful mean utility " << g.truthful_mean << ")";
}

TEST(Truthfulness, UnderreportingQuantityDoesNotPayInExpectation) {
  const HealthyInstance inst(22);
  if (inst.asks[inst.probe].quantity < 2) GTEST_SKIP();
  stats::OnlineStats diff;
  const auto deviated = attack::with_quantity(inst.asks, inst.probe, 1);
  for (int t = 0; t < 400; ++t) {
    const std::uint64_t seed = 0xfeedf00d + static_cast<std::uint64_t>(t);
    double truthful_u;
    double deviated_u;
    {
      rng::Rng rng(seed);
      const RitResult r = run_auction_phase(inst.job, inst.asks, RitConfig{}, rng);
      truthful_u = r.utility_of(inst.probe, inst.probe_cost);
    }
    {
      rng::Rng rng(seed);
      const RitResult r = run_auction_phase(inst.job, deviated, RitConfig{}, rng);
      deviated_u = r.utility_of(inst.probe, inst.probe_cost);
    }
    diff.add(deviated_u - truthful_u);
  }
  EXPECT_LE(diff.mean(), diff.ci95_half_width() + 0.08);
}

TEST(Truthfulness, RandomDeviationsDoNotPayInExpectation) {
  const HealthyInstance inst(23);
  rng::Rng dev_rng(77);
  for (int d = 0; d < 5; ++d) {
    const double deviation =
        attack::random_deviation(inst.probe_cost, 10.0, dev_rng);
    const GainEstimate g = estimate_gain(inst, deviation, 250);
    EXPECT_LE(g.mean, g.slack + 0.08) << "deviation " << deviation;
  }
}

// The structural half of Lemma 6.3: a user's own ask never influences the
// solicitation part of its payment, because descendants of its own type are
// excluded and other types run disjoint auctions. With a fixed seed, the
// tree reward of the probe is bit-identical across its own deviations.
TEST(Truthfulness, OwnBidNeverMovesOwnTreeReward) {
  rng::Rng rng_setup(31);
  const std::uint32_t n = 150;
  std::vector<Ask> asks;
  for (std::uint32_t j = 0; j < n; ++j) {
    asks.push_back(Ask{TaskType{j % 2},
                       static_cast<std::uint32_t>(rng_setup.uniform_int(1, 3)),
                       rng_setup.uniform_real_left_open(0.0, 10.0)});
  }
  const Job job = Job::uniform(2, 30);
  const auto t = tree::random_recursive_tree(n, 0.2, rng_setup);
  const std::uint32_t probe = 5;
  RitConfig cfg;
  cfg.round_budget_policy = RoundBudgetPolicy::kRunToCompletion;
  auto tree_reward = [&](double bid) {
    const auto bids = attack::with_ask_value(asks, probe, bid);
    rng::Rng rng(0x7777);
    const RitResult r = run_rit(job, bids, t, cfg, rng);
    if (!r.success) return -1.0;
    return r.payment[probe] - r.auction_payment[probe];
  };
  const double base = tree_reward(asks[probe].value);
  if (base < 0.0) GTEST_SKIP() << "allocation failed";
  for (double bid : {0.5, 2.0, 7.5}) {
    const double reward = tree_reward(bid);
    if (reward < 0.0) continue;
    // Equal up to prefix-sum reconstruction noise: the probe's own auction
    // payment differs across bids, and although it cancels exactly in real
    // arithmetic, the O(N) prefix-sum path reconstructs it to within ulps.
    EXPECT_NEAR(reward, base, 1e-9 * (1.0 + base)) << "bid " << bid;
  }
}

}  // namespace
}  // namespace rit::core
