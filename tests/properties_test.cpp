// Property tests for the paper's theorems that admit per-run (pathwise)
// verification: individual rationality (Thm 1), the budget bound (Sec. 7-C),
// and solicitation incentive (Thm 4). Statistical properties (truthfulness,
// sybil-proofness) live in truthfulness_test.cpp / sybil_properties_test.cpp.
#include <gtest/gtest.h>

#include <vector>

#include "core/payment.h"
#include "core/rit.h"
#include "rng/rng.h"
#include "tree/builders.h"

namespace rit::core {
namespace {

struct RandomInstance {
  Job job;
  std::vector<Ask> asks;
  std::vector<double> costs;
  tree::IncentiveTree tree;
};

RandomInstance make_random_instance(std::uint64_t seed) {
  rng::Rng rng(seed);
  const auto num_types = static_cast<std::uint32_t>(1 + rng.uniform_index(4));
  const auto n = static_cast<std::uint32_t>(50 + rng.uniform_index(300));
  std::vector<std::uint32_t> demand(num_types);
  for (auto& d : demand) {
    d = static_cast<std::uint32_t>(5 + rng.uniform_index(30));
  }
  std::vector<Ask> asks;
  std::vector<double> costs;
  for (std::uint32_t j = 0; j < n; ++j) {
    const double cost = rng.uniform_real_left_open(0.0, 10.0);
    asks.push_back(Ask{
        TaskType{static_cast<std::uint32_t>(rng.uniform_index(num_types))},
        static_cast<std::uint32_t>(rng.uniform_int(1, 4)), cost});
    costs.push_back(cost);
  }
  auto tree = tree::random_recursive_tree(n, 0.15, rng);
  return RandomInstance{Job(std::move(demand)), std::move(asks),
                        std::move(costs), std::move(tree)};
}

class SeededProperty : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, SeededProperty,
                         ::testing::Range<std::uint64_t>(0, 25));

// Theorem 1: U_j(t_j, k_j, c_j) >= 0 — with truthful asks no user ever ends
// up below zero, whether the run succeeds (payments >= auction payments >=
// cost) or fails (all-zero).
TEST_P(SeededProperty, IndividualRationalityUnderTruthfulBidding) {
  const RandomInstance inst = make_random_instance(GetParam());
  rng::Rng rng(GetParam() ^ 0xabcdef);
  const RitResult r =
      run_rit(inst.job, inst.asks, inst.tree, RitConfig{}, rng);
  for (std::uint32_t j = 0; j < inst.asks.size(); ++j) {
    EXPECT_GE(r.utility_of(j, inst.costs[j]), -1e-9)
        << "user " << j << " seed " << GetParam();
  }
}

// Lemma 6.1 specialized: auction payments cover costs per user even on
// partial (diagnostic, zero_on_failure=false) runs.
TEST_P(SeededProperty, AuctionPaymentsCoverCosts) {
  const RandomInstance inst = make_random_instance(GetParam());
  rng::Rng rng(GetParam() ^ 0x123456);
  RitConfig cfg;
  cfg.zero_on_failure = false;
  const RitResult r = run_auction_phase(inst.job, inst.asks, cfg, rng);
  for (std::uint32_t j = 0; j < inst.asks.size(); ++j) {
    EXPECT_GE(r.auction_payment[j],
              static_cast<double>(r.allocation[j]) * inst.costs[j] - 1e-9);
  }
}

// Sec. 7-C budget bound: the platform's solicitation premium never exceeds
// the total auction payment.
TEST_P(SeededProperty, SolicitationPremiumBoundedByAuctionTotal) {
  const RandomInstance inst = make_random_instance(GetParam());
  rng::Rng rng(GetParam() ^ 0x777);
  const RitResult r =
      run_rit(inst.job, inst.asks, inst.tree, RitConfig{}, rng);
  const double premium =
      solicitation_premium(r.payment, r.auction_payment);
  EXPECT_GE(premium, -1e-9);
  EXPECT_LE(premium, r.total_auction_payment() + 1e-9);
}

// Theorem 4 (solicitation incentive): when a new user is about to join, an
// existing user prefers the joiner as its own child over anyone else's.
// With a fixed mechanism seed the auction phase is identical under every
// placement of the (last-indexed) joiner, so the comparison is exact.
TEST_P(SeededProperty, SolicitationIncentive) {
  const RandomInstance base = make_random_instance(GetParam());
  rng::Rng placement_rng(GetParam() ^ 0x5151);
  const auto n = static_cast<std::uint32_t>(base.asks.size());

  // The joiner: a fresh user with a random ask.
  std::vector<Ask> asks = base.asks;
  asks.push_back(
      Ask{TaskType{static_cast<std::uint32_t>(
              placement_rng.uniform_index(base.job.num_types()))},
          2, placement_rng.uniform_real_left_open(0.0, 10.0)});

  const std::uint32_t watcher =
      static_cast<std::uint32_t>(placement_rng.uniform_index(n));
  const std::uint32_t other =
      static_cast<std::uint32_t>(placement_rng.uniform_index(n));

  auto utility_with_parent = [&](std::uint32_t parent_node) {
    std::vector<std::uint32_t> parents = base.tree.parents();
    parents.push_back(parent_node);
    const tree::IncentiveTree t(std::move(parents));
    rng::Rng rng(GetParam() ^ 0x9e37);  // same stream for every placement
    const RitResult r = run_rit(base.job, asks, t, RitConfig{}, rng);
    return r.utility_of(watcher, base.costs[watcher]);
  };

  const double as_own_child =
      utility_with_parent(tree::node_of_participant(watcher));
  const double as_others_child =
      utility_with_parent(tree::node_of_participant(other));
  const double as_platform_child = utility_with_parent(0);
  if (other != watcher) {
    EXPECT_GE(as_own_child, as_others_child - 1e-9) << "seed " << GetParam();
  }
  EXPECT_GE(as_own_child, as_platform_child - 1e-9) << "seed " << GetParam();
}

// Failure semantics: whenever success is false everything is zero, and
// whenever it is true the job is exactly covered.
TEST_P(SeededProperty, SuccessIsExactCoverageFailureIsAllZero) {
  const RandomInstance inst = make_random_instance(GetParam());
  rng::Rng rng(GetParam() ^ 0xfeed);
  const RitResult r =
      run_rit(inst.job, inst.asks, inst.tree, RitConfig{}, rng);
  std::uint64_t total = 0;
  for (std::uint32_t x : r.allocation) total += x;
  if (r.success) {
    EXPECT_EQ(total, inst.job.total_tasks());
  } else {
    EXPECT_EQ(total, 0u);
    EXPECT_EQ(r.total_payment(), 0.0);
  }
}

// Payment monotonicity: p_j >= p_j^A for every user on successful runs.
TEST_P(SeededProperty, TreeRewardsAreNonNegative) {
  const RandomInstance inst = make_random_instance(GetParam());
  rng::Rng rng(GetParam() ^ 0xc0ffee);
  const RitResult r =
      run_rit(inst.job, inst.asks, inst.tree, RitConfig{}, rng);
  for (std::size_t j = 0; j < inst.asks.size(); ++j) {
    EXPECT_GE(r.payment[j], r.auction_payment[j] - 1e-12);
  }
}

// Underreporting capability (claiming k < K) never helps in the sense that
// the allocation never exceeds the claim — the mechanism cannot force work
// beyond what a user offered.
TEST_P(SeededProperty, AllocationRespectsClaimedQuantity) {
  const RandomInstance inst = make_random_instance(GetParam());
  rng::Rng rng(GetParam() ^ 0xd00d);
  RitConfig cfg;
  cfg.zero_on_failure = false;
  const RitResult r = run_auction_phase(inst.job, inst.asks, cfg, rng);
  for (std::size_t j = 0; j < inst.asks.size(); ++j) {
    EXPECT_LE(r.allocation[j], inst.asks[j].quantity);
  }
}

}  // namespace
}  // namespace rit::core
