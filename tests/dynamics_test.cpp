#include <gtest/gtest.h>

#include <algorithm>

#include "common/check.h"
#include "core/rit.h"
#include "graph/generators.h"
#include "sim/dynamics.h"
#include "sim/failures.h"
#include "sim/runner.h"

namespace rit::sim {
namespace {

Population quick_population(std::uint32_t n, std::uint32_t num_types,
                            std::uint64_t seed) {
  Scenario s;
  s.num_users = n;
  s.num_types = num_types;
  s.k_max = 3;
  rng::Rng rng(seed);
  return generate_population(s, rng);
}

TEST(Dynamics, FullCascadeOnAlwaysAccept) {
  const graph::Graph g = graph::path(30);
  const Population pop = quick_population(30, 1, 1);
  DynamicsOptions opts;
  opts.acceptance_prob = 1.0;
  rng::Rng rng(2);
  const DynamicsResult res = simulate_solicitation(g, pop, nullptr, opts, rng);
  EXPECT_EQ(res.joined.size(), 30u);
  EXPECT_EQ(res.stop_reason, DynamicsResult::StopReason::kCascadeDied);
  EXPECT_EQ(res.tree.num_participants(), 30u);
  // A path joined in order produces the chain tree.
  EXPECT_EQ(res.tree.max_depth(), 30u);
}

TEST(Dynamics, JoinTimesAreMonotoneAndStartAtZero) {
  rng::Rng graph_rng(3);
  const graph::Graph g = graph::barabasi_albert(300, 3, graph_rng);
  const Population pop = quick_population(300, 2, 4);
  DynamicsOptions opts;
  opts.seeds = {0, 1};
  rng::Rng rng(5);
  const DynamicsResult res = simulate_solicitation(g, pop, nullptr, opts, rng);
  ASSERT_GE(res.join_time.size(), 2u);
  EXPECT_EQ(res.join_time[0], 0.0);
  EXPECT_TRUE(std::is_sorted(res.join_time.begin(), res.join_time.end()));
  EXPECT_GE(res.end_time, res.join_time.back());
}

TEST(Dynamics, JoinedByCountsPrefix) {
  const graph::Graph g = graph::path(10);
  const Population pop = quick_population(10, 1, 6);
  DynamicsOptions opts;
  opts.acceptance_prob = 1.0;
  rng::Rng rng(7);
  const DynamicsResult res = simulate_solicitation(g, pop, nullptr, opts, rng);
  EXPECT_EQ(res.joined_by(-1.0), 0u);
  EXPECT_EQ(res.joined_by(0.0), 1u);  // the seed
  EXPECT_EQ(res.joined_by(res.end_time + 1.0), res.joined.size());
  for (std::size_t i = 0; i < res.join_time.size(); ++i) {
    EXPECT_GE(res.joined_by(res.join_time[i]), i + 1);
  }
}

TEST(Dynamics, ZeroAcceptanceLeavesOnlySeeds) {
  const graph::Graph g = graph::star(20);
  const Population pop = quick_population(20, 1, 8);
  DynamicsOptions opts;
  opts.acceptance_prob = 0.0;
  opts.seeds = {0};
  rng::Rng rng(9);
  const DynamicsResult res = simulate_solicitation(g, pop, nullptr, opts, rng);
  EXPECT_EQ(res.joined.size(), 1u);
  EXPECT_EQ(res.stop_reason, DynamicsResult::StopReason::kCascadeDied);
}

TEST(Dynamics, MaxUsersStopsTheCascade) {
  const graph::Graph g = graph::complete(40);
  const Population pop = quick_population(40, 1, 10);
  DynamicsOptions opts;
  opts.acceptance_prob = 1.0;
  opts.max_users = 12;
  rng::Rng rng(11);
  const DynamicsResult res = simulate_solicitation(g, pop, nullptr, opts, rng);
  EXPECT_EQ(res.joined.size(), 12u);
  EXPECT_EQ(res.stop_reason, DynamicsResult::StopReason::kMaxUsers);
}

TEST(Dynamics, DeadlineStopsTheCascade) {
  const graph::Graph g = graph::path(500);
  const Population pop = quick_population(500, 1, 12);
  DynamicsOptions opts;
  opts.acceptance_prob = 1.0;
  opts.deadline = 5.0;
  rng::Rng rng(13);
  const DynamicsResult res = simulate_solicitation(g, pop, nullptr, opts, rng);
  EXPECT_EQ(res.stop_reason, DynamicsResult::StopReason::kDeadline);
  EXPECT_LT(res.joined.size(), 500u);
  for (double t : res.join_time) EXPECT_LE(t, 5.0);
}

TEST(Dynamics, SupplyTargetStopsTheCascade) {
  rng::Rng graph_rng(14);
  const graph::Graph g = graph::barabasi_albert(1000, 3, graph_rng);
  Population pop = quick_population(1000, 1, 15);
  for (auto& a : pop.truthful_asks) a.quantity = 2;
  const core::Job job(std::vector<std::uint32_t>{20});
  DynamicsOptions opts;
  opts.acceptance_prob = 1.0;
  opts.supply_multiple = 2.0;
  rng::Rng rng(16);
  const DynamicsResult res = simulate_solicitation(g, pop, &job, opts, rng);
  EXPECT_EQ(res.stop_reason, DynamicsResult::StopReason::kSupplyMet);
  EXPECT_GE(res.supply_by_type[0], 40u);
  // Stopped promptly: at most one user of overshoot.
  EXPECT_LE(res.supply_by_type[0], 42u);
}

TEST(Dynamics, DeterministicGivenSeed) {
  rng::Rng graph_rng(17);
  const graph::Graph g = graph::barabasi_albert(400, 3, graph_rng);
  const Population pop = quick_population(400, 2, 18);
  DynamicsOptions opts;
  rng::Rng a(19);
  rng::Rng b(19);
  const DynamicsResult ra = simulate_solicitation(g, pop, nullptr, opts, a);
  const DynamicsResult rb = simulate_solicitation(g, pop, nullptr, opts, b);
  EXPECT_EQ(ra.joined, rb.joined);
  EXPECT_EQ(ra.join_time, rb.join_time);
  EXPECT_EQ(ra.tree.parents(), rb.tree.parents());
}

TEST(Dynamics, TreeFeedsStraightIntoRit) {
  rng::Rng graph_rng(20);
  const graph::Graph g = graph::barabasi_albert(800, 3, graph_rng);
  const Population pop = quick_population(800, 2, 21);
  const core::Job job = core::Job::uniform(2, 30);
  DynamicsOptions opts;
  opts.supply_multiple = 2.5;
  rng::Rng rng(22);
  const DynamicsResult grown = simulate_solicitation(g, pop, &job, opts, rng);
  ASSERT_EQ(grown.stop_reason, DynamicsResult::StopReason::kSupplyMet);

  std::vector<core::Ask> asks;
  for (std::uint32_t u : grown.joined) asks.push_back(pop.truthful_asks[u]);
  core::RitConfig cfg;
  cfg.round_budget_policy = core::RoundBudgetPolicy::kRunToCompletion;
  rng::Rng mech_rng(23);
  const core::RitResult r = core::run_rit(job, asks, grown.tree, cfg, mech_rng);
  EXPECT_TRUE(r.success);
}

TEST(Dynamics, ChurnReportsDeparturesAndAdjustsSupply) {
  rng::Rng graph_rng(30);
  const graph::Graph g = graph::barabasi_albert(500, 3, graph_rng);
  Population pop = quick_population(500, 1, 31);
  for (auto& a : pop.truthful_asks) a.quantity = 2;
  const core::Job job(std::vector<std::uint32_t>{1000});  // never satisfiable
  DynamicsOptions opts;
  opts.acceptance_prob = 1.0;
  opts.lifetime_mean = 2.0;  // short lives: heavy churn
  opts.supply_multiple = 2.0;
  rng::Rng rng(32);
  const DynamicsResult res = simulate_solicitation(g, pop, &job, opts, rng);
  EXPECT_FALSE(res.departed.empty());
  // Supply accounting: joined quantities minus departed quantities.
  std::uint64_t expected = 2 * (res.joined.size() - res.departed.size());
  EXPECT_EQ(res.supply_by_type[0], expected);
  // Departed indices are valid participants.
  for (std::uint32_t p : res.departed) {
    EXPECT_LT(p, res.joined.size());
  }
}

TEST(Dynamics, ChurnComposesWithFailureInjection) {
  // The intended pipeline: run the cascade with churn, strip departed
  // users' asks via sim/failures, clear the market on the survivors.
  rng::Rng graph_rng(33);
  const graph::Graph g = graph::barabasi_albert(1500, 3, graph_rng);
  const Population pop = quick_population(1500, 2, 34);
  const core::Job job = core::Job::uniform(2, 25);
  DynamicsOptions opts;
  opts.acceptance_prob = 0.9;
  opts.lifetime_mean = 50.0;  // mild churn
  opts.supply_multiple = 3.0;
  rng::Rng rng(35);
  const DynamicsResult campaign = simulate_solicitation(g, pop, &job, opts, rng);
  ASSERT_EQ(campaign.stop_reason, DynamicsResult::StopReason::kSupplyMet);

  std::vector<core::Ask> asks;
  std::vector<double> costs;
  for (std::uint32_t u : campaign.joined) {
    asks.push_back(pop.truthful_asks[u]);
    costs.push_back(pop.costs[u]);
  }
  const DropoutResult survivors = remove_participants(
      campaign.tree, asks, campaign.departed);
  core::RitConfig cfg;
  cfg.round_budget_policy = core::RoundBudgetPolicy::kRunToCompletion;
  rng::Rng mech(36);
  const core::RitResult r =
      core::run_rit(job, survivors.asks, survivors.tree, cfg, mech);
  EXPECT_TRUE(r.success);
  for (std::uint32_t i = 0; i < survivors.asks.size(); ++i) {
    EXPECT_GE(r.utility_of(i, costs[survivors.original_of[i]]), -1e-9);
  }
}

TEST(Dynamics, ParentsAlwaysJoinBeforeChildren) {
  // Causality of the cascade: an inviter's join time precedes every
  // invitation it sends, hence every child's join time.
  rng::Rng graph_rng(40);
  const graph::Graph g = graph::barabasi_albert(600, 3, graph_rng);
  const Population pop = quick_population(600, 2, 41);
  DynamicsOptions opts;
  opts.seeds = {0, 1};
  rng::Rng rng(42);
  const DynamicsResult res = simulate_solicitation(g, pop, nullptr, opts, rng);
  for (std::uint32_t i = 0; i < res.joined.size(); ++i) {
    const std::uint32_t node = tree::node_of_participant(i);
    const std::uint32_t parent = res.tree.parent(node);
    if (parent == 0) continue;  // platform seed
    const std::uint32_t parent_participant = tree::participant_of_node(parent);
    EXPECT_LT(res.join_time[parent_participant], res.join_time[i] + 1e-12)
        << "participant " << i;
  }
}

TEST(Dynamics, NoChurnByDefault) {
  const graph::Graph g = graph::path(20);
  const Population pop = quick_population(20, 1, 37);
  DynamicsOptions opts;
  opts.acceptance_prob = 1.0;
  rng::Rng rng(38);
  const DynamicsResult res = simulate_solicitation(g, pop, nullptr, opts, rng);
  EXPECT_TRUE(res.departed.empty());
}

TEST(Dynamics, RejectsBadOptions) {
  const graph::Graph g = graph::path(5);
  const Population pop = quick_population(5, 1, 24);
  rng::Rng rng(25);
  DynamicsOptions opts;
  opts.invite_delay_mean = 0.0;
  EXPECT_THROW(simulate_solicitation(g, pop, nullptr, opts, rng),
               CheckFailure);
  opts = DynamicsOptions{};
  opts.acceptance_prob = 1.5;
  EXPECT_THROW(simulate_solicitation(g, pop, nullptr, opts, rng),
               CheckFailure);
  opts = DynamicsOptions{};
  opts.supply_multiple = 2.0;  // but no job
  EXPECT_THROW(simulate_solicitation(g, pop, nullptr, opts, rng),
               CheckFailure);
  opts = DynamicsOptions{};
  opts.seeds = {};
  EXPECT_THROW(simulate_solicitation(g, pop, nullptr, opts, rng),
               CheckFailure);
}

TEST(RngExponential, MeanAndPositivity) {
  rng::Rng rng(1);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.exponential(2.5);
    EXPECT_GT(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 2.5, 0.05);
  EXPECT_THROW(rng.exponential(0.0), CheckFailure);
}

}  // namespace
}  // namespace rit::sim
