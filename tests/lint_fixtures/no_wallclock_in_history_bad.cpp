// Fixture: a wall-clock timestamp stored into a perf-history record field.
#include <ctime>

struct ScratchHistoryRecord {
  long stamped_at{0};
};

ScratchHistoryRecord make_record() {
  ScratchHistoryRecord rec;
  rec.stamped_at = static_cast<long>(std::time(nullptr));
  return rec;
}
