// Fixture: the same stamp, allowlisted (e.g. a deliberately timestamped
// side artifact that never feeds the comparable record fields).
#include <ctime>

struct ScratchHistoryRecord {
  long stamped_at{0};
};

ScratchHistoryRecord make_record() {
  ScratchHistoryRecord rec;
  // rit-lint: allow(no-wallclock-in-history)
  rec.stamped_at = static_cast<long>(std::time(nullptr));
  return rec;
}
