// Fixture: long double metrics are not portable across ABIs.
long double accumulate_payment(long double a, long double b) { return a + b; }
