// Fixture: locale-dependent numeric parse/format on a result-IO path.
#include <cstdio>
#include <cstdlib>

double parse_field(const char* text) {
  return std::strtod(text, nullptr);  // radix char follows the host locale
}

unsigned long long parse_count(const char* text) {
  return std::strtoull(text, nullptr, 10);  // accepts "-1" as 2^64-1
}

void format_field(char* buf, std::size_t n, double v) {
  std::snprintf(buf, n, "%.17g", v);  // writes "0,5" under de_DE
}
