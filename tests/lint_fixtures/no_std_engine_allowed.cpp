// Fixture: file-scope allow (e.g. a cross-validation harness).
// rit-lint: allow-file(no-std-engine)
#include <random>

std::mt19937_64 make_engine() { return std::mt19937_64{42}; }
