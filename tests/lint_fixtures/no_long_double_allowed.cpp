// Fixture: file-scope allow (e.g. an x87-specific probe).
// rit-lint: allow-file(no-long-double)
long double accumulate_payment(long double a, long double b) { return a + b; }
