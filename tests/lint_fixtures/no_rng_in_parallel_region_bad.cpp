// Fixture: drawing from (or capturing) an Rng inside a
// parallel_for_blocked callback must be flagged — RNG order has to stay
// serial so results are bit-identical at any thread count.
#include <cstdint>
#include <vector>

#include "common/parallel.h"
#include "rng/rng.h"

void fill_noise(std::vector<double>& out, rit::rng::Rng& rng) {
  rit::parallel_for_blocked(
      out.size(), 4, [&](std::uint64_t lo, std::uint64_t hi, unsigned) {
        for (std::uint64_t i = lo; i < hi; ++i) {
          out[i] = rng.next_double();
        }
      });
}
