// Fixture: process isolation routes through the supervisor facade, which
// owns the fork/reap/rlimit lifecycle inside src/platform/. Naming the
// facade (and words like forked or killed in prose) must not trip the
// word-bounded token match.
namespace rit::platform {
struct SupervisorOptions;
}

// The supervisor relaunches forked workers that were killed or rlimited;
// callers never touch the primitives directly.
int isolation_entry_point(const rit::platform::SupervisorOptions& opts);
