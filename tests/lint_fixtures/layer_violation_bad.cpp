// Fixture: a core/ (tier 2) file reaching up into sim/ (tier 3) must be
// flagged — the mechanism core stays a pure function of (config, seed).
#include "sim/runner.h"

int mechanism_step() { return 0; }
