// Fixture: the allowlist directive suppresses the finding on its line.
#include <string>

std::string result_row(double payment) {
  return std::to_string(payment);  // rit-lint: allow(boundary-io-num-io)
}
