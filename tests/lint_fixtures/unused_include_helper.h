// Companion fixture for the unused-include pair: a clean header whose
// exported names (ScratchHelper, scratch_helper_sum) the bad includer
// never mentions.
#pragma once

struct ScratchHelper {
  int value{0};
};

int scratch_helper_sum(const ScratchHelper& a, const ScratchHelper& b);
