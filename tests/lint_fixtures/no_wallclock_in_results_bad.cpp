// Fixture: wall-clock stamp flowing into a report stream.
#include <chrono>
#include <ostream>

void write_report(std::ostream& out) {
  out << std::chrono::system_clock::now().time_since_epoch().count();
}
