// Fixture: a header in an include cycle (here the degenerate self-include)
// must be flagged — no file in a cycle compiles stand-alone.
#pragma once
#include "core/cycle_scratch.h"

int cyclic();
