// Fixture: hash-order iteration feeding a report stream.
#include <cstdint>
#include <ostream>
#include <unordered_map>

void write_balances(const std::unordered_map<std::uint64_t, double>& balances,
                    std::ostream& out) {
  double total = 0.0;
  for (const auto& [account, balance] : balances) total += balance;
  out << total;
}
