# Fixture: fast-math flags break float reproducibility.
add_compile_options(-ffast-math)
