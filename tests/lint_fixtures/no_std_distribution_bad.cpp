// Fixture: <random> distributions are unspecified across stdlibs.
#include <random>

int draw(std::mt19937_64& eng) {  // rit-lint: allow(no-std-engine)
  std::uniform_int_distribution<int> dist(0, 9);
  return dist(eng);
}
