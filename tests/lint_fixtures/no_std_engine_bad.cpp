// Fixture: std engines duplicate the repo-wide rng::Rng stream.
#include <random>

std::mt19937_64 make_engine() { return std::mt19937_64{42}; }
