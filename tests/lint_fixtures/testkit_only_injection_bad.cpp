// A planted-bug gate outside the declared injection seam: every line
// touching the injection macros must be flagged.
#if RIT_BUG_ENABLED(2)
int planted_branch() { return 2; }
#endif
int injected_id = RIT_TESTKIT_INJECT_BUG;
