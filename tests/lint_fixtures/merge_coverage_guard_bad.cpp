// Fixture: a self-merge with no sizeof coverage guard anywhere.
struct RoundMetrics {
  double utility{0.0};
  unsigned long trials{0};
  void merge(const RoundMetrics& other) {
    utility += other.utility;
    trials += other.trials;
  }
};
