// Fixture: the allowlist directive suppresses the finding on its line.
#include <cstdint>
#include <vector>

#include "common/parallel.h"
#include "rng/rng.h"

void fill_noise(std::vector<double>& out, rit::rng::Rng& rng) {
  rit::parallel_for_blocked(
      out.size(), 4, [&](std::uint64_t lo, std::uint64_t hi, unsigned) {
        for (std::uint64_t i = lo; i < hi; ++i) {
          // rit-lint: allow(no-rng-in-parallel-region)
          out[i] = rng.next_double();
        }
      });
}
