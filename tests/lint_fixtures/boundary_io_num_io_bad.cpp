// Fixture: formatting a number in a result-IO path without going through
// common/num_io.h must be flagged — std::to_string(double) is
// locale-dependent and truncates to 6 significant digits.
#include <string>

std::string result_row(double payment) { return std::to_string(payment); }
