// Fixture: allowlisted merge (e.g. a view type with no owned fields).
struct RoundMetrics {
  double utility{0.0};
  unsigned long trials{0};
  // rit-lint: allow(merge-coverage-guard)
  void merge(const RoundMetrics& other) {
    utility += other.utility;
    trials += other.trials;
  }
};
