// Fixture: raw process primitives outside src/platform/ must be flagged.
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

int spawn_and_reap() {
  struct rlimit lim = {0, 0};
  setrlimit(RLIMIT_CORE, &lim);
  const pid_t pid = fork();
  if (pid == 0) _exit(0);
  kill(pid, 9);
  int status = 0;
  waitpid(pid, &status, 0);
  return status;
}
