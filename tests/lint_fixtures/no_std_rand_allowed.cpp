// Fixture: the allowlist directive suppresses the finding on its line.
#include <cstdlib>

int roll_die() { return std::rand() % 6; }  // rit-lint: allow(no-std-rand)
