// Fixture: allowlisted shuffle (e.g. a non-result-affecting demo).
#include <algorithm>
#include <random>
#include <vector>

void scramble(std::vector<int>& v, std::mt19937_64& eng) {  // rit-lint: allow(no-std-engine)
  std::shuffle(v.begin(), v.end(), eng);  // rit-lint: allow(no-std-shuffle)
}
