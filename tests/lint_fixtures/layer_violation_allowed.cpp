// Fixture: the allowlist directive suppresses the finding on the include.
#include "sim/runner.h"  // rit-lint: allow(layer-violation)

int mechanism_step() { return 0; }
