// Fixture: the same calls, allowlisted (e.g. an integer-only snprintf whose
// format string has no radix character to localize).
#include <cstdio>
#include <cstdlib>

double parse_field(const char* text) {
  // rit-lint: allow(no-locale-numeric)
  return std::strtod(text, nullptr);
}

unsigned long long parse_count(const char* text) {
  // rit-lint: allow(no-locale-numeric)
  return std::strtoull(text, nullptr, 10);
}

void format_field(char* buf, std::size_t n, unsigned v) {
  // rit-lint: allow(no-locale-numeric)
  std::snprintf(buf, n, "\\u%04x", v);
}
