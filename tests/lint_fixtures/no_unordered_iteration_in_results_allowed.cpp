// Fixture: allowlisted iteration (order-insensitive fold, e.g. max).
#include <cstdint>
#include <ostream>
#include <unordered_map>

void write_balances(const std::unordered_map<std::uint64_t, double>& balances,
                    std::ostream& out) {
  double top = 0.0;
  // rit-lint: allow(no-unordered-iteration-in-results)
  for (const auto& [account, balance] : balances) {
    top = balance > top ? balance : top;
  }
  out << top;
}
