// Fixture: catch (...) handlers that are fine — they rethrow, visibly
// record the fault, or carry an explicit allow annotation.
int risky();
void record_fault(const char* reason);

int rethrows() {
  try {
    return risky();
  } catch (...) {
    throw;  // contained upstream
  }
}

int records() {
  try {
    return risky();
  } catch (...) {
    record_fault("unknown exception");  // contained, not swallowed
    return 0;
  }
}

int annotated() {
  try {
    return risky();
  } catch (...) {  // rit-lint: allow(no-bare-catch-all)
    return 0;
  }
}
