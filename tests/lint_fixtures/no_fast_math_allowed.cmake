# Fixture: allowlisted flag (e.g. an opt-in benchmark-only config).
add_compile_options(-ffast-math)  # rit-lint: allow(no-fast-math)
