// Fixture: a .cpp that includes a repo header but mentions none of its
// exported names gets the (report-only) IWYU-lite note.
#include "common/scratch_helper.h"

int unrelated_work() { return 42; }
