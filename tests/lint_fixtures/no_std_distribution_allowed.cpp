// Fixture: allow on the preceding line shields the declaration.
#include <random>

int draw(std::mt19937_64& eng) {  // rit-lint: allow(no-std-engine)
  // rit-lint: allow(no-std-distribution)
  std::uniform_int_distribution<int> dist(0, 9);
  return dist(eng);
}
