// Fixture: libc PRNG in simulation code must be flagged.
#include <cstdlib>

int roll_die() { return std::rand() % 6; }
