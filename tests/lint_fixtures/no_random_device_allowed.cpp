// Fixture: file-scope allow covers every occurrence in the file.
// rit-lint: allow-file(no-random-device)
#include <random>

unsigned seed_from_entropy() {
  std::random_device rd;
  return rd();
}
