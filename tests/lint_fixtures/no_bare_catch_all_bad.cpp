// Fixture: a catch (...) that swallows the exception with no rethrow and
// no visible recording — the handler body leaves nothing behind.
int risky();

int swallow_everything() {
  int v = 0;
  try {
    v = risky();
  } catch (...) {
    v = -1;
  }
  return v;
}

int swallow_multiline() {
  try {
    return risky();
  } catch (
      ...) {
    return 0;
  }
}
