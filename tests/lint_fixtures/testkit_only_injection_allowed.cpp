// The same gates under a file-scope escape (how the two allow-listed core
// injection sites declare themselves).
// rit-lint: allow-file(testkit-only-injection)
#if RIT_BUG_ENABLED(2)
int planted_branch() { return 2; }
#endif
int injected_id = RIT_TESTKIT_INJECT_BUG;
