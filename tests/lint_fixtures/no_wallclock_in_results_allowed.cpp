// Fixture: an allowlisted timestamp (e.g. a log header, not a result).
#include <chrono>
#include <ostream>

void write_report(std::ostream& out) {
  // rit-lint: allow(no-wallclock-in-results)
  out << std::chrono::system_clock::now().time_since_epoch().count();
}
