// Fixture: entropy sources outside src/rng/ must be flagged.
#include <random>

unsigned seed_from_entropy() {
  std::random_device rd;
  return rd();
}
