// Fixture: the allowlist directive suppresses the cycle finding at its
// anchor include.
#pragma once
#include "core/cycle_scratch.h"  // rit-lint: allow(include-cycle)

int cyclic();
