// Fixture: the allowlist directive marks the include as deliberately
// load-bearing (e.g. included for side effects), silencing the note.
#include "common/scratch_helper.h"  // rit-lint: allow(unused-include)

int unrelated_work() { return 42; }
