#include <gtest/gtest.h>

#include <limits>

#include "common/check.h"
#include "core/extract.h"

namespace rit::core {
namespace {

// The paper's own worked example after Algorithm 2:
// A = ((tau1,2,3); (tau2,3,4); (tau1,4,2)) and Extract(tau1, A) yields
// alpha = (3,3,2,2,2,2) with lambda = (1,1,3,3,3,3) (1-based users).
TEST(Extract, PaperWorkedExample) {
  const std::vector<Ask> asks{
      {TaskType{0}, 2, 3.0},
      {TaskType{1}, 3, 4.0},
      {TaskType{0}, 4, 2.0},
  };
  const ExtractedAsks e = extract(TaskType{0}, asks);
  EXPECT_EQ(e.values, (std::vector<double>{3, 3, 2, 2, 2, 2}));
  // 0-based owners: users 0 and 2.
  EXPECT_EQ(e.owner, (std::vector<std::uint32_t>{0, 0, 2, 2, 2, 2}));
}

TEST(Extract, OtherTypeOfPaperExample) {
  const std::vector<Ask> asks{
      {TaskType{0}, 2, 3.0},
      {TaskType{1}, 3, 4.0},
      {TaskType{0}, 4, 2.0},
  };
  const ExtractedAsks e = extract(TaskType{1}, asks);
  EXPECT_EQ(e.values, (std::vector<double>{4, 4, 4}));
  EXPECT_EQ(e.owner, (std::vector<std::uint32_t>{1, 1, 1}));
}

TEST(Extract, NoMatchingTypeGivesEmpty) {
  const std::vector<Ask> asks{{TaskType{0}, 2, 3.0}};
  const ExtractedAsks e = extract(TaskType{5}, asks);
  EXPECT_TRUE(e.empty());
  EXPECT_EQ(e.size(), 0u);
}

TEST(Extract, EmptyAskVector) {
  const ExtractedAsks e = extract(TaskType{0}, std::vector<Ask>{});
  EXPECT_TRUE(e.empty());
}

TEST(ExtractRemaining, UsesRemainingNotAskedQuantity) {
  const std::vector<Ask> asks{
      {TaskType{0}, 5, 1.5},
      {TaskType{0}, 3, 2.5},
  };
  const std::vector<std::uint32_t> remaining{2, 0};
  const ExtractedAsks e = extract_remaining(TaskType{0}, asks, remaining);
  EXPECT_EQ(e.values, (std::vector<double>{1.5, 1.5}));
  EXPECT_EQ(e.owner, (std::vector<std::uint32_t>{0, 0}));
}

TEST(ExtractRemaining, ZeroRemainingEverywhereGivesEmpty) {
  const std::vector<Ask> asks{{TaskType{0}, 5, 1.5}};
  const std::vector<std::uint32_t> remaining{0};
  EXPECT_TRUE(extract_remaining(TaskType{0}, asks, remaining).empty());
}

TEST(ExtractRemaining, RejectsRemainingAboveAsked) {
  const std::vector<Ask> asks{{TaskType{0}, 2, 1.0}};
  const std::vector<std::uint32_t> remaining{3};
  EXPECT_THROW(extract_remaining(TaskType{0}, asks, remaining), CheckFailure);
}

TEST(ExtractRemaining, RejectsSizeMismatch) {
  const std::vector<Ask> asks{{TaskType{0}, 2, 1.0}};
  const std::vector<std::uint32_t> remaining{1, 1};
  EXPECT_THROW(extract_remaining(TaskType{0}, asks, remaining), CheckFailure);
}

TEST(Extract, PreservesSubmissionOrder) {
  const std::vector<Ask> asks{
      {TaskType{0}, 1, 9.0},
      {TaskType{0}, 1, 1.0},
      {TaskType{0}, 1, 5.0},
  };
  const ExtractedAsks e = extract(TaskType{0}, asks);
  EXPECT_EQ(e.values, (std::vector<double>{9, 1, 5}));
  EXPECT_EQ(e.owner, (std::vector<std::uint32_t>{0, 1, 2}));
}

TEST(JobType, UniformJobAndTotals) {
  const Job j = Job::uniform(3, 4);
  EXPECT_EQ(j.num_types(), 3u);
  EXPECT_EQ(j.demand(TaskType{2}), 4u);
  EXPECT_EQ(j.total_tasks(), 12u);
  EXPECT_EQ(j.num_demanded_types(), 3u);
}

TEST(JobType, ZeroDemandTypesCounted) {
  const Job j(std::vector<std::uint32_t>{2, 0, 1});
  EXPECT_EQ(j.num_types(), 3u);
  EXPECT_EQ(j.num_demanded_types(), 2u);
  EXPECT_EQ(j.total_tasks(), 3u);
}

TEST(JobType, RejectsEmptyAndAllZero) {
  EXPECT_THROW(Job(std::vector<std::uint32_t>{}), CheckFailure);
  EXPECT_THROW(Job(std::vector<std::uint32_t>{0, 0}), CheckFailure);
}

TEST(JobType, ValidateAsksCatchesBadInput) {
  const Job j = Job::uniform(2, 1);
  EXPECT_NO_THROW(
      validate_asks(j, std::vector<Ask>{{TaskType{1}, 1, 0.5}}));
  EXPECT_THROW(validate_asks(j, std::vector<Ask>{{TaskType{2}, 1, 0.5}}),
               CheckFailure);
  EXPECT_THROW(validate_asks(j, std::vector<Ask>{{TaskType{0}, 0, 0.5}}),
               CheckFailure);
  EXPECT_THROW(validate_asks(j, std::vector<Ask>{{TaskType{0}, 1, 0.0}}),
               CheckFailure);
}

TEST(JobType, ValidateAsksRejectsHostileInput) {
  const Job j = Job::uniform(1, 1);
  // Memory-exhaustion claim: Extract would materialize 4e9 unit asks.
  EXPECT_THROW(
      validate_asks(j, std::vector<Ask>{{TaskType{0}, 4000000000u, 1.0}}),
      CheckFailure);
  EXPECT_NO_THROW(
      validate_asks(j, std::vector<Ask>{{TaskType{0}, kMaxAskQuantity, 1.0}}));
  // Non-finite prices poison every payment they touch.
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_THROW(validate_asks(j, std::vector<Ask>{{TaskType{0}, 1, inf}}),
               CheckFailure);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(validate_asks(j, std::vector<Ask>{{TaskType{0}, 1, nan}}),
               CheckFailure);
  EXPECT_THROW(validate_asks(j, std::vector<Ask>{{TaskType{0}, 1, -3.0}}),
               CheckFailure);
}

TEST(JobType, ObservedKMax) {
  EXPECT_EQ(observed_k_max(std::vector<Ask>{}), 0u);
  EXPECT_EQ(observed_k_max(std::vector<Ask>{{TaskType{0}, 3, 1.0},
                                            {TaskType{1}, 7, 1.0},
                                            {TaskType{0}, 2, 1.0}}),
            7u);
}

TEST(JobType, UtilityFormula) {
  EXPECT_DOUBLE_EQ(utility(10.0, 2, 3.0), 4.0);
  EXPECT_DOUBLE_EQ(utility(0.0, 0, 5.0), 0.0);
  EXPECT_DOUBLE_EQ(utility(4.0, 1, 5.0), -1.0);
}

}  // namespace
}  // namespace rit::core
