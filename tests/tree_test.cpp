#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/check.h"
#include "graph/generators.h"
#include "tree/builders.h"
#include "tree/incentive_tree.h"
#include "tree/render.h"

namespace rit::tree {
namespace {

// The running example: platform -> {P1, P2}, P1 -> {P3, P4}, P4 -> {P5}.
IncentiveTree example_tree() {
  //          node: 0  1  2  3  4  5
  return IncentiveTree({0, 0, 0, 1, 1, 4});
}

TEST(IncentiveTree, RootOnly) {
  const auto t = IncentiveTree::root_only();
  EXPECT_EQ(t.num_nodes(), 1u);
  EXPECT_EQ(t.num_participants(), 0u);
  EXPECT_EQ(t.depth(0), 0u);
  EXPECT_TRUE(t.children(0).empty());
}

TEST(IncentiveTree, ParentsChildrenDepths) {
  const auto t = example_tree();
  EXPECT_EQ(t.num_participants(), 5u);
  EXPECT_EQ(t.parent(3), 1u);
  EXPECT_EQ(t.parent(5), 4u);
  EXPECT_EQ(t.depth(0), 0u);
  EXPECT_EQ(t.depth(1), 1u);
  EXPECT_EQ(t.depth(3), 2u);
  EXPECT_EQ(t.depth(5), 3u);
  EXPECT_EQ(t.max_depth(), 3u);
  const auto kids = t.children(1);
  ASSERT_EQ(kids.size(), 2u);
  EXPECT_EQ(kids[0], 3u);
  EXPECT_EQ(kids[1], 4u);
}

TEST(IncentiveTree, PreorderSubtreesAreContiguous) {
  const auto t = example_tree();
  const auto pre = t.preorder();
  ASSERT_EQ(pre.size(), 6u);
  EXPECT_EQ(pre[0], 0u);
  // Every node's subtree occupies [pos, pos + size).
  for (std::uint32_t v = 0; v < t.num_nodes(); ++v) {
    const auto begin = t.preorder_index(v);
    const auto size = t.subtree_size(v);
    std::set<std::uint32_t> range(pre.begin() + begin,
                                  pre.begin() + begin + size);
    std::set<std::uint32_t> expected{v};
    for (std::uint32_t d : t.descendants(v)) expected.insert(d);
    EXPECT_EQ(range, expected) << "node " << v;
  }
}

TEST(IncentiveTree, SubtreeSizes) {
  const auto t = example_tree();
  EXPECT_EQ(t.subtree_size(0), 6u);
  EXPECT_EQ(t.subtree_size(1), 4u);
  EXPECT_EQ(t.subtree_size(4), 2u);
  EXPECT_EQ(t.subtree_size(5), 1u);
}

TEST(IncentiveTree, DescendantsMatchDefinition) {
  const auto t = example_tree();
  auto d1 = t.descendants(1);
  std::sort(d1.begin(), d1.end());
  EXPECT_EQ(d1, (std::vector<std::uint32_t>{3, 4, 5}));
  EXPECT_TRUE(t.descendants(2).empty());
}

TEST(IncentiveTree, IsAncestor) {
  const auto t = example_tree();
  EXPECT_TRUE(t.is_ancestor(0, 5));
  EXPECT_TRUE(t.is_ancestor(1, 5));
  EXPECT_TRUE(t.is_ancestor(4, 5));
  EXPECT_FALSE(t.is_ancestor(5, 4));
  EXPECT_FALSE(t.is_ancestor(2, 3));
  EXPECT_FALSE(t.is_ancestor(3, 3));
}

TEST(IncentiveTree, ForwardReferencingParentsAllowed) {
  // Node 1's parent is node 3 — ids need not be topologically ordered.
  const IncentiveTree t({0, 3, 0, 2});
  EXPECT_EQ(t.depth(1), 3u);
  EXPECT_EQ(t.depth(3), 2u);
}

TEST(IncentiveTree, RejectsCycles) {
  // 1 -> 2 -> 1 cycle, disconnected from the root.
  EXPECT_THROW(IncentiveTree({0, 2, 1}), CheckFailure);
}

TEST(IncentiveTree, RejectsSelfParentAndOutOfRange) {
  EXPECT_THROW(IncentiveTree({0, 1}), CheckFailure);
  EXPECT_THROW(IncentiveTree({0, 9}), CheckFailure);
}

TEST(IncentiveTree, ParticipantNodeConversion) {
  EXPECT_EQ(node_of_participant(0), 1u);
  EXPECT_EQ(participant_of_node(1), 0u);
  EXPECT_EQ(participant_of_node(node_of_participant(41)), 41u);
}

TEST(Builders, FlatTreeAllDepthOne) {
  const auto t = flat_tree(10);
  EXPECT_EQ(t.num_participants(), 10u);
  for (std::uint32_t i = 0; i < 10; ++i) {
    EXPECT_EQ(t.depth(node_of_participant(i)), 1u);
  }
}

TEST(Builders, ChainTreeDepths) {
  const auto t = chain_tree(5);
  for (std::uint32_t i = 0; i < 5; ++i) {
    EXPECT_EQ(t.depth(node_of_participant(i)), i + 1);
  }
  EXPECT_EQ(t.max_depth(), 5u);
}

TEST(Builders, RandomRecursiveTreeIsValidAndDeterministic) {
  rng::Rng a(5);
  rng::Rng b(5);
  const auto ta = random_recursive_tree(200, 0.1, a);
  const auto tb = random_recursive_tree(200, 0.1, b);
  EXPECT_EQ(ta.parents(), tb.parents());
  EXPECT_EQ(ta.num_participants(), 200u);
}

TEST(Builders, SpanningForestBfsStructure) {
  // 0 -> 1 -> 3, 0 -> 2, 2 -> 3 (tie at 3 broken toward inviter 1: both
  // invite in wave 2? No: 1 and 2 join in wave 1 from seed 0, then both
  // could invite 3 — the smaller-index inviter 1 wins).
  graph::Graph g(4, {{0, 1}, {0, 2}, {1, 3}, {2, 3}});
  SpanningForestOptions opts;
  opts.seeds = {0};
  const auto res = build_spanning_forest(g, opts);
  EXPECT_EQ(res.tree.num_participants(), 4u);
  // Join order: 0, then {1,2}, then {3}.
  EXPECT_EQ(res.graph_of[1], 0u);
  EXPECT_EQ(res.graph_of[2], 1u);
  EXPECT_EQ(res.graph_of[3], 2u);
  EXPECT_EQ(res.graph_of[4], 3u);
  EXPECT_EQ(res.tree.parent(res.node_of[3]), res.node_of[1]);  // 1 beat 2
  EXPECT_EQ(res.tree.parent(res.node_of[1]), res.node_of[0]);
  EXPECT_EQ(res.tree.parent(res.node_of[0]), 0u);
}

TEST(Builders, SpanningForestTieBreakSmallestInviter) {
  // Seeds 0 and 1 both invite node 2 in the same wave; 0 must win.
  graph::Graph g(3, {{0, 2}, {1, 2}});
  SpanningForestOptions opts;
  opts.seeds = {1, 0};  // deliberately unsorted
  const auto res = build_spanning_forest(g, opts);
  EXPECT_EQ(res.tree.parent(res.node_of[2]), res.node_of[0]);
}

TEST(Builders, SpanningForestRespectsMaxUsers) {
  graph::Graph g(6, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}});
  SpanningForestOptions opts;
  opts.seeds = {0};
  opts.max_users = 3;
  opts.attach_unreached_to_root = false;
  const auto res = build_spanning_forest(g, opts);
  EXPECT_EQ(res.tree.num_participants(), 3u);
  EXPECT_TRUE(res.joined[0]);
  EXPECT_TRUE(res.joined[2]);
  EXPECT_FALSE(res.joined[3]);
}

TEST(Builders, SpanningForestAttachesUnreachedToRoot) {
  // Node 2 is unreachable from seed 0.
  graph::Graph g(3, {{0, 1}});
  SpanningForestOptions opts;
  opts.seeds = {0};
  opts.attach_unreached_to_root = true;
  const auto res = build_spanning_forest(g, opts);
  EXPECT_EQ(res.tree.num_participants(), 3u);
  EXPECT_TRUE(res.joined[2]);
  EXPECT_EQ(res.tree.parent(res.node_of[2]), 0u);
  EXPECT_EQ(res.tree.depth(res.node_of[2]), 1u);
}

TEST(Builders, SpanningForestCoversBaGraph) {
  rng::Rng rng(9);
  const auto g = graph::barabasi_albert(1000, 3, rng);
  SpanningForestOptions opts;
  opts.seeds = {0, 1, 2, 3};
  const auto res = build_spanning_forest(g, opts);
  EXPECT_EQ(res.tree.num_participants(), 1000u);
  // A scale-free graph explored from the seed clique should be shallow.
  EXPECT_LT(res.tree.max_depth(), 30u);
}

TEST(Render, AsciiShowsStructure) {
  const auto t = example_tree();
  const std::string art = render_ascii(t);
  EXPECT_NE(art.find("platform"), std::string::npos);
  EXPECT_NE(art.find("P1"), std::string::npos);
  EXPECT_NE(art.find("P5"), std::string::npos);
  // P5 is nested under P4.
  EXPECT_LT(art.find("P4"), art.find("P5"));
}

TEST(Render, TruncatesLargeTrees) {
  const auto t = flat_tree(500);
  const std::string art = render_ascii(t, {}, 10);
  EXPECT_NE(art.find("truncated"), std::string::npos);
}

}  // namespace
}  // namespace rit::tree
