#include <gtest/gtest.h>

#include <vector>

#include "attack/strategy_search.h"
#include "common/check.h"
#include "rng/rng.h"
#include "tree/builders.h"

namespace rit::attack {
namespace {

using core::Ask;

struct RedTeamInstance {
  core::Job job{std::vector<std::uint32_t>{60}};
  std::vector<Ask> asks;
  tree::IncentiveTree tree = tree::IncentiveTree::root_only();
  std::uint32_t victim{5};
  double cost{3.0};

  explicit RedTeamInstance(std::uint64_t seed) {
    rng::Rng rng(seed);
    const std::uint32_t n = 200;
    for (std::uint32_t j = 0; j < n; ++j) {
      asks.push_back(Ask{TaskType{0},
                         static_cast<std::uint32_t>(rng.uniform_int(1, 3)),
                         rng.uniform_real_left_open(0.0, 10.0)});
    }
    asks[victim] = Ask{TaskType{0}, 6, cost};
    tree = tree::random_recursive_tree(n, 0.15, rng);
  }
};

SearchSpace quick_space() {
  SearchSpace space;
  space.identity_counts = {1, 2, 4};
  space.ask_factors = {0.6, 1.0, 1.5};
  space.topologies = {Topology::kChain, Topology::kStar, Topology::kRandom};
  space.trials = 60;
  return space;
}

TEST(StrategySearch, EvaluatesTheWholeGrid) {
  const RedTeamInstance inst(1);
  core::RitConfig cfg;
  cfg.round_budget_policy = core::RoundBudgetPolicy::kRunToCompletion;
  const SearchResult result = search_best_attack(
      inst.job, inst.asks, inst.tree, inst.victim, inst.cost, cfg,
      quick_space());
  // delta=1 evaluated once per ask factor; delta in {2,4} x 3 topologies.
  EXPECT_EQ(result.entries.size(), 3u + 2u * 3u * 3u);
  // Sorted best-first.
  for (std::size_t i = 1; i < result.entries.size(); ++i) {
    EXPECT_GE(result.entries[i - 1].mean_utility,
              result.entries[i].mean_utility);
  }
}

TEST(StrategySearch, RitSurvivesTheRedTeam) {
  // The headline assertion: across the whole grid, the best attack found
  // does not beat honesty beyond statistical slack.
  const RedTeamInstance inst(2);
  core::RitConfig cfg;
  cfg.round_budget_policy = core::RoundBudgetPolicy::kRunToCompletion;
  const SearchResult result = search_best_attack(
      inst.job, inst.asks, inst.tree, inst.victim, inst.cost, cfg,
      quick_space());
  EXPECT_LE(result.best_gain(), result.gain_slack() + 0.1)
      << "best candidate: identities="
      << result.best().candidate.identities
      << " ask=" << result.best().candidate.ask_value;
}

TEST(StrategySearch, FindsTheExploitInTheDeterministicMode) {
  // Sanity of the harness itself: against the manipulable order-statistic
  // price the search should surface SOME candidate comfortably above the
  // weakest, i.e. the grid actually discriminates. (The profitable
  // candidate depends on book shape; we assert spread, not direction.)
  RedTeamInstance inst(3);
  // Put the victim's cost well inside the money so strategies that forfeit
  // wins (overbidding past the clearing price) separate clearly from those
  // that keep them.
  inst.cost = 1.0;
  inst.asks[inst.victim].value = 1.0;
  core::RitConfig cfg;
  cfg.round_budget_policy = core::RoundBudgetPolicy::kRunToCompletion;
  cfg.price_mode = core::PriceMode::kOrderStatistic;
  SearchSpace space = quick_space();
  // Include a factor far above the clearing price so "overbid yourself out
  // of the market" is in the grid and must rank last.
  space.ask_factors = {0.6, 1.0, 5.0};
  const SearchResult result = search_best_attack(
      inst.job, inst.asks, inst.tree, inst.victim, inst.cost, cfg, space);
  EXPECT_GT(result.best().mean_utility,
            result.entries.back().mean_utility + 0.5);
}

TEST(StrategySearch, SkipsCandidatesBeyondCapability) {
  RedTeamInstance inst(4);
  inst.asks[inst.victim].quantity = 2;  // capability below delta=4
  core::RitConfig cfg;
  cfg.round_budget_policy = core::RoundBudgetPolicy::kRunToCompletion;
  const SearchResult result = search_best_attack(
      inst.job, inst.asks, inst.tree, inst.victim, inst.cost, cfg,
      quick_space());
  for (const SearchEntry& e : result.entries) {
    EXPECT_LE(e.candidate.identities, 2u);
  }
}

TEST(StrategySearch, DeterministicGivenSpace) {
  const RedTeamInstance inst(5);
  core::RitConfig cfg;
  cfg.round_budget_policy = core::RoundBudgetPolicy::kRunToCompletion;
  SearchSpace space = quick_space();
  space.trials = 20;
  const SearchResult a = search_best_attack(inst.job, inst.asks, inst.tree,
                                            inst.victim, inst.cost, cfg, space);
  const SearchResult b = search_best_attack(inst.job, inst.asks, inst.tree,
                                            inst.victim, inst.cost, cfg, space);
  ASSERT_EQ(a.entries.size(), b.entries.size());
  for (std::size_t i = 0; i < a.entries.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.entries[i].mean_utility, b.entries[i].mean_utility);
  }
}

TEST(StrategySearch, RejectsBadInputs) {
  const RedTeamInstance inst(6);
  core::RitConfig cfg;
  SearchSpace space = quick_space();
  space.trials = 1;
  EXPECT_THROW(search_best_attack(inst.job, inst.asks, inst.tree, inst.victim,
                                  inst.cost, cfg, space),
               CheckFailure);
  space = quick_space();
  EXPECT_THROW(search_best_attack(inst.job, inst.asks, inst.tree, 9999,
                                  inst.cost, cfg, space),
               CheckFailure);
}

}  // namespace
}  // namespace rit::attack
