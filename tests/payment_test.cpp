#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/check.h"
#include "core/payment.h"
#include "rng/rng.h"
#include "tree/builders.h"

namespace rit::core {
namespace {

// platform -> {P1, P2}, P1 -> {P3, P4}, P4 -> {P5} (participants 0..4).
tree::IncentiveTree example_tree() {
  return tree::IncentiveTree({0, 0, 0, 1, 1, 4});
}

TEST(PaymentReference, HandComputedExample) {
  const auto t = example_tree();
  // Participants:      0        1        2        3        4
  // Node:              1        2        3        4        5
  // Depth:             1        1        2        2        3
  const std::vector<TaskType> types{TaskType{0}, TaskType{1}, TaskType{1},
                                    TaskType{1}, TaskType{0}};
  const std::vector<double> pa{10.0, 20.0, 8.0, 4.0, 16.0};
  const auto p = tree_payments_reference(t, types, pa, 0.5);
  // P1 (participant 0, type 0) collects from descendants P3 (t1, depth 2),
  // P4 (t1, depth 2), P5 (t0, depth 3 — same type, excluded):
  EXPECT_DOUBLE_EQ(p[0], 10.0 + 0.25 * 8.0 + 0.25 * 4.0);
  // P2 (participant 1) is a leaf.
  EXPECT_DOUBLE_EQ(p[1], 20.0);
  // P3 leaf.
  EXPECT_DOUBLE_EQ(p[2], 8.0);
  // P4 (type 1) collects from P5 (type 0, depth 3).
  EXPECT_DOUBLE_EQ(p[3], 4.0 + 0.125 * 16.0);
  EXPECT_DOUBLE_EQ(p[4], 16.0);
}

TEST(PaymentReference, SameTypeDescendantsNeverContribute) {
  const auto t = tree::chain_tree(4);
  const std::vector<TaskType> types(4, TaskType{0});
  const std::vector<double> pa{1.0, 2.0, 4.0, 8.0};
  const auto p = tree_payments_reference(t, types, pa, 0.5);
  for (std::uint32_t i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(p[i], pa[i]) << "participant " << i;
  }
}

TEST(PaymentReference, AbsoluteDepthWeighting) {
  // Chain: P0 (depth1, t0) <- P1 (depth2, t1). P0 gets (1/2)^2 * pa1, i.e.
  // the contributor's absolute depth, not the relative distance 1.
  const auto t = tree::chain_tree(2);
  const std::vector<TaskType> types{TaskType{0}, TaskType{1}};
  const std::vector<double> pa{0.0, 12.0};
  const auto p = tree_payments_reference(t, types, pa, 0.5);
  EXPECT_DOUBLE_EQ(p[0], 0.25 * 12.0);
}

TEST(PaymentReference, FlatTreeIsAuctionOnly) {
  const auto t = tree::flat_tree(6);
  const std::vector<TaskType> types(6, TaskType{0});
  std::vector<double> pa;
  for (int i = 0; i < 6; ++i) pa.push_back(i * 1.5);
  EXPECT_EQ(tree_payments_reference(t, types, pa, 0.5), pa);
}

TEST(PaymentReference, ConfigurableBase) {
  const auto t = tree::chain_tree(2);
  const std::vector<TaskType> types{TaskType{0}, TaskType{1}};
  const std::vector<double> pa{0.0, 27.0};
  const auto p = tree_payments_reference(t, types, pa, 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(p[0], 27.0 / 9.0);
}

TEST(PaymentFast, MatchesReferenceOnExample) {
  const auto t = example_tree();
  const std::vector<TaskType> types{TaskType{0}, TaskType{1}, TaskType{1},
                                    TaskType{1}, TaskType{0}};
  const std::vector<double> pa{10.0, 20.0, 8.0, 4.0, 16.0};
  EXPECT_EQ(tree_payments(t, types, pa, 0.5),
            tree_payments_reference(t, types, pa, 0.5));
}

TEST(PaymentFast, MatchesReferenceOnRandomTrees) {
  rng::Rng rng(100);
  for (int trial = 0; trial < 40; ++trial) {
    const auto n = static_cast<std::uint32_t>(1 + rng.uniform_index(200));
    const auto t = tree::random_recursive_tree(n, 0.2, rng);
    const auto num_types =
        static_cast<std::uint32_t>(1 + rng.uniform_index(6));
    std::vector<TaskType> types;
    std::vector<double> pa;
    for (std::uint32_t i = 0; i < n; ++i) {
      types.push_back(
          TaskType{static_cast<std::uint32_t>(rng.uniform_index(num_types))});
      pa.push_back(rng.bernoulli(0.3) ? 0.0
                                      : rng.uniform_real_left_open(0.0, 50.0));
    }
    const auto fast = tree_payments(t, types, pa, 0.5);
    const auto ref = tree_payments_reference(t, types, pa, 0.5);
    ASSERT_EQ(fast.size(), ref.size());
    for (std::size_t i = 0; i < fast.size(); ++i) {
      EXPECT_NEAR(fast[i], ref[i], 1e-9 * (1.0 + std::abs(ref[i])))
          << "trial " << trial << " participant " << i;
    }
  }
}

TEST(PaymentFast, MatchesReferenceOnDeepChain) {
  // Depths in the thousands: the discount underflows to exactly 0.0 and the
  // two implementations must agree bit-for-bit on that.
  const std::uint32_t n = 2000;
  const auto t = tree::chain_tree(n);
  std::vector<TaskType> types;
  std::vector<double> pa;
  for (std::uint32_t i = 0; i < n; ++i) {
    types.push_back(TaskType{i % 2});
    pa.push_back(1.0);
  }
  const auto fast = tree_payments(t, types, pa, 0.5);
  const auto ref = tree_payments_reference(t, types, pa, 0.5);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(fast[i], ref[i], 1e-12) << i;
  }
}

TEST(PaymentFast, PaymentsAtLeastAuctionPayments) {
  rng::Rng rng(200);
  const auto t = tree::random_recursive_tree(300, 0.1, rng);
  std::vector<TaskType> types;
  std::vector<double> pa;
  for (std::uint32_t i = 0; i < 300; ++i) {
    types.push_back(
        TaskType{static_cast<std::uint32_t>(rng.uniform_index(4))});
    pa.push_back(rng.uniform01() * 10.0);
  }
  const auto p = tree_payments(t, types, pa, 0.5);
  for (std::size_t i = 0; i < p.size(); ++i) {
    EXPECT_GE(p[i], pa[i]);
  }
}

TEST(PaymentFast, BudgetBoundPremiumAtMostTotalAuctionPayment) {
  // Sec. 7-C: sum(p_j - p_j^A) <= sum(p_j^A). Each contributor i at depth
  // r_i >= 1 feeds at most (r_i - 1) ancestors a share of (1/2)^(r_i) each,
  // totalling < p_i^A.
  rng::Rng rng(300);
  for (int trial = 0; trial < 20; ++trial) {
    const auto n = static_cast<std::uint32_t>(2 + rng.uniform_index(400));
    const auto t = tree::random_recursive_tree(n, 0.05, rng);
    std::vector<TaskType> types;
    std::vector<double> pa;
    double total_pa = 0.0;
    for (std::uint32_t i = 0; i < n; ++i) {
      types.push_back(
          TaskType{static_cast<std::uint32_t>(rng.uniform_index(5))});
      pa.push_back(rng.uniform01() * 10.0);
      total_pa += pa.back();
    }
    const auto p = tree_payments(t, types, pa, 0.5);
    EXPECT_LE(solicitation_premium(p, pa), total_pa + 1e-9);
  }
}

TEST(PaymentFast, EmptyTreeNoParticipants) {
  const auto t = tree::IncentiveTree::root_only();
  EXPECT_TRUE(tree_payments(t, {}, {}, 0.5).empty());
}

TEST(Payment, RejectsBadInputs) {
  const auto t = tree::flat_tree(2);
  const std::vector<TaskType> types{TaskType{0}, TaskType{0}};
  const std::vector<double> pa{1.0, 1.0};
  EXPECT_THROW(tree_payments(t, types, std::vector<double>{1.0}, 0.5),
               CheckFailure);
  EXPECT_THROW(tree_payments(t, types, pa, 0.0), CheckFailure);
  EXPECT_THROW(tree_payments(t, types, pa, 1.0), CheckFailure);
  const std::vector<TaskType> too_few{TaskType{0}};
  EXPECT_THROW(tree_payments(t, too_few, pa, 0.5), CheckFailure);
}

TEST(PaymentFast, IsLinearInAuctionPayments) {
  // p = pA + W * pA for a fixed weight matrix W determined by (tree, types,
  // base): scaling pA scales the payments, and payments of a sum are the
  // sum of payments. Catches any accidental nonlinearity (clamps, etc.).
  rng::Rng rng(400);
  const std::uint32_t n = 120;
  const auto t = tree::random_recursive_tree(n, 0.2, rng);
  std::vector<TaskType> types;
  std::vector<double> a(n);
  std::vector<double> b(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    types.push_back(
        TaskType{static_cast<std::uint32_t>(rng.uniform_index(3))});
    a[i] = rng.uniform01() * 5.0;
    b[i] = rng.uniform01() * 7.0;
  }
  const auto pa = tree_payments(t, types, a, 0.5);
  const auto pb = tree_payments(t, types, b, 0.5);
  std::vector<double> sum(n);
  std::vector<double> scaled(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    sum[i] = a[i] + b[i];
    scaled[i] = 3.0 * a[i];
  }
  const auto psum = tree_payments(t, types, sum, 0.5);
  const auto pscaled = tree_payments(t, types, scaled, 0.5);
  for (std::uint32_t i = 0; i < n; ++i) {
    EXPECT_NEAR(psum[i], pa[i] + pb[i], 1e-9 * (1.0 + psum[i]));
    EXPECT_NEAR(pscaled[i], 3.0 * pa[i], 1e-9 * (1.0 + pscaled[i]));
  }
}

TEST(Payment, SolicitationPremiumComputation) {
  const std::vector<double> p{5.0, 3.0};
  const std::vector<double> pa{4.0, 3.0};
  EXPECT_DOUBLE_EQ(solicitation_premium(p, pa), 1.0);
}

}  // namespace
}  // namespace rit::core
