#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <span>
#include <vector>

#include "core/cra.h"
#include "rng/rng.h"

namespace rit::core {
namespace {

std::uint32_t count_winners(const CraOutcome& o) {
  std::uint32_t c = 0;
  for (bool w : o.won) c += w ? 1 : 0;
  return c;
}

TEST(ConsensusRoundDown, ZeroCountIsZero) {
  EXPECT_EQ(consensus_round_down(0, 0.3), 0u);
}

TEST(ConsensusRoundDown, ExactPowersWithYZero) {
  // With y = 0 the consensus set is exactly the powers of two.
  EXPECT_EQ(consensus_round_down(1, 0.0), 1u);
  EXPECT_EQ(consensus_round_down(2, 0.0), 2u);
  EXPECT_EQ(consensus_round_down(3, 0.0), 2u);
  EXPECT_EQ(consensus_round_down(4, 0.0), 4u);
  EXPECT_EQ(consensus_round_down(1023, 0.0), 512u);
  EXPECT_EQ(consensus_round_down(1024, 0.0), 1024u);
}

TEST(ConsensusRoundDown, ValueIsInConsensusSetAndBelowCount) {
  rng::Rng rng(1);
  for (int trial = 0; trial < 2000; ++trial) {
    const std::uint64_t count = 1 + rng.uniform_u64(100000);
    const double y = rng.uniform01();
    const std::uint64_t v = consensus_round_down(count, y);
    EXPECT_LE(v, count);
    if (v == 0) {
      // Only possible when 2^(z+y) < 1 for the maximal feasible z, i.e.
      // count == 1 and y > 0.
      EXPECT_EQ(count, 1u);
      EXPECT_GT(y, 0.0);
      continue;
    }
    // v = floor(2^(z+y)) for some integer z; recover z and verify both
    // sides of the maximality condition.
    const double exact = std::log2(static_cast<double>(count));
    const double z = std::floor(exact - y);
    EXPECT_EQ(v, static_cast<std::uint64_t>(std::floor(std::exp2(z + y))));
    EXPECT_GT(std::exp2(z + 1.0 + y), static_cast<double>(count) * (1 - 1e-12));
  }
}

TEST(ConsensusRoundDown, HalvingBoundsTheRatio) {
  // The consensus value is within a factor 2 of the count: count/2 < 2^(z+y+1)/2 <= v...
  // precisely: v > count/2 - 1 (floor effects aside, 2^(z+y) > count/2).
  rng::Rng rng(2);
  for (int trial = 0; trial < 1000; ++trial) {
    const std::uint64_t count = 2 + rng.uniform_u64(1 << 20);
    const double y = rng.uniform01();
    const std::uint64_t v = consensus_round_down(count, y);
    EXPECT_GT(static_cast<double>(v) + 1.0, static_cast<double>(count) / 2.0);
  }
}

TEST(ConsensusRoundDown, GeneralGridBases) {
  // Base 4, y = 0: the grid is {.., 1, 4, 16, 64, ..}.
  EXPECT_EQ(consensus_round_down(1, 0.0, 4.0), 1u);
  EXPECT_EQ(consensus_round_down(3, 0.0, 4.0), 1u);
  EXPECT_EQ(consensus_round_down(4, 0.0, 4.0), 4u);
  EXPECT_EQ(consensus_round_down(63, 0.0, 4.0), 16u);
  EXPECT_EQ(consensus_round_down(64, 0.0, 4.0), 64u);
  // Worst-case rounding loss is a factor of the base: value in
  // (count/base, count]. And averaged over y, the finer base-1.5 grid
  // keeps strictly more of the count than base 4 (pointwise comparison
  // does NOT hold — the grids are differently aligned per y).
  rng::Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t count = 10 + rng.uniform_u64(100000);
    const double y = rng.uniform01();
    for (double base : {1.5, 4.0}) {
      const std::uint64_t v = consensus_round_down(count, y, base);
      EXPECT_LE(v, count);
      EXPECT_GT(static_cast<double>(v) + 1.0,
                static_cast<double>(count) / base);
    }
  }
  double kept15 = 0.0;
  double kept4 = 0.0;
  const int grid = 512;
  for (int i = 0; i < grid; ++i) {
    const double y = (i + 0.5) / grid;
    kept15 += static_cast<double>(consensus_round_down(100000, y, 1.5));
    kept4 += static_cast<double>(consensus_round_down(100000, y, 4.0));
  }
  EXPECT_GT(kept15, kept4);
  EXPECT_THROW(consensus_round_down(10, 0.5, 1.0), CheckFailure);
}

TEST(ConsensusRoundDown, LargerBasesShrinkCoalitionInfluence) {
  // The trade-off the grid base buys: measure of y where a k-shift flips
  // the consensus is log_c(z/(z-k)), decreasing in c.
  const std::uint64_t z = 5000;
  const std::uint64_t k = 100;
  auto measure = [&](double base) {
    const int grid = 4096;
    int changed = 0;
    for (int i = 0; i < grid; ++i) {
      const double y = (i + 0.5) / grid;
      if (consensus_round_down(z, y, base) !=
          consensus_round_down(z - k, y, base)) {
        ++changed;
      }
    }
    return static_cast<double>(changed) / grid;
  };
  const double m2 = measure(2.0);
  const double m8 = measure(8.0);
  EXPECT_LT(m8, m2);
  EXPECT_LE(m2, std::log2(static_cast<double>(z) / (z - k)) + 2.0 / 4096);
  EXPECT_LE(m8, std::log(static_cast<double>(z) / (z - k)) / std::log(8.0) +
                    2.0 / 4096);
}

TEST(ConsensusRoundDown, CoalitionInfluenceMeasureMatchesLemma62) {
  // The heart of Lemma 6.2: a coalition that adds/removes up to k of the
  // asks below the threshold shifts the raw count within [z-k, z]; the
  // consensus value only changes on a set of y of measure at most
  // log2(z / (z-k)). Evaluate the measure exactly-ish on a fine y-grid.
  rng::Rng rng(99);
  for (int trial = 0; trial < 50; ++trial) {
    const std::uint64_t z = 200 + rng.uniform_u64(100000);
    const std::uint64_t k = 1 + rng.uniform_u64(z / 20);  // k <= z/20
    const int grid = 4096;
    int changed = 0;
    for (int i = 0; i < grid; ++i) {
      const double y = (i + 0.5) / grid;
      if (consensus_round_down(z, y) != consensus_round_down(z - k, y)) {
        ++changed;
      }
    }
    const double measure = static_cast<double>(changed) / grid;
    const double bound = std::log2(static_cast<double>(z) /
                                   static_cast<double>(z - k));
    EXPECT_LE(measure, bound + 2.0 / grid)
        << "z=" << z << " k=" << k << " measure=" << measure
        << " bound=" << bound;
  }
}

TEST(Cra, EmptyAsksNoWinners) {
  rng::Rng rng(3);
  const CraOutcome o = run_cra({}, {.q = 5, .m_i = 5}, rng);
  EXPECT_EQ(o.num_winners, 0u);
  EXPECT_TRUE(o.won.empty());
}

TEST(Cra, ZeroTasksNoWinners) {
  rng::Rng rng(4);
  const std::vector<double> asks{1.0, 2.0, 3.0};
  const CraOutcome o = run_cra(asks, {.q = 0, .m_i = 5}, rng);
  EXPECT_EQ(count_winners(o), 0u);
}

TEST(Cra, NeverAllocatesMoreThanQ) {
  rng::Rng rng(5);
  std::vector<double> asks;
  for (int i = 0; i < 500; ++i) asks.push_back(0.1 + 0.01 * i);
  for (int trial = 0; trial < 200; ++trial) {
    const CraOutcome o = run_cra(asks, {.q = 7, .m_i = 10}, rng);
    EXPECT_LE(count_winners(o), 7u);
    EXPECT_EQ(count_winners(o), o.num_winners);
  }
}

TEST(Cra, WinnersNeverOutbidTheClearingPrice) {
  rng::Rng rng(6);
  rng::Rng ask_rng(7);
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<double> asks;
    const std::size_t n = 1 + ask_rng.uniform_index(300);
    for (std::size_t i = 0; i < n; ++i) {
      asks.push_back(ask_rng.uniform_real_left_open(0.0, 10.0));
    }
    const auto q = static_cast<std::uint32_t>(1 + ask_rng.uniform_index(20));
    const auto m = static_cast<std::uint32_t>(q + ask_rng.uniform_index(50));
    const CraOutcome o = run_cra(asks, {.q = q, .m_i = m}, rng);
    for (std::size_t w = 0; w < asks.size(); ++w) {
      if (o.won[w]) {
        EXPECT_LE(asks[w], o.clearing_price)
            << "IR violation (Lemma 6.1) at trial " << trial;
      }
    }
    if (o.num_winners == 0) {
      EXPECT_EQ(o.clearing_price, 0.0);
    }
  }
}

TEST(Cra, DeterministicGivenRngState) {
  std::vector<double> asks;
  for (int i = 0; i < 100; ++i) asks.push_back(1.0 + i * 0.05);
  rng::Rng a(8);
  rng::Rng b(8);
  const CraOutcome oa = run_cra(asks, {.q = 10, .m_i = 20}, a);
  const CraOutcome ob = run_cra(asks, {.q = 10, .m_i = 20}, b);
  EXPECT_EQ(oa.won, ob.won);
  EXPECT_EQ(oa.clearing_price, ob.clearing_price);
}

TEST(Cra, WorkspaceOverloadMatchesAllocatingOverload) {
  // Same rng state in, bit-identical outcome out — including when the
  // workspace is reused across rounds of different sizes, so stale capacity
  // can never leak into the result.
  std::vector<double> asks;
  for (int i = 0; i < 150; ++i) asks.push_back(0.5 + 0.02 * i);
  CraWorkspace ws;
  CraOutcome reused;
  for (const std::uint32_t n : {150u, 40u, 150u, 7u}) {
    const auto view = std::span<const double>(asks).first(n);
    const CraParams params{.q = n / 3 + 1, .m_i = n / 2 + 1};
    rng::Rng a(21);
    rng::Rng b(21);
    const CraOutcome fresh = run_cra(view, params, a);
    run_cra(view, params, b, ws, reused);
    EXPECT_EQ(reused.won, fresh.won);
    EXPECT_EQ(reused.num_winners, fresh.num_winners);
    EXPECT_EQ(reused.clearing_price, fresh.clearing_price);
    EXPECT_EQ(reused.raw_count, fresh.raw_count);
    EXPECT_EQ(reused.consensus_count, fresh.consensus_count);
    EXPECT_EQ(reused.sample_min, fresh.sample_min);
  }
}

TEST(Cra, WinnersAreAmongTheCheapestRawCount) {
  // All winners must have value <= the sampled threshold s (they are chosen
  // from the n_s <= z_s cheapest asks).
  rng::Rng rng(9);
  std::vector<double> asks;
  for (int i = 0; i < 400; ++i) asks.push_back(0.5 + 0.01 * i);
  for (int trial = 0; trial < 100; ++trial) {
    const CraOutcome o = run_cra(asks, {.q = 20, .m_i = 40}, rng);
    for (std::size_t w = 0; w < asks.size(); ++w) {
      if (o.won[w]) {
        EXPECT_LE(asks[w], o.sample_min);
      }
    }
    EXPECT_LE(o.consensus_count, o.raw_count == 0 ? 0 : o.raw_count);
  }
}

TEST(Cra, EmptySamplePolicyNoWinnersCanYieldZero) {
  // With q + m_i astronomically large, the per-ask sample probability is
  // ~0, so the sample is (almost) always empty.
  std::vector<double> asks{1.0, 2.0, 3.0};
  rng::Rng rng(10);
  CraParams params{.q = 1000000, .m_i = 1000000,
                   .empty_sample = EmptySamplePolicy::kNoWinners};
  int winners = 0;
  for (int t = 0; t < 50; ++t) {
    winners += count_winners(run_cra(asks, params, rng));
  }
  EXPECT_EQ(winners, 0);
}

TEST(Cra, EmptySamplePolicyAllAsksStaysProductiveAndIr) {
  std::vector<double> asks{1.0, 2.0, 3.0};
  rng::Rng rng(11);
  CraParams params{.q = 1000000, .m_i = 1000000,
                   .empty_sample = EmptySamplePolicy::kAllAsks};
  bool any = false;
  for (int t = 0; t < 50; ++t) {
    const CraOutcome o = run_cra(asks, params, rng);
    for (std::size_t w = 0; w < asks.size(); ++w) {
      if (o.won[w]) {
        any = true;
        EXPECT_LE(asks[w], o.clearing_price);
        EXPECT_TRUE(std::isfinite(o.clearing_price));
      }
    }
  }
  EXPECT_TRUE(any);
}

TEST(Cra, SingleAskCannotClearTheConsensusHurdle) {
  // With z_s = 1 the consensus value 2^(z+y) <= 1 floors to 0 for every
  // y > 0, so a lone ask (almost) never wins — the mechanism needs real
  // competition per Remark 6.1. This is the faithful reading of Alg. 1 and
  // the reason RitConfig::stall_round_limit exists.
  std::vector<double> asks{2.5};
  rng::Rng rng(12);
  int wins = 0;
  for (int t = 0; t < 200; ++t) {
    wins += count_winners(run_cra(asks, {.q = 1, .m_i = 1}, rng));
  }
  EXPECT_EQ(wins, 0);
}

TEST(Cra, BudgetPriceKicksInWhenConsensusExceedsBudget) {
  // Many equal cheap asks force n_s large; with a small budget the
  // (q+m_i+1)-st price path must keep winners <= q+m_i and the price at
  // least the winning values.
  std::vector<double> asks(1000, 1.0);
  asks.push_back(9.0);
  rng::Rng rng(13);
  bool saw_budget_price = false;
  for (int t = 0; t < 300; ++t) {
    const CraOutcome o = run_cra(asks, {.q = 3, .m_i = 4}, rng);
    EXPECT_LE(count_winners(o), 3u);
    if (o.used_budget_price) {
      saw_budget_price = true;
      EXPECT_GE(o.clearing_price, 1.0);
    }
  }
  EXPECT_TRUE(saw_budget_price);
}

TEST(CraOrderStatistic, WinnersAndPriceAreDeterministic) {
  // Ablation mode: a plain (q+m_i+1)-st price round.
  const std::vector<double> asks{5.0, 1.0, 3.0, 2.0, 4.0, 6.0};
  rng::Rng rng(20);
  CraParams params{.q = 1, .m_i = 2,
                   .price_mode = PriceMode::kOrderStatistic};
  const CraOutcome o = run_cra(asks, params, rng);
  // budget = 3: potential winners are asks 1.0, 2.0, 3.0; price = 4.0.
  EXPECT_EQ(o.num_winners, 1u);
  EXPECT_DOUBLE_EQ(o.clearing_price, 4.0);
  for (std::size_t w = 0; w < asks.size(); ++w) {
    if (o.won[w]) {
      EXPECT_LE(asks[w], 3.0);
    }
  }
}

TEST(CraOrderStatistic, NoPriceWithoutEnoughAsks) {
  const std::vector<double> asks{1.0, 2.0, 3.0};
  rng::Rng rng(21);
  CraParams params{.q = 1, .m_i = 2,
                   .price_mode = PriceMode::kOrderStatistic};
  const CraOutcome o = run_cra(asks, params, rng);  // needs budget+1 = 4 asks
  EXPECT_EQ(o.num_winners, 0u);
}

// The demand-reduction book: six cheap organic asks, a price cliff, and
// three expensive organic asks. Budget q+m = 10, so the 11th lowest ask
// sets the deterministic price. An attacker with 6 units at cost 4.0:
//   truthful: sorted book = {1.0 x6, 4.0 x6, 9.5, 9.8, 9.9};
//             the 11th lowest is its own 4.0 -> margin 0;
//   withhold to 2 units: {1.0 x6, 4.0 x2, 9.5, 9.8, 9.9};
//             the 11th lowest is 9.9 -> margin 5.9 per winning unit.
std::vector<double> demand_reduction_book() {
  std::vector<double> book(6, 1.0);
  book.push_back(9.5);
  book.push_back(9.8);
  book.push_back(9.9);
  return book;
}

double attacker_cra_utility(const CraParams& params, int units,
                            std::uint64_t seed) {
  const std::vector<double> book = demand_reduction_book();
  std::vector<double> asks = book;
  for (int u = 0; u < units; ++u) asks.push_back(4.0);
  rng::Rng rng(seed);
  const CraOutcome o = run_cra(asks, params, rng);
  double utility = 0.0;
  for (std::size_t w = book.size(); w < asks.size(); ++w) {
    if (o.won[w]) utility += o.clearing_price - 4.0;
  }
  return utility;
}

TEST(CraOrderStatistic, DemandReductionManipulatesThePrice) {
  // The classic uniform-price manipulation the consensus mode exists to
  // kill: withheld units push the price-setting slot across the cliff.
  CraParams params{.q = 8, .m_i = 2,
                   .price_mode = PriceMode::kOrderStatistic};
  double truthful = 0.0;
  double reduced = 0.0;
  const int trials = 200;  // randomness only in the q-of-budget draw
  for (int t = 0; t < trials; ++t) {
    truthful += attacker_cra_utility(params, 6, 100 + t);
    reduced += attacker_cra_utility(params, 2, 100 + t);
  }
  truthful /= trials;
  reduced /= trials;
  EXPECT_NEAR(truthful, 0.0, 1e-12);  // price == own ask: zero margin
  EXPECT_GT(reduced, 4.0)
      << "order-statistic mode must be manipulable by demand reduction";
}

TEST(CraOrderStatistic, DemandReductionIsUnprofitableUnderConsensus) {
  // Same book under the paper's mode: the price is a sampled threshold, so
  // withholding units cannot place one's own ask at the price-setting slot.
  // Expected utilities: truthful weakly better (more units win whenever the
  // threshold clears 4.0).
  CraParams params{.q = 8, .m_i = 2};
  double truthful = 0.0;
  double reduced = 0.0;
  const int trials = 6000;
  for (int t = 0; t < trials; ++t) {
    truthful += attacker_cra_utility(params, 6, 500 + t);
    reduced += attacker_cra_utility(params, 2, 500 + t);
  }
  truthful /= trials;
  reduced /= trials;
  EXPECT_LE(reduced, truthful + 0.1)
      << "truthful=" << truthful << " reduced=" << reduced;
}

TEST(Cra, ComparativeStaticsCheaperBooksClearCheaper) {
  // Comparative statics of the sampled-threshold price: shifting every ask
  // down shifts the expected clearing price down (the threshold is a
  // sample min of the book). A distribution-level sanity check on top of
  // the per-run invariants.
  rng::Rng book_rng(42);
  std::vector<double> expensive;
  for (int i = 0; i < 300; ++i) {
    expensive.push_back(book_rng.uniform_real_left_open(2.0, 10.0));
  }
  std::vector<double> cheap;
  for (double v : expensive) cheap.push_back(v - 1.5);
  CraParams params{.q = 30, .m_i = 40};
  auto mean_price = [&](const std::vector<double>& book, std::uint64_t seed) {
    rng::Rng rng(seed);
    double sum = 0.0;
    int priced = 0;
    for (int t = 0; t < 2000; ++t) {
      const CraOutcome o = run_cra(book, params, rng);
      if (o.num_winners > 0) {
        sum += o.clearing_price;
        ++priced;
      }
    }
    return sum / priced;
  };
  EXPECT_LT(mean_price(cheap, 7), mean_price(expensive, 7) - 0.5);
}

TEST(Cra, MoreSupplyLowersExpectedPrice) {
  // Doubling the book at the same demand lowers the expected clearing
  // price: the Fig. 6(a) competition effect at CRA granularity.
  rng::Rng book_rng(43);
  std::vector<double> thin;
  for (int i = 0; i < 150; ++i) {
    thin.push_back(book_rng.uniform_real_left_open(0.0, 10.0));
  }
  std::vector<double> thick = thin;
  for (int i = 0; i < 150; ++i) {
    thick.push_back(book_rng.uniform_real_left_open(0.0, 10.0));
  }
  CraParams params{.q = 25, .m_i = 30};
  auto mean_price = [&](const std::vector<double>& book) {
    rng::Rng rng(11);
    double sum = 0.0;
    int priced = 0;
    for (int t = 0; t < 3000; ++t) {
      const CraOutcome o = run_cra(book, params, rng);
      if (o.num_winners > 0) {
        sum += o.clearing_price;
        ++priced;
      }
    }
    return sum / priced;
  };
  EXPECT_LT(mean_price(thick), mean_price(thin));
}

TEST(Cra, UniformWinnerSelectionAmongChosen) {
  // With 4 identical asks and q = 1, whoever is chosen must win ~uniformly.
  std::vector<double> asks(4, 1.0);
  rng::Rng rng(14);
  std::array<int, 4> wins{};
  int total = 0;
  for (int t = 0; t < 20000; ++t) {
    const CraOutcome o = run_cra(asks, {.q = 1, .m_i = 1}, rng);
    for (int w = 0; w < 4; ++w) {
      if (o.won[w]) {
        ++wins[w];
        ++total;
      }
    }
  }
  ASSERT_GT(total, 1000);
  for (int w = 0; w < 4; ++w) {
    EXPECT_NEAR(static_cast<double>(wins[w]) / total, 0.25, 0.05);
  }
}

}  // namespace
}  // namespace rit::core
