// Checkpoint format and session lifecycle: bit-exact round-trips, checksum
// verification, and refuse-to-resume on any corruption or binding mismatch.
#include <gtest/gtest.h>

#include <cstddef>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "aggregate_bits.h"
#include "common/atomic_file.h"
#include "common/check.h"
#include "common/hash.h"
#include "common/num_io.h"
#include "sim/chaos.h"
#include "sim/checkpoint.h"
#include "sim/fault.h"
#include "sim/metrics.h"

namespace rit::sim {
namespace {

namespace fs = std::filesystem;
using testbits::expect_aggregate_identical;
using testbits::expect_ledgers_identical;

fs::path scratch(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / "ritcs_ckpt" / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::string read_all(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// An aggregate with awkward values — negatives, non-representable decimals,
// huge magnitudes — so a round-trip that loses even one mantissa bit fails.
AggregateMetrics make_agg(double salt) {
  AggregateMetrics a;
  for (int i = 0; i < 3; ++i) {
    TrialMetrics t;
    const double x = salt + 0.1 * static_cast<double>(i);
    t.success = i != 1;
    t.avg_utility_auction = -1.0 / 3.0 + x;
    t.avg_utility_rit = 1e-17 * x;
    t.total_payment_auction = 1e12 + x;
    t.total_payment_rit = 0.1 + x;
    t.runtime_auction_ms = 3.14159 * x;
    t.runtime_rit_ms = x / 7.0;
    t.solicitation_premium = -x;
    t.tasks_allocated = static_cast<std::uint64_t>(i);
    t.probability_degraded = i == 2;
    a.add(t);
  }
  a.note_failed();
  a.note_quarantined();
  return a;
}

FaultLedger make_ledger(std::uint64_t base) {
  FaultLedger ledger;
  ledger.record(base, base * 1000 + 7, FaultKind::kException, "run_trial",
                "reason with several spaces in it");
  ledger.record(base + 1, base * 1000 + 8, FaultKind::kNonFinite, "",
                "non-finite metric value");
  ledger.record(base + 2, base * 1000 + 9, FaultKind::kTimeout,
                "make_instance", "trial took 9 ms");
  return ledger;
}

CheckpointData make_data() {
  CheckpointData d;
  d.config_hash = 0xfeedface12345678ull;
  d.seed = 42;
  d.threads = 3;
  d.trials = 100;
  d.every = 10;
  d.completed.push_back(WorkerCheckpoint{make_agg(1.0), make_ledger(5)});
  d.completed.push_back(WorkerCheckpoint{make_agg(-2.5), FaultLedger{}});
  d.has_partial = true;
  d.partial_point = 2;
  d.partial_cursor = 30;
  d.partial_workers.push_back(WorkerCheckpoint{make_agg(7.75), FaultLedger{}});
  d.partial_workers.push_back(
      WorkerCheckpoint{AggregateMetrics{}, make_ledger(11)});
  d.partial_workers.push_back(WorkerCheckpoint{make_agg(0.0), FaultLedger{}});
  return d;
}

TEST(CheckpointFormat, RoundTripIsBitExact) {
  const CheckpointData d = make_data();
  const std::string text = serialize_checkpoint(d);
  const CheckpointData back = parse_checkpoint(text, "test");

  EXPECT_EQ(back.config_hash, d.config_hash);
  EXPECT_EQ(back.seed, d.seed);
  EXPECT_EQ(back.threads, d.threads);
  EXPECT_EQ(back.trials, d.trials);
  EXPECT_EQ(back.every, d.every);
  ASSERT_EQ(back.completed.size(), d.completed.size());
  for (std::size_t i = 0; i < d.completed.size(); ++i) {
    expect_aggregate_identical(back.completed[i].agg, d.completed[i].agg);
    expect_ledgers_identical(back.completed[i].faults, d.completed[i].faults);
  }
  EXPECT_TRUE(back.has_partial);
  EXPECT_EQ(back.partial_point, d.partial_point);
  EXPECT_EQ(back.partial_cursor, d.partial_cursor);
  ASSERT_EQ(back.partial_workers.size(), d.partial_workers.size());
  for (std::size_t w = 0; w < d.partial_workers.size(); ++w) {
    expect_aggregate_identical(back.partial_workers[w].agg,
                               d.partial_workers[w].agg);
    expect_ledgers_identical(back.partial_workers[w].faults,
                             d.partial_workers[w].faults);
  }
  // Fixed point: re-serializing the parsed image reproduces the bytes.
  EXPECT_EQ(serialize_checkpoint(back), text);
}

TEST(CheckpointFormat, EmptyDataRoundTrips) {
  CheckpointData d;
  d.config_hash = 1;
  d.seed = 2;
  d.threads = 1;
  d.trials = 10;
  d.every = 0;
  const CheckpointData back =
      parse_checkpoint(serialize_checkpoint(d), "test");
  EXPECT_TRUE(back.completed.empty());
  EXPECT_FALSE(back.has_partial);
}

TEST(CheckpointFormat, BitFlipAnywhereIsRejected) {
  const fs::path dir = scratch("bitflip");
  const std::string path = (dir / "sweep.ckpt").string();
  const std::string text = serialize_checkpoint(make_data());
  // Flip one bit at several positions spread across the body (header line,
  // hex doubles in the middle, late entries) — every one must be caught by
  // the checksum, not by whichever parse error it happens to cause. The
  // footer itself is skipped: corrupting the recorded checksum digits can
  // surface as a parse error instead, which is also a refusal.
  for (const std::size_t byte :
       {std::size_t{0}, text.size() / 3, text.size() / 2,
        2 * text.size() / 3}) {
    write_file_atomic(path, text);
    chaos::flip_bit(path, byte, 1);
    try {
      parse_checkpoint(read_all(path), path);
      FAIL() << "corruption at byte " << byte << " not rejected";
    } catch (const CheckFailure& e) {
      EXPECT_NE(std::string(e.what()).find("refusing to resume"),
                std::string::npos)
          << e.what();
    }
  }
}

TEST(CheckpointFormat, TruncationIsRejected) {
  const fs::path dir = scratch("truncate");
  const std::string path = (dir / "sweep.ckpt").string();
  const std::string text = serialize_checkpoint(make_data());
  for (const std::size_t keep :
       {std::size_t{0}, text.size() / 4, text.size() - 1}) {
    write_file_atomic(path, text);
    chaos::truncate_file(path, keep);
    try {
      parse_checkpoint(read_all(path), path);
      FAIL() << "truncation to " << keep << " bytes not rejected";
    } catch (const CheckFailure& e) {
      EXPECT_NE(std::string(e.what()).find("refusing to resume"),
                std::string::npos)
          << e.what();
    }
  }
}

TEST(CheckpointFormat, WrongVersionIsRejectedEvenWithValidChecksum) {
  // A well-formed file from a hypothetical v2 writer: correct checksum,
  // unknown header. Version validation must fire on its own.
  std::string body = "ritcs-checkpoint v2\nconfig 1\n";
  body += "checksum " + format_u64(fnv1a64(body)) + "\n";
  EXPECT_THROW(parse_checkpoint(body, "test"), CheckFailure);
}

CheckpointSession::Params base_params(const std::string& path) {
  CheckpointSession::Params p;
  p.path = path;
  p.config_hash = 0xabcdefull;
  p.seed = 99;
  p.threads = 2;
  p.trials = 50;
  p.every = 10;
  p.resume = false;
  return p;
}

TEST(CheckpointSession, SaveLoadLifecycle) {
  const fs::path dir = scratch("lifecycle");
  const std::string path = (dir / "sweep.ckpt").string();

  GuardedResult r0{make_agg(3.0), make_ledger(1)};
  {
    CheckpointSession a(base_params(path));
    GuardedResult ignored;
    EXPECT_FALSE(a.completed_point(0, &ignored));
    a.complete_point(0, r0);
    a.save_partial(1, 20,
                   {WorkerCheckpoint{make_agg(4.0), FaultLedger{}},
                    WorkerCheckpoint{make_agg(5.0), make_ledger(21)}});
    EXPECT_EQ(a.checkpoints_written(), 2u);
  }

  CheckpointSession::Params p = base_params(path);
  p.resume = true;
  CheckpointSession b(p);
  GuardedResult got;
  ASSERT_TRUE(b.completed_point(0, &got));
  expect_aggregate_identical(got.metrics, r0.metrics);
  expect_ledgers_identical(got.faults, r0.faults);
  EXPECT_FALSE(b.completed_point(1, &got));

  std::uint64_t cursor = 0;
  std::vector<WorkerCheckpoint> workers;
  ASSERT_TRUE(b.partial_state(1, &cursor, &workers));
  EXPECT_EQ(cursor, 20u);
  ASSERT_EQ(workers.size(), 2u);
  expect_aggregate_identical(workers[1].agg, make_agg(5.0));
  EXPECT_FALSE(b.partial_state(0, &cursor, &workers));
}

TEST(CheckpointSession, EveryBindingMismatchRefusesToResume) {
  const fs::path dir = scratch("bindings");
  const std::string path = (dir / "sweep.ckpt").string();
  {
    CheckpointSession a(base_params(path));
    a.complete_point(0, GuardedResult{make_agg(1.0), FaultLedger{}});
  }

  struct Case {
    const char* name;
    void (*mutate)(CheckpointSession::Params&);
  };
  const Case cases[] = {
      {"config hash", [](CheckpointSession::Params& p) { ++p.config_hash; }},
      {"seed", [](CheckpointSession::Params& p) { ++p.seed; }},
      {"thread count", [](CheckpointSession::Params& p) { ++p.threads; }},
      {"trials per point", [](CheckpointSession::Params& p) { ++p.trials; }},
      {"checkpoint interval",
       [](CheckpointSession::Params& p) { ++p.every; }},
  };
  for (const Case& c : cases) {
    CheckpointSession::Params p = base_params(path);
    p.resume = true;
    c.mutate(p);
    try {
      CheckpointSession bad(p);
      FAIL() << c.name << " mismatch not rejected";
    } catch (const CheckFailure& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find(c.name), std::string::npos) << what;
      EXPECT_NE(what.find("refusing to resume"), std::string::npos) << what;
    }
  }

  // The exact same bindings, by contrast, load fine.
  CheckpointSession::Params ok = base_params(path);
  ok.resume = true;
  CheckpointSession good(ok);
  GuardedResult got;
  EXPECT_TRUE(good.completed_point(0, &got));
}

TEST(CheckpointSession, CorruptFileRefusesToResume) {
  const fs::path dir = scratch("corrupt_session");
  const std::string path = (dir / "sweep.ckpt").string();
  {
    CheckpointSession a(base_params(path));
    a.complete_point(0, GuardedResult{make_agg(1.0), FaultLedger{}});
  }
  chaos::flip_bit(path, 64, 5);
  CheckpointSession::Params p = base_params(path);
  p.resume = true;
  try {
    CheckpointSession bad(p);
    FAIL() << "corrupt checkpoint not rejected";
  } catch (const CheckFailure& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("refusing to resume"), std::string::npos) << what;
    EXPECT_NE(what.find(path), std::string::npos) << what;
  }
}

TEST(CheckpointSession, ResumeWithNoFileIsAFreshStart) {
  const fs::path dir = scratch("fresh");
  CheckpointSession::Params p = base_params((dir / "none.ckpt").string());
  p.resume = true;
  CheckpointSession s(p);
  GuardedResult got;
  EXPECT_FALSE(s.completed_point(0, &got));
  EXPECT_EQ(s.checkpoints_written(), 0u);
}

TEST(CheckpointSession, NoResumeSupersedesExistingFile) {
  const fs::path dir = scratch("supersede");
  const std::string path = (dir / "sweep.ckpt").string();
  {
    CheckpointSession a(base_params(path));
    a.complete_point(0, GuardedResult{make_agg(1.0), make_ledger(3)});
  }
  // resume=false ignores the file on load and overwrites it on first save.
  CheckpointSession b(base_params(path));
  GuardedResult got;
  EXPECT_FALSE(b.completed_point(0, &got));
  b.complete_point(0, GuardedResult{make_agg(9.0), FaultLedger{}});
  CheckpointSession::Params p = base_params(path);
  p.resume = true;
  CheckpointSession c(p);
  ASSERT_TRUE(c.completed_point(0, &got));
  expect_aggregate_identical(got.metrics, make_agg(9.0));
  EXPECT_TRUE(got.faults.empty());
}

TEST(CheckpointSession, OutOfOrderSavesAreRejected) {
  const fs::path dir = scratch("order");
  CheckpointSession s(base_params((dir / "sweep.ckpt").string()));
  EXPECT_THROW(s.complete_point(1, GuardedResult{}), CheckFailure);
  EXPECT_THROW(s.save_partial(2, 5, {}), CheckFailure);
  s.complete_point(0, GuardedResult{make_agg(1.0), FaultLedger{}});
  EXPECT_THROW(s.complete_point(0, GuardedResult{}), CheckFailure);
}

}  // namespace
}  // namespace rit::sim
