#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/check.h"
#include "obs/obs.h"
#include "obs/trace_export.h"
#include "stats/histogram.h"
#include "stats/online_stats.h"

namespace rit::obs {
namespace {

// The tracer is process-global state; every test that records restores the
// idle/empty default before returning so tests stay order-independent.
class TracerFixture : public testing::Test {
 protected:
  void TearDown() override {
    stop_tracing();
    clear_trace();
    set_trace_capacity(std::size_t{1} << 20);
  }
};

// Tests below exercise the RIT_TRACE_SPAN / RIT_COUNTER_* macros, which are
// no-ops when the whole build disables observability — obs_off_compile_test
// covers that configuration's (absence of) behavior instead.
#if RIT_OBS_ENABLED

TEST_F(TracerFixture, RecordsNestedAndCrossThreadSpans) {
  start_tracing();
  {
    RIT_TRACE_SPAN("test.outer");
    { RIT_TRACE_SPAN("test.inner"); }
  }
  std::thread worker([] { RIT_TRACE_SPAN("test.worker"); });
  worker.join();
  stop_tracing();

  const std::vector<TraceEvent> events = collect_trace();
  ASSERT_EQ(events.size(), 3u);

  const TraceEvent* outer = nullptr;
  const TraceEvent* inner = nullptr;
  const TraceEvent* from_worker = nullptr;
  for (const TraceEvent& e : events) {
    const std::string name = e.name;
    if (name == "test.outer") outer = &e;
    if (name == "test.inner") inner = &e;
    if (name == "test.worker") from_worker = &e;
    EXPECT_LE(e.begin_ns, e.end_ns);
  }
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  ASSERT_NE(from_worker, nullptr);

  // The RAII scopes nest, so the recorded intervals must too.
  EXPECT_EQ(outer->tid, inner->tid);
  EXPECT_LE(outer->begin_ns, inner->begin_ns);
  EXPECT_LE(inner->end_ns, outer->end_ns);
  EXPECT_NE(from_worker->tid, outer->tid);
}

TEST_F(TracerFixture, InactiveTracerRecordsNothing) {
  EXPECT_FALSE(tracing_active());
  { RIT_TRACE_SPAN("test.ignored"); }
  EXPECT_TRUE(collect_trace().empty());
}

TEST_F(TracerFixture, CollectOrdersParentsBeforeChildren) {
  start_tracing();
  {
    RIT_TRACE_SPAN("test.parent");
    { RIT_TRACE_SPAN("test.child"); }
  }
  stop_tracing();
  const std::vector<TraceEvent> events = collect_trace();
  ASSERT_EQ(events.size(), 2u);
  // Spans retire child-first (destructor order); collect re-sorts so the
  // enclosing span comes first.
  EXPECT_STREQ(events[0].name, "test.parent");
  EXPECT_STREQ(events[1].name, "test.child");
}

TEST_F(TracerFixture, CapacityCapDropsAndCounts) {
  set_trace_capacity(2);
  start_tracing();
  for (int i = 0; i < 5; ++i) {
    RIT_TRACE_SPAN("test.capped");
  }
  stop_tracing();
  EXPECT_EQ(collect_trace().size(), 2u);
  EXPECT_EQ(dropped_spans(), 3u);
  // start_tracing() begins a fresh recording: drops reset with the events.
  start_tracing();
  stop_tracing();
  EXPECT_EQ(dropped_spans(), 0u);
}

TEST(Metrics, CounterMacroBumpsGlobalRegistry) {
  const std::uint64_t before =
      Registry::global().counter("test.macro_counter").value();
  RIT_COUNTER_INC("test.macro_counter");
  RIT_COUNTER_ADD("test.macro_counter", 4);
  EXPECT_EQ(Registry::global().counter("test.macro_counter").value(),
            before + 5);
}

#endif  // RIT_OBS_ENABLED

std::vector<TraceEvent> golden_events() {
  return {
      {"tree.build", 1'000, 251'000, 0},
      {"cra.phase1", 252'000, 252'500, 0},
      {"payment.extract", 300'250, 301'000, 1},
  };
}

TEST(TraceExport, ChromeTraceJsonMatchesGoldenFile) {
  const std::string path =
      std::string(RITCS_SOURCE_DIR) + "/tests/golden/trace_golden.json";
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing golden file " << path;
  std::ostringstream golden;
  golden << in.rdbuf();
  EXPECT_EQ(chrome_trace_json(golden_events()), golden.str());
}

TEST(TraceExport, ChromeTraceJsonOfEmptyTraceIsStillValid) {
  const std::string json = chrome_trace_json({});
  EXPECT_EQ(json, "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n]}\n");
}

TEST(TraceExport, PhaseBreakdownComputesSelfTime) {
  // tid 0: trial [0, 1ms] containing phase1 [0.1, 0.4] (with a nested
  // extract [0.15, 0.25]) and phase2 [0.4, 0.6]. tid 1: a bare 0.5ms trial.
  const std::vector<TraceEvent> events = {
      {"cra.phase1", 100'000, 400'000, 0},
      {"rit.extract", 150'000, 250'000, 0},
      {"sim.trial", 0, 1'000'000, 0},
      {"cra.phase2", 400'000, 600'000, 0},
      {"sim.trial", 0, 500'000, 1},
  };
  const std::vector<PhaseStat> phases = phase_breakdown(events);
  ASSERT_EQ(phases.size(), 4u);

  // Sorted by self_ms descending, ties by name.
  EXPECT_EQ(phases[0].name, "sim.trial");
  EXPECT_EQ(phases[0].count, 2u);
  EXPECT_NEAR(phases[0].total_ms, 1.5, 1e-12);
  EXPECT_NEAR(phases[0].self_ms, 1.0, 1e-12);  // 1.0 - 0.3 - 0.2, plus 0.5

  EXPECT_EQ(phases[1].name, "cra.phase1");
  EXPECT_NEAR(phases[1].total_ms, 0.3, 1e-12);
  EXPECT_NEAR(phases[1].self_ms, 0.2, 1e-12);  // minus the nested extract

  EXPECT_EQ(phases[2].name, "cra.phase2");
  EXPECT_NEAR(phases[2].self_ms, 0.2, 1e-12);

  EXPECT_EQ(phases[3].name, "rit.extract");
  EXPECT_NEAR(phases[3].self_ms, 0.1, 1e-12);

  // The invariant the bench tables rely on: self times partition the
  // instrumented wall time exactly.
  double self_sum = 0.0;
  for (const PhaseStat& ph : phases) self_sum += ph.self_ms;
  EXPECT_NEAR(self_sum, 1.5, 1e-12);
}

TEST(TraceExport, PhaseBreakdownClampsChildOutlivingParent) {
  // Clock granularity can make a child appear to end after its parent; self
  // time must clamp at zero instead of going negative.
  const std::vector<TraceEvent> events = {
      {"test.parent", 0, 100, 0},
      {"test.child", 0, 150, 0},
  };
  const std::vector<PhaseStat> phases = phase_breakdown(events);
  ASSERT_EQ(phases.size(), 2u);
  for (const PhaseStat& ph : phases) EXPECT_GE(ph.self_ms, 0.0);
}

TEST(Metrics, SnapshotReflectsEveryInstrumentKind) {
  Registry r;
  r.counter("test.count").add(3);
  r.counter("test.count").add(2);
  r.gauge("test.gauge").set(1.5);
  r.stat("test.stat").observe(2.0);
  r.stat("test.stat").observe(4.0);
  r.histogram("test.histo", 0.0, 10.0, 5).observe(3.0);
  r.histogram("test.histo", 0.0, 10.0, 5).observe(7.0);

  const MetricsSnapshot s = r.snapshot();
  EXPECT_EQ(s.counters.at("test.count"), 5u);
  EXPECT_DOUBLE_EQ(s.gauges.at("test.gauge"), 1.5);
  EXPECT_EQ(s.stats.at("test.stat").count(), 2u);
  EXPECT_DOUBLE_EQ(s.stats.at("test.stat").mean(), 3.0);
  EXPECT_EQ(s.histograms.at("test.histo").count(), 2u);
  EXPECT_EQ(s.histograms.at("test.histo").bucket(1), 1u);  // 3.0
  EXPECT_EQ(s.histograms.at("test.histo").bucket(3), 1u);  // 7.0
}

TEST(Metrics, HistogramShapeIsFixedByFirstRegistration) {
  Registry r;
  r.histogram("test.histo", 0.0, 10.0, 5);
  EXPECT_THROW(r.histogram("test.histo", 0.0, 10.0, 6), CheckFailure);
}

TEST(Metrics, UnsetGaugeDoesNotOverwriteOnMerge) {
  Registry set_one;
  set_one.gauge("test.gauge").set(7.0);
  MetricsSnapshot merged = set_one.snapshot();

  Registry idle;
  idle.gauge("test.gauge");  // registered but never set
  merged.merge(idle.snapshot());
  EXPECT_DOUBLE_EQ(merged.gauges.at("test.gauge"), 7.0);

  Registry overwrite;
  overwrite.gauge("test.gauge").set(9.0);
  merged.merge(overwrite.snapshot());
  EXPECT_DOUBLE_EQ(merged.gauges.at("test.gauge"), 9.0);
}

double trial_value(std::uint64_t t) {
  return std::sin(static_cast<double>(t)) * 10.0 +
         static_cast<double>(t) * 0.1;
}

void feed(Registry& r, std::uint64_t trial) {
  r.counter("sim.trials_run").add(1);
  r.stat("sim.trial_ms").observe(trial_value(trial));
  r.histogram("sim.trial_hist", -10.0, 15.0, 10).observe(trial_value(trial));
}

MetricsSnapshot strided_parallel_merge(std::uint64_t trials,
                                       std::size_t threads,
                                       bool use_real_threads) {
  // The run_many_parallel work split: worker w handles trials w, w+T, ...
  // Each worker owns a registry; snapshots merge in worker-index order.
  std::vector<Registry> workers(threads);
  auto work = [&](std::size_t w) {
    for (std::uint64_t t = w; t < trials; t += threads) feed(workers[w], t);
  };
  if (use_real_threads) {
    std::vector<std::thread> pool;
    for (std::size_t w = 0; w < threads; ++w) pool.emplace_back(work, w);
    for (std::thread& th : pool) th.join();
  } else {
    for (std::size_t w = 0; w < threads; ++w) work(w);
  }
  MetricsSnapshot merged;
  for (const Registry& w : workers) merged.merge(w.snapshot());
  return merged;
}

TEST(Metrics, CrossThreadMergeIsDeterministicAndMatchesSerial) {
  constexpr std::uint64_t kTrials = 40;
  constexpr std::size_t kThreads = 4;

  Registry serial;
  for (std::uint64_t t = 0; t < kTrials; ++t) feed(serial, t);
  const MetricsSnapshot expect = serial.snapshot();

  const MetricsSnapshot a = strided_parallel_merge(kTrials, kThreads, true);
  const MetricsSnapshot b = strided_parallel_merge(kTrials, kThreads, true);
  const MetricsSnapshot c = strided_parallel_merge(kTrials, kThreads, false);

  // Determinism: real threads vs a serial replay of the same per-worker
  // order give bit-identical merged results, run after run.
  EXPECT_EQ(a.stats.at("sim.trial_ms").mean(),
            b.stats.at("sim.trial_ms").mean());
  EXPECT_EQ(a.stats.at("sim.trial_ms").variance(),
            b.stats.at("sim.trial_ms").variance());
  EXPECT_EQ(a.stats.at("sim.trial_ms").mean(),
            c.stats.at("sim.trial_ms").mean());
  EXPECT_EQ(a.stats.at("sim.trial_ms").variance(),
            c.stats.at("sim.trial_ms").variance());

  // Agreement with the fully-serial feed: counters and histogram buckets are
  // exact; Welford moments agree to rounding.
  EXPECT_EQ(a.counters.at("sim.trials_run"),
            expect.counters.at("sim.trials_run"));
  const stats::Histogram& ha = a.histograms.at("sim.trial_hist");
  const stats::Histogram& he = expect.histograms.at("sim.trial_hist");
  ASSERT_EQ(ha.bucket_count(), he.bucket_count());
  for (std::size_t i = 0; i < ha.bucket_count(); ++i) {
    EXPECT_EQ(ha.bucket(i), he.bucket(i)) << "bucket " << i;
  }
  EXPECT_EQ(a.stats.at("sim.trial_ms").count(),
            expect.stats.at("sim.trial_ms").count());
  EXPECT_NEAR(a.stats.at("sim.trial_ms").mean(),
              expect.stats.at("sim.trial_ms").mean(), 1e-10);
  EXPECT_NEAR(a.stats.at("sim.trial_ms").variance(),
              expect.stats.at("sim.trial_ms").variance(), 1e-10);
}

TEST(Metrics, AbsorbFoldsSnapshotIntoLiveRegistry) {
  Registry worker;
  feed(worker, 1);
  feed(worker, 2);

  Registry target;
  target.counter("sim.trials_run").add(10);
  target.absorb(worker.snapshot());

  const MetricsSnapshot s = target.snapshot();
  EXPECT_EQ(s.counters.at("sim.trials_run"), 12u);
  EXPECT_EQ(s.stats.at("sim.trial_ms").count(), 2u);
  EXPECT_EQ(s.histograms.at("sim.trial_hist").count(), 2u);
}

TEST(Metrics, ResetDropsEverything) {
  Registry r;
  feed(r, 3);
  r.reset();
  EXPECT_TRUE(r.snapshot().empty());
}

TEST(Metrics, ReservoirKeepsIndexKeyedPrefixAndClampsCapacity) {
  Reservoir r(/*capacity=*/4);
  r.observe(0, 10.0);
  r.observe(3, 13.0);
  r.observe(4, 99.0);   // beyond capacity: dropped, not evicting
  r.observe(100, 1.0);  // far beyond: dropped
  const std::map<std::uint64_t, double> s = r.samples();
  ASSERT_EQ(s.size(), 2u);
  EXPECT_DOUBLE_EQ(s.at(0), 10.0);
  EXPECT_DOUBLE_EQ(s.at(3), 13.0);
}

TEST(Metrics, ReservoirMergeIsThreadCountInvariant) {
  // The guarded runner tags each observation with its trial index, so worker
  // reservoirs hold disjoint index sets and the merged sample set — hence
  // the p50/p95/p99 derived from it — is identical for every thread count.
  constexpr std::uint64_t kTrials = 64;
  const auto run_split = [](std::size_t threads) {
    std::vector<Registry> workers(threads);
    for (std::size_t w = 0; w < threads; ++w) {
      for (std::uint64_t t = w; t < kTrials; t += threads) {
        workers[w].reservoir("sim.trial_ms").observe(t, trial_value(t));
      }
    }
    MetricsSnapshot merged;
    for (const Registry& w : workers) merged.merge(w.snapshot());
    return merged.reservoirs.at("sim.trial_ms");
  };
  const auto serial = run_split(1);
  EXPECT_EQ(serial.size(), kTrials);
  EXPECT_EQ(run_split(2), serial);
  EXPECT_EQ(run_split(8), serial);
  EXPECT_EQ(run_split(7), serial);  // non-divisor stride too
}

TEST(Metrics, ReservoirAbsorbFoldsIntoLiveRegistry) {
  Registry worker;
  worker.reservoir("sim.trial_ms").observe(2, 5.0);
  Registry target;
  target.reservoir("sim.trial_ms").observe(1, 4.0);
  target.absorb(worker.snapshot());
  const auto samples = target.snapshot().reservoirs.at("sim.trial_ms");
  ASSERT_EQ(samples.size(), 2u);
  EXPECT_DOUBLE_EQ(samples.at(1), 4.0);
  EXPECT_DOUBLE_EQ(samples.at(2), 5.0);
}

TEST(Metrics, ToJsonRendersQuantilesFromReservoir) {
  Registry r;
  for (std::uint64_t t = 0; t < 100; ++t) {
    r.reservoir("sim.trial_ms").observe(t, static_cast<double>(t + 1));
  }
  const std::string json = r.snapshot().to_json();
  EXPECT_NE(json.find("\"quantiles\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"samples\": 100"), std::string::npos) << json;
  EXPECT_NE(json.find("\"p50\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"p95\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"p99\""), std::string::npos) << json;
}

TEST(Metrics, ToJsonRendersEverySection) {
  Registry r;
  r.counter("test.count").add(2);
  r.gauge("test.gauge").set(0.5);
  r.stat("test.stat").observe(1.0);
  r.histogram("test.histo", 0.0, 1.0, 2).observe(0.25);
  const std::string json = r.snapshot().to_json();
  EXPECT_NE(json.find("\"test.count\": 2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"test.gauge\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"test.stat\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"test.histo\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"count\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"mean\""), std::string::npos) << json;
}

}  // namespace
}  // namespace rit::obs
