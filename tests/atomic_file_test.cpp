#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "common/atomic_file.h"
#include "common/check.h"

namespace rit {
namespace {

namespace fs = std::filesystem;

std::string read_all(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// A fresh scratch directory per test, so leftover-temp-file checks see only
// what the test itself produced.
fs::path scratch(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / "ritcs_atomic" / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

TEST(AtomicFile, WritesContentExactly) {
  const fs::path dir = scratch("writes");
  const std::string path = (dir / "out.txt").string();
  write_file_atomic(path, "alpha\nbeta\n");
  EXPECT_EQ(read_all(path), "alpha\nbeta\n");
}

TEST(AtomicFile, EmptyContentMakesEmptyFile) {
  const fs::path dir = scratch("empty");
  const std::string path = (dir / "empty.txt").string();
  write_file_atomic(path, "");
  EXPECT_TRUE(fs::exists(path));
  EXPECT_EQ(fs::file_size(path), 0u);
}

TEST(AtomicFile, CreatesMissingParentDirectories) {
  const fs::path dir = scratch("parents");
  const std::string path = (dir / "a" / "b" / "c.txt").string();
  write_file_atomic(path, "deep\n");
  EXPECT_EQ(read_all(path), "deep\n");
}

TEST(AtomicFile, OverwriteReplacesWholeFile) {
  const fs::path dir = scratch("overwrite");
  const std::string path = (dir / "f.txt").string();
  write_file_atomic(path, "a much longer first version of the file\n");
  write_file_atomic(path, "short\n");
  EXPECT_EQ(read_all(path), "short\n");
}

TEST(AtomicFile, LeavesNoTempFileBehind) {
  const fs::path dir = scratch("no_temp");
  write_file_atomic((dir / "only.txt").string(), "x\n");
  std::size_t entries = 0;
  for (const auto& e : fs::directory_iterator(dir)) {
    ++entries;
    EXPECT_EQ(e.path().filename().string(), "only.txt");
  }
  EXPECT_EQ(entries, 1u);
}

TEST(AtomicFile, UnwritableDestinationThrowsWithContext) {
  const fs::path dir = scratch("unwritable");
  // A regular file where a parent directory is needed fails with ENOTDIR
  // even for root, which is what CI runs as.
  const std::string blocker = (dir / "blocker").string();
  write_file_atomic(blocker, "in the way\n");
  const std::string target = blocker + "/nested/out.txt";
  try {
    write_file_atomic(target, "never lands\n");
    FAIL() << "expected CheckFailure";
  } catch (const CheckFailure& e) {
    // The error must say which path failed so sweep logs are actionable.
    EXPECT_NE(std::string(e.what()).find("blocker"), std::string::npos)
        << e.what();
  }
}

}  // namespace
}  // namespace rit
