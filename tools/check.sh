#!/usr/bin/env bash
# The pre-merge gate: everything CI runs, runnable locally as one command.
#
#   tools/check.sh           # full gate (see legs below)
#   tools/check.sh --fast    # main build + tests + lint only
#
# Legs, in order:
#   1. format     tools/format.sh --check          (skipped: no clang-format)
#   2. build      cmake -DRIT_WERROR=ON + full build (warning floor is
#                 -Wall -Wextra -Wpedantic -Wshadow -Wconversion
#                 -Wdouble-promotion, -Werror)
#   3. tests      ctest over the full suite (includes `ctest -L lint`:
#                 rit_lint rule fixtures + the live-tree scan + the
#                 header self-sufficiency object library)
#   4. lint       rit_lint --root . --baseline tools/lint/lint_baseline.txt
#                 (explicit, so the finding list prints even when invoked
#                 outside ctest; the checked-in baseline is empty — the
#                 flag keeps the gate honest about the adoption mechanism)
#   5. tidy       clang-tidy build via -DRIT_TIDY=ON (skipped: no clang-tidy)
#   6. obs-off    RIT_OBS_ENABLED=OFF compile leg (tracing macros must
#                 compile away cleanly)
#   7. tsan       RIT_SANITIZE=thread build + ctest -L parallel (the
#                 parallel sweep runner under TSan)
#   8. chaos      ctest -L chaos on the main build (fault containment,
#                 checkpoint corruption rejection, the kill/resume matrix
#                 — see docs/robustness.md)
#   9. perf-smoke pinned micro-bench run twice into fresh ledgers, then
#                 ritcs-bench-diff gates the pair: identical binaries must
#                 not regress against themselves (generous thresholds keep
#                 the leg honest on noisy machines; skipped with a notice
#                 when the kernel refuses perf_event_open)
#  10. scale-smoke pinned small-N bench_scale ladder (--scale=1000, tops
#                 out at 10k users) run twice with --intra-threads=2 into
#                 fresh ledgers + ritcs-bench-diff self-diff — keeps the
#                 million-user scale path (parallel passes, flat hot
#                 structures, the ladder harness itself) exercised end to
#                 end in every gate run
#  11. asan+ubsan RIT_SANITIZE=address,undefined build + full ctest
#                 (memory errors and UB in every code path the suite
#                 reaches; skipped with a notice when the toolchain cannot
#                 link the sanitizer runtimes)
#  12. supervisor-smoke  SIGKILL a supervised, checkpointed bench_scale
#                 mid-sweep (the forked shard workers die with it via
#                 PR_SET_PDEATHSIG), resume it, and require the resumed
#                 CSV's deterministic columns to byte-match an undisturbed
#                 reference run; then ritcs-bench-diff self-diffs the two
#                 ledgers — see docs/robustness.md
#  13. fuzz-smoke pinned-seed differential fuzz budget (iteration-keyed,
#                 never wall-clock) on the clean mechanism, plus the
#                 harness self-test: each RIT_TESTKIT_INJECT_BUG variant
#                 (ritcs-fuzz-bug1..3) must catch its planted bug inside
#                 the same budget, and the committed golden repro must
#                 replay both ways — see docs/testing.md
#
# Build trees live under build-check/ so the gate never disturbs your
# incremental build/. Exits non-zero on the first failing leg.
set -euo pipefail

cd "$(dirname "$0")/.."

FAST=0
for arg in "$@"; do
  case "$arg" in
    --fast) FAST=1 ;;
    --help|-h)
      sed -n '2,56p' "$0" | sed 's/^# \{0,1\}//'
      exit 0
      ;;
    *)
      echo "check.sh: unknown argument '$arg'" >&2
      exit 2
      ;;
  esac
done

JOBS="${RIT_CHECK_JOBS:-$(nproc)}"
ROOT="$(pwd)"
BUILD_ROOT="${RIT_CHECK_BUILD_DIR:-build-check}"

step() { echo; echo "=== check.sh: $* ==="; }

# --- 1. format (check-only; self-skips without clang-format) ---------------
step "format check"
tools/format.sh --check

# --- 2. build with the full warning floor as errors ------------------------
step "configure + build (RIT_WERROR=ON)"
cmake -B "$BUILD_ROOT/main" -S . -DRIT_WERROR=ON
cmake --build "$BUILD_ROOT/main" -j "$JOBS"

# --- 3. full test suite ----------------------------------------------------
step "ctest (full suite)"
ctest --test-dir "$BUILD_ROOT/main" --output-on-failure -j "$JOBS"

# --- 4. repo lint, explicitly ----------------------------------------------
step "rit_lint (live tree)"
"$BUILD_ROOT/main/tools/lint/rit_lint" --root "$ROOT" \
  --baseline "$ROOT/tools/lint/lint_baseline.txt"

if [[ $FAST -eq 1 ]]; then
  echo
  echo "check.sh: --fast requested; skipping tidy / obs-off / sanitizer / chaos legs"
  echo "check.sh: OK"
  exit 0
fi

# --- 5. clang-tidy (skips with a notice when absent) -----------------------
step "clang-tidy"
if command -v clang-tidy > /dev/null 2>&1; then
  cmake -B "$BUILD_ROOT/tidy" -S . -DRIT_WERROR=ON -DRIT_TIDY=ON
  cmake --build "$BUILD_ROOT/tidy" -j "$JOBS"
else
  echo "check.sh: no clang-tidy on PATH — leg skipped (install clang-tidy" \
       "to enable; config is .clang-tidy at the repo root)"
fi

# --- 6. observability-off compile leg --------------------------------------
step "RIT_OBS_ENABLED=OFF compile leg"
cmake -B "$BUILD_ROOT/obsoff" -S . -DRIT_WERROR=ON -DRIT_OBS_ENABLED=OFF
cmake --build "$BUILD_ROOT/obsoff" -j "$JOBS"

# --- 7. TSan over the parallel runner --------------------------------------
step "TSan build + ctest -L parallel"
cmake -B "$BUILD_ROOT/tsan" -S . -DRIT_WERROR=ON -DRIT_SANITIZE=thread
cmake --build "$BUILD_ROOT/tsan" -j "$JOBS"
ctest --test-dir "$BUILD_ROOT/tsan" -L parallel --output-on-failure -j "$JOBS"

# --- 8. chaos suite, called out by name -------------------------------------
# Already part of leg 3's full run; repeated under its label so a failure in
# the robustness machinery is unmissable in the gate output.
step "ctest -L chaos (fault injection + kill/resume matrix)"
ctest --test-dir "$BUILD_ROOT/main" -L chaos --output-on-failure -j "$JOBS"

# --- 9. perf smoke: identical binaries must not regress against themselves --
step "perf smoke (ledger self-diff on a pinned micro-bench)"
BENCH_DIFF="$BUILD_ROOT/main/tools/ritcs-bench-diff"
PERF_FLAG="--perf-counters=true"
if "$BENCH_DIFF" --probe-perf; then
  :
else
  probe_status=$?
  if [[ $probe_status -eq 3 ]]; then
    echo "check.sh: perf_event_open unavailable — counters off for this leg" \
         "(timings and allocation counts still gate)"
    PERF_FLAG="--perf-counters=false"
  else
    echo "check.sh: ritcs-bench-diff --probe-perf failed (exit $probe_status)" >&2
    exit 1
  fi
fi
PERF_TMP="$(mktemp -d "${TMPDIR:-/tmp}/ritcs-perf-smoke.XXXXXX")"
trap 'rm -rf "$PERF_TMP"' EXIT
for ledger in a b; do
  "$BUILD_ROOT/main/bench/bench_fig6a_utility_vs_users" \
    --trials=2 --scale=2000 --points=2 --threads=2 \
    --csv=none --json=none "$PERF_FLAG" \
    --history-out="$PERF_TMP/$ledger.jsonl" > "$PERF_TMP/$ledger.log"
done
# Generous thresholds: this leg exists to catch gross regressions (and to
# exercise the record/diff path end to end), not to chase scheduler noise
# on a loaded CI box.
"$BENCH_DIFF" --threshold=0.6 --abs-floor-ms=250 \
  "$PERF_TMP/a.jsonl" "$PERF_TMP/b.jsonl"

# --- 10. scale smoke: the million-user path at toy size, self-diffed --------
# Same record/diff discipline as leg 9, but through bench_scale: the pinned
# --scale=1000 ladder tops out at 10k users, small enough for CI while still
# running graph generation, forest build and the payment pass through the
# parallel code paths (--intra-threads=2; results are bit-identical to
# serial, so only the timings vary between the two runs).
step "scale smoke (bench_scale ledger self-diff)"
for ledger in scale_a scale_b; do
  "$BUILD_ROOT/main/bench/bench_scale" \
    --trials=1 --scale=1000 --intra-threads=2 \
    --csv=none --json=none "$PERF_FLAG" \
    --history-out="$PERF_TMP/$ledger.jsonl" > "$PERF_TMP/$ledger.log"
done
"$BENCH_DIFF" --threshold=0.6 --abs-floor-ms=250 \
  "$PERF_TMP/scale_a.jsonl" "$PERF_TMP/scale_b.jsonl"

# --- 11. ASan+UBSan over the full suite --------------------------------------
# TSan (leg 7) covers data races but is incompatible with ASan, so the
# memory/UB leg is a separate build tree. Probe first: some toolchains
# (minimal containers, odd cross setups) compile -fsanitize=address but
# cannot link the runtime, and a missing runtime should skip the leg with
# a notice, not fail the gate.
step "ASan+UBSan build + full ctest"
SAN_PROBE_DIR="$(mktemp -d "${TMPDIR:-/tmp}/ritcs-san-probe.XXXXXX")"
echo 'int main() { return 0; }' > "$SAN_PROBE_DIR/probe.cpp"
if c++ -fsanitize=address,undefined -o "$SAN_PROBE_DIR/probe" \
     "$SAN_PROBE_DIR/probe.cpp" > /dev/null 2>&1 \
   && "$SAN_PROBE_DIR/probe" > /dev/null 2>&1; then
  rm -rf "$SAN_PROBE_DIR"
  cmake -B "$BUILD_ROOT/asan" -S . -DRIT_WERROR=ON \
    -DRIT_SANITIZE=address,undefined
  cmake --build "$BUILD_ROOT/asan" -j "$JOBS"
  ctest --test-dir "$BUILD_ROOT/asan" --output-on-failure -j "$JOBS"
else
  rm -rf "$SAN_PROBE_DIR"
  echo "check.sh: toolchain cannot build+run -fsanitize=address,undefined" \
       "— leg skipped (install the compiler's sanitizer runtimes to enable)"
fi

# --- 12. supervisor smoke: SIGKILL a supervised sweep, resume, compare ------
# The process-isolation path end to end, outside any test harness: a
# supervised bench_scale run is SIGKILLed mid-sweep (taking its forked
# shard workers with it via PR_SET_PDEATHSIG), then resumed from the shard
# checkpoints. The deterministic CSV columns (users, tasks_per_type,
# success_rate) must byte-match an undisturbed reference; the runtime
# columns are wall clock and legitimately differ, so the ledger pair goes
# through the same generous ritcs-bench-diff gate as legs 9/10.
step "supervisor smoke (kill -9 a supervised sweep, resume, compare)"
SUP_TMP="$PERF_TMP/supervisor"
mkdir -p "$SUP_TMP"
"$BUILD_ROOT/main/bench/bench_scale" \
  --trials=4 --scale=1000 --supervised --shards=2 \
  --csv="$SUP_TMP/ref.csv" --json=none "$PERF_FLAG" \
  --history-out="$SUP_TMP/sup_ref.jsonl" > "$SUP_TMP/ref.log"
"$BUILD_ROOT/main/bench/bench_scale" \
  --trials=4 --scale=1000 --supervised --shards=2 \
  --checkpoint="$SUP_TMP/sweep.ckpt" --checkpoint-every=1 \
  --csv="$SUP_TMP/killed.csv" --json=none "$PERF_FLAG" \
  --history-out="$SUP_TMP/sup_killed.jsonl" > "$SUP_TMP/killed.log" 2>&1 &
SUP_PID=$!
# Wait for a shard checkpoint to exist (a point is in flight), then kill
# the whole supervised run the hard way. If the run won the race and
# already finished, the kill is a no-op and the resume below is one too —
# the comparison holds either way.
for _ in $(seq 1 400); do
  [[ -e "$SUP_TMP/sweep.ckpt.shard0" ]] && break
  kill -0 "$SUP_PID" 2> /dev/null || break
  sleep 0.025
done
kill -9 "$SUP_PID" 2> /dev/null || true
wait "$SUP_PID" 2> /dev/null || true
"$BUILD_ROOT/main/bench/bench_scale" \
  --trials=4 --scale=1000 --supervised --shards=2 \
  --checkpoint="$SUP_TMP/sweep.ckpt" --checkpoint-every=1 --resume=true \
  --csv="$SUP_TMP/resumed.csv" --json=none "$PERF_FLAG" \
  --history-out="$SUP_TMP/sup_resumed.jsonl" > "$SUP_TMP/resumed.log"
cut -d, -f1,2,7 "$SUP_TMP/ref.csv" > "$SUP_TMP/ref.det"
cut -d, -f1,2,7 "$SUP_TMP/resumed.csv" > "$SUP_TMP/resumed.det"
if ! cmp "$SUP_TMP/ref.det" "$SUP_TMP/resumed.det"; then
  echo "check.sh: resumed supervised sweep diverged from reference" >&2
  diff "$SUP_TMP/ref.det" "$SUP_TMP/resumed.det" >&2 || true
  exit 1
fi
"$BENCH_DIFF" --threshold=0.6 --abs-floor-ms=250 \
  "$SUP_TMP/sup_ref.jsonl" "$SUP_TMP/sup_resumed.jsonl"

# --- 13. fuzz smoke: differential fuzzer + planted-bug self-test -------------
# Already part of leg 3's full run (ctest -L fuzz); repeated by name, with
# a larger clean budget, so a decayed harness (a planted bug no longer
# caught, a nondeterministic corpus) is unmissable in the gate output.
# Budgets are iteration counts at pinned seeds — identical work on any
# machine, any load.
step "fuzz smoke (differential oracle + planted-bug self-test)"
FUZZ_TMP="$PERF_TMP/fuzz"
mkdir -p "$FUZZ_TMP"
"$BUILD_ROOT/main/tools/ritcs-fuzz" --seed=42 --iterations=400 \
  --corpus-dir="$FUZZ_TMP/clean"
for bug in 1 2 3; do
  "$BUILD_ROOT/main/tools/ritcs-fuzz-bug$bug" --seed=7 --iterations=400 \
    --expect-failures=true --corpus-dir="$FUZZ_TMP/bug$bug"
done
"$BUILD_ROOT/main/tools/ritcs-fuzz" --determinism-check --seed=9 \
  --iterations=150 --corpus-dir="$FUZZ_TMP/determinism"
"$BUILD_ROOT/main/tools/ritcs-fuzz" \
  --repro="$ROOT/tests/golden/fuzz_repro_bug2.ritcase"
"$BUILD_ROOT/main/tools/ritcs-fuzz-bug2" --expect-repro=true \
  --repro="$ROOT/tests/golden/fuzz_repro_bug2.ritcase"

echo
echo "check.sh: OK"
