#!/usr/bin/env bash
# Formats (or with --check, verifies) the tree against .clang-format.
#
#   tools/format.sh --check [files...]   # CI mode: fail on drift, no edits
#   tools/format.sh [files...]           # rewrite in place
#
# With no explicit files, every tracked C++ source is covered. The repo has
# never been bulk-reformatted, so prefer passing just the files your change
# touches. If no clang-format binary is installed the script reports a skip
# and exits 0 — the formatting gate is advisory where the tool is absent
# (the determinism gates in rit_lint never skip).
set -euo pipefail

cd "$(dirname "$0")/.."

CHECK=0
FILES=()
for arg in "$@"; do
  case "$arg" in
    --check) CHECK=1 ;;
    --help|-h)
      sed -n '2,12p' "$0" | sed 's/^# \{0,1\}//'
      exit 0
      ;;
    *) FILES+=("$arg") ;;
  esac
done

CLANG_FORMAT="${CLANG_FORMAT:-}"
if [[ -z "$CLANG_FORMAT" ]]; then
  for candidate in clang-format clang-format-18 clang-format-17 \
                   clang-format-16 clang-format-15 clang-format-14; do
    if command -v "$candidate" > /dev/null 2>&1; then
      CLANG_FORMAT="$candidate"
      break
    fi
  done
fi
if [[ -z "$CLANG_FORMAT" ]]; then
  echo "format.sh: no clang-format on PATH — skipping (install clang-format" \
       "or set CLANG_FORMAT=/path/to/binary to enable this gate)"
  exit 0
fi

if [[ ${#FILES[@]} -eq 0 ]]; then
  mapfile -t FILES < <(git ls-files '*.cpp' '*.cc' '*.h' '*.hpp' \
                         | grep -v '^tests/lint_fixtures/')
fi
if [[ ${#FILES[@]} -eq 0 ]]; then
  echo "format.sh: nothing to format"
  exit 0
fi

if [[ $CHECK -eq 1 ]]; then
  "$CLANG_FORMAT" --dry-run --Werror "${FILES[@]}"
  echo "format.sh: ${#FILES[@]} file(s) clean"
else
  "$CLANG_FORMAT" -i "${FILES[@]}"
  echo "format.sh: formatted ${#FILES[@]} file(s)"
fi
