// ritcs — the command-line front end to the whole library.
//
// Modes:
//   ritcs --mode=config
//       Print a scenario config template (all keys, default values).
//   ritcs --mode=run [--config=FILE] [--trials=N] [--threads=T]
//                    [--max-trial-failures=N] [--trial-timeout-ms=T]
//                    [--checkpoint=PATH] [--checkpoint-every=K] [--resume]
//                    [--supervised] [--shards=K] [--shard-mem-mb=M]
//                    [--shard-cpu-s=S] [--shard-retries=R]
//                    [--heartbeat-timeout-ms=T] [overrides...]
//       Run a scenario and print aggregate metrics across trials, fanned
//       out over T worker threads (0 = hardware concurrency, 1 = exact
//       serial path). With --population=FILE (CSV: type,quantity,cost)
//       runs one trial over your own user data instead of a synthetic
//       population. The robustness flags (docs/robustness.md) quarantine
//       faulted trials within a failure budget, watchdog slow trials, and
//       checkpoint progress for bit-identical --resume. --supervised runs
//       each residue class of trials in its own forked worker process
//       under rlimit budgets: a worker that segfaults, OOMs, or hangs is
//       recorded in the fault ledger and retried with backoff, resuming
//       from its own checkpoint cut (docs/robustness.md).
//   ritcs --mode=explain [--config=FILE] [--user=J] [overrides...]
//       Run one trial and print the payment explanation for user J (or the
//       user with the largest solicitation reward when J is omitted).
//   ritcs --mode=attack [--config=FILE] [--victim=J] [--identities=D]
//                       [--ask=V] [--trials=N] [overrides...]
//       Compare a user's expected utility honest-vs-sybil.
//   ritcs --mode=dot [--config=FILE] [--out=FILE] [overrides...]
//       Export the trial's incentive tree as Graphviz DOT, coloured by
//       task type.
//   ritcs --mode=save [--config=FILE] [--out=FILE] [overrides...]
//       Run one trial and write the full experiment record (inputs +
//       outputs, bit-exact) for later auditing.
//   ritcs --mode=audit --in=FILE
//       Load a saved record, re-derive every payment from the recorded
//       inputs, and report any discrepancy.
//
// Overrides mirror the config keys: --users, --types, --tasks, --kmax,
// --h, --graph, --seed, --policy=theoretical|completion.
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>

#include "attack/strategy_search.h"
#include "attack/sybil_apply.h"
#include "attack/sybil_plan.h"
#include "cli/args.h"
#include "cli/table.h"
#include "common/check.h"
#include "common/format_util.h"
#include "common/hash.h"
#include "common/parallel.h"
#include "core/audit.h"
#include "core/result_io.h"
#include "core/rit.h"
#include "platform/supervisor.h"
#include "sim/config_io.h"
#include "sim/guarded.h"
#include "sim/population_io.h"
#include "sim/report.h"
#include "sim/runner.h"
#include "stats/online_stats.h"
#include "tree/dot_export.h"

namespace {

using namespace rit;

sim::Scenario scenario_from_args(cli::Args& args) {
  sim::Scenario s;
  const std::string config = args.get_string("config", "");
  if (!config.empty()) s = sim::read_scenario_file(config);
  s.num_users = static_cast<std::uint32_t>(args.get_u64("users", s.num_users));
  s.num_types = static_cast<std::uint32_t>(args.get_u64("types", s.num_types));
  s.tasks_per_type =
      static_cast<std::uint32_t>(args.get_u64("tasks", s.tasks_per_type));
  s.k_max = static_cast<std::uint32_t>(args.get_u64("kmax", s.k_max));
  s.mechanism.h = args.get_double("h", s.mechanism.h);
  s.graph = sim::parse_graph_kind(
      args.get_string("graph", sim::to_string(s.graph)));
  s.seed = args.get_u64("seed", s.seed);
  const std::string policy = args.get_string(
      "policy", s.mechanism.round_budget_policy ==
                        core::RoundBudgetPolicy::kTheoretical
                    ? "theoretical"
                    : "completion");
  RIT_CHECK_MSG(policy == "theoretical" || policy == "completion",
                "--policy wants theoretical|completion");
  s.mechanism.round_budget_policy =
      policy == "theoretical" ? core::RoundBudgetPolicy::kTheoretical
                              : core::RoundBudgetPolicy::kRunToCompletion;
  return s;
}

int mode_config() {
  sim::write_scenario(sim::Scenario{}, std::cout);
  return 0;
}

// Runs one trial over a user-supplied population CSV (sim/population_io.h):
// the graph is sized to the population, the Sec. 7-A spanning forest builds
// the tree, and RIT clears the market.
int run_with_population(const sim::Scenario& base, const std::string& path) {
  const sim::Population pop = sim::read_population_file(path);
  sim::Scenario s = base;
  s.num_users = pop.size();
  std::uint32_t num_types = 1;
  for (const core::Ask& a : pop.truthful_asks) {
    num_types = std::max(num_types, a.type.value + 1);
  }
  s.num_types = std::max(s.num_types, num_types);
  rng::Rng graph_rng(s.trial_seed(0, 0));
  const graph::Graph g = sim::generate_graph(s, graph_rng);
  const sim::TreeResult tr = sim::generate_tree(s, g);
  rng::Rng job_rng(s.trial_seed(0, 2));
  const core::Job job = sim::generate_job(s, job_rng);
  rng::Rng rng(s.trial_seed(0, 3));
  const core::RitResult r =
      core::run_rit(job, pop.truthful_asks, tr.tree, s.mechanism, rng);
  std::cout << pop.size() << " users from " << path << ", "
            << job.total_tasks() << " tasks: "
            << (r.success ? "cleared" : "ALLOCATION FAILED") << "\n";
  if (!r.success) return 1;
  double utility = 0.0;
  for (std::uint32_t j = 0; j < pop.size(); ++j) {
    utility += r.utility_of(j, pop.costs[j]);
  }
  std::cout << "total payment " << format_double(r.total_payment(), 2)
            << " (premium "
            << format_double(r.total_payment() - r.total_auction_payment(), 2)
            << "), avg utility "
            << format_double(utility / pop.size(), 4) << "\n";
  return 0;
}

int mode_run(cli::Args& args) {
  const sim::Scenario s = scenario_from_args(args);
  const std::uint64_t trials = args.get_u64("trials", 5);
  // 0 = hardware concurrency; 1 = the exact serial path (bit-for-bit).
  const auto threads = static_cast<unsigned>(args.get_u64("threads", 0));
  const std::string population = args.get_string("population", "");
  sim::GuardPolicy policy;
  policy.max_trial_failures = args.get_u64("max-trial-failures", 0);
  policy.trial_timeout_ms = args.get_double("trial-timeout-ms", 0.0);
  const std::string checkpoint = args.get_string("checkpoint", "");
  const std::uint64_t checkpoint_every = args.get_u64("checkpoint-every", 0);
  const bool resume = args.get_bool("resume", false);
  const bool supervised = args.get_bool("supervised", false);
  const auto shards = static_cast<unsigned>(args.get_u64("shards", 0));
  const std::uint64_t shard_mem_mb = args.get_u64("shard-mem-mb", 0);
  const std::uint64_t shard_cpu_s = args.get_u64("shard-cpu-s", 0);
  const auto shard_retries =
      static_cast<unsigned>(args.get_u64("shard-retries", 2));
  const std::uint64_t heartbeat_timeout_ms =
      args.get_u64("heartbeat-timeout-ms", 0);
  args.finish();
  RIT_CHECK_MSG(checkpoint.empty() ? !resume : true,
                "--resume requires --checkpoint=PATH");
  RIT_CHECK_MSG(checkpoint.empty() ? checkpoint_every == 0 : true,
                "--checkpoint-every requires --checkpoint=PATH");
  RIT_CHECK_MSG(policy.trial_timeout_ms >= 0.0,
                "--trial-timeout-ms must be >= 0");
  RIT_CHECK_MSG(supervised ||
                    (shards == 0 && shard_mem_mb == 0 && shard_cpu_s == 0 &&
                     heartbeat_timeout_ms == 0),
                "--shards/--shard-mem-mb/--shard-cpu-s/"
                "--heartbeat-timeout-ms require --supervised");
  if (!population.empty()) return run_with_population(s, population);

  const auto progress = [](std::uint64_t done, std::uint64_t total) {
    std::cerr << "\rtrial " << done << "/" << total << std::flush;
    if (done == total) std::cerr << "\n";
  };
  sim::GuardedResult result;
  if (!supervised && checkpoint.empty() && policy.max_trial_failures == 0 &&
      policy.trial_timeout_ms == 0.0) {
    // No robustness flags: the historical path, byte-identical output.
    result.metrics = sim::run_many_parallel(s, trials, threads, progress);
  } else {
    // A supervised run partitions by shard instead of thread; the binding
    // is the same (partition width), so in-process and supervised
    // checkpoints are interchangeable at matching counts.
    const unsigned resolved =
        supervised ? platform::resolve_shards(shards, trials)
                   : rit::resolve_threads(threads, trials);
    std::uint64_t config_hash = 0;
    std::unique_ptr<sim::CheckpointSession> session;
    if (!checkpoint.empty()) {
      // Bind the checkpoint to the full scenario (serialized config) plus
      // the trial count; resuming under any other setup must refuse.
      std::ostringstream cfg;
      sim::write_scenario(s, cfg);
      cfg << "trials " << trials << "\n";
      config_hash = fnv1a64(cfg.str());
      sim::CheckpointSession::Params p;
      p.path = checkpoint;
      p.config_hash = config_hash;
      p.seed = s.seed;
      p.threads = resolved;
      p.trials = trials;
      p.every = checkpoint_every;
      p.resume = resume;
      session = std::make_unique<sim::CheckpointSession>(std::move(p));
    }
    if (supervised) {
      platform::SupervisorOptions sup;
      sup.shards = shards;
      sup.shard_mem_mb = shard_mem_mb;
      sup.shard_cpu_s = shard_cpu_s;
      sup.shard_retries = shard_retries;
      sup.heartbeat_timeout_ms = heartbeat_timeout_ms;
      sup.checkpoint_path = checkpoint;
      sup.checkpoint_every = checkpoint_every;
      sup.resume = resume;
      sup.config_hash = config_hash;
      sup.seed = s.seed;
      result = platform::run_many_supervised(s, trials, sup, policy,
                                             session.get(), /*point=*/0,
                                             progress);
    } else {
      result = sim::run_many_guarded(s, trials, resolved, policy,
                                     session.get(), /*point=*/0, progress);
    }
  }
  const sim::AggregateMetrics& agg = result.metrics;
  cli::Table t({"metric", "mean", "ci95", "min", "max"});
  const auto row = [&](const std::string& name, const stats::OnlineStats& st) {
    t.add_row({name, format_double(st.mean(), 4),
               format_double(st.ci95_half_width(), 4),
               format_double(st.min(), 4), format_double(st.max(), 4)});
  };
  row("avg_utility (auction phase)", agg.avg_utility_auction);
  row("avg_utility (RIT)", agg.avg_utility_rit);
  row("total_payment (auction phase)", agg.total_payment_auction);
  row("total_payment (RIT)", agg.total_payment_rit);
  row("solicitation_premium", agg.solicitation_premium);
  row("tasks_allocated", agg.tasks_allocated);
  row("runtime_ms (auction phase)", agg.runtime_auction_ms);
  row("runtime_ms (RIT)", agg.runtime_rit_ms);
  t.print(std::cout);
  std::cout << "success rate: " << format_double(agg.success_rate(), 3)
            << ", degraded-guarantee rate: "
            << format_double(agg.degraded_rate(), 3) << " over " << agg.trials
            << " trial(s)\n";
  // Fault report only when something actually faulted: default runs keep
  // their historical byte-identical output.
  if (agg.failed_trials > 0 || agg.quarantined_trials > 0) {
    std::cout << "faults: " << agg.failed_trials << " failed, "
              << agg.quarantined_trials << " quarantined ("
              << agg.attempted() << " attempted)\n"
              << result.faults.markdown();
  }
  return 0;
}

int mode_explain(cli::Args& args) {
  const sim::Scenario s = scenario_from_args(args);
  const std::uint64_t user_flag = args.get_u64("user", ~std::uint64_t{0});
  args.finish();

  const sim::TrialInstance inst = sim::make_instance(s, 0);
  rng::Rng rng(inst.mechanism_seed);
  const core::RitResult r =
      core::run_rit(inst.job, inst.population.truthful_asks, inst.tree,
                    s.mechanism, rng);
  if (!r.success) {
    std::cout << "allocation failed; all payments are zero\n";
    return 1;
  }
  std::uint32_t user = 0;
  if (user_flag != ~std::uint64_t{0}) {
    RIT_CHECK_MSG(user_flag < inst.population.size(), "--user out of range");
    user = static_cast<std::uint32_t>(user_flag);
  } else {
    for (std::uint32_t j = 1; j < inst.population.size(); ++j) {
      if (r.payment[j] - r.auction_payment[j] >
          r.payment[user] - r.auction_payment[user]) {
        user = j;
      }
    }
  }
  std::vector<TaskType> types(inst.population.size());
  for (std::uint32_t j = 0; j < inst.population.size(); ++j) {
    types[j] = inst.population.truthful_asks[j].type;
  }
  const core::PaymentExplanation e =
      core::explain_payment(inst.tree, types, r.auction_payment,
                            s.mechanism.discount_base, user);
  std::cout << e.render();
  const core::AuditReport audit = core::audit_payments(
      inst.tree, inst.population.truthful_asks, r, s.mechanism.discount_base);
  std::cout << "\nfull-run audit: " << (audit.ok ? "OK" : "VIOLATIONS")
            << " (total payment " << format_double(audit.total_payment, 2)
            << ", premium " << format_double(audit.solicitation_premium, 2)
            << ")\n";
  for (const std::string& v : audit.violations) std::cout << "  " << v << "\n";
  return audit.ok ? 0 : 2;
}

int mode_attack(cli::Args& args) {
  sim::Scenario s = scenario_from_args(args);
  const std::uint64_t trials = args.get_u64("trials", 50);
  const auto identities =
      static_cast<std::uint32_t>(args.get_u64("identities", 4));
  const double ask = args.get_double("ask", 0.0);  // 0 = truthful
  const std::uint64_t victim_flag = args.get_u64("victim", 0);
  args.finish();

  stats::OnlineStats honest;
  stats::OnlineStats attacked_stats;
  for (std::uint64_t trial = 0; trial < trials; ++trial) {
    sim::TrialInstance inst = sim::make_instance(s, trial);
    RIT_CHECK_MSG(victim_flag < inst.population.size(), "--victim out of range");
    const auto victim = static_cast<std::uint32_t>(victim_flag);
    auto& vask = inst.population.truthful_asks[victim];
    if (vask.quantity < identities) vask.quantity = identities;
    const double cost = inst.population.costs[victim];
    const double attack_ask = ask > 0.0 ? ask : cost;

    {
      rng::Rng rng(inst.mechanism_seed);
      const auto r = core::run_rit(inst.job, inst.population.truthful_asks,
                                   inst.tree, s.mechanism, rng);
      honest.add(r.utility_of(victim, cost));
    }
    {
      rng::Rng plan_rng(inst.mechanism_seed ^ 0xa77ac);
      const auto plan =
          attack::random_plan(inst.tree, inst.population.truthful_asks, victim,
                              identities, attack_ask, plan_rng);
      const auto attacked = attack::apply_sybil(
          inst.tree, inst.population.truthful_asks, plan);
      rng::Rng rng(inst.mechanism_seed);
      const auto r = core::run_rit(inst.job, attacked.asks, attacked.tree,
                                   s.mechanism, rng);
      attacked_stats.add(attacked.attacker_utility(r, cost));
    }
  }
  std::cout << "victim P" << victim_flag + 1 << ", " << identities
            << " identities, ask "
            << (ask > 0.0 ? format_double(ask, 2) : std::string("truthful"))
            << ", " << trials << " trials\n";
  std::cout << "E[utility | honest] = " << format_double(honest.mean(), 4)
            << " +- " << format_double(honest.ci95_half_width(), 4) << "\n";
  std::cout << "E[utility | sybil]  = "
            << format_double(attacked_stats.mean(), 4) << " +- "
            << format_double(attacked_stats.ci95_half_width(), 4) << "\n";
  return 0;
}

int mode_dot(cli::Args& args) {
  const sim::Scenario s = scenario_from_args(args);
  const std::string out_path = args.get_string("out", "tree.dot");
  args.finish();
  const sim::TrialInstance inst = sim::make_instance(s, 0);
  tree::DotOptions opts;
  opts.name = "ritcs_scenario_tree";
  opts.color_group = [&](std::uint32_t node) {
    return static_cast<int>(
        inst.population.truthful_asks[tree::participant_of_node(node)]
            .type.value);
  };
  std::ofstream out(out_path);
  RIT_CHECK_MSG(out.good(), "cannot open " << out_path << " for writing");
  tree::write_dot(inst.tree, out, opts);
  std::cout << "wrote " << out_path << " (" << inst.tree.num_nodes()
            << " nodes; render with: dot -Tpdf " << out_path << ")\n";
  return 0;
}

int mode_trace(cli::Args& args) {
  sim::Scenario s = scenario_from_args(args);
  args.finish();
  s.mechanism.record_round_trace = true;
  const sim::TrialInstance inst = sim::make_instance(s, 0);
  rng::Rng rng(inst.mechanism_seed);
  const core::RitResult r =
      core::run_rit(inst.job, inst.population.truthful_asks, inst.tree,
                    s.mechanism, rng);
  for (const core::TypeAuctionInfo& info : r.type_info) {
    std::cout << "type " << info.type.value << ": demanded " << info.demanded
              << ", allocated " << info.allocated << ", budget "
              << info.budget.max_rounds << " round(s), bound "
              << format_double(info.budget.per_round_bound, 4) << "\n";
    cli::Table t({"round", "q_before", "raw_count", "consensus", "winners",
                  "price", "budget_price?"});
    for (const core::RoundTrace& round : info.rounds) {
      t.add_row({std::to_string(round.round), std::to_string(round.q_before),
                 std::to_string(round.raw_count),
                 std::to_string(round.consensus_count),
                 std::to_string(round.winners),
                 format_double(round.clearing_price, 3),
                 round.used_budget_price ? "yes" : "no"});
    }
    t.print(std::cout);
    std::cout << "\n";
  }
  std::cout << (r.success ? "allocation complete" : "ALLOCATION FAILED")
            << "; achieved truthfulness bound "
            << format_double(r.achieved_probability, 4) << "\n";
  return 0;
}

int mode_redteam(cli::Args& args) {
  sim::Scenario s = scenario_from_args(args);
  const std::uint64_t victim_flag = args.get_u64("victim", 7);
  const double cost = args.get_double("cost", 2.0);
  const std::uint64_t trials = args.get_u64("trials", 40);
  args.finish();

  sim::TrialInstance inst = sim::make_instance(s, 0);
  RIT_CHECK_MSG(victim_flag < inst.population.size(), "--victim out of range");
  const auto victim = static_cast<std::uint32_t>(victim_flag);
  inst.population.truthful_asks[victim].quantity = std::max<std::uint32_t>(
      inst.population.truthful_asks[victim].quantity, 6);
  inst.population.truthful_asks[victim].value = cost;

  attack::SearchSpace space;
  space.trials = trials;
  const attack::SearchResult result = attack::search_best_attack(
      inst.job, inst.population.truthful_asks, inst.tree, victim, cost,
      s.mechanism, space);

  std::cout << "red team vs P" << victim + 1 << " (cost "
            << format_double(cost, 2) << ", " << result.entries.size()
            << " strategies x " << trials << " trials)\n";
  std::cout << "honest expectation: " << format_double(result.honest_mean, 4)
            << " +- " << format_double(result.honest_ci95, 4) << "\n\n";
  cli::Table t({"rank", "identities", "topology", "ask", "E[utility]",
                "ci95"});
  const auto topo_name = [](attack::Topology topo) {
    switch (topo) {
      case attack::Topology::kChain:
        return "chain";
      case attack::Topology::kStar:
        return "star";
      case attack::Topology::kRandom:
        return "random";
    }
    return "?";
  };
  for (std::size_t i = 0; i < result.entries.size() && i < 8; ++i) {
    const attack::SearchEntry& e = result.entries[i];
    t.add_row({std::to_string(i + 1),
               std::to_string(e.candidate.identities),
               e.candidate.identities == 1 ? "-" : topo_name(e.candidate.topology),
               format_double(e.candidate.ask_value, 2),
               format_double(e.mean_utility, 4), format_double(e.ci95, 4)});
  }
  t.print(std::cout);
  const double gain = result.best_gain();
  std::cout << "\nbest gain over honesty: " << format_double(gain, 4)
            << " (slack " << format_double(result.gain_slack(), 4) << ") — "
            << (gain <= result.gain_slack() ? "no profitable attack found"
                                            : "EXPLOITABLE")
            << "\n";
  return 0;
}

int mode_report(cli::Args& args) {
  const sim::Scenario s = scenario_from_args(args);
  const std::string out_path = args.get_string("out", "");
  args.finish();
  const sim::TrialInstance inst = sim::make_instance(s, 0);
  rng::Rng rng(inst.mechanism_seed);
  const core::RitResult r =
      core::run_rit(inst.job, inst.population.truthful_asks, inst.tree,
                    s.mechanism, rng);
  const std::string report = sim::markdown_report(s, inst, r);
  if (out_path.empty()) {
    std::cout << report;
  } else {
    std::ofstream out(out_path);
    RIT_CHECK_MSG(out.good(), "cannot open " << out_path << " for writing");
    out << report;
    std::cout << "wrote " << out_path << "\n";
  }
  return r.success ? 0 : 1;
}

int mode_save(cli::Args& args) {
  const sim::Scenario s = scenario_from_args(args);
  const std::string out_path = args.get_string("out", "run.rec");
  args.finish();
  const sim::TrialInstance inst = sim::make_instance(s, 0);
  rng::Rng rng(inst.mechanism_seed);
  core::ExperimentRecord rec;
  rec.job = inst.job;
  rec.asks = inst.population.truthful_asks;
  rec.tree_parents = inst.tree.parents();
  rec.discount_base = s.mechanism.discount_base;
  rec.result = core::run_rit(inst.job, inst.population.truthful_asks,
                             inst.tree, s.mechanism, rng);
  core::write_record_file(rec, out_path);
  std::cout << "wrote " << out_path << " ("
            << rec.asks.size() << " users, success="
            << (rec.result.success ? "yes" : "no") << ")\n";
  return 0;
}

int mode_audit(cli::Args& args) {
  const std::string in_path = args.get_string("in", "");
  args.finish();
  RIT_CHECK_MSG(!in_path.empty(), "--mode=audit needs --in=FILE");
  const core::ExperimentRecord rec = core::read_record_file(in_path);
  const core::AuditReport report = core::audit_payments(
      rec.tree(), rec.asks, rec.result, rec.discount_base);
  std::cout << "record: " << rec.asks.size() << " users, "
            << rec.job.total_tasks() << " tasks, success="
            << (rec.result.success ? "yes" : "no") << "\n";
  std::cout << "total payment " << format_double(report.total_payment, 4)
            << " (auction " << format_double(report.total_auction_payment, 4)
            << ", premium " << format_double(report.solicitation_premium, 4)
            << ")\n";
  if (report.ok) {
    std::cout << "audit: OK — every payment re-derives from the recorded "
                 "inputs\n";
    return 0;
  }
  std::cout << "audit: " << report.violations.size() << " VIOLATION(S)\n";
  for (const std::string& v : report.violations) std::cout << "  " << v << "\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    cli::Args args(argc, argv);
    const std::string mode = args.get_string("mode", "run");
    if (mode == "config") {
      args.finish();
      return mode_config();
    }
    if (mode == "run") return mode_run(args);
    if (mode == "explain") return mode_explain(args);
    if (mode == "attack") return mode_attack(args);
    if (mode == "dot") return mode_dot(args);
    if (mode == "save") return mode_save(args);
    if (mode == "audit") return mode_audit(args);
    if (mode == "trace") return mode_trace(args);
    if (mode == "report") return mode_report(args);
    if (mode == "redteam") return mode_redteam(args);
    std::cerr << "unknown --mode=" << mode
              << " (want config|run|explain|attack|dot|save|audit|trace|"
                 "report|redteam)\n";
    return 2;
  } catch (const rit::CheckFailure& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
