// rit_lint CLI: scans the tree (or explicit files) for violations of the
// repo's determinism / portability / aggregation-coverage invariants.
//
//   rit_lint --root <repo>            scan src/ bench/ tests/ tools/ ...
//   rit_lint --root <repo> a.cpp b.h  scan just those files (repo-relative)
//   rit_lint --list-rules             print every rule id + rationale
//
// Exit status: 0 clean, 1 findings, 2 usage/IO error. Wired into ctest as
// the `lint_tree` test (label: lint) and into tools/check.sh.
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "linter.h"

namespace {

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--root <dir>] [--list-rules] [file...]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::vector<std::string> explicit_files;
  bool list_rules = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root") {
      if (i + 1 >= argc) return usage(argv[0]);
      root = argv[++i];
    } else if (arg == "--list-rules") {
      list_rules = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "rit_lint: unknown option '" << arg << "'\n";
      return usage(argv[0]);
    } else {
      explicit_files.push_back(arg);
    }
  }

  if (list_rules) {
    for (const rit::lint::RuleInfo& info : rit::lint::rule_infos()) {
      std::cout << info.id << "\n    " << info.summary << "\n";
    }
    return 0;
  }

  std::vector<rit::lint::SourceFile> files;
  if (explicit_files.empty()) {
    files = rit::lint::collect_tree(root);
    if (files.empty()) {
      std::cerr << "rit_lint: no sources found under '" << root << "'\n";
      return 2;
    }
  } else {
    for (const std::string& path : explicit_files) {
      const std::string full =
          path.front() == '/' ? path : root + "/" + path;
      std::ifstream in(full, std::ios::binary);
      if (!in.good()) {
        std::cerr << "rit_lint: cannot read '" << full << "'\n";
        return 2;
      }
      std::ostringstream ss;
      ss << in.rdbuf();
      files.push_back(rit::lint::SourceFile{path, ss.str()});
    }
  }

  const std::vector<rit::lint::Finding> findings = rit::lint::scan(files);
  for (const rit::lint::Finding& f : findings) {
    std::cout << f.file << ":" << f.line << ": [" << f.rule << "] "
              << f.message << "\n";
  }
  std::cout << "rit_lint: " << findings.size() << " finding(s) in "
            << files.size() << " file(s) scanned\n";
  return findings.empty() ? 0 : 1;
}
