// rit_lint CLI: scans the tree (or explicit files) for violations of the
// repo's determinism / portability / architecture invariants.
//
//   rit_lint --root <repo>             scan src/ bench/ tests/ tools/ ...
//   rit_lint --root <repo> a.cpp b.h   scan just those files (repo-relative)
//   rit_lint --format=text|json|sarif  output format (default text)
//   rit_lint --baseline <file>         suppress errors recorded in <file>
//   rit_lint --update-baseline         rewrite <file> from current findings
//   rit_lint --explain <rule>          print a rule's full rationale
//   rit_lint --list-rules              print every rule id + summary
//
// Exit status: 0 clean (after baseline), 1 unbaselined errors, 2 usage/IO
// error. Report-only notes never affect the exit status. With json/sarif
// the findings go to stdout and the human summary to stderr, so the output
// stays machine-parseable (CI uploads the SARIF verbatim). Wired into
// ctest as the `lint_tree` test (label: lint) and into tools/check.sh.
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "baseline.h"
#include "linter.h"
#include "output.h"

namespace {

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--root <dir>] [--format=text|json|sarif]"
               " [--baseline <file> [--update-baseline]]"
               " [--explain <rule>] [--list-rules] [file...]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string baseline_path;
  std::string explain_rule;
  std::vector<std::string> explicit_files;
  rit::lint::OutputFormat format = rit::lint::OutputFormat::kText;
  bool list_rules = false;
  bool update_baseline = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root") {
      if (i + 1 >= argc) return usage(argv[0]);
      root = argv[++i];
    } else if (arg.rfind("--format=", 0) == 0) {
      if (!rit::lint::parse_output_format(arg.substr(9), &format)) {
        std::cerr << "rit_lint: unknown format '" << arg.substr(9)
                  << "' (expected text, json or sarif)\n";
        return 2;
      }
    } else if (arg == "--format") {
      if (i + 1 >= argc) return usage(argv[0]);
      if (!rit::lint::parse_output_format(argv[++i], &format)) {
        std::cerr << "rit_lint: unknown format '" << argv[i]
                  << "' (expected text, json or sarif)\n";
        return 2;
      }
    } else if (arg == "--baseline") {
      if (i + 1 >= argc) return usage(argv[0]);
      baseline_path = argv[++i];
    } else if (arg == "--update-baseline") {
      update_baseline = true;
    } else if (arg == "--explain") {
      if (i + 1 >= argc) return usage(argv[0]);
      explain_rule = argv[++i];
    } else if (arg == "--list-rules") {
      list_rules = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "rit_lint: unknown option '" << arg << "'\n";
      return usage(argv[0]);
    } else {
      explicit_files.push_back(arg);
    }
  }

  if (update_baseline && baseline_path.empty()) {
    std::cerr << "rit_lint: --update-baseline requires --baseline <file>\n";
    return 2;
  }

  if (!explain_rule.empty()) {
    for (const rit::lint::RuleInfo& info : rit::lint::rule_infos()) {
      if (info.id == explain_rule) {
        std::cout << info.id << "\n  " << info.summary << "\n\n"
                  << info.rationale << "\n";
        return 0;
      }
    }
    std::cerr << "rit_lint: unknown rule '" << explain_rule
              << "' (see --list-rules)\n";
    return 2;
  }

  if (list_rules) {
    for (const rit::lint::RuleInfo& info : rit::lint::rule_infos()) {
      std::cout << info.id << "\n    " << info.summary << "\n";
    }
    return 0;
  }

  std::vector<rit::lint::SourceFile> files;
  if (explicit_files.empty()) {
    files = rit::lint::collect_tree(root);
    if (files.empty()) {
      std::cerr << "rit_lint: no sources found under '" << root << "'\n";
      return 2;
    }
  } else {
    for (const std::string& path : explicit_files) {
      const std::string full =
          path.front() == '/' ? path : root + "/" + path;
      std::ifstream in(full, std::ios::binary);
      if (!in.good()) {
        std::cerr << "rit_lint: cannot read '" << full << "'\n";
        return 2;
      }
      std::ostringstream ss;
      ss << in.rdbuf();
      files.push_back(rit::lint::SourceFile{path, ss.str()});
    }
  }

  std::vector<rit::lint::Finding> findings = rit::lint::scan(files);

  std::size_t suppressed = 0;
  if (!baseline_path.empty()) {
    if (update_baseline) {
      std::ofstream out(baseline_path, std::ios::binary);
      out << rit::lint::serialize_baseline(findings);
      if (!out.good()) {
        std::cerr << "rit_lint: cannot write baseline '" << baseline_path
                  << "'\n";
        return 2;
      }
    }
    const auto baseline = rit::lint::load_baseline(baseline_path);
    if (!baseline) {
      std::cerr << "rit_lint: cannot read baseline '" << baseline_path
                << "' (missing or malformed)\n";
      return 2;
    }
    findings =
        rit::lint::apply_baseline(*baseline, findings, &suppressed);
  }

  std::size_t errors = 0, notes = 0;
  for (const rit::lint::Finding& f : findings) {
    (f.severity == rit::lint::Severity::kNote ? notes : errors) += 1;
  }

  switch (format) {
    case rit::lint::OutputFormat::kText:
      std::cout << rit::lint::render_text(findings);
      break;
    case rit::lint::OutputFormat::kJson:
      std::cout << rit::lint::render_json(findings);
      break;
    case rit::lint::OutputFormat::kSarif:
      std::cout << rit::lint::render_sarif(findings);
      break;
  }

  // Summary to stderr so json/sarif stdout stays machine-parseable.
  std::ostream& summary =
      format == rit::lint::OutputFormat::kText ? std::cout : std::cerr;
  summary << "rit_lint: " << errors << " error(s), " << notes
          << " note(s) in " << files.size() << " file(s) scanned";
  if (suppressed != 0) summary << " (" << suppressed << " baselined)";
  summary << "\n";
  return errors == 0 ? 0 : 1;
}
