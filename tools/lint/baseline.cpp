#include "baseline.h"

#include <fstream>
#include <sstream>

namespace rit::lint {

std::optional<Baseline> load_baseline(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return std::nullopt;
  Baseline baseline;
  std::string line;
  while (std::getline(in, line)) {
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream fields(line);
    std::string rule, file, extra;
    if (!(fields >> rule)) continue;  // blank / comment-only line
    if (!(fields >> file) || (fields >> extra)) {
      return std::nullopt;  // malformed: not exactly two fields
    }
    baseline.entries.emplace(rule, file);
  }
  return baseline;
}

std::vector<Finding> apply_baseline(const Baseline& baseline,
                                    const std::vector<Finding>& findings,
                                    std::size_t* suppressed) {
  std::vector<Finding> kept;
  kept.reserve(findings.size());
  for (const Finding& f : findings) {
    if (f.severity == Severity::kError &&
        baseline.entries.count({f.rule, f.file}) != 0) {
      ++*suppressed;
      continue;
    }
    kept.push_back(f);
  }
  return kept;
}

std::string serialize_baseline(const std::vector<Finding>& findings) {
  std::set<std::pair<std::string, std::string>> entries;
  for (const Finding& f : findings) {
    if (f.severity == Severity::kError) entries.emplace(f.rule, f.file);
  }
  std::string out =
      "# rit_lint baseline: temporarily accepted (rule, file) pairs.\n"
      "# One `<rule> <file>` per line; regenerate with\n"
      "#   rit_lint --root . --baseline tools/lint/lint_baseline.txt "
      "--update-baseline\n"
      "# Keep this file empty: fix violations instead of baselining them.\n";
  for (const auto& [rule, file] : entries) {
    out += rule + " " + file + "\n";
  }
  return out;
}

}  // namespace rit::lint
