// Internal lexical layer of the rit_lint engine: comment/string stripping,
// line bookkeeping, word-bounded token matching, allowlist directives, and
// the per-file preprocessed view (`Prepped`) every rule runs against.
//
// This header is internal to tools/lint/ — the public surface is linter.h.
// The split keeps the engine honest about its layers: scanner (this file)
// knows nothing about rules; include_graph.h builds the cross-file
// dependency graph on top of `Prepped`; linter.cpp owns the rule table;
// output.h renders findings.
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "linter.h"

namespace rit::lint::internal {

bool is_word(char c);

/// C++ sources vs build files (CMake / shell): different comment syntax,
/// different rule set.
enum class FileClass { kCpp, kBuild };

FileClass classify(const std::string& path);

/// Build files (cmake, sh) only have '#' line comments — but a '#'
/// directive line may itself carry a rit-lint allow, which is parsed from
/// the raw content, so stripping to spaces here is safe.
std::string strip_hash_comments(const std::string& content);

/// Blanks string/char literals but KEEPS comment text — the escape
/// inventory (collect_escapes) needs directives that live in comments
/// while ignoring directive-shaped test data inside string literals.
std::string strip_strings_keep_comments(const std::string& content);

std::vector<std::string> split_lines(const std::string& s);

/// Collapses runs of whitespace so multi-space tokens ("long double")
/// match regardless of alignment.
std::string normalize_ws(const std::string& line);

bool token_matches_at(const std::string& line, std::size_t pos,
                      const std::string& token);

bool line_has_token(const std::string& line, const std::string& token);

// ---------------------------------------------------------------------------
// Allowlist directives (parsed from RAW content, before stripping)
// ---------------------------------------------------------------------------

struct AllowSet {
  std::set<std::string> file_rules;                    // allow-file(...)
  std::map<std::size_t, std::set<std::string>> lines;  // line -> rules
  bool allows(const std::string& rule, std::size_t line) const;
};

AllowSet parse_allows(const std::vector<std::string>& raw_lines);

// ---------------------------------------------------------------------------
// Per-file preprocessed view
// ---------------------------------------------------------------------------

/// One `#include "..."` directive. `target` is the quoted text verbatim
/// ("core/rit.h"); resolution against the scan set happens in
/// include_graph.cpp.
struct IncludeDirective {
  std::size_t line{0};
  std::string target;
};

struct Prepped {
  const SourceFile* src{nullptr};
  FileClass file_class{FileClass::kCpp};
  std::vector<std::string> lines;  // stripped + whitespace-normalized
  AllowSet allows;
  bool result_path{false};
  std::vector<IncludeDirective> includes;  // quoted includes only
};

Prepped prep(const SourceFile& f);

bool path_contains_any(const std::string& path,
                       const std::vector<const char*>& subs);

/// Appends a finding unless an allow directive shields it.
void emit(const Prepped& p, std::size_t line_no, const std::string& rule,
          const std::string& message, Severity severity,
          std::vector<Finding>* out);

}  // namespace rit::lint::internal
