#include "output.h"

#include <map>

namespace rit::lint {
namespace {

const char* severity_name(Severity s) {
  return s == Severity::kNote ? "note" : "error";
}

std::string u64(std::size_t v) {
  // Independent of common/num_io.h on purpose: the lint engine must stay
  // dependency-free so it can lint the tree that builds it.
  return std::to_string(v);
}

}  // namespace

bool parse_output_format(const std::string& name, OutputFormat* out) {
  if (name == "text") {
    *out = OutputFormat::kText;
  } else if (name == "json") {
    *out = OutputFormat::kJson;
  } else if (name == "sarif") {
    *out = OutputFormat::kSarif;
  } else {
    return false;
  }
  return true;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* hex = "0123456789abcdef";
          out += "\\u00";
          out += hex[(c >> 4) & 0xf];
          out += hex[c & 0xf];
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string render_text(const std::vector<Finding>& findings) {
  std::string out;
  for (const Finding& f : findings) {
    out += f.file + ":" + u64(f.line) + ": ";
    if (f.severity == Severity::kNote) out += "note: ";
    out += "[" + f.rule + "] " + f.message + "\n";
  }
  return out;
}

std::string render_json(const std::vector<Finding>& findings) {
  std::size_t errors = 0, notes = 0;
  std::string out = "{\n  \"findings\": [";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    (f.severity == Severity::kNote ? notes : errors) += 1;
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"file\": \"" + json_escape(f.file) +
           "\", \"line\": " + u64(f.line) + ", \"rule\": \"" +
           json_escape(f.rule) + "\", \"severity\": \"" +
           severity_name(f.severity) + "\", \"message\": \"" +
           json_escape(f.message) + "\"}";
  }
  if (!findings.empty()) out += "\n  ";
  out += "],\n  \"errors\": " + u64(errors) + ",\n  \"notes\": " +
         u64(notes) + "\n}\n";
  return out;
}

std::string render_sarif(const std::vector<Finding>& findings) {
  const std::vector<RuleInfo> rules = rule_infos();
  std::map<std::string, std::size_t> rule_index;
  for (std::size_t i = 0; i < rules.size(); ++i) rule_index[rules[i].id] = i;

  std::string out =
      "{\n"
      "  \"$schema\": \"https://raw.githubusercontent.com/oasis-tcs/"
      "sarif-spec/master/Schemata/sarif-schema-2.1.0.json\",\n"
      "  \"version\": \"2.1.0\",\n"
      "  \"runs\": [\n"
      "    {\n"
      "      \"tool\": {\n"
      "        \"driver\": {\n"
      "          \"name\": \"rit_lint\",\n"
      "          \"informationUri\": "
      "\"https://github.com/ritcs/ritcs/blob/main/docs/"
      "static_analysis.md\",\n"
      "          \"rules\": [";
  for (std::size_t i = 0; i < rules.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += "            {\"id\": \"" + json_escape(rules[i].id) +
           "\", \"shortDescription\": {\"text\": \"" +
           json_escape(rules[i].summary) +
           "\"}, \"fullDescription\": {\"text\": \"" +
           json_escape(rules[i].rationale) + "\"}}";
  }
  out +=
      "\n          ]\n"
      "        }\n"
      "      },\n"
      "      \"results\": [";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    out += i == 0 ? "\n" : ",\n";
    out += "        {\"ruleId\": \"" + json_escape(f.rule) + "\"";
    auto it = rule_index.find(f.rule);
    if (it != rule_index.end()) {
      out += ", \"ruleIndex\": " + u64(it->second);
    }
    out += std::string(", \"level\": \"") +
           (f.severity == Severity::kNote ? "note" : "error") +
           "\", \"message\": {\"text\": \"" + json_escape(f.message) +
           "\"}, \"locations\": [{\"physicalLocation\": "
           "{\"artifactLocation\": {\"uri\": \"" +
           json_escape(f.file) + "\"}, \"region\": {\"startLine\": " +
           u64(f.line) + "}}}]}";
  }
  if (!findings.empty()) out += "\n      ";
  out +=
      "]\n"
      "    }\n"
      "  ]\n"
      "}\n";
  return out;
}

}  // namespace rit::lint
