#include "include_graph.h"

#include <algorithm>
#include <map>
#include <regex>
#include <set>

namespace rit::lint::internal {
namespace {

struct ModuleLayer {
  const char* module;
  int layer;
};

// The declared layering DAG (see the header comment and
// docs/static_analysis.md). Order within a tier is alphabetical and
// carries no meaning.
const ModuleLayer kLayers[] = {
    {"common", 0},   {"rng", 0},                        //
    {"graph", 1},    {"tree", 1},                       //
    {"core", 2},     {"stats", 2},                      //
    {"obs", 3},      {"sim", 3},                        //
    {"attack", 4},   {"baselines", 4},                  //
    {"extensions", 4}, {"platform", 4}, {"testkit", 4},  //
    {"bench", 5},    {"cli", 5},      {"examples", 5},  //
    {"tests", 5},    {"tools", 5},
};

// Declared cross-tier edges: instrumentation via the obs macro facade,
// which compiles away under RIT_OBS_ENABLED=OFF and depends only on
// common/stats — the graph stays a DAG.
const std::pair<const char*, const char*> kLayeringExceptions[] = {
    {"tree", "obs"},
    {"core", "obs"},
};

// Top-level directories that are modules of their own (everything in them
// sits in the top tier and may include anything).
const char* const kTopLevelModules[] = {"bench", "tests", "tools",
                                        "examples"};

}  // namespace

std::string module_of(const std::string& path) {
  if (path.compare(0, 4, "src/") == 0) {
    const std::size_t slash = path.find('/', 4);
    if (slash == std::string::npos) return {};
    const std::string mod = path.substr(4, slash - 4);
    return layer_of(mod) >= 0 ? mod : std::string{};
  }
  for (const char* top : kTopLevelModules) {
    const std::string prefix = std::string(top) + "/";
    if (path.compare(0, prefix.size(), prefix) == 0) return top;
  }
  return {};
}

int layer_of(const std::string& module) {
  for (const ModuleLayer& ml : kLayers) {
    if (module == ml.module) return ml.layer;
  }
  return -1;
}

bool layering_exception(const std::string& from, const std::string& to) {
  for (const auto& [f, t] : kLayeringExceptions) {
    if (from == f && to == t) return true;
  }
  return false;
}

std::string include_target_module(const std::string& target) {
  const std::size_t slash = target.find('/');
  if (slash == std::string::npos) return {};
  const std::string head = target.substr(0, slash);
  // Only src/ modules are addressable by a bare "module/header.h" include
  // (every library sets src/ as its include root); bench/tests/tools
  // headers are included relative to their own directory.
  if (layer_of(head) < 0) return {};
  for (const char* top : kTopLevelModules) {
    if (head == top) return {};
  }
  return head;
}

IncludeGraph build_include_graph(const std::vector<Prepped>& prepped) {
  IncludeGraph graph;
  graph.files.reserve(prepped.size());
  std::map<std::string, int> index_of;
  for (const Prepped& p : prepped) {
    index_of[p.src->path] = static_cast<int>(graph.files.size());
    graph.files.push_back(&p);
  }
  graph.edges.resize(graph.files.size());

  auto dirname = [](const std::string& path) {
    const std::size_t slash = path.rfind('/');
    return slash == std::string::npos ? std::string{}
                                      : path.substr(0, slash);
  };

  for (std::size_t i = 0; i < graph.files.size(); ++i) {
    const Prepped& p = *graph.files[i];
    const std::string dir = dirname(p.src->path);
    for (const IncludeDirective& inc : p.includes) {
      // Resolution mirrors the build: the includer's own directory first
      // (tools/lint/ and bench/ include same-directory headers bare),
      // then src/ (every library's include root), then the repo root.
      const std::string candidates[] = {
          dir.empty() ? inc.target : dir + "/" + inc.target,
          "src/" + inc.target,
          inc.target,
      };
      for (const std::string& cand : candidates) {
        auto it = index_of.find(cand);
        if (it != index_of.end()) {
          graph.edges[i].emplace_back(inc.line, it->second);
          break;
        }
      }
    }
  }
  return graph;
}

// ---------------------------------------------------------------------------
// include-cycle: Tarjan SCC, iterative so deep include chains cannot
// overflow the stack.
// ---------------------------------------------------------------------------

std::vector<std::vector<int>> include_cycles(const IncludeGraph& graph) {
  const int n = static_cast<int>(graph.files.size());
  std::vector<int> index(n, -1), lowlink(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<int> stack;
  std::vector<std::vector<int>> sccs;
  int next_index = 0;

  struct Frame {
    int node;
    std::size_t edge;
  };
  for (int root = 0; root < n; ++root) {
    if (index[root] != -1) continue;
    std::vector<Frame> call_stack{{root, 0}};
    index[root] = lowlink[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = true;
    while (!call_stack.empty()) {
      Frame& frame = call_stack.back();
      const int v = frame.node;
      if (frame.edge < graph.edges[v].size()) {
        const int w = graph.edges[v][frame.edge].second;
        ++frame.edge;
        if (index[w] == -1) {
          index[w] = lowlink[w] = next_index++;
          stack.push_back(w);
          on_stack[w] = true;
          call_stack.push_back(Frame{w, 0});
        } else if (on_stack[w]) {
          lowlink[v] = std::min(lowlink[v], index[w]);
        }
      } else {
        if (lowlink[v] == index[v]) {
          std::vector<int> scc;
          int w;
          do {
            w = stack.back();
            stack.pop_back();
            on_stack[w] = false;
            scc.push_back(w);
          } while (w != v);
          bool self_loop = false;
          for (const auto& [line, to] : graph.edges[v]) {
            (void)line;
            if (to == v) self_loop = true;
          }
          if (scc.size() > 1 || self_loop) {
            std::sort(scc.begin(), scc.end(), [&](int a, int b) {
              return graph.files[a]->src->path < graph.files[b]->src->path;
            });
            sccs.push_back(std::move(scc));
          }
        }
        call_stack.pop_back();
        if (!call_stack.empty()) {
          const int parent = call_stack.back().node;
          lowlink[parent] = std::min(lowlink[parent], lowlink[v]);
        }
      }
    }
  }
  std::sort(sccs.begin(), sccs.end(),
            [&](const std::vector<int>& a, const std::vector<int>& b) {
              return graph.files[a[0]]->src->path <
                     graph.files[b[0]]->src->path;
            });
  return sccs;
}

// ---------------------------------------------------------------------------
// layer-violation
// ---------------------------------------------------------------------------

void run_layering_rule(const std::vector<Prepped>& prepped,
                       std::vector<Finding>* out) {
  static const char* kId = "layer-violation";
  for (const Prepped& p : prepped) {
    if (p.file_class != FileClass::kCpp) continue;
    const std::string from = module_of(p.src->path);
    const int from_layer = layer_of(from);
    if (from_layer < 0) continue;
    for (const IncludeDirective& inc : p.includes) {
      const std::string to = include_target_module(inc.target);
      if (to.empty() || to == from) continue;
      const int to_layer = layer_of(to);
      if (to_layer <= from_layer) continue;
      if (layering_exception(from, to)) continue;
      emit(p, inc.line, kId,
           "module '" + from + "' (tier " + std::to_string(from_layer) +
               ") includes \"" + inc.target + "\" from module '" + to +
               "' (tier " + std::to_string(to_layer) +
               "), which sits above it in the declared layering DAG "
               "(common/rng -> graph/tree -> core/stats -> sim/obs -> "
               "attack/baselines/extensions/platform -> cli/bench/tools); "
               "invert the dependency or move the shared code down",
           Severity::kError, out);
    }
  }
}

// ---------------------------------------------------------------------------
// include-cycle
// ---------------------------------------------------------------------------

void run_include_cycle_rule(const IncludeGraph& graph,
                            std::vector<Finding>* out) {
  static const char* kId = "include-cycle";
  for (const std::vector<int>& scc : include_cycles(graph)) {
    const std::set<int> members(scc.begin(), scc.end());
    // Anchor the finding at the smallest path's first include that stays
    // inside the component; list the whole component in the message.
    const int anchor = scc[0];
    std::size_t line = 1;
    for (const auto& [l, to] : graph.edges[anchor]) {
      if (members.count(to) != 0) {
        line = l;
        break;
      }
    }
    std::string cycle;
    for (const int v : scc) {
      if (!cycle.empty()) cycle += " -> ";
      cycle += graph.files[v]->src->path;
    }
    cycle += " -> " + graph.files[anchor]->src->path;
    emit(*graph.files[anchor], line, kId,
         "#include cycle: " + cycle +
             "; headers in a cycle cannot be compiled stand-alone and the "
             "module boundary between them is fiction — break the cycle "
             "with a forward declaration or by moving the shared type down "
             "a layer",
         Severity::kError, out);
  }
}

// ---------------------------------------------------------------------------
// unused-include (IWYU-lite, report-only)
// ---------------------------------------------------------------------------

namespace {

// Names a header "exports", approximated lexically: type names, using
// aliases, macro names, and anything that syntactically looks like a
// function/constructor name. Over-collection is fine — the check only
// needs one exported name to be mentioned by the includer — and markers
// are collected transitively so umbrella headers (graph/graph.h) credit
// their re-exports.
void collect_markers(const IncludeGraph& graph, int node,
                     std::vector<std::set<std::string>>* memo,
                     std::vector<int>* state) {
  if ((*state)[node] != 0) return;  // visiting or done: cycle-safe
  (*state)[node] = 1;
  std::set<std::string>& markers = (*memo)[node];
  const Prepped& p = *graph.files[node];

  static const std::regex kTypeRe(R"(\b(?:class|struct|enum|union)\s+(\w+))");
  static const std::regex kUsingRe(R"(\busing\s+(\w+)\s*=)");
  static const std::regex kCallishRe(R"((\w+)\s*\()");
  static const std::set<std::string> kNoise = {
      "if",     "for",    "while",  "switch",   "return", "sizeof",
      "catch",  "defined", "alignof", "decltype", "static_assert",
      "assert", "class",  "struct", "enum",     "union",  "explicit",
      "operator"};

  for (const std::string& line : p.lines) {
    for (auto it = std::sregex_iterator(line.begin(), line.end(), kTypeRe);
         it != std::sregex_iterator(); ++it) {
      markers.insert((*it)[1].str());
    }
    for (auto it = std::sregex_iterator(line.begin(), line.end(), kUsingRe);
         it != std::sregex_iterator(); ++it) {
      markers.insert((*it)[1].str());
    }
    if (line.find("#include") == std::string::npos) {
      for (auto it =
               std::sregex_iterator(line.begin(), line.end(), kCallishRe);
           it != std::sregex_iterator(); ++it) {
        const std::string name = (*it)[1].str();
        if (kNoise.count(name) == 0) markers.insert(name);
      }
    }
  }
  // Macro names come from the raw content: stripping erases neither
  // `#define` nor the name, but this is cheap insurance against future
  // strip changes and picks up conditional definitions too.
  static const std::regex kDefineRe(R"(^\s*#\s*define\s+(\w+))");
  for (const std::string& raw : split_lines(p.src->content)) {
    std::smatch m;
    if (std::regex_search(raw, m, kDefineRe)) markers.insert(m[1].str());
  }

  for (const auto& [line, to] : graph.edges[node]) {
    (void)line;
    collect_markers(graph, to, memo, state);
    markers.insert((*memo)[to].begin(), (*memo)[to].end());
  }
  (*state)[node] = 2;
}

std::string stem_of(const std::string& path) {
  const std::size_t slash = path.rfind('/');
  const std::size_t from = slash == std::string::npos ? 0 : slash + 1;
  const std::size_t dot = path.rfind('.');
  if (dot == std::string::npos || dot < from) return path.substr(from);
  return path.substr(from, dot - from);
}

}  // namespace

void run_unused_include_rule(const IncludeGraph& graph,
                             std::vector<Finding>* out) {
  static const char* kId = "unused-include";
  std::vector<std::set<std::string>> markers(graph.files.size());
  std::vector<int> state(graph.files.size(), 0);

  for (std::size_t i = 0; i < graph.files.size(); ++i) {
    const Prepped& p = *graph.files[i];
    // Only .cpp includers: headers legitimately include-to-re-export
    // (umbrella headers), which a lexical heuristic cannot tell from an
    // unused include.
    const std::string& path = p.src->path;
    const bool is_cpp_tu =
        path.size() > 4 && (path.compare(path.size() - 4, 4, ".cpp") == 0 ||
                            path.compare(path.size() - 3, 3, ".cc") == 0);
    if (!is_cpp_tu || graph.edges[i].empty()) continue;

    for (const auto& [line, to] : graph.edges[i]) {
      const Prepped& target = *graph.files[to];
      // foo.cpp -> foo.h is the definition edge, never "unused".
      if (stem_of(target.src->path) == stem_of(path)) continue;
      collect_markers(graph, to, &markers, &state);
      const std::set<std::string>& exported = markers[to];
      if (exported.empty()) continue;
      bool used = false;
      for (std::size_t ln = 0; ln < p.lines.size() && !used; ++ln) {
        const std::string& text = p.lines[ln];
        if (text.find("#include") != std::string::npos) continue;
        for (const std::string& name : exported) {
          if (text.size() >= name.size() && line_has_token(text, name)) {
            used = true;
            break;
          }
        }
      }
      if (!used) {
        emit(p, line, kId,
             "no name exported by \"" + target.src->path +
                 "\" appears in this file (IWYU-lite heuristic); drop the "
                 "include or annotate why it is load-bearing",
             Severity::kNote, out);
      }
    }
  }
}

}  // namespace rit::lint::internal
