// Output layer of the rit_lint engine: renders a finding list as plain
// text (the developer loop), JSON (scripting), or SARIF 2.1.0 (GitHub
// code-scanning upload for inline PR annotations).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "linter.h"

namespace rit::lint {

enum class OutputFormat { kText, kJson, kSarif };

/// Parses "text" / "json" / "sarif"; false on anything else.
bool parse_output_format(const std::string& name, OutputFormat* out);

/// JSON string-body escaping (quotes, backslashes, control characters).
std::string json_escape(const std::string& s);

/// One line per finding: `file:line: [rule] message`, notes prefixed with
/// `note:`. No trailing summary — the CLI appends its own.
std::string render_text(const std::vector<Finding>& findings);

/// {"findings": [{file, line, rule, severity, message}...],
///  "errors": N, "notes": M}
std::string render_json(const std::vector<Finding>& findings);

/// A single-run SARIF 2.1.0 log. Every known rule is listed in
/// tool.driver.rules (id, shortDescription, fullDescription) so GitHub can
/// render rule help; results reference rules by index. URIs are
/// repo-relative, which is what the code-scanning upload expects.
std::string render_sarif(const std::vector<Finding>& findings);

}  // namespace rit::lint
