#include "scanner.h"

#include <cctype>
#include <regex>

namespace rit::lint {

// The one public entry point implemented here: exposed through linter.h for
// the engine self-tests, which pin comment/string stripping directly.
std::string strip_comments_and_strings(const std::string& content) {
  std::string out;
  out.reserve(content.size());
  enum class State {
    kCode,
    kLineComment,
    kBlockComment,
    kString,
    kChar,
    kRawString,
  } state = State::kCode;
  std::string raw_delim;  // for R"delim( ... )delim"

  const std::size_t n = content.size();
  for (std::size_t i = 0; i < n; ++i) {
    const char c = content[i];
    const char next = i + 1 < n ? content[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          out += "  ";
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          out += "  ";
          ++i;
        } else if (c == 'R' && next == '"' &&
                   (i == 0 || !internal::is_word(content[i - 1]))) {
          // Raw string: R"delim( ... )delim"
          std::size_t paren = content.find('(', i + 2);
          if (paren != std::string::npos) {
            raw_delim = ")" + content.substr(i + 2, paren - (i + 2)) + "\"";
            state = State::kRawString;
            for (std::size_t k = i; k <= paren; ++k) {
              out += content[k] == '\n' ? '\n' : ' ';
            }
            i = paren;
          } else {
            out += c;
          }
        } else if (c == '"') {
          state = State::kString;
          out += ' ';
        } else if (c == '\'' && i > 0 && !internal::is_word(content[i - 1])) {
          state = State::kChar;
          out += ' ';
        } else {
          out += c;
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          state = State::kCode;
          out += '\n';
        } else {
          out += ' ';
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          out += "  ";
          ++i;
        } else {
          out += c == '\n' ? '\n' : ' ';
        }
        break;
      case State::kString:
        if (c == '\\') {
          out += "  ";
          ++i;
          if (next == '\n') out.back() = '\n';
        } else if (c == '"') {
          state = State::kCode;
          out += ' ';
        } else {
          out += c == '\n' ? '\n' : ' ';
        }
        break;
      case State::kChar:
        if (c == '\\') {
          out += "  ";
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
          out += ' ';
        } else {
          out += ' ';
        }
        break;
      case State::kRawString:
        if (content.compare(i, raw_delim.size(), raw_delim) == 0) {
          for (std::size_t k = 0; k < raw_delim.size(); ++k) out += ' ';
          i += raw_delim.size() - 1;
          state = State::kCode;
        } else {
          out += c == '\n' ? '\n' : ' ';
        }
        break;
    }
  }
  return out;
}

namespace internal {

bool is_word(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

FileClass classify(const std::string& path) {
  auto ends_with = [&](const char* suf) {
    const std::string s(suf);
    return path.size() >= s.size() &&
           path.compare(path.size() - s.size(), s.size(), s) == 0;
  };
  if (ends_with("CMakeLists.txt") || ends_with(".cmake") ||
      ends_with(".sh")) {
    return FileClass::kBuild;
  }
  return FileClass::kCpp;
}

std::string strip_hash_comments(const std::string& content) {
  std::string out;
  out.reserve(content.size());
  bool in_comment = false;
  for (char c : content) {
    if (c == '\n') {
      in_comment = false;
      out += '\n';
    } else if (c == '#') {
      in_comment = true;
      out += ' ';
    } else {
      out += in_comment ? ' ' : c;
    }
  }
  return out;
}

std::string strip_strings_keep_comments(const std::string& content) {
  // Same state machine as strip_comments_and_strings, but comments pass
  // through verbatim: a `// rit-lint: allow(x)` directive survives while
  // `"// rit-lint: allow(x)"` — directive-shaped *data* inside a string
  // literal, as in the lint self-tests — is blanked.
  std::string out;
  out.reserve(content.size());
  enum class State {
    kCode,
    kLineComment,
    kBlockComment,
    kString,
    kChar,
    kRawString,
  } state = State::kCode;
  std::string raw_delim;

  const std::size_t n = content.size();
  for (std::size_t i = 0; i < n; ++i) {
    const char c = content[i];
    const char next = i + 1 < n ? content[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          out += "//";
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          out += "/*";
          ++i;
        } else if (c == 'R' && next == '"' && (i == 0 || !is_word(content[i - 1]))) {
          std::size_t paren = content.find('(', i + 2);
          if (paren != std::string::npos) {
            raw_delim = ")" + content.substr(i + 2, paren - (i + 2)) + "\"";
            state = State::kRawString;
            for (std::size_t k = i; k <= paren; ++k) {
              out += content[k] == '\n' ? '\n' : ' ';
            }
            i = paren;
          } else {
            out += c;
          }
        } else if (c == '"') {
          state = State::kString;
          out += ' ';
        } else if (c == '\'' && i > 0 && !is_word(content[i - 1])) {
          state = State::kChar;
          out += ' ';
        } else {
          out += c;
        }
        break;
      case State::kLineComment:
        if (c == '\n') state = State::kCode;
        out += c;
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          out += "*/";
          ++i;
        } else {
          out += c;
        }
        break;
      case State::kString:
        if (c == '\\') {
          out += "  ";
          ++i;
          if (next == '\n') out.back() = '\n';
        } else if (c == '"') {
          state = State::kCode;
          out += ' ';
        } else {
          out += c == '\n' ? '\n' : ' ';
        }
        break;
      case State::kChar:
        if (c == '\\') {
          out += "  ";
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
          out += ' ';
        } else {
          out += ' ';
        }
        break;
      case State::kRawString:
        if (content.compare(i, raw_delim.size(), raw_delim) == 0) {
          for (std::size_t k = 0; k < raw_delim.size(); ++k) out += ' ';
          i += raw_delim.size() - 1;
          state = State::kCode;
        } else {
          out += c == '\n' ? '\n' : ' ';
        }
        break;
    }
  }
  return out;
}

std::vector<std::string> split_lines(const std::string& s) {
  std::vector<std::string> lines;
  std::string cur;
  for (char c : s) {
    if (c == '\n') {
      lines.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  lines.push_back(cur);
  return lines;
}

std::string normalize_ws(const std::string& line) {
  std::string out;
  out.reserve(line.size());
  bool prev_space = false;
  for (char c : line) {
    const bool space = c == ' ' || c == '\t';
    if (space) {
      if (!prev_space) out += ' ';
    } else {
      out += c;
    }
    prev_space = space;
  }
  return out;
}

bool token_matches_at(const std::string& line, std::size_t pos,
                      const std::string& token) {
  if (line.compare(pos, token.size(), token) != 0) return false;
  if (is_word(token.front()) && pos > 0 && is_word(line[pos - 1])) {
    return false;
  }
  const std::size_t end = pos + token.size();
  if (is_word(token.back()) && end < line.size() && is_word(line[end])) {
    return false;
  }
  return true;
}

bool line_has_token(const std::string& line, const std::string& token) {
  for (std::size_t pos = line.find(token); pos != std::string::npos;
       pos = line.find(token, pos + 1)) {
    if (token_matches_at(line, pos, token)) return true;
  }
  return false;
}

bool AllowSet::allows(const std::string& rule, std::size_t line) const {
  if (file_rules.count(rule) != 0 || file_rules.count("*") != 0) {
    return true;
  }
  // A directive covers its own line and the line after it, so a
  // standalone "// rit-lint: allow(x)" comment shields the next line.
  for (std::size_t l = line > 1 ? line - 1 : line; l <= line; ++l) {
    auto it = lines.find(l);
    if (it != lines.end() &&
        (it->second.count(rule) != 0 || it->second.count("*") != 0)) {
      return true;
    }
  }
  return false;
}

namespace {

void parse_rule_list(const std::string& text, std::set<std::string>* out) {
  std::string cur;
  for (char c : text) {
    if (c == ',' || c == ' ' || c == '\t') {
      if (!cur.empty()) out->insert(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) out->insert(cur);
}

}  // namespace

AllowSet parse_allows(const std::vector<std::string>& raw_lines) {
  AllowSet allows;
  for (std::size_t i = 0; i < raw_lines.size(); ++i) {
    const std::string& line = raw_lines[i];
    const std::size_t tag = line.find("rit-lint:");
    if (tag == std::string::npos) continue;
    const std::string rest = line.substr(tag + 9);
    for (const auto& [kw, file_scope] :
         {std::pair<const char*, bool>{"allow-file(", true},
          std::pair<const char*, bool>{"allow(", false}}) {
      std::size_t at = rest.find(kw);
      if (at == std::string::npos) continue;
      at += std::string(kw).size();
      const std::size_t close = rest.find(')', at);
      if (close == std::string::npos) continue;
      const std::string list = rest.substr(at, close - at);
      if (file_scope) {
        parse_rule_list(list, &allows.file_rules);
      } else {
        parse_rule_list(list, &allows.lines[i + 1]);
      }
    }
  }
  return allows;
}

namespace {

const char* const kResultPathHints[] = {"report", "csv",    "json",
                                        "_io",    "export", "render",
                                        "statement", "svg", "table"};

// Extracts `#include "..."` targets. The stripped line decides whether the
// directive is live code (a commented-out include strips to blanks); the
// raw line supplies the quoted path, which stripping blanked.
const std::regex kIncludeRe(R"(^\s*#\s*include\s*"([^"]+)\")");

}  // namespace

Prepped prep(const SourceFile& f) {
  Prepped p;
  p.src = &f;
  p.file_class = classify(f.path);
  const std::vector<std::string> raw_lines = split_lines(f.content);
  p.allows = parse_allows(raw_lines);
  const std::string stripped = p.file_class == FileClass::kBuild
                                   ? strip_hash_comments(f.content)
                                   : strip_comments_and_strings(f.content);
  for (const std::string& line : split_lines(stripped)) {
    p.lines.push_back(normalize_ws(line));
  }
  if (p.file_class == FileClass::kCpp) {
    for (std::size_t i = 0; i < p.lines.size() && i < raw_lines.size(); ++i) {
      if (p.lines[i].find("#include") == std::string::npos &&
          p.lines[i].find("# include") == std::string::npos) {
        continue;
      }
      std::smatch m;
      if (std::regex_search(raw_lines[i], m, kIncludeRe)) {
        p.includes.push_back(IncludeDirective{i + 1, m[1].str()});
      }
    }
  }
  for (const char* hint : kResultPathHints) {
    if (f.path.find(hint) != std::string::npos) p.result_path = true;
  }
  if (!p.result_path) {
    for (const std::string& line : p.lines) {
      if (line_has_token(line, "std::ostream") ||
          line_has_token(line, "std::ofstream")) {
        p.result_path = true;
        break;
      }
    }
  }
  return p;
}

bool path_contains_any(const std::string& path,
                       const std::vector<const char*>& subs) {
  for (const char* sub : subs) {
    if (path.find(sub) != std::string::npos) return true;
  }
  return false;
}

void emit(const Prepped& p, std::size_t line_no, const std::string& rule,
          const std::string& message, Severity severity,
          std::vector<Finding>* out) {
  if (p.allows.allows(rule, line_no)) return;
  out->push_back(Finding{p.src->path, line_no, rule, message, severity});
}

}  // namespace internal
}  // namespace rit::lint
