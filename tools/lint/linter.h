// rit_lint: the repo-specific correctness linter.
//
// RIT's headline guarantees (truthfulness and sybil-proofness with
// probability >= H) are only reproducible if every randomized path is
// deterministic and portable. The compiler cannot enforce that — nothing
// stops a contributor from reintroducing std::uniform_int_distribution
// (stream differs between standard libraries), iterating an unordered_map
// into a report (hash order differs between runs), or adding a metrics
// field that merge() silently drops. This linter turns those conventions
// into machine-checked invariants.
//
// The engine has four layers (one file each under tools/lint/):
//   scanner.{h,cpp}        lexical: comment/string stripping, tokens,
//                          allowlist directives, per-file preprocessing
//   include_graph.{h,cpp}  architectural: the #include dependency graph,
//                          the declared module layering DAG, cycle
//                          detection, the IWYU-lite heuristic
//   linter.{h,cpp}         the rule table and scan orchestration (this
//                          public surface)
//   output.{h,cpp} +       text/json/sarif rendering and the baseline
//   baseline.{h,cpp}       adoption machinery for the CLI
//
// Line-scoped rules stay deliberately lexical: strip comments and string
// literals, then match word-bounded tokens and a few structural patterns.
// That keeps rules declarative (see kRules in linter.cpp), fast, and free
// of a compiler dependency — at the cost of heuristic precision, which
// the allowlist escape hatch compensates for:
//
//   some_call();  // rit-lint: allow(<rule-id>)     (this line + the next)
//   // rit-lint: allow-file(<rule-id>)              (whole file)
//
// Every rule has fixture-based self-tests under tests/lint_fixtures/
// (ctest -L lint), the live tree is scanned as a test, and the set of
// escape directives in the live tree is itself inventoried against a
// checked-in budget (tests/lint_escapes_expected.txt), so neither banned
// patterns nor silent suppressions can accumulate.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace rit::lint {

/// Finding severity. Errors gate (exit status, baselines, CI); notes are
/// report-only — today just the IWYU-lite unused-include heuristic, whose
/// precision is deliberately below gating quality.
enum class Severity { kError, kNote };

/// One violation. `line` is 1-based; `rule` is the stable rule id used in
/// allowlist directives and baselines.
struct Finding {
  std::string file;
  std::size_t line{0};
  std::string rule;
  std::string message;
  Severity severity{Severity::kError};
};

/// Static description of a rule: `summary` is the one-line message shown
/// in listings; `rationale` is the paragraph behind `--explain <rule>`
/// and SARIF fullDescription.
struct RuleInfo {
  std::string id;
  std::string summary;
  std::string rationale;
};

/// An in-memory file handed to the scanner. `path` should be
/// repo-relative with forward slashes — path-scoped rules (e.g.
/// no-random-device outside src/rng/) match against it.
struct SourceFile {
  std::string path;
  std::string content;
};

/// One `// rit-lint: allow(...)` / `allow-file(...)` escape directive
/// found in a file's comments (directives inside string literals — lint
/// test data — do not count).
struct EscapeRecord {
  std::string file;
  std::size_t line{0};
  std::string rule;
  bool file_scope{false};
};

/// All rules the engine knows, in reporting order.
std::vector<RuleInfo> rule_infos();

/// Scans a set of files as one unit. Cross-file rules (merge-coverage-guard
/// pairs a merge() definition with its static_assert guard, possibly in a
/// sibling .cpp; unordered-iteration pairs a .cpp with declarations in its
/// same-stem header; the include-graph rules resolve includes against the
/// whole set) only see what is inside `files`, so pass the whole tree for
/// a tree-level verdict.
std::vector<Finding> scan(const std::vector<SourceFile>& files);

/// Convenience: scans a single file in isolation (fixture self-tests).
std::vector<Finding> scan_file(const SourceFile& file);

/// Inventories every escape directive in `files`, in (file, line) order.
/// The escape-budget test diffs this against the checked-in expected list
/// so a new suppression requires an explicit test update.
std::vector<EscapeRecord> collect_escapes(
    const std::vector<SourceFile>& files);

/// Walks `root` and collects the scan set: *.h *.hpp *.cpp *.cc under
/// src/ bench/ tests/ tools/ examples/, plus build files (CMakeLists.txt,
/// *.cmake, *.sh) for the flag rules. Skips build trees, tests/golden/ and
/// tests/lint_fixtures/ (fixtures intentionally violate rules). Paths in
/// the result are repo-relative.
std::vector<SourceFile> collect_tree(const std::string& root);

/// Strips //, /* */ comments and "..."/'...' literals (incl. simple raw
/// strings), preserving line structure, so rule tokens never match inside
/// prose. Exposed for the self-tests.
std::string strip_comments_and_strings(const std::string& content);

}  // namespace rit::lint
