// Lint baselines: the adoption mechanism that lets a new rule land
// without a flag-day. A baseline file records (rule, file) pairs that are
// temporarily accepted; `rit_lint --baseline <file>` suppresses exactly
// those, so only *new* debt fails the gate, and `--update-baseline`
// regenerates the file when debt is paid down. Entries are (rule, file) —
// not line numbers — so unrelated edits cannot churn the baseline.
//
// The checked-in baseline (tools/lint/lint_baseline.txt) is deliberately
// empty: every violation the architecture rules flagged at introduction
// was fixed in the same change. The machinery stays so the *next* rule
// can ratchet instead of big-banging.
#pragma once

#include <cstddef>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "linter.h"

namespace rit::lint {

struct Baseline {
  std::set<std::pair<std::string, std::string>> entries;  // (rule, file)
};

/// Parses a baseline file: one `<rule> <file>` pair per line, '#' starts a
/// comment, blank lines ignored. Empty optional when the file cannot be
/// read or a line is malformed.
std::optional<Baseline> load_baseline(const std::string& path);

/// Splits `findings` into kept (returned) and suppressed (counted into
/// `*suppressed`). Only error-severity findings are ever suppressed —
/// baselining a report-only note would be meaningless.
std::vector<Finding> apply_baseline(const Baseline& baseline,
                                    const std::vector<Finding>& findings,
                                    std::size_t* suppressed);

/// Serializes the error findings as baseline lines (sorted, deduplicated),
/// with a header comment documenting the format.
std::string serialize_baseline(const std::vector<Finding>& findings);

}  // namespace rit::lint
