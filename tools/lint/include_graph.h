// Architecture-aware layer of the rit_lint engine: builds the #include
// dependency graph over the scan set and enforces the declared module
// layering DAG.
//
// The declared tiers, bottom-up (a module may include its own tier or any
// tier below; see docs/static_analysis.md for the diagram):
//
//   tier 0: common, rng
//   tier 1: graph, tree
//   tier 2: core, stats
//   tier 3: sim, obs
//   tier 4: attack, baselines, extensions, platform
//   tier 5: cli, bench, tests, tools, examples
//
// Two declared instrumentation edges cut across the tiers: tree -> obs and
// core -> obs. The span/metrics macros in obs/obs.h compile away under
// RIT_OBS_ENABLED=OFF and obs depends only on tiers <= 2, so the edges
// keep the graph acyclic; they are data here (kLayeringExceptions), not
// holes in the rule.
//
// Rules implemented on the graph:
//   layer-violation  an include whose target module sits in a higher tier
//   include-cycle    a strongly connected component in the file graph
//   unused-include   (report-only note) IWYU-lite: a .cpp includes a repo
//                    header none of whose exported names it mentions
#pragma once

#include <string>
#include <vector>

#include "scanner.h"

namespace rit::lint::internal {

/// Module name for a repo-relative path: "src/core/rit.h" -> "core",
/// "bench/bench_scale.cpp" -> "bench", "tests/..." -> "tests". Empty when
/// the path belongs to no known module (e.g. configs/).
std::string module_of(const std::string& path);

/// Declared tier of a module, -1 when unknown.
int layer_of(const std::string& module);

/// True for the declared cross-tier instrumentation edges (tree -> obs,
/// core -> obs).
bool layering_exception(const std::string& from, const std::string& to);

/// Module named by an include target: "core/rit.h" -> "core" when the
/// first path segment is a known src/ module, else empty ("gtest/gtest.h",
/// same-directory includes like "linter.h").
std::string include_target_module(const std::string& target);

/// The resolved file-level include graph. Nodes are scan-set files;
/// edges[i] holds (line, to_index) for every include of file i that
/// resolved to another scan-set file. Deterministic: nodes keep scan-set
/// order, edges keep directive order.
struct IncludeGraph {
  std::vector<const Prepped*> files;
  std::vector<std::vector<std::pair<std::size_t, int>>> edges;
};

IncludeGraph build_include_graph(const std::vector<Prepped>& prepped);

/// Strongly connected components with more than one file, plus self-loops,
/// as sorted lists of node indices; deterministically ordered by smallest
/// member path.
std::vector<std::vector<int>> include_cycles(const IncludeGraph& graph);

void run_layering_rule(const std::vector<Prepped>& prepped,
                       std::vector<Finding>* out);

void run_include_cycle_rule(const IncludeGraph& graph,
                            std::vector<Finding>* out);

void run_unused_include_rule(const IncludeGraph& graph,
                             std::vector<Finding>* out);

}  // namespace rit::lint::internal
