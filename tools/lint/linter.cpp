#include "linter.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <regex>
#include <set>
#include <sstream>

namespace rit::lint {
namespace {

bool is_word(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

// ---------------------------------------------------------------------------
// Rule table. Token rules are pure data; the two structural rules
// (no-unordered-iteration-in-results, merge-coverage-guard) are engine
// checks registered at the bottom of rule_infos().
// ---------------------------------------------------------------------------

enum class FileClass { kCpp, kBuild };

struct TokenRule {
  const char* id;
  const char* summary;
  FileClass file_class;
  // Word-bounded literal tokens: a match only counts when the characters
  // adjacent to word-character token edges are non-word.
  std::vector<const char*> tokens;
  // ECMAScript regexes for patterns a literal token cannot express.
  std::vector<const char*> regexes;
  // Repo-relative path substrings exempt from this rule.
  std::vector<const char*> path_excludes;
  // Restrict to "result path" files: path names a report/serialization
  // boundary, or the file mentions std::ostream / std::ofstream.
  bool result_path_only{false};
  // When non-empty, the rule only applies to files whose repo-relative
  // path contains at least one of these substrings. The default-initializer
  // keeps the many rules that don't scope themselves warning-clean under
  // -Wmissing-field-initializers.
  std::vector<const char*> path_includes{};
};

const std::vector<TokenRule>& token_rules() {
  static const std::vector<TokenRule> kRules = {
      {"no-std-rand",
       "libc/std PRNGs (std::rand, rand, srand, *rand48) are seeded "
       "globally and unspecified across platforms; use rng::Rng",
       FileClass::kCpp,
       {"std::rand", "rand(", "srand", "rand_r", "drand48", "lrand48",
        "mrand48", "random("},
       {},
       {}},
      {"no-random-device",
       "std::random_device is nondeterministic by design; only src/rng/ "
       "may touch entropy sources",
       FileClass::kCpp,
       {"random_device"},
       {},
       {"src/rng/"}},
      {"no-std-distribution",
       "<random> distributions leave the mapping from engine output to "
       "values unspecified — two standard libraries produce different "
       "streams from the same seed; use the explicit samplers in rng::Rng",
       FileClass::kCpp,
       {},
       {R"(\b\w+_distribution\b)"},
       {}},
      {"no-std-engine",
       "std engines (mt19937, minstd_rand, ...) invite std::shuffle / "
       "distribution use and duplicate the repo-wide rng::Rng stream",
       FileClass::kCpp,
       {"mt19937", "mt19937_64", "minstd_rand", "minstd_rand0",
        "default_random_engine", "ranlux24", "ranlux48", "knuth_b",
        "mersenne_twister_engine", "linear_congruential_engine",
        "subtract_with_carry_engine"},
       {},
       {"src/rng/"}},
      {"no-std-shuffle",
       "std::shuffle's permutation algorithm is implementation-defined "
       "for a given engine; use rng-based shuffling "
       "(rng::sample_without_replacement_into / Fisher-Yates over Rng)",
       FileClass::kCpp,
       {"std::shuffle", "random_shuffle"},
       {},
       {}},
      {"no-wallclock-in-results",
       "wall-clock reads (system_clock, std::time, localtime, ...) in a "
       "result path make output depend on when it ran; results must be a "
       "function of (config, seed) only — use stats::Timer / steady_clock "
       "for durations",
       FileClass::kCpp,
       {"system_clock", "std::time", "time(nullptr)", "time(NULL)",
        "gettimeofday", "localtime", "gmtime", "strftime", "asctime",
        "ctime("},
       {},
       {},
       /*result_path_only=*/true},
      {"no-wallclock-in-history",
       "wall-clock reads in the perf-history ledger path would timestamp "
       "records, breaking the contract that re-running the same binary "
       "yields byte-comparable records; identify records by git SHA + env "
       "fingerprint + file position instead",
       FileClass::kCpp,
       {"system_clock", "std::time", "time(nullptr)", "time(NULL)",
        "gettimeofday", "localtime", "gmtime", "strftime", "asctime",
        "ctime("},
       {},
       {},
       /*result_path_only=*/false,
       /*path_includes=*/{"history"}},
      {"no-locale-numeric",
       "the strtod/snprintf family reads the global locale's radix "
       "character, so a result written under de_DE prints \"0,5\" and the "
       "read-back under C rejects it; numbers that cross a file boundary "
       "must go through rit::parse_double / parse_u64 / format_* "
       "(common/num_io.h), which are locale-independent and reject the "
       "strtoull sign/whitespace/overflow laxness",
       FileClass::kCpp,
       {"strtod", "strtof", "strtold", "strtol", "strtoll", "strtoul",
        "strtoull", "strtoimax", "strtoumax", "atof", "atoi", "atol",
        "atoll", "stod", "stof", "stold", "stoi", "stol", "stoll", "stoul",
        "stoull", "sscanf", "scanf", "sprintf", "snprintf", "vsnprintf",
        "vsprintf"},
       {},
       {},
       /*result_path_only=*/false,
       /*path_includes=*/{"result_io", "config_io", "checkpoint",
                          "population_io", "cli/args", "obs/history",
                          "format_util", "num_io", "bench_diff",
                          "bench_support"}},
      {"no-fast-math",
       "-ffast-math / -Ofast license reassociation and FTZ, so the same "
       "seed stops reproducing the same floats across compilers",
       FileClass::kBuild,
       {"-ffast-math", "-funsafe-math-optimizations", "-Ofast",
        "/fp:fast", "-ffp-contract=fast"},
       {},
       {}},
      {"no-long-double",
       "long double is 80-bit on x86, 128-bit on aarch64, 64-bit on "
       "MSVC — metrics computed with it are not portable; use double",
       FileClass::kCpp,
       {"long double"},
       {},
       {}},
  };
  return kRules;
}

// ---------------------------------------------------------------------------
// Lexical preprocessing
// ---------------------------------------------------------------------------

}  // namespace

std::string strip_comments_and_strings(const std::string& content) {
  std::string out;
  out.reserve(content.size());
  enum class State {
    kCode,
    kLineComment,
    kBlockComment,
    kString,
    kChar,
    kRawString,
  } state = State::kCode;
  std::string raw_delim;  // for R"delim( ... )delim"

  const std::size_t n = content.size();
  for (std::size_t i = 0; i < n; ++i) {
    const char c = content[i];
    const char next = i + 1 < n ? content[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          out += "  ";
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          out += "  ";
          ++i;
        } else if (c == 'R' && next == '"' &&
                   (i == 0 || !is_word(content[i - 1]))) {
          // Raw string: R"delim( ... )delim"
          std::size_t paren = content.find('(', i + 2);
          if (paren != std::string::npos) {
            raw_delim = ")" + content.substr(i + 2, paren - (i + 2)) + "\"";
            state = State::kRawString;
            for (std::size_t k = i; k <= paren; ++k) {
              out += content[k] == '\n' ? '\n' : ' ';
            }
            i = paren;
          } else {
            out += c;
          }
        } else if (c == '"') {
          state = State::kString;
          out += ' ';
        } else if (c == '\'' && i > 0 && !is_word(content[i - 1])) {
          state = State::kChar;
          out += ' ';
        } else {
          out += c;
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          state = State::kCode;
          out += '\n';
        } else {
          out += ' ';
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          out += "  ";
          ++i;
        } else {
          out += c == '\n' ? '\n' : ' ';
        }
        break;
      case State::kString:
        if (c == '\\') {
          out += "  ";
          ++i;
          if (next == '\n') out.back() = '\n';
        } else if (c == '"') {
          state = State::kCode;
          out += ' ';
        } else {
          out += c == '\n' ? '\n' : ' ';
        }
        break;
      case State::kChar:
        if (c == '\\') {
          out += "  ";
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
          out += ' ';
        } else {
          out += ' ';
        }
        break;
      case State::kRawString:
        if (content.compare(i, raw_delim.size(), raw_delim) == 0) {
          for (std::size_t k = 0; k < raw_delim.size(); ++k) out += ' ';
          i += raw_delim.size() - 1;
          state = State::kCode;
        } else {
          out += c == '\n' ? '\n' : ' ';
        }
        break;
    }
  }
  return out;
}

namespace {

// Build files (cmake, sh) only have '#' line comments — but a '#' directive
// line may itself carry a rit-lint allow, which is parsed from the raw
// content, so stripping to spaces here is safe.
std::string strip_hash_comments(const std::string& content) {
  std::string out;
  out.reserve(content.size());
  bool in_comment = false;
  for (char c : content) {
    if (c == '\n') {
      in_comment = false;
      out += '\n';
    } else if (c == '#') {
      in_comment = true;
      out += ' ';
    } else {
      out += in_comment ? ' ' : c;
    }
  }
  return out;
}

std::vector<std::string> split_lines(const std::string& s) {
  std::vector<std::string> lines;
  std::string cur;
  for (char c : s) {
    if (c == '\n') {
      lines.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  lines.push_back(cur);
  return lines;
}

// Collapses runs of whitespace so multi-space tokens ("long double")
// match regardless of alignment.
std::string normalize_ws(const std::string& line) {
  std::string out;
  out.reserve(line.size());
  bool prev_space = false;
  for (char c : line) {
    const bool space = c == ' ' || c == '\t';
    if (space) {
      if (!prev_space) out += ' ';
    } else {
      out += c;
    }
    prev_space = space;
  }
  return out;
}

bool token_matches_at(const std::string& line, std::size_t pos,
                      const std::string& token) {
  if (line.compare(pos, token.size(), token) != 0) return false;
  if (is_word(token.front()) && pos > 0 && is_word(line[pos - 1])) {
    return false;
  }
  const std::size_t end = pos + token.size();
  if (is_word(token.back()) && end < line.size() && is_word(line[end])) {
    return false;
  }
  return true;
}

bool line_has_token(const std::string& line, const std::string& token) {
  for (std::size_t pos = line.find(token); pos != std::string::npos;
       pos = line.find(token, pos + 1)) {
    if (token_matches_at(line, pos, token)) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Allowlist directives (parsed from RAW content, before stripping)
// ---------------------------------------------------------------------------

struct AllowSet {
  std::set<std::string> file_rules;                     // allow-file(...)
  std::map<std::size_t, std::set<std::string>> lines;   // line -> rules
  bool allows(const std::string& rule, std::size_t line) const {
    if (file_rules.count(rule) != 0 || file_rules.count("*") != 0) {
      return true;
    }
    // A directive covers its own line and the line after it, so a
    // standalone "// rit-lint: allow(x)" comment shields the next line.
    for (std::size_t l = line > 1 ? line - 1 : line; l <= line; ++l) {
      auto it = lines.find(l);
      if (it != lines.end() &&
          (it->second.count(rule) != 0 || it->second.count("*") != 0)) {
        return true;
      }
    }
    return false;
  }
};

void parse_rule_list(const std::string& text, std::set<std::string>* out) {
  std::string cur;
  for (char c : text) {
    if (c == ',' || c == ' ' || c == '\t') {
      if (!cur.empty()) out->insert(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) out->insert(cur);
}

AllowSet parse_allows(const std::vector<std::string>& raw_lines) {
  AllowSet allows;
  for (std::size_t i = 0; i < raw_lines.size(); ++i) {
    const std::string& line = raw_lines[i];
    const std::size_t tag = line.find("rit-lint:");
    if (tag == std::string::npos) continue;
    const std::string rest = line.substr(tag + 9);
    for (const auto& [kw, file_scope] :
         {std::pair<const char*, bool>{"allow-file(", true},
          std::pair<const char*, bool>{"allow(", false}}) {
      std::size_t at = rest.find(kw);
      if (at == std::string::npos) continue;
      at += std::string(kw).size();
      const std::size_t close = rest.find(')', at);
      if (close == std::string::npos) continue;
      const std::string list = rest.substr(at, close - at);
      if (file_scope) {
        parse_rule_list(list, &allows.file_rules);
      } else {
        parse_rule_list(list, &allows.lines[i + 1]);
      }
    }
  }
  return allows;
}

// ---------------------------------------------------------------------------
// Per-file preprocessed view
// ---------------------------------------------------------------------------

FileClass classify(const std::string& path) {
  auto ends_with = [&](const char* suf) {
    const std::string s(suf);
    return path.size() >= s.size() &&
           path.compare(path.size() - s.size(), s.size(), s) == 0;
  };
  if (ends_with("CMakeLists.txt") || ends_with(".cmake") ||
      ends_with(".sh")) {
    return FileClass::kBuild;
  }
  return FileClass::kCpp;
}

struct Prepped {
  const SourceFile* src{nullptr};
  FileClass file_class{FileClass::kCpp};
  std::vector<std::string> lines;  // stripped + whitespace-normalized
  AllowSet allows;
  bool result_path{false};
};

const char* const kResultPathHints[] = {"report", "csv",    "json",
                                        "_io",    "export", "render",
                                        "statement", "svg", "table"};

Prepped prep(const SourceFile& f) {
  Prepped p;
  p.src = &f;
  p.file_class = classify(f.path);
  p.allows = parse_allows(split_lines(f.content));
  const std::string stripped = p.file_class == FileClass::kBuild
                                   ? strip_hash_comments(f.content)
                                   : strip_comments_and_strings(f.content);
  for (const std::string& line : split_lines(stripped)) {
    p.lines.push_back(normalize_ws(line));
  }
  for (const char* hint : kResultPathHints) {
    if (f.path.find(hint) != std::string::npos) p.result_path = true;
  }
  if (!p.result_path) {
    for (const std::string& line : p.lines) {
      if (line_has_token(line, "std::ostream") ||
          line_has_token(line, "std::ofstream")) {
        p.result_path = true;
        break;
      }
    }
  }
  return p;
}

bool path_excluded(const std::string& path,
                   const std::vector<const char*>& excludes) {
  for (const char* sub : excludes) {
    if (path.find(sub) != std::string::npos) return true;
  }
  return false;
}

void emit(const Prepped& p, std::size_t line_no, const std::string& rule,
          const std::string& message, std::vector<Finding>* out) {
  if (p.allows.allows(rule, line_no)) return;
  out->push_back(Finding{p.src->path, line_no, rule, message});
}

// ---------------------------------------------------------------------------
// Token + regex rules
// ---------------------------------------------------------------------------

void run_token_rules(const Prepped& p, std::vector<Finding>* out) {
  for (const TokenRule& rule : token_rules()) {
    if (rule.file_class != p.file_class) continue;
    if (rule.result_path_only && !p.result_path) continue;
    if (path_excluded(p.src->path, rule.path_excludes)) continue;
    if (!rule.path_includes.empty() &&
        !path_excluded(p.src->path, rule.path_includes)) {
      continue;
    }
    std::vector<std::regex> regexes;
    regexes.reserve(rule.regexes.size());
    for (const char* r : rule.regexes) regexes.emplace_back(r);
    for (std::size_t i = 0; i < p.lines.size(); ++i) {
      const std::string& line = p.lines[i];
      bool hit = false;
      std::string what;
      for (const char* token : rule.tokens) {
        if (line_has_token(line, token)) {
          hit = true;
          what = token;
          break;
        }
      }
      if (!hit) {
        for (std::size_t r = 0; r < regexes.size(); ++r) {
          std::smatch m;
          if (std::regex_search(line, m, regexes[r])) {
            hit = true;
            what = m.str(0);
            break;
          }
        }
      }
      if (hit) {
        emit(p, i + 1, rule.id, "'" + what + "': " + rule.summary, out);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Structural rule: no-unordered-iteration-in-results
// ---------------------------------------------------------------------------

// Identifiers declared with an unordered container type in `p` (handles
// nested template args: std::unordered_map<K, std::vector<V>> name).
std::set<std::string> unordered_idents(const Prepped& p) {
  std::set<std::string> idents;
  static const char* const kTypes[] = {
      "unordered_map", "unordered_set", "unordered_multimap",
      "unordered_multiset"};
  for (const std::string& line : p.lines) {
    for (const char* type : kTypes) {
      for (std::size_t pos = line.find(type); pos != std::string::npos;
           pos = line.find(type, pos + 1)) {
        if (!token_matches_at(line, pos, type)) continue;
        std::size_t i = pos + std::string(type).size();
        while (i < line.size() && line[i] == ' ') ++i;
        if (i >= line.size() || line[i] != '<') continue;
        int depth = 0;
        for (; i < line.size(); ++i) {
          if (line[i] == '<') ++depth;
          if (line[i] == '>' && --depth == 0) break;
        }
        if (i >= line.size()) continue;  // declaration spans lines; punt
        ++i;
        while (i < line.size() &&
               (line[i] == ' ' || line[i] == '&' || line[i] == '*')) {
          ++i;
        }
        std::string name;
        while (i < line.size() && is_word(line[i])) name += line[i++];
        if (!name.empty() &&
            std::isdigit(static_cast<unsigned char>(name[0])) == 0) {
          idents.insert(name);
        }
      }
    }
  }
  return idents;
}

// True when `line` range-iterates or begin()-iterates `ident`.
bool iterates(const std::string& line, const std::string& ident) {
  // for (... : ident)
  if (line.find("for") != std::string::npos) {
    for (std::size_t pos = line.find(ident); pos != std::string::npos;
         pos = line.find(ident, pos + 1)) {
      if (!token_matches_at(line, pos, ident)) continue;
      std::size_t before = pos;
      while (before > 0 && line[before - 1] == ' ') --before;
      std::size_t after = pos + ident.size();
      while (after < line.size() && line[after] == ' ') ++after;
      if (before > 0 && line[before - 1] == ':' &&
          (before < 2 || line[before - 2] != ':') && after < line.size() &&
          line[after] == ')') {
        return true;
      }
    }
  }
  // ident.begin() / ident.cbegin() / ident.rbegin()
  for (const char* b : {".begin(", ".cbegin(", ".rbegin("}) {
    const std::string probe = ident + b;
    if (line_has_token(line, probe)) return true;
  }
  return false;
}

// A .cpp sees declarations from its same-stem header (Ledger's balances_
// lives in ledger.h; the hash-order iteration lived in ledger.cpp).
std::string sibling_header(const std::string& path) {
  const std::size_t dot = path.rfind('.');
  if (dot == std::string::npos) return {};
  const std::string ext = path.substr(dot);
  if (ext != ".cpp" && ext != ".cc" && ext != ".cxx") return {};
  return path.substr(0, dot) + ".h";
}

void run_unordered_iteration_rule(
    const Prepped& p, const std::map<std::string, const Prepped*>& by_path,
    std::vector<Finding>* out) {
  static const char* kId = "no-unordered-iteration-in-results";
  if (p.file_class != FileClass::kCpp || !p.result_path) return;
  std::set<std::string> idents = unordered_idents(p);
  const std::string hdr = sibling_header(p.src->path);
  if (!hdr.empty()) {
    auto it = by_path.find(hdr);
    if (it != by_path.end()) {
      std::set<std::string> inherited = unordered_idents(*it->second);
      idents.insert(inherited.begin(), inherited.end());
    }
  }
  if (idents.empty()) return;
  for (std::size_t i = 0; i < p.lines.size(); ++i) {
    for (const std::string& ident : idents) {
      if (iterates(p.lines[i], ident)) {
        emit(p, i + 1, kId,
             "iterating unordered container '" + ident +
                 "' in a result path: hash order differs between runs and "
                 "platforms, so emitted reports / accumulated floats are "
                 "nondeterministic; sort keys first or use std::map at the "
                 "boundary",
             out);
        break;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Structural rule: no-bare-catch-all
// ---------------------------------------------------------------------------

// `catch (...)` erases the failure's identity; a handler that then neither
// rethrows nor visibly records what it caught turns every crash into silent
// data loss (the failure-containment bug class: a faulted trial that just
// disappears from the aggregate). Evidence of handling is lexical: the
// handler body mentions rethrow/record/ledger/fault/log/abort/error/fail/
// note. Anything quieter needs an explicit `// rit-lint: allow(...)` with
// its justification.
void run_bare_catch_all_rule(const Prepped& p, std::vector<Finding>* out) {
  static const char* kId = "no-bare-catch-all";
  if (p.file_class != FileClass::kCpp) return;
  std::string joined;
  for (const std::string& line : p.lines) {
    joined += line;
    joined += '\n';
  }
  const auto skip_blank = [&joined](std::size_t i) {
    while (i < joined.size() && (joined[i] == ' ' || joined[i] == '\n')) ++i;
    return i;
  };
  std::size_t line_no = 1;
  std::size_t scanned = 0;  // joined[0, scanned) already counted into line_no
  for (std::size_t at = joined.find("catch"); at != std::string::npos;
       at = joined.find("catch", at + 5)) {
    if (!token_matches_at(joined, at, "catch")) continue;
    std::size_t i = skip_blank(at + 5);
    if (i >= joined.size() || joined[i] != '(') continue;
    i = skip_blank(i + 1);
    if (joined.compare(i, 3, "...") != 0) continue;
    i = skip_blank(i + 3);
    if (i >= joined.size() || joined[i] != ')') continue;
    i = joined.find('{', i);
    if (i == std::string::npos) continue;
    // Brace-match the handler body (comments/strings are already stripped,
    // so every brace is code).
    const std::size_t body_begin = i;
    int depth = 0;
    for (; i < joined.size(); ++i) {
      if (joined[i] == '{') ++depth;
      if (joined[i] == '}' && --depth == 0) break;
    }
    std::string body = joined.substr(body_begin, i - body_begin);
    for (char& c : body) c = static_cast<char>(std::tolower(
        static_cast<unsigned char>(c)));
    static const char* const kEvidence[] = {"throw", "record", "ledger",
                                            "fault", "log",    "abort",
                                            "error", "fail",   "note"};
    bool handled = false;
    for (const char* ev : kEvidence) {
      if (body.find(ev) != std::string::npos) {
        handled = true;
        break;
      }
    }
    if (handled) continue;
    line_no += static_cast<std::size_t>(
        std::count(joined.begin() + static_cast<std::ptrdiff_t>(scanned),
                   joined.begin() + static_cast<std::ptrdiff_t>(at), '\n'));
    scanned = at;
    emit(p, line_no, kId,
         "'catch (...)' swallows the exception without rethrowing or "
         "recording it; contain faults visibly (rethrow, or record into a "
         "ledger/log) or annotate the intent with rit-lint: allow",
         out);
  }
}

// ---------------------------------------------------------------------------
// Structural rule: merge-coverage-guard
// ---------------------------------------------------------------------------

// A self-merge `void merge(const T&)` (incl. out-of-line `void T::merge`)
// must be paired, somewhere in the tree, with a field-coverage guard:
//   static_assert(sizeof(T) == ...)
// Without it, adding a field to T silently drops it from aggregation —
// the exact bug class AggregateMetrics hit before PR 2.
struct MergeDef {
  const Prepped* file;
  std::size_t line;
  std::string type;
};

void collect_merge_info(const Prepped& p, std::vector<MergeDef>* defs,
                        std::set<std::string>* guarded) {
  if (p.file_class != FileClass::kCpp) return;
  static const std::regex kMergeRe(
      R"(\bvoid\s+(?:(\w+)\s*::\s*)?merge\s*\(\s*const\s+(\w+)\s*&)");
  static const std::regex kSizeofRe(R"(sizeof\s*\(\s*(\w+)\s*\))");
  for (std::size_t i = 0; i < p.lines.size(); ++i) {
    std::smatch m;
    if (std::regex_search(p.lines[i], m, kMergeRe)) {
      // Only self-merges: merge(const T&) inside T, or T::merge(const T&).
      // Cross-type folds (e.g. Stat::merge_in(const OnlineStats&)) are a
      // different shape and carry no field-coverage obligation here.
      if (!m[1].matched || m[1].str() == m[2].str()) {
        defs->push_back(MergeDef{&p, i + 1, m[2].str()});
      }
    }
  }
  // static_assert(sizeof(T) ...) may wrap across lines; search a window
  // after each static_assert in the line-joined content.
  std::string joined;
  for (const std::string& line : p.lines) {
    joined += line;
    joined += '\n';
  }
  for (std::size_t at = joined.find("static_assert");
       at != std::string::npos; at = joined.find("static_assert", at + 1)) {
    const std::string window = joined.substr(at, 300);
    auto begin = std::sregex_iterator(window.begin(), window.end(), kSizeofRe);
    for (auto it = begin; it != std::sregex_iterator(); ++it) {
      guarded->insert((*it)[1].str());
    }
  }
}

}  // namespace

std::vector<RuleInfo> rule_infos() {
  std::vector<RuleInfo> infos;
  for (const TokenRule& r : token_rules()) {
    infos.push_back(RuleInfo{r.id, r.summary});
  }
  infos.push_back(RuleInfo{
      "no-unordered-iteration-in-results",
      "iterating std::unordered_map/set while writing reports/CSV/JSON "
      "(or summing into reported floats) leaks hash order into results; "
      "sort keys first or use std::map at the boundary"});
  infos.push_back(RuleInfo{
      "no-bare-catch-all",
      "a `catch (...)` handler that neither rethrows nor records what it "
      "caught (ledger/log/abort) silently swallows faults; contain them "
      "visibly or annotate with rit-lint: allow"});
  infos.push_back(RuleInfo{
      "merge-coverage-guard",
      "a struct with a self-merge `void merge(const T&)` must carry a "
      "static_assert(sizeof(T) == ...) field-coverage guard so a new "
      "field cannot be silently dropped from aggregation"});
  return infos;
}

std::vector<Finding> scan(const std::vector<SourceFile>& files) {
  std::vector<Prepped> prepped;
  prepped.reserve(files.size());
  for (const SourceFile& f : files) prepped.push_back(prep(f));

  std::map<std::string, const Prepped*> by_path;
  for (const Prepped& p : prepped) by_path[p.src->path] = &p;

  std::vector<Finding> findings;
  std::vector<MergeDef> merge_defs;
  std::set<std::string> guarded_types;
  for (const Prepped& p : prepped) {
    run_token_rules(p, &findings);
    run_unordered_iteration_rule(p, by_path, &findings);
    run_bare_catch_all_rule(p, &findings);
    collect_merge_info(p, &merge_defs, &guarded_types);
  }
  for (const MergeDef& def : merge_defs) {
    if (guarded_types.count(def.type) != 0) continue;
    emit(*def.file, def.line, "merge-coverage-guard",
         "'" + def.type + "::merge' has no static_assert(sizeof(" +
             def.type +
             ") == ...) coverage guard; add one next to the merge "
             "definition so new fields cannot be dropped from aggregation",
         &findings);
  }

  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule) <
                     std::tie(b.file, b.line, b.rule);
            });
  findings.erase(std::unique(findings.begin(), findings.end(),
                             [](const Finding& a, const Finding& b) {
                               return a.file == b.file && a.line == b.line &&
                                      a.rule == b.rule;
                             }),
                 findings.end());
  return findings;
}

std::vector<Finding> scan_file(const SourceFile& file) {
  return scan(std::vector<SourceFile>{file});
}

std::vector<SourceFile> collect_tree(const std::string& root) {
  namespace fs = std::filesystem;
  std::vector<SourceFile> files;
  const fs::path base(root);

  auto want = [](const std::string& rel) {
    if (rel.find("tests/golden") != std::string::npos) return false;
    if (rel.find("tests/lint_fixtures") != std::string::npos) return false;
    auto ends_with = [&](const char* suf) {
      const std::string s(suf);
      return rel.size() >= s.size() &&
             rel.compare(rel.size() - s.size(), s.size(), s) == 0;
    };
    return ends_with(".h") || ends_with(".hpp") || ends_with(".cpp") ||
           ends_with(".cc") || ends_with(".cxx") ||
           ends_with("CMakeLists.txt") || ends_with(".cmake") ||
           ends_with(".sh");
  };

  auto add = [&](const fs::path& p) {
    std::error_code ec;
    const std::string rel = fs::relative(p, base, ec).generic_string();
    if (ec || !want(rel)) return;
    std::ifstream in(p, std::ios::binary);
    if (!in.good()) return;
    std::ostringstream ss;
    ss << in.rdbuf();
    files.push_back(SourceFile{rel, ss.str()});
  };

  for (const char* dir : {"src", "bench", "tests", "tools", "examples",
                          "configs", "cmake"}) {
    const fs::path sub = base / dir;
    std::error_code ec;
    if (!fs::is_directory(sub, ec)) continue;
    for (fs::recursive_directory_iterator it(sub, ec), end; it != end;
         it.increment(ec)) {
      if (ec) break;
      if (it->is_regular_file(ec)) add(it->path());
    }
  }
  const fs::path top_cmake = base / "CMakeLists.txt";
  std::error_code ec;
  if (fs::is_regular_file(top_cmake, ec)) add(top_cmake);

  std::sort(files.begin(), files.end(),
            [](const SourceFile& a, const SourceFile& b) {
              return a.path < b.path;
            });
  return files;
}

}  // namespace rit::lint
