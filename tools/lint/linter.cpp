// The rule layer of rit_lint: the declarative token-rule table, the
// structural rules, and scan() orchestration. Lexical machinery lives in
// scanner.cpp; the include-graph rules live in include_graph.cpp; output
// rendering and baselines live in output.cpp / baseline.cpp.
#include "linter.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <regex>
#include <set>
#include <sstream>

#include "include_graph.h"
#include "scanner.h"

namespace rit::lint {
namespace {

using internal::FileClass;
using internal::line_has_token;
using internal::Prepped;
using internal::token_matches_at;

// ---------------------------------------------------------------------------
// Rule table. Token rules are pure data; the structural rules
// (no-unordered-iteration-in-results, no-bare-catch-all,
// merge-coverage-guard, no-rng-in-parallel-region) and the include-graph
// rules (layer-violation, include-cycle, unused-include) are engine checks
// registered at the bottom of rule_infos().
// ---------------------------------------------------------------------------

struct TokenRule {
  const char* id;
  const char* summary;
  const char* rationale;
  FileClass file_class;
  // Word-bounded literal tokens: a match only counts when the characters
  // adjacent to word-character token edges are non-word.
  std::vector<const char*> tokens;
  // ECMAScript regexes for patterns a literal token cannot express.
  std::vector<const char*> regexes;
  // Repo-relative path substrings exempt from this rule.
  std::vector<const char*> path_excludes;
  // Restrict to "result path" files: path names a report/serialization
  // boundary, or the file mentions std::ostream / std::ofstream.
  bool result_path_only{false};
  // When non-empty, the rule only applies to files whose repo-relative
  // path contains at least one of these substrings. The default-initializer
  // keeps the many rules that don't scope themselves warning-clean under
  // -Wmissing-field-initializers.
  std::vector<const char*> path_includes{};
};

// The numeric-IO boundary files: everything that writes or parses numbers
// across a file boundary. Shared by no-locale-numeric (bans the
// locale-reading C formatting family) and boundary-io-num-io (requires
// the remaining formatting to route through common/num_io.h).
const std::vector<const char*>& numeric_io_paths() {
  static const std::vector<const char*> kPaths = {
      "result_io",  "config_io",   "checkpoint", "population_io",
      "cli/args",   "obs/history", "format_util", "num_io",
      "bench_diff", "bench_support", "testkit/fuzz_case", "fuzz_runner"};
  return kPaths;
}

const std::vector<TokenRule>& token_rules() {
  static const std::vector<TokenRule> kRules = {
      {"no-std-rand",
       "libc/std PRNGs (std::rand, rand, srand, *rand48) are seeded "
       "globally and unspecified across platforms; use rng::Rng",
       "The libc PRNG family keeps hidden global state and its output "
       "sequence is implementation-defined, so a trial that touches it is "
       "neither replayable from a seed nor portable across platforms. "
       "Every draw must come from an explicitly seeded rng::Rng stream.",
       FileClass::kCpp,
       {"std::rand", "rand(", "srand", "rand_r", "drand48", "lrand48",
        "mrand48", "random("},
       {},
       {}},
      {"no-random-device",
       "std::random_device is nondeterministic by design; only src/rng/ "
       "may touch entropy sources",
       "std::random_device reads an entropy source, which is "
       "nondeterministic by design — a single call anywhere in a trial "
       "path breaks seed replay. Only the rng subsystem may ever touch "
       "entropy, and only behind an explicit opt-in.",
       FileClass::kCpp,
       {"random_device"},
       {},
       {"src/rng/"}},
      {"no-std-distribution",
       "<random> distributions leave the mapping from engine output to "
       "values unspecified — two standard libraries produce different "
       "streams from the same seed; use the explicit samplers in rng::Rng",
       "The C++ standard specifies distribution *statistics*, not the "
       "algorithm: libstdc++ and libc++ produce different values from the "
       "same engine and seed. The explicit samplers on rng::Rng are "
       "written out in full precisely so every toolchain draws the same "
       "stream.",
       FileClass::kCpp,
       {},
       {R"(\b\w+_distribution\b)"},
       {}},
      {"no-std-engine",
       "std engines (mt19937, minstd_rand, ...) invite std::shuffle / "
       "distribution use and duplicate the repo-wide rng::Rng stream",
       "A second engine family fragments the repo-wide seeded-stream "
       "discipline (one xoshiro256 stream per trial, split via "
       "splitmix64) and invites std::shuffle / distribution use, both of "
       "which are implementation-defined. Everything draws from rng::Rng.",
       FileClass::kCpp,
       {"mt19937", "mt19937_64", "minstd_rand", "minstd_rand0",
        "default_random_engine", "ranlux24", "ranlux48", "knuth_b",
        "mersenne_twister_engine", "linear_congruential_engine",
        "subtract_with_carry_engine"},
       {},
       {"src/rng/"}},
      {"no-std-shuffle",
       "std::shuffle's permutation algorithm is implementation-defined "
       "for a given engine; use rng-based shuffling "
       "(rng::sample_without_replacement_into / Fisher-Yates over Rng)",
       "Which permutation std::shuffle produces for a given engine state "
       "is implementation-defined, so the same seed yields different "
       "orders on different standard libraries. Use Fisher-Yates over "
       "rng::Rng (rng::sample_without_replacement_into), which pins the "
       "algorithm.",
       FileClass::kCpp,
       {"std::shuffle", "random_shuffle"},
       {},
       {}},
      {"no-wallclock-in-results",
       "wall-clock reads (system_clock, std::time, localtime, ...) in a "
       "result path make output depend on when it ran; results must be a "
       "function of (config, seed) only — use stats::Timer / steady_clock "
       "for durations",
       "A wall-clock read in a result path makes emitted bytes depend on "
       "when the run happened, so two runs of the same (config, seed) "
       "stop being comparable. Durations belong to stats::Timer "
       "(steady_clock); timestamps belong only to logs, which are not "
       "results.",
       FileClass::kCpp,
       {"system_clock", "std::time", "time(nullptr)", "time(NULL)",
        "gettimeofday", "localtime", "gmtime", "strftime", "asctime",
        "ctime("},
       {},
       {},
       /*result_path_only=*/true},
      {"no-wallclock-in-history",
       "wall-clock reads in the perf-history ledger path would timestamp "
       "records, breaking the contract that re-running the same binary "
       "yields byte-comparable records; identify records by git SHA + env "
       "fingerprint + file position instead",
       "The perf ledger's regression gate byte-compares records across "
       "runs; a timestamp would make every record unique and the diff "
       "meaningless. Records are identified by git SHA, environment "
       "fingerprint and file position instead of time.",
       FileClass::kCpp,
       {"system_clock", "std::time", "time(nullptr)", "time(NULL)",
        "gettimeofday", "localtime", "gmtime", "strftime", "asctime",
        "ctime("},
       {},
       {},
       /*result_path_only=*/false,
       /*path_includes=*/{"history"}},
      {"no-locale-numeric",
       "the strtod/snprintf family reads the global locale's radix "
       "character, so a result written under de_DE prints \"0,5\" and the "
       "read-back under C rejects it; numbers that cross a file boundary "
       "must go through rit::parse_double / parse_u64 / format_* "
       "(common/num_io.h), which are locale-independent and reject the "
       "strtoull sign/whitespace/overflow laxness",
       "strtod, snprintf and friends read the process-global locale's "
       "radix character: a checkpoint written under de_DE prints \"0,5\" "
       "and fails read-back under C. strtoull additionally wraps \"-1\" "
       "to 2^64-1 silently. The from_chars/to_chars wrappers in "
       "common/num_io.h are locale-independent, bit-exact and strict.",
       FileClass::kCpp,
       {"strtod", "strtof", "strtold", "strtol", "strtoll", "strtoul",
        "strtoull", "strtoimax", "strtoumax", "atof", "atoi", "atol",
        "atoll", "stod", "stof", "stold", "stoi", "stol", "stoll", "stoul",
        "stoull", "sscanf", "scanf", "sprintf", "snprintf", "vsnprintf",
        "vsprintf"},
       {},
       {},
       /*result_path_only=*/false,
       /*path_includes=*/{}},  // bound to numeric_io_paths() below
      {"boundary-io-num-io",
       "float/number formatting in the result/config/checkpoint/history "
       "IO paths must route through common/num_io.h (format_double_*, "
       "format_u64, parse_*) — std::to_string(double) and stream float "
       "manipulators are locale- or precision-lossy, and raw "
       "from_chars/to_chars calls belong centralized in num_io",
       "Generalizes no-locale-numeric from 'do not call the C locale "
       "family' to 'every number that crosses a file boundary goes "
       "through common/num_io.h'. std::to_string(double) formats via the "
       "global locale and truncates to 6 digits; stream precision "
       "manipulators scatter formatting policy across call sites; and a "
       "raw std::from_chars/to_chars call, while locale-safe, duplicates "
       "the one place (num_io) whose round-trip behavior is pinned by "
       "tests. Use format_double_g17 / format_double_shortest / "
       "format_hex_double / format_u64 / parse_double / parse_u64.",
       FileClass::kCpp,
       {"std::to_string", "from_chars", "to_chars", "setprecision",
        "std::hexfloat", "std::scientific", "std::defaultfloat",
        "std::fixed", "precision("},
       {},
       {"common/num_io"},
       /*result_path_only=*/false,
       /*path_includes=*/{}},  // bound to numeric_io_paths() below
      {"no-fast-math",
       "-ffast-math / -Ofast license reassociation and FTZ, so the same "
       "seed stops reproducing the same floats across compilers",
       "-ffast-math and friends license the compiler to reassociate "
       "float expressions and flush denormals, so the same seed stops "
       "reproducing the same payment totals across compilers and "
       "optimization levels. The flags are banned from every build file.",
       FileClass::kBuild,
       {"-ffast-math", "-funsafe-math-optimizations", "-Ofast",
        "/fp:fast", "-ffp-contract=fast"},
       {},
       {}},
      {"no-raw-process-api",
       "raw process primitives (fork, execve, kill, waitpid, setrlimit, "
       "prctl, ...) outside src/platform/ scatter lifecycle management the "
       "supervisor owns; route process isolation through "
       "platform/supervisor.h",
       "Forking, signaling, reaping and rlimiting are full of sharp edges "
       "this repo has already paid for once: PDEATHSIG races, pipe "
       "deadlocks, zombie leaks, fork-while-threaded undefined behavior. "
       "The supervisor (src/platform/) centralizes every one of those "
       "decisions behind run_trials_supervised; a second call site would "
       "re-litigate them unreviewed. std::raise is deliberately not "
       "listed: sim/chaos.cpp raises signals in-process by design.",
       FileClass::kCpp,
       {"fork(", "vfork", "execve", "execv(", "execvp", "execl(", "execlp",
        "execle", "posix_spawn", "waitpid", "wait4(", "waitid", "kill(",
        "killpg", "setrlimit", "getrlimit", "prlimit", "ptrace", "prctl"},
       {},
       {"src/platform/"}},
      {"no-long-double",
       "long double is 80-bit on x86, 128-bit on aarch64, 64-bit on "
       "MSVC — metrics computed with it are not portable; use double",
       "long double is 80-bit x87 on x86 Linux, 128-bit on aarch64 and "
       "plain double on MSVC, so any metric computed with it differs "
       "across platforms. All metrics are double by policy "
       "(-Wdouble-promotion guards the other direction).",
       FileClass::kCpp,
       {"long double"},
       {},
       {}},
      {"testkit-only-injection",
       "the RIT_TESTKIT_INJECT_BUG / RIT_BUG_ENABLED planted-bug gates "
       "belong only to the declared injection seam (common/bug_inject.h "
       "plus the explicitly allow-listed core sites); a gate anywhere else "
       "could ship a deliberately wrong branch in a production build",
       "The fuzz harness self-tests by recompiling two core TUs with "
       "-DRIT_TESTKIT_INJECT_BUG=<id>, which flips a deliberately wrong "
       "branch. That is safe only because the seam is tiny and auditable: "
       "the macro definitions live in common/bug_inject.h and the gates in "
       "the two allow-listed core files, where the default expansion is "
       "the correct branch. A gate added anywhere else would widen the "
       "surface where a miswired build flag ships wrong mechanism "
       "behavior, unreviewed.",
       FileClass::kCpp,
       {"RIT_TESTKIT_INJECT_BUG", "RIT_BUG_ENABLED"},
       {},
       {"common/bug_inject"}},
  };
  return kRules;
}

// Effective path_includes for a rule: the two numeric-IO rules share the
// boundary list without duplicating it in the table.
const std::vector<const char*>& effective_path_includes(
    const TokenRule& rule) {
  const std::string id = rule.id;
  if (id == "no-locale-numeric" || id == "boundary-io-num-io") {
    return numeric_io_paths();
  }
  return rule.path_includes;
}

// ---------------------------------------------------------------------------
// Token + regex rules
// ---------------------------------------------------------------------------

void run_token_rules(const Prepped& p, std::vector<Finding>* out) {
  for (const TokenRule& rule : token_rules()) {
    if (rule.file_class != p.file_class) continue;
    if (rule.result_path_only && !p.result_path) continue;
    if (internal::path_contains_any(p.src->path, rule.path_excludes)) {
      continue;
    }
    const std::vector<const char*>& includes = effective_path_includes(rule);
    if (!includes.empty() &&
        !internal::path_contains_any(p.src->path, includes)) {
      continue;
    }
    std::vector<std::regex> regexes;
    regexes.reserve(rule.regexes.size());
    for (const char* r : rule.regexes) regexes.emplace_back(r);
    for (std::size_t i = 0; i < p.lines.size(); ++i) {
      const std::string& line = p.lines[i];
      bool hit = false;
      std::string what;
      for (const char* token : rule.tokens) {
        if (line_has_token(line, token)) {
          hit = true;
          what = token;
          break;
        }
      }
      if (!hit) {
        for (std::size_t r = 0; r < regexes.size(); ++r) {
          std::smatch m;
          if (std::regex_search(line, m, regexes[r])) {
            hit = true;
            what = m.str(0);
            break;
          }
        }
      }
      if (hit) {
        internal::emit(p, i + 1, rule.id, "'" + what + "': " + rule.summary,
                       Severity::kError, out);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Structural rule: no-unordered-iteration-in-results
// ---------------------------------------------------------------------------

// Identifiers declared with an unordered container type in `p` (handles
// nested template args: std::unordered_map<K, std::vector<V>> name).
std::set<std::string> unordered_idents(const Prepped& p) {
  std::set<std::string> idents;
  static const char* const kTypes[] = {
      "unordered_map", "unordered_set", "unordered_multimap",
      "unordered_multiset"};
  for (const std::string& line : p.lines) {
    for (const char* type : kTypes) {
      for (std::size_t pos = line.find(type); pos != std::string::npos;
           pos = line.find(type, pos + 1)) {
        if (!token_matches_at(line, pos, type)) continue;
        std::size_t i = pos + std::string(type).size();
        while (i < line.size() && line[i] == ' ') ++i;
        if (i >= line.size() || line[i] != '<') continue;
        int depth = 0;
        for (; i < line.size(); ++i) {
          if (line[i] == '<') ++depth;
          if (line[i] == '>' && --depth == 0) break;
        }
        if (i >= line.size()) continue;  // declaration spans lines; punt
        ++i;
        while (i < line.size() &&
               (line[i] == ' ' || line[i] == '&' || line[i] == '*')) {
          ++i;
        }
        std::string name;
        while (i < line.size() && internal::is_word(line[i])) {
          name += line[i++];
        }
        if (!name.empty() &&
            std::isdigit(static_cast<unsigned char>(name[0])) == 0) {
          idents.insert(name);
        }
      }
    }
  }
  return idents;
}

// True when `line` range-iterates or begin()-iterates `ident`.
bool iterates(const std::string& line, const std::string& ident) {
  // for (... : ident)
  if (line.find("for") != std::string::npos) {
    for (std::size_t pos = line.find(ident); pos != std::string::npos;
         pos = line.find(ident, pos + 1)) {
      if (!token_matches_at(line, pos, ident)) continue;
      std::size_t before = pos;
      while (before > 0 && line[before - 1] == ' ') --before;
      std::size_t after = pos + ident.size();
      while (after < line.size() && line[after] == ' ') ++after;
      if (before > 0 && line[before - 1] == ':' &&
          (before < 2 || line[before - 2] != ':') && after < line.size() &&
          line[after] == ')') {
        return true;
      }
    }
  }
  // ident.begin() / ident.cbegin() / ident.rbegin()
  for (const char* b : {".begin(", ".cbegin(", ".rbegin("}) {
    const std::string probe = ident + b;
    if (line_has_token(line, probe)) return true;
  }
  return false;
}

// A .cpp sees declarations from its same-stem header (Ledger's balances_
// lives in ledger.h; the hash-order iteration lived in ledger.cpp).
std::string sibling_header(const std::string& path) {
  const std::size_t dot = path.rfind('.');
  if (dot == std::string::npos) return {};
  const std::string ext = path.substr(dot);
  if (ext != ".cpp" && ext != ".cc" && ext != ".cxx") return {};
  return path.substr(0, dot) + ".h";
}

void run_unordered_iteration_rule(
    const Prepped& p, const std::map<std::string, const Prepped*>& by_path,
    std::vector<Finding>* out) {
  static const char* kId = "no-unordered-iteration-in-results";
  if (p.file_class != FileClass::kCpp || !p.result_path) return;
  std::set<std::string> idents = unordered_idents(p);
  const std::string hdr = sibling_header(p.src->path);
  if (!hdr.empty()) {
    auto it = by_path.find(hdr);
    if (it != by_path.end()) {
      std::set<std::string> inherited = unordered_idents(*it->second);
      idents.insert(inherited.begin(), inherited.end());
    }
  }
  if (idents.empty()) return;
  for (std::size_t i = 0; i < p.lines.size(); ++i) {
    for (const std::string& ident : idents) {
      if (iterates(p.lines[i], ident)) {
        internal::emit(
            p, i + 1, kId,
            "iterating unordered container '" + ident +
                "' in a result path: hash order differs between runs and "
                "platforms, so emitted reports / accumulated floats are "
                "nondeterministic; sort keys first or use std::map at the "
                "boundary",
            Severity::kError, out);
        break;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Structural rule: no-bare-catch-all
// ---------------------------------------------------------------------------

// `catch (...)` erases the failure's identity; a handler that then neither
// rethrows nor visibly records what it caught turns every crash into silent
// data loss (the failure-containment bug class: a faulted trial that just
// disappears from the aggregate). Evidence of handling is lexical: the
// handler body mentions rethrow/record/ledger/fault/log/abort/error/fail/
// note. Anything quieter needs an explicit `// rit-lint: allow(...)` with
// its justification.
void run_bare_catch_all_rule(const Prepped& p, std::vector<Finding>* out) {
  static const char* kId = "no-bare-catch-all";
  if (p.file_class != FileClass::kCpp) return;
  std::string joined;
  for (const std::string& line : p.lines) {
    joined += line;
    joined += '\n';
  }
  const auto skip_blank = [&joined](std::size_t i) {
    while (i < joined.size() && (joined[i] == ' ' || joined[i] == '\n')) ++i;
    return i;
  };
  std::size_t line_no = 1;
  std::size_t scanned = 0;  // joined[0, scanned) already counted into line_no
  for (std::size_t at = joined.find("catch"); at != std::string::npos;
       at = joined.find("catch", at + 5)) {
    if (!token_matches_at(joined, at, "catch")) continue;
    std::size_t i = skip_blank(at + 5);
    if (i >= joined.size() || joined[i] != '(') continue;
    i = skip_blank(i + 1);
    if (joined.compare(i, 3, "...") != 0) continue;
    i = skip_blank(i + 3);
    if (i >= joined.size() || joined[i] != ')') continue;
    i = joined.find('{', i);
    if (i == std::string::npos) continue;
    // Brace-match the handler body (comments/strings are already stripped,
    // so every brace is code).
    const std::size_t body_begin = i;
    int depth = 0;
    for (; i < joined.size(); ++i) {
      if (joined[i] == '{') ++depth;
      if (joined[i] == '}' && --depth == 0) break;
    }
    std::string body = joined.substr(body_begin, i - body_begin);
    for (char& c : body) c = static_cast<char>(std::tolower(
        static_cast<unsigned char>(c)));
    static const char* const kEvidence[] = {"throw", "record", "ledger",
                                            "fault", "log",    "abort",
                                            "error", "fail",   "note"};
    bool handled = false;
    for (const char* ev : kEvidence) {
      if (body.find(ev) != std::string::npos) {
        handled = true;
        break;
      }
    }
    if (handled) continue;
    line_no += static_cast<std::size_t>(
        std::count(joined.begin() + static_cast<std::ptrdiff_t>(scanned),
                   joined.begin() + static_cast<std::ptrdiff_t>(at), '\n'));
    scanned = at;
    internal::emit(
        p, line_no, kId,
        "'catch (...)' swallows the exception without rethrowing or "
        "recording it; contain faults visibly (rethrow, or record into a "
        "ledger/log) or annotate the intent with rit-lint: allow",
        Severity::kError, out);
  }
}

// ---------------------------------------------------------------------------
// Structural rule: no-rng-in-parallel-region
// ---------------------------------------------------------------------------

// The intra-trial parallel passes (docs/scaling.md) are bit-identical to
// serial only because every Rng draw happens OUTSIDE the
// parallel_for_blocked callbacks: the blocked partition reorders execution
// across workers, so a shared stream drawn inside a callback would consume
// values in a thread-count-dependent order. Lexically: within the argument
// extent of a parallel_for_blocked(...) call, any mention of the Rng type
// or an rng-named object (rng, probe_rng, trial_rng, ...) is flagged.
void run_rng_in_parallel_region_rule(const Prepped& p,
                                     std::vector<Finding>* out) {
  static const char* kId = "no-rng-in-parallel-region";
  if (p.file_class != FileClass::kCpp) return;
  std::string joined;
  std::vector<std::size_t> line_start;  // offset of each line in `joined`
  for (const std::string& line : p.lines) {
    line_start.push_back(joined.size());
    joined += line;
    joined += '\n';
  }
  const auto line_of = [&line_start](std::size_t off) {
    std::size_t lo = 0, hi = line_start.size();
    while (lo + 1 < hi) {
      const std::size_t mid = (lo + hi) / 2;
      (line_start[mid] <= off ? lo : hi) = mid;
    }
    return lo + 1;  // 1-based
  };

  static const std::regex kRngRe(R"(\b\w*[Rr]ng\b)");
  static const std::string kCall = "parallel_for_blocked";
  for (std::size_t at = joined.find(kCall); at != std::string::npos;
       at = joined.find(kCall, at + kCall.size())) {
    if (!token_matches_at(joined, at, kCall)) continue;
    std::size_t i = at + kCall.size();
    while (i < joined.size() && (joined[i] == ' ' || joined[i] == '\n')) ++i;
    if (i >= joined.size() || joined[i] != '(') continue;
    // Paren-match the full argument extent (comments/strings stripped, so
    // every paren is code). This covers the callback body wherever the
    // lambda sits in the argument list.
    const std::size_t args_begin = i;
    int depth = 0;
    for (; i < joined.size(); ++i) {
      if (joined[i] == '(') ++depth;
      if (joined[i] == ')' && --depth == 0) break;
    }
    const std::string extent =
        joined.substr(args_begin, i >= joined.size() ? std::string::npos
                                                     : i - args_begin);
    for (auto it =
             std::sregex_iterator(extent.begin(), extent.end(), kRngRe);
         it != std::sregex_iterator(); ++it) {
      const std::size_t off =
          args_begin + static_cast<std::size_t>(it->position(0));
      internal::emit(
          p, line_of(off), kId,
          "'" + it->str(0) +
              "' inside a parallel_for_blocked callback: the blocked "
              "partition reorders execution across workers, so drawing "
              "from (or capturing) an Rng here consumes the stream in a "
              "thread-count-dependent order and breaks bit-identical "
              "parallelism (docs/scaling.md); draw everything the region "
              "needs before the parallel call",
          Severity::kError, out);
    }
  }
}

// ---------------------------------------------------------------------------
// Structural rule: merge-coverage-guard
// ---------------------------------------------------------------------------

// A self-merge `void merge(const T&)` (incl. out-of-line `void T::merge`)
// must be paired, somewhere in the tree, with a field-coverage guard:
//   static_assert(sizeof(T) == ...)
// Without it, adding a field to T silently drops it from aggregation —
// the exact bug class AggregateMetrics hit before PR 2.
struct MergeDef {
  const Prepped* file;
  std::size_t line;
  std::string type;
};

void collect_merge_info(const Prepped& p, std::vector<MergeDef>* defs,
                        std::set<std::string>* guarded) {
  if (p.file_class != FileClass::kCpp) return;
  static const std::regex kMergeRe(
      R"(\bvoid\s+(?:(\w+)\s*::\s*)?merge\s*\(\s*const\s+(\w+)\s*&)");
  static const std::regex kSizeofRe(R"(sizeof\s*\(\s*(\w+)\s*\))");
  for (std::size_t i = 0; i < p.lines.size(); ++i) {
    std::smatch m;
    if (std::regex_search(p.lines[i], m, kMergeRe)) {
      // Only self-merges: merge(const T&) inside T, or T::merge(const T&).
      // Cross-type folds (e.g. Stat::merge_in(const OnlineStats&)) are a
      // different shape and carry no field-coverage obligation here.
      if (!m[1].matched || m[1].str() == m[2].str()) {
        defs->push_back(MergeDef{&p, i + 1, m[2].str()});
      }
    }
  }
  // static_assert(sizeof(T) ...) may wrap across lines; search a window
  // after each static_assert in the line-joined content.
  std::string joined;
  for (const std::string& line : p.lines) {
    joined += line;
    joined += '\n';
  }
  for (std::size_t at = joined.find("static_assert");
       at != std::string::npos; at = joined.find("static_assert", at + 1)) {
    const std::string window = joined.substr(at, 300);
    auto begin = std::sregex_iterator(window.begin(), window.end(), kSizeofRe);
    for (auto it = begin; it != std::sregex_iterator(); ++it) {
      guarded->insert((*it)[1].str());
    }
  }
}

}  // namespace

std::vector<RuleInfo> rule_infos() {
  std::vector<RuleInfo> infos;
  for (const TokenRule& r : token_rules()) {
    infos.push_back(RuleInfo{r.id, r.summary, r.rationale});
  }
  infos.push_back(RuleInfo{
      "no-unordered-iteration-in-results",
      "iterating std::unordered_map/set while writing reports/CSV/JSON "
      "(or summing into reported floats) leaks hash order into results; "
      "sort keys first or use std::map at the boundary",
      "Hash order differs between runs, platforms and standard-library "
      "versions, so iterating an unordered container while emitting rows "
      "— or while summing floats that get reported — makes results "
      "nondeterministic. The Ledger::balanced() conservation sum was "
      "exactly this bug. Sort keys at the boundary or use std::map."});
  infos.push_back(RuleInfo{
      "no-bare-catch-all",
      "a `catch (...)` handler that neither rethrows nor records what it "
      "caught (ledger/log/abort) silently swallows faults; contain them "
      "visibly or annotate with rit-lint: allow",
      "catch (...) erases the failure's identity; a handler that neither "
      "rethrows nor records turns every crash into silent data loss — a "
      "faulted trial that just disappears from the aggregate. The "
      "fault-tolerant runner catches everything but files each catch in "
      "a FaultLedger; anything quieter needs an annotated justification."});
  infos.push_back(RuleInfo{
      "merge-coverage-guard",
      "a struct with a self-merge `void merge(const T&)` must carry a "
      "static_assert(sizeof(T) == ...) field-coverage guard so a new "
      "field cannot be silently dropped from aggregation",
      "Parallel sweeps combine per-worker accumulators via merge(); a "
      "field added to the struct but not to merge() is silently dropped "
      "from every aggregate — the exact bug AggregateMetrics hit before "
      "PR 2. A static_assert on sizeof(T) next to the merge forces the "
      "author of the new field to revisit the merge."});
  infos.push_back(RuleInfo{
      "no-rng-in-parallel-region",
      "no Rng capture or draw inside a parallel_for_blocked callback — "
      "the blocked partition reorders execution across workers, so RNG "
      "order must stay serial (docs/scaling.md)",
      "The intra-trial parallel passes are bit-identical to serial only "
      "because every Rng draw happens before the parallel region: "
      "parallel_for_blocked partitions work across workers, so a stream "
      "drawn inside the callback would consume values in a "
      "thread-count-dependent order, and the same seed would produce "
      "different results at different --intra-threads. Draw everything "
      "the region needs up front (the Graph constructor keeps its edge "
      "draws serial for exactly this reason)."});
  infos.push_back(RuleInfo{
      "layer-violation",
      "an #include whose target module sits above the includer in the "
      "declared layering DAG (common/rng -> graph/tree -> core/stats -> "
      "sim/obs -> attack/baselines/extensions/platform -> "
      "cli/bench/tools)",
      "The layering DAG keeps the mechanism core free of sim/IO "
      "dependencies: core must stay a pure function of (config, seed) so "
      "the paper's guarantees are auditable in isolation, and lower "
      "tiers must stay reusable without dragging the world in. An "
      "include that reaches *up* the DAG inverts that — fix it by "
      "inverting the dependency or moving the shared code down. Two "
      "declared instrumentation edges (tree -> obs, core -> obs; the obs "
      "macros compile away under RIT_OBS_ENABLED=OFF) are part of the "
      "declared DAG, not violations of it."});
  infos.push_back(RuleInfo{
      "include-cycle",
      "a strongly connected component in the #include graph — headers in "
      "a cycle cannot be compiled stand-alone and their module boundary "
      "is fiction",
      "An #include cycle means no file in it can be understood (or "
      "compiled) without the others: the header self-sufficiency gate "
      "breaks, incremental rebuilds cascade, and the layering between "
      "the files is unenforceable. Break cycles with forward "
      "declarations or by moving the shared type down a layer."});
  infos.push_back(RuleInfo{
      "unused-include",
      "(report-only) IWYU-lite: a .cpp includes a repo header none of "
      "whose exported names appear in the file",
      "Every unnecessary include is a false dependency edge: it widens "
      "rebuilds and quietly erodes the layering the DAG rules enforce. "
      "The heuristic is lexical (does the includer mention any name the "
      "header or its re-exports declare?) and deliberately report-only: "
      "it never gates, it just points at candidates for removal."});
  return infos;
}

std::vector<Finding> scan(const std::vector<SourceFile>& files) {
  std::vector<Prepped> prepped;
  prepped.reserve(files.size());
  for (const SourceFile& f : files) prepped.push_back(internal::prep(f));

  std::map<std::string, const Prepped*> by_path;
  for (const Prepped& p : prepped) by_path[p.src->path] = &p;

  std::vector<Finding> findings;
  std::vector<MergeDef> merge_defs;
  std::set<std::string> guarded_types;
  for (const Prepped& p : prepped) {
    run_token_rules(p, &findings);
    run_unordered_iteration_rule(p, by_path, &findings);
    run_bare_catch_all_rule(p, &findings);
    run_rng_in_parallel_region_rule(p, &findings);
    collect_merge_info(p, &merge_defs, &guarded_types);
  }
  for (const MergeDef& def : merge_defs) {
    if (guarded_types.count(def.type) != 0) continue;
    internal::emit(
        *def.file, def.line, "merge-coverage-guard",
        "'" + def.type + "::merge' has no static_assert(sizeof(" +
            def.type +
            ") == ...) coverage guard; add one next to the merge "
            "definition so new fields cannot be dropped from aggregation",
        Severity::kError, &findings);
  }

  // Architecture rules over the whole scan set.
  internal::run_layering_rule(prepped, &findings);
  const internal::IncludeGraph graph =
      internal::build_include_graph(prepped);
  internal::run_include_cycle_rule(graph, &findings);
  internal::run_unused_include_rule(graph, &findings);

  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule) <
                     std::tie(b.file, b.line, b.rule);
            });
  findings.erase(std::unique(findings.begin(), findings.end(),
                             [](const Finding& a, const Finding& b) {
                               return a.file == b.file && a.line == b.line &&
                                      a.rule == b.rule;
                             }),
                 findings.end());
  return findings;
}

std::vector<Finding> scan_file(const SourceFile& file) {
  return scan(std::vector<SourceFile>{file});
}

std::vector<EscapeRecord> collect_escapes(
    const std::vector<SourceFile>& files) {
  // Only directives naming a real rule (or '*') count: an allow() with an
  // unknown id suppresses nothing, so it is not an escape — this also
  // keeps directive-shaped doc examples ("allow(<rule-id>)") out of the
  // inventory.
  std::set<std::string> known{"*"};
  for (const RuleInfo& info : rule_infos()) known.insert(info.id);
  std::vector<EscapeRecord> records;
  for (const SourceFile& f : files) {
    // Blank string literals but keep comments: a directive in a comment is
    // a real escape; directive-shaped *data* in a string literal (the lint
    // self-tests) is not. Build files have no string/comment ambiguity
    // that matters here — directives ride '#' comments.
    const std::string view =
        internal::classify(f.path) == internal::FileClass::kBuild
            ? f.content
            : internal::strip_strings_keep_comments(f.content);
    const internal::AllowSet allows =
        internal::parse_allows(internal::split_lines(view));
    for (const auto& [line, rules] : allows.lines) {
      for (const std::string& rule : rules) {
        if (known.count(rule) == 0) continue;
        records.push_back(EscapeRecord{f.path, line, rule, false});
      }
    }
    for (const std::string& rule : allows.file_rules) {
      if (known.count(rule) == 0) continue;
      records.push_back(EscapeRecord{f.path, 0, rule, true});
    }
  }
  std::sort(records.begin(), records.end(),
            [](const EscapeRecord& a, const EscapeRecord& b) {
              return std::tie(a.file, a.line, a.rule) <
                     std::tie(b.file, b.line, b.rule);
            });
  return records;
}

std::vector<SourceFile> collect_tree(const std::string& root) {
  namespace fs = std::filesystem;
  std::vector<SourceFile> files;
  const fs::path base(root);

  auto want = [](const std::string& rel) {
    if (rel.find("tests/golden") != std::string::npos) return false;
    if (rel.find("tests/lint_fixtures") != std::string::npos) return false;
    auto ends_with = [&](const char* suf) {
      const std::string s(suf);
      return rel.size() >= s.size() &&
             rel.compare(rel.size() - s.size(), s.size(), s) == 0;
    };
    return ends_with(".h") || ends_with(".hpp") || ends_with(".cpp") ||
           ends_with(".cc") || ends_with(".cxx") ||
           ends_with("CMakeLists.txt") || ends_with(".cmake") ||
           ends_with(".sh");
  };

  auto add = [&](const fs::path& p) {
    std::error_code ec;
    const std::string rel = fs::relative(p, base, ec).generic_string();
    if (ec || !want(rel)) return;
    std::ifstream in(p, std::ios::binary);
    if (!in.good()) return;
    std::ostringstream ss;
    ss << in.rdbuf();
    files.push_back(SourceFile{rel, ss.str()});
  };

  for (const char* dir : {"src", "bench", "tests", "tools", "examples",
                          "configs", "cmake"}) {
    const fs::path sub = base / dir;
    std::error_code ec;
    if (!fs::is_directory(sub, ec)) continue;
    for (fs::recursive_directory_iterator it(sub, ec), end; it != end;
         it.increment(ec)) {
      if (ec) break;
      if (it->is_regular_file(ec)) add(it->path());
    }
  }
  const fs::path top_cmake = base / "CMakeLists.txt";
  std::error_code ec;
  if (fs::is_regular_file(top_cmake, ec)) add(top_cmake);

  std::sort(files.begin(), files.end(),
            [](const SourceFile& a, const SourceFile& b) {
              return a.path < b.path;
            });
  return files;
}

}  // namespace rit::lint
