// ritcs-fuzz: the differential fuzz harness over the full mechanism.
//
// Modes (see docs/testing.md for the workflow):
//
//   ritcs-fuzz --seed=S --iterations=N [--corpus-dir=DIR] [--isolate]
//       Iteration-budgeted fuzz loop: generate/mutate cases, run
//       production vs the naive oracle vs the paper invariants on each,
//       and persist a deterministic corpus (manifest + periodic case
//       snapshots + one repro file per failure) under DIR. The loop is
//       keyed on the iteration budget only — never wall clock — so the
//       same seed yields the same corpus byte for byte on any machine.
//
//   ritcs-fuzz --repro=FILE [--isolate]
//       Replay one committed repro file.
//
//   ritcs-fuzz --repro=FILE --shrink --out=OUT [--max-shrink-checks=K]
//       Minimize a failing repro while preserving its signature class.
//
//   ritcs-fuzz --determinism-check --seed=S --iterations=N --corpus-dir=DIR
//       Run the loop twice (DIR/a, DIR/b) and byte-compare the corpora.
//
// --isolate routes every case check through the process-isolating sweep
// supervisor (platform/supervisor.h): a check that segfaults or wedges is
// reported as the stable signature class "crash" instead of taking the
// fuzzer down.
//
// Exit status is the gate, tested like ritcs-bench-diff's:
//   0  expectations met (no failures; or --expect-failures/--expect-repro
//      was satisfied; or the determinism check matched)
//   1  unexpected failure found (fuzz loop or repro replay)
//   2  usage/contract violation: --expect-failures with a clean run,
//      --expect-repro on a passing or differently-classed repro, corrupt
//      repro file, shrinking a passing case, determinism divergence
//
// Self-test hook: building this binary against core objects compiled with
// -DRIT_TESTKIT_INJECT_BUG=<id> (targets ritcs-fuzz-bug<id>) plants a
// known bug; the ctest smoke legs assert each planted bug is caught
// within the smoke iteration budget (--expect-failures=true).
#include <exception>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "cli/args.h"
#include "common/atomic_file.h"
#include "common/check.h"
#include "common/num_io.h"
#include "platform/supervisor.h"
#include "rng/rng.h"
#include "sim/guarded.h"
#include "sim/metrics.h"
#include "testkit/fuzz_case.h"
#include "testkit/harness.h"
#include "testkit/mutate.h"
#include "testkit/shrink.h"

namespace {

using rit::testkit::CaseOutcome;
using rit::testkit::FuzzCase;

/// Separates the signature class from the details inside the exception the
/// isolated check body throws (the supervisor round-trips it as a
/// single-line fault reason).
constexpr const char* kReasonSep = " :: ";

std::string hex16(std::uint64_t v) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[v & 0xf];
    v >>= 4;
  }
  return out;
}

/// Filesystem-safe slug of a signature class ("oracle-mismatch:payment" ->
/// "oracle-mismatch-payment").
std::string slug(const std::string& signature) {
  std::string out;
  for (char c : signature) {
    const bool keep = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                      c == '-' || (c >= 'A' && c <= 'Z');
    out.push_back(keep ? c : '-');
  }
  return out;
}

std::string pad6(std::uint64_t v) {
  std::string digits = rit::format_u64(v);
  while (digits.size() < 6) digits.insert(digits.begin(), '0');
  return digits;
}

/// Direct in-process check.
CaseOutcome direct_check(const FuzzCase& c) {
  return rit::testkit::check_case(c);
}

/// Supervised check: the case runs as a 1-trial, 1-shard supervised sweep
/// in a forked worker. A thrown failure comes back through the fault
/// ledger; a worker death (segfault/OOM/wedge) aborts the supervised run
/// and is classified as the fixed signature "crash" (fixed so the corpus
/// stays deterministic — a crash reason would carry addresses).
CaseOutcome isolated_check(const FuzzCase& c) {
  CaseOutcome outcome;
  rit::sim::GuardPolicy policy;
  policy.max_trial_failures = 1;
  rit::platform::SupervisorOptions opts;
  opts.shards = 1;
  opts.shard_retries = 0;
  opts.config_hash = rit::testkit::case_hash(c);
  opts.seed = c.mech_seed;
  const rit::sim::TrialBody body = [&c](std::uint64_t /*trial*/,
                                        rit::core::RitWorkspace& /*ws*/,
                                        std::string* phase) {
    if (phase != nullptr) *phase = "check-case";
    const CaseOutcome inner = rit::testkit::check_case(c);
    if (!inner.ok) {
      throw std::runtime_error(inner.signature + kReasonSep + inner.details);
    }
    return rit::sim::TrialMetrics{};
  };
  try {
    const rit::sim::GuardedResult result =
        rit::platform::run_trials_supervised(
            1, opts, policy, body,
            [&c](std::uint64_t) { return c.mech_seed; });
    if (!result.faults.empty()) {
      const std::string& reason = result.faults.entries.front().reason;
      const std::size_t sep = reason.find(kReasonSep);
      outcome.ok = false;
      if (sep == std::string::npos) {
        outcome.signature = reason;
      } else {
        outcome.signature = reason.substr(0, sep);
        outcome.details = reason.substr(sep + std::string(kReasonSep).size());
      }
    }
  } catch (const rit::CheckFailure&) {
    outcome.ok = false;
    outcome.signature = "crash";
    outcome.details = "supervised check worker died";
  }
  return outcome;
}

CaseOutcome run_check(const FuzzCase& c, bool isolate) {
  return isolate ? isolated_check(c) : direct_check(c);
}

struct LoopResult {
  std::uint64_t iterations{0};
  std::uint64_t failures{0};
  std::map<std::string, std::uint64_t> by_signature;
};

/// Save a corpus snapshot this often (deterministic replay seeds for
/// future sessions; also gives the determinism check real file contents
/// to compare).
constexpr std::uint64_t kSnapshotEvery = 25;
constexpr std::size_t kPoolCap = 64;

/// `stop_after_failures` > 0 short-circuits the budget once that many
/// failures are on disk (the bug smoke legs only need the first catch).
LoopResult run_loop(std::uint64_t seed, std::uint64_t iterations,
                    const std::string& corpus_dir, bool isolate,
                    std::uint64_t stop_after_failures = 0) {
  std::filesystem::create_directories(corpus_dir);
  rit::rng::Rng root(seed);
  std::vector<FuzzCase> pool;
  LoopResult result;
  std::ostringstream manifest;
  for (std::uint64_t i = 0; i < iterations; ++i) {
    rit::rng::Rng iter_rng = root.split();
    FuzzCase c;
    if (pool.empty() || i % 4 == 0) {
      c = rit::testkit::random_case(iter_rng);
    } else {
      const std::size_t pick = iter_rng.uniform_index(pool.size());
      c = rit::testkit::mutate(pool[pick], iter_rng);
    }
    const std::uint64_t hash = rit::testkit::case_hash(c);
    const CaseOutcome outcome = run_check(c, isolate);
    manifest << "iter " << rit::format_u64(i) << " case " << hex16(hash)
             << " " << (outcome.ok ? "ok" : outcome.signature) << "\n";
    if (outcome.ok) {
      if (pool.size() < kPoolCap) {
        pool.push_back(c);
      } else {
        pool[static_cast<std::size_t>(i % kPoolCap)] = c;
      }
      if (i % kSnapshotEvery == 0) {
        rit::testkit::write_case_file(
            corpus_dir + "/case-" + pad6(i) + "-" + hex16(hash) + ".ritcase",
            c);
      }
    } else {
      ++result.failures;
      ++result.by_signature[outcome.signature];
      FuzzCase repro = c;
      repro.signature = outcome.signature;
      rit::testkit::write_case_file(corpus_dir + "/repro-" +
                                        slug(outcome.signature) + "-" +
                                        hex16(hash) + ".ritcase",
                                    repro);
      std::cout << "FAIL iter=" << rit::format_u64(i) << " case="
                << hex16(hash) << " sig=" << outcome.signature
                << (outcome.details.empty() ? "" : " | " + outcome.details)
                << "\n";
      if (stop_after_failures != 0 &&
          result.failures >= stop_after_failures) {
        result.iterations = i + 1;
        rit::write_file_atomic(corpus_dir + "/manifest.txt", manifest.str());
        return result;
      }
    }
  }
  result.iterations = iterations;
  rit::write_file_atomic(corpus_dir + "/manifest.txt", manifest.str());
  return result;
}

void print_loop_summary(const LoopResult& r) {
  std::cout << rit::format_u64(r.iterations) << " iteration(s), "
            << rit::format_u64(r.failures) << " failure(s)\n";
  for (const auto& [sig, count] : r.by_signature) {
    std::cout << "  " << sig << ": " << rit::format_u64(count) << "\n";
  }
}

/// Byte-compares the a/ and b/ corpora of a determinism check. Returns
/// true when both directories hold identical file sets with identical
/// contents.
bool corpora_identical(const std::string& dir_a, const std::string& dir_b) {
  const auto list = [](const std::string& dir) {
    std::map<std::string, std::string> files;
    for (const auto& entry : std::filesystem::directory_iterator(dir)) {
      if (!entry.is_regular_file()) continue;
      std::ifstream in(entry.path(), std::ios::binary);
      std::ostringstream ss;
      ss << in.rdbuf();
      files[entry.path().filename().string()] = ss.str();
    }
    return files;
  };
  const auto a = list(dir_a);
  const auto b = list(dir_b);
  if (a.size() != b.size()) {
    std::cout << "determinism: file counts differ (" << a.size() << " vs "
              << b.size() << ")\n";
    return false;
  }
  for (const auto& [name, content] : a) {
    const auto it = b.find(name);
    if (it == b.end()) {
      std::cout << "determinism: " << name << " only in first run\n";
      return false;
    }
    if (it->second != content) {
      std::cout << "determinism: " << name << " differs between runs\n";
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    rit::cli::Args args(argc, argv);
    const std::uint64_t seed = args.get_u64("seed", 1);
    const std::uint64_t iterations = args.get_u64("iterations", 200);
    const std::string corpus_dir =
        args.get_string("corpus-dir", "fuzz-corpus");
    const bool isolate = args.get_bool("isolate", false);
    const std::string repro_path = args.get_string("repro", "");
    const bool do_shrink = args.get_bool("shrink", false);
    const std::string out_path = args.get_string("out", "");
    const bool expect_failures = args.get_bool("expect-failures", false);
    const bool expect_repro = args.get_bool("expect-repro", false);
    const bool determinism_check = args.get_bool("determinism-check", false);
    const std::uint64_t max_shrink_checks =
        args.get_u64("max-shrink-checks", 2000);
    args.finish();

    if (determinism_check) {
      const LoopResult first =
          run_loop(seed, iterations, corpus_dir + "/a", isolate);
      const LoopResult second =
          run_loop(seed, iterations, corpus_dir + "/b", isolate);
      print_loop_summary(first);
      if (first.failures != second.failures ||
          !corpora_identical(corpus_dir + "/a", corpus_dir + "/b")) {
        std::cerr << "determinism check FAILED: the two runs diverged\n";
        return 2;
      }
      std::cout << "determinism check passed: corpora are bit-identical\n";
      return 0;
    }

    if (!repro_path.empty()) {
      const std::optional<FuzzCase> loaded =
          rit::testkit::load_case_file(repro_path);
      if (!loaded) {
        std::cerr << "error: cannot load repro file " << repro_path
                  << " (missing, corrupt, or checksum mismatch)\n";
        return 2;
      }
      const CaseOutcome outcome = run_check(*loaded, isolate);

      if (do_shrink) {
        if (outcome.ok) {
          std::cerr << "error: " << repro_path
                    << " passes; nothing to shrink\n";
          return 2;
        }
        if (out_path.empty()) {
          std::cerr << "error: --shrink requires --out=FILE\n";
          return 2;
        }
        const rit::testkit::ShrinkResult shrunk = rit::testkit::shrink(
            *loaded, outcome.signature,
            [isolate](const FuzzCase& cand) {
              return run_check(cand, isolate).signature;
            },
            static_cast<std::uint32_t>(max_shrink_checks));
        rit::testkit::write_case_file(out_path, shrunk.best);
        std::cout << "shrunk " << rit::format_u64(loaded->asks.size())
                  << " -> " << rit::format_u64(shrunk.best.asks.size())
                  << " participant(s) in "
                  << rit::format_u64(shrunk.checks_used) << " check(s); "
                  << "wrote " << out_path << "\n";
        return 0;
      }

      if (outcome.ok) {
        if (expect_repro) {
          std::cerr << "error: expected " << repro_path
                    << " to reproduce a failure, but it passed\n";
          return 2;
        }
        std::cout << "repro passed: " << repro_path << "\n";
        return 0;
      }
      std::cout << "repro failed with " << outcome.signature
                << (outcome.details.empty() ? "" : " | " + outcome.details)
                << "\n";
      if (expect_repro) {
        if (!loaded->signature.empty() &&
            loaded->signature != outcome.signature) {
          std::cerr << "error: repro reproduced " << outcome.signature
                    << " but the file records " << loaded->signature << "\n";
          return 2;
        }
        return 0;
      }
      return 1;
    }

    const LoopResult result = run_loop(seed, iterations, corpus_dir, isolate,
                                       expect_failures ? 1 : 0);
    print_loop_summary(result);
    if (expect_failures) {
      if (result.failures == 0) {
        std::cerr << "error: expected the planted bug to be caught within "
                  << rit::format_u64(iterations)
                  << " iteration(s), but every case passed\n";
        return 2;
      }
      std::cout << "planted bug caught as expected\n";
      return 0;
    }
    return result.failures == 0 ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
