// ritcs-bench-diff: the one-command perf-regression gate.
//
//   ritcs-bench-diff baseline.jsonl current.jsonl
//
// Compares two perf ledgers (written by any bench's --history-out flag,
// see obs/history.h) with noise-aware thresholds: repeated runs collapse
// min-of-N per metric, and a metric only flags when it exceeds BOTH the
// relative threshold and the absolute floor. Exit status is the gate:
//
//   0  no regression (ledgers comparable, nothing flagged)
//   1  at least one regression flagged
//   2  usage or I/O error (unreadable ledger, no parseable records)
//   3  --probe-perf only: perf_event_open unavailable
//
// Flags:
//   --threshold=R          relative threshold for time metrics (default 0.10)
//   --abs-floor-ms=MS      absolute floor for time metrics (default 0.5)
//   --counter-threshold=R  relative threshold for gated counters (default 0.25)
//   --counter-floor=N      absolute floor for gated counters (default 1e7)
//   --all                  print every compared metric, not just times +
//                          flagged rows
//   --markdown             render the report as a markdown table
//   --svg=PATH             also render a wall-time trend chart (one series
//                          per bench, baseline records then current)
//   --probe-perf           ignore ledgers; exit 0 if this process can open
//                          a perf event, 3 otherwise (used by check.sh)
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "cli/svg_chart.h"
#include "cli/table.h"
#include "common/format_util.h"
#include "common/num_io.h"
#include "obs/history.h"
#include "obs/perf_counters.h"

namespace {

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--threshold=R] [--abs-floor-ms=MS] [--counter-threshold=R]"
               " [--counter-floor=N] [--all] [--markdown] [--svg=PATH]"
               " baseline.jsonl current.jsonl\n"
            << "       " << argv0 << " --probe-perf\n";
  return 2;
}

bool is_time_metric(const std::string& metric) {
  return metric == "wall_ms" || metric == "total_ms";
}

std::string format_value(const std::string& metric, double v) {
  if (is_time_metric(metric)) return rit::format_double(v, 3);
  return rit::format_with_commas(static_cast<long long>(v));
}

std::string flag_of(const rit::obs::DiffRow& row) {
  if (row.regression) return "REGRESSION";
  if (row.improvement) return "improved";
  return "";
}

void render_markdown(const std::vector<std::vector<std::string>>& rows) {
  std::cout << "| bench | phase | metric | baseline | current | ratio |"
               " verdict |\n";
  std::cout << "|---|---|---|---:|---:|---:|---|\n";
  for (const auto& r : rows) {
    std::cout << '|';
    for (const auto& cell : r) std::cout << ' ' << cell << " |";
    std::cout << '\n';
  }
}

void render_trend_svg(const std::string& path,
                      const std::vector<rit::obs::HistoryRecord>& baseline,
                      const std::vector<rit::obs::HistoryRecord>& current) {
  std::map<std::string, rit::cli::Series> by_bench;
  const auto fold = [&by_bench](
                        const std::vector<rit::obs::HistoryRecord>& recs) {
    for (const rit::obs::HistoryRecord& r : recs) {
      rit::cli::Series& s = by_bench[r.bench];
      s.label = r.bench;
      s.points.emplace_back(static_cast<double>(s.points.size()), r.wall_ms);
    }
  };
  fold(baseline);
  fold(current);
  std::vector<rit::cli::Series> series;
  for (auto& [bench, s] : by_bench) {
    if (!s.points.empty()) series.push_back(std::move(s));
  }
  if (series.empty()) return;
  rit::cli::ChartOptions chart;
  chart.title = "wall_ms trend (baseline then current, per bench)";
  chart.x_label = "run index";
  chart.y_label = "wall_ms";
  const std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(p.parent_path(), ec);
  }
  rit::cli::write_line_chart(path, series, chart);
  std::cout << "svg: " << path << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  rit::obs::DiffOptions opts;
  bool show_all = false;
  bool markdown = false;
  bool probe_perf = false;
  std::string svg_path;
  std::vector<std::string> positional;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional.push_back(arg);
      continue;
    }
    const std::size_t eq = arg.find('=');
    const std::string key = arg.substr(2, eq == std::string::npos
                                              ? std::string::npos
                                              : eq - 2);
    const std::string value =
        eq == std::string::npos ? "" : arg.substr(eq + 1);
    if (key == "threshold") {
      opts.rel_threshold = rit::parse_double(value).value_or(opts.rel_threshold);
    } else if (key == "abs-floor-ms") {
      opts.abs_floor_ms = rit::parse_double(value).value_or(opts.abs_floor_ms);
    } else if (key == "counter-threshold") {
      opts.counter_rel_threshold = rit::parse_double(value).value_or(opts.counter_rel_threshold);
    } else if (key == "counter-floor") {
      opts.counter_abs_floor = rit::parse_double(value).value_or(opts.counter_abs_floor);
    } else if (key == "all") {
      show_all = true;
    } else if (key == "markdown") {
      markdown = true;
    } else if (key == "svg") {
      svg_path = value;
    } else if (key == "probe-perf") {
      probe_perf = true;
    } else {
      std::cerr << "unknown flag: " << arg << "\n";
      return usage(argv[0]);
    }
  }

  if (probe_perf) {
    const bool ok = rit::obs::perf_events_supported();
    std::cout << (ok ? "perf_event_open: available\n"
                     : "perf_event_open: unavailable\n");
    return ok ? 0 : 3;
  }

  if (positional.size() != 2) return usage(argv[0]);

  const rit::obs::HistoryFile base = rit::obs::read_history(positional[0]);
  const rit::obs::HistoryFile cur = rit::obs::read_history(positional[1]);
  for (const auto& [file, hf] :
       {std::pair<const std::string&, const rit::obs::HistoryFile&>(
            positional[0], base),
        std::pair<const std::string&, const rit::obs::HistoryFile&>(
            positional[1], cur)}) {
    for (const rit::obs::RejectedLine& rl : hf.rejected) {
      std::cerr << "warning: " << file << ":" << rl.line_no
                << ": skipped corrupt line (" << rl.reason << ")\n";
    }
  }
  if (base.records.empty()) {
    std::cerr << "error: no parseable records in " << positional[0] << "\n";
    return 2;
  }
  if (cur.records.empty()) {
    std::cerr << "error: no parseable records in " << positional[1] << "\n";
    return 2;
  }

  const rit::obs::DiffResult diff =
      rit::obs::diff_history(base.records, cur.records, opts);

  if (diff.env_mismatch) {
    std::cerr << "warning: baseline and current env fingerprints differ — "
                 "treat this comparison as advisory, not gating evidence\n";
  }

  std::vector<std::vector<std::string>> rows;
  std::size_t regressions = 0;
  std::size_t improvements = 0;
  for (const rit::obs::DiffRow& row : diff.rows) {
    if (row.regression) ++regressions;
    if (row.improvement) ++improvements;
    if (!show_all && !is_time_metric(row.metric) && !row.regression &&
        !row.improvement) {
      continue;
    }
    rows.push_back({row.bench, row.phase, row.metric,
                    format_value(row.metric, row.baseline),
                    format_value(row.metric, row.current),
                    rit::format_double(row.ratio, 3) + "x", flag_of(row)});
  }

  if (markdown) {
    render_markdown(rows);
  } else {
    rit::cli::Table table({"bench", "phase", "metric", "baseline", "current",
                           "ratio", "verdict"});
    for (auto& r : rows) table.add_row(std::move(r));
    table.print(std::cout);
  }
  std::cout << diff.rows.size() << " metric(s) compared, " << regressions
            << " regression(s), " << improvements << " improvement(s)"
            << (show_all ? "" : " (hidden unflagged counters: rerun with "
                                "--all to list)")
            << "\n";

  if (!svg_path.empty()) {
    render_trend_svg(svg_path, base.records, cur.records);
  }

  return diff.any_regression ? 1 : 0;
}
