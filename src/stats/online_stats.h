// Welford online mean/variance accumulator.
//
// Every metric reported in EXPERIMENTS.md is an average over trials; Welford
// keeps the accumulation numerically stable even when utilities differ by
// orders of magnitude within one sweep.
#pragma once

#include <cstddef>
#include <limits>

namespace rit::stats {

class OnlineStats {
 public:
  void add(double x);

  /// Merges another accumulator into this one (parallel-combine form).
  void merge(const OnlineStats& other);

  std::size_t count() const { return n_; }
  double mean() const { return n_ == 0 ? 0.0 : mean_; }
  /// Unbiased sample variance; 0 when fewer than two samples.
  double variance() const;
  double stddev() const;
  /// Half-width of a normal-approximation 95% confidence interval.
  double ci95_half_width() const;
  double min() const { return n_ == 0 ? 0.0 : min_; }
  double max() const { return n_ == 0 ? 0.0 : max_; }
  double sum() const { return n_ == 0 ? 0.0 : mean_ * static_cast<double>(n_); }

  /// Raw internal state, exposed for bit-exact serialization (checkpoints).
  /// raw_min()/raw_max() are ±infinity on an empty accumulator, unlike the
  /// reporting accessors above which clamp to 0.
  double raw_mean() const { return mean_; }
  double raw_m2() const { return m2_; }
  double raw_min() const { return min_; }
  double raw_max() const { return max_; }

  /// Rebuilds an accumulator from raw state. Round-tripping through
  /// (count, raw_mean, raw_m2, raw_min, raw_max) is bit-exact, which is
  /// what makes checkpoint/resume produce identical aggregates.
  static OnlineStats restore(std::size_t n, double mean, double m2,
                             double min, double max) {
    OnlineStats s;
    s.n_ = n;
    s.mean_ = mean;
    s.m2_ = m2;
    s.min_ = min;
    s.max_ = max;
    return s;
  }

 private:
  std::size_t n_{0};
  double mean_{0.0};
  double m2_{0.0};
  double min_{std::numeric_limits<double>::infinity()};
  double max_{-std::numeric_limits<double>::infinity()};
};

}  // namespace rit::stats
