// Welford online mean/variance accumulator.
//
// Every metric reported in EXPERIMENTS.md is an average over trials; Welford
// keeps the accumulation numerically stable even when utilities differ by
// orders of magnitude within one sweep.
#pragma once

#include <cstddef>
#include <limits>

namespace rit::stats {

class OnlineStats {
 public:
  void add(double x);

  /// Merges another accumulator into this one (parallel-combine form).
  void merge(const OnlineStats& other);

  std::size_t count() const { return n_; }
  double mean() const { return n_ == 0 ? 0.0 : mean_; }
  /// Unbiased sample variance; 0 when fewer than two samples.
  double variance() const;
  double stddev() const;
  /// Half-width of a normal-approximation 95% confidence interval.
  double ci95_half_width() const;
  double min() const { return n_ == 0 ? 0.0 : min_; }
  double max() const { return n_ == 0 ? 0.0 : max_; }
  double sum() const { return n_ == 0 ? 0.0 : mean_ * static_cast<double>(n_); }

 private:
  std::size_t n_{0};
  double mean_{0.0};
  double m2_{0.0};
  double min_{std::numeric_limits<double>::infinity()};
  double max_{-std::numeric_limits<double>::infinity()};
};

}  // namespace rit::stats
