// Percentile / quantile helpers over sample vectors.
#pragma once

#include <span>
#include <vector>

namespace rit::stats {

/// Returns the p-quantile (p in [0,1]) of `samples` using linear
/// interpolation between order statistics. Copies and partially sorts;
/// `samples` is unmodified. Requires a non-empty input.
double quantile(std::span<const double> samples, double p);

/// Convenience: median.
double median(std::span<const double> samples);

/// Returns {q, quantile(q)} pairs for each q in `qs` with one sort.
std::vector<std::pair<double, double>> quantiles(
    std::span<const double> samples, std::span<const double> qs);

}  // namespace rit::stats
