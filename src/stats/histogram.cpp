#include "stats/histogram.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/check.h"
#include "common/format_util.h"

namespace rit::stats {

Histogram::Histogram(double lo, double hi, std::size_t bucket_count)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bucket_count)) {
  RIT_CHECK(lo < hi);
  RIT_CHECK(bucket_count >= 1);
  buckets_.assign(bucket_count, 0);
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  auto idx = static_cast<std::size_t>((x - lo_) / width_);
  idx = std::min(idx, buckets_.size() - 1);  // guard fp rounding at hi edge
  ++buckets_[idx];
}

// Field-coverage guard for merge(): Histogram must stay exactly three edge
// doubles, the bucket vector, and three counters. A new field added without
// extending merge() would be silently dropped when per-thread histograms
// combine — this fires and points here instead.
static_assert(sizeof(Histogram) == 3 * sizeof(double) +
                                       sizeof(std::vector<std::size_t>) +
                                       3 * sizeof(std::size_t),
              "Histogram changed shape: update merge() in histogram.cpp "
              "(and this static_assert) so no field is dropped when "
              "per-thread histograms combine");

void Histogram::merge(const Histogram& other) {
  RIT_CHECK_MSG(lo_ == other.lo_ && hi_ == other.hi_ &&
                    buckets_.size() == other.buckets_.size(),
                "histogram merge requires identical shape");
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  underflow_ += other.underflow_;
  overflow_ += other.overflow_;
  total_ += other.total_;
}

double Histogram::bucket_lo(std::size_t i) const {
  RIT_CHECK(i < buckets_.size());
  return lo_ + width_ * static_cast<double>(i);
}

std::string Histogram::render(std::size_t max_bar_width) const {
  std::size_t peak = std::max<std::size_t>(
      std::max(underflow_, overflow_),
      buckets_.empty() ? 0 : *std::max_element(buckets_.begin(), buckets_.end()));
  peak = std::max<std::size_t>(peak, 1);
  std::ostringstream os;
  auto bar = [&](std::size_t c) {
    const auto w = static_cast<std::size_t>(
        std::llround(static_cast<double>(c) / static_cast<double>(peak) *
                     static_cast<double>(max_bar_width)));
    return std::string(w, '#');
  };
  if (underflow_ > 0) {
    os << pad_left("< " + format_double(lo_, 2), 18) << " | " << bar(underflow_)
       << ' ' << underflow_ << '\n';
  }
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    // Built up with += (not operator+ chains): GCC 12's -Wrestrict
    // false-positives on `"literal" + std::string&&` under -O3 (PR105651).
    std::string label = "[";
    label += format_double(bucket_lo(i), 2);
    label += ", ";
    label += format_double(bucket_lo(i) + width_, 2);
    label += ")";
    os << pad_left(label, 18) << " | " << bar(buckets_[i]) << ' '
       << buckets_[i] << '\n';
  }
  if (overflow_ > 0) {
    os << pad_left(">= " + format_double(hi_, 2), 18) << " | " << bar(overflow_)
       << ' ' << overflow_ << '\n';
  }
  return os.str();
}

}  // namespace rit::stats
