// Fixed-width histogram for utility / payment distributions.
//
// Used by examples and the EXPERIMENTS.md appendix to show how the payment
// determination phase reshapes the distribution of user utilities, and by
// tests as a coarse distribution-equality check between the naive and fast
// payment implementations.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace rit::stats {

class Histogram {
 public:
  /// Buckets [lo, hi) split into `bucket_count` equal-width buckets, plus
  /// underflow and overflow buckets. Requires lo < hi and bucket_count >= 1.
  Histogram(double lo, double hi, std::size_t bucket_count);

  void add(double x);

  /// Bucket-wise accumulation of `other` into this histogram. Requires an
  /// identical shape (lo, hi, bucket_count) — the metrics registry merges
  /// per-thread snapshots this way, and mixing shapes would silently bin
  /// values wrong.
  void merge(const Histogram& other);

  double lo() const { return lo_; }
  double hi() const { return hi_; }
  std::size_t count() const { return total_; }
  std::size_t underflow() const { return underflow_; }
  std::size_t overflow() const { return overflow_; }
  std::size_t bucket_count() const { return buckets_.size(); }
  std::size_t bucket(std::size_t i) const { return buckets_.at(i); }
  /// Inclusive lower edge of bucket i.
  double bucket_lo(std::size_t i) const;

  /// Multi-line ASCII rendering with proportional bars (for examples).
  std::string render(std::size_t max_bar_width = 50) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::size_t> buckets_;
  std::size_t underflow_{0};
  std::size_t overflow_{0};
  std::size_t total_{0};
};

}  // namespace rit::stats
