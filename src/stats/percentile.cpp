#include "stats/percentile.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace rit::stats {

namespace {
double interpolated(const std::vector<double>& sorted, double p) {
  const std::size_t n = sorted.size();
  if (n == 1) return sorted[0];
  const double pos = p * static_cast<double>(n - 1);
  const std::size_t lo = static_cast<std::size_t>(std::floor(pos));
  const std::size_t hi = std::min(lo + 1, n - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}
}  // namespace

double quantile(std::span<const double> samples, double p) {
  RIT_CHECK(!samples.empty());
  RIT_CHECK(p >= 0.0 && p <= 1.0);
  std::vector<double> copy(samples.begin(), samples.end());
  std::sort(copy.begin(), copy.end());
  return interpolated(copy, p);
}

double median(std::span<const double> samples) {
  return quantile(samples, 0.5);
}

std::vector<std::pair<double, double>> quantiles(
    std::span<const double> samples, std::span<const double> qs) {
  RIT_CHECK(!samples.empty());
  std::vector<double> copy(samples.begin(), samples.end());
  std::sort(copy.begin(), copy.end());
  std::vector<std::pair<double, double>> out;
  out.reserve(qs.size());
  for (double q : qs) {
    RIT_CHECK(q >= 0.0 && q <= 1.0);
    out.emplace_back(q, interpolated(copy, q));
  }
  return out;
}

}  // namespace rit::stats
