// Wall-clock timer for the Fig. 8 running-time experiments.
#pragma once

#include <chrono>
#include <cstdint>

#include "stats/online_stats.h"

namespace rit::stats {

class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Elapsed time since construction / last reset, in nanoseconds.
  std::uint64_t elapsed_ns() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             start_)
            .count());
  }

  /// Elapsed time since construction / last reset, in milliseconds.
  double elapsed_ms() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_)
        .count();
  }

  /// Elapsed time in seconds.
  double elapsed_s() const { return elapsed_ms() / 1000.0; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// RAII timer that adds its elapsed milliseconds into an OnlineStats when it
/// goes out of scope — the aggregate-only fallback the tracer offers when
/// recording every individual span would be too heavy.
class ScopedTimer {
 public:
  explicit ScopedTimer(OnlineStats& sink) : sink_(sink) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() { sink_.add(timer_.elapsed_ms()); }

 private:
  OnlineStats& sink_;
  Timer timer_;
};

}  // namespace rit::stats
