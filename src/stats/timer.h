// Wall-clock timer for the Fig. 8 running-time experiments.
#pragma once

#include <chrono>

namespace rit::stats {

class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Elapsed time since construction / last reset, in milliseconds.
  double elapsed_ms() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_)
        .count();
  }

  /// Elapsed time in seconds.
  double elapsed_s() const { return elapsed_ms() / 1000.0; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace rit::stats
