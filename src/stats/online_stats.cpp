#include "stats/online_stats.h"

#include <algorithm>
#include <cmath>

namespace rit::stats {

// Field-coverage guard for merge(): OnlineStats must stay exactly one count
// plus four doubles (mean, m2, min, max). Adding a field without extending
// merge() would silently drop it from every parallel combine — this fires
// and points here instead.
static_assert(sizeof(OnlineStats) ==
                  sizeof(std::size_t) + 4 * sizeof(double),
              "OnlineStats changed shape: update add() and merge() in "
              "online_stats.cpp (and this static_assert) so no field is "
              "dropped from parallel combines");

void OnlineStats::add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void OnlineStats::merge(const OnlineStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double OnlineStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

double OnlineStats::ci95_half_width() const {
  if (n_ < 2) return 0.0;
  return 1.96 * stddev() / std::sqrt(static_cast<double>(n_));
}

}  // namespace rit::stats
