// Pearson chi-square goodness-of-fit: the statistical backbone of the RNG
// and winner-uniformity tests (an explicit test statistic beats ad-hoc
// per-bucket tolerances).
#pragma once

#include <cstdint>
#include <span>

namespace rit::stats {

/// Pearson's X^2 = sum (observed - expected)^2 / expected over categories.
/// expected[i] must be > 0 and the two spans equal-sized and non-empty.
double chi_square_statistic(std::span<const std::uint64_t> observed,
                            std::span<const double> expected);

/// Same for the common uniform case: expected[i] = total/k for every cell.
double chi_square_uniform(std::span<const std::uint64_t> observed);

/// Approximate upper critical value of the chi-square distribution with
/// `dof` degrees of freedom at significance alpha in {0.01, 0.001} —
/// the Wilson–Hilferty cube-root normal approximation, accurate to a few
/// percent for dof >= 3, ample for pass/fail RNG testing.
double chi_square_critical(std::uint64_t dof, double alpha);

}  // namespace rit::stats
