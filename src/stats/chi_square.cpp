#include "stats/chi_square.h"

#include <cmath>

#include "common/check.h"

namespace rit::stats {

double chi_square_statistic(std::span<const std::uint64_t> observed,
                            std::span<const double> expected) {
  RIT_CHECK(!observed.empty());
  RIT_CHECK(observed.size() == expected.size());
  double x2 = 0.0;
  for (std::size_t i = 0; i < observed.size(); ++i) {
    RIT_CHECK_MSG(expected[i] > 0.0, "expected count must be positive");
    const double diff = static_cast<double>(observed[i]) - expected[i];
    x2 += diff * diff / expected[i];
  }
  return x2;
}

double chi_square_uniform(std::span<const std::uint64_t> observed) {
  RIT_CHECK(!observed.empty());
  std::uint64_t total = 0;
  for (std::uint64_t o : observed) total += o;
  RIT_CHECK_MSG(total > 0, "need at least one observation");
  const double expected =
      static_cast<double>(total) / static_cast<double>(observed.size());
  double x2 = 0.0;
  for (std::uint64_t o : observed) {
    const double diff = static_cast<double>(o) - expected;
    x2 += diff * diff / expected;
  }
  return x2;
}

double chi_square_critical(std::uint64_t dof, double alpha) {
  RIT_CHECK(dof >= 1);
  double z = 0.0;
  if (alpha == 0.01) {
    z = 2.3263478740408408;
  } else if (alpha == 0.001) {
    z = 3.0902323061678132;
  } else {
    RIT_CHECK_MSG(false, "supported alphas are 0.01 and 0.001, got " << alpha);
  }
  // Wilson–Hilferty: X^2_(dof,alpha) ~ dof * (1 - 2/(9 dof) + z sqrt(2/(9 dof)))^3.
  const double k = static_cast<double>(dof);
  const double term = 1.0 - 2.0 / (9.0 * k) + z * std::sqrt(2.0 / (9.0 * k));
  return k * term * term * term;
}

}  // namespace rit::stats
