#include "sim/growth.h"

#include <algorithm>
#include <limits>

#include "common/check.h"

namespace rit::sim {

GrowthResult grow_until_supply(const graph::Graph& g,
                               const Population& population,
                               const core::Job& job,
                               const GrowthOptions& options) {
  RIT_CHECK(population.size() == g.num_nodes());
  RIT_CHECK(options.supply_multiple > 0.0);
  RIT_CHECK_MSG(!options.seeds.empty(), "growth needs at least one seed");
  const std::uint32_t n = g.num_nodes();
  const std::uint32_t cap = std::min<std::uint32_t>(
      options.max_users.value_or(n), n);

  GrowthResult res{tree::IncentiveTree::root_only(), {}, false, {}};
  res.supply_by_type.assign(job.num_types(), 0);

  std::vector<std::uint64_t> target(job.num_types(), 0);
  for (std::uint32_t t = 0; t < job.num_types(); ++t) {
    target[t] = static_cast<std::uint64_t>(
        options.supply_multiple * job.demand(TaskType{t}) + 0.999999);
  }
  auto supply_met = [&]() {
    for (std::uint32_t t = 0; t < job.num_types(); ++t) {
      if (job.demand(TaskType{t}) > 0 && res.supply_by_type[t] < target[t]) {
        return false;
      }
    }
    return true;
  };

  constexpr std::uint32_t kUnset = std::numeric_limits<std::uint32_t>::max();
  constexpr std::uint32_t kRoot = kUnset - 1;
  std::vector<std::uint32_t> inviter(n, kUnset);
  std::vector<std::uint32_t> parents{0};  // grows with join order

  auto join = [&](std::uint32_t u, std::uint32_t inviter_node) {
    res.joined.push_back(u);
    parents.push_back(inviter_node);
    const core::Ask& ask = population.truthful_asks[u];
    res.supply_by_type[ask.type.value] += ask.quantity;
  };

  // node_of[u]: tree node of graph node u once joined.
  std::vector<std::uint32_t> node_of(n, 0);

  std::vector<std::uint32_t> wave;
  for (std::uint32_t s : options.seeds) {
    RIT_CHECK_MSG(s < n, "seed " << s << " out of range");
    if (inviter[s] != kUnset) continue;
    inviter[s] = kRoot;
    wave.push_back(s);
  }
  std::sort(wave.begin(), wave.end());
  bool done = false;
  for (std::uint32_t s : wave) {
    if (res.joined.size() >= cap || (done = supply_met())) break;
    node_of[s] = static_cast<std::uint32_t>(res.joined.size() + 1);
    join(s, 0);
  }

  while (!wave.empty() && !done && res.joined.size() < cap) {
    std::vector<std::uint32_t> next;
    for (std::uint32_t u : wave) {
      if (node_of[u] == 0) continue;  // cut off before joining
      for (std::uint32_t v : g.out_neighbors(u)) {
        if (inviter[v] != kUnset) continue;
        inviter[v] = u;
        next.push_back(v);
      }
    }
    std::sort(next.begin(), next.end());
    for (std::uint32_t v : next) {
      if (res.joined.size() >= cap || (done = supply_met())) break;
      node_of[v] = static_cast<std::uint32_t>(res.joined.size() + 1);
      join(v, node_of[inviter[v]]);
    }
    std::erase_if(next, [&](std::uint32_t v) { return node_of[v] == 0; });
    wave = std::move(next);
  }

  res.supply_met = supply_met();
  res.tree = tree::IncentiveTree(std::move(parents));
  return res;
}

}  // namespace rit::sim
