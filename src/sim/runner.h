// Trial runner: generates one instance from a Scenario and measures both the
// auction phase and the full RIT mechanism on it.
#pragma once

#include <functional>

#include "core/rit.h"
#include "sim/metrics.h"
#include "sim/scenario.h"
#include "sim/workload.h"

namespace rit::sim {

/// The fully-materialized instance for one trial (exposed so the Fig. 9
/// bench and the property tests can mutate it before running mechanisms).
struct TrialInstance {
  Population population;
  core::Job job;
  tree::IncentiveTree tree;
  std::uint64_t mechanism_seed{0};
};

/// Draws the instance for (scenario, trial): graph, tree, population, job.
/// Component streams are independent, so e.g. enlarging the population does
/// not change the job draw.
TrialInstance make_instance(const Scenario& scenario, std::uint64_t trial);

/// The mechanism-component seed make_instance would assign this trial
/// (TrialInstance::mechanism_seed without materializing the instance) —
/// what a fault ledger records so one trial can be re-run in isolation.
std::uint64_t mechanism_seed_of(const Scenario& scenario, std::uint64_t trial);

/// Runs the auction phase and the full mechanism on one instance with the
/// *same* mechanism randomness (paired streams: phase-1 results coincide,
/// so the two series in Figs. 6-8 differ only by the payment phase).
TrialMetrics run_trial(const Scenario& scenario, const TrialInstance& inst);

/// Scratch-reusing form: identical results, but the mechanism's per-round
/// buffers live in `ws` (keep one per thread — run_many and
/// run_many_parallel do).
TrialMetrics run_trial(const Scenario& scenario, const TrialInstance& inst,
                       core::RitWorkspace& ws);

/// Convenience: make_instance + run_trial.
TrialMetrics run_trial(const Scenario& scenario, std::uint64_t trial);

/// Runs `trials` trials and aggregates. `progress`, when set, is invoked
/// after each trial with (completed, total).
AggregateMetrics run_many(
    const Scenario& scenario, std::uint64_t trials,
    const std::function<void(std::uint64_t, std::uint64_t)>& progress = {});

/// Runs trials until the 95% confidence half-width of the RIT average
/// utility falls below `target_ci` (absolute), bounded by [min_trials,
/// max_trials]. The Monte-Carlo answer to "how many trials do I need?" —
/// returns when the estimate is tight, not at an arbitrary count.
AggregateMetrics run_until_precision(const Scenario& scenario,
                                     double target_ci,
                                     std::uint64_t min_trials = 5,
                                     std::uint64_t max_trials = 1000);

/// Same, fanned out over `threads` worker threads. Safe because every trial
/// derives its own streams from (scenario.seed, trial) and shares nothing;
/// per-thread aggregates are merged in thread-index order, so the result is
/// deterministic and independent of scheduling (the merge order of Welford
/// accumulators is fixed). threads == 0 picks hardware_concurrency();
/// threads == 1 takes the exact serial run_many path (bit-for-bit).
/// `progress`, when set, fires throttled and monotone from the workers.
AggregateMetrics run_many_parallel(
    const Scenario& scenario, std::uint64_t trials, unsigned threads = 0,
    const std::function<void(std::uint64_t, std::uint64_t)>& progress = {});

}  // namespace rit::sim
