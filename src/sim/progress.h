// Rate limiter for progress callbacks: a bench running trials=1000 on a
// fast scenario would otherwise invoke its stderr reporter a thousand times
// in a few hundred milliseconds. The throttle lets at most one invocation
// through per interval (default 100 ms), and always lets the final one
// through so "1000/1000" is printed.
//
// The clock is injectable so tests can drive it deterministically.
#pragma once

#include <cstdint>
#include <functional>

namespace rit::sim {

class ProgressThrottle {
 public:
  /// `now_ns` supplies monotonic nanoseconds; the default uses the tracer's
  /// steady clock. `min_interval_ns` is the minimum gap between accepted
  /// firings.
  explicit ProgressThrottle(std::uint64_t min_interval_ns = 100'000'000,
                            std::function<std::uint64_t()> now_ns = {});

  /// True when the callback should fire now: the first call, any call at
  /// least the interval after the last accepted one, and always when
  /// `is_final` is set. Updates internal state on acceptance.
  bool should_fire(bool is_final = false);

 private:
  std::uint64_t min_interval_ns_;
  std::function<std::uint64_t()> now_ns_;
  bool fired_before_{false};
  std::uint64_t last_fire_ns_{0};
};

}  // namespace rit::sim
