// The fault-tolerant trial engine every sweep routes through.
//
// run_trials_guarded() keeps the exact deterministic execution model of
// sim/parallel.h — strided static partition, per-worker accumulators
// merged in worker-index order — and layers on:
//
//   * containment — a trial that throws, returns non-finite metrics, or
//     exceeds the watchdog deadline lands in the FaultLedger instead of
//     aborting; the failure budget (max_trial_failures, default 0) decides
//     when containment gives up and the run aborts with a CheckFailure.
//   * checkpointing — with a CheckpointSession, trials run in
//     checkpoint-interval chunks with a barrier and an atomic state save
//     between chunks. Chunking does not change which worker runs which
//     trial or the per-worker fold order, so checkpointed (and resumed)
//     runs produce bit-identical aggregates to uninterrupted ones.
//   * chaos injection — the GuardPolicy carries a chaos::ChaosSpec for the
//     fault-injection tests; it is inert by default.
//
// With a default GuardPolicy and no session this is behaviorally the old
// run_many_parallel: identical partition, identical merge, and the first
// fault aborts (budget 0) — except the abort is a clean CheckFailure
// instead of std::terminate from an exception escaping a worker thread.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "core/rit.h"
#include "sim/chaos.h"
#include "sim/checkpoint.h"
#include "sim/parallel.h"
#include "sim/scenario.h"

namespace rit::sim {

struct GuardPolicy {
  /// Contained faults tolerated before the run aborts. 0 (the default)
  /// preserves the strict behavior: the first fault aborts the sweep.
  std::uint64_t max_trial_failures{0};
  /// Per-trial watchdog deadline in steady-clock milliseconds; 0 = off.
  /// Post-hoc semantics: the trial's elapsed time is checked after it
  /// returns (standard C++ cannot preempt a wedged thread), and an
  /// over-deadline trial is recorded as a timeout fault with its metrics
  /// discarded. See docs/robustness.md.
  double trial_timeout_ms{0.0};
  /// Fault injectors for the chaos tests; all off by default.
  chaos::ChaosSpec chaos{};
};

/// The trial body: runs trial `trial` using per-worker scratch `ws` and
/// returns its metrics. `phase` starts as "trial"; bodies that stage their
/// work update it as they go so a fault names the stage that died.
using TrialBody = std::function<TrialMetrics(
    std::uint64_t trial, core::RitWorkspace& ws, std::string* phase)>;

/// Maps a trial index to the seed recorded in its ledger entry (for repro
/// commands). Defaults to the identity when empty.
using TrialSeedFn = std::function<std::uint64_t(std::uint64_t trial)>;

/// Runs `trials` trials of `body` under `policy`, fanned out over
/// `threads` workers (0 = hardware concurrency). `session`, when non-null,
/// enables checkpoint/resume for grid point `point`; its thread binding
/// must match the resolved thread count. Aborts (budget exhausted) throw
/// CheckFailure; a chaos kill throws chaos::ChaosKill.
GuardedResult run_trials_guarded(std::uint64_t trials, unsigned threads,
                                 const GuardPolicy& policy,
                                 const TrialBody& body,
                                 const TrialSeedFn& seed_of = {},
                                 CheckpointSession* session = nullptr,
                                 std::uint64_t point = 0,
                                 const ProgressFn& progress = {});

/// The scenario-driven form: make_instance + run_trial per trial, seeds
/// from Scenario::trial_seed. This is what run_many_parallel, the benches,
/// and `ritcs --mode=run` call.
GuardedResult run_many_guarded(const Scenario& scenario, std::uint64_t trials,
                               unsigned threads, const GuardPolicy& policy,
                               CheckpointSession* session = nullptr,
                               std::uint64_t point = 0,
                               const ProgressFn& progress = {});

}  // namespace rit::sim
