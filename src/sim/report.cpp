#include "sim/report.h"

#include <algorithm>
#include <numeric>
#include <sstream>

#include "common/check.h"
#include "common/format_util.h"
#include "stats/histogram.h"

namespace rit::sim {

std::string markdown_report(const Scenario& scenario,
                            const TrialInstance& instance,
                            const core::RitResult& result,
                            const ReportOptions& options) {
  const std::uint32_t n = instance.population.size();
  RIT_CHECK(result.payment.size() == n);
  RIT_CHECK(instance.tree.num_participants() == n);

  std::ostringstream os;
  os << "# Crowdsensing campaign report\n\n";
  os << "## Scenario\n\n";
  os << "- users: " << n << " across " << scenario.num_types
     << " task types (graph: " << to_string(scenario.graph) << ")\n";
  os << "- job: " << instance.job.total_tasks() << " tasks\n";
  os << "- robustness target H: " << format_double(scenario.mechanism.h, 2)
     << ", discount base "
     << format_double(scenario.mechanism.discount_base, 2) << "\n";
  os << "- seed: " << scenario.seed << "\n\n";

  os << "## Outcome\n\n";
  if (!result.success) {
    os << "**ALLOCATION FAILED** — the job could not be completed within "
          "the round budget; all payments are zero.\n";
    for (const core::TypeAuctionInfo& info : result.type_info) {
      if (info.allocated < info.demanded) {
        os << "- type " << info.type.value << ": " << info.allocated << "/"
           << info.demanded << " after " << info.rounds_used << " round(s)\n";
      }
    }
    return os.str();
  }
  std::uint32_t winners = 0;
  for (std::uint32_t x : result.allocation) winners += x > 0 ? 1 : 0;
  const double premium =
      result.total_payment() - result.total_auction_payment();
  os << "- tasks allocated: " << instance.job.total_tasks() << " to "
     << winners << " workers\n";
  os << "- platform cost: " << format_double(result.total_payment(), 2)
     << " (sensing " << format_double(result.total_auction_payment(), 2)
     << " + solicitation " << format_double(premium, 2) << ")\n";
  os << "- achieved truthfulness bound: "
     << format_double(result.achieved_probability, 4)
     << (result.probability_degraded ? " (degraded — see DESIGN.md)" : "")
     << "\n\n";

  os << "## Per-type auction\n\n";
  os << "| type | demanded | allocated | rounds | budget | round bound |\n";
  os << "|---|---|---|---|---|---|\n";
  for (const core::TypeAuctionInfo& info : result.type_info) {
    os << "| " << info.type.value << " | " << info.demanded << " | "
       << info.allocated << " | " << info.rounds_used << " | "
       << info.budget.max_rounds << " | "
       << format_double(info.budget.per_round_bound, 3) << " |\n";
  }
  os << "\n";

  os << "## Utility distribution (winners and recruiters)\n\n";
  stats::Histogram hist(0.0, 10.0, options.histogram_buckets);
  for (std::uint32_t j = 0; j < n; ++j) {
    const double u = result.utility_of(j, instance.population.costs[j]);
    if (u > 0.0) hist.add(u);
  }
  os << "positive-utility users: " << hist.count() << "\n\n```\n"
     << hist.render(40) << "```\n\n";

  os << "## Top recruiters\n\n";
  std::vector<std::uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
    return result.payment[a] - result.auction_payment[a] >
           result.payment[b] - result.auction_payment[b];
  });
  os << "| user | recruits (subtree) | depth | solicitation reward |\n";
  os << "|---|---|---|---|\n";
  for (std::size_t i = 0; i < options.top_recruiters && i < n; ++i) {
    const std::uint32_t j = order[i];
    const std::uint32_t node = tree::node_of_participant(j);
    os << "| P" << j + 1 << " | " << instance.tree.subtree_size(node) - 1
       << " | " << instance.tree.depth(node) << " | "
       << format_double(result.payment[j] - result.auction_payment[j], 2)
       << " |\n";
  }
  return os.str();
}

std::string aggregate_markdown(const AggregateMetrics& agg) {
  std::ostringstream os;
  os << "## Aggregate over " << agg.trials << " trial(s)\n\n";
  os << "- success rate: " << format_double(agg.success_rate(), 4) << " ("
     << agg.successes << "/" << agg.trials << ")\n";
  os << "- degraded-guarantee rate: " << format_double(agg.degraded_rate(), 4)
     << " (" << agg.degraded_trials << "/" << agg.trials << ")\n";
  // Only surfaced when something actually faulted: default (strict) runs
  // keep their historical byte-identical report.
  if (agg.failed_trials > 0 || agg.quarantined_trials > 0) {
    os << "- faults: " << agg.failed_trials << " failed, "
       << agg.quarantined_trials << " quarantined (" << agg.attempted()
       << " attempted)\n";
  }
  os << "\n";
  os << "| metric | mean | min | max | ci95 |\n";
  os << "|---|---|---|---|---|\n";
  const auto row = [&os](const char* name, const stats::OnlineStats& s) {
    os << "| " << name << " | " << format_double(s.mean(), 4) << " | "
       << format_double(s.min(), 4) << " | " << format_double(s.max(), 4)
       << " | " << format_double(s.ci95_half_width(), 4) << " |\n";
  };
  row("avg utility (auction)", agg.avg_utility_auction);
  row("avg utility (RIT)", agg.avg_utility_rit);
  row("total payment (auction)", agg.total_payment_auction);
  row("total payment (RIT)", agg.total_payment_rit);
  row("runtime auction (ms)", agg.runtime_auction_ms);
  row("runtime RIT (ms)", agg.runtime_rit_ms);
  row("solicitation premium", agg.solicitation_premium);
  row("tasks allocated", agg.tasks_allocated);
  return os.str();
}

}  // namespace rit::sim
