#include "sim/fault.h"

#include <algorithm>
#include <sstream>

#include "common/check.h"

namespace rit::sim {

// Field-coverage guard for merge(): FaultLedger must stay exactly one
// vector of entries. A new field added without extending merge() would be
// silently dropped when per-worker ledgers fold together.
static_assert(sizeof(FaultLedger) == sizeof(std::vector<TrialFault>),
              "FaultLedger changed shape: update merge() in fault.cpp (and "
              "this static_assert) so no field is dropped");

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kException:
      return "exception";
    case FaultKind::kNonFinite:
      return "non-finite";
    case FaultKind::kTimeout:
      return "timeout";
    case FaultKind::kWorkerDeath:
      return "worker-death";
  }
  return "unknown";
}

FaultKind parse_fault_kind(const std::string& name) {
  if (name == "exception") return FaultKind::kException;
  if (name == "non-finite") return FaultKind::kNonFinite;
  if (name == "timeout") return FaultKind::kTimeout;
  if (name == "worker-death") return FaultKind::kWorkerDeath;
  RIT_CHECK_MSG(false, "unknown fault kind '" << name << "'");
  return FaultKind::kException;
}

void FaultLedger::record(std::uint64_t trial, std::uint64_t seed,
                         FaultKind kind, std::string phase,
                         std::string reason) {
  // Reasons land in line-oriented formats (checkpoint, CSV, markdown);
  // flatten any embedded newlines an exception message might carry.
  std::replace(reason.begin(), reason.end(), '\n', ' ');
  std::replace(reason.begin(), reason.end(), '\r', ' ');
  entries.push_back(TrialFault{trial, seed, kind, std::move(phase),
                               std::move(reason)});
}

void FaultLedger::merge(const FaultLedger& other) {
  entries.insert(entries.end(), other.entries.begin(), other.entries.end());
}

std::vector<TrialFault> FaultLedger::sorted_by_trial() const {
  std::vector<TrialFault> out = entries;
  std::stable_sort(out.begin(), out.end(),
                   [](const TrialFault& a, const TrialFault& b) {
                     return a.trial < b.trial;
                   });
  return out;
}

std::string FaultLedger::markdown(std::size_t max_entries) const {
  std::ostringstream os;
  const std::vector<TrialFault> ordered = sorted_by_trial();
  const std::size_t shown = std::min(ordered.size(), max_entries);
  for (std::size_t i = 0; i < shown; ++i) {
    const TrialFault& f = ordered[i];
    os << "- trial " << f.trial << " (seed " << f.seed << ", " << f.phase
       << "): " << to_string(f.kind) << " — " << f.reason << "\n";
  }
  if (ordered.size() > shown) {
    os << "- … and " << ordered.size() - shown << " more\n";
  }
  return os.str();
}

}  // namespace rit::sim
