// Campaign report: one markdown document summarizing a mechanism run —
// scenario, outcome, per-type auction diagnostics, utility distribution,
// top recruiters. The human-facing artifact a platform operator files after
// a campaign; `ritcs --mode=report` emits it.
#pragma once

#include <string>

#include "core/rit.h"
#include "sim/runner.h"

namespace rit::sim {

struct ReportOptions {
  std::size_t top_recruiters = 5;
  std::size_t histogram_buckets = 10;
};

/// Renders the report. `result` must come from running the mechanism on
/// `instance` (sizes are validated).
std::string markdown_report(const Scenario& scenario,
                            const TrialInstance& instance,
                            const core::RitResult& result,
                            const ReportOptions& options = {});

}  // namespace rit::sim
