// Campaign report: one markdown document summarizing a mechanism run —
// scenario, outcome, per-type auction diagnostics, utility distribution,
// top recruiters. The human-facing artifact a platform operator files after
// a campaign; `ritcs --mode=report` emits it.
#pragma once

#include <string>

#include "core/rit.h"
#include "sim/runner.h"

namespace rit::sim {

struct ReportOptions {
  std::size_t top_recruiters = 5;
  std::size_t histogram_buckets = 10;
};

/// Renders the report. `result` must come from running the mechanism on
/// `instance` (sizes are validated).
std::string markdown_report(const Scenario& scenario,
                            const TrialInstance& instance,
                            const core::RitResult& result,
                            const ReportOptions& options = {});

/// Renders a cross-trial aggregate as a markdown table — one row per
/// tracked statistic (mean / min / max / 95% CI) plus the success and
/// degraded-guarantee rates. Covers every AggregateMetrics field, including
/// tasks_allocated and degraded_trials.
std::string aggregate_markdown(const AggregateMetrics& agg);

}  // namespace rit::sim
