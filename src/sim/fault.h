// Trial fault containment: the ledger of quarantined trials.
//
// The fault-tolerant runner (sim/guarded.h) never lets one bad trial take a
// 1000-trial sweep down with it. A trial that throws, exceeds the watchdog
// deadline, or returns non-finite metrics is recorded here — with enough
// context (trial index, seed, phase, reason) to rerun it in isolation — and
// the sweep continues, up to the configured failure budget.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace rit::sim {

enum class FaultKind : std::uint8_t {
  kException,    // the trial threw
  kNonFinite,    // metrics came back NaN/inf
  kTimeout,      // exceeded the --trial-timeout-ms watchdog deadline
  kWorkerDeath,  // a supervised shard process died (signal/OOM/hang); the
                 // entry's trial/seed/phase are the shard's last breadcrumb
};

const char* to_string(FaultKind kind);
/// Inverse of to_string; throws CheckFailure on an unknown name
/// (checkpoint files round-trip kinds through their names).
FaultKind parse_fault_kind(const std::string& name);

/// One contained trial failure. `seed` is the trial's mechanism seed, so
/// `ritcs --mode=run --seed=... --trials=1` style repros are one copy-paste
/// away; `phase` names the stage that faulted (make_instance / run_trial).
struct TrialFault {
  std::uint64_t trial{0};
  std::uint64_t seed{0};
  FaultKind kind{FaultKind::kException};
  std::string phase;
  std::string reason;
};

/// Append-only record of every contained fault in a run. Workers keep one
/// each and the runner merges them in worker-index order, so the final
/// ledger is deterministic for a given thread count.
struct FaultLedger {
  std::vector<TrialFault> entries;

  void record(std::uint64_t trial, std::uint64_t seed, FaultKind kind,
              std::string phase, std::string reason);
  /// Folds another ledger in (parallel combine; appends in call order).
  void merge(const FaultLedger& other);
  bool empty() const { return entries.empty(); }
  std::size_t size() const { return entries.size(); }

  /// Entries ordered by trial index (the merge leaves worker-strided
  /// order); use for any human-facing rendering.
  std::vector<TrialFault> sorted_by_trial() const;

  /// Markdown bullet list of the faults, capped at `max_entries` lines
  /// with a "… and N more" tail.
  std::string markdown(std::size_t max_entries = 10) const;
};

}  // namespace rit::sim
