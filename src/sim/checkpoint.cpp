#include "sim/checkpoint.h"

#include <fstream>
#include <sstream>

#include "common/atomic_file.h"
#include "common/check.h"
#include "common/hash.h"
#include "common/num_io.h"
#include "obs/obs.h"

namespace rit::sim {

namespace {

constexpr const char* kHeader = "ritcs-checkpoint v1";

// Field-coverage guard mirroring metrics.cpp: the (de)serializers below
// enumerate every AggregateMetrics field by hand, so a shape change must
// update them or resumed sweeps would silently drop the new field.
static_assert(sizeof(AggregateMetrics) ==
                  8 * sizeof(stats::OnlineStats) + 5 * sizeof(std::uint64_t),
              "AggregateMetrics changed shape: update write_agg()/read_agg() "
              "in checkpoint.cpp (and this static_assert)");

std::string hex_double(double v) { return rit::format_hex_double(v); }

double parse_hex_double(const std::string& token, const std::string& what) {
  const auto v = rit::parse_double(token);
  RIT_CHECK_MSG(v.has_value(), "checkpoint: bad double for "
                                   << what << ": '" << token << "'");
  return *v;
}

std::uint64_t parse_u64(const std::string& token, const std::string& what) {
  const auto v = rit::parse_u64(token);
  RIT_CHECK_MSG(v.has_value(), "checkpoint: bad integer for "
                                   << what << ": '" << token << "'");
  return *v;
}

/// Strict line reader over the (already checksum-verified) body.
class Reader {
 public:
  explicit Reader(const std::string& content) : in_(content) {}

  /// Next line, which must start with `key`; returns the remainder after
  /// the single separating space ("" when the line is just the key).
  std::string expect_raw(const char* key) {
    std::string line;
    RIT_CHECK_MSG(static_cast<bool>(std::getline(in_, line)),
                  "checkpoint: unexpected end of file, wanted '" << key
                                                                 << "'");
    const std::string k(key);
    RIT_CHECK_MSG(
        line.compare(0, k.size(), k) == 0 &&
            (line.size() == k.size() || line[k.size()] == ' '),
        "checkpoint: expected '" << key << "', found '" << line << "'");
    return line.size() > k.size() ? line.substr(k.size() + 1) : std::string();
  }

  std::vector<std::string> expect(const char* key) {
    std::istringstream ls(expect_raw(key));
    std::vector<std::string> tokens;
    std::string tok;
    while (ls >> tok) tokens.push_back(tok);
    return tokens;
  }

  std::uint64_t expect_u64(const char* key) {
    const auto tokens = expect(key);
    RIT_CHECK_MSG(tokens.size() == 1, "checkpoint: '" << key
                                                      << "' wants one value");
    return parse_u64(tokens[0], key);
  }

  /// Optional read: false at end of input.
  bool try_line(std::string* line) {
    return static_cast<bool>(std::getline(in_, *line));
  }

 private:
  std::istringstream in_;
};

void write_stat(std::ostream& os, const char* name,
                const stats::OnlineStats& s) {
  os << "stat " << name << ' ' << s.count() << ' ' << hex_double(s.raw_mean())
     << ' ' << hex_double(s.raw_m2()) << ' ' << hex_double(s.raw_min()) << ' '
     << hex_double(s.raw_max()) << "\n";
}

stats::OnlineStats read_stat(Reader& r, const char* name) {
  const auto tokens = r.expect("stat");
  RIT_CHECK_MSG(tokens.size() == 6 && tokens[0] == name,
                "checkpoint: expected stat '" << name << "'");
  return stats::OnlineStats::restore(
      static_cast<std::size_t>(parse_u64(tokens[1], name)),
      parse_hex_double(tokens[2], name), parse_hex_double(tokens[3], name),
      parse_hex_double(tokens[4], name), parse_hex_double(tokens[5], name));
}

void write_agg(std::ostream& os, const AggregateMetrics& a) {
  os << "agg " << a.trials << ' ' << a.successes << ' ' << a.degraded_trials
     << ' ' << a.failed_trials << ' ' << a.quarantined_trials << "\n";
  write_stat(os, "avg_utility_auction", a.avg_utility_auction);
  write_stat(os, "avg_utility_rit", a.avg_utility_rit);
  write_stat(os, "total_payment_auction", a.total_payment_auction);
  write_stat(os, "total_payment_rit", a.total_payment_rit);
  write_stat(os, "runtime_auction_ms", a.runtime_auction_ms);
  write_stat(os, "runtime_rit_ms", a.runtime_rit_ms);
  write_stat(os, "solicitation_premium", a.solicitation_premium);
  write_stat(os, "tasks_allocated", a.tasks_allocated);
}

AggregateMetrics read_agg(Reader& r) {
  const auto tokens = r.expect("agg");
  RIT_CHECK_MSG(tokens.size() == 5, "checkpoint: 'agg' wants five counters");
  AggregateMetrics a;
  a.trials = parse_u64(tokens[0], "trials");
  a.successes = parse_u64(tokens[1], "successes");
  a.degraded_trials = parse_u64(tokens[2], "degraded_trials");
  a.failed_trials = parse_u64(tokens[3], "failed_trials");
  a.quarantined_trials = parse_u64(tokens[4], "quarantined_trials");
  a.avg_utility_auction = read_stat(r, "avg_utility_auction");
  a.avg_utility_rit = read_stat(r, "avg_utility_rit");
  a.total_payment_auction = read_stat(r, "total_payment_auction");
  a.total_payment_rit = read_stat(r, "total_payment_rit");
  a.runtime_auction_ms = read_stat(r, "runtime_auction_ms");
  a.runtime_rit_ms = read_stat(r, "runtime_rit_ms");
  a.solicitation_premium = read_stat(r, "solicitation_premium");
  a.tasks_allocated = read_stat(r, "tasks_allocated");
  return a;
}

void write_faults(std::ostream& os, const FaultLedger& ledger) {
  os << "faults " << ledger.entries.size() << "\n";
  for (const TrialFault& f : ledger.entries) {
    os << "fault " << f.trial << ' ' << f.seed << ' ' << to_string(f.kind)
       << ' ' << (f.phase.empty() ? "-" : f.phase) << ' ' << f.reason << "\n";
  }
}

FaultLedger read_faults(Reader& r) {
  const std::uint64_t count = r.expect_u64("faults");
  FaultLedger ledger;
  ledger.entries.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::string rest = r.expect_raw("fault");
    std::istringstream ls(rest);
    std::string trial, seed, kind, phase;
    RIT_CHECK_MSG(static_cast<bool>(ls >> trial >> seed >> kind >> phase),
                  "checkpoint: malformed fault entry '" << rest << "'");
    std::string reason;
    std::getline(ls, reason);
    if (!reason.empty() && reason.front() == ' ') reason.erase(0, 1);
    TrialFault f;
    f.trial = parse_u64(trial, "fault trial");
    f.seed = parse_u64(seed, "fault seed");
    f.kind = parse_fault_kind(kind);
    f.phase = phase == "-" ? std::string() : phase;
    f.reason = std::move(reason);
    ledger.entries.push_back(std::move(f));
  }
  return ledger;
}

void write_worker(std::ostream& os, const WorkerCheckpoint& w) {
  write_agg(os, w.agg);
  write_faults(os, w.faults);
}

WorkerCheckpoint read_worker(Reader& r) {
  WorkerCheckpoint w;
  w.agg = read_agg(r);
  w.faults = read_faults(r);
  return w;
}

}  // namespace

std::string serialize_checkpoint(const CheckpointData& data) {
  std::ostringstream os;
  os << kHeader << "\n";
  os << "config " << data.config_hash << "\n";
  os << "seed " << data.seed << "\n";
  os << "threads " << data.threads << "\n";
  os << "trials " << data.trials << "\n";
  os << "every " << data.every << "\n";
  os << "completed " << data.completed.size() << "\n";
  for (std::size_t i = 0; i < data.completed.size(); ++i) {
    os << "point " << i << "\n";
    write_worker(os, data.completed[i]);
  }
  if (data.has_partial) {
    os << "partial " << data.partial_point << ' ' << data.partial_cursor
       << ' ' << data.partial_workers.size() << "\n";
    for (std::size_t w = 0; w < data.partial_workers.size(); ++w) {
      os << "worker " << w << "\n";
      write_worker(os, data.partial_workers[w]);
    }
  }
  std::string body = os.str();
  body += "checksum " + format_u64(fnv1a64(body)) + "\n";
  return body;
}

CheckpointData parse_checkpoint(const std::string& content,
                                const std::string& path_for_errors) {
  // Checksum first: a truncated or bit-flipped file must be rejected with
  // one clear message before the structured parse sees it.
  const std::size_t at = content.rfind("\nchecksum ");
  RIT_CHECK_MSG(at != std::string::npos && content.back() == '\n',
                "checkpoint '" << path_for_errors
                               << "': missing checksum footer (truncated "
                                  "file?); refusing to resume");
  const std::string body = content.substr(0, at + 1);
  const std::string footer = content.substr(at + 1);
  std::istringstream fs(footer);
  std::string key, value;
  fs >> key >> value;
  const std::uint64_t want = parse_u64(value, "checksum");
  RIT_CHECK_MSG(fnv1a64(body) == want,
                "checkpoint '" << path_for_errors
                               << "': checksum mismatch (corrupt file); "
                                  "refusing to resume");

  Reader r(body);
  const std::string header = r.expect_raw(kHeader);
  RIT_CHECK_MSG(header.empty(), "checkpoint '"
                                    << path_for_errors
                                    << "': bad header; refusing to resume");
  CheckpointData data;
  data.config_hash = r.expect_u64("config");
  data.seed = r.expect_u64("seed");
  data.threads = static_cast<unsigned>(r.expect_u64("threads"));
  data.trials = r.expect_u64("trials");
  data.every = r.expect_u64("every");
  const std::uint64_t completed = r.expect_u64("completed");
  data.completed.reserve(completed);
  for (std::uint64_t i = 0; i < completed; ++i) {
    const std::uint64_t point = r.expect_u64("point");
    RIT_CHECK_MSG(point == i, "checkpoint '" << path_for_errors
                                             << "': points out of order");
    data.completed.push_back(read_worker(r));
  }
  std::string line;
  if (r.try_line(&line)) {
    std::istringstream ls(line);
    std::string pkey, ppoint, pcursor, pworkers;
    RIT_CHECK_MSG(
        static_cast<bool>(ls >> pkey >> ppoint >> pcursor >> pworkers) &&
            pkey == "partial",
        "checkpoint '" << path_for_errors << "': unexpected trailing line '"
                       << line << "'");
    data.has_partial = true;
    data.partial_point = parse_u64(ppoint, "partial point");
    data.partial_cursor = parse_u64(pcursor, "partial cursor");
    RIT_CHECK_MSG(data.partial_point == data.completed.size(),
                  "checkpoint '" << path_for_errors
                                 << "': partial point out of order");
    const std::uint64_t worker_count = parse_u64(pworkers, "partial workers");
    data.partial_workers.reserve(worker_count);
    for (std::uint64_t w = 0; w < worker_count; ++w) {
      const std::uint64_t index = r.expect_u64("worker");
      RIT_CHECK_MSG(index == w, "checkpoint '" << path_for_errors
                                               << "': workers out of order");
      data.partial_workers.push_back(read_worker(r));
    }
    RIT_CHECK_MSG(!r.try_line(&line),
                  "checkpoint '" << path_for_errors
                                 << "': trailing data after partial state");
  }
  return data;
}

namespace {

constexpr const char* kAbortedHeader = "ritcs-aborted v1";

}  // namespace

AbortedRecord parse_aborted(const std::string& content,
                            const std::string& path_for_errors) {
  std::istringstream in(content);
  std::string header, point_line, reason_line;
  RIT_CHECK_MSG(static_cast<bool>(std::getline(in, header)) &&
                    header == kAbortedHeader,
                "aborted record '" << path_for_errors
                                   << "': bad header '" << header << "'");
  RIT_CHECK_MSG(static_cast<bool>(std::getline(in, point_line)) &&
                    point_line.compare(0, 6, "point ") == 0,
                "aborted record '" << path_for_errors
                                   << "': missing point line");
  RIT_CHECK_MSG(static_cast<bool>(std::getline(in, reason_line)) &&
                    reason_line.compare(0, 7, "reason ") == 0,
                "aborted record '" << path_for_errors
                                   << "': missing reason line");
  AbortedRecord rec;
  rec.point = parse_u64(point_line.substr(6), "aborted point");
  rec.reason = reason_line.substr(7);
  std::ostringstream rest;
  rest << in.rdbuf();
  const CheckpointData data = parse_checkpoint(rest.str(), path_for_errors);
  RIT_CHECK_MSG(data.completed.size() == 1,
                "aborted record '" << path_for_errors
                                   << "': wants exactly one partial result");
  rec.partial.metrics = data.completed[0].agg;
  rec.partial.faults = data.completed[0].faults;
  return rec;
}

namespace {

void check_binding(const std::string& path, const char* what,
                   std::uint64_t file_value, std::uint64_t run_value) {
  RIT_CHECK_MSG(file_value == run_value,
                "checkpoint '" << path << "': " << what << " mismatch (file "
                               << file_value << ", run " << run_value
                               << "); refusing to resume");
}

}  // namespace

CheckpointSession::CheckpointSession(Params params)
    : params_(std::move(params)) {
  RIT_CHECK_MSG(!params_.path.empty(), "checkpoint: empty path");
  RIT_CHECK_MSG(params_.threads >= 1, "checkpoint: threads must be >= 1");
  data_.config_hash = params_.config_hash;
  data_.seed = params_.seed;
  data_.threads = params_.threads;
  data_.trials = params_.trials;
  data_.every = params_.every;
  if (!params_.resume) return;
  std::ifstream in(params_.path, std::ios::binary);
  if (!in.good()) return;  // --resume with no file yet: fresh start
  std::ostringstream ss;
  ss << in.rdbuf();
  CheckpointData loaded = parse_checkpoint(ss.str(), params_.path);
  // The file must describe the exact run being resumed: same config, same
  // seed, same thread count (the strided partition — and hence bit-exact
  // per-worker state — is a function of it), same trial count + interval.
  check_binding(params_.path, "config hash", loaded.config_hash,
                params_.config_hash);
  check_binding(params_.path, "seed", loaded.seed, params_.seed);
  check_binding(params_.path, "thread count", loaded.threads,
                params_.threads);
  check_binding(params_.path, "trials per point", loaded.trials,
                params_.trials);
  check_binding(params_.path, "checkpoint interval", loaded.every,
                params_.every);
  data_ = std::move(loaded);
  RIT_COUNTER_INC("sim.checkpoints_resumed");
}

bool CheckpointSession::completed_point(std::uint64_t point,
                                        GuardedResult* out) const {
  if (point >= data_.completed.size()) return false;
  const WorkerCheckpoint& w = data_.completed[point];
  out->metrics = w.agg;
  out->faults = w.faults;
  return true;
}

bool CheckpointSession::partial_state(
    std::uint64_t point, std::uint64_t* cursor,
    std::vector<WorkerCheckpoint>* workers) const {
  if (!data_.has_partial || data_.partial_point != point) return false;
  *cursor = data_.partial_cursor;
  *workers = data_.partial_workers;
  return true;
}

void CheckpointSession::save_partial(std::uint64_t point,
                                     std::uint64_t cursor,
                                     std::vector<WorkerCheckpoint> workers) {
  RIT_CHECK_MSG(point == data_.completed.size(),
                "checkpoint: partial point " << point << " out of order ("
                                             << data_.completed.size()
                                             << " completed)");
  data_.has_partial = true;
  data_.partial_point = point;
  data_.partial_cursor = cursor;
  data_.partial_workers = std::move(workers);
  save();
}

void CheckpointSession::complete_point(std::uint64_t point,
                                       const GuardedResult& result) {
  RIT_CHECK_MSG(point == data_.completed.size(),
                "checkpoint: completed point " << point << " out of order ("
                                               << data_.completed.size()
                                               << " completed)");
  data_.completed.push_back(WorkerCheckpoint{result.metrics, result.faults});
  data_.has_partial = false;
  data_.partial_workers.clear();
  save();
}

void CheckpointSession::save_aborted(std::uint64_t point,
                                     const GuardedResult& partial,
                                     const std::string& reason) const {
  // One completed-point image carries the partial merge; the surrounding
  // header pins the point index and the human-readable reason. The reason
  // is flattened to one line (the record is line-oriented).
  CheckpointData data;
  data.config_hash = params_.config_hash;
  data.seed = params_.seed;
  data.threads = params_.threads;
  data.trials = params_.trials;
  data.every = params_.every;
  data.completed.push_back(WorkerCheckpoint{partial.metrics, partial.faults});
  std::string flat = reason;
  for (char& ch : flat) {
    if (ch == '\n' || ch == '\r') ch = ' ';
  }
  std::ostringstream os;
  os << kAbortedHeader << "\n"
     << "point " << point << "\n"
     << "reason " << flat << "\n"
     << serialize_checkpoint(data);
  write_file_atomic(aborted_path(), os.str());
  RIT_COUNTER_INC("sim.aborts_flushed");
}

void CheckpointSession::save() {
  RIT_TRACE_SPAN("sim.checkpoint_save");
  write_file_atomic(params_.path, serialize_checkpoint(data_));
  ++written_;
  RIT_COUNTER_INC("sim.checkpoints_written");
}

}  // namespace rit::sim
