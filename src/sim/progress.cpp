#include "sim/progress.h"

#include <chrono>
#include <utility>

namespace rit::sim {

namespace {
std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
}  // namespace

ProgressThrottle::ProgressThrottle(std::uint64_t min_interval_ns,
                                   std::function<std::uint64_t()> now_ns)
    : min_interval_ns_(min_interval_ns), now_ns_(std::move(now_ns)) {
  if (!now_ns_) now_ns_ = steady_now_ns;
}

bool ProgressThrottle::should_fire(bool is_final) {
  const std::uint64_t now = now_ns_();
  if (is_final || !fired_before_ || now - last_fire_ns_ >= min_interval_ns_) {
    fired_before_ = true;
    last_fire_ns_ = now;
    return true;
  }
  return false;
}

}  // namespace rit::sim
