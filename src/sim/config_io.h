// Scenario (de)serialization: a plain "key = value" config format so
// experiments can be described in files, diffed, and attached to results.
//
//   # spectrum sensing, paper scale
//   users = 40000
//   types = 10
//   tasks_per_type = 5000
//   h = 0.8
//   graph = ba
//   policy = completion
//
// Unknown keys are rejected (typos should fail loudly, not silently run the
// wrong experiment).
#pragma once

#include <iosfwd>
#include <string>

#include "sim/scenario.h"

namespace rit::sim {

/// Parses a config stream into a Scenario, starting from defaults. Throws
/// CheckFailure on malformed lines, unknown keys, or invalid values.
Scenario read_scenario(std::istream& in);

/// Convenience: parse from a file path.
Scenario read_scenario_file(const std::string& path);

/// Writes every Scenario field in the same format (round-trips through
/// read_scenario).
void write_scenario(const Scenario& scenario, std::ostream& out);

}  // namespace rit::sim
