// Failure injection: participants dropping out between solicitation and
// the auction.
//
// Real crowdsensing users uninstall the app, leave the area, or go offline
// after joining the tree. The mechanism itself never sees them (they submit
// no ask), but their *position* in the tree matters: their recruits'
// referral chains already happened, so when P_j vanishes its children are
// re-attached to P_j's parent (the platform keeps the recorded solicitation
// edges minus the dead node). This module rewrites an instance accordingly
// and is the substrate for the dropout-robustness tests and ablation.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/types.h"
#include "rng/rng.h"
#include "tree/incentive_tree.h"

namespace rit::sim {

struct DropoutResult {
  tree::IncentiveTree tree;
  std::vector<core::Ask> asks;
  /// survivor_of_new[i]: original participant index of new participant i.
  std::vector<std::uint32_t> original_of;
  /// new_of_original[j]: new index of original participant j, or kDropped.
  std::vector<std::uint32_t> new_of_original;
  static constexpr std::uint32_t kDropped = 0xffffffff;
};

/// Removes the given participants (deduplicated) from an instance. Children
/// of a removed node are spliced to its closest surviving ancestor (or the
/// platform). Survivors keep their relative order.
DropoutResult remove_participants(const tree::IncentiveTree& tree,
                                  std::span<const core::Ask> asks,
                                  std::span<const std::uint32_t> dropouts);

/// Drops each participant independently with probability `rate`.
DropoutResult random_dropout(const tree::IncentiveTree& tree,
                             std::span<const core::Ask> asks, double rate,
                             rng::Rng& rng);

}  // namespace rit::sim
