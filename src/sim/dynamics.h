// Discrete-event solicitation dynamics.
//
// The static tree builders answer "what does the tree look like when
// solicitation is done"; this module answers "how does the campaign unfold
// over time" — the dimension the paper's DARPA Network Challenge anecdote
// (4,400 participants in nine hours) lives in. Each joined user invites its
// social-graph neighbours after an exponential think-time; each invitee
// accepts its first arriving invitation with some probability after its own
// decision delay. The simulation stops at a user threshold (the paper's N),
// a supply target (Remark 6.1), a deadline, or when the cascade dies out.
//
// Everything is deterministic given the Rng, and the resulting tree is a
// drop-in input for run_rit().
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/types.h"
#include "graph/graph.h"
#include "rng/rng.h"
#include "sim/workload.h"
#include "tree/incentive_tree.h"

namespace rit::sim {

struct DynamicsOptions {
  /// Mean think-time between a user joining and each of its invitations
  /// going out (each invitation gets an independent exponential delay).
  double invite_delay_mean = 1.0;
  /// Mean time an invitee deliberates before joining.
  double decision_delay_mean = 0.5;
  /// Probability an invitation is accepted. Declined invitations burn that
  /// inviter's chance; another neighbour may still recruit the user later.
  double acceptance_prob = 0.7;
  /// Graph nodes that join at time 0 (children of the platform).
  std::vector<std::uint32_t> seeds{0};
  /// Stop once this many users joined (the paper's N).
  std::optional<std::uint32_t> max_users;
  /// Stop at this simulation time.
  std::optional<double> deadline;
  /// If > 0, stop when per-type supply reaches supply_multiple * m_i
  /// (Remark 6.1); requires `job` in simulate_solicitation.
  double supply_multiple = 0.0;
  /// Churn: each joined user independently departs after an exponential
  /// lifetime with this mean (0 = nobody leaves). Departed users still
  /// occupy their tree position (their referrals happened) but no longer
  /// count toward the supply target, and `departed` reports them so the
  /// caller can strip their asks (sim/failures.h) before the auction.
  double lifetime_mean = 0.0;
};

struct DynamicsResult {
  tree::IncentiveTree tree;
  /// Graph node of each participant, in join order.
  std::vector<std::uint32_t> joined;
  /// Join time of each participant (seeds at 0).
  std::vector<double> join_time;
  /// Time the simulation stopped.
  double end_time{0.0};
  /// Why it stopped.
  enum class StopReason { kCascadeDied, kMaxUsers, kDeadline, kSupplyMet };
  StopReason stop_reason{StopReason::kCascadeDied};
  /// Per-type unit supply among joined users (empty if no job given).
  /// With churn enabled this counts only users still present at end_time.
  std::vector<std::uint64_t> supply_by_type;
  /// Participants (indices into `joined`) who departed before end_time;
  /// empty without churn.
  std::vector<std::uint32_t> departed;

  /// Number of users joined at or before time t.
  std::size_t joined_by(double t) const;
};

/// Simulates the cascade. `population` supplies each graph node's ask (for
/// the supply target); pass `job == nullptr` to disable supply tracking.
DynamicsResult simulate_solicitation(const graph::Graph& g,
                                     const Population& population,
                                     const core::Job* job,
                                     const DynamicsOptions& options,
                                     rng::Rng& rng);

}  // namespace rit::sim
