// Parallel trial fan-out for the sweeps and benches.
//
// Every trial derives its random streams from (scenario seed, trial index),
// so trials share nothing and any partition over workers is valid. The
// helpers here fix the partition (strided, via rit::parallel_for_strided)
// and the reporting discipline so that every caller gets the same two
// guarantees:
//
//   * determinism — worker w handles trials w, w+T, w+2T, ...; each worker
//     folds into its own caller-owned context, and the caller merges the
//     contexts in worker-index order afterwards. The result depends only on
//     T, never on scheduling.
//   * throttled, monotone progress — workers funnel completions through one
//     SharedProgress, which rate-limits like the serial ProgressThrottle
//     and never reports a smaller count after a larger one.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

#include "common/parallel.h"
#include "sim/progress.h"

namespace rit::sim {

using ProgressFn = std::function<void(std::uint64_t, std::uint64_t)>;

/// Thread-safe progress fan-in: workers call tick() once per finished trial;
/// the wrapped callback fires at most once per throttle interval, with a
/// monotonically increasing completed count, and always fires for the final
/// trial. The callback itself runs under a mutex, so it may be a plain
/// stderr writer.
class SharedProgress {
 public:
  /// `initial` pre-counts trials already completed (a resumed sweep starts
  /// its reporting from the checkpoint cursor, not from zero).
  SharedProgress(ProgressFn fn, std::uint64_t total, std::uint64_t initial = 0)
      : fn_(std::move(fn)), total_(total), done_(initial),
        reported_(initial) {}

  void tick() {
    if (!fn_) return;
    const std::uint64_t done = done_.fetch_add(1, std::memory_order_relaxed) + 1;
    std::lock_guard<std::mutex> lock(mu_);
    if (done <= reported_) return;  // a concurrent tick already covered us
    if (!throttle_.should_fire(done == total_)) return;
    reported_ = done;
    fn_(done, total_);
  }

 private:
  ProgressFn fn_;
  std::uint64_t total_;
  std::atomic<std::uint64_t> done_{0};
  std::mutex mu_;
  std::uint64_t reported_{0};
  ProgressThrottle throttle_;
};

/// Runs body(contexts[w], trial) for every trial in [0, trials), strided
/// across contexts.size() workers. The caller sizes `contexts` — one
/// per-worker accumulator/workspace bundle, typically via
/// rit::resolve_threads(threads, trials) — and merges them in index order
/// afterwards; that merge order is what makes the result deterministic.
/// With a single context the loop runs inline on the calling thread, which
/// is bit-for-bit the serial path.
template <typename Context, typename Body>
void parallel_trials(std::uint64_t trials, std::vector<Context>& contexts,
                     Body&& body, const ProgressFn& progress = {}) {
  SharedProgress shared(progress, trials);
  rit::parallel_for_strided(
      trials, static_cast<unsigned>(contexts.size()),
      [&](std::uint64_t trial, unsigned worker) {
        body(contexts[worker], trial);
        shared.tick();
      });
}

}  // namespace rit::sim
