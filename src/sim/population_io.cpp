#include "sim/population_io.h"

#include <fstream>
#include <sstream>

#include "common/atomic_file.h"
#include "common/check.h"
#include "common/num_io.h"

namespace rit::sim {

Population read_population(std::istream& in) {
  Population pop;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (const auto hash = line.find('#'); hash != std::string::npos) {
      line.erase(hash);
    }
    // Commas become spaces; then whitespace-tokenize.
    for (char& ch : line) {
      if (ch == ',') ch = ' ';
    }
    std::istringstream ls(line);
    std::string first;
    if (!(ls >> first)) continue;  // blank line
    if (first == "type") continue;  // header row
    const auto type = rit::parse_u32(first);
    RIT_CHECK_MSG(type.has_value(), "population line " << line_no
                                                       << ": bad type '"
                                                       << first << "'");
    std::string qty_tok;
    std::string cost_tok;
    RIT_CHECK_MSG(static_cast<bool>(ls >> qty_tok >> cost_tok),
                  "population line " << line_no
                                     << ": want 'type quantity cost'");
    std::string trailing;
    RIT_CHECK_MSG(!(ls >> trailing),
                  "population line " << line_no << ": trailing tokens");
    const auto quantity = rit::parse_u32(qty_tok);
    RIT_CHECK_MSG(quantity.has_value(), "population line " << line_no
                                                           << ": bad quantity '"
                                                           << qty_tok << "'");
    const auto cost = rit::parse_double(cost_tok);
    RIT_CHECK_MSG(cost.has_value(), "population line " << line_no
                                                       << ": bad cost '"
                                                       << cost_tok << "'");
    RIT_CHECK_MSG(*quantity >= 1 && *cost > 0.0,
                  "population line " << line_no
                                     << ": quantity/cost out of range");
    pop.truthful_asks.push_back(core::Ask{TaskType{*type}, *quantity, *cost});
    pop.costs.push_back(*cost);
  }
  RIT_CHECK_MSG(pop.size() > 0, "population file contained no users");
  return pop;
}

Population read_population_file(const std::string& path) {
  std::ifstream in(path);
  RIT_CHECK_MSG(in.good(), "cannot open population file: " << path);
  return read_population(in);
}

void write_population(const Population& population, std::ostream& out) {
  out << "type,quantity,cost\n";
  for (std::size_t j = 0; j < population.size(); ++j) {
    const core::Ask& a = population.truthful_asks[j];
    out << a.type.value << ',' << a.quantity << ','
        << rit::format_hex_double(population.costs[j]) << '\n';
  }
}

void write_population_file(const Population& population,
                           const std::string& path) {
  std::ostringstream out;
  write_population(population, out);
  rit::write_file_atomic(path, out.str());
}

}  // namespace rit::sim
