// Deterministic sweep checkpoints: versioned, checksummed, atomic.
//
// A sweep's durable progress is (per grid point) either a completed
// aggregate or a partial cut: the next-trial cursor plus every worker's
// Welford/ledger state. Because the guarded runner's strided partition and
// worker-order merge are pure functions of (trials, threads), restoring
// those worker states and continuing produces bit-identical final
// aggregates to an uninterrupted run — see docs/robustness.md.
//
// Format "ritcs-checkpoint v1": line-oriented text, doubles as C hex-floats
// (%a, bit-exact — the result_io idiom), a header binding the file to
// (config hash, seed, threads, trials, checkpoint interval), and an FNV-1a
// checksum footer. Files are only ever replaced via write-fsync-rename
// (common/atomic_file.h), so a killed process leaves the previous complete
// checkpoint, never a torn one. Loading validates version, checksum, and
// every header binding; any mismatch refuses to resume with a clear error.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "sim/fault.h"
#include "sim/metrics.h"

namespace rit::sim {

/// One worker's resumable state at a checkpoint cut (also the shape of a
/// completed point: its merged aggregate + ledger).
struct WorkerCheckpoint {
  AggregateMetrics agg;
  FaultLedger faults;
};

/// The aggregate + fault ledger a guarded run returns (and a completed
/// checkpoint point stores).
struct GuardedResult {
  AggregateMetrics metrics;
  FaultLedger faults;
};

/// In-memory image of a checkpoint file.
struct CheckpointData {
  std::uint64_t config_hash{0};
  std::uint64_t seed{0};
  unsigned threads{1};
  std::uint64_t trials{0};  // trials per grid point
  std::uint64_t every{0};   // checkpoint interval in trials (0 = per point)
  /// Completed grid points, in sweep order (index == point index).
  std::vector<WorkerCheckpoint> completed;
  /// At most one in-flight point: trials [0, partial_cursor) are folded
  /// into partial_workers (one entry per worker, index order).
  bool has_partial{false};
  std::uint64_t partial_point{0};
  std::uint64_t partial_cursor{0};
  std::vector<WorkerCheckpoint> partial_workers;
};

/// Serializes/parses the format (exposed for tests; parse validates the
/// checksum and structure, throwing CheckFailure on any corruption).
std::string serialize_checkpoint(const CheckpointData& data);
CheckpointData parse_checkpoint(const std::string& content,
                                const std::string& path_for_errors);

/// Forensic record of an aborted sweep point: the partial aggregate and
/// fault ledger the run had folded when it gave up, plus why. Written to
/// `<checkpoint path>.aborted` — deliberately NOT a resumable cut (at
/// abort time the per-worker states are mid-chunk and no cursor describes
/// them consistently), just the evidence an operator needs.
struct AbortedRecord {
  std::uint64_t point{0};
  std::string reason;
  GuardedResult partial;
};

/// Parses the `.aborted` artifact (header + reason + a checksummed
/// checkpoint body carrying the partial result); throws CheckFailure on
/// any corruption.
AbortedRecord parse_aborted(const std::string& content,
                            const std::string& path_for_errors);

/// One sweep's checkpoint lifecycle: load-or-create, per-point queries,
/// atomic saves. Construction with resume=true validates an existing file
/// against the run's bindings and refuses to resume on mismatch; with
/// resume=false any existing file is superseded by the first save.
class CheckpointSession {
 public:
  struct Params {
    std::string path;
    std::uint64_t config_hash{0};
    std::uint64_t seed{0};
    unsigned threads{1};
    std::uint64_t trials{0};
    std::uint64_t every{0};
    bool resume{false};
  };

  explicit CheckpointSession(Params params);

  /// True (and fills *out) when `point` already completed in the loaded
  /// checkpoint — the runner skips it entirely.
  bool completed_point(std::uint64_t point, GuardedResult* out) const;

  /// True when `point` has a partial cut to resume from; fills the
  /// next-trial cursor and the per-worker states.
  bool partial_state(std::uint64_t point, std::uint64_t* cursor,
                     std::vector<WorkerCheckpoint>* workers) const;

  /// Records a mid-point cut and writes the file atomically.
  void save_partial(std::uint64_t point, std::uint64_t cursor,
                    std::vector<WorkerCheckpoint> workers);

  /// Marks `point` complete (clearing any partial cut) and writes.
  void complete_point(std::uint64_t point, const GuardedResult& result);

  /// Flushes a forensic `.aborted` artifact next to the checkpoint file
  /// (see AbortedRecord): the partial aggregate + fault ledger at the
  /// moment the run gave up, and the abort reason. Does not touch the
  /// checkpoint file itself.
  void save_aborted(std::uint64_t point, const GuardedResult& partial,
                    const std::string& reason) const;

  /// The `.aborted` sibling path this session writes.
  std::string aborted_path() const { return params_.path + ".aborted"; }

  std::uint64_t checkpoints_written() const { return written_; }
  const Params& params() const { return params_; }

 private:
  void save();

  Params params_;
  CheckpointData data_;
  std::uint64_t written_{0};
};

}  // namespace rit::sim
