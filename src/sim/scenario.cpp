#include "sim/scenario.h"

#include "common/check.h"
#include "rng/splitmix64.h"

namespace rit::sim {

GraphKind parse_graph_kind(const std::string& name) {
  if (name == "ba") return GraphKind::kBarabasiAlbert;
  if (name == "er") return GraphKind::kErdosRenyi;
  if (name == "ws") return GraphKind::kWattsStrogatz;
  if (name == "cm") return GraphKind::kConfigurationModel;
  if (name == "star") return GraphKind::kStar;
  if (name == "path") return GraphKind::kPath;
  RIT_CHECK_MSG(false, "unknown graph kind: " << name
                                              << " (want ba|er|ws|cm|star|path)");
  return GraphKind::kBarabasiAlbert;  // unreachable
}

std::string to_string(GraphKind kind) {
  switch (kind) {
    case GraphKind::kBarabasiAlbert:
      return "ba";
    case GraphKind::kErdosRenyi:
      return "er";
    case GraphKind::kWattsStrogatz:
      return "ws";
    case GraphKind::kConfigurationModel:
      return "cm";
    case GraphKind::kStar:
      return "star";
    case GraphKind::kPath:
      return "path";
  }
  return "?";
}

std::uint64_t Scenario::trial_seed(std::uint64_t trial,
                                   std::uint64_t component) const {
  // Mix (seed, trial, component) through SplitMix64 so neighbouring trials
  // and components get unrelated streams.
  rng::SplitMix64 sm(seed ^ (0x9e3779b97f4a7c15ULL * (trial + 1)));
  std::uint64_t s = sm.next();
  rng::SplitMix64 sm2(s ^ (0xc2b2ae3d27d4eb4fULL * (component + 1)));
  return sm2.next();
}

}  // namespace rit::sim
