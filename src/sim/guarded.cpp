#include "sim/guarded.h"

#include <atomic>
#include <cmath>
#include <exception>
#include <mutex>
#include <sstream>
#include <vector>

#include "common/check.h"
#include "common/parallel.h"
#include "obs/obs.h"
#include "sim/runner.h"
#include "stats/timer.h"

namespace rit::sim {

namespace {

// Quarantine predicate: every double the aggregates fold must be finite,
// or one poisoned trial turns the whole sweep's Welford state into NaN.
bool all_finite(const TrialMetrics& m) {
  return std::isfinite(m.avg_utility_auction) &&
         std::isfinite(m.avg_utility_rit) &&
         std::isfinite(m.total_payment_auction) &&
         std::isfinite(m.total_payment_rit) &&
         std::isfinite(m.runtime_auction_ms) &&
         std::isfinite(m.runtime_rit_ms) &&
         std::isfinite(m.solicitation_premium);
}

struct WorkerState {
  AggregateMetrics agg;
  FaultLedger faults;
  obs::Registry metrics;
  core::RitWorkspace ws;
};

}  // namespace

GuardedResult run_trials_guarded(std::uint64_t trials, unsigned threads,
                                 const GuardPolicy& policy,
                                 const TrialBody& body,
                                 const TrialSeedFn& seed_of,
                                 CheckpointSession* session,
                                 std::uint64_t point,
                                 const ProgressFn& progress) {
  const unsigned resolved = rit::resolve_threads(threads, trials);
  if (session != nullptr) {
    // The strided partition (and so every worker's resumable state) is a
    // function of the resolved thread count; the session's binding was
    // validated against the file, this validates the runner against the
    // session.
    RIT_CHECK_MSG(session->params().threads == resolved,
                  "checkpoint session bound to "
                      << session->params().threads << " thread(s), run has "
                      << resolved);
    RIT_CHECK_MSG(session->params().trials == trials,
                  "checkpoint session bound to " << session->params().trials
                                                 << " trial(s), run has "
                                                 << trials);
    GuardedResult done;
    if (session->completed_point(point, &done)) return done;
  }

  std::vector<WorkerState> workers(resolved);
  std::uint64_t start = 0;
  if (session != nullptr) {
    std::uint64_t cursor = 0;
    std::vector<WorkerCheckpoint> saved;
    if (session->partial_state(point, &cursor, &saved)) {
      RIT_CHECK_MSG(saved.size() == resolved,
                    "checkpoint partial state has " << saved.size()
                                                    << " worker(s), run has "
                                                    << resolved);
      RIT_CHECK_MSG(cursor <= trials, "checkpoint cursor " << cursor
                                                           << " beyond "
                                                           << trials
                                                           << " trials");
      for (unsigned w = 0; w < resolved; ++w) {
        workers[w].agg = saved[w].agg;
        workers[w].faults = saved[w].faults;
      }
      start = cursor;
      RIT_COUNTER_ADD("sim.trials_resumed", start);
    }
  }

  std::uint64_t restored_faults = 0;
  for (const WorkerState& w : workers) restored_faults += w.faults.size();
  std::atomic<std::uint64_t> fault_count{restored_faults};
  std::atomic<bool> aborting{false};
  std::mutex abort_mu;
  std::exception_ptr abort_error;
  std::string abort_reason;

  // Per-trial timing stat only on the genuinely parallel path, mirroring
  // the pre-guarded split between run_many and run_many_parallel (keeps
  // --threads=1 metrics output byte-identical).
  const bool record_trial_stat = resolved > 1;

  const auto note_fault = [&](WorkerState& w, std::uint64_t t, FaultKind kind,
                              const std::string& phase, std::string reason) {
    const std::uint64_t seed = seed_of ? seed_of(t) : t;
    w.faults.record(t, seed, kind, phase, reason);
    if (kind == FaultKind::kNonFinite) {
      w.agg.note_quarantined();
      RIT_COUNTER_INC("sim.trials_quarantined");
    } else {
      w.agg.note_failed();
      RIT_COUNTER_INC("sim.trials_failed");
    }
    // Per-kind breakdown so --metrics-out carries the FaultLedger story
    // (quarantines vs watchdog overruns vs throws), not only .faults.csv.
    switch (kind) {
      case FaultKind::kException:
        RIT_COUNTER_INC("sim.faults_exception");
        break;
      case FaultKind::kTimeout:
        RIT_COUNTER_INC("sim.faults_timeout");
        break;
      case FaultKind::kNonFinite:
        RIT_COUNTER_INC("sim.faults_nonfinite");
        break;
      case FaultKind::kWorkerDeath:
        // Worker deaths are recorded by the supervisor (src/platform/),
        // never by the in-process containment path; the case exists so the
        // switch stays exhaustive.
        RIT_COUNTER_INC("sim.faults_worker_death");
        break;
    }
    const std::uint64_t count =
        fault_count.fetch_add(1, std::memory_order_relaxed) + 1;
    if (count > policy.max_trial_failures) {
      std::lock_guard<std::mutex> lock(abort_mu);
      if (!abort_error) {
        std::ostringstream os;
        os << "trial " << t << " (seed " << seed << ", " << phase << ") "
           << to_string(kind) << ": " << reason
           << " — failure budget exhausted (" << count << " fault(s) > "
              "--max-trial-failures=" << policy.max_trial_failures << ")";
        abort_reason = os.str();
        abort_error = std::make_exception_ptr(rit::CheckFailure(abort_reason));
      }
      aborting.store(true, std::memory_order_relaxed);
    }
  };

  const auto run_one = [&](WorkerState& w, std::uint64_t t) {
    std::string phase = "trial";
    stats::Timer watchdog;
    TrialMetrics m;
    bool ok = true;
    try {
      chaos::inject_before_trial(policy.chaos, t);
      if (record_trial_stat) {
        stats::Timer trial_timer;
        m = body(t, w.ws, &phase);
        const double ms = trial_timer.elapsed_ms();
        w.metrics.stat("sim.trial_ms").observe(ms);
        // Index-keyed sample: trial t always lands in slot t regardless of
        // which worker ran it, so the captured set (and the p50/p95/p99
        // derived from it) is identical for every thread count.
        w.metrics.reservoir("sim.trial_ms").observe(t, ms);
      } else {
        m = body(t, w.ws, &phase);
      }
      chaos::inject_after_trial(policy.chaos, t, m);
    } catch (const std::exception& e) {
      note_fault(w, t, FaultKind::kException, phase, e.what());
      ok = false;
    } catch (...) {  // contained, not swallowed: recorded + counted above
      note_fault(w, t, FaultKind::kException, phase, "unknown exception");
      ok = false;
    }
    if (ok && policy.trial_timeout_ms > 0.0 &&
        watchdog.elapsed_ms() > policy.trial_timeout_ms) {
      std::ostringstream os;
      os << "trial took " << watchdog.elapsed_ms()
         << " ms, over --trial-timeout-ms=" << policy.trial_timeout_ms;
      note_fault(w, t, FaultKind::kTimeout, phase, os.str());
      ok = false;
    }
    if (ok && !all_finite(m)) {
      note_fault(w, t, FaultKind::kNonFinite, phase,
                 "non-finite metric value");
      ok = false;
    }
    if (ok) w.agg.add(m);
  };

  SharedProgress shared(progress, trials, start);
  const std::uint64_t every =
      session != nullptr ? session->params().every : 0;

  std::uint64_t next = start;
  while (next < trials) {
    // Chunked execution: a barrier per checkpoint interval. The partition
    // within each chunk folds trial t into workers[t % resolved], which is
    // exactly the residue-class a chunkless run uses — per-worker fold
    // order is unchanged, so chunking never changes the bits.
    const std::uint64_t base = next;
    const std::uint64_t end = (session != nullptr && every > 0)
                                  ? std::min(trials, base + every)
                                  : trials;
    rit::parallel_for_strided(
        end - base, resolved, [&](std::uint64_t i, unsigned /*worker*/) {
          if (aborting.load(std::memory_order_relaxed)) return;
          const std::uint64_t t = base + i;
          run_one(workers[t % resolved], t);
          shared.tick();
        });
    next = end;
    if (aborting.load(std::memory_order_relaxed)) break;
    if (session != nullptr && next < trials) {
      std::vector<WorkerCheckpoint> cut(resolved);
      for (unsigned w = 0; w < resolved; ++w) {
        cut[w] = WorkerCheckpoint{workers[w].agg, workers[w].faults};
      }
      session->save_partial(point, next, std::move(cut));
      if (policy.chaos.kill_after_checkpoints != chaos::kNever &&
          session->checkpoints_written() >=
              policy.chaos.kill_after_checkpoints) {
        throw chaos::ChaosKill(session->checkpoints_written());
      }
    }
  }

  {
    std::lock_guard<std::mutex> lock(abort_mu);
    if (abort_error) {
      if (session != nullptr) {
        // Forensic flush before the abort surfaces: the partial aggregate
        // and every contained fault land in `<checkpoint>.aborted`. This is
        // evidence, not a resumable cut — the per-worker states are
        // mid-chunk here, so no cursor value describes them consistently
        // and writing them as a partial would corrupt resume.
        GuardedResult partial;
        for (const WorkerState& w : workers) {
          partial.metrics.merge(w.agg);
          partial.faults.merge(w.faults);
        }
        session->save_aborted(point, partial, abort_reason);
      }
      std::rethrow_exception(abort_error);
    }
  }

  if (record_trial_stat) {
    obs::MetricsSnapshot merged;
    for (const WorkerState& w : workers) merged.merge(w.metrics.snapshot());
    obs::Registry::global().absorb(merged);
  }

  GuardedResult out;
  for (const WorkerState& w : workers) {
    out.metrics.merge(w.agg);
    out.faults.merge(w.faults);
  }
  if (session != nullptr) session->complete_point(point, out);
  return out;
}

GuardedResult run_many_guarded(const Scenario& scenario, std::uint64_t trials,
                               unsigned threads, const GuardPolicy& policy,
                               CheckpointSession* session,
                               std::uint64_t point,
                               const ProgressFn& progress) {
  const TrialBody body = [&scenario](std::uint64_t t, core::RitWorkspace& ws,
                                     std::string* phase) {
    *phase = "make_instance";
    const TrialInstance inst = make_instance(scenario, t);
    *phase = "run_trial";
    return run_trial(scenario, inst, ws);
  };
  const TrialSeedFn seed_of = [&scenario](std::uint64_t t) {
    return mechanism_seed_of(scenario, t);
  };
  return run_trials_guarded(trials, threads, policy, body, seed_of, session,
                            point, progress);
}

}  // namespace rit::sim
