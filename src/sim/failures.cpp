#include "sim/failures.h"

#include <algorithm>

#include "common/check.h"

namespace rit::sim {

DropoutResult remove_participants(const tree::IncentiveTree& tree,
                                  std::span<const core::Ask> asks,
                                  std::span<const std::uint32_t> dropouts) {
  RIT_CHECK(asks.size() == tree.num_participants());
  const auto n = static_cast<std::uint32_t>(asks.size());
  std::vector<bool> dropped(n, false);
  for (std::uint32_t d : dropouts) {
    RIT_CHECK_MSG(d < n, "dropout " << d << " out of range");
    dropped[d] = true;
  }

  DropoutResult res{tree::IncentiveTree::root_only(), {}, {}, {}};
  res.new_of_original.assign(n, DropoutResult::kDropped);
  for (std::uint32_t j = 0; j < n; ++j) {
    if (dropped[j]) continue;
    res.new_of_original[j] = static_cast<std::uint32_t>(res.asks.size());
    res.original_of.push_back(j);
    res.asks.push_back(asks[j]);
  }

  // Surviving ancestor of each original node, resolved root-down so each
  // node's answer is already final when its children ask.
  const auto m = static_cast<std::uint32_t>(res.asks.size());
  std::vector<std::uint32_t> new_parents(m + 1, 0);
  // surviving_anchor[node]: the NEW tree node that a child of `node` should
  // attach to (node itself if it survives, else its parent's anchor).
  std::vector<std::uint32_t> surviving_anchor(tree.num_nodes(), 0);
  surviving_anchor[0] = 0;
  for (std::uint32_t node : tree.preorder()) {
    if (node == 0) continue;
    const std::uint32_t j = tree::participant_of_node(node);
    if (dropped[j]) {
      surviving_anchor[node] = surviving_anchor[tree.parent(node)];
    } else {
      const std::uint32_t new_node =
          tree::node_of_participant(res.new_of_original[j]);
      surviving_anchor[node] = new_node;
      new_parents[new_node] = surviving_anchor[tree.parent(node)];
    }
  }
  res.tree = tree::IncentiveTree(std::move(new_parents));
  return res;
}

DropoutResult random_dropout(const tree::IncentiveTree& tree,
                             std::span<const core::Ask> asks, double rate,
                             rng::Rng& rng) {
  RIT_CHECK(rate >= 0.0 && rate <= 1.0);
  std::vector<std::uint32_t> dropouts;
  for (std::uint32_t j = 0; j < asks.size(); ++j) {
    if (rng.bernoulli(rate)) dropouts.push_back(j);
  }
  return remove_participants(tree, asks, dropouts);
}

}  // namespace rit::sim
