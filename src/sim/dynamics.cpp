#include "sim/dynamics.h"

#include <algorithm>
#include <limits>
#include <queue>

#include "common/check.h"

namespace rit::sim {

namespace {
struct Event {
  double time;
  enum class Kind : std::uint8_t { kInvitation, kJoin, kDepart } kind;
  std::uint32_t target;
  std::uint32_t inviter;  // graph node, or kFromPlatform
  std::uint64_t id;       // insertion order: the deterministic tie-break
};

struct Later {
  bool operator()(const Event& a, const Event& b) const {
    if (a.time != b.time) return a.time > b.time;
    return a.id > b.id;
  }
};

constexpr std::uint32_t kFromPlatform =
    std::numeric_limits<std::uint32_t>::max();
}  // namespace

std::size_t DynamicsResult::joined_by(double t) const {
  return std::upper_bound(join_time.begin(), join_time.end(), t) -
         join_time.begin();
}

DynamicsResult simulate_solicitation(const graph::Graph& g,
                                     const Population& population,
                                     const core::Job* job,
                                     const DynamicsOptions& options,
                                     rng::Rng& rng) {
  RIT_CHECK(population.size() == g.num_nodes());
  RIT_CHECK(options.invite_delay_mean > 0.0);
  RIT_CHECK(options.decision_delay_mean > 0.0);
  RIT_CHECK(options.acceptance_prob >= 0.0 && options.acceptance_prob <= 1.0);
  RIT_CHECK_MSG(!options.seeds.empty(), "dynamics needs at least one seed");
  RIT_CHECK_MSG(options.supply_multiple <= 0.0 || job != nullptr,
                "supply target requires a job");
  RIT_CHECK(options.lifetime_mean >= 0.0);

  const std::uint32_t n = g.num_nodes();
  DynamicsResult res{tree::IncentiveTree::root_only(), {}, {}, 0.0,
                     DynamicsResult::StopReason::kCascadeDied, {}, {}};
  if (job != nullptr) res.supply_by_type.assign(job->num_types(), 0);

  std::vector<std::uint64_t> target;
  if (options.supply_multiple > 0.0) {
    target.assign(job->num_types(), 0);
    for (std::uint32_t t = 0; t < job->num_types(); ++t) {
      target[t] = static_cast<std::uint64_t>(
          options.supply_multiple * job->demand(TaskType{t}) + 0.999999);
    }
  }
  auto supply_met = [&]() {
    if (target.empty()) return false;
    for (std::uint32_t t = 0; t < job->num_types(); ++t) {
      if (job->demand(TaskType{t}) > 0 && res.supply_by_type[t] < target[t]) {
        return false;
      }
    }
    return true;
  };

  std::vector<bool> joined(n, false);
  // A user who accepted an invitation but whose join has not fired yet; no
  // other invitation may claim it in the meantime.
  std::vector<bool> committed(n, false);
  std::vector<std::uint32_t> node_of(n, 0);
  std::vector<std::uint32_t> parents{0};
  std::priority_queue<Event, std::vector<Event>, Later> queue;
  std::uint64_t next_id = 0;
  const std::uint32_t cap = options.max_users.value_or(n);

  auto join = [&](std::uint32_t u, double time, std::uint32_t inviter_graph) {
    joined[u] = true;
    committed[u] = true;
    node_of[u] = static_cast<std::uint32_t>(res.joined.size() + 1);
    parents.push_back(inviter_graph == kFromPlatform ? 0
                                                     : node_of[inviter_graph]);
    res.joined.push_back(u);
    res.join_time.push_back(time);
    if (job != nullptr) {
      const core::Ask& ask = population.truthful_asks[u];
      if (ask.type.value < res.supply_by_type.size()) {
        res.supply_by_type[ask.type.value] += ask.quantity;
      }
    }
    // Schedule invitations to every neighbour.
    for (std::uint32_t v : g.out_neighbors(u)) {
      if (joined[v]) continue;
      queue.push(Event{time + rng.exponential(options.invite_delay_mean),
                       Event::Kind::kInvitation, v, u, next_id++});
    }
    if (options.lifetime_mean > 0.0) {
      queue.push(Event{time + rng.exponential(options.lifetime_mean),
                       Event::Kind::kDepart, u, kFromPlatform, next_id++});
    }
  };

  // Seeds join at t = 0 in ascending order (paper tie-break flavour).
  std::vector<std::uint32_t> seeds = options.seeds;
  std::sort(seeds.begin(), seeds.end());
  seeds.erase(std::unique(seeds.begin(), seeds.end()), seeds.end());
  for (std::uint32_t s : seeds) {
    RIT_CHECK_MSG(s < n, "seed " << s << " out of range");
    if (res.joined.size() >= cap) break;
    join(s, 0.0, kFromPlatform);
  }

  const bool explicit_cap = options.max_users.has_value();
  bool stop = false;
  if (explicit_cap && res.joined.size() >= cap) {
    res.stop_reason = DynamicsResult::StopReason::kMaxUsers;
    stop = true;
  } else if (supply_met()) {
    res.stop_reason = DynamicsResult::StopReason::kSupplyMet;
    stop = true;
  }

  while (!stop && !queue.empty()) {
    const Event ev = queue.top();
    queue.pop();
    if (options.deadline && ev.time > *options.deadline) {
      res.end_time = *options.deadline;
      res.stop_reason = DynamicsResult::StopReason::kDeadline;
      stop = true;
      break;
    }
    res.end_time = ev.time;
    if (ev.kind == Event::Kind::kInvitation) {
      if (committed[ev.target]) continue;  // someone else got there first
      // The invitee deliberates; a declined invitation is simply dropped
      // (another neighbour may try again later).
      if (!rng.bernoulli(options.acceptance_prob)) continue;
      committed[ev.target] = true;
      queue.push(
          Event{ev.time + rng.exponential(options.decision_delay_mean),
                Event::Kind::kJoin, ev.target, ev.inviter, next_id++});
      continue;
    }
    if (ev.kind == Event::Kind::kDepart) {
      const std::uint32_t participant =
          tree::participant_of_node(node_of[ev.target]);
      res.departed.push_back(participant);
      if (job != nullptr) {
        const core::Ask& ask = population.truthful_asks[ev.target];
        if (ask.type.value < res.supply_by_type.size()) {
          RIT_DCHECK(res.supply_by_type[ask.type.value] >= ask.quantity);
          res.supply_by_type[ask.type.value] -= ask.quantity;
        }
      }
      continue;
    }
    // kJoin
    RIT_DCHECK(!joined[ev.target]);
    join(ev.target, ev.time, ev.inviter);
    if (explicit_cap && res.joined.size() >= cap) {
      res.stop_reason = DynamicsResult::StopReason::kMaxUsers;
      stop = true;
    } else if (supply_met()) {
      res.stop_reason = DynamicsResult::StopReason::kSupplyMet;
      stop = true;
    }
  }

  res.tree = tree::IncentiveTree(std::move(parents));
  return res;
}

}  // namespace rit::sim
