// Chaos harness: deterministic fault injection for the guarded runner.
//
// Robustness claims need adversarial tests, not luck: the injectors here
// make trials throw, return NaN, or stall on demand, and a test hook kills
// the process-equivalent (by throwing ChaosKill) right after the k-th
// checkpoint write — which is how the kill/resume matrix proves resume is
// bit-identical at every checkpoint boundary. Everything is driven by the
// trial index or the deterministic rng, so a chaos run replays exactly.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#include "sim/metrics.h"

namespace rit::sim::chaos {

/// "Never fire" sentinel for the per-trial injectors.
constexpr std::uint64_t kNever = ~std::uint64_t{0};

struct ChaosSpec {
  /// Throw std::runtime_error when running this trial index.
  std::uint64_t throw_on_trial{kNever};
  /// Overwrite this trial's avg_utility_rit with NaN after it runs.
  std::uint64_t nan_on_trial{kNever};
  /// Busy-wait `delay_ms` of steady-clock time inside this trial (drives
  /// the watchdog tests without depending on scheduler behavior).
  std::uint64_t delay_on_trial{kNever};
  double delay_ms{0.0};
  /// Additionally throw on each trial with this probability, drawn from a
  /// per-trial rng stream mixed from (seed, trial) — deterministic and
  /// independent of execution order, so a chaos run resumes exactly.
  double fault_rate{0.0};
  std::uint64_t seed{0};
  /// Test hook: after this many checkpoint writes, throw ChaosKill from
  /// the runner (simulating a process kill at a checkpoint boundary).
  /// kNever disables.
  std::uint64_t kill_after_checkpoints{kNever};

  // Process-death injectors, honored only by the supervised shard workers
  // (src/platform/shard_worker.h): these kill the *process*, so the
  // in-process guarded runner never fires them. All keyed on the global
  // trial index, like the trial injectors above.
  /// Deliver `signal_number` to the worker process (raise) when it reaches
  /// this trial — the SIGKILL/SIGSEGV/SIGABRT death matrix.
  std::uint64_t signal_on_trial{kNever};
  int signal_number{9};  // SIGKILL
  /// Allocation bomb: on this trial, allocate-and-touch until the process
  /// hits its rlimit (std::bad_alloc), then abort — a hard OOM death.
  std::uint64_t oom_on_trial{kNever};
  /// Spin forever on this trial without ever returning — drives the
  /// supervisor's heartbeat watchdog (the in-process --trial-timeout-ms
  /// check is post-hoc and cannot catch this).
  std::uint64_t hang_on_trial{kNever};
  /// By default the supervisor strips the process-death injectors from a
  /// shard's retry attempts (a deterministic injector would otherwise
  /// refire forever); set this to keep them firing on every attempt — the
  /// quarantine-budget-exhaustion tests need a shard that never recovers.
  bool process_chaos_every_attempt{false};

  bool any_trial_injector() const {
    return throw_on_trial != kNever || nan_on_trial != kNever ||
           delay_on_trial != kNever || fault_rate > 0.0;
  }

  bool any_process_injector() const {
    return signal_on_trial != kNever || oom_on_trial != kNever ||
           hang_on_trial != kNever;
  }

  /// Copy with the process-death injectors disarmed (retry attempts).
  ChaosSpec without_process_injectors() const {
    ChaosSpec out = *this;
    out.signal_on_trial = kNever;
    out.oom_on_trial = kNever;
    out.hang_on_trial = kNever;
    return out;
  }
};

/// Thrown by the runner when kill_after_checkpoints fires. Deliberately
/// NOT derived from rit::CheckFailure: it models a hard process death, so
/// nothing in the containment path should catch it.
struct ChaosKill : std::runtime_error {
  explicit ChaosKill(std::uint64_t checkpoints)
      : std::runtime_error("chaos: killed after " +
                           std::to_string(checkpoints) +
                           " checkpoint write(s)") {}
};

/// Runs the before-trial injectors for `trial`: delay, then deterministic
/// throw (throw_on_trial or a fault_rate draw).
void inject_before_trial(const ChaosSpec& spec, std::uint64_t trial);

/// Runs the after-trial injectors: NaN poisoning of the returned metrics.
void inject_after_trial(const ChaosSpec& spec, std::uint64_t trial,
                        TrialMetrics& metrics);

// Process-death primitives behind the ChaosSpec process injectors. Only
// the supervised shard workers call these (in a forked child the
// supervisor will reap and retry); nothing in the in-process path does.
/// Delivers `signal_number` to the calling process via raise(). Does not
/// return for fatal dispositions (SIGKILL/SIGSEGV/SIGABRT defaults).
void raise_signal(int signal_number);
/// Allocates and touches memory until the allocator gives up
/// (std::bad_alloc — under an RLIMIT_AS budget that happens fast), then
/// aborts: a hard OOM kill, not a containable exception. Never returns.
[[noreturn]] void alloc_bomb();
/// Spins forever on the monotonic clock; models a livelocked trial that
/// only a pre-emptive supervisor can stop. Never returns.
[[noreturn]] void spin_forever();

/// File-corruption helpers for the corrupt-checkpoint rejection tests.
/// Both throw CheckFailure if `path` cannot be read or rewritten.
void truncate_file(const std::string& path, std::size_t keep_bytes);
void flip_bit(const std::string& path, std::size_t byte_index, unsigned bit);

}  // namespace rit::sim::chaos
