// Chaos harness: deterministic fault injection for the guarded runner.
//
// Robustness claims need adversarial tests, not luck: the injectors here
// make trials throw, return NaN, or stall on demand, and a test hook kills
// the process-equivalent (by throwing ChaosKill) right after the k-th
// checkpoint write — which is how the kill/resume matrix proves resume is
// bit-identical at every checkpoint boundary. Everything is driven by the
// trial index or the deterministic rng, so a chaos run replays exactly.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#include "sim/metrics.h"

namespace rit::sim::chaos {

/// "Never fire" sentinel for the per-trial injectors.
constexpr std::uint64_t kNever = ~std::uint64_t{0};

struct ChaosSpec {
  /// Throw std::runtime_error when running this trial index.
  std::uint64_t throw_on_trial{kNever};
  /// Overwrite this trial's avg_utility_rit with NaN after it runs.
  std::uint64_t nan_on_trial{kNever};
  /// Busy-wait `delay_ms` of steady-clock time inside this trial (drives
  /// the watchdog tests without depending on scheduler behavior).
  std::uint64_t delay_on_trial{kNever};
  double delay_ms{0.0};
  /// Additionally throw on each trial with this probability, drawn from a
  /// per-trial rng stream mixed from (seed, trial) — deterministic and
  /// independent of execution order, so a chaos run resumes exactly.
  double fault_rate{0.0};
  std::uint64_t seed{0};
  /// Test hook: after this many checkpoint writes, throw ChaosKill from
  /// the runner (simulating a process kill at a checkpoint boundary).
  /// kNever disables.
  std::uint64_t kill_after_checkpoints{kNever};

  bool any_trial_injector() const {
    return throw_on_trial != kNever || nan_on_trial != kNever ||
           delay_on_trial != kNever || fault_rate > 0.0;
  }
};

/// Thrown by the runner when kill_after_checkpoints fires. Deliberately
/// NOT derived from rit::CheckFailure: it models a hard process death, so
/// nothing in the containment path should catch it.
struct ChaosKill : std::runtime_error {
  explicit ChaosKill(std::uint64_t checkpoints)
      : std::runtime_error("chaos: killed after " +
                           std::to_string(checkpoints) +
                           " checkpoint write(s)") {}
};

/// Runs the before-trial injectors for `trial`: delay, then deterministic
/// throw (throw_on_trial or a fault_rate draw).
void inject_before_trial(const ChaosSpec& spec, std::uint64_t trial);

/// Runs the after-trial injectors: NaN poisoning of the returned metrics.
void inject_after_trial(const ChaosSpec& spec, std::uint64_t trial,
                        TrialMetrics& metrics);

/// File-corruption helpers for the corrupt-checkpoint rejection tests.
/// Both throw CheckFailure if `path` cannot be read or rewritten.
void truncate_file(const std::string& path, std::size_t keep_bytes);
void flip_bit(const std::string& path, std::size_t byte_index, unsigned bit);

}  // namespace rit::sim::chaos
