// Population (de)serialization: run the mechanism on real user data.
//
// The synthetic workload generator covers the paper's simulations, but a
// deployment has measured users. This CSV schema — one user per line,
// `type,quantity,cost` with an optional header — lets operators drop in
// their own population (from surveys, past campaigns, or the SNAP-derived
// pipelines) and reuse every harness in this repo unchanged.
#pragma once

#include <iosfwd>
#include <string>

#include "sim/workload.h"

namespace rit::sim {

/// Parses `type,quantity,cost` lines (comma or whitespace separated; '#'
/// comments and an optional "type,quantity,cost" header tolerated).
/// Truthful asks are built with value == cost. Throws CheckFailure on
/// malformed rows or an empty population.
Population read_population(std::istream& in);
Population read_population_file(const std::string& path);

/// Writes the population in the same schema (round-trips exactly; costs in
/// hex-float for bit-exactness).
void write_population(const Population& population, std::ostream& out);
void write_population_file(const Population& population,
                           const std::string& path);

}  // namespace rit::sim
