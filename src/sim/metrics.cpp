#include "sim/metrics.h"

namespace rit::sim {

void AggregateMetrics::add(const TrialMetrics& t) {
  ++trials;
  if (t.success) ++successes;
  avg_utility_auction.add(t.avg_utility_auction);
  avg_utility_rit.add(t.avg_utility_rit);
  total_payment_auction.add(t.total_payment_auction);
  total_payment_rit.add(t.total_payment_rit);
  runtime_auction_ms.add(t.runtime_auction_ms);
  runtime_rit_ms.add(t.runtime_rit_ms);
  solicitation_premium.add(t.solicitation_premium);
}

}  // namespace rit::sim
