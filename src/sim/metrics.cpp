#include "sim/metrics.h"

namespace rit::sim {

// Field-coverage guard for add()/merge(): AggregateMetrics must stay exactly
// 8 OnlineStats + 5 counters. Adding a field without updating both folds
// below would silently drop it from every sweep (the original
// tasks_allocated/probability_degraded bug) — instead, this fires and points
// here. The checkpoint serializer (sim/checkpoint.cpp) carries the same
// guard for the same reason.
static_assert(sizeof(AggregateMetrics) ==
                  8 * sizeof(stats::OnlineStats) + 5 * sizeof(std::uint64_t),
              "AggregateMetrics changed shape: update add() and merge() in "
              "metrics.cpp (and this static_assert) so no field is dropped "
              "from aggregation");

void AggregateMetrics::add(const TrialMetrics& t) {
  ++trials;
  if (t.success) ++successes;
  if (t.probability_degraded) ++degraded_trials;
  avg_utility_auction.add(t.avg_utility_auction);
  avg_utility_rit.add(t.avg_utility_rit);
  total_payment_auction.add(t.total_payment_auction);
  total_payment_rit.add(t.total_payment_rit);
  runtime_auction_ms.add(t.runtime_auction_ms);
  runtime_rit_ms.add(t.runtime_rit_ms);
  solicitation_premium.add(t.solicitation_premium);
  tasks_allocated.add(static_cast<double>(t.tasks_allocated));
}

void AggregateMetrics::merge(const AggregateMetrics& other) {
  trials += other.trials;
  successes += other.successes;
  degraded_trials += other.degraded_trials;
  failed_trials += other.failed_trials;
  quarantined_trials += other.quarantined_trials;
  avg_utility_auction.merge(other.avg_utility_auction);
  avg_utility_rit.merge(other.avg_utility_rit);
  total_payment_auction.merge(other.total_payment_auction);
  total_payment_rit.merge(other.total_payment_rit);
  runtime_auction_ms.merge(other.runtime_auction_ms);
  runtime_rit_ms.merge(other.runtime_rit_ms);
  solicitation_premium.merge(other.solicitation_premium);
  tasks_allocated.merge(other.tasks_allocated);
}

}  // namespace rit::sim
