#include "sim/config_io.h"

#include <algorithm>
#include <fstream>
#include <ostream>
#include <sstream>

#include "common/check.h"
#include "common/num_io.h"

namespace rit::sim {

namespace {
std::string trim(const std::string& s) {
  const auto begin = s.find_first_not_of(" \t\r");
  if (begin == std::string::npos) return "";
  const auto end = s.find_last_not_of(" \t\r");
  return s.substr(begin, end - begin + 1);
}

std::uint64_t parse_u64(const std::string& key, const std::string& value) {
  const auto v = rit::parse_u64(value);
  RIT_CHECK_MSG(v.has_value(), "config key '" << key
                                              << "' wants an unsigned integer, "
                                                 "got '"
                                              << value << "'");
  return *v;
}

double parse_double(const std::string& key, const std::string& value) {
  const auto v = rit::parse_double(value);
  RIT_CHECK_MSG(v.has_value(), "config key '" << key << "' wants a number, got '"
                                              << value << "'");
  return *v;
}
}  // namespace

Scenario read_scenario(std::istream& in) {
  Scenario s;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (const auto hash = line.find('#'); hash != std::string::npos) {
      line.erase(hash);
    }
    line = trim(line);
    if (line.empty()) continue;
    const auto eq = line.find('=');
    RIT_CHECK_MSG(eq != std::string::npos,
                  "config line " << line_no << ": expected 'key = value'");
    const std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));

    if (key == "users") {
      s.num_users = static_cast<std::uint32_t>(parse_u64(key, value));
    } else if (key == "types") {
      s.num_types = static_cast<std::uint32_t>(parse_u64(key, value));
    } else if (key == "tasks_per_type") {
      s.tasks_per_type = static_cast<std::uint32_t>(parse_u64(key, value));
    } else if (key == "demand_lo") {
      s.demand_lo = static_cast<std::uint32_t>(parse_u64(key, value));
    } else if (key == "demand_hi") {
      s.demand_hi = static_cast<std::uint32_t>(parse_u64(key, value));
    } else if (key == "k_max") {
      s.k_max = static_cast<std::uint32_t>(parse_u64(key, value));
    } else if (key == "cost_max") {
      s.cost_max = parse_double(key, value);
    } else if (key == "h") {
      s.mechanism.h = parse_double(key, value);
    } else if (key == "discount_base") {
      s.mechanism.discount_base = parse_double(key, value);
    } else if (key == "policy") {
      if (value == "theoretical") {
        s.mechanism.round_budget_policy = core::RoundBudgetPolicy::kTheoretical;
      } else if (value == "completion") {
        s.mechanism.round_budget_policy =
            core::RoundBudgetPolicy::kRunToCompletion;
      } else {
        RIT_CHECK_MSG(false, "config key 'policy' wants theoretical|completion, got '"
                                 << value << "'");
      }
    } else if (key == "graph") {
      s.graph = parse_graph_kind(value);
    } else if (key == "ba_edges") {
      s.ba_edges_per_node = static_cast<std::uint32_t>(parse_u64(key, value));
    } else if (key == "er_degree") {
      s.er_degree = parse_double(key, value);
    } else if (key == "ws_k") {
      s.ws_k = static_cast<std::uint32_t>(parse_u64(key, value));
    } else if (key == "ws_beta") {
      s.ws_beta = parse_double(key, value);
    } else if (key == "cm_exponent") {
      s.cm_exponent = parse_double(key, value);
    } else if (key == "cm_max_degree") {
      s.cm_max_degree = static_cast<std::uint32_t>(parse_u64(key, value));
    } else if (key == "initial_joiners") {
      s.initial_joiners = static_cast<std::uint32_t>(parse_u64(key, value));
    } else if (key == "seed") {
      s.seed = parse_u64(key, value);
    } else {
      RIT_CHECK_MSG(false, "config line " << line_no << ": unknown key '"
                                          << key << "'");
    }
  }
  return s;
}

Scenario read_scenario_file(const std::string& path) {
  std::ifstream in(path);
  RIT_CHECK_MSG(in.good(), "cannot open scenario file: " << path);
  return read_scenario(in);
}

void write_scenario(const Scenario& s, std::ostream& out) {
  out << "# ritcs scenario\n";
  out << "users = " << s.num_users << "\n";
  out << "types = " << s.num_types << "\n";
  out << "tasks_per_type = " << s.tasks_per_type << "\n";
  out << "demand_lo = " << s.demand_lo << "\n";
  out << "demand_hi = " << s.demand_hi << "\n";
  out << "k_max = " << s.k_max << "\n";
  out << "cost_max = " << format_double_shortest(s.cost_max) << "\n";
  out << "h = " << format_double_shortest(s.mechanism.h) << "\n";
  out << "discount_base = " << format_double_shortest(s.mechanism.discount_base)
      << "\n";
  out << "policy = "
      << (s.mechanism.round_budget_policy ==
                  core::RoundBudgetPolicy::kTheoretical
              ? "theoretical"
              : "completion")
      << "\n";
  out << "graph = " << to_string(s.graph) << "\n";
  out << "ba_edges = " << s.ba_edges_per_node << "\n";
  out << "er_degree = " << format_double_shortest(s.er_degree) << "\n";
  out << "ws_k = " << s.ws_k << "\n";
  out << "ws_beta = " << format_double_shortest(s.ws_beta) << "\n";
  out << "cm_exponent = " << format_double_shortest(s.cm_exponent) << "\n";
  out << "cm_max_degree = " << s.cm_max_degree << "\n";
  out << "initial_joiners = " << s.initial_joiners << "\n";
  out << "seed = " << s.seed << "\n";
}

}  // namespace rit::sim
