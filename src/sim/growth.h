// Solicitation growth control (Remark 6.1 made executable).
//
// The paper stops solicitation at a threshold N and remarks that N should
// be large enough that, for every task type, the joined users can complete
// at least 2*m_i tasks — CRA selects up to q + m_i potential winners, so it
// needs that much live supply to allocate reliably. This module grows the
// BFS spanning forest wave by wave and stops at the first N whose joined
// population satisfies a configurable supply multiple, answering the
// operational question "how many users do I actually need to recruit?".
#pragma once

#include <cstdint>
#include <optional>

#include "core/types.h"
#include "graph/graph.h"
#include "sim/workload.h"
#include "tree/incentive_tree.h"

namespace rit::sim {

struct GrowthOptions {
  /// Required supply per type, as a multiple of m_i (Remark 6.1: 2.0).
  double supply_multiple = 2.0;
  /// Graph nodes that join at the very beginning.
  std::vector<std::uint32_t> seeds{0};
  /// Hard cap on recruited users (default: the whole graph).
  std::optional<std::uint32_t> max_users;
};

struct GrowthResult {
  tree::IncentiveTree tree;
  /// Graph node of each participant, in join order.
  std::vector<std::uint32_t> joined;
  /// Whether every demanded type reached the supply target before the graph
  /// (or max_users) was exhausted.
  bool supply_met{false};
  /// Per-type unit supply among the joined users.
  std::vector<std::uint64_t> supply_by_type;
};

/// Grows the incentive tree over `g` until the joined users' capabilities
/// cover `supply_multiple * m_i` units for every demanded type of `job`
/// (user u's type/capability taken from population.truthful_asks[u]; the
/// population is indexed by graph node). Users keep joining in BFS order
/// with the paper's smallest-inviter tie-break; growth stops mid-wave as
/// soon as the target is met, mirroring "T stops growing when the number of
/// users reaches N".
GrowthResult grow_until_supply(const graph::Graph& g,
                               const Population& population,
                               const core::Job& job,
                               const GrowthOptions& options);

}  // namespace rit::sim
