// Workload generation: populations of truthful users, jobs, and incentive
// trees drawn according to a Scenario.
#pragma once

#include <vector>

#include "core/types.h"
#include "graph/graph.h"
#include "rng/rng.h"
#include "sim/scenario.h"
#include "tree/incentive_tree.h"

namespace rit::sim {

/// A generated user population. Truthful asks carry (t_j, K_j, c_j); the
/// private costs are kept alongside for utility computation.
struct Population {
  std::vector<core::Ask> truthful_asks;
  std::vector<double> costs;  // c_j

  std::uint32_t size() const {
    return static_cast<std::uint32_t>(costs.size());
  }
};

/// Draws n users per Sec. 7-A: type uniform over num_types, quantity
/// uniform over {1..k_max}, cost uniform over (0, cost_max].
Population generate_population(const Scenario& scenario, rng::Rng& rng);

/// Draws the job: fixed per-type demand, or per-type uniform over
/// (demand_lo, demand_hi] when demand_hi > 0.
core::Job generate_job(const Scenario& scenario, rng::Rng& rng);

/// Generates the social graph of the scenario's GraphKind.
graph::Graph generate_graph(const Scenario& scenario, rng::Rng& rng);

/// Builds the incentive tree: spanning forest of `g` seeded by the
/// scenario's initial joiners, unreached users attached to the platform
/// (every user participates, as in the paper's simulations). The tree's
/// participant i is graph node join_order[i]; the returned permutation maps
/// participant index -> graph node for callers that care.
struct TreeResult {
  tree::IncentiveTree tree;
  std::vector<std::uint32_t> graph_node_of_participant;
};
TreeResult generate_tree(const Scenario& scenario, const graph::Graph& g);

}  // namespace rit::sim
