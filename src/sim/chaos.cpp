#include "sim/chaos.h"

#include <csignal>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <memory>
#include <new>
#include <sstream>
#include <vector>

#include "common/atomic_file.h"
#include "common/check.h"
#include "rng/rng.h"
#include "stats/timer.h"

namespace rit::sim::chaos {

namespace {

std::string read_all(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  RIT_CHECK_MSG(in.good(), "chaos: cannot read '" << path << "'");
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

}  // namespace

void inject_before_trial(const ChaosSpec& spec, std::uint64_t trial) {
  if (spec.delay_on_trial == trial && spec.delay_ms > 0.0) {
    // Busy-wait on the monotonic clock: sleep_for can wake early/late, a
    // spin past the deadline cannot — the watchdog test needs certainty.
    stats::Timer timer;
    while (timer.elapsed_ms() < spec.delay_ms) {
    }
  }
  if (spec.throw_on_trial == trial) {
    throw std::runtime_error("chaos: injected throw on trial " +
                             std::to_string(trial));
  }
  if (spec.fault_rate > 0.0) {
    // Per-trial stream mixed from (seed, trial): which trials fault is a
    // pure function of the spec, never of scheduling.
    rng::Rng rng(spec.seed ^ (trial * 0x9e3779b97f4a7c15ULL + 1));
    if (rng.bernoulli(spec.fault_rate)) {
      throw std::runtime_error("chaos: injected fault (rate " +
                               std::to_string(spec.fault_rate) +
                               ") on trial " + std::to_string(trial));
    }
  }
}

void inject_after_trial(const ChaosSpec& spec, std::uint64_t trial,
                        TrialMetrics& metrics) {
  if (spec.nan_on_trial == trial) {
    metrics.avg_utility_rit = std::numeric_limits<double>::quiet_NaN();
  }
}

void raise_signal(int signal_number) { std::raise(signal_number); }

void alloc_bomb() {
  // Allocate in 16 MB slabs and touch every page so the memory is really
  // committed; under an RLIMIT_AS budget the allocator throws bad_alloc
  // almost immediately. Model a hard OOM kill by aborting: the kernel's
  // OOM killer sends an uncatchable signal, so a containable bad_alloc
  // would be the wrong failure class for the supervisor tests.
  constexpr std::size_t kSlab = 16u << 20;
  std::vector<std::unique_ptr<char[]>> slabs;
  try {
    for (;;) {
      slabs.emplace_back(new char[kSlab]);
      char* p = slabs.back().get();
      for (std::size_t i = 0; i < kSlab; i += 4096) p[i] = 1;
    }
  } catch (const std::bad_alloc&) {
    std::abort();
  }
  std::abort();  // unreachable; keeps [[noreturn]] honest
}

void spin_forever() {
  // Volatile sink so the loop cannot be optimized into a no-op.
  volatile std::uint64_t sink = 0;
  for (;;) {
    sink = sink + 1;
  }
}

void truncate_file(const std::string& path, std::size_t keep_bytes) {
  std::string content = read_all(path);
  RIT_CHECK_MSG(keep_bytes <= content.size(),
                "chaos: truncate keeps " << keep_bytes << " of "
                                         << content.size() << " bytes");
  content.resize(keep_bytes);
  write_file_atomic(path, content);
}

void flip_bit(const std::string& path, std::size_t byte_index, unsigned bit) {
  std::string content = read_all(path);
  RIT_CHECK_MSG(byte_index < content.size(),
                "chaos: flip_bit index " << byte_index << " out of range ("
                                         << content.size() << " bytes)");
  RIT_CHECK(bit < 8);
  content[byte_index] = static_cast<char>(
      static_cast<unsigned char>(content[byte_index]) ^ (1u << bit));
  write_file_atomic(path, content);
}

}  // namespace rit::sim::chaos
