#include "sim/workload.h"

#include <numeric>

#include "common/check.h"
#include "graph/generators.h"
#include "obs/obs.h"
#include "tree/builders.h"

namespace rit::sim {

Population generate_population(const Scenario& scenario, rng::Rng& rng) {
  RIT_TRACE_SPAN("population.generate");
  RIT_CHECK(scenario.num_users > 0);
  RIT_CHECK(scenario.num_types > 0);
  RIT_CHECK(scenario.k_max >= 1);
  RIT_CHECK(scenario.cost_max > 0.0);
  Population pop;
  pop.truthful_asks.reserve(scenario.num_users);
  pop.costs.reserve(scenario.num_users);
  for (std::uint32_t j = 0; j < scenario.num_users; ++j) {
    const TaskType type{
        static_cast<std::uint32_t>(rng.uniform_index(scenario.num_types))};
    const auto quantity = static_cast<std::uint32_t>(
        rng.uniform_int(1, static_cast<std::int64_t>(scenario.k_max)));
    const double cost = rng.uniform_real_left_open(0.0, scenario.cost_max);
    pop.truthful_asks.push_back(core::Ask{type, quantity, cost});
    pop.costs.push_back(cost);
  }
  return pop;
}

core::Job generate_job(const Scenario& scenario, rng::Rng& rng) {
  RIT_TRACE_SPAN("job.generate");
  std::vector<std::uint32_t> demand(scenario.num_types);
  if (scenario.demand_hi > 0) {
    RIT_CHECK(scenario.demand_lo < scenario.demand_hi);
    for (auto& d : demand) {
      d = static_cast<std::uint32_t>(
          rng.uniform_int(scenario.demand_lo + 1, scenario.demand_hi));
    }
  } else {
    RIT_CHECK(scenario.tasks_per_type > 0);
    std::fill(demand.begin(), demand.end(), scenario.tasks_per_type);
  }
  return core::Job(std::move(demand));
}

graph::Graph generate_graph(const Scenario& scenario, rng::Rng& rng) {
  RIT_TRACE_SPAN("graph.generate");
  const std::uint32_t n = scenario.num_users;
  switch (scenario.graph) {
    case GraphKind::kBarabasiAlbert:
      return graph::barabasi_albert(n, scenario.ba_edges_per_node, rng,
                                   scenario.intra_threads);
    case GraphKind::kErdosRenyi: {
      const double p =
          n > 1 ? std::min(1.0, scenario.er_degree / (n - 1)) : 0.0;
      return graph::erdos_renyi(n, p, rng, scenario.intra_threads);
    }
    case GraphKind::kWattsStrogatz:
      return graph::watts_strogatz(n, scenario.ws_k, scenario.ws_beta, rng,
                                  scenario.intra_threads);
    case GraphKind::kConfigurationModel:
      return graph::configuration_model(
          n, scenario.cm_exponent,
          std::min(scenario.cm_max_degree, n - 1), rng,
          scenario.intra_threads);
    case GraphKind::kStar:
      return graph::star(n);
    case GraphKind::kPath:
      return graph::path(n);
  }
  RIT_CHECK_MSG(false, "unhandled graph kind");
  return graph::star(1);  // unreachable
}

TreeResult generate_tree(const Scenario& scenario, const graph::Graph& g) {
  tree::SpanningForestOptions opts;
  const std::uint32_t seeds =
      std::min<std::uint32_t>(std::max<std::uint32_t>(scenario.initial_joiners, 1),
                              g.num_nodes());
  opts.seeds.resize(seeds);
  std::iota(opts.seeds.begin(), opts.seeds.end(), 0u);
  opts.attach_unreached_to_root = true;
  opts.threads = scenario.intra_threads;
  tree::SpanningForestResult forest = tree::build_spanning_forest(g, opts);
  RIT_CHECK_MSG(forest.tree.num_participants() == g.num_nodes(),
                "expected every user to join the tree");
  TreeResult out{std::move(forest.tree), {}};
  out.graph_node_of_participant.assign(forest.graph_of.begin() + 1,
                                       forest.graph_of.end());
  return out;
}

}  // namespace rit::sim
