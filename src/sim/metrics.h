// Per-trial metrics and cross-trial aggregation for the Sec. 7 experiments.
#pragma once

#include <cstdint>

#include "stats/online_stats.h"

namespace rit::sim {

/// The four quantities Sec. 7-B tracks, for both the auction phase alone
/// and the full mechanism (the two series in every panel of Figs. 6-8).
struct TrialMetrics {
  bool success{false};

  double avg_utility_auction{0.0};
  double avg_utility_rit{0.0};
  double total_payment_auction{0.0};
  double total_payment_rit{0.0};
  double runtime_auction_ms{0.0};
  double runtime_rit_ms{0.0};

  /// Solicitation premium sum(p_j - p_j^A); Sec. 7-C bounds it by the total
  /// auction payment.
  double solicitation_premium{0.0};

  std::uint64_t tasks_allocated{0};
  bool probability_degraded{false};
};

struct AggregateMetrics {
  stats::OnlineStats avg_utility_auction;
  stats::OnlineStats avg_utility_rit;
  stats::OnlineStats total_payment_auction;
  stats::OnlineStats total_payment_rit;
  stats::OnlineStats runtime_auction_ms;
  stats::OnlineStats runtime_rit_ms;
  stats::OnlineStats solicitation_premium;
  /// Tasks the full mechanism actually allocated per trial (0 on failure
  /// under zero_on_failure — the stat shows how much work the fail-closed
  /// rule throws away).
  stats::OnlineStats tasks_allocated;
  std::uint64_t trials{0};
  std::uint64_t successes{0};
  /// Trials whose truthfulness guarantee was degraded (RitResult::
  /// probability_degraded): vacuous Lemma 6.2 bound, order-statistic
  /// pricing, or a kRunToCompletion overrun of the H-budget.
  std::uint64_t degraded_trials{0};
  /// Trials contained by the fault-tolerant runner (sim/guarded.h): the
  /// trial threw or hit the --trial-timeout-ms watchdog. Excluded from
  /// `trials` and every stat above; the per-trial details live in the
  /// run's FaultLedger.
  std::uint64_t failed_trials{0};
  /// Trials whose metrics came back non-finite (NaN/inf) and were
  /// quarantined before they could poison the Welford accumulators.
  std::uint64_t quarantined_trials{0};

  /// Folds one trial in (Welford update on every stat).
  void add(const TrialMetrics& t);
  /// Folds a whole aggregate in (parallel combine). Covers every field;
  /// a static_assert in metrics.cpp fails the build if a field is added
  /// without extending add() and merge().
  void merge(const AggregateMetrics& other);
  double success_rate() const {
    return trials == 0 ? 0.0
                       : static_cast<double>(successes) /
                             static_cast<double>(trials);
  }
  double degraded_rate() const {
    return trials == 0 ? 0.0
                       : static_cast<double>(degraded_trials) /
                             static_cast<double>(trials);
  }
  /// Records one contained trial failure (throw/timeout).
  void note_failed() { ++failed_trials; }
  /// Records one quarantined trial (non-finite metrics).
  void note_quarantined() { ++quarantined_trials; }
  /// Total trials the runner attempted, contained faults included.
  std::uint64_t attempted() const {
    return trials + failed_trials + quarantined_trials;
  }
};

}  // namespace rit::sim
