// Scenario: one fully-specified simulation configuration (Sec. 7-A).
//
// The defaults encode the paper's setup: m = 10 task types, task types
// uniform over the 10, k_j ~ U over {1..20} (the paper's "(0,20]"),
// c_j ~ U(0,10], H = 0.8, incentive tree from a social-graph spanning
// forest. Every randomized piece derives its stream from `seed` plus the
// trial index, so a scenario + trial id replays exactly.
#pragma once

#include <cstdint>
#include <string>

#include "core/config.h"
#include "core/types.h"

namespace rit::sim {

enum class GraphKind {
  kBarabasiAlbert,
  kErdosRenyi,
  kWattsStrogatz,
  kConfigurationModel,
  kStar,
  kPath,
};

/// Parses "ba" / "er" / "ws" / "cm" / "star" / "path"; throws otherwise.
GraphKind parse_graph_kind(const std::string& name);
std::string to_string(GraphKind kind);

struct Scenario {
  std::uint32_t num_users = 10000;  // n
  std::uint32_t num_types = 10;     // m

  /// Fixed per-type demand m_i (Figs. 6-8). Ignored when demand_hi > 0.
  std::uint32_t tasks_per_type = 500;
  /// When demand_hi > 0, each m_i is drawn uniformly from
  /// (demand_lo, demand_hi] per trial (the Fig. 9 setup: (100, 500]).
  std::uint32_t demand_lo = 0;
  std::uint32_t demand_hi = 0;

  /// k_j ~ uniform over {1, ..., k_max} (paper: (0, 20]).
  std::uint32_t k_max = 20;
  /// c_j ~ uniform over (0, cost_max] (paper: (0, 10]).
  double cost_max = 10.0;

  /// Mechanism knobs. The simulation default is kRunToCompletion because
  /// the paper's Sec. 7 results are only reproducible when the auction
  /// phase may finish the allocation (DESIGN.md ambiguity #3); the
  /// theoretical round budget and the achieved probability bound are still
  /// reported by every run.
  core::RitConfig mechanism = completion_mechanism();

  static core::RitConfig completion_mechanism() {
    core::RitConfig cfg;
    cfg.round_budget_policy = core::RoundBudgetPolicy::kRunToCompletion;
    return cfg;
  }

  GraphKind graph = GraphKind::kBarabasiAlbert;
  /// Out-edges per node for Barabási–Albert.
  std::uint32_t ba_edges_per_node = 3;
  /// Expected out-degree for Erdős–Rényi (p = er_degree / (n-1)).
  double er_degree = 6.0;
  /// Watts–Strogatz ring degree and rewiring probability.
  std::uint32_t ws_k = 6;
  double ws_beta = 0.1;
  /// Configuration-model Zipf exponent and max out-degree (the ego-Twitter
  /// out-degree tail is roughly exponent 2).
  double cm_exponent = 2.0;
  std::uint32_t cm_max_degree = 500;
  /// How many lowest-index graph nodes join at the very beginning
  /// (children of the platform before any solicitation).
  std::uint32_t initial_joiners = 10;

  /// Worker threads for the deterministic intra-trial parallel passes of
  /// workload generation (the graph CSR sort and the spanning-forest wave
  /// scan; core::RitConfig::intra_threads covers the payment phase). Every
  /// pass is bit-identical at any setting, so this knob is deliberately
  /// excluded from scenario serialization and checkpoint identity: it can
  /// never change what a trial computes, only how fast.
  /// 1 = serial (default); 0 = one per hardware thread.
  unsigned intra_threads = 1;

  std::uint64_t seed = 42;

  /// Stream seed for trial `t` and a component tag; all simulation
  /// randomness must flow through these.
  std::uint64_t trial_seed(std::uint64_t trial, std::uint64_t component) const;
};

}  // namespace rit::sim
