#include "sim/runner.h"

#include "common/parallel.h"
#include "core/payment.h"
#include "core/rit.h"
#include "obs/obs.h"
#include "sim/guarded.h"
#include "sim/progress.h"
#include "stats/timer.h"

namespace rit::sim {

namespace {
// Component tags for Scenario::trial_seed.
constexpr std::uint64_t kGraphComponent = 0;
constexpr std::uint64_t kPopulationComponent = 1;
constexpr std::uint64_t kJobComponent = 2;
constexpr std::uint64_t kMechanismComponent = 3;
}  // namespace

TrialInstance make_instance(const Scenario& scenario, std::uint64_t trial) {
  RIT_TRACE_SPAN("sim.make_instance");
  rng::Rng graph_rng(scenario.trial_seed(trial, kGraphComponent));
  rng::Rng pop_rng(scenario.trial_seed(trial, kPopulationComponent));
  rng::Rng job_rng(scenario.trial_seed(trial, kJobComponent));

  graph::Graph g = generate_graph(scenario, graph_rng);
  TreeResult tr = generate_tree(scenario, g);
  return TrialInstance{
      generate_population(scenario, pop_rng),
      generate_job(scenario, job_rng),
      std::move(tr.tree),
      scenario.trial_seed(trial, kMechanismComponent),
  };
}

std::uint64_t mechanism_seed_of(const Scenario& scenario,
                                std::uint64_t trial) {
  return scenario.trial_seed(trial, kMechanismComponent);
}

TrialMetrics run_trial(const Scenario& scenario, const TrialInstance& inst) {
  core::RitWorkspace ws;
  return run_trial(scenario, inst, ws);
}

TrialMetrics run_trial(const Scenario& scenario, const TrialInstance& inst,
                       core::RitWorkspace& ws) {
  RIT_TRACE_SPAN("sim.trial");
  RIT_COUNTER_INC("sim.trials_run");
  TrialMetrics m;
  const auto& asks = inst.population.truthful_asks;
  const auto& costs = inst.population.costs;
  const auto n = static_cast<double>(inst.population.size());

  // Auction phase alone, timed. Same seed as the full run: phase 1 of both
  // runs consumes the identical random stream, so allocations and auction
  // payments coincide and the series isolate the payment phase's effect.
  {
    rng::Rng rng(inst.mechanism_seed);
    stats::Timer timer;
    const core::RitResult auction =
        core::run_auction_phase(inst.job, asks, scenario.mechanism, rng, ws);
    m.runtime_auction_ms = timer.elapsed_ms();
    double total_utility = 0.0;
    for (std::uint32_t j = 0; j < inst.population.size(); ++j) {
      total_utility += auction.auction_utility_of(j, costs[j]);
    }
    m.avg_utility_auction = n > 0 ? total_utility / n : 0.0;
    m.total_payment_auction = auction.total_auction_payment();
  }

  // Full mechanism, timed end to end.
  {
    rng::Rng rng(inst.mechanism_seed);
    stats::Timer timer;
    const core::RitResult full =
        core::run_rit(inst.job, asks, inst.tree, scenario.mechanism, rng, ws);
    m.runtime_rit_ms = timer.elapsed_ms();
    m.success = full.success;
    m.probability_degraded = full.probability_degraded;
    double total_utility = 0.0;
    std::uint64_t allocated = 0;
    for (std::uint32_t j = 0; j < inst.population.size(); ++j) {
      total_utility += full.utility_of(j, costs[j]);
      allocated += full.allocation[j];
    }
    m.avg_utility_rit = n > 0 ? total_utility / n : 0.0;
    m.total_payment_rit = full.total_payment();
    m.tasks_allocated = allocated;
    m.solicitation_premium =
        core::solicitation_premium(full.payment, full.auction_payment);
  }
  RIT_COUNTER_ADD("sim.tasks_allocated", m.tasks_allocated);
  if (m.probability_degraded) RIT_COUNTER_INC("sim.trials_degraded");
  return m;
}

TrialMetrics run_trial(const Scenario& scenario, std::uint64_t trial) {
  return run_trial(scenario, make_instance(scenario, trial));
}

AggregateMetrics run_many(
    const Scenario& scenario, std::uint64_t trials,
    const std::function<void(std::uint64_t, std::uint64_t)>& progress) {
  AggregateMetrics agg;
  core::RitWorkspace ws;
  // Throttled so a trials=1000 sweep does not spam its reporter: at most
  // one invocation per 100 ms, plus the final one.
  ProgressThrottle throttle;
  for (std::uint64_t t = 0; t < trials; ++t) {
    agg.add(run_trial(scenario, make_instance(scenario, t), ws));
    if (progress && throttle.should_fire(t + 1 == trials)) {
      progress(t + 1, trials);
    }
  }
  return agg;
}

AggregateMetrics run_until_precision(const Scenario& scenario,
                                     double target_ci,
                                     std::uint64_t min_trials,
                                     std::uint64_t max_trials) {
  RIT_CHECK(target_ci > 0.0);
  RIT_CHECK(min_trials >= 2 && min_trials <= max_trials);
  AggregateMetrics agg;
  for (std::uint64_t t = 0; t < max_trials; ++t) {
    agg.add(run_trial(scenario, t));
    if (t + 1 >= min_trials &&
        agg.avg_utility_rit.ci95_half_width() <= target_ci) {
      break;
    }
  }
  return agg;
}

AggregateMetrics run_many_parallel(
    const Scenario& scenario, std::uint64_t trials, unsigned threads,
    const std::function<void(std::uint64_t, std::uint64_t)>& progress) {
  const unsigned resolved = rit::resolve_threads(threads, trials);
  if (resolved <= 1) return run_many(scenario, trials, progress);

  // The guarded engine (sim/guarded.h) with a default policy is exactly
  // the old fan-out — same strided partition, same worker-order merges of
  // aggregates and metrics registries — plus containment: an exception in
  // a trial aborts with a clean CheckFailure (failure budget 0) instead of
  // std::terminate from a worker thread.
  return run_many_guarded(scenario, trials, resolved, GuardPolicy{}, nullptr,
                          0, progress)
      .metrics;
}

}  // namespace rit::sim
