#include "sim/runner.h"

#include <algorithm>
#include <thread>

#include "core/payment.h"
#include "core/rit.h"
#include "obs/obs.h"
#include "sim/progress.h"
#include "stats/timer.h"

namespace rit::sim {

namespace {
// Component tags for Scenario::trial_seed.
constexpr std::uint64_t kGraphComponent = 0;
constexpr std::uint64_t kPopulationComponent = 1;
constexpr std::uint64_t kJobComponent = 2;
constexpr std::uint64_t kMechanismComponent = 3;
}  // namespace

TrialInstance make_instance(const Scenario& scenario, std::uint64_t trial) {
  RIT_TRACE_SPAN("sim.make_instance");
  rng::Rng graph_rng(scenario.trial_seed(trial, kGraphComponent));
  rng::Rng pop_rng(scenario.trial_seed(trial, kPopulationComponent));
  rng::Rng job_rng(scenario.trial_seed(trial, kJobComponent));

  graph::Graph g = generate_graph(scenario, graph_rng);
  TreeResult tr = generate_tree(scenario, g);
  return TrialInstance{
      generate_population(scenario, pop_rng),
      generate_job(scenario, job_rng),
      std::move(tr.tree),
      scenario.trial_seed(trial, kMechanismComponent),
  };
}

TrialMetrics run_trial(const Scenario& scenario, const TrialInstance& inst) {
  RIT_TRACE_SPAN("sim.trial");
  RIT_COUNTER_INC("sim.trials_run");
  TrialMetrics m;
  const auto& asks = inst.population.truthful_asks;
  const auto& costs = inst.population.costs;
  const auto n = static_cast<double>(inst.population.size());

  // Auction phase alone, timed. Same seed as the full run: phase 1 of both
  // runs consumes the identical random stream, so allocations and auction
  // payments coincide and the series isolate the payment phase's effect.
  {
    rng::Rng rng(inst.mechanism_seed);
    stats::Timer timer;
    const core::RitResult auction =
        core::run_auction_phase(inst.job, asks, scenario.mechanism, rng);
    m.runtime_auction_ms = timer.elapsed_ms();
    double total_utility = 0.0;
    for (std::uint32_t j = 0; j < inst.population.size(); ++j) {
      total_utility += auction.auction_utility_of(j, costs[j]);
    }
    m.avg_utility_auction = n > 0 ? total_utility / n : 0.0;
    m.total_payment_auction = auction.total_auction_payment();
  }

  // Full mechanism, timed end to end.
  {
    rng::Rng rng(inst.mechanism_seed);
    stats::Timer timer;
    const core::RitResult full =
        core::run_rit(inst.job, asks, inst.tree, scenario.mechanism, rng);
    m.runtime_rit_ms = timer.elapsed_ms();
    m.success = full.success;
    m.probability_degraded = full.probability_degraded;
    double total_utility = 0.0;
    std::uint64_t allocated = 0;
    for (std::uint32_t j = 0; j < inst.population.size(); ++j) {
      total_utility += full.utility_of(j, costs[j]);
      allocated += full.allocation[j];
    }
    m.avg_utility_rit = n > 0 ? total_utility / n : 0.0;
    m.total_payment_rit = full.total_payment();
    m.tasks_allocated = allocated;
    m.solicitation_premium =
        core::solicitation_premium(full.payment, full.auction_payment);
  }
  return m;
}

TrialMetrics run_trial(const Scenario& scenario, std::uint64_t trial) {
  return run_trial(scenario, make_instance(scenario, trial));
}

AggregateMetrics run_many(
    const Scenario& scenario, std::uint64_t trials,
    const std::function<void(std::uint64_t, std::uint64_t)>& progress) {
  AggregateMetrics agg;
  // Throttled so a trials=1000 sweep does not spam its reporter: at most
  // one invocation per 100 ms, plus the final one.
  ProgressThrottle throttle;
  for (std::uint64_t t = 0; t < trials; ++t) {
    agg.add(run_trial(scenario, t));
    if (progress && throttle.should_fire(t + 1 == trials)) {
      progress(t + 1, trials);
    }
  }
  return agg;
}

AggregateMetrics run_until_precision(const Scenario& scenario,
                                     double target_ci,
                                     std::uint64_t min_trials,
                                     std::uint64_t max_trials) {
  RIT_CHECK(target_ci > 0.0);
  RIT_CHECK(min_trials >= 2 && min_trials <= max_trials);
  AggregateMetrics agg;
  for (std::uint64_t t = 0; t < max_trials; ++t) {
    agg.add(run_trial(scenario, t));
    if (t + 1 >= min_trials &&
        agg.avg_utility_rit.ci95_half_width() <= target_ci) {
      break;
    }
  }
  return agg;
}

AggregateMetrics run_many_parallel(const Scenario& scenario,
                                   std::uint64_t trials, unsigned threads) {
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  threads = static_cast<unsigned>(
      std::min<std::uint64_t>(threads, std::max<std::uint64_t>(trials, 1)));
  if (threads <= 1) return run_many(scenario, trials);

  // Strided partition: worker w takes trials w, w+threads, w+2*threads...
  // Each worker aggregates locally; merging in worker order afterwards
  // keeps the result independent of scheduling. The per-worker metrics
  // registries follow the same discipline: snapshot each, merge in
  // thread-index order, then fold the combined snapshot into the global
  // registry once.
  std::vector<AggregateMetrics> partial(threads);
  std::vector<obs::Registry> worker_metrics(threads);
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (unsigned w = 0; w < threads; ++w) {
    workers.emplace_back([&, w]() {
      obs::Stat& trial_ms = worker_metrics[w].stat("sim.trial_ms");
      for (std::uint64_t t = w; t < trials; t += threads) {
        obs::StatTimer timed(trial_ms);
        partial[w].add(run_trial(scenario, t));
      }
    });
  }
  for (auto& worker : workers) worker.join();

  obs::MetricsSnapshot merged;
  for (const obs::Registry& r : worker_metrics) merged.merge(r.snapshot());
  obs::Registry::global().absorb(merged);

  AggregateMetrics agg;
  for (const AggregateMetrics& p : partial) {
    agg.trials += p.trials;
    agg.successes += p.successes;
    agg.avg_utility_auction.merge(p.avg_utility_auction);
    agg.avg_utility_rit.merge(p.avg_utility_rit);
    agg.total_payment_auction.merge(p.total_payment_auction);
    agg.total_payment_rit.merge(p.total_payment_rit);
    agg.runtime_auction_ms.merge(p.runtime_auction_ms);
    agg.runtime_rit_ms.merge(p.runtime_rit_ms);
    agg.solicitation_premium.merge(p.solicitation_premium);
  }
  return agg;
}

}  // namespace rit::sim
