#include "attack/strategy_search.h"

#include <algorithm>

#include "attack/bid_strategies.h"
#include "attack/sybil_apply.h"
#include "common/check.h"
#include "common/parallel.h"
#include "stats/online_stats.h"

namespace rit::attack {

const SearchEntry& SearchResult::best() const {
  RIT_CHECK_MSG(!entries.empty(), "no candidates were evaluated");
  return entries.front();
}

double SearchResult::best_gain() const { return best().mean_utility - honest_mean; }

double SearchResult::gain_slack() const {
  return best().ci95 + honest_ci95;
}

namespace {
SybilPlan make_plan(const tree::IncentiveTree& tree,
                    std::span<const core::Ask> asks, std::uint32_t victim,
                    const AttackCandidate& candidate, rng::Rng& plan_rng) {
  switch (candidate.topology) {
    case Topology::kChain:
      return chain_plan(tree, asks, victim, candidate.identities,
                        candidate.ask_value);
    case Topology::kStar:
      return star_plan(tree, asks, victim, candidate.identities,
                       candidate.ask_value);
    case Topology::kRandom:
      return random_plan(tree, asks, victim, candidate.identities,
                         candidate.ask_value, plan_rng);
  }
  RIT_CHECK_MSG(false, "unhandled topology");
  return chain_plan(tree, asks, victim, 2, candidate.ask_value);
}
}  // namespace

SearchResult search_best_attack(const core::Job& job,
                                std::span<const core::Ask> asks,
                                const tree::IncentiveTree& tree,
                                std::uint32_t victim, double cost,
                                const core::RitConfig& config,
                                const SearchSpace& space) {
  RIT_CHECK(victim < asks.size());
  RIT_CHECK(cost > 0.0);
  RIT_CHECK(space.trials >= 2);
  RIT_CHECK(!space.identity_counts.empty());
  RIT_CHECK(!space.ask_factors.empty());
  RIT_CHECK(!space.topologies.empty());

  SearchResult result;
  // Honest baseline, one run per paired seed.
  {
    stats::OnlineStats honest;
    for (std::uint64_t t = 0; t < space.trials; ++t) {
      rng::Rng rng(space.base_seed + t);
      const core::RitResult r = core::run_rit(job, asks, tree, config, rng);
      honest.add(r.utility_of(victim, cost));
    }
    result.honest_mean = honest.mean();
    result.honest_ci95 = honest.ci95_half_width();
  }

  // Enumerate the candidate grid first, then fan the evaluations out over
  // workers. Every candidate is scored entirely within one worker with its
  // own seeded streams, and the results land at the candidate's grid index,
  // so the outcome is bit-for-bit identical for every thread count.
  const std::uint32_t capability = asks[victim].quantity;
  std::vector<AttackCandidate> candidates;
  for (const std::uint32_t delta : space.identity_counts) {
    if (delta > capability) continue;
    for (const double factor : space.ask_factors) {
      const double ask_value = cost * factor;
      // Identity count 1: a pure bid deviation; topology is irrelevant, so
      // evaluate it once.
      const std::vector<Topology> topologies =
          delta == 1 ? std::vector<Topology>{Topology::kChain}
                     : space.topologies;
      for (const Topology topology : topologies) {
        candidates.push_back(AttackCandidate{delta, topology, ask_value});
      }
    }
  }

  result.entries.resize(candidates.size());
  rit::parallel_for_strided(
      candidates.size(),
      rit::resolve_threads(space.threads, candidates.size()),
      [&](std::uint64_t c, unsigned /*worker*/) {
        const AttackCandidate& candidate = candidates[c];
        const std::uint32_t delta = candidate.identities;
        stats::OnlineStats utility;
        for (std::uint64_t t = 0; t < space.trials; ++t) {
          const std::uint64_t seed = space.base_seed + t;
          if (delta == 1) {
            const auto deviated =
                with_ask_value(asks, victim, candidate.ask_value);
            rng::Rng rng(seed);
            const core::RitResult r =
                core::run_rit(job, deviated, tree, config, rng);
            utility.add(r.utility_of(victim, cost));
          } else {
            rng::Rng plan_rng(seed ^ (delta * 0x9e3779b9ULL));
            const SybilPlan plan =
                make_plan(tree, asks, victim, candidate, plan_rng);
            const AttackedInstance attacked = apply_sybil(tree, asks, plan);
            rng::Rng rng(seed);
            const core::RitResult r = core::run_rit(
                job, attacked.asks, attacked.tree, config, rng);
            utility.add(attacked.attacker_utility(r, cost));
          }
        }
        result.entries[c] = SearchEntry{candidate, utility.mean(),
                                        utility.ci95_half_width()};
      });
  RIT_CHECK_MSG(!result.entries.empty(),
                "search space excluded every candidate (capability "
                    << capability << ")");
  std::stable_sort(result.entries.begin(), result.entries.end(),
                   [](const SearchEntry& a, const SearchEntry& b) {
                     return a.mean_utility > b.mean_utility;
                   });
  return result;
}

}  // namespace rit::attack
