#include "attack/sybil_apply.h"

#include <algorithm>

#include "obs/obs.h"

namespace rit::attack {

double AttackedInstance::attacker_utility(const core::RitResult& result,
                                          double unit_cost) const {
  return attacker_utility(result.payment, result.allocation, unit_cost);
}

double AttackedInstance::attacker_utility(
    std::span<const double> payments,
    std::span<const std::uint32_t> allocations, double unit_cost) const {
  double u = 0.0;
  for (std::uint32_t p : identity_participants) {
    u += core::utility(payments[p], allocations[p], unit_cost);
  }
  return u;
}

AttackedInstance apply_sybil(const tree::IncentiveTree& tree,
                             std::span<const core::Ask> asks,
                             const SybilPlan& plan) {
  RIT_TRACE_SPAN("attack.apply_sybil");
  RIT_COUNTER_INC("attack.sybil_attempts");
  RIT_COUNTER_ADD("attack.sybil_identities", plan.delta());
  validate_plan(tree, asks, plan, asks[plan.victim].quantity);
  const std::uint32_t n = static_cast<std::uint32_t>(asks.size());
  const std::uint32_t delta = plan.delta();
  const std::uint32_t victim_node = tree::node_of_participant(plan.victim);
  const TaskType type = asks[plan.victim].type;

  // Participant index of identity l (1-based l).
  auto identity_participant = [&](std::uint32_t l) {
    return l == 1 ? plan.victim : n + (l - 2);
  };

  AttackedInstance out{tree::IncentiveTree::root_only(), {}, {}};
  out.asks.assign(asks.begin(), asks.end());
  out.asks.resize(n + delta - 1);
  for (std::uint32_t l = 1; l <= delta; ++l) {
    const SybilIdentity& id = plan.identities[l - 1];
    out.asks[identity_participant(l)] =
        core::Ask{type, id.quantity, id.value};
  }

  std::vector<std::uint32_t> parents(n + delta, 0);
  const auto kids = tree.children(victim_node);
  // Non-victims keep their parent unless it was the victim, in which case
  // the plan's adopting identity takes over.
  for (std::uint32_t i = 0; i < n; ++i) {
    if (i == plan.victim) continue;
    const std::uint32_t node = tree::node_of_participant(i);
    const std::uint32_t parent = tree.parent(node);
    if (parent == victim_node) {
      const auto c = std::find(kids.begin(), kids.end(), node) - kids.begin();
      const std::uint32_t adopter = plan.child_assignment[c];
      parents[node] =
          tree::node_of_participant(identity_participant(adopter));
    } else {
      parents[node] = parent;
    }
  }
  for (std::uint32_t l = 1; l <= delta; ++l) {
    const SybilIdentity& id = plan.identities[l - 1];
    const std::uint32_t node =
        tree::node_of_participant(identity_participant(l));
    parents[node] =
        id.parent == kOriginalParent
            ? tree.parent(victim_node)
            : tree::node_of_participant(identity_participant(id.parent));
  }
  out.tree = tree::IncentiveTree(std::move(parents));

  out.identity_participants.reserve(delta);
  for (std::uint32_t l = 1; l <= delta; ++l) {
    out.identity_participants.push_back(identity_participant(l));
  }
  return out;
}

}  // namespace rit::attack
