// Applies a SybilPlan to an instance, producing the post-attack instance.
//
// Participant numbering in the attacked instance: every non-victim keeps its
// original index, identity 1 takes over the victim's slot, and identities
// 2..delta are appended at the end. This stability is what makes paired
// before/after comparisons (the sybil-proofness property tests and Fig. 9)
// straightforward.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "attack/sybil_plan.h"
#include "core/rit.h"
#include "core/types.h"
#include "tree/incentive_tree.h"

namespace rit::attack {

struct AttackedInstance {
  tree::IncentiveTree tree;
  std::vector<core::Ask> asks;
  /// Participant indices (in the attacked instance) of the delta identities,
  /// in creation order: {victim, n, n+1, ...}.
  std::vector<std::uint32_t> identity_participants;

  /// Total utility the attacker extracts from a result on the attacked
  /// instance: sum over identities of p - x * unit_cost (Sec. 3-B).
  double attacker_utility(const core::RitResult& result,
                          double unit_cost) const;
  /// Same for any (payment, allocation) pair, e.g. baseline mechanisms.
  double attacker_utility(std::span<const double> payments,
                          std::span<const std::uint32_t> allocations,
                          double unit_cost) const;
};

/// Rewrites (tree, asks) according to `plan`. The plan is validated against
/// the victim's truthful quantity first.
AttackedInstance apply_sybil(const tree::IncentiveTree& tree,
                             std::span<const core::Ask> asks,
                             const SybilPlan& plan);

}  // namespace rit::attack
