// Automated red-teaming: search the sybil/misreport strategy space for the
// most profitable attack against a given instance and victim.
//
// The theorems say no strategy beats honesty (w.p. >= H); this harness
// operationalizes that claim as a measurement: enumerate a grid of
// (identity count, topology, common ask value) candidates — identity count
// 1 degenerates to plain untruthful bidding — estimate each candidate's
// expected attacker utility with paired mechanism seeds against the honest
// baseline, and report the best found. A robust mechanism shows
// best_gain() <= statistical noise; a broken configuration (e.g.
// PriceMode::kOrderStatistic, or the naive combo) shows a positive gain
// with a concrete exploit attached. Used by bench_redteam and tests.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "attack/sybil_plan.h"
#include "core/rit.h"
#include "tree/incentive_tree.h"

namespace rit::attack {

enum class Topology { kChain, kStar, kRandom };

struct AttackCandidate {
  std::uint32_t identities{1};  // 1 = no sybils, pure bid deviation
  Topology topology{Topology::kChain};
  double ask_value{0.0};
};

struct SearchSpace {
  std::vector<std::uint32_t> identity_counts{1, 2, 3, 6};
  std::vector<Topology> topologies{Topology::kChain, Topology::kStar};
  /// Ask values as multiples of the victim's true cost.
  std::vector<double> ask_factors{0.5, 0.8, 1.0, 1.25, 2.0};
  /// Paired mechanism seeds per candidate.
  std::uint64_t trials{40};
  std::uint64_t base_seed{0xbadc0de};
  /// Worker threads for the candidate fan-out (0 = hardware concurrency).
  /// Every candidate is evaluated wholly inside one worker with its own
  /// seeded streams, so the result is bit-for-bit identical for every
  /// thread count; 1 (the default) runs inline.
  unsigned threads{1};
};

struct SearchEntry {
  AttackCandidate candidate;
  double mean_utility{0.0};
  double ci95{0.0};
};

struct SearchResult {
  double honest_mean{0.0};
  double honest_ci95{0.0};
  /// Every evaluated candidate, best first.
  std::vector<SearchEntry> entries;

  const SearchEntry& best() const;
  /// Best expected utility minus the honest expectation.
  double best_gain() const;
  /// Combined 95% slack of the best-vs-honest comparison.
  double gain_slack() const;
};

/// Runs the search. `victim` is a participant index; `cost` its true unit
/// cost (the honest baseline bids it). Candidates whose identity count
/// exceeds the victim's capability are skipped.
SearchResult search_best_attack(const core::Job& job,
                                std::span<const core::Ask> asks,
                                const tree::IncentiveTree& tree,
                                std::uint32_t victim, double cost,
                                const core::RitConfig& config,
                                const SearchSpace& space = {});

}  // namespace rit::attack
