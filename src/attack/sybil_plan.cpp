#include "attack/sybil_plan.h"

#include <algorithm>

#include "common/check.h"

namespace rit::attack {

std::uint32_t SybilPlan::total_quantity() const {
  std::uint32_t total = 0;
  for (const SybilIdentity& id : identities) total += id.quantity;
  return total;
}

void validate_plan(const tree::IncentiveTree& tree,
                   std::span<const core::Ask> asks, const SybilPlan& plan,
                   std::uint32_t capability) {
  RIT_CHECK(asks.size() == tree.num_participants());
  RIT_CHECK_MSG(plan.victim < asks.size(),
                "victim " << plan.victim << " out of range");
  RIT_CHECK_MSG(!plan.identities.empty(), "a plan needs >= 1 identity");
  for (std::size_t l = 0; l < plan.identities.size(); ++l) {
    const SybilIdentity& id = plan.identities[l];
    RIT_CHECK_MSG(id.quantity > 0, "identity " << l + 1 << " has quantity 0");
    RIT_CHECK_MSG(id.value > 0.0, "identity " << l + 1 << " has value <= 0");
    RIT_CHECK_MSG(id.parent == kOriginalParent || id.parent <= l,
                  "identity " << l + 1 << " attaches to identity "
                              << id.parent
                              << ", which is not created before it");
  }
  RIT_CHECK_MSG(plan.total_quantity() <= capability,
                "identities claim " << plan.total_quantity()
                                    << " tasks but the user can do only "
                                    << capability);
  const std::uint32_t victim_node = tree::node_of_participant(plan.victim);
  const auto kids = tree.children(victim_node);
  RIT_CHECK_MSG(plan.child_assignment.size() == kids.size(),
                "plan assigns " << plan.child_assignment.size()
                                << " children, node has " << kids.size());
  for (std::uint32_t a : plan.child_assignment) {
    RIT_CHECK_MSG(a >= 1 && a <= plan.delta(),
                  "child assigned to nonexistent identity " << a);
  }
}

namespace {
/// Splits `total` into `parts` positive integers as evenly as possible.
/// Requires parts <= total.
std::vector<std::uint32_t> even_split(std::uint32_t total,
                                      std::uint32_t parts) {
  RIT_CHECK_MSG(parts >= 1 && parts <= total,
                "cannot split " << total << " tasks into " << parts
                                << " positive parts");
  std::vector<std::uint32_t> out(parts, total / parts);
  for (std::uint32_t i = 0; i < total % parts; ++i) ++out[i];
  return out;
}
}  // namespace

SybilPlan chain_plan(const tree::IncentiveTree& tree,
                     std::span<const core::Ask> asks, std::uint32_t victim,
                     std::uint32_t delta, double ask_value) {
  RIT_CHECK(victim < asks.size());
  SybilPlan plan;
  plan.victim = victim;
  const auto quantities = even_split(asks[victim].quantity, delta);
  for (std::uint32_t l = 0; l < delta; ++l) {
    plan.identities.push_back({quantities[l], ask_value,
                               l == 0 ? kOriginalParent : l});
  }
  const auto kids = tree.children(tree::node_of_participant(victim));
  plan.child_assignment.assign(kids.size(), delta);  // deepest identity
  validate_plan(tree, asks, plan, asks[victim].quantity);
  return plan;
}

SybilPlan star_plan(const tree::IncentiveTree& tree,
                    std::span<const core::Ask> asks, std::uint32_t victim,
                    std::uint32_t delta, double ask_value) {
  RIT_CHECK(victim < asks.size());
  SybilPlan plan;
  plan.victim = victim;
  const auto quantities = even_split(asks[victim].quantity, delta);
  for (std::uint32_t l = 0; l < delta; ++l) {
    plan.identities.push_back({quantities[l], ask_value, kOriginalParent});
  }
  const auto kids = tree.children(tree::node_of_participant(victim));
  plan.child_assignment.resize(kids.size());
  for (std::size_t c = 0; c < kids.size(); ++c) {
    plan.child_assignment[c] = static_cast<std::uint32_t>(c % delta) + 1;
  }
  validate_plan(tree, asks, plan, asks[victim].quantity);
  return plan;
}

SybilPlan random_plan(const tree::IncentiveTree& tree,
                      std::span<const core::Ask> asks, std::uint32_t victim,
                      std::uint32_t delta, double ask_value, rng::Rng& rng) {
  RIT_CHECK(victim < asks.size());
  const std::uint32_t total = asks[victim].quantity;
  RIT_CHECK_MSG(delta >= 1 && delta <= total,
                "cannot create " << delta << " identities from capability "
                                 << total);
  SybilPlan plan;
  plan.victim = victim;
  // Random positive split: delta-1 distinct cut points in [1, total).
  auto cuts = rng.sample_without_replacement(total - 1, delta - 1);
  std::sort(cuts.begin(), cuts.end());
  std::uint32_t prev = 0;
  for (std::uint32_t l = 0; l < delta; ++l) {
    const std::uint32_t edge =
        l + 1 == delta ? total : static_cast<std::uint32_t>(cuts[l]) + 1;
    const std::uint32_t parent =
        l == 0 ? kOriginalParent
               : static_cast<std::uint32_t>(rng.uniform_index(l + 1));
    plan.identities.push_back({edge - prev, ask_value, parent});
    prev = edge;
  }
  const auto kids = tree.children(tree::node_of_participant(victim));
  plan.child_assignment.resize(kids.size());
  for (auto& a : plan.child_assignment) {
    a = static_cast<std::uint32_t>(rng.uniform_index(delta)) + 1;
  }
  validate_plan(tree, asks, plan, total);
  return plan;
}

}  // namespace rit::attack
