// Untruthful-bid transforms used by the truthfulness experiments and tests.
#pragma once

#include <span>
#include <vector>

#include "core/types.h"
#include "rng/rng.h"

namespace rit::attack {

/// Copy of `asks` with user j's ask value replaced by `value`.
std::vector<core::Ask> with_ask_value(std::span<const core::Ask> asks,
                                      std::uint32_t user, double value);

/// Copy of `asks` with user j's claimed quantity replaced by `quantity`
/// (underreporting capability; quantity must be >= 1).
std::vector<core::Ask> with_quantity(std::span<const core::Ask> asks,
                                     std::uint32_t user,
                                     std::uint32_t quantity);

/// A deterministic grid of deviation bids around a true cost, used to probe
/// truthfulness: multiplicative factors applied to `cost`, clipped to be
/// positive. Factors span aggressive underbidding to strong overbidding.
std::vector<double> deviation_grid(double cost);

/// A random deviation in (0, max_value]: either a perturbation of `cost` or
/// a fresh uniform draw, mixing local and global deviations.
double random_deviation(double cost, double max_value, rng::Rng& rng);

}  // namespace rit::attack
