// Sybil attack plans (Sec. 3-B).
//
// A user P_j replaces itself with delta(j) > 1 fake identities. The model's
// structural rules, enforced by validate_plan():
//   * every identity attaches either to P_j's original parent or to another
//     (earlier-created) identity of P_j — never to an unrelated user;
//   * each original child of P_j is adopted by exactly one identity; the
//     rest of the tree is untouched;
//   * identities share P_j's task type, and their claimed quantities sum to
//     at most P_j's capability K_j (here: its truthful ask quantity).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/types.h"
#include "rng/rng.h"
#include "tree/incentive_tree.h"

namespace rit::attack {

/// Parent slot meaning inside a SybilPlan: kOriginalParent, or the 1-based
/// index of an earlier identity.
constexpr std::uint32_t kOriginalParent = 0;

struct SybilIdentity {
  std::uint32_t quantity{0};  // k of this identity's ask, > 0
  double value{0.0};          // a of this identity's ask, > 0
  /// kOriginalParent, or l in [1, own index) to attach below identity l.
  std::uint32_t parent{kOriginalParent};
};

struct SybilPlan {
  /// Participant index of the attacking user in the original instance.
  std::uint32_t victim{0};
  /// delta(j) identities, creation order. Must have size >= 1 (size 1 is
  /// the degenerate "attack" that merely renames the user — useful as the
  /// identity element in tests).
  std::vector<SybilIdentity> identities;
  /// For each original child of the victim's node, in IncentiveTree
  /// children() order: the 1-based identity that adopts it.
  std::vector<std::uint32_t> child_assignment;

  std::uint32_t delta() const {
    return static_cast<std::uint32_t>(identities.size());
  }
  std::uint32_t total_quantity() const;
};

/// Throws CheckFailure when the plan violates the Sec. 3-B rules against
/// the given instance. `capability` is the K_j bound for the quantity-sum
/// rule (pass the victim's truthful k_j).
void validate_plan(const tree::IncentiveTree& tree,
                   std::span<const core::Ask> asks, const SybilPlan& plan,
                   std::uint32_t capability);

/// A chain: identity 1 under the original parent, identity l+1 under
/// identity l; all original children adopted by the deepest identity; the
/// victim's quantity split as evenly as possible; every identity asks
/// `ask_value`. This is the intro's Bob attack generalized.
SybilPlan chain_plan(const tree::IncentiveTree& tree,
                     std::span<const core::Ask> asks, std::uint32_t victim,
                     std::uint32_t delta, double ask_value);

/// A star: every identity directly under the original parent; children
/// spread round-robin; even quantity split; common ask value.
SybilPlan star_plan(const tree::IncentiveTree& tree,
                    std::span<const core::Ask> asks, std::uint32_t victim,
                    std::uint32_t delta, double ask_value);

/// The Fig. 9 generator: random positive quantity split, random topology
/// (each identity under the original parent or a uniformly chosen earlier
/// identity), random child adoption; every identity asks `ask_value`.
SybilPlan random_plan(const tree::IncentiveTree& tree,
                      std::span<const core::Ask> asks, std::uint32_t victim,
                      std::uint32_t delta, double ask_value, rng::Rng& rng);

}  // namespace rit::attack
