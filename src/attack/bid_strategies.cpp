#include "attack/bid_strategies.h"

#include <algorithm>

#include "common/check.h"

namespace rit::attack {

std::vector<core::Ask> with_ask_value(std::span<const core::Ask> asks,
                                      std::uint32_t user, double value) {
  RIT_CHECK(user < asks.size());
  RIT_CHECK(value > 0.0);
  std::vector<core::Ask> out(asks.begin(), asks.end());
  out[user].value = value;
  return out;
}

std::vector<core::Ask> with_quantity(std::span<const core::Ask> asks,
                                     std::uint32_t user,
                                     std::uint32_t quantity) {
  RIT_CHECK(user < asks.size());
  RIT_CHECK(quantity >= 1);
  std::vector<core::Ask> out(asks.begin(), asks.end());
  out[user].quantity = quantity;
  return out;
}

std::vector<double> deviation_grid(double cost) {
  RIT_CHECK(cost > 0.0);
  static constexpr double kFactors[] = {0.25, 0.5, 0.8, 0.95, 1.05,
                                        1.25, 1.5, 2.0,  4.0};
  std::vector<double> out;
  out.reserve(std::size(kFactors));
  for (double f : kFactors) out.push_back(cost * f);
  return out;
}

double random_deviation(double cost, double max_value, rng::Rng& rng) {
  RIT_CHECK(cost > 0.0 && max_value > 0.0);
  if (rng.bernoulli(0.5)) {
    // Local: +-50% around the cost.
    const double v = cost * rng.uniform_real(0.5, 1.5);
    return std::min(std::max(v, 1e-9), max_value);
  }
  return rng.uniform_real_left_open(0.0, max_value);
}

}  // namespace rit::attack
