#include "attack/sybil_experiment.h"

#include "attack/sybil_apply.h"
#include "attack/sybil_plan.h"
#include "common/check.h"
#include "common/parallel.h"
#include "core/rit.h"
#include "sim/parallel.h"

namespace rit::attack {

namespace {
std::uint32_t pick_and_upgrade_victim(const sim::Scenario& scenario,
                                      sim::TrialInstance& inst,
                                      const SybilExperimentConfig& config) {
  rng::Rng probe_rng(inst.mechanism_seed ^ 0x9999);
  const core::RitResult probe =
      core::run_rit(inst.job, inst.population.truthful_asks, inst.tree,
                    scenario.mechanism, probe_rng);
  std::uint32_t victim = 29 % inst.population.size();
  for (std::uint32_t j = 0; j < inst.population.size(); ++j) {
    const std::uint32_t candidate = (29 + j) % inst.population.size();
    if (probe.auction_payment[candidate] > 0.0) {
      victim = candidate;
      break;
    }
  }
  inst.population.truthful_asks[victim].quantity = config.victim_capability;
  inst.population.truthful_asks[victim].value = config.victim_cost;
  inst.population.costs[victim] = config.victim_cost;
  return victim;
}
}  // namespace

std::vector<SybilSeriesPoint> run_sybil_experiment(
    const sim::Scenario& scenario, const SybilExperimentConfig& config) {
  RIT_CHECK(config.delta_lo >= 2);
  RIT_CHECK(config.delta_hi >= config.delta_lo);
  RIT_CHECK(config.delta_hi <= config.victim_capability);
  RIT_CHECK(!config.ask_values.empty());
  RIT_CHECK(config.victim_cost > 0.0);

  std::vector<SybilSeriesPoint> out;
  for (std::uint32_t delta = config.delta_lo; delta <= config.delta_hi;
       ++delta) {
    SybilSeriesPoint point;
    point.identities = delta;
    point.utility.resize(config.ask_values.size());

    struct Worker {
      std::vector<stats::OnlineStats> utility;
      stats::OnlineStats honest;
      core::RitWorkspace ws;
    };
    std::vector<Worker> workers(
        rit::resolve_threads(config.threads, config.trials));
    for (Worker& wk : workers) wk.utility.resize(config.ask_values.size());
    sim::parallel_trials(
        config.trials, workers, [&](Worker& wk, std::uint64_t trial) {
          sim::TrialInstance inst = sim::make_instance(scenario, trial);
          const std::uint32_t victim =
              pick_and_upgrade_victim(scenario, inst, config);

          // One random topology per (trial, delta), shared across ask
          // values so the series are directly comparable. The ask value is
          // patched into the plan afterwards.
          rng::Rng plan_rng(inst.mechanism_seed ^ (delta * 2654435761ULL));
          SybilPlan plan = random_plan(
              inst.tree, inst.population.truthful_asks, victim, delta,
              config.ask_values.front(), plan_rng);

          for (std::size_t a = 0; a < config.ask_values.size(); ++a) {
            for (auto& identity : plan.identities) {
              identity.value = config.ask_values[a];
            }
            const AttackedInstance attacked = apply_sybil(
                inst.tree, inst.population.truthful_asks, plan);
            rng::Rng rng(inst.mechanism_seed);
            const core::RitResult r =
                core::run_rit(inst.job, attacked.asks, attacked.tree,
                              scenario.mechanism, rng, wk.ws);
            wk.utility[a].add(
                attacked.attacker_utility(r, config.victim_cost));
          }

          rng::Rng rng(inst.mechanism_seed);
          const core::RitResult honest_run =
              core::run_rit(inst.job, inst.population.truthful_asks,
                            inst.tree, scenario.mechanism, rng, wk.ws);
          wk.honest.add(honest_run.utility_of(victim, config.victim_cost));
        });
    for (const Worker& wk : workers) {
      for (std::size_t a = 0; a < config.ask_values.size(); ++a) {
        point.utility[a].merge(wk.utility[a]);
      }
      point.honest.merge(wk.honest);
    }
    out.push_back(std::move(point));
  }
  return out;
}

}  // namespace rit::attack
