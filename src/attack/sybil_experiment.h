// The Fig. 9 experiment as a reusable component: designate a victim, sweep
// sybil-attack sizes and ask values, and measure the attacker's expected
// utility against the honest reference. Used by bench_fig9_sybil_utility
// and the integration tests.
//
// Lives in attack/ (tier 4), not sim/ (tier 3): the experiment composes
// the sybil-attack machinery (sybil_plan, sybil_apply) with the trial
// runner, and the layering DAG says attack may depend on sim, never the
// reverse.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/runner.h"
#include "stats/online_stats.h"

namespace rit::attack {

struct SybilExperimentConfig {
  /// The victim's private unit cost (the paper's c_29 = 5.5).
  double victim_cost = 5.5;
  /// The victim's capability K (the paper's K_29 = 17; also the maximum
  /// number of identities).
  std::uint32_t victim_capability = 17;
  /// Identity counts to sweep (paper: 2..17).
  std::uint32_t delta_lo = 2;
  std::uint32_t delta_hi = 17;
  /// Common ask value for every identity in one series (paper: 5.5, 6.5,
  /// 6.25).
  std::vector<double> ask_values{5.5, 6.5, 6.25};
  std::uint64_t trials = 30;
  /// Worker threads for the per-delta trial fan-out (0 = hardware
  /// concurrency). Defaults to 1 — the exact serial path — so library
  /// callers are unchanged unless they opt in; trials are independently
  /// seeded and merged in worker order, so any value is deterministic.
  unsigned threads = 1;
};

struct SybilSeriesPoint {
  std::uint32_t identities{0};
  /// One accumulator per ask value, in config order.
  std::vector<stats::OnlineStats> utility;
  /// Honest single-identity truthful reference on the same instances.
  stats::OnlineStats honest;
};

/// Runs the experiment over `scenario` instances. Per trial, the victim is
/// the first user (scanning from index 29, the paper's P_29) whose truthful
/// auction payment is non-zero on a probe run; it is then upgraded to the
/// configured capability/cost. Plans are random (Sec. 7-B "randomly
/// generate the identities") but identical across ask values so the series
/// differ only in the asks.
std::vector<SybilSeriesPoint> run_sybil_experiment(
    const sim::Scenario& scenario, const SybilExperimentConfig& config);

}  // namespace rit::attack
