#include "graph/edge_list_io.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <unordered_map>

namespace rit::graph {

Graph read_edge_list(std::istream& in) {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> raw;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    // Strip comments and whitespace-only lines.
    if (auto hash = line.find('#'); hash != std::string::npos) {
      line.erase(hash);
    }
    std::istringstream ls(line);
    std::uint64_t from = 0;
    std::uint64_t to = 0;
    if (!(ls >> from)) continue;  // blank / comment-only line
    RIT_CHECK_MSG(static_cast<bool>(ls >> to),
                  "edge list line " << line_no << ": missing target id");
    std::string trailing;
    RIT_CHECK_MSG(!(ls >> trailing),
                  "edge list line " << line_no << ": trailing tokens");
    if (from == to) continue;  // drop self-loops silently, as SNAP tools do
    raw.emplace_back(from, to);
  }

  // Dense remap, ordered by original id for determinism.
  std::vector<std::uint64_t> ids;
  ids.reserve(raw.size() * 2);
  for (auto& [f, t] : raw) {
    ids.push_back(f);
    ids.push_back(t);
  }
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  std::unordered_map<std::uint64_t, std::uint32_t> remap;
  remap.reserve(ids.size());
  for (std::uint32_t i = 0; i < ids.size(); ++i) remap[ids[i]] = i;

  std::vector<Edge> edges;
  edges.reserve(raw.size());
  for (auto& [f, t] : raw) edges.push_back({remap[f], remap[t]});
  return Graph(static_cast<std::uint32_t>(ids.size()), std::move(edges));
}

Graph read_edge_list_file(const std::string& path) {
  std::ifstream in(path);
  RIT_CHECK_MSG(in.good(), "cannot open edge list file: " << path);
  return read_edge_list(in);
}

void write_edge_list(const Graph& g, std::ostream& out) {
  out << "# ritcs edge list: " << g.num_nodes() << " nodes, " << g.num_edges()
      << " edges\n";
  for (const Edge& e : g.edges()) out << e.from << ' ' << e.to << '\n';
}

}  // namespace rit::graph
