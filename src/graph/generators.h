// Synthetic social-graph generators.
//
// Each randomized generator draws its edge list from a single sequential
// RNG stream (edge draws are order-dependent, so the drawing loop cannot be
// split across workers without changing the graph); the optional `threads`
// parameter instead parallelizes the CSR construction sort inside Graph's
// constructor, which dominates at millions of edges and is bit-identical at
// any thread count.
//
// The paper builds its incentive tree from the SNAP ego-Twitter dataset
// [21]. That dataset is not redistributable with this repository, so per
// DESIGN.md we substitute synthetic graphs. Barabási–Albert preferential
// attachment is the default: its heavy-tailed degree distribution produces
// the same shallow, bushy incentive trees a follower graph does, which is
// the property the payment-determination phase is sensitive to. The other
// families exist for the graph-sensitivity ablation.
#pragma once

#include <cstdint>

#include "graph/graph.h"
#include "rng/rng.h"

namespace rit::graph {

/// Barabási–Albert preferential attachment. Each new node attaches
/// `edges_per_node` out-edges *from* existing high-degree nodes *to* itself
/// (an influencer recruits the newcomer). Node 0..edges_per_node form a seed
/// clique. Requires num_nodes > edges_per_node >= 1.
Graph barabasi_albert(std::uint32_t num_nodes, std::uint32_t edges_per_node,
                      rng::Rng& rng, unsigned threads = 1);

/// Erdős–Rényi G(n, p) digraph (each ordered pair independently with
/// probability p, no self-loops). Uses geometric skipping, O(E) expected.
Graph erdos_renyi(std::uint32_t num_nodes, double p, rng::Rng& rng,
                  unsigned threads = 1);

/// Watts–Strogatz small-world graph, directed variant: ring of
/// `num_nodes` nodes, each with edges to its next `k/2` neighbours in both
/// directions, each edge rewired with probability `beta`.
Graph watts_strogatz(std::uint32_t num_nodes, std::uint32_t k, double beta,
                     rng::Rng& rng, unsigned threads = 1);

/// Star: node 0 -> every other node. Produces a depth-2 incentive tree
/// (platform -> hub -> leaves); stress-case for solicitation rewards.
Graph star(std::uint32_t num_nodes);

/// Directed path 0 -> 1 -> ... -> n-1. Produces the deepest possible tree;
/// stress-case for the (1/2)^r discount underflow.
Graph path(std::uint32_t num_nodes);

/// Complete digraph (every ordered pair). Only sensible for tiny n.
Graph complete(std::uint32_t num_nodes);

/// Directed configuration model with a Zipf(exponent) out-degree sequence:
/// out-degrees are drawn from P(d) ~ d^-exponent over [1, max_degree],
/// then each out-stub is wired to a uniformly random distinct target
/// (self-loops and duplicate edges are re-drawn, with a deterministic
/// fallback after excessive rejections). The closest synthetic match to a
/// measured follower graph when the target degree *distribution* is known:
/// ego-Twitter's out-degree tail is roughly exponent ~2. Requires
/// num_nodes >= 2, exponent > 1, 1 <= max_degree < num_nodes.
Graph configuration_model(std::uint32_t num_nodes, double exponent,
                          std::uint32_t max_degree, rng::Rng& rng,
                          unsigned threads = 1);

}  // namespace rit::graph
