#include "graph/metrics.h"

#include <algorithm>
#include <queue>

#include "common/check.h"

namespace rit::graph {

namespace {
DegreeStats stats_from_degrees(std::vector<double> degrees,
                               std::size_t num_edges) {
  RIT_CHECK(!degrees.empty());
  DegreeStats s;
  std::sort(degrees.begin(), degrees.end());
  const auto n = degrees.size();
  double sum = 0.0;
  for (double d : degrees) sum += d;
  s.mean = sum / static_cast<double>(n);
  s.max = degrees.back();
  auto pct = [&](double p) {
    const auto idx = static_cast<std::size_t>(p * static_cast<double>(n - 1));
    return degrees[idx];
  };
  s.p50 = pct(0.50);
  s.p90 = pct(0.90);
  s.p99 = pct(0.99);
  s.max_over_mean = s.mean > 0.0 ? s.max / s.mean : 0.0;
  const std::size_t top = std::max<std::size_t>(1, n / 100);
  double top_sum = 0.0;
  for (std::size_t i = n - top; i < n; ++i) top_sum += degrees[i];
  s.top1pct_share = num_edges > 0
                        ? top_sum / static_cast<double>(num_edges)
                        : 0.0;
  return s;
}
}  // namespace

DegreeStats out_degree_stats(const Graph& g) {
  RIT_CHECK(g.num_nodes() >= 1);
  std::vector<double> degrees(g.num_nodes());
  for (std::uint32_t u = 0; u < g.num_nodes(); ++u) {
    degrees[u] = static_cast<double>(g.out_degree(u));
  }
  return stats_from_degrees(std::move(degrees), g.num_edges());
}

DegreeStats in_degree_stats(const Graph& g) {
  RIT_CHECK(g.num_nodes() >= 1);
  std::vector<double> degrees(g.num_nodes());
  for (std::uint32_t u = 0; u < g.num_nodes(); ++u) {
    degrees[u] = static_cast<double>(g.in_degree(u));
  }
  return stats_from_degrees(std::move(degrees), g.num_edges());
}

ReachabilityStats reachability(const Graph& g,
                               const std::vector<std::uint32_t>& sources) {
  ReachabilityStats out;
  if (g.num_nodes() == 0) return out;
  std::vector<bool> seen(g.num_nodes(), false);
  std::queue<std::pair<std::uint32_t, std::uint32_t>> frontier;  // node,depth
  std::size_t count = 0;
  for (std::uint32_t s : sources) {
    RIT_CHECK(s < g.num_nodes());
    if (seen[s]) continue;
    seen[s] = true;
    ++count;
    frontier.emplace(s, 0);
  }
  while (!frontier.empty()) {
    const auto [u, depth] = frontier.front();
    frontier.pop();
    out.bfs_depth = std::max(out.bfs_depth, depth);
    for (std::uint32_t v : g.out_neighbors(u)) {
      if (seen[v]) continue;
      seen[v] = true;
      ++count;
      frontier.emplace(v, depth + 1);
    }
  }
  out.reachable_fraction =
      static_cast<double>(count) / static_cast<double>(g.num_nodes());
  return out;
}

double estimate_clustering(const Graph& g, std::size_t samples,
                           rng::Rng& rng) {
  RIT_CHECK(samples > 0);
  // Nodes that can anchor a length-2 path: out-degree >= 1 whose neighbours
  // have out-degree >= 1.
  std::vector<std::uint32_t> candidates;
  for (std::uint32_t u = 0; u < g.num_nodes(); ++u) {
    if (g.out_degree(u) >= 1) candidates.push_back(u);
  }
  if (candidates.empty()) return 0.0;
  std::size_t paths = 0;
  std::size_t closed = 0;
  for (std::size_t i = 0; i < samples; ++i) {
    const std::uint32_t u = candidates[rng.uniform_index(candidates.size())];
    const auto nu = g.out_neighbors(u);
    const std::uint32_t v = nu[rng.uniform_index(nu.size())];
    const auto nv = g.out_neighbors(v);
    if (nv.empty()) continue;
    const std::uint32_t w = nv[rng.uniform_index(nv.size())];
    if (w == u) continue;
    ++paths;
    if (g.has_edge(u, w)) ++closed;
  }
  return paths == 0 ? 0.0
                    : static_cast<double>(closed) / static_cast<double>(paths);
}

}  // namespace rit::graph
