#include "graph/graph.h"

#include <algorithm>

namespace rit::graph {

Graph::Graph(std::uint32_t num_nodes, std::vector<Edge> edges)
    : num_nodes_(num_nodes) {
  for (const Edge& e : edges) {
    RIT_CHECK_MSG(e.from < num_nodes && e.to < num_nodes,
                  "edge (" << e.from << "," << e.to << ") out of range for "
                           << num_nodes << " nodes");
    RIT_CHECK_MSG(e.from != e.to, "self-loop at node " << e.from);
  }
  std::sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
    return a.from != b.from ? a.from < b.from : a.to < b.to;
  });
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());

  offsets_.assign(num_nodes_ + 1, 0);
  targets_.reserve(edges.size());
  in_degree_.assign(num_nodes_, 0);
  for (const Edge& e : edges) {
    ++offsets_[e.from + 1];
    targets_.push_back(e.to);
    ++in_degree_[e.to];
  }
  for (std::size_t i = 1; i < offsets_.size(); ++i) {
    offsets_[i] += offsets_[i - 1];
  }
}

bool Graph::has_edge(std::uint32_t u, std::uint32_t v) const {
  auto nbrs = out_neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

std::vector<Edge> Graph::edges() const {
  std::vector<Edge> out;
  out.reserve(num_edges());
  for (std::uint32_t u = 0; u < num_nodes_; ++u) {
    for (std::uint32_t v : out_neighbors(u)) out.push_back({u, v});
  }
  return out;
}

std::vector<std::uint32_t> Graph::sources() const {
  std::vector<std::uint32_t> out;
  for (std::uint32_t u = 0; u < num_nodes_; ++u) {
    if (in_degree_[u] == 0) out.push_back(u);
  }
  return out;
}

}  // namespace rit::graph
