#include "graph/graph.h"

#include <algorithm>

#include "common/parallel.h"

namespace rit::graph {

namespace {

bool edge_less(const Edge& a, const Edge& b) {
  return a.from != b.from ? a.from < b.from : a.to < b.to;
}

/// Sorts by (from, to). With more than one resolved worker: T contiguous
/// blocks sorted concurrently, then folded left-to-right with
/// std::inplace_merge. edge_less is a total order on distinct edges and
/// equal edges are indistinguishable, so the merged sequence is
/// byte-identical to the serial std::sort at any thread count.
void sort_edges(std::vector<Edge>& edges, unsigned threads) {
  const unsigned t = rit::resolve_threads(threads, edges.size());
  // Below ~64k edges the spawn + merge overhead beats the win.
  if (t <= 1 || edges.size() < (1u << 16)) {
    std::sort(edges.begin(), edges.end(), edge_less);
    return;
  }
  std::vector<std::size_t> bounds(t + 1);
  for (unsigned w = 0; w <= t; ++w) bounds[w] = edges.size() * w / t;
  rit::parallel_for_blocked(
      t, t, [&](std::uint64_t begin, std::uint64_t end, unsigned) {
        for (std::uint64_t b = begin; b < end; ++b) {
          std::sort(edges.begin() + static_cast<std::ptrdiff_t>(bounds[b]),
                    edges.begin() + static_cast<std::ptrdiff_t>(bounds[b + 1]),
                    edge_less);
        }
      });
  for (unsigned w = 1; w < t; ++w) {
    std::inplace_merge(edges.begin(),
                       edges.begin() + static_cast<std::ptrdiff_t>(bounds[w]),
                       edges.begin() +
                           static_cast<std::ptrdiff_t>(bounds[w + 1]),
                       edge_less);
  }
}

}  // namespace

Graph::Graph(std::uint32_t num_nodes, std::vector<Edge> edges,
             unsigned threads)
    : num_nodes_(num_nodes) {
  for (const Edge& e : edges) {
    RIT_CHECK_MSG(e.from < num_nodes && e.to < num_nodes,
                  "edge (" << e.from << "," << e.to << ") out of range for "
                           << num_nodes << " nodes");
    RIT_CHECK_MSG(e.from != e.to, "self-loop at node " << e.from);
  }
  sort_edges(edges, threads);
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());

  offsets_.assign(num_nodes_ + 1, 0);
  targets_.reserve(edges.size());
  in_degree_.assign(num_nodes_, 0);
  for (const Edge& e : edges) {
    ++offsets_[e.from + 1];
    targets_.push_back(e.to);
    ++in_degree_[e.to];
  }
  for (std::size_t i = 1; i < offsets_.size(); ++i) {
    offsets_[i] += offsets_[i - 1];
  }
}

bool Graph::has_edge(std::uint32_t u, std::uint32_t v) const {
  auto nbrs = out_neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

std::vector<Edge> Graph::edges() const {
  std::vector<Edge> out;
  out.reserve(num_edges());
  for (std::uint32_t u = 0; u < num_nodes_; ++u) {
    for (std::uint32_t v : out_neighbors(u)) out.push_back({u, v});
  }
  return out;
}

std::vector<std::uint32_t> Graph::sources() const {
  std::vector<std::uint32_t> out;
  for (std::uint32_t u = 0; u < num_nodes_; ++u) {
    if (in_degree_[u] == 0) out.push_back(u);
  }
  return out;
}

}  // namespace rit::graph
