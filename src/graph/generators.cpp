#include "graph/generators.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace rit::graph {

Graph barabasi_albert(std::uint32_t num_nodes, std::uint32_t edges_per_node,
                      rng::Rng& rng, unsigned threads) {
  RIT_CHECK(edges_per_node >= 1);
  RIT_CHECK(num_nodes > edges_per_node);
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(num_nodes) * edges_per_node);
  // repeated-nodes list: each endpoint appears once per incident edge, so a
  // uniform draw from it is a degree-proportional draw.
  std::vector<std::uint32_t> endpoints;
  endpoints.reserve(2ull * num_nodes * edges_per_node);

  // Seed: a small clique of edges_per_node+1 nodes (influence both ways).
  const std::uint32_t seed_n = edges_per_node + 1;
  for (std::uint32_t u = 0; u < seed_n; ++u) {
    for (std::uint32_t v = 0; v < seed_n; ++v) {
      if (u == v) continue;
      edges.push_back({u, v});
      endpoints.push_back(u);
    }
  }

  std::vector<std::uint32_t> picked;
  picked.reserve(edges_per_node);
  for (std::uint32_t v = seed_n; v < num_nodes; ++v) {
    picked.clear();
    // Draw edges_per_node distinct influencers, degree-proportionally.
    std::size_t guard = 0;
    while (picked.size() < edges_per_node) {
      std::uint32_t u = endpoints[rng.uniform_index(endpoints.size())];
      bool dup = false;
      for (std::uint32_t w : picked) {
        if (w == u) {
          dup = true;
          break;
        }
      }
      if (!dup) picked.push_back(u);
      // Degenerate protection: with tiny seed graphs rejection can loop; fall
      // back to uniform over all existing nodes after excessive rejections.
      if (++guard > 64ull * edges_per_node && picked.size() < edges_per_node) {
        std::uint32_t u2 = static_cast<std::uint32_t>(rng.uniform_index(v));
        bool dup2 = false;
        for (std::uint32_t w : picked) {
          if (w == u2) dup2 = true;
        }
        if (!dup2) picked.push_back(u2);
      }
    }
    for (std::uint32_t u : picked) {
      edges.push_back({u, v});  // influencer u recruits newcomer v
      endpoints.push_back(u);
      endpoints.push_back(v);
    }
  }
  return Graph(num_nodes, std::move(edges), threads);
}

Graph erdos_renyi(std::uint32_t num_nodes, double p, rng::Rng& rng,
                  unsigned threads) {
  RIT_CHECK(p >= 0.0 && p <= 1.0);
  std::vector<Edge> edges;
  if (p > 0.0 && num_nodes > 1) {
    // Iterate over the n*(n-1) ordered non-diagonal pairs with geometric
    // jumps: skip ~Geom(p) pairs between successive edges.
    const std::uint64_t total =
        static_cast<std::uint64_t>(num_nodes) * (num_nodes - 1);
    std::uint64_t idx = 0;
    const double log1mp = std::log1p(-p);
    while (true) {
      if (p < 1.0) {
        double u = 1.0 - rng.uniform01();  // (0,1]
        idx += static_cast<std::uint64_t>(std::floor(std::log(u) / log1mp));
      }
      if (idx >= total) break;
      const std::uint32_t from = static_cast<std::uint32_t>(idx / (num_nodes - 1));
      std::uint32_t to = static_cast<std::uint32_t>(idx % (num_nodes - 1));
      if (to >= from) ++to;  // skip the diagonal
      edges.push_back({from, to});
      ++idx;
    }
  }
  return Graph(num_nodes, std::move(edges), threads);
}

Graph watts_strogatz(std::uint32_t num_nodes, std::uint32_t k, double beta,
                     rng::Rng& rng, unsigned threads) {
  RIT_CHECK(num_nodes >= 3);
  RIT_CHECK(k >= 2 && k % 2 == 0);
  RIT_CHECK(k < num_nodes);
  RIT_CHECK(beta >= 0.0 && beta <= 1.0);
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(num_nodes) * k);
  for (std::uint32_t u = 0; u < num_nodes; ++u) {
    for (std::uint32_t j = 1; j <= k / 2; ++j) {
      std::uint32_t v = (u + j) % num_nodes;
      if (rng.bernoulli(beta)) {
        // Rewire target uniformly, avoiding self-loop.
        do {
          v = static_cast<std::uint32_t>(rng.uniform_index(num_nodes));
        } while (v == u);
      }
      edges.push_back({u, v});
      edges.push_back({v, u});  // influence is mutual in the ring model
    }
  }
  return Graph(num_nodes, std::move(edges), threads);
}

Graph star(std::uint32_t num_nodes) {
  RIT_CHECK(num_nodes >= 1);
  std::vector<Edge> edges;
  edges.reserve(num_nodes - 1);
  for (std::uint32_t v = 1; v < num_nodes; ++v) edges.push_back({0, v});
  return Graph(num_nodes, std::move(edges));
}

Graph path(std::uint32_t num_nodes) {
  RIT_CHECK(num_nodes >= 1);
  std::vector<Edge> edges;
  edges.reserve(num_nodes - 1);
  for (std::uint32_t v = 1; v < num_nodes; ++v) edges.push_back({v - 1, v});
  return Graph(num_nodes, std::move(edges));
}

Graph configuration_model(std::uint32_t num_nodes, double exponent,
                          std::uint32_t max_degree, rng::Rng& rng,
                          unsigned threads) {
  RIT_CHECK(num_nodes >= 2);
  RIT_CHECK(exponent > 1.0);
  RIT_CHECK(max_degree >= 1 && max_degree < num_nodes);
  // Zipf sampling over [1, max_degree] by inverse transform on the exact
  // (finite) normalizing weights. O(max_degree) setup, O(log) per draw.
  std::vector<double> cdf(max_degree);
  double total = 0.0;
  for (std::uint32_t d = 1; d <= max_degree; ++d) {
    total += std::pow(static_cast<double>(d), -exponent);
    cdf[d - 1] = total;
  }
  auto draw_degree = [&]() {
    const double u = rng.uniform01() * total;
    const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
    return static_cast<std::uint32_t>(it - cdf.begin()) + 1;
  };

  std::vector<Edge> edges;
  std::vector<std::uint32_t> picked;
  for (std::uint32_t u = 0; u < num_nodes; ++u) {
    const std::uint32_t degree = draw_degree();
    picked.clear();
    std::size_t rejections = 0;
    while (picked.size() < degree) {
      std::uint32_t v = static_cast<std::uint32_t>(rng.uniform_index(num_nodes));
      const bool dup =
          v == u || std::find(picked.begin(), picked.end(), v) != picked.end();
      if (!dup) {
        picked.push_back(v);
      } else if (++rejections > 16ull * degree + 64) {
        // Deterministic sweep fallback for pathological parameter corners.
        for (std::uint32_t w = 0; w < num_nodes && picked.size() < degree;
             ++w) {
          if (w != u &&
              std::find(picked.begin(), picked.end(), w) == picked.end()) {
            picked.push_back(w);
          }
        }
      }
    }
    for (std::uint32_t v : picked) edges.push_back({u, v});
  }
  return Graph(num_nodes, std::move(edges), threads);
}

Graph complete(std::uint32_t num_nodes) {
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(num_nodes) * (num_nodes - 1));
  for (std::uint32_t u = 0; u < num_nodes; ++u) {
    for (std::uint32_t v = 0; v < num_nodes; ++v) {
      if (u != v) edges.push_back({u, v});
    }
  }
  return Graph(num_nodes, std::move(edges));
}

}  // namespace rit::graph
