// Edge-list file IO.
//
// Format is the SNAP plain-text convention the paper's Twitter dataset [21]
// ships in: one "from to" pair per line, '#' comments allowed. This lets a
// user who does have the original dataset drop it in and rerun every
// experiment on the real graph.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/graph.h"

namespace rit::graph {

/// Parses an edge list. Node ids are remapped densely (sorted by original
/// id) so SNAP's sparse ids work; `num_nodes` becomes the number of distinct
/// ids seen. Throws rit::CheckFailure on malformed lines.
Graph read_edge_list(std::istream& in);

/// Convenience: reads from a file path. Throws on unreadable files.
Graph read_edge_list_file(const std::string& path);

/// Writes `g` as "from to" lines (dense ids).
void write_edge_list(const Graph& g, std::ostream& out);

}  // namespace rit::graph
