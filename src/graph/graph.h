// Directed social graph in compressed-sparse-row form.
//
// Semantics follow Sec. 7-A of the paper: an edge u -> v means "u has
// influence over v" (v follows u on Twitter), i.e. u may recruit v into the
// incentive tree. The incentive-tree builder consumes out-neighbour lists.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/check.h"

namespace rit::graph {

/// An edge u -> v: u can solicit v.
struct Edge {
  std::uint32_t from;
  std::uint32_t to;
  friend bool operator==(const Edge&, const Edge&) = default;
};

class Graph {
 public:
  Graph() = default;

  /// Builds a CSR graph from an edge list. Self-loops are rejected;
  /// duplicate edges are deduplicated. Node count is `num_nodes` (edges must
  /// stay in range). `threads` parallelizes the dominant edge sort with a
  /// deterministic block-sort + ordered merge; the resulting CSR is
  /// byte-identical at any thread count (equal edges are identical structs),
  /// so the knob trades wall-clock for cores, never output.
  Graph(std::uint32_t num_nodes, std::vector<Edge> edges,
        unsigned threads = 1);

  std::uint32_t num_nodes() const { return num_nodes_; }
  std::size_t num_edges() const { return targets_.size(); }

  /// Out-neighbours of `u` (the users `u` can recruit), sorted ascending.
  std::span<const std::uint32_t> out_neighbors(std::uint32_t u) const {
    RIT_CHECK(u < num_nodes_);
    return {targets_.data() + offsets_[u], offsets_[u + 1] - offsets_[u]};
  }

  std::size_t out_degree(std::uint32_t u) const {
    RIT_CHECK(u < num_nodes_);
    return offsets_[u + 1] - offsets_[u];
  }

  std::size_t in_degree(std::uint32_t u) const {
    RIT_CHECK(u < num_nodes_);
    return in_degree_[u];
  }

  bool has_edge(std::uint32_t u, std::uint32_t v) const;

  /// All edges, ordered by (from, to).
  std::vector<Edge> edges() const;

  /// Nodes with in-degree zero — nobody can recruit them, so tree builders
  /// treat them as candidates for "users who join at the very beginning".
  std::vector<std::uint32_t> sources() const;

 private:
  std::uint32_t num_nodes_{0};
  std::vector<std::size_t> offsets_{0};  // size num_nodes_+1
  std::vector<std::uint32_t> targets_;
  std::vector<std::uint32_t> in_degree_;
};

}  // namespace rit::graph
