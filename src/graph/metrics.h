// Graph metrics used to validate the Twitter-graph substitution (DESIGN.md)
// and by the graph-family ablation: a Barabási–Albert stand-in is only a
// fair substitute if its degree tail and reachability profile resemble a
// follower graph's.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/graph.h"
#include "rng/rng.h"

namespace rit::graph {

struct DegreeStats {
  double mean{0.0};
  double max{0.0};
  /// 50th / 90th / 99th percentiles of the degree distribution.
  double p50{0.0};
  double p90{0.0};
  double p99{0.0};
  /// Tail-heaviness proxy: max / mean. ~O(1) for ER, >> 1 for scale-free.
  double max_over_mean{0.0};
  /// Fraction of all edges incident to the top 1% highest-degree nodes —
  /// the "hub mass" that makes follower graphs produce shallow trees.
  double top1pct_share{0.0};
};

/// Out-degree statistics of `g` (num_nodes >= 1).
DegreeStats out_degree_stats(const Graph& g);
/// In-degree statistics of `g`.
DegreeStats in_degree_stats(const Graph& g);

/// Fraction of nodes reachable (via directed edges) from `sources`, and the
/// BFS depth needed to reach them — exactly the quantities that determine
/// incentive-tree coverage and depth.
struct ReachabilityStats {
  double reachable_fraction{0.0};
  std::uint32_t bfs_depth{0};
};
ReachabilityStats reachability(const Graph& g,
                               const std::vector<std::uint32_t>& sources);

/// Estimated global clustering coefficient by sampling `samples` random
/// length-2 paths (u -> v -> w, u != w) and checking whether u -> w closes
/// the triangle. 0 if the graph has no length-2 paths.
double estimate_clustering(const Graph& g, std::size_t samples,
                           rng::Rng& rng);

}  // namespace rit::graph
