// Chrome-trace / Perfetto export and per-phase summaries for the span
// tracer. The JSON uses "X" (complete) events with microsecond timestamps,
// the object-wrapped form `{"traceEvents": [...]}` that both
// chrome://tracing and https://ui.perfetto.dev load directly.
#pragma once

#include <string>
#include <vector>

#include "obs/trace.h"

namespace rit::obs {

/// Serializes `events` as Chrome-trace JSON (deterministic for a given
/// event vector: events are emitted in input order).
std::string chrome_trace_json(const std::vector<TraceEvent>& events);

/// Writes chrome_trace_json() to `path`, creating parent directories.
void write_chrome_trace(const std::string& path,
                        const std::vector<TraceEvent>& events);

/// Aggregate view of one span name across a trace.
struct PhaseStat {
  std::string name;
  std::uint64_t count{0};
  double total_ms{0.0};  ///< inclusive wall time (children included)
  double self_ms{0.0};   ///< exclusive wall time (children subtracted)
};

/// Per-name totals with self time computed from span nesting (spans are
/// RAII-scoped, so per-thread events nest properly). The sum of `self_ms`
/// over all phases equals the total instrumented wall time — this is what
/// the bench breakdown tables print. Sorted by self_ms descending.
std::vector<PhaseStat> phase_breakdown(std::vector<TraceEvent> events);

}  // namespace rit::obs
