// Metrics registry: named counters, gauges, value-stats and histograms with
// snapshot-and-merge semantics.
//
// Two usage modes:
//  * the process-global registry (`Registry::global()`), fed from hot paths
//    via the RIT_COUNTER_* macros below (an atomic add after a one-time
//    name lookup cached in a function-local static);
//  * local `Registry` instances, one per worker thread, whose snapshots are
//    merged in thread-index order — the same deterministic-merge discipline
//    `run_many_parallel` uses for its Welford accumulators.
//
// Naming convention is `subsystem.metric` (see docs/observability.md), e.g.
// `cra.rounds`, `sim.trials_run`, `attack.sybil_identities`.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#ifndef RIT_OBS_ENABLED
#define RIT_OBS_ENABLED 1
#endif

#include "stats/histogram.h"
#include "stats/online_stats.h"
#include "stats/timer.h"

namespace rit::obs {

/// Monotonic event count. Lock-free; safe to bump from any thread.
class Counter {
 public:
  void add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-written value. Merge semantics: a gauge that was never set does not
/// overwrite one that was (so merging an idle worker is a no-op).
class Gauge {
 public:
  void set(double v) {
    std::lock_guard<std::mutex> lock(mutex_);
    v_ = v;
  }
  std::optional<double> value() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return v_;
  }

 private:
  mutable std::mutex mutex_;
  std::optional<double> v_;
};

/// Welford mean/variance of observed values (e.g. per-trial latencies).
class Stat {
 public:
  void observe(double v) {
    std::lock_guard<std::mutex> lock(mutex_);
    s_.add(v);
  }
  void merge_in(const stats::OnlineStats& other) {
    std::lock_guard<std::mutex> lock(mutex_);
    s_.merge(other);
  }
  stats::OnlineStats value() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return s_;
  }

 private:
  mutable std::mutex mutex_;
  stats::OnlineStats s_;
};

/// Index-keyed sample reservoir for quantile estimation (p50/p95/p99 in
/// write_metrics_json). Deterministic across thread counts by design: the
/// caller tags each observation with a stable index (e.g. the trial id)
/// and the reservoir keeps exactly the samples with index < capacity.
/// Strided workers observe disjoint index sets, so merging is a plain
/// union and every thread count yields the identical sample set — unlike
/// classic random-replacement reservoirs, whose contents depend on arrival
/// order.
class Reservoir {
 public:
  static constexpr std::uint64_t kDefaultCapacity = 4096;

  explicit Reservoir(std::uint64_t capacity = kDefaultCapacity)
      : capacity_(capacity) {}

  void observe(std::uint64_t index, double v) {
    if (index >= capacity_) return;
    std::lock_guard<std::mutex> lock(mutex_);
    samples_[index] = v;
  }

  std::uint64_t capacity() const { return capacity_; }
  std::map<std::uint64_t, double> samples() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return samples_;
  }
  void merge_in(const std::map<std::uint64_t, double>& other) {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [idx, v] : other) {
      if (idx < capacity_) samples_[idx] = v;
    }
  }

 private:
  mutable std::mutex mutex_;
  std::uint64_t capacity_;
  std::map<std::uint64_t, double> samples_;
};

/// Bucketed distribution, a thread-safe shell over stats::Histogram.
class Histo {
 public:
  Histo(double lo, double hi, std::size_t buckets) : h_(lo, hi, buckets) {}
  void observe(double v) {
    std::lock_guard<std::mutex> lock(mutex_);
    h_.add(v);
  }
  void merge_in(const stats::Histogram& other) {
    std::lock_guard<std::mutex> lock(mutex_);
    h_.merge(other);
  }
  stats::Histogram value() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return h_;
  }

 private:
  mutable std::mutex mutex_;
  stats::Histogram h_;
};

/// RAII timer reporting elapsed milliseconds into a Stat on destruction
/// (the aggregate-only fallback when full span tracing is too heavy).
class StatTimer {
 public:
  explicit StatTimer(Stat& stat) : stat_(stat) {}
  StatTimer(const StatTimer&) = delete;
  StatTimer& operator=(const StatTimer&) = delete;
  ~StatTimer() { stat_.observe(timer_.elapsed_ms()); }

 private:
  Stat& stat_;
  stats::Timer timer_;
};

/// Point-in-time copy of a registry's contents. Plain data: merge and
/// serialize without touching the live (concurrently-updated) registry.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, stats::OnlineStats> stats;
  std::map<std::string, stats::Histogram> histograms;
  /// Per-reservoir sample sets, keyed by observation index. Because the
  /// indices are caller-assigned and disjoint across strided workers,
  /// merge is a plain union and is thread-count-independent.
  std::map<std::string, std::map<std::uint64_t, double>> reservoirs;

  /// Deterministic accumulate: counters add, gauges overwrite (when set in
  /// `other`), stats Welford-merge, histograms bucket-add, reservoirs
  /// union. Merging worker snapshots in thread-index order yields the same
  /// result as a serial run.
  void merge(const MetricsSnapshot& other);

  bool empty() const {
    return counters.empty() && gauges.empty() && stats.empty() &&
           histograms.empty() && reservoirs.empty();
  }

  /// Stable JSON rendering (keys sorted — std::map order).
  std::string to_json() const;
};

class Registry {
 public:
  /// Lookup-or-create. References stay valid for the registry's lifetime
  /// (instruments are stored behind unique_ptr).
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Stat& stat(const std::string& name);
  /// First caller fixes the shape; later callers must agree.
  Histo& histogram(const std::string& name, double lo, double hi,
                   std::size_t buckets);
  /// First caller fixes the capacity; later callers must agree.
  Reservoir& reservoir(const std::string& name,
                       std::uint64_t capacity = Reservoir::kDefaultCapacity);

  MetricsSnapshot snapshot() const;
  /// Folds a snapshot into this registry (same semantics as
  /// MetricsSnapshot::merge, applied to the live instruments).
  void absorb(const MetricsSnapshot& s);
  /// Drops every registered instrument.
  void reset();

  static Registry& global();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Stat>> stats_;
  std::map<std::string, std::unique_ptr<Histo>> histograms_;
  std::map<std::string, std::unique_ptr<Reservoir>> reservoirs_;
};

/// Writes `snapshot.to_json()` to `path`, creating parent directories.
void write_metrics_json(const std::string& path,
                        const MetricsSnapshot& snapshot);

}  // namespace rit::obs

#if RIT_OBS_ENABLED
// Hot-path counter bump against the global registry. The name lookup runs
// once per call site (function-local static); afterwards the cost is a
// relaxed atomic add.
#define RIT_COUNTER_ADD(name, n)                                    \
  do {                                                              \
    static ::rit::obs::Counter& rit_obs_counter =                   \
        ::rit::obs::Registry::global().counter(name);               \
    rit_obs_counter.add(n);                                         \
  } while (false)
#else
#define RIT_COUNTER_ADD(name, n) static_cast<void>(0)
#endif

#define RIT_COUNTER_INC(name) RIT_COUNTER_ADD(name, 1)
