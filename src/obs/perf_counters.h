// Hardware performance counters for per-phase and whole-run profiling.
//
// A fixed six-counter set (cycles, instructions, cache references/misses,
// branch misses, task-clock) is sampled via perf_event_open(2) and
// attributed to the same `subsystem.phase` spans the tracer records: when
// profiling is active, every ScopedSpan reads the calling thread's
// counters at entry and exit and accumulates the deltas into a per-phase
// table (see the detail hooks in obs/trace.h). An optional allocation
// hook (obs/alloc_hook.cpp, linked into the bench binaries) adds
// operator-new call/byte counts to the same table.
//
// Graceful degradation is the contract, not an afterthought: containers
// and hardened kernels routinely refuse perf_event_open (EPERM /
// kernel.perf_event_paranoid), and non-Linux platforms lack the syscall
// entirely. Every entry point works in that case — the phase table still
// carries span counts and allocation stats, and each unavailable counter
// is reported absent (perf_availability()) rather than zero-but-present,
// so the history ledger (obs/history.h) never records fake hardware data.
//
// Threading: counter file descriptors are per-thread (opened lazily on a
// thread's first profiled span) and the per-phase tables are thread-local,
// merged by name under a mutex only in collect_perf_phase_stats() — the
// same collect-after-join discipline as the span tracer.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace rit::obs {

/// Indices into the fixed counter set. kPerfTaskClockNs is a software
/// event (nanoseconds on-CPU), usually available even when the hardware
/// PMU is not exposed; the first five are hardware events.
enum PerfCounterId : std::size_t {
  kPerfCycles = 0,
  kPerfInstructions,
  kPerfCacheRefs,
  kPerfCacheMisses,
  kPerfBranchMisses,
  kPerfTaskClockNs,
  kPerfNumCounters,
};

/// Stable snake_case name for counter `id` ("cycles", "instructions",
/// "cache_refs", "cache_misses", "branch_misses", "task_clock_ns") —
/// these are the keys the history ledger and bench_diff use.
const char* perf_counter_name(std::size_t id);

/// What this process can actually measure. `counter[i]` reflects whether
/// the run-level perf fd for counter i opened; `alloc_hook` is true when
/// obs/alloc_hook.cpp is linked into the binary.
struct PerfAvailability {
  std::array<bool, kPerfNumCounters> counter{};
  bool alloc_hook{false};
  bool any_hw() const {
    for (std::size_t i = 0; i < kPerfTaskClockNs; ++i) {
      if (counter[i]) return true;
    }
    return false;
  }
  bool any() const {
    if (alloc_hook) return true;
    for (bool b : counter) {
      if (b) return true;
    }
    return false;
  }
};

/// Availability as probed by the last start_perf_counters() call (all
/// false before the first start).
PerfAvailability perf_availability();

/// One-off probe: can this process open a task-clock perf event at all?
/// Cheap (open + close); does not require start_perf_counters().
bool perf_events_supported();

/// Begins counter profiling: opens the run-level (inherited) counter set,
/// clears the per-phase tables, and arms the ScopedSpan hooks. Safe to
/// call when perf_event_open is unavailable — availability just reads all
/// false and spans skip the sampling. Call before worker threads are
/// spawned so the run-level set inherits into them.
void start_perf_counters();

/// Disarms the span hooks and freezes the run-level totals. The phase
/// table and totals stay readable until the next start.
void stop_perf_counters();

/// True between start_perf_counters() and stop_perf_counters().
bool perf_counters_active();

/// Aggregate counter view of one span name (inclusive, like
/// PhaseStat::total_ms: nested spans contribute to their parents too).
struct PerfPhaseStat {
  std::string name;
  std::uint64_t count{0};
  /// Summed deltas per PerfCounterId; meaningful only where
  /// perf_availability().counter[i] is true.
  std::array<std::uint64_t, kPerfNumCounters> totals{};
  std::uint64_t alloc_count{0};
  std::uint64_t alloc_bytes{0};
};

/// Per-phase counter totals merged across all threads (live and exited),
/// sorted by name. Call after workers have joined.
std::vector<PerfPhaseStat> collect_perf_phase_stats();

/// Whole-run counter totals from the inherited run-level set (covers
/// every thread spawned after start_perf_counters), plus process-wide
/// allocation totals from the hook.
struct PerfRunTotals {
  std::array<std::uint64_t, kPerfNumCounters> totals{};
  std::uint64_t alloc_count{0};
  std::uint64_t alloc_bytes{0};
};
PerfRunTotals perf_run_totals();

namespace detail {
/// Allocation-hook plumbing (called from obs/alloc_hook.cpp). note_alloc
/// must stay trivially cheap when profiling is idle: one relaxed load.
void note_alloc(std::size_t bytes) noexcept;
void mark_alloc_hook_linked() noexcept;
}  // namespace detail

}  // namespace rit::obs
