#include "obs/metrics.h"

#include <vector>

#include "common/atomic_file.h"
#include "common/check.h"
#include "common/format_util.h"
#include "common/num_io.h"
#include "stats/percentile.h"

namespace rit::obs {

namespace {

std::string json_number(double v) { return rit::format_double_g17(v); }

}  // namespace

// Field-coverage guard for merge(): MetricsSnapshot must stay exactly five
// maps (counters, gauges, stats, histograms, reservoirs). A sixth family
// added without extending merge() would be silently dropped from
// worker-snapshot folds — this fires and points here instead.
static_assert(sizeof(MetricsSnapshot) ==
                  5 * sizeof(std::map<std::string, double>),
              "MetricsSnapshot changed shape: update merge() and to_json() "
              "in metrics.cpp (and this static_assert) so no field is "
              "dropped from worker-snapshot folds");

void MetricsSnapshot::merge(const MetricsSnapshot& other) {
  for (const auto& [name, v] : other.counters) counters[name] += v;
  for (const auto& [name, v] : other.gauges) gauges[name] = v;
  for (const auto& [name, s] : other.stats) {
    auto [it, inserted] = stats.try_emplace(name, s);
    if (!inserted) it->second.merge(s);
  }
  for (const auto& [name, h] : other.histograms) {
    auto [it, inserted] = histograms.try_emplace(name, h);
    if (!inserted) it->second.merge(h);
  }
  for (const auto& [name, samples] : other.reservoirs) {
    auto& mine = reservoirs[name];
    for (const auto& [idx, v] : samples) mine[idx] = v;
  }
}

std::string MetricsSnapshot::to_json() const {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, v] : counters) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + json_escape(name) + "\": " + std::to_string(v);
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, v] : gauges) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + json_escape(name) + "\": " + json_number(v);
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"stats\": {";
  first = true;
  for (const auto& [name, s] : stats) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + json_escape(name) + "\": {\"count\": " +
           std::to_string(s.count()) + ", \"mean\": " + json_number(s.mean()) +
           ", \"stddev\": " + json_number(s.stddev()) +
           ", \"min\": " + json_number(s.min()) +
           ", \"max\": " + json_number(s.max()) + "}";
  }
  out += first ? "},\n" : "\n  },\n";

  // Reservoir sample sets render as their headline quantiles, not the raw
  // samples — the ledger and dashboards want p50/p95/p99, and the captured
  // index-keyed set is identical for every thread count so the quantiles
  // are too.
  out += "  \"quantiles\": {";
  first = true;
  for (const auto& [name, samples] : reservoirs) {
    if (samples.empty()) continue;
    std::vector<double> values;
    values.reserve(samples.size());
    for (const auto& [idx, v] : samples) values.push_back(v);
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + json_escape(name) +
           "\": {\"samples\": " + std::to_string(values.size()) +
           ", \"p50\": " + json_number(stats::quantile(values, 0.50)) +
           ", \"p95\": " + json_number(stats::quantile(values, 0.95)) +
           ", \"p99\": " + json_number(stats::quantile(values, 0.99)) + "}";
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + json_escape(name) + "\": {\"lo\": " + json_number(h.lo()) +
           ", \"hi\": " + json_number(h.hi()) + ", \"underflow\": " +
           std::to_string(h.underflow()) + ", \"overflow\": " +
           std::to_string(h.overflow()) + ", \"buckets\": [";
    for (std::size_t i = 0; i < h.bucket_count(); ++i) {
      if (i != 0) out += ", ";
      out += std::to_string(h.bucket(i));
    }
    out += "]}";
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Stat& Registry::stat(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = stats_[name];
  if (!slot) slot = std::make_unique<Stat>();
  return *slot;
}

Histo& Registry::histogram(const std::string& name, double lo, double hi,
                           std::size_t buckets) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) {
    slot = std::make_unique<Histo>(lo, hi, buckets);
  } else {
    const stats::Histogram existing = slot->value();
    RIT_CHECK_MSG(existing.lo() == lo && existing.hi() == hi &&
                      existing.bucket_count() == buckets,
                  "histogram '" << name << "' re-registered with a different "
                                << "shape");
  }
  return *slot;
}

Reservoir& Registry::reservoir(const std::string& name,
                               std::uint64_t capacity) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = reservoirs_[name];
  if (!slot) {
    slot = std::make_unique<Reservoir>(capacity);
  } else {
    RIT_CHECK_MSG(slot->capacity() == capacity,
                  "reservoir '" << name << "' re-registered with a different "
                                << "capacity");
  }
  return *slot;
}

MetricsSnapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot s;
  for (const auto& [name, c] : counters_) s.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) {
    if (const auto v = g->value()) s.gauges[name] = *v;
  }
  for (const auto& [name, st] : stats_) s.stats[name] = st->value();
  // try_emplace: Histogram has no default constructor, so operator[] is out.
  for (const auto& [name, h] : histograms_) {
    s.histograms.try_emplace(name, h->value());
  }
  for (const auto& [name, r] : reservoirs_) s.reservoirs[name] = r->samples();
  return s;
}

void Registry::absorb(const MetricsSnapshot& s) {
  for (const auto& [name, v] : s.counters) counter(name).add(v);
  for (const auto& [name, v] : s.gauges) gauge(name).set(v);
  for (const auto& [name, st] : s.stats) stat(name).merge_in(st);
  for (const auto& [name, h] : s.histograms) {
    histogram(name, h.lo(), h.hi(), h.bucket_count()).merge_in(h);
  }
  // Snapshots carry only samples, not the origin capacity; absorbing into
  // a not-yet-registered name uses the default (every in-tree producer
  // registers at the default, so the capacities agree in practice).
  for (const auto& [name, samples] : s.reservoirs) {
    reservoir(name).merge_in(samples);
  }
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  counters_.clear();
  gauges_.clear();
  stats_.clear();
  histograms_.clear();
  reservoirs_.clear();
}

Registry& Registry::global() {
  static Registry* instance = new Registry();  // leaked: outlive all users
  return *instance;
}

void write_metrics_json(const std::string& path,
                        const MetricsSnapshot& snapshot) {
  // Atomic commit (temp + fsync + rename): a crash mid-export never leaves
  // a truncated JSON file for dashboards to choke on.
  rit::write_file_atomic(path, snapshot.to_json());
}

}  // namespace rit::obs
