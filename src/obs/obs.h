// Umbrella header for the observability layer: span tracing, Chrome-trace
// export, and the metrics registry. Instrumented code includes this one
// header and uses the RIT_TRACE_SPAN / RIT_COUNTER_* macros, all of which
// compile away when the build defines RIT_OBS_ENABLED=0 (CMake option
// RIT_OBS_ENABLED, default ON). See docs/observability.md.
#pragma once

#include "obs/metrics.h"
#include "obs/trace.h"
