// Scoped span tracer: RAII spans recorded into per-thread buffers.
//
// Usage in instrumented code:
//
//   void run_phase() {
//     RIT_TRACE_SPAN("cra.phase1");   // begin/end stamped automatically
//     ...
//   }
//
// Span names follow the `subsystem.phase` convention (docs/observability.md)
// and must have static storage duration — the tracer stores the pointer, not
// a copy, so string literals are the intended currency.
//
// Recording is off until `start_tracing()`; an idle span costs one relaxed
// atomic load (measured by BM_SpanIdle in bench_micro). When the build sets
// RIT_OBS_ENABLED=0 the macro expands to `(void)0` and the instrumentation
// compiles away entirely.
//
// Threading: each thread appends to its own buffer without locks; the global
// mutex is taken only on thread registration/exit and by collect_trace().
// Collect after worker threads have joined — a buffer still being appended
// to is skipped-at-own-risk (the runner's fan-out joins before collecting).
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#ifndef RIT_OBS_ENABLED
#define RIT_OBS_ENABLED 1
#endif

namespace rit::obs {

struct TraceEvent {
  const char* name;        ///< static-storage span name, `subsystem.phase`
  std::uint64_t begin_ns;  ///< steady-clock ns relative to process reference
  std::uint64_t end_ns;
  std::uint32_t tid;       ///< small sequential thread index, not the OS id
};

/// True between start_tracing() and stop_tracing().
bool tracing_active();

/// Clears previously recorded events and begins recording.
void start_tracing();

/// Stops recording; events stay available to collect_trace().
void stop_tracing();

/// Drops all recorded events (live and retired buffers).
void clear_trace();

/// Snapshot of every recorded event, sorted by (tid, begin_ns, end_ns desc)
/// so nested spans follow their parent. Call after workers have joined.
std::vector<TraceEvent> collect_trace();

/// Number of spans dropped because a thread buffer hit its capacity.
std::uint64_t dropped_spans();

/// Caps each thread's buffer (default 1<<20 events, ~32 MiB). Spans beyond
/// the cap are dropped and counted, never reallocated-unbounded.
void set_trace_capacity(std::size_t max_events_per_thread);

/// Steady-clock nanoseconds since the process-wide trace epoch.
std::uint64_t trace_now_ns();

namespace detail {
extern std::atomic<bool> g_active;
void record_span(const char* name, std::uint64_t begin_ns,
                 std::uint64_t end_ns);

/// Hardware-counter attachment (implemented in obs/perf_counters.cpp).
/// When g_perf_active is set, each traced span additionally samples the
/// calling thread's perf counters at entry/exit; the deltas accumulate
/// into the per-phase table collect_perf_phase_stats() reports. The token
/// is an opaque counter snapshot — six perf values plus the thread's
/// allocation count/bytes at span entry.
extern std::atomic<bool> g_perf_active;
struct PerfSpanToken {
  std::uint64_t v[8];
};
PerfSpanToken perf_span_begin();
void perf_span_end(const char* name, const PerfSpanToken& token);
}  // namespace detail

/// RAII span. Prefer the RIT_TRACE_SPAN macro, which compiles away when
/// observability is disabled.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name)
      : name_(name),
        active_(detail::g_active.load(std::memory_order_relaxed)) {
    if (active_) {
      begin_ns_ = trace_now_ns();
      perf_ = detail::g_perf_active.load(std::memory_order_relaxed);
      if (perf_) token_ = detail::perf_span_begin();
    }
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ~ScopedSpan() {
    if (active_) {
      if (perf_) detail::perf_span_end(name_, token_);
      detail::record_span(name_, begin_ns_, trace_now_ns());
    }
  }

 private:
  const char* name_;
  bool active_;
  bool perf_{false};
  std::uint64_t begin_ns_{0};
  detail::PerfSpanToken token_{};
};

}  // namespace rit::obs

#define RIT_OBS_CONCAT_INNER(a, b) a##b
#define RIT_OBS_CONCAT(a, b) RIT_OBS_CONCAT_INNER(a, b)

#if RIT_OBS_ENABLED
#define RIT_TRACE_SPAN(name) \
  ::rit::obs::ScopedSpan RIT_OBS_CONCAT(rit_obs_span_, __LINE__)(name)
#else
#define RIT_TRACE_SPAN(name) static_cast<void>(0)
#endif
