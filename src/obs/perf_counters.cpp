#include "obs/perf_counters.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <map>
#include <mutex>

#include "obs/trace.h"

#ifdef __linux__
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cerrno>
#endif

namespace rit::obs {

namespace detail {
std::atomic<bool> g_perf_active{false};
}  // namespace detail

namespace {

const char* const kCounterNames[kPerfNumCounters] = {
    "cycles",        "instructions",  "cache_refs",
    "cache_misses",  "branch_misses", "task_clock_ns",
};

std::atomic<bool> g_alloc_hook_linked{false};
std::atomic<std::uint64_t> g_alloc_count{0};
std::atomic<std::uint64_t> g_alloc_bytes{0};

// Thread-local allocation counters feed the per-span deltas without any
// cross-thread traffic; the global atomics above feed the run totals.
// Plain trivially-initialized thread_locals: note_alloc can run during
// thread startup, before any dynamic TLS constructor would have run.
thread_local std::uint64_t t_alloc_count = 0;
thread_local std::uint64_t t_alloc_bytes = 0;

#ifdef __linux__

struct CounterConfig {
  std::uint32_t type;
  std::uint64_t config;
};

const CounterConfig kConfigs[kPerfNumCounters] = {
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_REFERENCES},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_BRANCH_MISSES},
    {PERF_TYPE_SOFTWARE, PERF_COUNT_SW_TASK_CLOCK},
};

// User-space-only events maximize availability under perf_event_paranoid
// (level 2, the common container default where it is permitted at all,
// still allows self-monitoring without kernel samples).
int open_counter(std::size_t id, bool inherit) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof(attr));
  attr.size = sizeof(attr);
  attr.type = kConfigs[id].type;
  attr.config = kConfigs[id].config;
  attr.disabled = 0;
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  attr.inherit = inherit ? 1 : 0;
  const long fd = syscall(SYS_perf_event_open, &attr, /*pid=*/0, /*cpu=*/-1,
                          /*group_fd=*/-1, /*flags=*/0UL);
  return static_cast<int>(fd);
}

std::uint64_t read_counter(int fd) {
  std::uint64_t value = 0;
  for (;;) {
    const ssize_t n = read(fd, &value, sizeof(value));
    if (n == static_cast<ssize_t>(sizeof(value))) return value;
    if (n < 0 && errno == EINTR) continue;
    return 0;  // short read / error: treat as no data, never fail the run
  }
}

#endif  // __linux__

struct PhaseAccum {
  std::uint64_t count{0};
  std::array<std::uint64_t, kPerfNumCounters> totals{};
  std::uint64_t alloc_count{0};
  std::uint64_t alloc_bytes{0};

  void merge(const PhaseAccum& other) {
    count += other.count;
    for (std::size_t i = 0; i < kPerfNumCounters; ++i) {
      totals[i] += other.totals[i];
    }
    alloc_count += other.alloc_count;
    alloc_bytes += other.alloc_bytes;
  }
};

// Field-coverage guard for merge(): count + six counters + two alloc
// fields. A new field added without extending merge() would silently drop
// from the retired-phase fold — this fires and points here instead.
static_assert(sizeof(PhaseAccum) ==
                  (3 + kPerfNumCounters) * sizeof(std::uint64_t),
              "PhaseAccum changed shape: update merge() so no field is "
              "dropped from per-thread phase folds");

struct ThreadPerf;

// Registry of live per-thread profiling state plus totals folded in from
// exited threads — the same live/retired split the span tracer uses.
std::mutex g_perf_mutex;
std::vector<ThreadPerf*>& live_perf() {
  static std::vector<ThreadPerf*> v;
  return v;
}
std::map<std::string, PhaseAccum>& retired_phases() {
  static std::map<std::string, PhaseAccum> m;
  return m;
}

// Run-level (inherited) counter set, owned by whichever thread called
// start_perf_counters(). Guarded by g_perf_mutex.
struct RunSet {
  std::array<int, kPerfNumCounters> fd;
  std::array<bool, kPerfNumCounters> available{};
  PerfRunTotals frozen;
  bool frozen_valid{false};
  std::uint64_t alloc_count_at_start{0};
  std::uint64_t alloc_bytes_at_start{0};
  RunSet() { fd.fill(-1); }
};
RunSet& run_set() {
  static RunSet* s = new RunSet();  // leaked: outlives all users
  return *s;
}

struct ThreadPerf {
  std::array<int, kPerfNumCounters> fd;
  bool opened{false};
  // Keyed by the span's static name pointer on the hot path; folded into
  // the by-name retired map when the thread exits or collect runs.
  std::map<const char*, PhaseAccum> phases;

  ThreadPerf() {
    fd.fill(-1);
    std::lock_guard<std::mutex> lock(g_perf_mutex);
    live_perf().push_back(this);
  }

  ~ThreadPerf() {
    std::lock_guard<std::mutex> lock(g_perf_mutex);
    auto& live = live_perf();
    live.erase(std::remove(live.begin(), live.end(), this), live.end());
    for (const auto& [name, accum] : phases) {
      retired_phases()[name].merge(accum);
    }
    close_fds();
  }

  void open_fds() {
    if (opened) return;
    opened = true;
#ifdef __linux__
    for (std::size_t i = 0; i < kPerfNumCounters; ++i) {
      fd[i] = open_counter(i, /*inherit=*/false);
    }
#endif
  }

  void close_fds() {
#ifdef __linux__
    for (int& f : fd) {
      if (f >= 0) close(f);
      f = -1;
    }
#endif
    opened = false;
  }
};

ThreadPerf& thread_perf() {
  thread_local ThreadPerf tp;
  return tp;
}

void read_all(ThreadPerf& tp, std::uint64_t out[kPerfNumCounters]) {
  for (std::size_t i = 0; i < kPerfNumCounters; ++i) {
#ifdef __linux__
    out[i] = tp.fd[i] >= 0 ? read_counter(tp.fd[i]) : 0;
#else
    (void)tp;
    out[i] = 0;
#endif
  }
}

}  // namespace

const char* perf_counter_name(std::size_t id) {
  return id < kPerfNumCounters ? kCounterNames[id] : "unknown";
}

PerfAvailability perf_availability() {
  PerfAvailability a;
  a.alloc_hook = g_alloc_hook_linked.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(g_perf_mutex);
  a.counter = run_set().available;
  return a;
}

bool perf_events_supported() {
#ifdef __linux__
  const int fd = open_counter(kPerfTaskClockNs, /*inherit=*/false);
  if (fd < 0) return false;
  close(fd);
  return true;
#else
  return false;
#endif
}

void start_perf_counters() {
  std::lock_guard<std::mutex> lock(g_perf_mutex);
  RunSet& rs = run_set();
  for (std::size_t i = 0; i < kPerfNumCounters; ++i) {
#ifdef __linux__
    if (rs.fd[i] < 0) rs.fd[i] = open_counter(i, /*inherit=*/true);
    rs.available[i] = rs.fd[i] >= 0;
    if (rs.fd[i] >= 0) {
      ioctl(rs.fd[i], PERF_EVENT_IOC_RESET, 0);
    }
#else
    rs.available[i] = false;
#endif
  }
  rs.frozen_valid = false;
  rs.alloc_count_at_start = g_alloc_count.load(std::memory_order_relaxed);
  rs.alloc_bytes_at_start = g_alloc_bytes.load(std::memory_order_relaxed);
  for (ThreadPerf* tp : live_perf()) tp->phases.clear();
  retired_phases().clear();
  detail::g_perf_active.store(true, std::memory_order_relaxed);
}

namespace {

PerfRunTotals read_run_totals_locked() {
  RunSet& rs = run_set();
  if (rs.frozen_valid) return rs.frozen;
  PerfRunTotals t;
  for (std::size_t i = 0; i < kPerfNumCounters; ++i) {
#ifdef __linux__
    t.totals[i] = rs.fd[i] >= 0 ? read_counter(rs.fd[i]) : 0;
#endif
  }
  t.alloc_count = g_alloc_count.load(std::memory_order_relaxed) -
                  rs.alloc_count_at_start;
  t.alloc_bytes = g_alloc_bytes.load(std::memory_order_relaxed) -
                  rs.alloc_bytes_at_start;
  return t;
}

}  // namespace

void stop_perf_counters() {
  detail::g_perf_active.store(false, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(g_perf_mutex);
  RunSet& rs = run_set();
  rs.frozen = read_run_totals_locked();
  rs.frozen_valid = true;
}

bool perf_counters_active() {
  return detail::g_perf_active.load(std::memory_order_relaxed);
}

std::vector<PerfPhaseStat> collect_perf_phase_stats() {
  std::map<std::string, PhaseAccum> merged;
  {
    std::lock_guard<std::mutex> lock(g_perf_mutex);
    merged = retired_phases();
    for (const ThreadPerf* tp : live_perf()) {
      for (const auto& [name, accum] : tp->phases) {
        merged[name].merge(accum);
      }
    }
  }
  std::vector<PerfPhaseStat> out;
  out.reserve(merged.size());
  for (const auto& [name, accum] : merged) {
    PerfPhaseStat s;
    s.name = name;
    s.count = accum.count;
    s.totals = accum.totals;
    s.alloc_count = accum.alloc_count;
    s.alloc_bytes = accum.alloc_bytes;
    out.push_back(std::move(s));
  }
  return out;
}

PerfRunTotals perf_run_totals() {
  std::lock_guard<std::mutex> lock(g_perf_mutex);
  return read_run_totals_locked();
}

namespace detail {

PerfSpanToken perf_span_begin() {
  ThreadPerf& tp = thread_perf();
  tp.open_fds();
  PerfSpanToken t{};
  read_all(tp, t.v);
  t.v[6] = t_alloc_count;
  t.v[7] = t_alloc_bytes;
  return t;
}

void perf_span_end(const char* name, const PerfSpanToken& token) {
  ThreadPerf& tp = thread_perf();
  std::uint64_t now[kPerfNumCounters];
  read_all(tp, now);
  PhaseAccum& accum = tp.phases[name];
  ++accum.count;
  for (std::size_t i = 0; i < kPerfNumCounters; ++i) {
    // Counters are monotone per fd; the guard protects against a counter
    // that opened mid-span (reads 0 at begin, huge at end would be wrong
    // only if begin read failed — in that case both reads are 0).
    if (now[i] > token.v[i]) accum.totals[i] += now[i] - token.v[i];
  }
  if (t_alloc_count > token.v[6]) accum.alloc_count += t_alloc_count - token.v[6];
  if (t_alloc_bytes > token.v[7]) accum.alloc_bytes += t_alloc_bytes - token.v[7];
}

void note_alloc(std::size_t bytes) noexcept {
  if (!g_perf_active.load(std::memory_order_relaxed)) return;
  t_alloc_count += 1;
  t_alloc_bytes += bytes;
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(bytes, std::memory_order_relaxed);
}

void mark_alloc_hook_linked() noexcept {
  g_alloc_hook_linked.store(true, std::memory_order_relaxed);
}

}  // namespace detail

}  // namespace rit::obs
