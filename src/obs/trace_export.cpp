#include "obs/trace_export.h"

#include <algorithm>
#include <cstdio>
#include <map>

#include "common/atomic_file.h"
#include "common/check.h"

namespace rit::obs {

namespace {

std::string format_us(std::uint64_t ns) {
  // Microseconds with fixed 3-decimal precision: Chrome's "ts"/"dur" unit.
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu.%03llu",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned long long>(ns % 1000));
  return buf;
}

}  // namespace

std::string chrome_trace_json(const std::vector<TraceEvent>& events) {
  std::string out;
  out.reserve(events.size() * 96 + 64);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& e : events) {
    if (!first) out += ',';
    first = false;
    out += "\n{\"name\":\"";
    out += e.name;  // span names are identifier-like literals; no escaping
    out += "\",\"cat\":\"rit\",\"ph\":\"X\",\"pid\":1,\"tid\":";
    out += std::to_string(e.tid);
    out += ",\"ts\":";
    out += format_us(e.begin_ns);
    out += ",\"dur\":";
    out += format_us(e.end_ns - e.begin_ns);
    out += '}';
  }
  out += "\n]}\n";
  return out;
}

void write_chrome_trace(const std::string& path,
                        const std::vector<TraceEvent>& events) {
  // Atomic commit (temp + fsync + rename): chrome://tracing rejects
  // truncated JSON, so never expose a partially written file.
  rit::write_file_atomic(path, chrome_trace_json(events));
}

std::vector<PhaseStat> phase_breakdown(std::vector<TraceEvent> events) {
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.tid != b.tid) return a.tid < b.tid;
              if (a.begin_ns != b.begin_ns) return a.begin_ns < b.begin_ns;
              return a.end_ns > b.end_ns;  // parents before children
            });

  // One sweep per thread with an open-span stack: a span's self time is its
  // duration minus the durations of its direct children.
  std::map<std::string, PhaseStat> by_name;
  std::vector<std::size_t> stack;  // indices into `events`
  std::vector<std::uint64_t> child_ns(events.size(), 0);
  std::uint32_t current_tid = 0;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    if (i == 0 || e.tid != current_tid) {
      stack.clear();
      current_tid = e.tid;
    }
    while (!stack.empty() && events[stack.back()].end_ns <= e.begin_ns) {
      stack.pop_back();
    }
    if (!stack.empty()) {
      child_ns[stack.back()] += e.end_ns - e.begin_ns;
    }
    stack.push_back(i);
  }
  for (std::size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    const std::uint64_t dur = e.end_ns - e.begin_ns;
    PhaseStat& s = by_name[e.name];
    if (s.name.empty()) s.name = e.name;
    s.count += 1;
    s.total_ms += static_cast<double>(dur) / 1e6;
    // Clamp: a child that out-lives its parent by clock granularity must not
    // drive self time negative.
    s.self_ms +=
        static_cast<double>(dur > child_ns[i] ? dur - child_ns[i] : 0) / 1e6;
  }

  std::vector<PhaseStat> out;
  out.reserve(by_name.size());
  for (auto& [_, stat] : by_name) out.push_back(std::move(stat));
  std::sort(out.begin(), out.end(), [](const PhaseStat& a, const PhaseStat& b) {
    if (a.self_ms != b.self_ms) return a.self_ms > b.self_ms;
    return a.name < b.name;
  });
  return out;
}

}  // namespace rit::obs
