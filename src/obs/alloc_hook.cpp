// Global operator-new replacement feeding the perf-counter allocation
// tally. Linked only into binaries that opt in (bench targets and the
// perf tests) — everything else keeps the default allocator untouched.
//
// Only the counting sizeful forms are replaced; all other new/delete
// variants fall through to the standard ones, which is valid because the
// replacements allocate with std::malloc exactly as the defaults do, so
// the default operator delete frees them correctly.
#include <cstddef>
#include <cstdlib>
#include <new>

#include "obs/perf_counters.h"

namespace {
struct AllocHookMarker {
  AllocHookMarker() { rit::obs::detail::mark_alloc_hook_linked(); }
};
AllocHookMarker g_marker;

void* counted_alloc(std::size_t bytes) {
  for (;;) {
    if (void* p = std::malloc(bytes ? bytes : 1)) {
      rit::obs::detail::note_alloc(bytes);
      return p;
    }
    const std::new_handler handler = std::get_new_handler();
    if (!handler) throw std::bad_alloc();
    handler();
  }
}
}  // namespace

void* operator new(std::size_t bytes) { return counted_alloc(bytes); }
void* operator new[](std::size_t bytes) { return counted_alloc(bytes); }
