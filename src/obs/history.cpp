#include "obs/history.h"

#include <cctype>
#include <fstream>
#include <sstream>
#include <thread>

#include "common/atomic_file.h"
#include "common/format_util.h"
#include "common/num_io.h"

#ifndef RIT_BUILD_FLAGS
#define RIT_BUILD_FLAGS "unknown"
#endif
#ifndef RIT_GIT_SHA
#define RIT_GIT_SHA "unknown"
#endif

namespace rit::obs {

namespace {

std::string json_number(double v) { return rit::format_double_g17(v); }

// ---------------------------------------------------------------------------
// Minimal JSON value + recursive-descent parser. Scoped to this file: the
// ledger needs exact round-trips (uint64 counters must not pass through a
// double), which rules out reusing a double-only parser; numbers keep
// their raw token and convert on demand.

struct JsonValue {
  enum Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind{kNull};
  bool b{false};
  std::string num;  ///< raw number token (kNumber)
  std::string str;  ///< decoded string (kString)
  std::vector<JsonValue> arr;
  std::vector<std::pair<std::string, JsonValue>> obj;  ///< insertion order

  double as_double() const { return rit::parse_double(num).value_or(0.0); }
  std::uint64_t as_u64() const { return rit::parse_u64(num).value_or(0); }
  const JsonValue* find(const std::string& key) const {
    for (const auto& [k, v] : obj) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  bool parse(JsonValue& out, std::string& error) {
    skip_ws();
    if (!parse_value(out)) {
      error = err_.empty() ? "malformed JSON" : err_;
      return false;
    }
    skip_ws();
    if (pos_ != s_.size()) {
      error = "trailing characters after JSON value";
      return false;
    }
    return true;
  }

 private:
  const std::string& s_;
  std::size_t pos_{0};
  std::string err_;

  void fail(const char* what) {
    if (err_.empty()) {
      err_ = std::string(what) + " at offset " + rit::format_u64(pos_);
    }
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  bool consume(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool parse_value(JsonValue& out) {
    if (pos_ >= s_.size()) {
      fail("unexpected end of input");
      return false;
    }
    const char c = s_[pos_];
    if (c == '{') return parse_object(out);
    if (c == '[') return parse_array(out);
    if (c == '"') {
      out.kind = JsonValue::kString;
      return parse_string(out.str);
    }
    if (c == 't' || c == 'f') return parse_bool(out);
    if (c == 'n') return parse_null(out);
    return parse_number(out);
  }

  bool parse_object(JsonValue& out) {
    out.kind = JsonValue::kObject;
    consume('{');
    skip_ws();
    if (consume('}')) return true;
    for (;;) {
      skip_ws();
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (!consume(':')) {
        fail("expected ':'");
        return false;
      }
      skip_ws();
      JsonValue v;
      if (!parse_value(v)) return false;
      out.obj.emplace_back(std::move(key), std::move(v));
      skip_ws();
      if (consume(',')) continue;
      if (consume('}')) return true;
      fail("expected ',' or '}'");
      return false;
    }
  }

  bool parse_array(JsonValue& out) {
    out.kind = JsonValue::kArray;
    consume('[');
    skip_ws();
    if (consume(']')) return true;
    for (;;) {
      skip_ws();
      JsonValue v;
      if (!parse_value(v)) return false;
      out.arr.push_back(std::move(v));
      skip_ws();
      if (consume(',')) continue;
      if (consume(']')) return true;
      fail("expected ',' or ']'");
      return false;
    }
  }

  bool parse_string(std::string& out) {
    if (!consume('"')) {
      fail("expected '\"'");
      return false;
    }
    out.clear();
    while (pos_ < s_.size()) {
      const char c = s_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= s_.size()) break;
        const char e = s_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > s_.size()) {
              fail("truncated \\u escape");
              return false;
            }
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = s_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f')
                code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F')
                code |= static_cast<unsigned>(h - 'A' + 10);
              else {
                fail("bad \\u escape");
                return false;
              }
            }
            // The writer only escapes control characters this way; decode
            // BMP code points as UTF-8.
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            fail("bad escape character");
            return false;
        }
      } else {
        out += c;
      }
    }
    fail("unterminated string");
    return false;
  }

  bool parse_bool(JsonValue& out) {
    out.kind = JsonValue::kBool;
    if (s_.compare(pos_, 4, "true") == 0) {
      out.b = true;
      pos_ += 4;
      return true;
    }
    if (s_.compare(pos_, 5, "false") == 0) {
      out.b = false;
      pos_ += 5;
      return true;
    }
    fail("bad literal");
    return false;
  }

  bool parse_null(JsonValue& out) {
    out.kind = JsonValue::kNull;
    if (s_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      return true;
    }
    fail("bad literal");
    return false;
  }

  bool parse_number(JsonValue& out) {
    out.kind = JsonValue::kNumber;
    const std::size_t start = pos_;
    if (consume('-')) {
    }
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) {
      fail("expected a value");
      return false;
    }
    out.num = s_.substr(start, pos_ - start);
    return true;
  }
};

// ---------------------------------------------------------------------------
// Writer helpers.

void append_counters_json(
    std::string& out,
    const std::vector<std::pair<std::string, std::uint64_t>>& counters) {
  out += '{';
  bool first = true;
  for (const auto& [name, v] : counters) {
    if (!first) out += ',';
    first = false;
    out += '"' + json_escape(name) + "\":" + rit::format_u64(v);
  }
  out += '}';
}

// ---------------------------------------------------------------------------
// Parser helpers: typed field extraction with error reporting.

bool get_string(const JsonValue& obj, const char* key, std::string& out,
                std::string& error) {
  const JsonValue* v = obj.find(key);
  if (!v || v->kind != JsonValue::kString) {
    error = std::string("missing or non-string field '") + key + "'";
    return false;
  }
  out = v->str;
  return true;
}

bool get_u64(const JsonValue& obj, const char* key, std::uint64_t& out,
             std::string& error) {
  const JsonValue* v = obj.find(key);
  if (!v || v->kind != JsonValue::kNumber) {
    error = std::string("missing or non-number field '") + key + "'";
    return false;
  }
  out = v->as_u64();
  return true;
}

bool get_double(const JsonValue& obj, const char* key, double& out,
                std::string& error) {
  const JsonValue* v = obj.find(key);
  if (!v || v->kind != JsonValue::kNumber) {
    error = std::string("missing or non-number field '") + key + "'";
    return false;
  }
  out = v->as_double();
  return true;
}

bool get_counters(const JsonValue& obj, const char* key,
                  std::vector<std::pair<std::string, std::uint64_t>>& out,
                  std::string& error) {
  const JsonValue* v = obj.find(key);
  if (!v || v->kind != JsonValue::kObject) {
    error = std::string("missing or non-object field '") + key + "'";
    return false;
  }
  out.clear();
  for (const auto& [name, val] : v->obj) {
    if (val.kind != JsonValue::kNumber) {
      error = std::string("non-number counter '") + name + "'";
      return false;
    }
    out.emplace_back(name, val.as_u64());
  }
  return true;
}

std::string read_first_line(const std::string& path) {
  std::ifstream in(path);
  std::string line;
  if (in.is_open()) std::getline(in, line);
  return line;
}

std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

}  // namespace

EnvFingerprint collect_env_fingerprint() {
  EnvFingerprint env;
  env.cpu_model = "unknown";
  std::ifstream cpuinfo("/proc/cpuinfo");
  std::string line;
  while (std::getline(cpuinfo, line)) {
    if (line.rfind("model name", 0) == 0) {
      const std::size_t colon = line.find(':');
      if (colon != std::string::npos) {
        env.cpu_model = trim(line.substr(colon + 1));
      }
      break;
    }
  }
  env.cores = std::thread::hardware_concurrency();
  const std::string governor = trim(read_first_line(
      "/sys/devices/system/cpu/cpu0/cpufreq/scaling_governor"));
  env.governor = governor.empty() ? "unknown" : governor;
#ifdef __VERSION__
  env.compiler = __VERSION__;
#else
  env.compiler = "unknown";
#endif
  env.build_flags = RIT_BUILD_FLAGS;
  const char* sha_env = std::getenv("RIT_GIT_SHA");
  env.git_sha = (sha_env && *sha_env) ? sha_env : RIT_GIT_SHA;
  return env;
}

std::string history_record_json(const HistoryRecord& rec) {
  std::string out = "{\"schema_version\":" +
                    rit::format_u64(rec.schema_version) + ",\"bench\":\"" +
                    json_escape(rec.bench) + "\"";
  out += ",\"env\":{\"cpu_model\":\"" + json_escape(rec.env.cpu_model) +
         "\",\"cores\":" + rit::format_u64(rec.env.cores) +
         ",\"governor\":\"" + json_escape(rec.env.governor) +
         "\",\"compiler\":\"" + json_escape(rec.env.compiler) +
         "\",\"build_flags\":\"" + json_escape(rec.env.build_flags) +
         "\",\"git_sha\":\"" + json_escape(rec.env.git_sha) + "\"}";
  out += ",\"threads\":" + rit::format_u64(rec.threads) +
         ",\"trials\":" + rit::format_u64(rec.trials) +
         ",\"scale\":" + json_number(rec.scale) +
         ",\"points\":" + rit::format_u64(rec.points) +
         ",\"wall_ms\":" + json_number(rec.wall_ms);
  out += ",\"phases\":[";
  bool first = true;
  for (const HistoryPhase& p : rec.phases) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"" + json_escape(p.name) +
           "\",\"count\":" + rit::format_u64(p.count) +
           ",\"total_ms\":" + json_number(p.total_ms) +
           ",\"self_ms\":" + json_number(p.self_ms) + ",\"counters\":";
    append_counters_json(out, p.counters);
    out += '}';
  }
  out += "],\"run_counters\":";
  append_counters_json(out, rec.run_counters);
  out += ",\"stats\":{";
  first = true;
  for (const auto& [name, s] : rec.stats) {
    if (!first) out += ',';
    first = false;
    out += '"' + json_escape(name) +
           "\":{\"count\":" + rit::format_u64(s.count) +
           ",\"mean\":" + json_number(s.mean) +
           ",\"m2\":" + json_number(s.m2) +
           ",\"min\":" + json_number(s.min) +
           ",\"max\":" + json_number(s.max) + '}';
  }
  out += "}}";
  return out;
}

bool parse_history_record(const std::string& line, HistoryRecord& out,
                          std::string& error) {
  JsonValue root;
  JsonParser parser(line);
  if (!parser.parse(root, error)) return false;
  if (root.kind != JsonValue::kObject) {
    error = "record is not a JSON object";
    return false;
  }

  HistoryRecord rec;
  std::uint64_t schema = 0;
  if (!get_u64(root, "schema_version", schema, error)) return false;
  if (schema != HistoryRecord::kSchemaVersion) {
    error = "unknown schema_version " + rit::format_u64(schema);
    return false;
  }
  rec.schema_version = static_cast<std::uint32_t>(schema);
  if (!get_string(root, "bench", rec.bench, error)) return false;

  const JsonValue* env = root.find("env");
  if (!env || env->kind != JsonValue::kObject) {
    error = "missing or non-object field 'env'";
    return false;
  }
  std::uint64_t cores = 0;
  if (!get_string(*env, "cpu_model", rec.env.cpu_model, error) ||
      !get_u64(*env, "cores", cores, error) ||
      !get_string(*env, "governor", rec.env.governor, error) ||
      !get_string(*env, "compiler", rec.env.compiler, error) ||
      !get_string(*env, "build_flags", rec.env.build_flags, error) ||
      !get_string(*env, "git_sha", rec.env.git_sha, error)) {
    return false;
  }
  rec.env.cores = static_cast<std::uint32_t>(cores);

  std::uint64_t threads = 0;
  if (!get_u64(root, "threads", threads, error) ||
      !get_u64(root, "trials", rec.trials, error) ||
      !get_double(root, "scale", rec.scale, error) ||
      !get_u64(root, "points", rec.points, error) ||
      !get_double(root, "wall_ms", rec.wall_ms, error)) {
    return false;
  }
  rec.threads = static_cast<std::uint32_t>(threads);

  const JsonValue* phases = root.find("phases");
  if (!phases || phases->kind != JsonValue::kArray) {
    error = "missing or non-array field 'phases'";
    return false;
  }
  for (const JsonValue& pv : phases->arr) {
    if (pv.kind != JsonValue::kObject) {
      error = "phase entry is not an object";
      return false;
    }
    HistoryPhase p;
    if (!get_string(pv, "name", p.name, error) ||
        !get_u64(pv, "count", p.count, error) ||
        !get_double(pv, "total_ms", p.total_ms, error) ||
        !get_double(pv, "self_ms", p.self_ms, error) ||
        !get_counters(pv, "counters", p.counters, error)) {
      return false;
    }
    rec.phases.push_back(std::move(p));
  }

  if (!get_counters(root, "run_counters", rec.run_counters, error)) {
    return false;
  }

  const JsonValue* stats = root.find("stats");
  if (!stats || stats->kind != JsonValue::kObject) {
    error = "missing or non-object field 'stats'";
    return false;
  }
  for (const auto& [name, sv] : stats->obj) {
    if (sv.kind != JsonValue::kObject) {
      error = "stat '" + name + "' is not an object";
      return false;
    }
    HistoryStat s;
    if (!get_u64(sv, "count", s.count, error) ||
        !get_double(sv, "mean", s.mean, error) ||
        !get_double(sv, "m2", s.m2, error) ||
        !get_double(sv, "min", s.min, error) ||
        !get_double(sv, "max", s.max, error)) {
      return false;
    }
    rec.stats.emplace(name, s);
  }

  out = std::move(rec);
  return true;
}

HistoryFile read_history(const std::string& path) {
  HistoryFile hf;
  std::ifstream in(path);
  if (!in.is_open()) return hf;  // missing ledger = empty ledger
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (trim(line).empty()) continue;
    HistoryRecord rec;
    std::string error;
    if (parse_history_record(line, rec, error)) {
      hf.records.push_back(std::move(rec));
    } else {
      hf.rejected.push_back({line_no, error});
    }
  }
  return hf;
}

void append_history(const std::string& path, const HistoryRecord& rec) {
  std::string content;
  {
    std::ifstream in(path, std::ios::binary);
    if (in.is_open()) {
      std::ostringstream buf;
      buf << in.rdbuf();
      content = buf.str();
    }
  }
  if (!content.empty() && content.back() != '\n') content += '\n';
  content += history_record_json(rec);
  content += '\n';
  write_file_atomic(path, content);
}

namespace {

// Metric key inside one bench: (phase, metric) with "(run)" for
// whole-run metrics. std::map keeps the report ordering stable.
using MetricKey = std::pair<std::string, std::string>;
using MetricMins = std::map<MetricKey, double>;

void fold_min(MetricMins& mins, const MetricKey& key, double v) {
  auto [it, inserted] = mins.try_emplace(key, v);
  if (!inserted && v < it->second) it->second = v;
}

MetricMins collapse_min_of_n(const std::vector<const HistoryRecord*>& runs) {
  MetricMins mins;
  for (const HistoryRecord* rec : runs) {
    fold_min(mins, {"(run)", "wall_ms"}, rec->wall_ms);
    for (const auto& [name, v] : rec->run_counters) {
      fold_min(mins, {"(run)", name}, static_cast<double>(v));
    }
    for (const HistoryPhase& p : rec->phases) {
      fold_min(mins, {p.name, "total_ms"}, p.total_ms);
      for (const auto& [name, v] : p.counters) {
        fold_min(mins, {p.name, name}, static_cast<double>(v));
      }
    }
  }
  return mins;
}

bool is_time_metric(const std::string& metric) {
  return metric == "wall_ms" || metric == "total_ms";
}

// Counters deterministic enough to gate on. Cycles and cache/branch
// misses swing with frequency scaling and cache pressure — they are
// reported for diagnosis but never flag on their own.
bool is_gated_counter(const std::string& metric) {
  return metric == "instructions" || metric == "task_clock_ns" ||
         metric == "alloc_count" || metric == "alloc_bytes";
}

}  // namespace

DiffResult diff_history(const std::vector<HistoryRecord>& baseline,
                        const std::vector<HistoryRecord>& current,
                        const DiffOptions& opts) {
  std::map<std::string, std::vector<const HistoryRecord*>> base_by_bench;
  std::map<std::string, std::vector<const HistoryRecord*>> cur_by_bench;
  for (const HistoryRecord& r : baseline) base_by_bench[r.bench].push_back(&r);
  for (const HistoryRecord& r : current) cur_by_bench[r.bench].push_back(&r);

  DiffResult result;
  for (const auto& [bench, base_runs] : base_by_bench) {
    const auto cur_it = cur_by_bench.find(bench);
    if (cur_it == cur_by_bench.end()) continue;
    const auto& cur_runs = cur_it->second;

    if (!(base_runs.front()->env == cur_runs.front()->env)) {
      result.env_mismatch = true;
    }

    const MetricMins base_mins = collapse_min_of_n(base_runs);
    const MetricMins cur_mins = collapse_min_of_n(cur_runs);

    for (const auto& [key, base_v] : base_mins) {
      const auto cv = cur_mins.find(key);
      if (cv == cur_mins.end()) continue;
      const double cur_v = cv->second;

      DiffRow row;
      row.bench = bench;
      row.phase = key.first;
      row.metric = key.second;
      row.baseline = base_v;
      row.current = cur_v;
      row.ratio = base_v > 0.0 ? cur_v / base_v : 1.0;
      if (base_v > 0.0) {
        const double delta = cur_v - base_v;
        if (is_time_metric(row.metric)) {
          row.regression = row.ratio > 1.0 + opts.rel_threshold &&
                           delta > opts.abs_floor_ms;
          row.improvement = row.ratio < 1.0 - opts.rel_threshold &&
                            -delta > opts.abs_floor_ms;
        } else if (is_gated_counter(row.metric)) {
          row.regression = row.ratio > 1.0 + opts.counter_rel_threshold &&
                           delta > opts.counter_abs_floor;
          row.improvement = row.ratio < 1.0 - opts.counter_rel_threshold &&
                            -delta > opts.counter_abs_floor;
        }
      }
      result.any_regression = result.any_regression || row.regression;
      result.rows.push_back(std::move(row));
    }
  }
  return result;
}

}  // namespace rit::obs
