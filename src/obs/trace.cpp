#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <mutex>

namespace rit::obs {

namespace detail {
std::atomic<bool> g_active{false};
}  // namespace detail

namespace {

std::atomic<std::uint64_t> g_dropped{0};
std::atomic<std::size_t> g_capacity{std::size_t{1} << 20};
std::atomic<std::uint32_t> g_next_tid{0};

struct ThreadBuffer;

// Registration of live thread buffers plus events from exited threads.
// Guarded by g_registry_mutex; the hot path (record_span) never takes it.
std::mutex g_registry_mutex;
std::vector<ThreadBuffer*>& live_buffers() {
  static std::vector<ThreadBuffer*> v;
  return v;
}
std::vector<TraceEvent>& retired_events() {
  static std::vector<TraceEvent> v;
  return v;
}

struct ThreadBuffer {
  std::vector<TraceEvent> events;
  std::uint32_t tid;

  ThreadBuffer() : tid(g_next_tid.fetch_add(1, std::memory_order_relaxed)) {
    std::lock_guard<std::mutex> lock(g_registry_mutex);
    live_buffers().push_back(this);
  }

  ~ThreadBuffer() {
    std::lock_guard<std::mutex> lock(g_registry_mutex);
    auto& live = live_buffers();
    live.erase(std::remove(live.begin(), live.end(), this), live.end());
    auto& retired = retired_events();
    retired.insert(retired.end(), events.begin(), events.end());
  }
};

ThreadBuffer& local_buffer() {
  thread_local ThreadBuffer buffer;
  return buffer;
}

}  // namespace

bool tracing_active() {
  return detail::g_active.load(std::memory_order_relaxed);
}

void start_tracing() {
  clear_trace();
  detail::g_active.store(true, std::memory_order_relaxed);
}

void stop_tracing() {
  detail::g_active.store(false, std::memory_order_relaxed);
}

void clear_trace() {
  std::lock_guard<std::mutex> lock(g_registry_mutex);
  for (ThreadBuffer* b : live_buffers()) b->events.clear();
  retired_events().clear();
  g_dropped.store(0, std::memory_order_relaxed);
}

std::vector<TraceEvent> collect_trace() {
  std::vector<TraceEvent> out;
  {
    std::lock_guard<std::mutex> lock(g_registry_mutex);
    out = retired_events();
    for (const ThreadBuffer* b : live_buffers()) {
      out.insert(out.end(), b->events.begin(), b->events.end());
    }
  }
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.tid != b.tid) return a.tid < b.tid;
              if (a.begin_ns != b.begin_ns) return a.begin_ns < b.begin_ns;
              return a.end_ns > b.end_ns;  // parents before children
            });
  return out;
}

std::uint64_t dropped_spans() {
  return g_dropped.load(std::memory_order_relaxed);
}

void set_trace_capacity(std::size_t max_events_per_thread) {
  g_capacity.store(std::max<std::size_t>(max_events_per_thread, 1),
                   std::memory_order_relaxed);
}

std::uint64_t trace_now_ns() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point epoch = Clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           epoch)
          .count());
}

namespace detail {

void record_span(const char* name, std::uint64_t begin_ns,
                 std::uint64_t end_ns) {
  ThreadBuffer& buf = local_buffer();
  if (buf.events.size() >= g_capacity.load(std::memory_order_relaxed)) {
    g_dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  buf.events.push_back(TraceEvent{name, begin_ns, end_ns, buf.tid});
}

}  // namespace detail

}  // namespace rit::obs
