// Append-only perf-regression ledger: one JSONL record per bench run.
//
// The ledger (`bench/history/<bench>.jsonl` by convention, via
// `--history-out`) is the codebase's memory of its own speed. Each line is
// a self-contained, schema-versioned JSON object carrying:
//   * a machine/env fingerprint (CPU model, cores, governor, compiler,
//     flags, git SHA, thread count) so cross-machine lines are never
//     compared as if they were comparable;
//   * per-phase wall-time totals from the span tracer's phase_breakdown,
//     joined with hardware-counter totals from obs/perf_counters when
//     profiling was active (absent — not zero — when it was not);
//   * whole-run counter totals and named OnlineStats aggregates in raw
//     (bit-exact round-trip) form.
//
// Determinism contract: records carry NO wall-clock timestamps — a record
// is identified by its git SHA + env fingerprint + position in the file,
// and re-running the same binary twice must produce byte-comparable
// records (modulo the measured durations themselves). This is enforced by
// the `no-wallclock-in-history` rit_lint rule. Doubles are serialized with
// %.17g so parse(write(r)) == r bit-for-bit.
//
// Writes go through common/atomic_file (read existing + append + atomic
// replace), so a crash mid-append never tears the ledger.
//
// diff_history() is the library behind `ritcs-bench-diff`: min-of-N
// noise floor per (bench, phase), relative threshold AND absolute floor
// both required to call something a regression.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "stats/online_stats.h"

namespace rit::obs {

/// Where and how a record was produced. Two records are comparable only
/// when their fingerprints match (bench_diff warns otherwise).
struct EnvFingerprint {
  std::string cpu_model;    ///< /proc/cpuinfo "model name", or "unknown"
  std::uint32_t cores{0};   ///< std::thread::hardware_concurrency()
  std::string governor;     ///< cpufreq scaling_governor, or "unknown"
  std::string compiler;     ///< __VERSION__
  std::string build_flags;  ///< build type + CXX flags (RIT_BUILD_FLAGS)
  std::string git_sha;      ///< RIT_GIT_SHA env override, else compiled-in

  bool operator==(const EnvFingerprint&) const = default;
};

/// Fingerprint of the running process/build. git_sha honours the
/// RIT_GIT_SHA environment variable (for CI checkouts) over the value
/// baked in at configure time.
EnvFingerprint collect_env_fingerprint();

/// One span name's aggregate in one run. `counters` holds only the
/// counters that were actually available ("cycles", "instructions", ...,
/// "alloc_count", "alloc_bytes") — absence means unmeasured, never zero.
struct HistoryPhase {
  std::string name;
  std::uint64_t count{0};
  double total_ms{0.0};
  double self_ms{0.0};
  std::vector<std::pair<std::string, std::uint64_t>> counters;

  bool operator==(const HistoryPhase&) const = default;
};

/// Raw OnlineStats state (bit-exact round-trip form; see
/// OnlineStats::restore). Empty accumulators are not recorded.
struct HistoryStat {
  std::uint64_t count{0};
  double mean{0.0};
  double m2{0.0};
  double min{0.0};
  double max{0.0};

  bool operator==(const HistoryStat&) const = default;

  static HistoryStat from(const stats::OnlineStats& s) {
    return HistoryStat{s.count(), s.raw_mean(), s.raw_m2(), s.raw_min(),
                       s.raw_max()};
  }
  stats::OnlineStats to_online_stats() const {
    return stats::OnlineStats::restore(count, mean, m2, min, max);
  }
};

/// One bench run. schema_version gates parsing: readers reject lines from
/// a future schema instead of misinterpreting them.
struct HistoryRecord {
  static constexpr std::uint32_t kSchemaVersion = 1;

  std::uint32_t schema_version{kSchemaVersion};
  std::string bench;  ///< bench name, e.g. "fig6a_utility_vs_users"
  EnvFingerprint env;
  std::uint32_t threads{0};  ///< resolved worker count for this run
  std::uint64_t trials{0};
  double scale{0.0};        ///< bench --scale knob (population divisor)
  std::uint64_t points{0};  ///< sweep points requested
  double wall_ms{0.0};      ///< whole-run wall time
  std::vector<HistoryPhase> phases;
  /// Whole-run counter totals; same absence-means-unmeasured contract as
  /// HistoryPhase::counters.
  std::vector<std::pair<std::string, std::uint64_t>> run_counters;
  /// Named aggregates (e.g. "sim.trial_ms"), raw Welford state.
  std::map<std::string, HistoryStat> stats;

  bool operator==(const HistoryRecord&) const = default;
};

/// Serializes `rec` as a single JSON line (no trailing newline). Doubles
/// use %.17g: parse_history_record() returns bit-identical fields.
std::string history_record_json(const HistoryRecord& rec);

/// Parses one ledger line. Returns false (with a reason in `error`) on
/// malformed JSON, missing fields, or an unknown schema_version; `out` is
/// untouched on failure.
bool parse_history_record(const std::string& line, HistoryRecord& out,
                          std::string& error);

/// A ledger line that failed to parse: 1-based line number plus reason.
struct RejectedLine {
  std::size_t line_no{0};
  std::string reason;
};

struct HistoryFile {
  std::vector<HistoryRecord> records;
  std::vector<RejectedLine> rejected;  ///< corrupt lines, skipped not fatal
};

/// Reads every parseable record from `path` (missing file = empty ledger).
HistoryFile read_history(const std::string& path);

/// Appends `rec` to the ledger at `path` via atomic replace (read existing
/// bytes + add one line + write_file_atomic). Corrupt existing lines are
/// preserved verbatim — append never rewrites history.
void append_history(const std::string& path, const HistoryRecord& rec);

/// Noise-aware comparison knobs. A metric regresses only when BOTH the
/// relative threshold and the absolute floor are exceeded — the floor
/// keeps microsecond-scale phases from tripping percentage thresholds.
struct DiffOptions {
  double rel_threshold{0.10};     ///< wall/phase time: +10% flags
  double abs_floor_ms{0.5};       ///< ...and the delta must exceed this
  double counter_rel_threshold{0.25};  ///< counters are noisier: +25%
  double counter_abs_floor{1e7};       ///< ...and at least this many events
};

/// One compared metric. `ratio` is current/baseline (min-of-N on both
/// sides); regression/improvement are threshold-gated, everything else is
/// reported but not flagged.
struct DiffRow {
  std::string bench;
  std::string phase;   ///< span name, or "(run)" for whole-run metrics
  std::string metric;  ///< "wall_ms", "total_ms", counter names
  double baseline{0.0};
  double current{0.0};
  double ratio{1.0};
  bool regression{false};
  bool improvement{false};
};

struct DiffResult {
  std::vector<DiffRow> rows;
  bool any_regression{false};
  /// True when baseline and current fingerprints differ for some bench —
  /// the comparison is then advisory, not gating evidence.
  bool env_mismatch{false};
};

/// Compares two ledgers bench-by-bench. Within each ledger, repeated runs
/// of the same bench are collapsed min-of-N per metric (the minimum is the
/// least-noisy estimate of true cost). Counter regressions are gated only
/// for the deterministic-ish counters (instructions, task-clock, allocs);
/// cache/branch misses are reported but never flag.
DiffResult diff_history(const std::vector<HistoryRecord>& baseline,
                        const std::vector<HistoryRecord>& current,
                        const DiffOptions& opts = {});

}  // namespace rit::obs
