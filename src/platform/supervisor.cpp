#include "platform/supervisor.h"

#include <fcntl.h>
#include <poll.h>
#include <sys/mman.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstring>
#include <fstream>
#include <new>
#include <sstream>
#include <vector>

#include "common/check.h"
#include "common/hash.h"
#include "common/parallel.h"
#include "obs/obs.h"
#include "platform/shard_worker.h"
#include "sim/runner.h"
#include "stats/timer.h"

namespace rit::platform {

namespace {

/// Stable signal names for the forensic ledger (strsignal() is
/// locale-shaped; the tests grep for these exact tokens).
const char* signal_name(int sig) {
  switch (sig) {
    case SIGKILL: return "SIGKILL";
    case SIGSEGV: return "SIGSEGV";
    case SIGABRT: return "SIGABRT";
    case SIGBUS: return "SIGBUS";
    case SIGILL: return "SIGILL";
    case SIGFPE: return "SIGFPE";
    case SIGTERM: return "SIGTERM";
    case SIGXCPU: return "SIGXCPU";
    default: return nullptr;
  }
}

/// mmap'd MAP_SHARED|MAP_ANONYMOUS breadcrumb pages, one per shard,
/// created before the first fork so parent and every child share them.
struct SharedPages {
  BreadcrumbPage* pages{nullptr};
  std::size_t bytes{0};

  explicit SharedPages(unsigned count) {
    bytes = static_cast<std::size_t>(count) * sizeof(BreadcrumbPage);
    void* mem = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE,
                       MAP_SHARED | MAP_ANONYMOUS, -1, 0);
    RIT_CHECK_MSG(mem != MAP_FAILED,
                  "mmap of " << bytes << " breadcrumb bytes failed: "
                             << std::strerror(errno));
    pages = static_cast<BreadcrumbPage*>(mem);
    for (unsigned i = 0; i < count; ++i) new (pages + i) BreadcrumbPage();
  }
  SharedPages(const SharedPages&) = delete;
  SharedPages& operator=(const SharedPages&) = delete;
  ~SharedPages() {
    if (pages != nullptr) ::munmap(pages, bytes);
  }
};

/// One shard's supervision state across launches.
struct ShardSlot {
  unsigned shard{0};
  std::uint64_t local_trials{0};
  BreadcrumbPage* page{nullptr};

  // Durable state ("" = checkpointing off for this run).
  std::string path;
  std::uint64_t shard_hash{0};

  // Current attempt (0-based launch counter).
  unsigned attempt{0};
  pid_t pid{-1};
  int read_fd{-1};
  std::string buffer;

  // Watchdog state for the running attempt.
  std::uint64_t last_heartbeat{0};
  stats::Timer beat_timer;
  bool hang_killed{false};

  // Relaunch scheduling.
  bool pending{true};
  double backoff_wait_ms{0.0};
  stats::Timer backoff_timer;

  // Outcome.
  bool completed{false};
  sim::GuardedResult result;
};

/// A worker-death forensic entry plus its (shard, attempt) sort key: deaths
/// land in temporal order during the run, but the final ledger must be
/// deterministic-ish in presentation, so they are appended sorted.
struct DeathRecord {
  unsigned shard{0};
  unsigned attempt{0};
  sim::TrialFault fault;
};

/// Kills and reaps every still-running child when the supervisor unwinds
/// (normal return, CheckFailure abort, or any other exception).
struct FleetGuard {
  std::vector<ShardSlot>* slots;
  ~FleetGuard() {
    if (slots == nullptr) return;
    for (ShardSlot& s : *slots) {
      if (s.pid > 0) {
        ::kill(s.pid, SIGKILL);
        ::waitpid(s.pid, nullptr, 0);
        s.pid = -1;
      }
      if (s.read_fd >= 0) {
        ::close(s.read_fd);
        s.read_fd = -1;
      }
    }
  }
};

std::uint64_t shard_config_hash(const SupervisorOptions& opts,
                                std::uint64_t point, unsigned shard,
                                unsigned shard_count, std::uint64_t trials) {
  std::ostringstream os;
  os << "shard " << shard << "/" << shard_count << " point " << point
     << " trials " << trials << " hash " << opts.config_hash << " seed "
     << opts.seed;
  return fnv1a64(os.str());
}

/// Pre-validates shard k's durable file: absent -> fresh, matching
/// bindings -> resume, stale bindings (a previous grid point or sweep
/// shape) -> unlink and start fresh. A *corrupt* file still throws — torn
/// state is evidence of a bug, the same refusal the parent checkpoint has.
void prepare_shard_file(const ShardSlot& slot, const SupervisorOptions& opts,
                        bool resume) {
  if (slot.path.empty()) return;
  if (!resume) {
    ::unlink(slot.path.c_str());
    return;
  }
  std::ifstream in(slot.path, std::ios::binary);
  if (!in) return;  // nothing durable yet
  std::ostringstream content;
  content << in.rdbuf();
  const sim::CheckpointData data =
      sim::parse_checkpoint(content.str(), slot.path);
  if (data.config_hash != slot.shard_hash || data.seed != opts.seed ||
      data.threads != 1 || data.trials != slot.local_trials) {
    ::unlink(slot.path.c_str());
  }
}

/// Drains whatever the pipe holds right now into the slot's buffer
/// (O_NONBLOCK read end; never blocks). Returns false once EOF is seen.
bool drain_pipe(ShardSlot& slot) {
  char buf[4096];
  for (;;) {
    const ssize_t n = ::read(slot.read_fd, buf, sizeof(buf));
    if (n > 0) {
      slot.buffer.append(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) return false;  // EOF: writer closed
    if (errno == EINTR) continue;
    return true;  // EAGAIN: nothing more right now
  }
}

void launch_shard(ShardSlot& slot, std::uint64_t trials, unsigned shard_count,
                  const SupervisorOptions& opts,
                  const sim::GuardPolicy& policy, const sim::TrialBody& body,
                  const sim::TrialSeedFn& seed_of) {
  int fds[2];
  RIT_CHECK_MSG(::pipe(fds) == 0,
                "pipe() for shard " << slot.shard
                                    << " failed: " << std::strerror(errno));

  // Retry attempts strip the process-death injectors by default: they are
  // keyed on trial indices, so a deterministic signal/OOM/hang would refire
  // on every relaunch and no retry budget could ever recover the shard.
  sim::chaos::ChaosSpec chaos = policy.chaos;
  if (slot.attempt > 0 && !chaos.process_chaos_every_attempt) {
    chaos = chaos.without_process_injectors();
  }

  // Reset the attempt-scoped shared fields before the child exists; the
  // breadcrumb triple (trial/seed/phase) is left alone so a pre-first-trial
  // death still shows the previous attempt's last position.
  slot.page->done.store(0, std::memory_order_relaxed);
  slot.page->oom.store(0, std::memory_order_relaxed);
  slot.buffer.clear();
  slot.hang_killed = false;

  ShardJob job;
  job.trials = trials;
  job.shard = slot.shard;
  job.shard_count = shard_count;
  job.policy = policy;
  job.chaos = chaos;
  job.body = &body;
  job.seed_of = &seed_of;
  if (!slot.path.empty()) {
    job.use_session = true;
    job.session.path = slot.path;
    job.session.config_hash = slot.shard_hash;
    job.session.seed = opts.seed;
    job.session.threads = 1;
    job.session.trials = slot.local_trials;
    job.session.every = opts.checkpoint_every;
    // Always resume inside the child: the parent already discarded stale
    // or unwanted files, so whatever survives is this run's own cut.
    job.session.resume = true;
  }
  job.page = slot.page;
  job.result_fd = fds[1];
  job.parent_pid = static_cast<int>(::getpid());
  job.mem_mb = opts.shard_mem_mb;
  job.cpu_s = opts.shard_cpu_s;

  const pid_t child = ::fork();
  RIT_CHECK_MSG(child >= 0,
                "fork() for shard " << slot.shard
                                    << " failed: " << std::strerror(errno));
  if (child == 0) {
    ::close(fds[0]);
    run_shard_child(job);  // [[noreturn]]
  }
  ::close(fds[1]);
  const int flags = ::fcntl(fds[0], F_GETFL, 0);
  ::fcntl(fds[0], F_SETFL, flags | O_NONBLOCK);

  slot.pid = child;
  slot.read_fd = fds[0];
  slot.pending = false;
  slot.last_heartbeat = slot.page->heartbeat.load(std::memory_order_relaxed);
  slot.beat_timer.reset();
  RIT_COUNTER_INC("platform.shards_launched");
}

std::string death_reason(const ShardSlot& slot, int status,
                         const SupervisorOptions& opts) {
  std::uint64_t crumb_trial = 0;
  std::uint64_t crumb_seed = 0;
  std::string crumb_phase;
  slot.page->snapshot(&crumb_trial, &crumb_seed, &crumb_phase);
  const bool oom_flagged =
      slot.page->oom.load(std::memory_order_relaxed) != 0;

  std::ostringstream os;
  os << "shard " << slot.shard << " attempt " << slot.attempt << ": ";
  if (slot.hang_killed) {
    os << "hung (heartbeat stalled for " << opts.heartbeat_timeout_ms
       << " ms), killed by the watchdog";
  } else if (WIFSIGNALED(status)) {
    const int sig = WTERMSIG(status);
    const char* name = signal_name(sig);
    os << "killed by ";
    if (name != nullptr) {
      os << name;
    } else {
      os << "signal " << sig;
    }
    if (sig == SIGXCPU && opts.shard_cpu_s > 0) {
      os << " (RLIMIT_CPU budget of " << opts.shard_cpu_s << " s exhausted)";
    } else if (oom_flagged) {
      os << " (OOM: allocation failed under the " << opts.shard_mem_mb
         << " MB address-space budget)";
    }
  } else if (oom_flagged) {
    // ASan and friends turn the abort into a plain exit; the oom flag set
    // just before the bomb detonated still attributes it.
    os << "died out-of-memory (exit status " << WEXITSTATUS(status)
       << ", allocation failed under the " << opts.shard_mem_mb
       << " MB address-space budget)";
  } else {
    os << "exited with unexpected status " << WEXITSTATUS(status);
  }
  os << "; last breadcrumb: trial " << crumb_trial << " (seed " << crumb_seed
     << ", phase " << (crumb_phase.empty() ? "-" : crumb_phase) << ")";
  return os.str();
}

}  // namespace

unsigned resolve_shards(unsigned shards, std::uint64_t trials) {
  return rit::resolve_threads(shards, trials);
}

sim::GuardedResult run_trials_supervised(std::uint64_t trials,
                                         const SupervisorOptions& opts,
                                         const sim::GuardPolicy& policy,
                                         const sim::TrialBody& body,
                                         const sim::TrialSeedFn& seed_of,
                                         sim::CheckpointSession* session,
                                         std::uint64_t point,
                                         const sim::ProgressFn& progress) {
  const unsigned shard_count = resolve_shards(opts.shards, trials);
  if (session != nullptr) {
    // Same contract as the in-process runner: the partition — and so the
    // resumable/checkable state — binds to the resolved shard count.
    RIT_CHECK_MSG(session->params().threads == shard_count,
                  "checkpoint session bound to " << session->params().threads
                                                 << " worker(s), supervised "
                                                    "run has "
                                                 << shard_count);
    RIT_CHECK_MSG(session->params().trials == trials,
                  "checkpoint session bound to " << session->params().trials
                                                 << " trial(s), run has "
                                                 << trials);
    sim::GuardedResult done;
    if (session->completed_point(point, &done)) return done;
  }
  RIT_CHECK_MSG(opts.checkpoint_every == 0 || !opts.checkpoint_path.empty(),
                "--shard checkpointing wants a checkpoint path");

  SharedPages pages(shard_count);
  std::vector<ShardSlot> slots(shard_count);
  for (unsigned k = 0; k < shard_count; ++k) {
    ShardSlot& s = slots[k];
    s.shard = k;
    s.local_trials = shard_trial_count(trials, k, shard_count);
    s.page = pages.pages + k;
    if (!opts.checkpoint_path.empty()) {
      s.path = opts.checkpoint_path + ".shard" + std::to_string(k);
      s.shard_hash =
          shard_config_hash(opts, point, k, shard_count, trials);
      prepare_shard_file(s, opts, opts.resume);
    }
  }

  FleetGuard guard{&slots};
  std::vector<DeathRecord> deaths;

  // Flushes the merged evidence-so-far before an abort surfaces, mirroring
  // the in-process runner's `.aborted` artifact.
  const auto abort_sweep = [&](const std::string& reason) {
    if (session != nullptr) {
      sim::GuardedResult partial;
      for (const ShardSlot& s : slots) {
        if (s.completed) {
          partial.metrics.merge(s.result.metrics);
          partial.faults.merge(s.result.faults);
        }
      }
      std::sort(deaths.begin(), deaths.end(),
                [](const DeathRecord& a, const DeathRecord& b) {
                  return a.shard != b.shard ? a.shard < b.shard
                                            : a.attempt < b.attempt;
                });
      for (const DeathRecord& d : deaths) {
        partial.faults.entries.push_back(d.fault);
      }
      session->save_aborted(point, partial, reason);
    }
    throw rit::CheckFailure(reason);
  };

  std::uint64_t reported = 0;
  const auto report_progress = [&]() {
    if (!progress) return;
    std::uint64_t done = 0;
    for (const ShardSlot& s : slots) {
      done += s.completed
                  ? s.local_trials
                  : std::min(s.local_trials,
                             s.page->done.load(std::memory_order_relaxed));
    }
    done = std::min(done, trials);
    if (done > reported) {
      reported = done;
      progress(done, trials);
    }
  };

  for (;;) {
    bool all_completed = true;
    for (ShardSlot& s : slots) {
      if (!s.completed) all_completed = false;
      // Launch (or relaunch once the backoff elapsed) every due shard.
      if (!s.completed && s.pid < 0 && s.pending &&
          s.backoff_timer.elapsed_ms() >= s.backoff_wait_ms) {
        launch_shard(s, trials, shard_count, opts, policy, body, seed_of);
      }
    }
    if (all_completed) break;

    std::vector<struct pollfd> fds;
    fds.reserve(slots.size());
    for (const ShardSlot& s : slots) {
      if (s.pid > 0 && s.read_fd >= 0) {
        fds.push_back(pollfd{s.read_fd, POLLIN, 0});
      }
    }
    // With no child running (every survivor waiting out its backoff) the
    // empty poll is just the loop's sleep.
    ::poll(fds.empty() ? nullptr : fds.data(), fds.size(),
           /*timeout_ms=*/20);

    for (ShardSlot& s : slots) {
      if (s.pid <= 0) continue;
      // Keep the pipe drained while the child runs: a shard result larger
      // than the pipe capacity would otherwise deadlock child against
      // parent (child blocked in write, parent blocked in waitpid).
      drain_pipe(s);

      // Heartbeat watchdog.
      if (opts.heartbeat_timeout_ms > 0 && !s.hang_killed) {
        const std::uint64_t beat =
            s.page->heartbeat.load(std::memory_order_relaxed);
        if (beat != s.last_heartbeat) {
          s.last_heartbeat = beat;
          s.beat_timer.reset();
        } else if (s.beat_timer.elapsed_ms() >
                   static_cast<double>(opts.heartbeat_timeout_ms)) {
          s.hang_killed = true;
          ::kill(s.pid, SIGKILL);
          RIT_COUNTER_INC("platform.shards_hang_killed");
        }
      }

      int status = 0;
      const pid_t reaped = ::waitpid(s.pid, &status, WNOHANG);
      if (reaped != s.pid) continue;
      s.pid = -1;

      // Child gone: collect the remainder of the payload and close.
      while (drain_pipe(s)) {
      }
      ::close(s.read_fd);
      s.read_fd = -1;

      const bool clean_exit = WIFEXITED(status) && !s.hang_killed;
      const int code = clean_exit ? WEXITSTATUS(status) : -1;
      if (clean_exit && code == kShardOk) {
        ShardPayload payload = parse_shard_payload(s.buffer);
        if (!payload.ok) {
          abort_sweep("shard " + std::to_string(s.shard) +
                      " exited cleanly with a bad payload: " + payload.error);
        }
        s.completed = true;
        s.result = std::move(payload.result);
        RIT_COUNTER_INC("platform.shards_completed");
        continue;
      }
      if (clean_exit &&
          (code == kShardCheckFailure || code == kShardError)) {
        // Deterministic failure inside the shard (failure budget exhausted,
        // binding mismatch, escaped exception): retrying cannot help.
        const ShardPayload payload = parse_shard_payload(s.buffer);
        abort_sweep("shard " + std::to_string(s.shard) + " failed: " +
                    (payload.error.empty() ? "no reason transmitted"
                                           : payload.error));
      }
      // Everything else is a worker death: signal, hang kill, or an exit
      // status no shard ever uses (e.g. a sanitizer turning SIGSEGV into
      // exit 1). Record forensics and decide retry vs quarantine.
      const std::string reason = death_reason(s, status, opts);
      DeathRecord death;
      death.shard = s.shard;
      death.attempt = s.attempt;
      std::uint64_t crumb_trial = 0;
      std::uint64_t crumb_seed = 0;
      std::string crumb_phase;
      s.page->snapshot(&crumb_trial, &crumb_seed, &crumb_phase);
      death.fault.trial = crumb_trial;
      death.fault.seed = crumb_seed;
      death.fault.kind = sim::FaultKind::kWorkerDeath;
      death.fault.phase = crumb_phase.empty() ? "trial" : crumb_phase;
      death.fault.reason = reason;
      deaths.push_back(death);
      RIT_COUNTER_INC("platform.shards_died");

      if (s.attempt >= opts.shard_retries) {
        abort_sweep("shard " + std::to_string(s.shard) +
                    " quarantined after " + std::to_string(s.attempt + 1) +
                    " attempt(s); last death: " + reason);
      }
      ++s.attempt;
      s.pending = true;
      s.backoff_wait_ms = static_cast<double>(opts.backoff_ms) *
                          static_cast<double>(std::uint64_t{1}
                                              << (s.attempt - 1));
      s.backoff_timer.reset();
      RIT_COUNTER_INC("platform.shards_retried");
    }

    report_progress();
  }

  // Merge in shard-index order: identical to the in-process runner's
  // worker-index merge at threads == shard_count, so undisturbed (and
  // recovered) supervised runs are bit-identical to it.
  sim::GuardedResult out;
  for (const ShardSlot& s : slots) {
    out.metrics.merge(s.result.metrics);
    out.faults.merge(s.result.faults);
  }

  // Each shard enforced the failure budget against its local count (a
  // local crossing implies a global one); this catches the cross-shard sum
  // crossing the budget even though no single shard did.
  const std::uint64_t contained =
      out.metrics.failed_trials + out.metrics.quarantined_trials;
  if (contained > policy.max_trial_failures) {
    std::ostringstream os;
    os << contained << " contained fault(s) across " << shard_count
       << " shard(s) > --max-trial-failures=" << policy.max_trial_failures
       << " — failure budget exhausted";
    abort_sweep(os.str());
  }

  // Worker deaths the fleet recovered from are part of the record: append
  // them (sorted for determinism of presentation) after the bit-identical
  // contained-fault ledger.
  std::sort(deaths.begin(), deaths.end(),
            [](const DeathRecord& a, const DeathRecord& b) {
              return a.shard != b.shard ? a.shard < b.shard
                                        : a.attempt < b.attempt;
            });
  for (const DeathRecord& d : deaths) out.faults.entries.push_back(d.fault);

  if (progress && reported < trials) progress(trials, trials);
  if (session != nullptr) session->complete_point(point, out);
  // The shard files served their purpose once the parent's own checkpoint
  // (or the caller) owns the completed point.
  for (const ShardSlot& s : slots) {
    if (!s.path.empty()) ::unlink(s.path.c_str());
  }
  return out;
}

sim::GuardedResult run_many_supervised(const sim::Scenario& scenario,
                                       std::uint64_t trials,
                                       const SupervisorOptions& opts,
                                       const sim::GuardPolicy& policy,
                                       sim::CheckpointSession* session,
                                       std::uint64_t point,
                                       const sim::ProgressFn& progress) {
  const sim::TrialBody body = [&scenario](std::uint64_t t,
                                          core::RitWorkspace& ws,
                                          std::string* phase) {
    *phase = "make_instance";
    note_phase("make_instance");
    const sim::TrialInstance inst = sim::make_instance(scenario, t);
    *phase = "run_trial";
    note_phase("run_trial");
    return sim::run_trial(scenario, inst, ws);
  };
  const sim::TrialSeedFn seed_of = [&scenario](std::uint64_t t) {
    return sim::mechanism_seed_of(scenario, t);
  };
  return run_trials_supervised(trials, opts, policy, body, seed_of, session,
                               point, progress);
}

}  // namespace rit::platform
