#include "platform/campaign.h"

#include <numeric>

#include "common/check.h"
#include "sim/failures.h"
#include "sim/workload.h"

namespace rit::platform {

Campaign::Campaign(CampaignConfig config, std::string tag)
    : config_(std::move(config)), tag_(std::move(tag)) {
  RIT_CHECK_MSG(!tag_.empty(), "a campaign needs a non-empty tag");
}

const Campaign::Recruited& Campaign::require_recruited() const {
  RIT_CHECK_MSG(instance_.has_value(),
                "campaign '" << tag_ << "': recruit() has not run");
  return *instance_;
}

void Campaign::recruit() {
  RIT_CHECK_MSG(!instance_.has_value(),
                "campaign '" << tag_ << "': already recruited");
  const sim::Scenario& s = config_.scenario;
  rng::Rng graph_rng(s.trial_seed(0, 0));
  rng::Rng pop_rng(s.trial_seed(0, 1));
  rng::Rng job_rng(s.trial_seed(0, 2));
  const graph::Graph g = sim::generate_graph(s, graph_rng);
  const sim::Population pop = sim::generate_population(s, pop_rng);

  Recruited rec;
  rec.job = sim::generate_job(s, job_rng);
  rec.mechanism_seed = s.trial_seed(0, 3);

  // Recruit per mode; `members` lists the participating graph nodes in
  // join order, with the matching tree.
  std::vector<std::uint32_t> members;
  switch (config_.mode) {
    case SolicitationMode::kInstant: {
      sim::TreeResult tr = sim::generate_tree(s, g);
      rec.tree = std::move(tr.tree);
      members = std::move(tr.graph_node_of_participant);
      break;
    }
    case SolicitationMode::kGrowth: {
      sim::GrowthOptions opts;
      opts.supply_multiple = config_.supply_multiple;
      opts.seeds.resize(std::max<std::uint32_t>(1, s.initial_joiners));
      std::iota(opts.seeds.begin(), opts.seeds.end(), 0u);
      sim::GrowthResult grown = sim::grow_until_supply(g, pop, rec.job, opts);
      rec.tree = std::move(grown.tree);
      members = std::move(grown.joined);
      break;
    }
    case SolicitationMode::kDynamics: {
      sim::DynamicsOptions opts = config_.dynamics;
      opts.supply_multiple = config_.supply_multiple;
      if (opts.seeds.empty()) opts.seeds = {0};
      rng::Rng cascade_rng(s.trial_seed(0, 4));
      sim::DynamicsResult campaign =
          sim::simulate_solicitation(g, pop, &rec.job, opts, cascade_rng);
      // Strip users who departed before close.
      std::vector<core::Ask> joined_asks;
      joined_asks.reserve(campaign.joined.size());
      for (std::uint32_t u : campaign.joined) {
        joined_asks.push_back(pop.truthful_asks[u]);
      }
      const sim::DropoutResult survivors = sim::remove_participants(
          campaign.tree, joined_asks, campaign.departed);
      rec.tree = survivors.tree;
      members.reserve(survivors.asks.size());
      for (std::uint32_t i : survivors.original_of) {
        members.push_back(campaign.joined[i]);
      }
      break;
    }
  }

  rec.asks.reserve(members.size());
  rec.costs.reserve(members.size());
  rec.accounts.reserve(members.size());
  for (std::uint32_t u : members) {
    rec.asks.push_back(pop.truthful_asks[u]);
    rec.costs.push_back(pop.costs[u]);
    rec.accounts.push_back(u);  // population index = stable account id
  }
  RIT_CHECK(rec.tree.num_participants() == rec.asks.size());
  instance_ = std::move(rec);
}

const core::RitResult& Campaign::clear() {
  const Recruited& rec = require_recruited();
  RIT_CHECK_MSG(!result_.has_value(),
                "campaign '" << tag_ << "': already cleared");
  rng::Rng rng(rec.mechanism_seed);
  core::RitResult r = core::run_rit(rec.job, rec.asks, rec.tree,
                                    config_.scenario.mechanism, rng);
  const core::AuditReport audit = core::audit_payments(
      rec.tree, rec.asks, r, config_.scenario.mechanism.discount_base);
  RIT_CHECK_MSG(audit.ok, "campaign '" << tag_ << "': post-clear audit failed: "
                                       << (audit.violations.empty()
                                               ? "unknown"
                                               : audit.violations.front()));
  result_ = std::move(r);
  return *result_;
}

std::size_t Campaign::settle(Ledger& ledger) {
  RIT_CHECK_MSG(result_.has_value(),
                "campaign '" << tag_ << "': clear() has not run");
  RIT_CHECK_MSG(!settled_, "campaign '" << tag_
                                        << "': already settled — settling "
                                           "twice would pay everyone twice");
  settled_ = true;
  return ledger.settle(*result_, require_recruited().accounts, tag_);
}

std::uint32_t Campaign::num_participants() const {
  return static_cast<std::uint32_t>(require_recruited().asks.size());
}

const tree::IncentiveTree& Campaign::tree() const {
  return require_recruited().tree;
}

AccountId Campaign::account_of(std::uint32_t participant) const {
  const Recruited& rec = require_recruited();
  RIT_CHECK(participant < rec.accounts.size());
  return rec.accounts[participant];
}

const core::RitResult& Campaign::result() const {
  RIT_CHECK_MSG(result_.has_value(),
                "campaign '" << tag_ << "': clear() has not run");
  return *result_;
}

core::ExperimentRecord Campaign::record() const {
  const Recruited& rec = require_recruited();
  core::ExperimentRecord out;
  out.job = rec.job;
  out.asks = rec.asks;
  out.tree_parents = rec.tree.parents();
  out.discount_base = config_.scenario.mechanism.discount_base;
  out.result = result();
  return out;
}

}  // namespace rit::platform
