// Process-isolated sweep supervisor: the parent side of shard_worker.h.
//
// run_trials_supervised() partitions a grid point's trial space into K
// residue-class shards, forks one worker process per shard under rlimit
// budgets, and monitors the fleet: a shard that segfaults, OOMs, hits its
// CPU budget, or stops heartbeating is recorded in the FaultLedger as a
// kWorkerDeath (with the shard's last breadcrumb as forensics) and
// relaunched with exponential backoff, resuming from its own checkpoint
// cut. Because each shard folds exactly the trials the in-process runner's
// worker s would fold at threads=K — in the same order — and the
// supervisor merges shard results in shard-index order, a supervised run
// (disturbed or not) produces bit-identical aggregates to
// run_trials_guarded(threads=K). See docs/robustness.md.
//
// Failure classes and what the supervisor does:
//   * signal death / unknown exit  -> forensics + backoff retry
//   * heartbeat stall              -> SIGKILL + forensics + backoff retry
//   * exit kShardCheckFailure/kShardError (deterministic: budget
//     exhausted, binding mismatch, escaped exception) -> abort the sweep
//   * retry budget (shard_retries) exhausted -> quarantine the shard,
//     flush `.aborted` forensics, abort the sweep
#pragma once

#include <cstdint>
#include <string>

#include "sim/checkpoint.h"
#include "sim/guarded.h"
#include "sim/scenario.h"

namespace rit::platform {

struct SupervisorOptions {
  /// Worker processes (0 = hardware concurrency, clamped to the trial
  /// count like resolve_threads). This takes the role threads has for the
  /// in-process runner: the partition — and so the bits — bind to it.
  unsigned shards{0};
  /// Per-shard memory budget in MB, enforced as RLIMIT_AS (0 = unlimited).
  std::uint64_t shard_mem_mb{0};
  /// Per-shard CPU budget in seconds, enforced as RLIMIT_CPU (0 = off).
  std::uint64_t shard_cpu_s{0};
  /// Worker deaths tolerated per shard before it is quarantined and the
  /// sweep aborts. The first launch is attempt 0; shard_retries=2 allows
  /// up to 3 launches.
  unsigned shard_retries{2};
  /// Base relaunch delay; attempt n waits backoff_ms * 2^(n-1).
  std::uint64_t backoff_ms{100};
  /// Declare a shard hung when its heartbeat does not advance for this
  /// long, and SIGKILL it (0 = watchdog off).
  std::uint64_t heartbeat_timeout_ms{0};
  /// Durable shard state: each shard k checkpoints to
  /// `<checkpoint_path>.shard<k>` every `checkpoint_every` trials, so a
  /// relaunch resumes from the shard's last cut instead of replaying.
  /// Empty = no durable state (retries replay the whole shard —
  /// deterministic either way).
  std::string checkpoint_path;
  std::uint64_t checkpoint_every{0};
  /// Resume shard files from a previous supervised run (stale files —
  /// config-hash mismatch from an earlier grid point — are discarded).
  bool resume{false};
  /// Sweep config hash + seed, mixed into each shard file's binding so a
  /// shard checkpoint can never resume the wrong sweep/point/shard.
  std::uint64_t config_hash{0};
  std::uint64_t seed{0};
};

/// The resolved shard count `opts.shards` yields for `trials` trials
/// (resolve_threads semantics — the supervised analogue of a resolved
/// thread count, exposed so callers can bind checkpoint sessions to it).
unsigned resolve_shards(unsigned shards, std::uint64_t trials);

/// Supervised analogue of run_trials_guarded: same body/seed contract,
/// same result, same abort semantics (CheckFailure), but each residue
/// class runs in its own forked process. `session`, when non-null, is the
/// *parent* sweep session (bound to threads == resolved shard count): the
/// supervisor consults completed_point, calls complete_point, and flushes
/// `.aborted` forensics through it; the per-shard durable state lives in
/// the sibling `.shard<k>` files named by `opts.checkpoint_path`.
sim::GuardedResult run_trials_supervised(std::uint64_t trials,
                                         const SupervisorOptions& opts,
                                         const sim::GuardPolicy& policy,
                                         const sim::TrialBody& body,
                                         const sim::TrialSeedFn& seed_of = {},
                                         sim::CheckpointSession* session = nullptr,
                                         std::uint64_t point = 0,
                                         const sim::ProgressFn& progress = {});

/// Scenario-driven form (the supervised run_many_guarded): the body stages
/// make_instance / run_trial and mirrors the stage into the shard's
/// breadcrumb page, so worker-death forensics name the phase that died.
sim::GuardedResult run_many_supervised(const sim::Scenario& scenario,
                                       std::uint64_t trials,
                                       const SupervisorOptions& opts,
                                       const sim::GuardPolicy& policy,
                                       sim::CheckpointSession* session = nullptr,
                                       std::uint64_t point = 0,
                                       const sim::ProgressFn& progress = {});

}  // namespace rit::platform
