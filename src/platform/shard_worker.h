// The child side of the process-isolated sweep supervisor.
//
// A shard worker is a forked copy of the sweep process that runs one
// residue class of the trial space — shard s of K handles global trials
// s, s+K, s+2K, … — serially, under rlimit budgets, with its own
// CheckpointSession so a killed shard resumes from its last cut. The fold
// order within a shard is exactly the fold order the in-process guarded
// runner's worker s would use at threads=K, which is what makes a
// supervised run bit-identical to an in-process one (see
// docs/robustness.md, "Process isolation & supervision").
//
// Communication with the supervisor:
//   * a shared-memory breadcrumb page (mmap'd before fork) carries the
//     last phase/trial/seed, a heartbeat counter the watchdog monitors,
//     and a running done-count for progress reporting;
//   * a pipe carries the shard's final GuardedResult (serialized through
//     the checkpoint format) or a structured error;
//   * the exit status carries the outcome class (see ShardExit).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "sim/chaos.h"
#include "sim/checkpoint.h"
#include "sim/guarded.h"

namespace rit::platform {

/// Exit codes a shard worker uses; anything else (or a signal death) is a
/// worker death the supervisor retries.
enum ShardExit : int {
  kShardOk = 0,
  /// A CheckFailure escaped the shard's guarded run (failure budget
  /// exhausted, checkpoint binding mismatch): deterministic, so the
  /// supervisor aborts the sweep instead of retrying.
  kShardCheckFailure = 2,
  /// Any other exception escaped: also fatal, also not retried.
  kShardError = 3,
};

/// One cache line of shared memory per shard, written by the child and
/// read by the supervisor's watchdog. The trial/seed/phase triple is
/// guarded by a seqlock (`seq` is odd while the child writes) so the
/// parent can take a consistent snapshot of a crashing child's last
/// breadcrumb without locks; the counters are plain atomics.
struct BreadcrumbPage {
  std::atomic<std::uint64_t> seq{0};
  std::uint64_t trial{0};  // global trial index
  std::uint64_t seed{0};   // that trial's mechanism seed
  char phase[32]{};        // last phase label, NUL-terminated
  /// Bumped at least once per trial; the watchdog declares a hang when it
  /// stops advancing for longer than the heartbeat timeout.
  std::atomic<std::uint64_t> heartbeat{0};
  /// Trials started this attempt (progress reporting).
  std::atomic<std::uint64_t> done{0};
  /// Set by the chaos allocation bomb just before it detonates, so the
  /// supervisor can attribute the death to OOM with certainty.
  std::atomic<std::uint32_t> oom{0};

  /// Child: publish a new breadcrumb (seqlock write + heartbeat bump).
  void begin_trial(std::uint64_t global_trial, std::uint64_t trial_seed);
  /// Child: update only the phase label (seqlock write + heartbeat bump).
  void note_phase(const char* label);
  /// Parent: consistent snapshot; spins while a write is in flight.
  void snapshot(std::uint64_t* out_trial, std::uint64_t* out_seed,
                std::string* out_phase) const;
};
// The watchdog reads these from another process: they must be lock-free
// atomics or the seqlock degenerates into a cross-process deadlock.
static_assert(std::atomic<std::uint64_t>::is_always_lock_free &&
                  std::atomic<std::uint32_t>::is_always_lock_free,
              "BreadcrumbPage needs lock-free atomics to live in shared "
              "memory across fork()");

/// The breadcrumb page of the shard currently running in this process
/// (nullptr outside a shard worker). Trial bodies that stage their work —
/// the scenario body in supervisor.cpp — call note_phase() through this so
/// the supervisor's forensics name the stage that died.
BreadcrumbPage* current_breadcrumb();
void set_current_breadcrumb(BreadcrumbPage* page);
/// note_phase on the current breadcrumb; no-op when not in a shard worker.
void note_phase(const char* label);

/// Everything a forked child needs to run its shard. All pointers/handles
/// are inherited across fork; the child never touches the parent's
/// checkpoint file, only its own `<checkpoint>.shard<k>` sibling.
struct ShardJob {
  std::uint64_t trials{0};      // global trial count for the whole point
  unsigned shard{0};            // this shard's residue class
  unsigned shard_count{1};      // K
  sim::GuardPolicy policy;      // chaos is handled by the wrapper, not the
                                // inner runner (global-index parity)
  sim::chaos::ChaosSpec chaos;  // injectors, global trial indices
  const sim::TrialBody* body{nullptr};
  const sim::TrialSeedFn* seed_of{nullptr};
  /// Shard checkpoint session params; empty path disables checkpointing
  /// (a retried shard then replays from trial 0 — still deterministic).
  sim::CheckpointSession::Params session;
  bool use_session{false};
  BreadcrumbPage* page{nullptr};
  int result_fd{-1};            // write end of the result pipe
  /// Parent pid at fork time: with PR_SET_PDEATHSIG there is a race where
  /// the parent dies before the prctl lands; the child re-checks.
  int parent_pid{0};
  /// rlimit budgets (0 = unlimited). mem is RLIMIT_AS in MB — Linux cannot
  /// enforce RSS directly, so the address-space budget stands in for it.
  std::uint64_t mem_mb{0};
  std::uint64_t cpu_s{0};
};

/// Number of global trials shard s of K owns (the residue class size).
std::uint64_t shard_trial_count(std::uint64_t trials, unsigned shard,
                                unsigned shard_count);

/// Runs `job` in the forked child and never returns: sets the death
/// signal, applies rlimits, runs the shard's residue class serially with
/// chaos injection at global trial indices, rewrites ledger entries to
/// global indices, streams the result over the pipe, and _exit()s with a
/// ShardExit code.
[[noreturn]] void run_shard_child(const ShardJob& job);

/// Serialization of a shard's GuardedResult for the result pipe (reuses
/// the checksummed checkpoint format; exposed for tests).
std::string serialize_shard_result(const sim::GuardedResult& result);
/// Parses it back; `ok=false` with a reason when the payload is the
/// structured error form instead.
struct ShardPayload {
  bool ok{false};
  std::string error;
  sim::GuardedResult result;
};
ShardPayload parse_shard_payload(const std::string& content);
/// The structured error form (CheckFailure text from a dying shard).
std::string serialize_shard_error(const std::string& what);

}  // namespace rit::platform
