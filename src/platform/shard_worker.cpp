#include "platform/shard_worker.h"

#include <sys/prctl.h>
#include <sys/resource.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstddef>
#include <exception>
#include <memory>
#include <sstream>

#include "common/check.h"

namespace rit::platform {

namespace {

// NUL-terminated bounded copy into the breadcrumb phase buffer. Must not
// allocate: it runs between the seqlock edges and on the trial hot path.
void copy_phase(char* dst, const char* label) {
  std::size_t i = 0;
  for (; label[i] != '\0' && i < sizeof(BreadcrumbPage::phase) - 1; ++i) {
    dst[i] = label[i];
  }
  dst[i] = '\0';
}

BreadcrumbPage* g_current_breadcrumb = nullptr;

}  // namespace

void BreadcrumbPage::begin_trial(std::uint64_t global_trial,
                                 std::uint64_t trial_seed) {
  const std::uint64_t v = seq.load(std::memory_order_relaxed);
  seq.store(v + 1, std::memory_order_release);  // odd: write in flight
  trial = global_trial;
  seed = trial_seed;
  copy_phase(phase, "trial");
  seq.store(v + 2, std::memory_order_release);
  heartbeat.fetch_add(1, std::memory_order_relaxed);
  done.fetch_add(1, std::memory_order_relaxed);
}

void BreadcrumbPage::note_phase(const char* label) {
  const std::uint64_t v = seq.load(std::memory_order_relaxed);
  seq.store(v + 1, std::memory_order_release);
  copy_phase(phase, label);
  seq.store(v + 2, std::memory_order_release);
  heartbeat.fetch_add(1, std::memory_order_relaxed);
}

void BreadcrumbPage::snapshot(std::uint64_t* out_trial,
                              std::uint64_t* out_seed,
                              std::string* out_phase) const {
  // Bounded seqlock read: a child killed mid-write leaves seq odd forever,
  // so after enough retries the parent accepts a possibly-torn snapshot —
  // forensics are best-effort by nature, a hang here would not be.
  char buf[sizeof(phase)];
  for (int tries = 0; tries < 1000; ++tries) {
    const std::uint64_t s1 = seq.load(std::memory_order_acquire);
    *out_trial = trial;
    *out_seed = seed;
    for (std::size_t i = 0; i < sizeof(buf); ++i) buf[i] = phase[i];
    const std::uint64_t s2 = seq.load(std::memory_order_acquire);
    if (s1 == s2 && (s1 & 1u) == 0) break;
  }
  buf[sizeof(buf) - 1] = '\0';
  *out_phase = buf;
}

BreadcrumbPage* current_breadcrumb() { return g_current_breadcrumb; }

void set_current_breadcrumb(BreadcrumbPage* page) {
  g_current_breadcrumb = page;
}

void note_phase(const char* label) {
  if (g_current_breadcrumb != nullptr) g_current_breadcrumb->note_phase(label);
}

std::uint64_t shard_trial_count(std::uint64_t trials, unsigned shard,
                                unsigned shard_count) {
  RIT_CHECK(shard_count >= 1 && shard < shard_count);
  if (shard >= trials) return 0;
  return (trials - shard - 1) / shard_count + 1;
}

std::string serialize_shard_result(const sim::GuardedResult& result) {
  // Reuse the checksummed checkpoint format: one completed point carries
  // the shard's merged aggregate + ledger, so the pipe payload gets the
  // same torn/corrupt detection the on-disk format has.
  sim::CheckpointData data;
  data.completed.push_back(
      sim::WorkerCheckpoint{result.metrics, result.faults});
  return std::string("ritcs-shard-result v1\n") + sim::serialize_checkpoint(data);
}

std::string serialize_shard_error(const std::string& what) {
  std::string flat = what;
  for (char& ch : flat) {
    if (ch == '\n' || ch == '\r') ch = ' ';
  }
  return std::string("ritcs-shard-error v1\n") + flat + "\n";
}

ShardPayload parse_shard_payload(const std::string& content) {
  ShardPayload out;
  const std::string result_header = "ritcs-shard-result v1\n";
  const std::string error_header = "ritcs-shard-error v1\n";
  if (content.compare(0, result_header.size(), result_header) == 0) {
    const sim::CheckpointData data = sim::parse_checkpoint(
        content.substr(result_header.size()), "<shard result pipe>");
    RIT_CHECK_MSG(data.completed.size() == 1 && !data.has_partial,
                  "shard result payload wants exactly one completed point");
    out.ok = true;
    out.result.metrics = data.completed[0].agg;
    out.result.faults = data.completed[0].faults;
    return out;
  }
  if (content.compare(0, error_header.size(), error_header) == 0) {
    std::istringstream in(content.substr(error_header.size()));
    std::getline(in, out.error);
    return out;
  }
  out.error = "malformed shard payload (" +
              std::to_string(content.size()) + " bytes)";
  return out;
}

namespace {

void write_all(int fd, const std::string& content) {
  std::size_t off = 0;
  while (off < content.size()) {
    const ssize_t n = ::write(fd, content.data() + off, content.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // parent gone (EPIPE): the exit status still tells the story
    }
    off += static_cast<std::size_t>(n);
  }
}

void apply_rlimits(const ShardJob& job) {
  // No core dumps: a chaos matrix that segfaults on purpose must not
  // litter the working directory (the forensics live in the ledger).
  struct rlimit core = {0, 0};
  ::setrlimit(RLIMIT_CORE, &core);
  if (job.mem_mb > 0) {
    // RLIMIT_AS, not RLIMIT_RSS: Linux accounts but does not enforce RSS,
    // so the address-space budget is the enforceable stand-in.
    const rlim_t bytes = static_cast<rlim_t>(job.mem_mb) << 20;
    struct rlimit as = {bytes, bytes};
    ::setrlimit(RLIMIT_AS, &as);
  }
  if (job.cpu_s > 0) {
    const auto secs = static_cast<rlim_t>(job.cpu_s);
    // Soft == hard: the first SIGXCPU is already fatal (default
    // disposition terminates), which is the budget semantics we want.
    struct rlimit cpu = {secs, secs};
    ::setrlimit(RLIMIT_CPU, &cpu);
  }
}

}  // namespace

void run_shard_child(const ShardJob& job) {
  // Die with the supervisor: if the parent is SIGKILLed (the check.sh
  // smoke leg does exactly that), the kernel reaps this child too instead
  // of leaving an orphan burning CPU. The getppid re-check closes the race
  // where the parent died before the prctl landed.
  ::prctl(PR_SET_PDEATHSIG, SIGKILL);
  if (::getppid() != job.parent_pid) ::_exit(kShardError);
  apply_rlimits(job);
  set_current_breadcrumb(job.page);

  int exit_code = kShardOk;
  std::string payload;
  try {
    const std::uint64_t local_trials =
        shard_trial_count(job.trials, job.shard, job.shard_count);
    const unsigned shard = job.shard;
    const unsigned count = job.shard_count;
    const sim::chaos::ChaosSpec& chaos = job.chaos;
    const sim::TrialBody& body = *job.body;
    const sim::TrialSeedFn& seed_of = *job.seed_of;

    // The wrapper maps local index -> global trial g = s + i*K and runs
    // every chaos injector at g, so contained-fault ledger entries and the
    // fault_rate rng stream match an in-process run bit for bit. The inner
    // runner gets a chaos-free policy: its own injection would use local
    // indices and break that parity.
    const sim::TrialBody local_body =
        [&](std::uint64_t local, core::RitWorkspace& ws, std::string* phase) {
          const std::uint64_t g = shard + local * count;
          job.page->begin_trial(g, seed_of ? seed_of(g) : g);
          if (chaos.signal_on_trial == g) {
            sim::chaos::raise_signal(chaos.signal_number);
          }
          if (chaos.oom_on_trial == g) {
            job.page->oom.store(1, std::memory_order_relaxed);
            sim::chaos::alloc_bomb();
          }
          if (chaos.hang_on_trial == g) sim::chaos::spin_forever();
          sim::chaos::inject_before_trial(chaos, g);
          sim::TrialMetrics m = body(g, ws, phase);
          sim::chaos::inject_after_trial(chaos, g, m);
          return m;
        };
    const sim::TrialSeedFn local_seed =
        [&](std::uint64_t local) { return seed_of ? seed_of(shard + local * count) : shard + local * count; };

    sim::GuardPolicy inner = job.policy;
    inner.chaos = sim::chaos::ChaosSpec{};

    std::unique_ptr<sim::CheckpointSession> session;
    if (job.use_session) {
      session = std::make_unique<sim::CheckpointSession>(job.session);
    }
    sim::GuardedResult result = sim::run_trials_guarded(
        local_trials, /*threads=*/1, inner, local_body, local_seed,
        session.get(), /*point=*/0);
    // Ledger entries were recorded with local indices by the inner runner;
    // rewrite to global so the supervisor's shard-order merge reproduces
    // the exact ledger an in-process run at threads=K builds.
    for (sim::TrialFault& f : result.faults.entries) {
      f.trial = shard + f.trial * count;
    }
    payload = serialize_shard_result(result);
  } catch (const rit::CheckFailure& e) {
    payload = serialize_shard_error(e.what());
    exit_code = kShardCheckFailure;
  } catch (const std::exception& e) {
    payload = serialize_shard_error(e.what());
    exit_code = kShardError;
  }
  write_all(job.result_fd, payload);
  // _exit, not exit: the child shares the parent's stdio buffers and exit
  // handlers; flushing or running them here would duplicate parent output.
  ::_exit(exit_code);
}

}  // namespace rit::platform
