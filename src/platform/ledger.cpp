#include "platform/ledger.h"

#include <cmath>
#include <ostream>

#include "common/check.h"
#include "common/format_util.h"

namespace rit::platform {

void Ledger::post(const std::string& campaign, AccountId account,
                  double amount, const char* memo) {
  RIT_CHECK_MSG(std::isfinite(amount) && amount > 0.0,
                "transaction amount must be positive and finite, got "
                    << amount);
  transactions_.push_back(
      Transaction{next_id_++, campaign, account, amount, memo});
  balances_[account] += amount;
  outflow_ += amount;
}

std::size_t Ledger::settle(const core::RitResult& result,
                           std::span<const AccountId> account_of,
                           const std::string& campaign_tag) {
  RIT_CHECK_MSG(account_of.size() == result.payment.size(),
                "account map has " << account_of.size() << " entries for "
                                   << result.payment.size()
                                   << " participants");
  if (!result.success) return 0;

  const std::size_t before = transactions_.size();
  for (std::size_t j = 0; j < result.payment.size(); ++j) {
    const double sensing = result.auction_payment[j];
    const double solicitation = result.payment[j] - result.auction_payment[j];
    if (sensing > 0.0) post(campaign_tag, account_of[j], sensing, "sensing");
    if (solicitation > 0.0) {
      post(campaign_tag, account_of[j], solicitation, "solicitation");
    }
  }
  RIT_CHECK_MSG(balanced(), "ledger conservation violated after settling "
                                << campaign_tag);
  return transactions_.size() - before;
}

double Ledger::balance_of(AccountId account) const {
  const auto it = balances_.find(account);
  return it == balances_.end() ? 0.0 : it->second;
}

std::vector<Transaction> Ledger::campaign_transactions(
    const std::string& campaign_tag) const {
  std::vector<Transaction> out;
  for (const Transaction& t : transactions_) {
    if (t.campaign == campaign_tag) out.push_back(t);
  }
  return out;
}

bool Ledger::balanced(double tolerance) const {
  double total = 0.0;
  for (const auto& [account, balance] : balances_) total += balance;
  return std::abs(total - outflow_) <= tolerance * (1.0 + outflow_);
}

void Ledger::write_statement(std::ostream& out) const {
  out << "ledger: " << transactions_.size() << " transaction(s), outflow "
      << format_double(outflow_, 2) << ", " << balances_.size()
      << " account(s)\n";
  for (const Transaction& t : transactions_) {
    out << "  #" << t.id << " [" << t.campaign << "] account " << t.account
        << " +" << format_double(t.amount, 4) << " (" << t.memo << ")\n";
  }
}

}  // namespace rit::platform
