// The money ledger: where mechanism outputs become account balances.
//
// A crowdsensing platform settles many campaigns against the same user
// base; the ledger records every payout as an immutable transaction
// (campaign tag, user, amount, memo) and maintains balances. Its core
// invariant — the platform's total outflow equals the sum of user balances
// — is checked on every settlement, and a settlement is all-or-nothing:
// failed mechanism runs (success == false) settle zero transactions.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "core/rit.h"

namespace rit::platform {

/// A user identity stable across campaigns (participant indices are
/// per-campaign; the caller maps them to UserAccount ids).
using AccountId = std::uint64_t;

struct Transaction {
  std::uint64_t id{0};
  std::string campaign;
  AccountId account{0};
  double amount{0.0};      // > 0: platform pays the user
  std::string memo;        // "sensing" or "solicitation"
};

class Ledger {
 public:
  /// Settles a successful mechanism result. account_of[j] maps participant
  /// j to its account. Two transactions per paid user: the sensing part
  /// (auction payment) and the solicitation part (tree reward), zero-amount
  /// parts skipped. Throws on size mismatch; a failed result settles
  /// nothing and returns 0.
  std::size_t settle(const core::RitResult& result,
                     std::span<const AccountId> account_of,
                     const std::string& campaign_tag);

  double balance_of(AccountId account) const;
  double platform_outflow() const { return outflow_; }
  std::size_t num_transactions() const { return transactions_.size(); }
  const std::vector<Transaction>& transactions() const {
    return transactions_;
  }

  /// All transactions of one campaign tag.
  std::vector<Transaction> campaign_transactions(
      const std::string& campaign_tag) const;

  /// Verifies the conservation invariant; returns false (never throws) so
  /// it can run inside audits.
  bool balanced(double tolerance = 1e-6) const;

  /// Writes a human-readable statement.
  void write_statement(std::ostream& out) const;

 private:
  void post(const std::string& campaign, AccountId account, double amount,
            const char* memo);

  std::vector<Transaction> transactions_;
  // Ordered so the conservation sum in balanced() and any future statement
  // emission iterate in account order — hash order would make the float
  // accumulation (and thus reports) nondeterministic across runs.
  std::map<AccountId, double> balances_;
  double outflow_{0.0};
  std::uint64_t next_id_{1};
};

}  // namespace rit::platform
