// Campaign: the façade that runs one crowdsensing campaign end to end.
//
// Everything the examples wire by hand — graph, population, job, tree,
// mechanism, audit, settlement — behind a three-call lifecycle:
//
//   platform::CampaignConfig cfg;
//   cfg.scenario.num_users = 20000;
//   platform::Campaign campaign(cfg, "aq-march");
//   campaign.recruit();                 // graph -> tree -> sealed asks
//   const auto& result = campaign.clear();  // auction + payments (+audit)
//   campaign.settle(ledger);            // balances move
//
// The lifecycle is a checked state machine (clearing before recruiting
// throws), every stage is deterministic from the scenario seed, and the
// post-clear audit is mandatory: a run whose payments do not re-derive
// from its inputs refuses to settle.
#pragma once

#include <optional>
#include <string>

#include "core/audit.h"
#include "core/result_io.h"
#include "core/rit.h"
#include "platform/ledger.h"
#include "sim/dynamics.h"
#include "sim/growth.h"
#include "sim/runner.h"

namespace rit::platform {

/// How the campaign recruits its incentive tree.
enum class SolicitationMode {
  /// The Sec. 7-A spanning forest over the whole population (everyone
  /// joins; the Figs. 6-9 setting).
  kInstant,
  /// Grow wave-by-wave until supply covers supply_multiple * demand
  /// (Remark 6.1); only the recruited users participate.
  kGrowth,
  /// Discrete-event cascade (sim/dynamics.h) with the same supply target;
  /// users departed before close are stripped from the auction.
  kDynamics,
};

struct CampaignConfig {
  sim::Scenario scenario;
  SolicitationMode mode = SolicitationMode::kInstant;
  /// kGrowth / kDynamics: the Remark 6.1 supply multiple.
  double supply_multiple = 2.0;
  /// kDynamics knobs.
  sim::DynamicsOptions dynamics;
};

class Campaign {
 public:
  Campaign(CampaignConfig config, std::string tag);

  /// Stage 1: builds graph, population, tree; collects sealed asks.
  /// Throws if already recruited.
  void recruit();

  /// Stage 2: runs RIT and audits the outcome. Throws if not recruited or
  /// already cleared; throws if the mandatory audit finds violations.
  const core::RitResult& clear();

  /// Stage 3: settles payments into `ledger` (participant j's account id is
  /// its stable population index). No-op returning 0 on failed runs.
  /// Throws if not cleared, and throws on a second call — settling twice
  /// would pay everyone twice.
  std::size_t settle(Ledger& ledger);

  // --- accessors (valid after the corresponding stage) ---
  const std::string& tag() const { return tag_; }
  bool recruited() const { return instance_.has_value(); }
  bool cleared() const { return result_.has_value(); }
  /// Participants and their asks (after recruit()).
  std::uint32_t num_participants() const;
  const tree::IncentiveTree& tree() const;
  const std::vector<core::Ask>& asks() const { return require_recruited().asks; }
  const core::Job& job() const { return require_recruited().job; }
  /// Stable account id of participant j (its index in the full population).
  AccountId account_of(std::uint32_t participant) const;
  const core::RitResult& result() const;
  /// Bit-exact record of the cleared run (for result_io / audit tooling).
  core::ExperimentRecord record() const;

 private:
  struct Recruited {
    core::Job job{std::vector<std::uint32_t>{1}};
    std::vector<core::Ask> asks;
    std::vector<double> costs;
    std::vector<AccountId> accounts;
    tree::IncentiveTree tree = tree::IncentiveTree::root_only();
    std::uint64_t mechanism_seed{0};
  };

  const Recruited& require_recruited() const;

  CampaignConfig config_;
  std::string tag_;
  std::optional<Recruited> instance_;
  std::optional<core::RitResult> result_;
  bool settled_{false};
};

}  // namespace rit::platform
