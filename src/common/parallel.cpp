#include "common/parallel.h"

#include <algorithm>
#include <thread>
#include <vector>

namespace rit {

unsigned resolve_threads(unsigned threads, std::uint64_t items) {
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  return static_cast<unsigned>(std::min<std::uint64_t>(
      threads, std::max<std::uint64_t>(items, 1)));
}

void parallel_for_strided(
    std::uint64_t items, unsigned threads,
    const std::function<void(std::uint64_t, unsigned)>& body) {
  const unsigned t = resolve_threads(threads, items);
  if (t <= 1) {
    for (std::uint64_t i = 0; i < items; ++i) body(i, 0);
    return;
  }
  std::vector<std::thread> workers;
  workers.reserve(t);
  for (unsigned w = 0; w < t; ++w) {
    workers.emplace_back([&body, items, t, w]() {
      for (std::uint64_t i = w; i < items; i += t) body(i, w);
    });
  }
  for (std::thread& worker : workers) worker.join();
}

void parallel_for_blocked(
    std::uint64_t items, unsigned threads,
    const std::function<void(std::uint64_t, std::uint64_t, unsigned)>& body) {
  const unsigned t = resolve_threads(threads, items);
  if (t <= 1) {
    if (items > 0) body(0, items, 0);
    return;
  }
  std::vector<std::thread> workers;
  workers.reserve(t);
  for (unsigned w = 0; w < t; ++w) {
    const std::uint64_t begin = items * w / t;
    const std::uint64_t end = items * (w + 1) / t;
    workers.emplace_back([&body, begin, end, w]() {
      if (begin < end) body(begin, end, w);
    });
  }
  for (std::thread& worker : workers) worker.join();
}

}  // namespace rit
