// Compile-time bug injection for the testkit self-test.
//
// The fuzz harness (src/testkit/ + tools/fuzz_runner.cpp) claims to catch
// mechanism bugs by differential comparison against a naive oracle. That
// claim is itself tested: tools/CMakeLists.txt builds variants of the fuzz
// runner whose core objects are recompiled with RIT_TESTKIT_INJECT_BUG set
// to one of the ids below, and a ctest case per id asserts the harness
// flags the planted bug within the smoke iteration budget. A net with a
// hole fails its own self-test, not a future release.
//
// The production build never defines RIT_TESTKIT_INJECT_BUG, so every
// injection site compiles to exactly the shipped code (the #if arms are
// plain preprocessor conditionals — no runtime cost, no extra symbols).
// The rit_lint rule `testkit-only-injection` confines these conditionals
// to files that opt in via an explicit allow-file escape, so a planted bug
// cannot quietly spread beyond the audited sites.
#pragma once

/// Flips the pre-shuffle tie order in CRA's sorted winner ordering, so
/// equal-value asks enter the tie shuffle in reverse index order and the
/// "smallest n_s asks" resolve to different owners.
#define RIT_BUG_CRA_TIEBREAK 1
/// Off-by-one in the payment pass's depth-discount memo: a depth-d
/// descendant contributes base^(d+1) instead of base^d.
#define RIT_BUG_DISCOUNT_DEPTH 2
/// Drops the first carry of each per-type prefix group in the payment
/// pass, so same-type exclusion sums miss the group's first contribution.
#define RIT_BUG_PREFIX_CARRY 3

#ifndef RIT_TESTKIT_INJECT_BUG
#define RIT_TESTKIT_INJECT_BUG 0
#endif

/// True (at preprocessing time) when this translation unit is being built
/// as the bug-variant object for `id`.
#define RIT_BUG_ENABLED(id) (RIT_TESTKIT_INJECT_BUG == (id))
