// Precondition / invariant checking.
//
// RIT_CHECK is always on (mechanism code is not hot enough for checks to
// matter relative to sorting asks), RIT_DCHECK compiles out in release
// builds for the few O(N)-per-element loops where it would show up.
// Violations throw rit::CheckFailure so tests can assert on them; in a
// mechanism/market context silently continuing after a broken invariant
// could mis-pay a user, which is strictly worse than aborting the run.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace rit {

/// Thrown when a RIT_CHECK / RIT_DCHECK predicate fails.
class CheckFailure : public std::logic_error {
 public:
  explicit CheckFailure(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "check failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckFailure(os.str());
}
}  // namespace detail

}  // namespace rit

#define RIT_CHECK(expr)                                              \
  do {                                                               \
    if (!(expr)) ::rit::detail::check_failed(#expr, __FILE__, __LINE__, ""); \
  } while (false)

#define RIT_CHECK_MSG(expr, msg)                                     \
  do {                                                               \
    if (!(expr)) {                                                   \
      std::ostringstream rit_check_os;                               \
      rit_check_os << msg;                                           \
      ::rit::detail::check_failed(#expr, __FILE__, __LINE__,         \
                                  rit_check_os.str());               \
    }                                                                \
  } while (false)

#ifdef NDEBUG
#define RIT_DCHECK(expr) \
  do {                   \
  } while (false)
#else
#define RIT_DCHECK(expr) RIT_CHECK(expr)
#endif
