// FNV-1a 64-bit hashing for config fingerprints.
//
// Checkpoint files (sim/checkpoint.h) refuse to resume under a different
// scenario/flag set; the fingerprint is this hash over a canonical textual
// description of the run. FNV-1a is tiny, dependency-free, and stable
// across platforms — it fingerprints configs, it does not defend against
// adversarial collisions.
#pragma once

#include <cstdint>
#include <string_view>

namespace rit {

constexpr std::uint64_t fnv1a64(std::string_view data) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : data) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace rit
